# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_wlg[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_admm[1]_include.cmake")
include("/root/repo/build/tests/test_admm_features[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_gadmm[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
