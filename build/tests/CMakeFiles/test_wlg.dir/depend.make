# Empty dependencies file for test_wlg.
# This may be replaced when dependencies are built.
