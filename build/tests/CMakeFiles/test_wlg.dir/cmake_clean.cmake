file(REMOVE_RECURSE
  "CMakeFiles/test_wlg.dir/test_wlg.cpp.o"
  "CMakeFiles/test_wlg.dir/test_wlg.cpp.o.d"
  "test_wlg"
  "test_wlg.pdb"
  "test_wlg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wlg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
