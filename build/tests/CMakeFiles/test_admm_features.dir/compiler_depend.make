# Empty compiler generated dependencies file for test_admm_features.
# This may be replaced when dependencies are built.
