file(REMOVE_RECURSE
  "CMakeFiles/test_admm_features.dir/test_admm_features.cpp.o"
  "CMakeFiles/test_admm_features.dir/test_admm_features.cpp.o.d"
  "test_admm_features"
  "test_admm_features.pdb"
  "test_admm_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admm_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
