file(REMOVE_RECURSE
  "CMakeFiles/test_admm.dir/test_admm.cpp.o"
  "CMakeFiles/test_admm.dir/test_admm.cpp.o.d"
  "test_admm"
  "test_admm.pdb"
  "test_admm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
