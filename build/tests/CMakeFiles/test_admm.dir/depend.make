# Empty dependencies file for test_admm.
# This may be replaced when dependencies are built.
