# Empty dependencies file for test_gadmm.
# This may be replaced when dependencies are built.
