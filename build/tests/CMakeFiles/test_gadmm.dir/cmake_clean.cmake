file(REMOVE_RECURSE
  "CMakeFiles/test_gadmm.dir/test_gadmm.cpp.o"
  "CMakeFiles/test_gadmm.dir/test_gadmm.cpp.o.d"
  "test_gadmm"
  "test_gadmm.pdb"
  "test_gadmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
