file(REMOVE_RECURSE
  "libpsra_comm.a"
)
