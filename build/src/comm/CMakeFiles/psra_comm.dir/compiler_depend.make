# Empty compiler generated dependencies file for psra_comm.
# This may be replaced when dependencies are built.
