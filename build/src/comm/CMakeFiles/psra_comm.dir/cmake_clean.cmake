file(REMOVE_RECURSE
  "CMakeFiles/psra_comm.dir/allreduce_extra.cpp.o"
  "CMakeFiles/psra_comm.dir/allreduce_extra.cpp.o.d"
  "CMakeFiles/psra_comm.dir/allreduce_naive.cpp.o"
  "CMakeFiles/psra_comm.dir/allreduce_naive.cpp.o.d"
  "CMakeFiles/psra_comm.dir/allreduce_psr.cpp.o"
  "CMakeFiles/psra_comm.dir/allreduce_psr.cpp.o.d"
  "CMakeFiles/psra_comm.dir/allreduce_ring.cpp.o"
  "CMakeFiles/psra_comm.dir/allreduce_ring.cpp.o.d"
  "CMakeFiles/psra_comm.dir/collective.cpp.o"
  "CMakeFiles/psra_comm.dir/collective.cpp.o.d"
  "CMakeFiles/psra_comm.dir/group.cpp.o"
  "CMakeFiles/psra_comm.dir/group.cpp.o.d"
  "CMakeFiles/psra_comm.dir/intranode.cpp.o"
  "CMakeFiles/psra_comm.dir/intranode.cpp.o.d"
  "libpsra_comm.a"
  "libpsra_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
