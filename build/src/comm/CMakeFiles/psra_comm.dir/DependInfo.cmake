
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/allreduce_extra.cpp" "src/comm/CMakeFiles/psra_comm.dir/allreduce_extra.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/allreduce_extra.cpp.o.d"
  "/root/repo/src/comm/allreduce_naive.cpp" "src/comm/CMakeFiles/psra_comm.dir/allreduce_naive.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/allreduce_naive.cpp.o.d"
  "/root/repo/src/comm/allreduce_psr.cpp" "src/comm/CMakeFiles/psra_comm.dir/allreduce_psr.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/allreduce_psr.cpp.o.d"
  "/root/repo/src/comm/allreduce_ring.cpp" "src/comm/CMakeFiles/psra_comm.dir/allreduce_ring.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/allreduce_ring.cpp.o.d"
  "/root/repo/src/comm/collective.cpp" "src/comm/CMakeFiles/psra_comm.dir/collective.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/collective.cpp.o.d"
  "/root/repo/src/comm/group.cpp" "src/comm/CMakeFiles/psra_comm.dir/group.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/group.cpp.o.d"
  "/root/repo/src/comm/intranode.cpp" "src/comm/CMakeFiles/psra_comm.dir/intranode.cpp.o" "gcc" "src/comm/CMakeFiles/psra_comm.dir/intranode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/psra_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/psra_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
