# Empty dependencies file for psra_support.
# This may be replaced when dependencies are built.
