file(REMOVE_RECURSE
  "libpsra_support.a"
)
