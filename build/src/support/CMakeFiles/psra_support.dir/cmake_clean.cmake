file(REMOVE_RECURSE
  "CMakeFiles/psra_support.dir/cli.cpp.o"
  "CMakeFiles/psra_support.dir/cli.cpp.o.d"
  "CMakeFiles/psra_support.dir/config.cpp.o"
  "CMakeFiles/psra_support.dir/config.cpp.o.d"
  "CMakeFiles/psra_support.dir/log.cpp.o"
  "CMakeFiles/psra_support.dir/log.cpp.o.d"
  "CMakeFiles/psra_support.dir/rng.cpp.o"
  "CMakeFiles/psra_support.dir/rng.cpp.o.d"
  "CMakeFiles/psra_support.dir/status.cpp.o"
  "CMakeFiles/psra_support.dir/status.cpp.o.d"
  "CMakeFiles/psra_support.dir/string_util.cpp.o"
  "CMakeFiles/psra_support.dir/string_util.cpp.o.d"
  "CMakeFiles/psra_support.dir/table.cpp.o"
  "CMakeFiles/psra_support.dir/table.cpp.o.d"
  "libpsra_support.a"
  "libpsra_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
