file(REMOVE_RECURSE
  "CMakeFiles/psra_simnet.dir/cost_model.cpp.o"
  "CMakeFiles/psra_simnet.dir/cost_model.cpp.o.d"
  "CMakeFiles/psra_simnet.dir/event_queue.cpp.o"
  "CMakeFiles/psra_simnet.dir/event_queue.cpp.o.d"
  "CMakeFiles/psra_simnet.dir/straggler.cpp.o"
  "CMakeFiles/psra_simnet.dir/straggler.cpp.o.d"
  "CMakeFiles/psra_simnet.dir/topology.cpp.o"
  "CMakeFiles/psra_simnet.dir/topology.cpp.o.d"
  "libpsra_simnet.a"
  "libpsra_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
