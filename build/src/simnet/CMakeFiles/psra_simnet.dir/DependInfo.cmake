
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/cost_model.cpp" "src/simnet/CMakeFiles/psra_simnet.dir/cost_model.cpp.o" "gcc" "src/simnet/CMakeFiles/psra_simnet.dir/cost_model.cpp.o.d"
  "/root/repo/src/simnet/event_queue.cpp" "src/simnet/CMakeFiles/psra_simnet.dir/event_queue.cpp.o" "gcc" "src/simnet/CMakeFiles/psra_simnet.dir/event_queue.cpp.o.d"
  "/root/repo/src/simnet/straggler.cpp" "src/simnet/CMakeFiles/psra_simnet.dir/straggler.cpp.o" "gcc" "src/simnet/CMakeFiles/psra_simnet.dir/straggler.cpp.o.d"
  "/root/repo/src/simnet/topology.cpp" "src/simnet/CMakeFiles/psra_simnet.dir/topology.cpp.o" "gcc" "src/simnet/CMakeFiles/psra_simnet.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/psra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
