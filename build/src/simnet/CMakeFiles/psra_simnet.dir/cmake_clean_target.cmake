file(REMOVE_RECURSE
  "libpsra_simnet.a"
)
