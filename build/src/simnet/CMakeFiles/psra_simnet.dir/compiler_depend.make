# Empty compiler generated dependencies file for psra_simnet.
# This may be replaced when dependencies are built.
