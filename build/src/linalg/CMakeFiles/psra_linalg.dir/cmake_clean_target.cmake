file(REMOVE_RECURSE
  "libpsra_linalg.a"
)
