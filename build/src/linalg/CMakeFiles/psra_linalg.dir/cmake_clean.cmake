file(REMOVE_RECURSE
  "CMakeFiles/psra_linalg.dir/csr_matrix.cpp.o"
  "CMakeFiles/psra_linalg.dir/csr_matrix.cpp.o.d"
  "CMakeFiles/psra_linalg.dir/dense_ops.cpp.o"
  "CMakeFiles/psra_linalg.dir/dense_ops.cpp.o.d"
  "CMakeFiles/psra_linalg.dir/sparse_vector.cpp.o"
  "CMakeFiles/psra_linalg.dir/sparse_vector.cpp.o.d"
  "libpsra_linalg.a"
  "libpsra_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
