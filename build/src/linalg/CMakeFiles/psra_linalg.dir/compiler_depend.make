# Empty compiler generated dependencies file for psra_linalg.
# This may be replaced when dependencies are built.
