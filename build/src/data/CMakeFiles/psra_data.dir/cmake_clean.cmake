file(REMOVE_RECURSE
  "CMakeFiles/psra_data.dir/dataset.cpp.o"
  "CMakeFiles/psra_data.dir/dataset.cpp.o.d"
  "CMakeFiles/psra_data.dir/libsvm_io.cpp.o"
  "CMakeFiles/psra_data.dir/libsvm_io.cpp.o.d"
  "CMakeFiles/psra_data.dir/partition.cpp.o"
  "CMakeFiles/psra_data.dir/partition.cpp.o.d"
  "CMakeFiles/psra_data.dir/synthetic.cpp.o"
  "CMakeFiles/psra_data.dir/synthetic.cpp.o.d"
  "libpsra_data.a"
  "libpsra_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
