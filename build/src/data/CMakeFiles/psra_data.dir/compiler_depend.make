# Empty compiler generated dependencies file for psra_data.
# This may be replaced when dependencies are built.
