file(REMOVE_RECURSE
  "libpsra_data.a"
)
