file(REMOVE_RECURSE
  "libpsra_wlg.a"
)
