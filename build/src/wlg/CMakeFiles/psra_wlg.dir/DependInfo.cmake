
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wlg/group_generator.cpp" "src/wlg/CMakeFiles/psra_wlg.dir/group_generator.cpp.o" "gcc" "src/wlg/CMakeFiles/psra_wlg.dir/group_generator.cpp.o.d"
  "/root/repo/src/wlg/leader.cpp" "src/wlg/CMakeFiles/psra_wlg.dir/leader.cpp.o" "gcc" "src/wlg/CMakeFiles/psra_wlg.dir/leader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/psra_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
