# Empty dependencies file for psra_wlg.
# This may be replaced when dependencies are built.
