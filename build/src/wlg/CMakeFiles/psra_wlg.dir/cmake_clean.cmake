file(REMOVE_RECURSE
  "CMakeFiles/psra_wlg.dir/group_generator.cpp.o"
  "CMakeFiles/psra_wlg.dir/group_generator.cpp.o.d"
  "CMakeFiles/psra_wlg.dir/leader.cpp.o"
  "CMakeFiles/psra_wlg.dir/leader.cpp.o.d"
  "libpsra_wlg.a"
  "libpsra_wlg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_wlg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
