file(REMOVE_RECURSE
  "libpsra_admm.a"
)
