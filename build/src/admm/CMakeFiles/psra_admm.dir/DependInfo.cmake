
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/admm/ad_admm.cpp" "src/admm/CMakeFiles/psra_admm.dir/ad_admm.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/ad_admm.cpp.o.d"
  "/root/repo/src/admm/admmlib.cpp" "src/admm/CMakeFiles/psra_admm.dir/admmlib.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/admmlib.cpp.o.d"
  "/root/repo/src/admm/checkpoint.cpp" "src/admm/CMakeFiles/psra_admm.dir/checkpoint.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/checkpoint.cpp.o.d"
  "/root/repo/src/admm/common.cpp" "src/admm/CMakeFiles/psra_admm.dir/common.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/common.cpp.o.d"
  "/root/repo/src/admm/gadmm.cpp" "src/admm/CMakeFiles/psra_admm.dir/gadmm.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/gadmm.cpp.o.d"
  "/root/repo/src/admm/problem.cpp" "src/admm/CMakeFiles/psra_admm.dir/problem.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/problem.cpp.o.d"
  "/root/repo/src/admm/psra_hgadmm.cpp" "src/admm/CMakeFiles/psra_admm.dir/psra_hgadmm.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/psra_hgadmm.cpp.o.d"
  "/root/repo/src/admm/reference.cpp" "src/admm/CMakeFiles/psra_admm.dir/reference.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/reference.cpp.o.d"
  "/root/repo/src/admm/registry.cpp" "src/admm/CMakeFiles/psra_admm.dir/registry.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/registry.cpp.o.d"
  "/root/repo/src/admm/trace.cpp" "src/admm/CMakeFiles/psra_admm.dir/trace.cpp.o" "gcc" "src/admm/CMakeFiles/psra_admm.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/psra_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/wlg/CMakeFiles/psra_wlg.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/psra_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/psra_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/psra_data.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/psra_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psra_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/psra_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
