file(REMOVE_RECURSE
  "CMakeFiles/psra_admm.dir/ad_admm.cpp.o"
  "CMakeFiles/psra_admm.dir/ad_admm.cpp.o.d"
  "CMakeFiles/psra_admm.dir/admmlib.cpp.o"
  "CMakeFiles/psra_admm.dir/admmlib.cpp.o.d"
  "CMakeFiles/psra_admm.dir/checkpoint.cpp.o"
  "CMakeFiles/psra_admm.dir/checkpoint.cpp.o.d"
  "CMakeFiles/psra_admm.dir/common.cpp.o"
  "CMakeFiles/psra_admm.dir/common.cpp.o.d"
  "CMakeFiles/psra_admm.dir/gadmm.cpp.o"
  "CMakeFiles/psra_admm.dir/gadmm.cpp.o.d"
  "CMakeFiles/psra_admm.dir/problem.cpp.o"
  "CMakeFiles/psra_admm.dir/problem.cpp.o.d"
  "CMakeFiles/psra_admm.dir/psra_hgadmm.cpp.o"
  "CMakeFiles/psra_admm.dir/psra_hgadmm.cpp.o.d"
  "CMakeFiles/psra_admm.dir/reference.cpp.o"
  "CMakeFiles/psra_admm.dir/reference.cpp.o.d"
  "CMakeFiles/psra_admm.dir/registry.cpp.o"
  "CMakeFiles/psra_admm.dir/registry.cpp.o.d"
  "CMakeFiles/psra_admm.dir/trace.cpp.o"
  "CMakeFiles/psra_admm.dir/trace.cpp.o.d"
  "libpsra_admm.a"
  "libpsra_admm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_admm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
