# Empty compiler generated dependencies file for psra_admm.
# This may be replaced when dependencies are built.
