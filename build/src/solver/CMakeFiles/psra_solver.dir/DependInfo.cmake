
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/logistic.cpp" "src/solver/CMakeFiles/psra_solver.dir/logistic.cpp.o" "gcc" "src/solver/CMakeFiles/psra_solver.dir/logistic.cpp.o.d"
  "/root/repo/src/solver/metrics.cpp" "src/solver/CMakeFiles/psra_solver.dir/metrics.cpp.o" "gcc" "src/solver/CMakeFiles/psra_solver.dir/metrics.cpp.o.d"
  "/root/repo/src/solver/prox.cpp" "src/solver/CMakeFiles/psra_solver.dir/prox.cpp.o" "gcc" "src/solver/CMakeFiles/psra_solver.dir/prox.cpp.o.d"
  "/root/repo/src/solver/tron.cpp" "src/solver/CMakeFiles/psra_solver.dir/tron.cpp.o" "gcc" "src/solver/CMakeFiles/psra_solver.dir/tron.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/psra_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/psra_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
