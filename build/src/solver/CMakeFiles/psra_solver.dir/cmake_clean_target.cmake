file(REMOVE_RECURSE
  "libpsra_solver.a"
)
