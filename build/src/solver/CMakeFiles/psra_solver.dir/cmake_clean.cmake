file(REMOVE_RECURSE
  "CMakeFiles/psra_solver.dir/logistic.cpp.o"
  "CMakeFiles/psra_solver.dir/logistic.cpp.o.d"
  "CMakeFiles/psra_solver.dir/metrics.cpp.o"
  "CMakeFiles/psra_solver.dir/metrics.cpp.o.d"
  "CMakeFiles/psra_solver.dir/prox.cpp.o"
  "CMakeFiles/psra_solver.dir/prox.cpp.o.d"
  "CMakeFiles/psra_solver.dir/tron.cpp.o"
  "CMakeFiles/psra_solver.dir/tron.cpp.o.d"
  "libpsra_solver.a"
  "libpsra_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
