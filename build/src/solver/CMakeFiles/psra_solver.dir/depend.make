# Empty dependencies file for psra_solver.
# This may be replaced when dependencies are built.
