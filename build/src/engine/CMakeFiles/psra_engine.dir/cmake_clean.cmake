file(REMOVE_RECURSE
  "CMakeFiles/psra_engine.dir/ledger.cpp.o"
  "CMakeFiles/psra_engine.dir/ledger.cpp.o.d"
  "CMakeFiles/psra_engine.dir/thread_pool.cpp.o"
  "CMakeFiles/psra_engine.dir/thread_pool.cpp.o.d"
  "libpsra_engine.a"
  "libpsra_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psra_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
