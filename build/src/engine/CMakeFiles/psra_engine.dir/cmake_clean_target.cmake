file(REMOVE_RECURSE
  "libpsra_engine.a"
)
