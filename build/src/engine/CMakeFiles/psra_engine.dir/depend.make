# Empty dependencies file for psra_engine.
# This may be replaced when dependencies are built.
