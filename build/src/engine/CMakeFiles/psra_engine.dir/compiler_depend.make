# Empty compiler generated dependencies file for psra_engine.
# This may be replaced when dependencies are built.
