# Empty compiler generated dependencies file for straggler_resilience.
# This may be replaced when dependencies are built.
