file(REMOVE_RECURSE
  "CMakeFiles/text_classification.dir/text_classification.cpp.o"
  "CMakeFiles/text_classification.dir/text_classification.cpp.o.d"
  "text_classification"
  "text_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
