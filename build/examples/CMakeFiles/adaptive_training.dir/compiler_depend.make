# Empty compiler generated dependencies file for adaptive_training.
# This may be replaced when dependencies are built.
