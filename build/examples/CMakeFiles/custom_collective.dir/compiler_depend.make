# Empty compiler generated dependencies file for custom_collective.
# This may be replaced when dependencies are built.
