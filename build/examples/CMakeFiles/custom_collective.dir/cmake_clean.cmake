file(REMOVE_RECURSE
  "CMakeFiles/custom_collective.dir/custom_collective.cpp.o"
  "CMakeFiles/custom_collective.dir/custom_collective.cpp.o.d"
  "custom_collective"
  "custom_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
