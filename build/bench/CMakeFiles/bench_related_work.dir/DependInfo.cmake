
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_related_work.cpp" "bench/CMakeFiles/bench_related_work.dir/bench_related_work.cpp.o" "gcc" "bench/CMakeFiles/bench_related_work.dir/bench_related_work.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/admm/CMakeFiles/psra_admm.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/psra_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/wlg/CMakeFiles/psra_wlg.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/psra_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/psra_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/psra_data.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/psra_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/psra_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
