# Empty dependencies file for bench_fig7_grouping.
# This may be replaced when dependencies are built.
