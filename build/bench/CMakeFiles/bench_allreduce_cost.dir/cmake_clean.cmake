file(REMOVE_RECURSE
  "CMakeFiles/bench_allreduce_cost.dir/bench_allreduce_cost.cpp.o"
  "CMakeFiles/bench_allreduce_cost.dir/bench_allreduce_cost.cpp.o.d"
  "bench_allreduce_cost"
  "bench_allreduce_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allreduce_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
