# Empty compiler generated dependencies file for bench_allreduce_cost.
# This may be replaced when dependencies are built.
