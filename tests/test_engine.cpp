// Tests for the execution engine: thread pool and time ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "engine/ledger.hpp"
#include "engine/thread_pool.hpp"
#include "support/status.hpp"

namespace psra::engine {
namespace {

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  pool.ForceParallelDispatchForTesting();
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorksWithMoreTasksThanThreads) {
  ThreadPool pool(2);
  pool.ForceParallelDispatchForTesting();
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(1000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadFallsBackToSerial) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.ParallelFor(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  pool.ForceParallelDispatchForTesting();
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.ParallelFor(8, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  pool.ForceParallelDispatchForTesting();
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> n{0};
    pool.ParallelFor(10, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 10);
  }
}

// ------------------------------------------------- chunked ParallelFor ----

TEST(ThreadPoolChunked, CoversRangeInGrainSizedChunks) {
  ThreadPool pool(4);
  pool.ForceParallelDispatchForTesting();
  std::vector<std::atomic<int>> hits(103);
  pool.ParallelFor(103, /*grain=*/8, [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(end - begin, 8u);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolChunked, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, /*grain=*/16,
                   [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolChunked, CountSmallerThanThreads) {
  ThreadPool pool(8);
  pool.ForceParallelDispatchForTesting();
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, /*grain=*/1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolChunked, ZeroGrainBehavesAsOne) {
  ThreadPool pool(2);
  pool.ForceParallelDispatchForTesting();
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(10, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);
    sum.fetch_add(begin);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolChunked, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  pool.ForceParallelDispatchForTesting();
  EXPECT_THROW(
      pool.ParallelFor(64, /*grain=*/4,
                       [&](std::size_t begin, std::size_t) {
                         if (begin == 32) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  std::atomic<int> n{0};
  pool.ParallelFor(12, /*grain=*/4, [&](std::size_t begin, std::size_t end) {
    n.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(n.load(), 12);
}

TEST(ThreadPoolChunked, NestedCallsRunInline) {
  ThreadPool pool(4);
  pool.ForceParallelDispatchForTesting();
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, /*grain=*/2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Re-entrant use from a body must fall back to serial, not deadlock.
      pool.ParallelFor(4, /*grain=*/2, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 32);
}

// ---------------------------------------------------------- BlockedReduce ----

TEST(BlockedReduce, MatchesSerialSumBitwise) {
  std::vector<double> v(1237);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto partial = [&](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += v[i];
    return acc;
  };
  auto combine = [](double acc, double p) { return acc + p; };
  std::vector<double> scratch;
  const double serial = BlockedReduce<double>(nullptr, v.size(), 64, scratch,
                                              0.0, partial, combine);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    pool.ForceParallelDispatchForTesting();
    std::vector<double> scratch2;
    const double pooled = BlockedReduce<double>(&pool, v.size(), 64, scratch2,
                                                0.0, partial, combine);
    // Bitwise equality: the fold order depends only on the block structure.
    EXPECT_EQ(serial, pooled) << "threads=" << threads;
  }
}

TEST(BlockedReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  std::vector<int> scratch;
  const int out = BlockedReduce<int>(
      &pool, 0, 16, scratch, 7,
      [](std::size_t, std::size_t) { return 1; },
      [](int acc, int p) { return acc + p; });
  EXPECT_EQ(out, 7);
}

TEST(SerialForHelper, RunsInOrder) {
  std::vector<std::size_t> order;
  SerialFor(4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------- ledger ----

TEST(Ledger, ChargesAdvanceClockAndBuckets) {
  TimeLedger ledger(2);
  ledger.ChargeCompute(0, 2.0);
  ledger.ChargeComm(0, 1.0);
  EXPECT_DOUBLE_EQ(ledger[0].cal_time, 2.0);
  EXPECT_DOUBLE_EQ(ledger[0].comm_time, 1.0);
  EXPECT_DOUBLE_EQ(ledger[0].clock, 3.0);
  EXPECT_DOUBLE_EQ(ledger[0].SystemTime(), 3.0);
  EXPECT_DOUBLE_EQ(ledger[1].clock, 0.0);
}

TEST(Ledger, WaitBooksAsCommunication) {
  TimeLedger ledger(1);
  ledger.ChargeCompute(0, 1.0);
  ledger.WaitUntil(0, 4.0);
  EXPECT_DOUBLE_EQ(ledger[0].comm_time, 3.0);
  EXPECT_DOUBLE_EQ(ledger[0].clock, 4.0);
  // Waiting for a time already passed is a no-op.
  ledger.WaitUntil(0, 2.0);
  EXPECT_DOUBLE_EQ(ledger[0].clock, 4.0);
}

TEST(Ledger, Aggregates) {
  TimeLedger ledger(2);
  ledger.ChargeCompute(0, 4.0);
  ledger.ChargeCompute(1, 2.0);
  ledger.ChargeComm(1, 6.0);
  EXPECT_DOUBLE_EQ(ledger.MeanCalTime(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.MeanCommTime(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.MaxCalTime(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.MaxCommTime(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.MaxClock(), 8.0);
}

TEST(Ledger, Validation) {
  EXPECT_THROW(TimeLedger(0), InvalidArgument);
  TimeLedger ledger(1);
  EXPECT_THROW(ledger.ChargeCompute(0, -1.0), InvalidArgument);
  EXPECT_THROW(ledger.ChargeComm(1, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace psra::engine
