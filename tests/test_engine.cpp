// Tests for the execution engine: thread pool and time ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "engine/ledger.hpp"
#include "engine/thread_pool.hpp"
#include "support/status.hpp"

namespace psra::engine {
namespace {

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorksWithMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(1000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadFallsBackToSerial) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.ParallelFor(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.ParallelFor(8, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> n{0};
    pool.ParallelFor(10, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 10);
  }
}

TEST(SerialForHelper, RunsInOrder) {
  std::vector<std::size_t> order;
  SerialFor(4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------- ledger ----

TEST(Ledger, ChargesAdvanceClockAndBuckets) {
  TimeLedger ledger(2);
  ledger.ChargeCompute(0, 2.0);
  ledger.ChargeComm(0, 1.0);
  EXPECT_DOUBLE_EQ(ledger[0].cal_time, 2.0);
  EXPECT_DOUBLE_EQ(ledger[0].comm_time, 1.0);
  EXPECT_DOUBLE_EQ(ledger[0].clock, 3.0);
  EXPECT_DOUBLE_EQ(ledger[0].SystemTime(), 3.0);
  EXPECT_DOUBLE_EQ(ledger[1].clock, 0.0);
}

TEST(Ledger, WaitBooksAsCommunication) {
  TimeLedger ledger(1);
  ledger.ChargeCompute(0, 1.0);
  ledger.WaitUntil(0, 4.0);
  EXPECT_DOUBLE_EQ(ledger[0].comm_time, 3.0);
  EXPECT_DOUBLE_EQ(ledger[0].clock, 4.0);
  // Waiting for a time already passed is a no-op.
  ledger.WaitUntil(0, 2.0);
  EXPECT_DOUBLE_EQ(ledger[0].clock, 4.0);
}

TEST(Ledger, Aggregates) {
  TimeLedger ledger(2);
  ledger.ChargeCompute(0, 4.0);
  ledger.ChargeCompute(1, 2.0);
  ledger.ChargeComm(1, 6.0);
  EXPECT_DOUBLE_EQ(ledger.MeanCalTime(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.MeanCommTime(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.MaxCalTime(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.MaxCommTime(), 6.0);
  EXPECT_DOUBLE_EQ(ledger.MaxClock(), 8.0);
}

TEST(Ledger, Validation) {
  EXPECT_THROW(TimeLedger(0), InvalidArgument);
  TimeLedger ledger(1);
  EXPECT_THROW(ledger.ChargeCompute(0, -1.0), InvalidArgument);
  EXPECT_THROW(ledger.ChargeComm(1, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace psra::engine
