// Integration tests for the ADMM algorithm family: convergence, consensus,
// determinism, time accounting and the qualitative relationships the paper
// reports.
#include <gtest/gtest.h>

#include <cmath>

#include "admm/ad_admm.hpp"
#include "admm/admmlib.hpp"
#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "admm/reference.hpp"
#include "admm/registry.hpp"
#include "linalg/dense_ops.hpp"
#include "solver/metrics.hpp"
#include "support/status.hpp"

namespace psra::admm {
namespace {

data::SyntheticSpec TinySpec(std::uint64_t seed = 42) {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_features = 80;
  spec.num_train = 160;
  spec.num_test = 60;
  spec.mean_row_nnz = 8.0;
  spec.label_noise = 0.02;
  spec.seed = seed;
  return spec;
}

ClusterConfig TinyCluster(std::uint32_t nodes, std::uint32_t wpn) {
  ClusterConfig c;
  c.num_nodes = nodes;
  c.workers_per_node = wpn;
  return c;
}

RunOptions ShortRun(std::uint64_t iters = 20) {
  RunOptions opt;
  opt.max_iterations = iters;
  return opt;
}

// ---------------------------------------------------------------- problem ----

TEST(Problem, BuildPartitionsAcrossWorkers) {
  const auto p = BuildProblem(TinySpec(), 8);
  EXPECT_EQ(p.num_workers(), 8u);
  std::uint64_t total = 0;
  for (const auto& s : p.shards) total += s.num_samples();
  EXPECT_EQ(total, p.train.num_samples());
}

TEST(Problem, RejectsMoreWorkersThanSamples) {
  EXPECT_THROW(BuildProblem(TinySpec(), 100000), InvalidArgument);
}

// ------------------------------------------------------------ reference ----

TEST(Reference, FindsLowObjective) {
  const auto p = BuildProblem(TinySpec(), 1, /*lambda=*/1.0);
  ReferenceOptions opt;
  opt.iterations = 60;
  const double f_min = ReferenceMinimum(p.train, p.lambda, opt);
  const linalg::DenseVector zero(p.dim(), 0.0);
  const double f_zero = solver::GlobalObjective(p.train, zero, p.lambda);
  EXPECT_GT(f_min, 0.0);
  EXPECT_LT(f_min, f_zero);
}

// ------------------------------------------------------------ algorithms ----

TEST(PsraHgAdmm, ObjectiveDecreasesAndConsensusForms) {
  const auto cluster = TinyCluster(4, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  const auto res = PsraHgAdmm(cfg).Run(p, ShortRun(25));

  ASSERT_EQ(res.trace.size(), 25u);
  EXPECT_LT(res.trace.back().objective, res.trace.front().objective);
  EXPECT_GT(res.final_accuracy, 0.6);
  EXPECT_GT(res.total_comm_time, 0.0);
  EXPECT_GT(res.total_cal_time, 0.0);
  EXPECT_GT(res.elements_sent, 0u);
}

TEST(PsraHgAdmm, AllGroupingModesConverge) {
  const auto cluster = TinyCluster(4, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  const double f_min = ReferenceMinimum(p.train, p.lambda,
                                        {.iterations = 80, .rho = p.rho, .tron = {}});
  for (auto mode : {GroupingMode::kFlat, GroupingMode::kHierarchical,
                    GroupingMode::kDynamicGroups}) {
    PsraConfig cfg;
    cfg.cluster = cluster;
    cfg.grouping = mode;
    auto res = PsraHgAdmm(cfg).Run(p, ShortRun(40));
    res.ApplyReference(f_min);
    EXPECT_LT(res.trace.back().relative_error, 0.25)
        << GroupingModeName(mode);
  }
}

TEST(PsraHgAdmm, DeterministicAcrossRuns) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  const auto a = PsraHgAdmm(cfg).Run(p, ShortRun(10));
  const auto b = PsraHgAdmm(cfg).Run(p, ShortRun(10));
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
  EXPECT_DOUBLE_EQ(a.total_comm_time, b.total_comm_time);
  EXPECT_EQ(a.elements_sent, b.elements_sent);
}

TEST(PsraHgAdmm, FlatAndHierarchicalAgreeOnModel) {
  // Both compute exact global consensus; only the communication schedule
  // differs, so the learned model must match closely.
  const auto cluster = TinyCluster(3, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig flat;
  flat.cluster = cluster;
  flat.grouping = GroupingMode::kFlat;
  PsraConfig hier;
  hier.cluster = cluster;
  hier.grouping = GroupingMode::kHierarchical;
  const auto a = PsraHgAdmm(flat).Run(p, ShortRun(15));
  const auto b = PsraHgAdmm(hier).Run(p, ShortRun(15));
  EXPECT_NEAR(a.final_objective, b.final_objective,
              1e-6 * std::fabs(a.final_objective));
  EXPECT_LT(linalg::DistanceL2(a.final_z, b.final_z), 1e-6);
}

TEST(PsraHgAdmm, WorkersReachConsensusWithZ) {
  const auto cluster = TinyCluster(2, 2);
  auto p = BuildProblem(TinySpec(), cluster.world_size(), /*lambda=*/0.5,
                        /*rho=*/2.0);
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kFlat;
  const auto res = PsraHgAdmm(cfg).Run(p, ShortRun(60));
  // Primal residual ||x_i - z|| shrinks: final z should classify train
  // nearly as well as the reference and the objective should be near f*.
  const double f_min = ReferenceMinimum(p.train, p.lambda,
                                        {.iterations = 120, .rho = p.rho, .tron = {}});
  EXPECT_LT(res.final_objective, 1.2 * f_min + 1e-9);
}

TEST(PsraHgAdmm, SparseVsDenseCommSameModelDifferentCost) {
  // Full-barrier mode: group membership cannot depend on transfer times, so
  // the encoding (sparse vs dense) must not change the computed model. (With
  // dynamic grouping it legitimately can: transfer durations shift leader
  // report order at the Group Generator.)
  const auto cluster = TinyCluster(4, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig sparse_cfg;
  sparse_cfg.cluster = cluster;
  sparse_cfg.grouping = GroupingMode::kHierarchical;
  sparse_cfg.sparse_comm = true;
  PsraConfig dense_cfg;
  dense_cfg.cluster = cluster;
  dense_cfg.grouping = GroupingMode::kHierarchical;
  dense_cfg.sparse_comm = false;
  const auto s = PsraHgAdmm(sparse_cfg).Run(p, ShortRun(8));
  const auto d = PsraHgAdmm(dense_cfg).Run(p, ShortRun(8));
  EXPECT_NEAR(s.final_objective, d.final_objective,
              1e-9 * std::fabs(d.final_objective));
  EXPECT_NE(s.elements_sent, d.elements_sent);
}

TEST(PsraHgAdmm, RingAblationSameModelMoreExpensiveComm) {
  const auto cluster = TinyCluster(6, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig psr;
  psr.cluster = cluster;
  psr.grouping = GroupingMode::kHierarchical;
  PsraConfig ring = psr;
  ring.allreduce = comm::AllreduceKind::kRing;
  const auto a = PsraHgAdmm(psr).Run(p, ShortRun(10));
  const auto b = PsraHgAdmm(ring).Run(p, ShortRun(10));
  // Same BSP math -> identical models.
  EXPECT_LT(linalg::DistanceL2(a.final_z, b.final_z), 1e-9);
}

TEST(PsraHgAdmm, GroupThresholdDefaultsToHalfNodes) {
  const auto cluster = TinyCluster(4, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.group_threshold = 2;
  const auto explicit_half = PsraHgAdmm(cfg).Run(p, ShortRun(5));
  cfg.group_threshold = 0;  // default: nodes/2 == 2
  const auto defaulted = PsraHgAdmm(cfg).Run(p, ShortRun(5));
  EXPECT_DOUBLE_EQ(explicit_half.final_objective, defaulted.final_objective);
}

TEST(LocalSolver, AutoHeuristicPicksGramOnTallShards) {
  LocalSolverOptions opt;
  opt.mode = LocalSolverOptions::Mode::kAuto;
  opt.tall_ratio = 4.0;
  opt.max_gram_dim = 2048;
  EXPECT_TRUE(UseGramSolver(opt, /*rows=*/4000, /*cols=*/100));
  EXPECT_FALSE(UseGramSolver(opt, /*rows=*/300, /*cols=*/100));  // not tall
  EXPECT_FALSE(UseGramSolver(opt, /*rows=*/100000, /*cols=*/4096));  // wide
  EXPECT_FALSE(UseGramSolver(opt, /*rows=*/10, /*cols=*/0));

  opt.mode = LocalSolverOptions::Mode::kCg;
  EXPECT_FALSE(UseGramSolver(opt, 4000, 100));
  opt.mode = LocalSolverOptions::Mode::kGram;
  EXPECT_TRUE(UseGramSolver(opt, 10, 100));  // forced, shape-independent
}

TEST(PsraHgAdmm, GramSolverModeAgreesWithCgOnModel) {
  // The Gram Hessian changes the floating-point route to the same Newton
  // step, not the subproblem: both solver modes must land on (numerically)
  // the same consensus model, and the default mode must remain kCg so the
  // committed baselines stay pinned.
  RunOptions defaults;
  EXPECT_TRUE(defaults.local_solver.mode == LocalSolverOptions::Mode::kCg);

  const auto cluster = TinyCluster(4, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kHierarchical;

  auto cg_opt = ShortRun(15);
  auto gram_opt = ShortRun(15);
  gram_opt.local_solver.mode = LocalSolverOptions::Mode::kGram;
  const auto a = PsraHgAdmm(cfg).Run(p, cg_opt);
  const auto b = PsraHgAdmm(cfg).Run(p, gram_opt);
  EXPECT_NEAR(a.final_objective, b.final_objective,
              1e-6 * std::fabs(a.final_objective));
  EXPECT_LT(linalg::DistanceL2(a.final_z, b.final_z), 1e-4);
}

TEST(PsraHgAdmm, RejectsMismatchedProblem) {
  const auto p = BuildProblem(TinySpec(), 4);
  PsraConfig cfg;
  cfg.cluster = TinyCluster(4, 2);  // world = 8 != 4 shards
  EXPECT_THROW(PsraHgAdmm(cfg).Run(p, ShortRun(1)), InvalidArgument);
}

// ---------------------------------------------------------------- admmlib ----

TEST(AdmmLib, ConvergesOnTinyProblem) {
  const auto cluster = TinyCluster(4, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  AdmmLibConfig cfg;
  cfg.cluster = cluster;
  const auto res = AdmmLib(cfg).Run(p, ShortRun(30));
  ASSERT_EQ(res.trace.size(), 30u);
  EXPECT_LT(res.trace.back().objective, res.trace.front().objective);
  EXPECT_GT(res.final_accuracy, 0.55);
}

TEST(AdmmLib, DeterministicAcrossRuns) {
  const auto cluster = TinyCluster(3, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  AdmmLibConfig cfg;
  cfg.cluster = cluster;
  const auto a = AdmmLib(cfg).Run(p, ShortRun(10));
  const auto b = AdmmLib(cfg).Run(p, ShortRun(10));
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
  EXPECT_DOUBLE_EQ(a.total_comm_time, b.total_comm_time);
}

TEST(AdmmLib, RejectsBadHyperparameters) {
  AdmmLibConfig cfg;
  cfg.min_barrier_fraction = 0.0;
  EXPECT_THROW(AdmmLib{cfg}, InvalidArgument);
  cfg.min_barrier_fraction = 0.5;
  cfg.max_delay = 0;
  EXPECT_THROW(AdmmLib{cfg}, InvalidArgument);
}

// ---------------------------------------------------------------- ad-admm ----

TEST(AdAdmm, ConvergesOnTinyProblem) {
  const auto cluster = TinyCluster(4, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  AdAdmmConfig cfg;
  cfg.cluster = cluster;
  const auto res = AdAdmm(cfg).Run(p, ShortRun(30));
  ASSERT_FALSE(res.trace.empty());
  EXPECT_EQ(res.trace.back().iteration, 30u);
  EXPECT_LT(res.trace.back().objective, res.trace.front().objective);
}

TEST(AdAdmm, DeterministicAcrossRuns) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  AdAdmmConfig cfg;
  cfg.cluster = cluster;
  const auto a = AdAdmm(cfg).Run(p, ShortRun(12));
  const auto b = AdAdmm(cfg).Run(p, ShortRun(12));
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

// --------------------------------------------------------------- registry ----

TEST(Registry, EveryNamedAlgorithmRuns) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  for (const auto& name : AlgorithmNames()) {
    const auto res = RunAlgorithm(name, cluster, p, ShortRun(3));
    EXPECT_FALSE(res.trace.empty()) << name;
    EXPECT_GT(res.final_objective, 0.0) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  const auto cluster = TinyCluster(1, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  EXPECT_THROW(RunAlgorithm("sgd", cluster, p, ShortRun(1)), InvalidArgument);
}

// ------------------------------------------------- paper-shape properties ----

TEST(PaperShape, StragglersHurtUngroupedMoreThanGrouped) {
  ClusterConfig cluster = TinyCluster(8, 1);
  cluster.straggler.node_probability = 0.3;
  cluster.straggler.slow_factor_min = 3.0;
  cluster.straggler.slow_factor_max = 6.0;
  const auto p = BuildProblem(TinySpec(), cluster.world_size());

  PsraConfig grouped;
  grouped.cluster = cluster;
  grouped.grouping = GroupingMode::kDynamicGroups;
  // Isolate the grouping mechanism: the GG service overhead is a constant
  // the paper's Section 5.5 discusses separately, and this tiny problem's
  // compute is small enough that it would mask the wait savings.
  grouped.gg_service_time_s = 0.0;
  PsraConfig ungrouped = grouped;
  ungrouped.grouping = GroupingMode::kHierarchical;

  const auto g = PsraHgAdmm(grouped).Run(p, ShortRun(15));
  const auto u = PsraHgAdmm(ungrouped).Run(p, ShortRun(15));
  // Dynamic grouping avoids waiting for the globally slowest node.
  EXPECT_LT(g.total_comm_time, u.total_comm_time);
}

TEST(PaperShape, AdAdmmCommGrowsWithClusterPsraDoesNot) {
  // Fig. 6's qualitative claim, checked in miniature: going from 2 to 6
  // nodes, AD-ADMM's per-worker comm time grows strictly while
  // PSRA-HGADMM's does not grow by more than the same factor.
  const auto spec = TinySpec();
  auto run = [&](const std::string& name, std::uint32_t nodes) {
    const auto cluster = TinyCluster(nodes, 2);
    const auto p = BuildProblem(spec, cluster.world_size());
    return RunAlgorithm(name, cluster, p, ShortRun(10));
  };
  const auto ad2 = run("ad-admm", 2), ad6 = run("ad-admm", 6);
  const auto ps2 = run("psra-hgadmm", 2), ps6 = run("psra-hgadmm", 6);
  const double ad_growth = ad6.total_comm_time / ad2.total_comm_time;
  const double ps_growth = ps6.total_comm_time / ps2.total_comm_time;
  EXPECT_GT(ad_growth, 1.0);
  EXPECT_LT(ps_growth, ad_growth);
}

}  // namespace
}  // namespace psra::admm
