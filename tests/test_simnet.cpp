// Tests for the virtual-time cluster model: topology, cost model, event
// queue, straggler injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "simnet/cost_model.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/fault.hpp"
#include "simnet/straggler.hpp"
#include "simnet/topology.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::simnet {
namespace {

// -------------------------------------------------------------- topology ----

TEST(Topology, RankNodeMapping) {
  const Topology t(4, 3);
  EXPECT_EQ(t.world_size(), 12u);
  EXPECT_EQ(t.NodeOf(0), 0u);
  EXPECT_EQ(t.NodeOf(3), 1u);
  EXPECT_EQ(t.NodeOf(11), 3u);
  EXPECT_EQ(t.LocalIndexOf(7), 1u);
  EXPECT_EQ(t.RankOf(2, 2), 8u);
}

TEST(Topology, LinkClassification) {
  const Topology t(2, 2);
  EXPECT_EQ(t.LinkBetween(0, 0), Link::kLocal);
  EXPECT_EQ(t.LinkBetween(0, 1), Link::kIntraNode);
  EXPECT_EQ(t.LinkBetween(1, 2), Link::kInterNode);
  EXPECT_TRUE(t.SameNode(2, 3));
  EXPECT_FALSE(t.SameNode(1, 2));
}

TEST(Topology, RanksOnNode) {
  const Topology t(3, 2);
  EXPECT_EQ(t.RanksOnNode(1), (std::vector<Rank>{2, 3}));
}

TEST(Topology, RejectsBadArguments) {
  EXPECT_THROW(Topology(0, 1), InvalidArgument);
  EXPECT_THROW(Topology(1, 0), InvalidArgument);
  const Topology t(2, 2);
  EXPECT_THROW(t.NodeOf(4), InvalidArgument);
  EXPECT_THROW(t.RankOf(2, 0), InvalidArgument);
}

TEST(Topology, RackPartitioningIsContiguous) {
  const Topology t(8, 2, 4);  // 2 nodes per rack
  EXPECT_EQ(t.num_racks(), 4u);
  EXPECT_EQ(t.nodes_per_rack(), 2u);
  EXPECT_EQ(t.RackOf(0), 0u);
  EXPECT_EQ(t.RackOf(1), 0u);
  EXPECT_EQ(t.RackOf(7), 3u);
  EXPECT_EQ(t.RackOfRank(15), 3u);  // rank 15 lives on node 7
  EXPECT_TRUE(t.SameRack(0, 3));    // nodes 0 and 1 share rack 0
  EXPECT_FALSE(t.SameRack(3, 4));   // node 1 vs node 2
  EXPECT_EQ(t.NodesInRack(2), (std::vector<NodeId>{4, 5}));
}

TEST(Topology, LinkClassificationWithRacks) {
  const Topology t(4, 2, 2);
  EXPECT_EQ(t.LinkBetween(0, 1), Link::kIntraNode);  // same node
  EXPECT_EQ(t.LinkBetween(0, 2), Link::kInterNode);  // nodes 0-1, rack 0
  EXPECT_EQ(t.LinkBetween(0, 4), Link::kInterRack);  // nodes 0-2 cross rack
  // One rack (the default) never produces cross-rack links.
  const Topology flat(4, 2);
  EXPECT_EQ(flat.num_racks(), 1u);
  EXPECT_EQ(flat.LinkBetween(0, 6), Link::kInterNode);
}

TEST(Topology, RejectsBadRackCounts) {
  EXPECT_THROW(Topology(4, 1, 0), InvalidArgument);
  EXPECT_THROW(Topology(4, 1, 3), InvalidArgument);  // must divide nodes
  EXPECT_THROW(Topology(4, 1, 8), InvalidArgument);
}

// ------------------------------------------------------------ cost model ----

TEST(CostModel, SparseElementCostMatchesPaperFormula) {
  CostModelConfig cfg;
  cfg.net_bandwidth_bytes_per_s = 1e9;
  cfg.value_bytes = 8;
  cfg.index_bytes = 8;
  const CostModel cm(cfg);
  // theta_s = (value + index) / B
  EXPECT_DOUBLE_EQ(cm.SparseElementCost(Link::kInterNode), 16.0 / 1e9);
  EXPECT_DOUBLE_EQ(cm.DenseElementCost(Link::kInterNode), 8.0 / 1e9);
}

TEST(CostModel, BusIsFasterThanNetwork) {
  const CostModel cm;
  EXPECT_LT(cm.SparseElementCost(Link::kIntraNode),
            cm.SparseElementCost(Link::kInterNode));
  EXPECT_LT(cm.LatencyOf(Link::kIntraNode), cm.LatencyOf(Link::kInterNode));
}

TEST(CostModel, CrossRackFabricIsSlowerThanRackNetwork) {
  const CostModel cm;
  EXPECT_LT(cm.SparseElementCost(Link::kInterNode),
            cm.SparseElementCost(Link::kInterRack));
  EXPECT_LT(cm.LatencyOf(Link::kInterNode), cm.LatencyOf(Link::kInterRack));

  CostModelConfig cfg;
  cfg.rack_bandwidth_bytes_per_s = 1e8;
  cfg.rack_latency_s = 3e-5;
  const CostModel priced(cfg);
  EXPECT_DOUBLE_EQ(priced.SparseElementCost(Link::kInterRack), 16.0 / 1e8);
  EXPECT_DOUBLE_EQ(priced.DenseElementCost(Link::kInterRack), 8.0 / 1e8);
  EXPECT_DOUBLE_EQ(priced.SparseTransferTime(Link::kInterRack, 10),
                   3e-5 + 10 * 16.0 / 1e8);
}

TEST(CostModel, LocalTransfersAreFree) {
  const CostModel cm;
  EXPECT_DOUBLE_EQ(cm.SparseTransferTime(Link::kLocal, 1000), 0.0);
  EXPECT_DOUBLE_EQ(cm.DenseTransferTime(Link::kLocal, 1000), 0.0);
}

TEST(CostModel, TransferTimeIsLatencyPlusElements) {
  CostModelConfig cfg;
  cfg.net_latency_s = 1e-5;
  cfg.net_bandwidth_bytes_per_s = 1e9;
  const CostModel cm(cfg);
  EXPECT_DOUBLE_EQ(cm.SparseTransferTime(Link::kInterNode, 100),
                   1e-5 + 100 * 16.0 / 1e9);
  EXPECT_DOUBLE_EQ(cm.DenseTransferTime(Link::kInterNode, 0), 1e-5);
}

TEST(CostModel, ComputeTimeScalesWithFlops) {
  CostModelConfig cfg;
  cfg.seconds_per_flop = 2e-9;
  const CostModel cm(cfg);
  EXPECT_DOUBLE_EQ(cm.ComputeTime(1e6), 2e-3);
  EXPECT_THROW(cm.ComputeTime(-1.0), InvalidArgument);
}

TEST(CostModel, RejectsInvalidConfig) {
  CostModelConfig cfg;
  cfg.net_bandwidth_bytes_per_s = 0;
  EXPECT_THROW(CostModel{cfg}, InvalidArgument);
}

// ------------------------------------------------------------ event queue ----

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(0); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, CallbacksCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> reschedule = [&] {
    if (++count < 5) q.ScheduleAfter(1.0, reschedule);
  };
  q.ScheduleAt(0.0, reschedule);
  q.Run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.Now(), 4.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.ScheduleAt(2.0, [] {});
  q.Run();
  EXPECT_THROW(q.ScheduleAt(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(q.ScheduleAfter(-1.0, [] {}), InvalidArgument);
}

TEST(EventQueue, StepAndMaxEvents) {
  EventQueue q;
  int n = 0;
  for (int i = 0; i < 5; ++i) q.ScheduleAt(i, [&] { ++n; });
  EXPECT_EQ(q.Run(2), 2u);
  EXPECT_EQ(n, 2);
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(q.Pending(), 2u);
}

// ------------------------------------------------- timer wheel internals ----
// The wheel is an implementation detail behind the same (time, seq)
// contract as the old binary heap; these tests pin that contract on the
// paths the simple tests above never reach — quantization ties, the wheel
// horizon, the overflow list, and the empty-wheel jump.

/// Records its index into a shared order log (16 bytes: fits any wheel
/// record; avoids std::function so the tests also run under test_alloc's
/// assumptions).
struct LogEvent {
  std::vector<int>* order;
  int i;
  void operator()() const { order->push_back(i); }
};

/// Execution order must equal a stable sort by time — stable sort *is* the
/// (time, insertion-seq) tie-break of the replaced binary heap.
void ExpectReferenceOrder(const std::vector<double>& times,
                          const std::vector<int>& order) {
  std::vector<int> expect(times.size());
  std::iota(expect.begin(), expect.end(), 0);
  std::stable_sort(expect.begin(), expect.end(),
                   [&](int a, int b) { return times[a] < times[b]; });
  EXPECT_EQ(order, expect);
}

TEST(EventQueue, RandomizedScheduleMatchesHeapOrder) {
  // Times on a coarse grid force exact duplicates (seq tie-break) and many
  // distinct times inside one quantum (the working heap must order them by
  // exact time, not by bucket).
  Rng rng(2024);
  EventQueue q;
  constexpr int kEvents = 5000;
  std::vector<double> times(kEvents);
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    times[i] = 1e-7 * static_cast<double>(rng.NextBelow(4000));
    q.ScheduleAt(times[i], LogEvent{&order, i});
  }
  EXPECT_EQ(q.Run(), static_cast<std::size_t>(kEvents));
  ExpectReferenceOrder(times, order);
}

TEST(EventQueue, RandomizedScheduleAcrossTheOverflowBoundary) {
  // Half the events land inside the default horizon (~16 ms), half far past
  // it: inserts hit the working heap, the wheel and the overflow list in
  // one schedule, and migration must not disturb the order.
  Rng rng(7);
  EventQueue q;
  constexpr int kEvents = 4000;
  std::vector<double> times(kEvents);
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    times[i] = (i % 2 == 0)
                   ? 1e-6 * static_cast<double>(rng.NextBelow(10000))
                   : 1e-3 * static_cast<double>(rng.NextBelow(200));
    q.ScheduleAt(times[i], LogEvent{&order, i});
  }
  EXPECT_EQ(q.Run(), static_cast<std::size_t>(kEvents));
  ExpectReferenceOrder(times, order);
}

TEST(EventQueue, SameQuantumOrdersByExactTime) {
  // Both events share quantum 0 of the default 2 us tick; scheduling the
  // later one first must not matter.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.5e-6, LogEvent{&order, 1});
  q.ScheduleAt(0.5e-6, LogEvent{&order, 0});
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, TinyWheelWrapsAndMigratesOverflow) {
  // 64 buckets x 1 ms tick = 64 ms horizon. 300 unit-spaced events wrap the
  // wheel several times and start mostly in overflow; order must hold.
  EventQueue q(EventQueue::WheelConfig{1e-3, 64});
  std::vector<double> times;
  std::vector<int> order;
  for (int i = 0; i < 300; ++i) {
    times.push_back(1e-3 * static_cast<double>((i * 7) % 300));
    q.ScheduleAt(times.back(), LogEvent{&order, i});
  }
  EXPECT_EQ(q.Run(), 300u);
  ExpectReferenceOrder(times, order);
}

TEST(EventQueue, EmptyWheelJumpsToFarFutureEvent) {
  // A single event a billion quanta out: if the idle-wheel jump were
  // missing, draining this would scan every bucket between (and time out).
  EventQueue q(EventQueue::WheelConfig{1e-6, 64});
  bool ran = false;
  q.ScheduleAt(1000.0, [&ran] { ran = true; });
  EXPECT_EQ(q.Run(), 1u);
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(q.Now(), 1000.0);
}

TEST(EventQueue, CallbackReschedulingBeyondTheHorizon) {
  // Each hop lands past the wheel horizon of the running queue, so every
  // reschedule exercises overflow insert + idle jump from inside Step().
  EventQueue q(EventQueue::WheelConfig{1e-6, 64});
  struct Hop {
    EventQueue* q;
    int* hops;
    void operator()() const {
      if (--*hops > 0) q->ScheduleAfter(1.0, *this);
    }
  };
  int hops = 10;
  q.ScheduleAt(0.0, Hop{&q, &hops});
  EXPECT_EQ(q.Run(), 10u);
  EXPECT_EQ(hops, 0);
  EXPECT_DOUBLE_EQ(q.Now(), 9.0);
}

TEST(EventQueue, RejectsBadWheelConfig) {
  EXPECT_THROW(EventQueue(EventQueue::WheelConfig{0.0, 64}), InvalidArgument);
  EXPECT_THROW(EventQueue(EventQueue::WheelConfig{1e-6, 63}), InvalidArgument);
  EXPECT_THROW(EventQueue(EventQueue::WheelConfig{1e-6, 32}), InvalidArgument);
}

TEST(EventQueue, TenThousandActorDrainStress) {
  // O(10k) concurrent self-rescheduling actors — the population the wheel
  // is sized for. Verifies full drain, the exact event count, and that
  // virtual time never runs backwards.
  EventQueue q;
  constexpr int kActors = 10000;
  constexpr int kHops = 5;
  struct Actor {
    EventQueue* q;
    double* last_now;
    std::uint64_t state;
    int hops;
    void operator()() {
      EXPECT_GE(q->Now(), *last_now);
      *last_now = q->Now();
      if (--hops == 0) return;
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const double delay = 1e-6 + static_cast<double>(state >> 44) * 1e-9;
      q->ScheduleAfter(delay, *this);
    }
  };
  double last_now = 0.0;
  for (int a = 0; a < kActors; ++a) {
    const double start = 1e-9 * static_cast<double>(a % 97);
    q.ScheduleAt(start, Actor{&q, &last_now, static_cast<std::uint64_t>(a),
                              kHops});
  }
  EXPECT_EQ(q.Pending(), static_cast<std::size_t>(kActors));
  EXPECT_EQ(q.Run(), static_cast<std::size_t>(kActors) * kHops);
  EXPECT_TRUE(q.Empty());
}

// -------------------------------------------------------------- straggler ----

TEST(Straggler, DisabledModelIsIdentity) {
  const Topology t(4, 2);
  const auto m = StragglerModel::None(t);
  EXPECT_FALSE(m.enabled());
  for (Rank r = 0; r < t.world_size(); ++r) {
    EXPECT_DOUBLE_EQ(m.ComputeMultiplier(r, 3), 1.0);
  }
  EXPECT_TRUE(m.StragglingNodes(1).empty());
}

TEST(Straggler, SameNodeWorkersShareFate) {
  const Topology t(8, 4);
  StragglerConfig cfg;
  cfg.node_probability = 0.5;
  const StragglerModel m(t, cfg);
  for (std::uint64_t it = 0; it < 10; ++it) {
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      const auto ranks = t.RanksOnNode(n);
      const double first = m.ComputeMultiplier(ranks[0], it);
      for (Rank r : ranks) {
        EXPECT_DOUBLE_EQ(m.ComputeMultiplier(r, it), first);
      }
    }
  }
}

TEST(Straggler, MultiplierWithinConfiguredRange) {
  const Topology t(16, 1);
  StragglerConfig cfg;
  cfg.node_probability = 1.0;
  cfg.slow_factor_min = 2.0;
  cfg.slow_factor_max = 3.0;
  const StragglerModel m(t, cfg);
  for (Rank r = 0; r < 16; ++r) {
    const double mult = m.ComputeMultiplier(r, 1);
    EXPECT_GE(mult, 2.0);
    EXPECT_LE(mult, 3.0);
  }
}

TEST(Straggler, FrequencyMatchesProbability) {
  const Topology t(32, 1);
  StragglerConfig cfg;
  cfg.node_probability = 0.25;
  const StragglerModel m(t, cfg);
  std::size_t total = 0;
  const std::uint64_t iters = 200;
  for (std::uint64_t it = 0; it < iters; ++it) {
    total += m.StragglingNodes(it).size();
  }
  const double rate = static_cast<double>(total) / (32.0 * iters);
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(Straggler, DeterministicAcrossInstances) {
  const Topology t(8, 2);
  StragglerConfig cfg;
  cfg.node_probability = 0.3;
  cfg.seed = 77;
  const StragglerModel a(t, cfg), b(t, cfg);
  for (std::uint64_t it = 0; it < 20; ++it) {
    EXPECT_EQ(a.StragglingNodes(it), b.StragglingNodes(it));
  }
}

TEST(Straggler, RejectsBadConfig) {
  const Topology t(2, 1);
  StragglerConfig cfg;
  cfg.node_probability = 1.5;
  EXPECT_THROW(StragglerModel(t, cfg), InvalidArgument);
  cfg.node_probability = 0.5;
  cfg.slow_factor_min = 0.5;
  EXPECT_THROW(StragglerModel(t, cfg), InvalidArgument);
  cfg.slow_factor_min = 3.0;
  cfg.slow_factor_max = 2.0;
  EXPECT_THROW(StragglerModel(t, cfg), InvalidArgument);
}

// ----------------------------------------------------------------- fault ----

TEST(FaultPlan, DefaultConstructedIsEmpty) {
  EXPECT_TRUE(FaultPlan().Empty());
  EXPECT_TRUE(FaultPlan(FaultConfig{}).Empty());
  // Non-scheduling knobs do not make a plan non-empty.
  FaultConfig cfg;
  cfg.seed = 777;
  cfg.max_retries = 9;
  cfg.checkpoint_every = 2;
  EXPECT_TRUE(FaultPlan(cfg).Empty());
  // Delay probability without a delay duration schedules nothing.
  cfg.message_delay_probability = 0.5;
  EXPECT_TRUE(FaultPlan(cfg).Empty());
  cfg.message_delay_s = 1e-3;
  EXPECT_FALSE(FaultPlan(cfg).Empty());
}

TEST(FaultPlan, CrashWindowQueries) {
  FaultConfig cfg;
  cfg.crashes.push_back({/*rank=*/2, /*at_iteration=*/5,
                         /*down_iterations=*/3});
  cfg.crashes.push_back({/*rank=*/4, /*at_iteration=*/2,
                         /*down_iterations=*/0});  // never recovers
  const FaultPlan plan(cfg);
  EXPECT_FALSE(plan.Empty());

  EXPECT_FALSE(plan.IsDown(2, 4));
  EXPECT_TRUE(plan.IsDown(2, 5));
  EXPECT_TRUE(plan.IsDown(2, 7));
  EXPECT_FALSE(plan.IsDown(2, 8));
  EXPECT_TRUE(plan.CrashesAt(2, 5));
  EXPECT_FALSE(plan.CrashesAt(2, 6));
  ASSERT_TRUE(plan.CrashAt(2, 5).has_value());
  EXPECT_EQ(plan.CrashAt(2, 5)->down_iterations, 3u);
  EXPECT_FALSE(plan.CrashAt(2, 4).has_value());
  EXPECT_TRUE(plan.RecoversAt(2, 8));
  EXPECT_FALSE(plan.RecoversAt(2, 7));

  EXPECT_TRUE(plan.IsDown(4, 2));
  EXPECT_TRUE(plan.IsDown(4, 1000));  // permanent
  for (std::uint64_t it = 1; it < 20; ++it) EXPECT_FALSE(plan.RecoversAt(4, it));
  EXPECT_FALSE(plan.IsDown(0, 5));  // other ranks untouched
}

TEST(FaultPlan, LeaderDeathLookup) {
  FaultConfig cfg;
  cfg.leader_deaths.push_back({/*node=*/1, /*at_iteration=*/7,
                               /*down_iterations=*/2});
  const FaultPlan plan(cfg);
  ASSERT_TRUE(plan.LeaderDeathAt(1, 7).has_value());
  EXPECT_EQ(plan.LeaderDeathAt(1, 7)->down_iterations, 2u);
  EXPECT_FALSE(plan.LeaderDeathAt(1, 6).has_value());
  EXPECT_FALSE(plan.LeaderDeathAt(0, 7).has_value());
}

TEST(FaultPlan, DropCoinsAreDeterministicAndPerAttempt) {
  FaultConfig cfg;
  cfg.message_drop_probability = 0.5;
  const FaultPlan a(cfg), b(cfg);

  std::size_t drops = 0, attempt_flips = 0;
  for (std::uint64_t it = 1; it <= 40; ++it) {
    for (Rank r = 0; r < 4; ++r) {
      const bool da = a.DropsMessage(it, 0, r, 0);
      EXPECT_EQ(da, b.DropsMessage(it, 0, r, 0));  // pure function of args
      if (da) ++drops;
      if (da != a.DropsMessage(it, 0, r, 1)) ++attempt_flips;
    }
  }
  // p=0.5 over 160 coins: both outcomes occur, and the attempt number
  // re-randomizes the coin (otherwise retries could never succeed).
  EXPECT_GT(drops, 40u);
  EXPECT_LT(drops, 120u);
  EXPECT_GT(attempt_flips, 0u);

  FaultConfig other = cfg;
  other.seed = cfg.seed + 1;
  const FaultPlan c(other);
  std::size_t diff = 0;
  for (std::uint64_t it = 1; it <= 40; ++it) {
    if (a.DropsMessage(it, 0, 0, 0) != c.DropsMessage(it, 0, 0, 0)) ++diff;
  }
  EXPECT_GT(diff, 0u);  // the seed matters
}

TEST(FaultPlan, MessageDelayIsAllOrNothing) {
  FaultConfig cfg;
  cfg.message_delay_probability = 0.4;
  cfg.message_delay_s = 2.5e-3;
  const FaultPlan plan(cfg);
  std::size_t delayed = 0, total = 0;
  for (std::uint64_t it = 1; it <= 50; ++it) {
    for (Rank s = 0; s < 3; ++s) {
      const VirtualTime d = plan.MessageDelay(it, 1, s, 0);
      EXPECT_TRUE(d == 0.0 || d == cfg.message_delay_s);
      if (d > 0.0) ++delayed;
      ++total;
    }
  }
  EXPECT_GT(delayed, 0u);
  EXPECT_LT(delayed, total);
}

TEST(FaultPlan, RejectsBadConfig) {
  FaultConfig cfg;
  cfg.message_drop_probability = 1.0;  // would retry forever
  EXPECT_THROW(FaultPlan{cfg}, InvalidArgument);
  cfg.message_drop_probability = 0.2;
  cfg.retry_timeout_s = 0.0;
  EXPECT_THROW(FaultPlan{cfg}, InvalidArgument);
  cfg.retry_timeout_s = 1e-3;
  cfg.checkpoint_every = 0;
  EXPECT_THROW(FaultPlan{cfg}, InvalidArgument);
  cfg.checkpoint_every = 10;
  cfg.crashes.push_back({/*rank=*/0, /*at_iteration=*/0,
                         /*down_iterations=*/1});  // iterations are 1-based
  EXPECT_THROW(FaultPlan{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace psra::simnet
