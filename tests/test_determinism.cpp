// Host-parallelism determinism regression: the thread pool is a wall-clock
// optimization only, so a PSRA-HGADMM run must produce BITWISE-identical
// results for any pool size, including no pool at all. Every parallel loop
// in the hot path (XWStepAll, ZYStepAll, ComputeResiduals, MeanZInto) either
// touches disjoint per-worker state or reduces through a fixed block
// structure, and this test pins that contract.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "engine/thread_pool.hpp"

namespace psra::admm {
namespace {

data::SyntheticSpec SmallSpec() {
  data::SyntheticSpec spec;
  spec.name = "determinism";
  spec.num_features = 120;
  spec.num_train = 240;
  spec.num_test = 80;
  spec.mean_row_nnz = 10.0;
  spec.label_noise = 0.02;
  spec.seed = 7;
  return spec;
}

PsraConfig SmallCluster(GroupingMode grouping) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = grouping;
  return cfg;
}

RunResult RunWithPool(const ConsensusProblem& problem, const PsraConfig& cfg,
                      engine::ThreadPool* pool) {
  RunOptions opt;
  opt.max_iterations = 8;
  opt.eval_every = 2;
  opt.adaptive_rho.enabled = true;  // exercise the residual-driven rho path
  opt.pool = pool;
  return PsraHgAdmm(cfg).Run(problem, opt);
}

/// Bitwise equality for doubles: EXPECT_EQ would accept -0.0 == 0.0 and
/// reject NaN == NaN; the contract here is "same bits", nothing weaker.
void ExpectBitsEq(double a, double b, const char* what) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << what << ": " << a << " vs " << b;
}

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  // Final consensus model, bit for bit.
  ASSERT_EQ(a.final_z.size(), b.final_z.size());
  for (std::size_t i = 0; i < a.final_z.size(); ++i) {
    ExpectBitsEq(a.final_z[i], b.final_z[i], "final_z");
  }
  ExpectBitsEq(a.final_objective, b.final_objective, "final_objective");
  ExpectBitsEq(a.final_accuracy, b.final_accuracy, "final_accuracy");

  // Virtual-time accounting and comm stats: host threading must not change
  // a single simulated byte or second.
  ExpectBitsEq(a.total_cal_time, b.total_cal_time, "total_cal_time");
  ExpectBitsEq(a.total_comm_time, b.total_comm_time, "total_comm_time");
  ExpectBitsEq(a.makespan, b.makespan, "makespan");
  EXPECT_EQ(a.elements_sent, b.elements_sent);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.stopped_early, b.stopped_early);
  EXPECT_EQ(a.faults, b.faults);

  // Full trace.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t t = 0; t < a.trace.size(); ++t) {
    const auto& ra = a.trace[t];
    const auto& rb = b.trace[t];
    EXPECT_EQ(ra.iteration, rb.iteration);
    ExpectBitsEq(ra.objective, rb.objective, "trace.objective");
    ExpectBitsEq(ra.accuracy, rb.accuracy, "trace.accuracy");
    ExpectBitsEq(ra.cal_time, rb.cal_time, "trace.cal_time");
    ExpectBitsEq(ra.comm_time, rb.comm_time, "trace.comm_time");
    ExpectBitsEq(ra.makespan, rb.makespan, "trace.makespan");
    ExpectBitsEq(ra.primal_residual, rb.primal_residual,
                 "trace.primal_residual");
    ExpectBitsEq(ra.dual_residual, rb.dual_residual, "trace.dual_residual");
    ExpectBitsEq(ra.rho, rb.rho, "trace.rho");
  }
}

class PoolDeterminism : public ::testing::TestWithParam<GroupingMode> {};

TEST_P(PoolDeterminism, SerialAndPooledRunsAreBitwiseIdentical) {
  const auto problem = BuildProblem(SmallSpec(), 8);
  const auto cfg = SmallCluster(GetParam());

  const RunResult serial = RunWithPool(problem, cfg, nullptr);

  engine::ThreadPool pool1(1);
  ExpectIdenticalRuns(serial, RunWithPool(problem, cfg, &pool1));

  // Pool of 2: the smallest size where work is genuinely split, and where
  // the group-batched phases (cross-group ParallelFor) straddle threads.
  engine::ThreadPool pool2(2);
  pool2.ForceParallelDispatchForTesting();
  ExpectIdenticalRuns(serial, RunWithPool(problem, cfg, &pool2));

  engine::ThreadPool pool8(8);
  pool8.ForceParallelDispatchForTesting();  // even on a 1-CPU host
  ExpectIdenticalRuns(serial, RunWithPool(problem, cfg, &pool8));

  // A second run on the same pool must also match: the workspaces the run
  // recycles internally may not leak state between runs.
  ExpectIdenticalRuns(serial, RunWithPool(problem, cfg, &pool8));
}

TEST_P(PoolDeterminism, EmptyFaultPlanKnobsArePureNoOps) {
  // Tuning fault knobs that schedule nothing (seed, retry policy,
  // checkpoint cadence) must leave runs BITWISE identical: an empty
  // FaultPlan takes exactly the fault-free code path.
  const auto problem = BuildProblem(SmallSpec(), 8);
  const auto cfg = SmallCluster(GetParam());
  const RunResult base = RunWithPool(problem, cfg, nullptr);

  auto tweaked = cfg;
  tweaked.cluster.fault.seed = 9999;
  tweaked.cluster.fault.checkpoint_every = 2;
  tweaked.cluster.fault.max_retries = 11;
  tweaked.cluster.fault.retry_timeout_s = 0.5;
  tweaked.cluster.fault.restart_delay_s = 7.0;
  ExpectIdenticalRuns(base, RunWithPool(problem, tweaked, nullptr));
  EXPECT_EQ(base.faults, FaultStats{});
}

TEST_P(PoolDeterminism, FaultyRunsAreBitwiseIdenticalAcrossPools) {
  // The determinism contract extends to fault injection: crashes, drops and
  // recoveries are scheduled in virtual time, so host threading must not
  // move a single one of them.
  const auto problem = BuildProblem(SmallSpec(), 8);
  auto cfg = SmallCluster(GetParam());
  cfg.cluster.fault.crashes.push_back({/*rank=*/1, /*at_iteration=*/3,
                                       /*down_iterations=*/2});
  cfg.cluster.fault.message_drop_probability = 0.1;
  cfg.cluster.fault.checkpoint_every = 2;

  const RunResult serial = RunWithPool(problem, cfg, nullptr);
  EXPECT_EQ(serial.faults.worker_crashes, 1u);
  EXPECT_EQ(serial.faults.recoveries, 1u);

  engine::ThreadPool pool8(8);
  pool8.ForceParallelDispatchForTesting();
  ExpectIdenticalRuns(serial, RunWithPool(problem, cfg, &pool8));
  ExpectIdenticalRuns(serial, RunWithPool(problem, cfg, &pool8));
}

INSTANTIATE_TEST_SUITE_P(AllGroupings, PoolDeterminism,
                         ::testing::Values(GroupingMode::kFlat,
                                           GroupingMode::kHierarchical,
                                           GroupingMode::kDynamicGroups),
                         [](const auto& info) {
                           return GroupingModeName(info.param);
                         });

// The transpose-reduction solver path (DESIGN.md §14) is covered by the
// same contract: with the Gram Hessian forced on for every worker, serial
// and pooled runs must stay bitwise identical — the packed Gram accumulation
// and the dense Hessian products are per-worker state, untouched by host
// threading.
TEST(GramSolverDeterminism, SerialAndPooledRunsAreBitwiseIdentical) {
  const auto problem = BuildProblem(SmallSpec(), 8);
  const auto cfg = SmallCluster(GroupingMode::kHierarchical);

  const auto run = [&](engine::ThreadPool* pool) {
    RunOptions opt;
    opt.max_iterations = 8;
    opt.eval_every = 2;
    opt.adaptive_rho.enabled = true;  // rho changes rebuild the shifted Gram
    opt.local_solver.mode = LocalSolverOptions::Mode::kGram;
    opt.pool = pool;
    return PsraHgAdmm(cfg).Run(problem, opt);
  };

  const RunResult serial = run(nullptr);
  engine::ThreadPool pool8(8);
  pool8.ForceParallelDispatchForTesting();
  ExpectIdenticalRuns(serial, run(&pool8));
  ExpectIdenticalRuns(serial, run(&pool8));
}

}  // namespace
}  // namespace psra::admm
