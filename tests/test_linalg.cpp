// Unit + property tests for dense kernels, sparse vectors and CSR matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "linalg/csr_matrix.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/gram.hpp"
#include "linalg/sparse_vector.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::linalg {
namespace {

// ----------------------------------------------------------- dense ops ----

TEST(DenseOps, AxpyAddsScaledVector) {
  DenseVector x{1, 2, 3}, y{10, 20, 30};
  Axpy(2.0, x, y);
  EXPECT_EQ(y, (DenseVector{12, 24, 36}));
}

TEST(DenseOps, AxpyDimensionMismatchThrows) {
  DenseVector x{1}, y{1, 2};
  EXPECT_THROW(Axpy(1.0, x, y), InvalidArgument);
}

TEST(DenseOps, DotAndNorms) {
  DenseVector x{3, -4};
  EXPECT_DOUBLE_EQ(Dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(NormInf(x), 4.0);
}

TEST(DenseOps, DistanceL2) {
  DenseVector x{1, 1}, y{4, 5};
  EXPECT_DOUBLE_EQ(DistanceL2(x, y), 5.0);
}

TEST(DenseOps, AddSubtract) {
  DenseVector x{1, 2}, y{3, 5}, out;
  Add(x, y, out);
  EXPECT_EQ(out, (DenseVector{4, 7}));
  Subtract(y, x, out);
  EXPECT_EQ(out, (DenseVector{2, 3}));
}

TEST(DenseOps, SoftThresholdShrinksTowardZero) {
  DenseVector x{3.0, -3.0, 0.5, -0.5, 0.0};
  DenseVector out(5);
  SoftThreshold(x, 1.0, out);
  EXPECT_EQ(out, (DenseVector{2.0, -2.0, 0.0, 0.0, 0.0}));
}

TEST(DenseOps, SoftThresholdZeroKappaIsIdentity) {
  DenseVector x{1.5, -2.5}, out(2);
  SoftThreshold(x, 0.0, out);
  EXPECT_EQ(out, x);
}

TEST(DenseOps, SoftThresholdNegativeKappaThrows) {
  DenseVector x{1.0}, out(1);
  EXPECT_THROW(SoftThreshold(x, -0.1, out), InvalidArgument);
}

TEST(DenseOps, CountNonzeros) {
  DenseVector x{0.0, 1e-9, 0.5, -2.0};
  EXPECT_EQ(CountNonzeros(x), 3u);
  EXPECT_EQ(CountNonzeros(x, 1e-6), 2u);
}

// ------------------------------------------------------- sparse vector ----

TEST(SparseVector, FromDenseRoundTrip) {
  DenseVector dense{0.0, 1.5, 0.0, -2.0, 0.0};
  const auto sv = SparseVector::FromDense(dense);
  EXPECT_EQ(sv.nnz(), 2u);
  EXPECT_EQ(sv.dim(), 5u);
  EXPECT_EQ(sv.ToDense(), dense);
}

TEST(SparseVector, ConstructorValidatesOrdering) {
  EXPECT_THROW(SparseVector(5, {3, 1}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(SparseVector(5, {1, 1}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(SparseVector(5, {5}, {1.0}), InvalidArgument);
  EXPECT_THROW(SparseVector(5, {1}, {1.0, 2.0}), InvalidArgument);
}

TEST(SparseVector, AtReturnsStoredOrZero) {
  const SparseVector sv(6, {1, 4}, {2.0, -1.0});
  EXPECT_DOUBLE_EQ(sv.At(1), 2.0);
  EXPECT_DOUBLE_EQ(sv.At(4), -1.0);
  EXPECT_DOUBLE_EQ(sv.At(0), 0.0);
  EXPECT_THROW(sv.At(6), InvalidArgument);
}

TEST(SparseVector, SlicePreservesCoordinates) {
  const SparseVector sv(10, {1, 3, 7, 9}, {1, 2, 3, 4});
  const auto s = sv.Slice(3, 8);
  EXPECT_EQ(s.dim(), 10u);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.At(3), 2.0);
  EXPECT_DOUBLE_EQ(s.At(7), 3.0);
}

TEST(SparseVector, CountInRange) {
  const SparseVector sv(10, {1, 3, 7, 9}, {1, 2, 3, 4});
  EXPECT_EQ(sv.CountInRange(0, 10), 4u);
  EXPECT_EQ(sv.CountInRange(2, 8), 2u);
  EXPECT_EQ(sv.CountInRange(4, 7), 0u);
}

TEST(SparseVector, SumMergesIndices) {
  const SparseVector a(5, {0, 2}, {1.0, 2.0});
  const SparseVector b(5, {2, 4}, {3.0, 4.0});
  const auto s = SparseVector::Sum(a, b);
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_DOUBLE_EQ(s.At(0), 1.0);
  EXPECT_DOUBLE_EQ(s.At(2), 5.0);
  EXPECT_DOUBLE_EQ(s.At(4), 4.0);
}

TEST(SparseVector, AddInPlaceWithScale) {
  SparseVector a(4, {1}, {2.0});
  const SparseVector b(4, {1, 3}, {1.0, 1.0});
  a.AddInPlace(b, -2.0);
  EXPECT_DOUBLE_EQ(a.At(1), 0.0);
  EXPECT_DOUBLE_EQ(a.At(3), -2.0);
  a.Prune();
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(SparseVector, DotWithDense) {
  const SparseVector sv(4, {0, 3}, {2.0, -1.0});
  const DenseVector d{1.0, 5.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(sv.Dot(d), 2.0 - 4.0);
}

TEST(SparseVector, ConcatDisjoint) {
  const SparseVector a(8, {0, 1}, {1, 2});
  const SparseVector b(8, {4, 6}, {3, 4});
  const auto c = SparseVector::ConcatDisjoint(std::vector<SparseVector>{a, b});
  EXPECT_EQ(c.nnz(), 4u);
  EXPECT_DOUBLE_EQ(c.At(6), 4.0);
}

TEST(SparseVector, ConcatOverlappingThrows) {
  const SparseVector a(8, {0, 5}, {1, 2});
  const SparseVector b(8, {4, 6}, {3, 4});
  EXPECT_THROW(
      SparseVector::ConcatDisjoint(std::vector<SparseVector>{a, b}),
      InvalidArgument);
}

TEST(SparseVector, InPlaceVariantsMatchValueReturningOnes) {
  const DenseVector dense{0.0, 1.5, 0.0, -2.0, 0.0};
  SparseVector sv(3, {0}, {9.0});  // stale contents must be overwritten
  sv.AssignFromDense(dense);
  EXPECT_EQ(sv, SparseVector::FromDense(dense));

  DenseVector back{7.0, 7.0};  // wrong size; ToDense must resize
  sv.ToDense(back);
  EXPECT_EQ(back, dense);

  const SparseVector src(10, {1, 3, 7, 9}, {1, 2, 3, 4});
  SparseVector slice(2, {1}, {5.0});
  src.SliceInto(3, 8, slice);
  EXPECT_EQ(slice, src.Slice(3, 8));

  const SparseVector a(5, {0, 2}, {1.0, 2.0});
  const SparseVector b(5, {2, 4}, {3.0, 4.0});
  SparseVector sum(1, {0}, {1.0});
  SparseVector::SumInto(a, b, sum);
  EXPECT_EQ(sum, SparseVector::Sum(a, b));

  const SparseVector p0(8, {0, 1}, {1, 2});
  const SparseVector p1(8, {4, 6}, {3, 4});
  const std::vector<SparseVector> parts{p0, p1};
  SparseVector cat(3, {2}, {8.0});
  SparseVector::ConcatDisjointInto(parts, cat);
  EXPECT_EQ(cat, SparseVector::ConcatDisjoint(parts));
}

TEST(SparseVector, InPlaceVariantsRejectAliasing) {
  SparseVector a(5, {0, 2}, {1.0, 2.0});
  const SparseVector b(5, {2, 4}, {3.0, 4.0});
  EXPECT_THROW(SparseVector::SumInto(a, b, a), InvalidArgument);
  EXPECT_THROW(a.SliceInto(0, 5, a), InvalidArgument);
}

TEST(SparseVector, AddToDenseScatters) {
  const SparseVector sv(3, {1}, {2.0});
  DenseVector acc{1.0, 1.0, 1.0};
  sv.AddToDense(acc, 3.0);
  EXPECT_EQ(acc, (DenseVector{1.0, 7.0, 1.0}));
}

/// Property: Sum agrees with dense addition for random vectors.
class SparseSumProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseSumProperty, MatchesDenseAddition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t dim = 50;
  DenseVector da(dim, 0.0), db(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    if (rng.NextBool(0.3)) da[i] = rng.NextGaussian();
    if (rng.NextBool(0.3)) db[i] = rng.NextGaussian();
  }
  const auto sum =
      SparseVector::Sum(SparseVector::FromDense(da), SparseVector::FromDense(db));
  DenseVector expected;
  Add(da, db, expected);
  const auto actual = sum.ToDense();
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseSumProperty, ::testing::Range(0, 10));

// ---------------------------------------------------------- csr matrix ----

CsrMatrix MakeSmall() {
  // [1 0 2]
  // [0 3 0]
  CsrMatrix::Builder b(3);
  const CsrMatrix::Index c0[] = {0, 2};
  const double v0[] = {1.0, 2.0};
  b.AddRow(c0, v0);
  const CsrMatrix::Index c1[] = {1};
  const double v1[] = {3.0};
  b.AddRow(c1, v1);
  return b.Build();
}

TEST(CsrMatrix, BasicAccessors) {
  const auto m = MakeSmall();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.5);
  EXPECT_EQ(m.MaxOccupiedColumn(), 3u);
}

TEST(CsrMatrix, Multiply) {
  const auto m = MakeSmall();
  DenseVector x{1, 1, 1}, out(2);
  m.Multiply(x, out);
  EXPECT_EQ(out, (DenseVector{3, 3}));
}

TEST(CsrMatrix, TransposeMultiplyAdd) {
  const auto m = MakeSmall();
  DenseVector v{1, 2}, out(3, 0.0);
  m.TransposeMultiplyAdd(v, out);
  EXPECT_EQ(out, (DenseVector{1, 6, 2}));
}

TEST(CsrMatrix, RowDotAndRow) {
  const auto m = MakeSmall();
  DenseVector x{2, 0, 1};
  EXPECT_DOUBLE_EQ(m.RowDot(0, x), 4.0);
  const auto row = m.Row(1);
  EXPECT_EQ(row.dim(), 3u);
  EXPECT_DOUBLE_EQ(row.At(1), 3.0);
}

TEST(CsrMatrix, SliceRows) {
  const auto m = MakeSmall();
  const auto s = m.SliceRows(1, 2);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_DOUBLE_EQ(s.RowValues(0)[0], 3.0);
}

TEST(CsrMatrix, ColumnNnz) {
  const auto m = MakeSmall();
  EXPECT_EQ(m.ColumnNnz(), (std::vector<std::size_t>{1, 1, 1}));
}

TEST(CsrMatrix, BuilderRejectsBadRows) {
  CsrMatrix::Builder b(3);
  const CsrMatrix::Index bad_order[] = {2, 1};
  const double v[] = {1.0, 2.0};
  EXPECT_THROW(b.AddRow(bad_order, v), InvalidArgument);
  const CsrMatrix::Index out_of_range[] = {3};
  const double v1[] = {1.0};
  EXPECT_THROW(b.AddRow(out_of_range, v1), InvalidArgument);
}

TEST(CsrMatrix, DimensionChecksOnKernels) {
  const auto m = MakeSmall();
  DenseVector bad(2), out2(2), out3(3);
  EXPECT_THROW(m.Multiply(bad, out2), InvalidArgument);
  EXPECT_THROW(m.TransposeMultiplyAdd(out3, out3), InvalidArgument);
}

/// Property: (A^T v) . x == v . (A x) for random matrices.
class CsrAdjointProperty : public ::testing::TestWithParam<int> {};

TEST_P(CsrAdjointProperty, AdjointIdentityHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t rows = 20, cols = 15;
  CsrMatrix::Builder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<CsrMatrix::Index> idx;
    std::vector<double> val;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.NextBool(0.25)) {
        idx.push_back(c);
        val.push_back(rng.NextGaussian());
      }
    }
    b.AddRow(idx, val);
  }
  const auto m = b.Build();

  DenseVector x(cols), v(rows);
  for (auto& e : x) e = rng.NextGaussian();
  for (auto& e : v) e = rng.NextGaussian();

  DenseVector ax(rows), atv(cols, 0.0);
  m.Multiply(x, ax);
  m.TransposeMultiplyAdd(v, atv);
  EXPECT_NEAR(Dot(ax, v), Dot(x, atv), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrAdjointProperty, ::testing::Range(0, 10));

// ------------------------------------------------- fused dense kernels ----

// AxpyNormSq/XpayNormSq/CopyNormSq use the same four-lane accumulation as
// Dot (lane = index % 4, combined (a0+a1)+(a2+a3)), so the returned norm
// must be BITWISE equal to a follow-up Dot on the updated vector — that is
// what lets TRON swap its fused loops for these kernels without moving the
// committed convergence baselines.
TEST(DenseOps, AxpyNormSqUpdatesAndMatchesDotBitwise) {
  Rng rng(21);
  DenseVector x(37), y(37);
  for (auto& e : x) e = rng.NextGaussian();
  for (auto& e : y) e = rng.NextGaussian();
  auto expected = y;
  for (std::size_t i = 0; i < y.size(); ++i) expected[i] += 0.37 * x[i];
  const double nrm = AxpyNormSq(0.37, x, y);
  EXPECT_EQ(y, expected);
  EXPECT_EQ(nrm, Dot(y, y));
}

TEST(DenseOps, XpayNormSqUpdatesAndMatchesDotBitwise) {
  Rng rng(22);
  DenseVector x(41), y(41);
  for (auto& e : x) e = rng.NextGaussian();
  for (auto& e : y) e = rng.NextGaussian();
  auto expected = y;
  for (std::size_t i = 0; i < y.size(); ++i) {
    expected[i] = x[i] + -0.8 * expected[i];
  }
  const double nrm = XpayNormSq(-0.8, x, y);
  EXPECT_EQ(y, expected);
  EXPECT_EQ(nrm, Dot(y, y));
}

TEST(DenseOps, CopyNormSqCopiesAndMatchesDotBitwise) {
  Rng rng(23);
  DenseVector src(29), dst(29, 0.0), v(29);
  for (auto& e : src) e = rng.NextGaussian();
  for (auto& e : v) e = rng.NextGaussian();
  const double nrm = CopyNormSq(src, dst, v);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(nrm, Dot(v, v));
}

TEST(DenseOps, FusedKernelDimensionChecks) {
  DenseVector a(3), b(4);
  EXPECT_THROW(AxpyNormSq(1.0, a, b), InvalidArgument);
  EXPECT_THROW(XpayNormSq(1.0, a, b), InvalidArgument);
  EXPECT_THROW(CopyNormSq(a, b, a), InvalidArgument);
}

// The blocked Gemv/GemvT use a different (fixed, deterministic) summation
// order than a naive loop, so they are compared against row dots within a
// tight tolerance rather than bitwise.
TEST(DenseOps, GemvMatchesRowDots) {
  Rng rng(24);
  const std::size_t rows = 11, cols = 7;  // exercises both tail loops
  DenseVector a(rows * cols), x(cols), y(rows);
  for (auto& e : a) e = rng.NextGaussian();
  for (auto& e : x) e = rng.NextGaussian();
  Gemv(a, rows, cols, x, y);
  for (std::size_t r = 0; r < rows; ++r) {
    double ref = 0.0;
    for (std::size_t j = 0; j < cols; ++j) ref += a[r * cols + j] * x[j];
    EXPECT_NEAR(y[r], ref, 1e-12) << "row " << r;
  }
}

TEST(DenseOps, GemvTIsAdjointOfGemv) {
  Rng rng(25);
  const std::size_t rows = 13, cols = 6;
  DenseVector a(rows * cols), x(cols), u(rows), ax(rows), atu(cols);
  for (auto& e : a) e = rng.NextGaussian();
  for (auto& e : x) e = rng.NextGaussian();
  for (auto& e : u) e = rng.NextGaussian();
  Gemv(a, rows, cols, x, ax);
  GemvT(a, rows, cols, u, atu);
  EXPECT_NEAR(Dot(ax, u), Dot(x, atu), 1e-10);
}

TEST(DenseOps, GemvDimensionChecks) {
  DenseVector a(6), x(3), y(2), bad(4);
  EXPECT_THROW(Gemv(a, 2, 3, bad, y), InvalidArgument);
  EXPECT_THROW(Gemv(a, 3, 3, x, y), InvalidArgument);
  EXPECT_THROW(GemvT(a, 2, 3, x, y), InvalidArgument);
}

// ------------------------------------------------------ symmetric gram ----

namespace {

/// Dense reference: G = sum_r w_r a_r a_r^T over the rows of m (w empty =
/// all ones), returned as a full dense matrix.
std::vector<double> DenseGram(const CsrMatrix& m,
                              std::span<const double> w) {
  const auto d = static_cast<std::size_t>(m.cols());
  std::vector<double> g(d * d, 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.RowIndices(r);
    const auto vals = m.RowValues(r);
    const double wr = w.empty() ? 1.0 : w[r];
    for (std::size_t a = 0; a < cols.size(); ++a) {
      for (std::size_t b = 0; b < cols.size(); ++b) {
        g[static_cast<std::size_t>(cols[a]) * d +
          static_cast<std::size_t>(cols[b])] += wr * vals[a] * vals[b];
      }
    }
  }
  return g;
}

CsrMatrix RandomTall(std::uint64_t seed, std::size_t rows, std::size_t cols,
                     double density = 0.4, bool with_empty_rows = false) {
  Rng rng(seed);
  CsrMatrix::Builder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<CsrMatrix::Index> idx;
    std::vector<double> val;
    if (!(with_empty_rows && r % 5 == 0)) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.NextBool(density)) {
          idx.push_back(c);
          val.push_back(rng.NextGaussian());
        }
      }
    }
    b.AddRow(idx, val);
  }
  return b.Build();
}

}  // namespace

TEST(SymmetricGram, AccumulatesOuterProductsLikeDenseReference) {
  const auto m = RandomTall(31, 12, 5);
  SymmetricGram g;
  g.Reset(static_cast<std::size_t>(m.cols()));
  m.GramProduct(g);
  const auto ref = DenseGram(m, {});
  for (std::size_t i = 0; i < g.dim(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(g.At(i, j), ref[i * g.dim() + j], 1e-12)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(SymmetricGram, WeightedGramMatchesDenseReference) {
  const auto m = RandomTall(32, 15, 4);
  DenseVector w(15);
  Rng rng(33);
  for (auto& e : w) e = 0.1 + std::fabs(rng.NextGaussian());
  SymmetricGram g;
  g.Reset(static_cast<std::size_t>(m.cols()));
  m.GramProduct(w, g);
  const auto ref = DenseGram(m, w);
  for (std::size_t i = 0; i < g.dim(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(g.At(i, j), ref[i * g.dim() + j], 1e-12);
    }
  }
}

TEST(SymmetricGram, GramProductHandlesEmptyRowsAndSingleColumn) {
  // Empty rows contribute nothing; a single-column shard packs to one entry.
  const auto m = RandomTall(34, 20, 1, 0.9, /*with_empty_rows=*/true);
  SymmetricGram g;
  g.Reset(1);
  m.GramProduct(g);
  double ref = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (const double v : m.RowValues(r)) ref += v * v;
  }
  EXPECT_EQ(g.packed_size(), 1u);
  EXPECT_NEAR(g.At(0, 0), ref, 1e-12);
}

TEST(SymmetricGram, AddDiagonalAndMultiplyMatchDense) {
  const auto m = RandomTall(35, 10, 6);
  SymmetricGram g;
  g.Reset(6);
  m.GramProduct(g);
  g.AddDiagonal(0.9);
  auto ref = DenseGram(m, {});
  for (std::size_t i = 0; i < 6; ++i) ref[i * 6 + i] += 0.9;

  Rng rng(36);
  DenseVector x(6), out(6, -1.0);
  for (auto& e : x) e = rng.NextGaussian();
  g.Multiply(x, out);
  for (std::size_t i = 0; i < 6; ++i) {
    double want = 0.0;
    for (std::size_t j = 0; j < 6; ++j) want += ref[i * 6 + j] * x[j];
    EXPECT_NEAR(out[i], want, 1e-12) << "row " << i;
  }
}

TEST(PackedCholesky, SolvesShiftedSpdSystem) {
  const auto m = RandomTall(37, 30, 8);
  SymmetricGram g;
  g.Reset(8);
  m.GramProduct(g);
  PackedCholesky chol;
  ASSERT_TRUE(chol.Factor(g, 1.3));
  EXPECT_TRUE(chol.ok());

  Rng rng(38);
  DenseVector b(8), x(8), gx(8);
  for (auto& e : b) e = rng.NextGaussian();
  chol.Solve(b, x);
  // (G + 1.3 I) x must reproduce b.
  g.Multiply(x, gx);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(gx[i] + 1.3 * x[i], b[i], 1e-9) << "row " << i;
  }
}

TEST(PackedCholesky, RejectsIndefiniteMatrix) {
  // An all-zero Gram with no shift has a zero pivot; Factor must refuse.
  SymmetricGram g;
  g.Reset(3);
  PackedCholesky chol;
  EXPECT_FALSE(chol.Factor(g, 0.0));
  EXPECT_FALSE(chol.ok());
  EXPECT_TRUE(chol.Factor(g, 1e-3));  // any positive shift fixes it
}

// ----------------------------------------- blocked CSR kernel contracts ----

namespace {

/// Scalar reference loops with the natural sequential accumulation order —
/// the order the blocked kernels are required to preserve bitwise (the
/// committed sweep baselines pin convergence integers that depend on it).
void ScalarMultiply(const CsrMatrix& m, std::span<const double> x,
                    std::span<double> out) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.RowIndices(r);
    const auto vals = m.RowValues(r);
    double acc = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    out[r] = acc;
  }
}

void ScalarTransposeMultiplyAdd(const CsrMatrix& m, std::span<const double> v,
                                std::span<double> out) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    const auto cols = m.RowIndices(r);
    const auto vals = m.RowValues(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out[static_cast<std::size_t>(cols[k])] += vr * vals[k];
    }
  }
}

}  // namespace

TEST(CsrMatrix, BlockedMultiplyIsBitwiseEqualToScalar) {
  for (const std::uint64_t seed : {41, 42, 43}) {
    // Odd row counts exercise the tail; empty rows exercise the lockstep
    // loop's early exit; single-column matrices the degenerate shape.
    const std::vector<std::tuple<std::size_t, std::size_t, bool>> shapes = {
        {23, 9, true}, {16, 1, false}, {3, 7, true}};
    for (const auto& [rows, cols, empty] : shapes) {
      const auto m = RandomTall(seed, rows, cols, 0.5, empty);
      Rng rng(seed + 7);
      DenseVector x(cols), got(rows, -1.0), want(rows, -2.0);
      for (auto& e : x) e = rng.NextGaussian();
      m.Multiply(x, got);
      ScalarMultiply(m, x, want);
      EXPECT_EQ(got, want) << "seed " << seed << " rows " << rows;
    }
  }
}

TEST(CsrMatrix, BlockedTransposeMultiplyAddIsBitwiseEqualToScalar) {
  for (const std::uint64_t seed : {44, 45}) {
    const auto m = RandomTall(seed, 21, 8, 0.5, /*with_empty_rows=*/true);
    Rng rng(seed + 7);
    DenseVector v(21), got(8), want(8);
    for (auto& e : v) e = rng.NextGaussian();
    v[3] = 0.0;  // exercise the vr == 0 skip
    for (std::size_t i = 0; i < 8; ++i) got[i] = want[i] = 0.25 * i;
    m.TransposeMultiplyAdd(v, got);
    ScalarTransposeMultiplyAdd(m, v, want);
    EXPECT_EQ(got, want) << "seed " << seed;
  }
}

TEST(CsrMatrix, MaxOccupiedColumnIsCachedForAllShapes) {
  // All-empty matrix: no occupied column.
  CsrMatrix::Builder b0(4);
  b0.AddRow({}, {});
  b0.AddRow({}, {});
  EXPECT_EQ(b0.Build().MaxOccupiedColumn(), 0u);

  // Mixed empty/nonempty rows: the cache must track the global maximum,
  // not the last row's.
  CsrMatrix::Builder b1(10);
  const CsrMatrix::Index c0[] = {7};
  const double v0[] = {1.0};
  b1.AddRow(c0, v0);
  b1.AddRow({}, {});
  const CsrMatrix::Index c2[] = {2};
  b1.AddRow(c2, v0);
  EXPECT_EQ(b1.Build().MaxOccupiedColumn(), 8u);

  // Single-column shard.
  CsrMatrix::Builder b2(1);
  const CsrMatrix::Index c3[] = {0};
  b2.AddRow(c3, v0);
  EXPECT_EQ(b2.Build().MaxOccupiedColumn(), 1u);
}

}  // namespace
}  // namespace psra::linalg
