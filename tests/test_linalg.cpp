// Unit + property tests for dense kernels, sparse vectors and CSR matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/csr_matrix.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/sparse_vector.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::linalg {
namespace {

// ----------------------------------------------------------- dense ops ----

TEST(DenseOps, AxpyAddsScaledVector) {
  DenseVector x{1, 2, 3}, y{10, 20, 30};
  Axpy(2.0, x, y);
  EXPECT_EQ(y, (DenseVector{12, 24, 36}));
}

TEST(DenseOps, AxpyDimensionMismatchThrows) {
  DenseVector x{1}, y{1, 2};
  EXPECT_THROW(Axpy(1.0, x, y), InvalidArgument);
}

TEST(DenseOps, DotAndNorms) {
  DenseVector x{3, -4};
  EXPECT_DOUBLE_EQ(Dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(NormInf(x), 4.0);
}

TEST(DenseOps, DistanceL2) {
  DenseVector x{1, 1}, y{4, 5};
  EXPECT_DOUBLE_EQ(DistanceL2(x, y), 5.0);
}

TEST(DenseOps, AddSubtract) {
  DenseVector x{1, 2}, y{3, 5}, out;
  Add(x, y, out);
  EXPECT_EQ(out, (DenseVector{4, 7}));
  Subtract(y, x, out);
  EXPECT_EQ(out, (DenseVector{2, 3}));
}

TEST(DenseOps, SoftThresholdShrinksTowardZero) {
  DenseVector x{3.0, -3.0, 0.5, -0.5, 0.0};
  DenseVector out(5);
  SoftThreshold(x, 1.0, out);
  EXPECT_EQ(out, (DenseVector{2.0, -2.0, 0.0, 0.0, 0.0}));
}

TEST(DenseOps, SoftThresholdZeroKappaIsIdentity) {
  DenseVector x{1.5, -2.5}, out(2);
  SoftThreshold(x, 0.0, out);
  EXPECT_EQ(out, x);
}

TEST(DenseOps, SoftThresholdNegativeKappaThrows) {
  DenseVector x{1.0}, out(1);
  EXPECT_THROW(SoftThreshold(x, -0.1, out), InvalidArgument);
}

TEST(DenseOps, CountNonzeros) {
  DenseVector x{0.0, 1e-9, 0.5, -2.0};
  EXPECT_EQ(CountNonzeros(x), 3u);
  EXPECT_EQ(CountNonzeros(x, 1e-6), 2u);
}

// ------------------------------------------------------- sparse vector ----

TEST(SparseVector, FromDenseRoundTrip) {
  DenseVector dense{0.0, 1.5, 0.0, -2.0, 0.0};
  const auto sv = SparseVector::FromDense(dense);
  EXPECT_EQ(sv.nnz(), 2u);
  EXPECT_EQ(sv.dim(), 5u);
  EXPECT_EQ(sv.ToDense(), dense);
}

TEST(SparseVector, ConstructorValidatesOrdering) {
  EXPECT_THROW(SparseVector(5, {3, 1}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(SparseVector(5, {1, 1}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(SparseVector(5, {5}, {1.0}), InvalidArgument);
  EXPECT_THROW(SparseVector(5, {1}, {1.0, 2.0}), InvalidArgument);
}

TEST(SparseVector, AtReturnsStoredOrZero) {
  const SparseVector sv(6, {1, 4}, {2.0, -1.0});
  EXPECT_DOUBLE_EQ(sv.At(1), 2.0);
  EXPECT_DOUBLE_EQ(sv.At(4), -1.0);
  EXPECT_DOUBLE_EQ(sv.At(0), 0.0);
  EXPECT_THROW(sv.At(6), InvalidArgument);
}

TEST(SparseVector, SlicePreservesCoordinates) {
  const SparseVector sv(10, {1, 3, 7, 9}, {1, 2, 3, 4});
  const auto s = sv.Slice(3, 8);
  EXPECT_EQ(s.dim(), 10u);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.At(3), 2.0);
  EXPECT_DOUBLE_EQ(s.At(7), 3.0);
}

TEST(SparseVector, CountInRange) {
  const SparseVector sv(10, {1, 3, 7, 9}, {1, 2, 3, 4});
  EXPECT_EQ(sv.CountInRange(0, 10), 4u);
  EXPECT_EQ(sv.CountInRange(2, 8), 2u);
  EXPECT_EQ(sv.CountInRange(4, 7), 0u);
}

TEST(SparseVector, SumMergesIndices) {
  const SparseVector a(5, {0, 2}, {1.0, 2.0});
  const SparseVector b(5, {2, 4}, {3.0, 4.0});
  const auto s = SparseVector::Sum(a, b);
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_DOUBLE_EQ(s.At(0), 1.0);
  EXPECT_DOUBLE_EQ(s.At(2), 5.0);
  EXPECT_DOUBLE_EQ(s.At(4), 4.0);
}

TEST(SparseVector, AddInPlaceWithScale) {
  SparseVector a(4, {1}, {2.0});
  const SparseVector b(4, {1, 3}, {1.0, 1.0});
  a.AddInPlace(b, -2.0);
  EXPECT_DOUBLE_EQ(a.At(1), 0.0);
  EXPECT_DOUBLE_EQ(a.At(3), -2.0);
  a.Prune();
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(SparseVector, DotWithDense) {
  const SparseVector sv(4, {0, 3}, {2.0, -1.0});
  const DenseVector d{1.0, 5.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(sv.Dot(d), 2.0 - 4.0);
}

TEST(SparseVector, ConcatDisjoint) {
  const SparseVector a(8, {0, 1}, {1, 2});
  const SparseVector b(8, {4, 6}, {3, 4});
  const auto c = SparseVector::ConcatDisjoint(std::vector<SparseVector>{a, b});
  EXPECT_EQ(c.nnz(), 4u);
  EXPECT_DOUBLE_EQ(c.At(6), 4.0);
}

TEST(SparseVector, ConcatOverlappingThrows) {
  const SparseVector a(8, {0, 5}, {1, 2});
  const SparseVector b(8, {4, 6}, {3, 4});
  EXPECT_THROW(
      SparseVector::ConcatDisjoint(std::vector<SparseVector>{a, b}),
      InvalidArgument);
}

TEST(SparseVector, InPlaceVariantsMatchValueReturningOnes) {
  const DenseVector dense{0.0, 1.5, 0.0, -2.0, 0.0};
  SparseVector sv(3, {0}, {9.0});  // stale contents must be overwritten
  sv.AssignFromDense(dense);
  EXPECT_EQ(sv, SparseVector::FromDense(dense));

  DenseVector back{7.0, 7.0};  // wrong size; ToDense must resize
  sv.ToDense(back);
  EXPECT_EQ(back, dense);

  const SparseVector src(10, {1, 3, 7, 9}, {1, 2, 3, 4});
  SparseVector slice(2, {1}, {5.0});
  src.SliceInto(3, 8, slice);
  EXPECT_EQ(slice, src.Slice(3, 8));

  const SparseVector a(5, {0, 2}, {1.0, 2.0});
  const SparseVector b(5, {2, 4}, {3.0, 4.0});
  SparseVector sum(1, {0}, {1.0});
  SparseVector::SumInto(a, b, sum);
  EXPECT_EQ(sum, SparseVector::Sum(a, b));

  const SparseVector p0(8, {0, 1}, {1, 2});
  const SparseVector p1(8, {4, 6}, {3, 4});
  const std::vector<SparseVector> parts{p0, p1};
  SparseVector cat(3, {2}, {8.0});
  SparseVector::ConcatDisjointInto(parts, cat);
  EXPECT_EQ(cat, SparseVector::ConcatDisjoint(parts));
}

TEST(SparseVector, InPlaceVariantsRejectAliasing) {
  SparseVector a(5, {0, 2}, {1.0, 2.0});
  const SparseVector b(5, {2, 4}, {3.0, 4.0});
  EXPECT_THROW(SparseVector::SumInto(a, b, a), InvalidArgument);
  EXPECT_THROW(a.SliceInto(0, 5, a), InvalidArgument);
}

TEST(SparseVector, AddToDenseScatters) {
  const SparseVector sv(3, {1}, {2.0});
  DenseVector acc{1.0, 1.0, 1.0};
  sv.AddToDense(acc, 3.0);
  EXPECT_EQ(acc, (DenseVector{1.0, 7.0, 1.0}));
}

/// Property: Sum agrees with dense addition for random vectors.
class SparseSumProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseSumProperty, MatchesDenseAddition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t dim = 50;
  DenseVector da(dim, 0.0), db(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    if (rng.NextBool(0.3)) da[i] = rng.NextGaussian();
    if (rng.NextBool(0.3)) db[i] = rng.NextGaussian();
  }
  const auto sum =
      SparseVector::Sum(SparseVector::FromDense(da), SparseVector::FromDense(db));
  DenseVector expected;
  Add(da, db, expected);
  const auto actual = sum.ToDense();
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseSumProperty, ::testing::Range(0, 10));

// ---------------------------------------------------------- csr matrix ----

CsrMatrix MakeSmall() {
  // [1 0 2]
  // [0 3 0]
  CsrMatrix::Builder b(3);
  const CsrMatrix::Index c0[] = {0, 2};
  const double v0[] = {1.0, 2.0};
  b.AddRow(c0, v0);
  const CsrMatrix::Index c1[] = {1};
  const double v1[] = {3.0};
  b.AddRow(c1, v1);
  return b.Build();
}

TEST(CsrMatrix, BasicAccessors) {
  const auto m = MakeSmall();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.5);
  EXPECT_EQ(m.MaxOccupiedColumn(), 3u);
}

TEST(CsrMatrix, Multiply) {
  const auto m = MakeSmall();
  DenseVector x{1, 1, 1}, out(2);
  m.Multiply(x, out);
  EXPECT_EQ(out, (DenseVector{3, 3}));
}

TEST(CsrMatrix, TransposeMultiplyAdd) {
  const auto m = MakeSmall();
  DenseVector v{1, 2}, out(3, 0.0);
  m.TransposeMultiplyAdd(v, out);
  EXPECT_EQ(out, (DenseVector{1, 6, 2}));
}

TEST(CsrMatrix, RowDotAndRow) {
  const auto m = MakeSmall();
  DenseVector x{2, 0, 1};
  EXPECT_DOUBLE_EQ(m.RowDot(0, x), 4.0);
  const auto row = m.Row(1);
  EXPECT_EQ(row.dim(), 3u);
  EXPECT_DOUBLE_EQ(row.At(1), 3.0);
}

TEST(CsrMatrix, SliceRows) {
  const auto m = MakeSmall();
  const auto s = m.SliceRows(1, 2);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_DOUBLE_EQ(s.RowValues(0)[0], 3.0);
}

TEST(CsrMatrix, ColumnNnz) {
  const auto m = MakeSmall();
  EXPECT_EQ(m.ColumnNnz(), (std::vector<std::size_t>{1, 1, 1}));
}

TEST(CsrMatrix, BuilderRejectsBadRows) {
  CsrMatrix::Builder b(3);
  const CsrMatrix::Index bad_order[] = {2, 1};
  const double v[] = {1.0, 2.0};
  EXPECT_THROW(b.AddRow(bad_order, v), InvalidArgument);
  const CsrMatrix::Index out_of_range[] = {3};
  const double v1[] = {1.0};
  EXPECT_THROW(b.AddRow(out_of_range, v1), InvalidArgument);
}

TEST(CsrMatrix, DimensionChecksOnKernels) {
  const auto m = MakeSmall();
  DenseVector bad(2), out2(2), out3(3);
  EXPECT_THROW(m.Multiply(bad, out2), InvalidArgument);
  EXPECT_THROW(m.TransposeMultiplyAdd(out3, out3), InvalidArgument);
}

/// Property: (A^T v) . x == v . (A x) for random matrices.
class CsrAdjointProperty : public ::testing::TestWithParam<int> {};

TEST_P(CsrAdjointProperty, AdjointIdentityHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t rows = 20, cols = 15;
  CsrMatrix::Builder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<CsrMatrix::Index> idx;
    std::vector<double> val;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.NextBool(0.25)) {
        idx.push_back(c);
        val.push_back(rng.NextGaussian());
      }
    }
    b.AddRow(idx, val);
  }
  const auto m = b.Build();

  DenseVector x(cols), v(rows);
  for (auto& e : x) e = rng.NextGaussian();
  for (auto& e : v) e = rng.NextGaussian();

  DenseVector ax(rows), atv(cols, 0.0);
  m.Multiply(x, ax);
  m.TransposeMultiplyAdd(v, atv);
  EXPECT_NEAR(Dot(ax, v), Dot(x, atv), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrAdjointProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace psra::linalg
