// Tests for model checkpointing (save/load round trips, format errors).
#include <gtest/gtest.h>

#include <sstream>

#include "admm/checkpoint.hpp"
#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "solver/metrics.hpp"
#include "support/status.hpp"

namespace psra::admm {
namespace {

ModelCheckpoint SampleModel() {
  ModelCheckpoint m;
  m.algorithm = "PSRA-HGADMM(psr)";
  m.lambda = 1.5;
  m.rho = 0.25;
  m.z.assign(10, 0.0);
  m.z[0] = 1.25;
  m.z[7] = -3.5e-4;
  return m;
}

TEST(Checkpoint, RoundTripPreservesEverything) {
  const auto m = SampleModel();
  std::ostringstream os;
  WriteModel(m, os);
  std::istringstream is(os.str());
  const auto back = ReadModel(is);
  EXPECT_EQ(back.algorithm, m.algorithm);
  EXPECT_DOUBLE_EQ(back.lambda, m.lambda);
  EXPECT_DOUBLE_EQ(back.rho, m.rho);
  ASSERT_EQ(back.z.size(), m.z.size());
  for (std::size_t i = 0; i < m.z.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.z[i], m.z[i]) << i;
  }
}

TEST(Checkpoint, SparseStorageOmitsZeros) {
  const auto m = SampleModel();
  std::ostringstream os;
  WriteModel(m, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("nnz 2"), std::string::npos);
  // header(5 lines) + nnz line...: magic, algorithm, dim, lambda, rho, nnz,
  // then exactly 2 entries.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 8);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::istringstream is("not a model\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, RejectsTruncatedEntries) {
  std::istringstream is(
      "psra-model v1\nalgorithm x\ndim 4\nlambda 1\nrho 1\nnnz 2\n0 1.0\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, RejectsOutOfRangeIndex) {
  std::istringstream is(
      "psra-model v1\nalgorithm x\ndim 2\nlambda 1\nrho 1\nnnz 1\n5 1.0\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, RejectsUnknownHeaderField) {
  std::istringstream is("psra-model v1\nflavor vanilla\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, MissingFileThrowsIoError) {
  EXPECT_THROW(ReadModelFile("/nonexistent/model"), IoError);
}

TEST(Checkpoint, EmptyModelRejectedOnWrite) {
  ModelCheckpoint m;
  std::ostringstream os;
  EXPECT_THROW(WriteModel(m, os), InvalidArgument);
}

TEST(Checkpoint, FromRunResultScoresIdentically) {
  data::SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 120;
  spec.num_test = 60;
  spec.mean_row_nnz = 8.0;
  ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.workers_per_node = 2;
  const auto p = BuildProblem(spec, cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 10;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);

  std::ostringstream os;
  WriteModel(FromRunResult(res, p.lambda, p.rho), os);
  std::istringstream is(os.str());
  const auto loaded = ReadModel(is);
  EXPECT_DOUBLE_EQ(solver::Accuracy(p.test, loaded.z), res.final_accuracy);
}

}  // namespace
}  // namespace psra::admm
