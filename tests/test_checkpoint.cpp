// Tests for model checkpointing (save/load round trips, format errors).
#include <gtest/gtest.h>

#include <sstream>

#include "admm/ad_admm.hpp"
#include "admm/admmlib.hpp"
#include "admm/checkpoint.hpp"
#include "admm/gadmm.hpp"
#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "obs/obs.hpp"
#include "solver/metrics.hpp"
#include "support/status.hpp"

namespace psra::admm {
namespace {

ModelCheckpoint SampleModel() {
  ModelCheckpoint m;
  m.algorithm = "PSRA-HGADMM(psr)";
  m.lambda = 1.5;
  m.rho = 0.25;
  m.z.assign(10, 0.0);
  m.z[0] = 1.25;
  m.z[7] = -3.5e-4;
  return m;
}

TEST(Checkpoint, RoundTripPreservesEverything) {
  const auto m = SampleModel();
  std::ostringstream os;
  WriteModel(m, os);
  std::istringstream is(os.str());
  const auto back = ReadModel(is);
  EXPECT_EQ(back.algorithm, m.algorithm);
  EXPECT_DOUBLE_EQ(back.lambda, m.lambda);
  EXPECT_DOUBLE_EQ(back.rho, m.rho);
  ASSERT_EQ(back.z.size(), m.z.size());
  for (std::size_t i = 0; i < m.z.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.z[i], m.z[i]) << i;
  }
}

TEST(Checkpoint, SparseStorageOmitsZeros) {
  const auto m = SampleModel();
  std::ostringstream os;
  WriteModel(m, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("nnz 2"), std::string::npos);
  // header(5 lines) + nnz line...: magic, algorithm, dim, lambda, rho, nnz,
  // then exactly 2 entries.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 8);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::istringstream is("not a model\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, RejectsTruncatedEntries) {
  std::istringstream is(
      "psra-model v1\nalgorithm x\ndim 4\nlambda 1\nrho 1\nnnz 2\n0 1.0\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, RejectsOutOfRangeIndex) {
  std::istringstream is(
      "psra-model v1\nalgorithm x\ndim 2\nlambda 1\nrho 1\nnnz 1\n5 1.0\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, RejectsUnknownHeaderField) {
  std::istringstream is("psra-model v1\nflavor vanilla\n");
  EXPECT_THROW(ReadModel(is), InvalidArgument);
}

TEST(Checkpoint, MissingFileThrowsIoError) {
  EXPECT_THROW(ReadModelFile("/nonexistent/model"), IoError);
}

TEST(Checkpoint, EmptyModelRejectedOnWrite) {
  ModelCheckpoint m;
  std::ostringstream os;
  EXPECT_THROW(WriteModel(m, os), InvalidArgument);
}

TEST(Checkpoint, FromRunResultScoresIdentically) {
  data::SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 120;
  spec.num_test = 60;
  spec.mean_row_nnz = 8.0;
  ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.workers_per_node = 2;
  const auto p = BuildProblem(spec, cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 10;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);

  std::ostringstream os;
  WriteModel(FromRunResult(res, p.lambda, p.rho), os);
  std::istringstream is(os.str());
  const auto loaded = ReadModel(is);
  EXPECT_DOUBLE_EQ(solver::Accuracy(p.test, loaded.z), res.final_accuracy);
}

// ------------------------------------------------------- run checkpoints --

struct RunCkptFixture {
  RunCkptFixture()
      : problem(BuildProblem(
            [] {
              data::SyntheticSpec spec;
              spec.num_features = 40;
              spec.num_train = 60;
              spec.num_test = 20;
              spec.mean_row_nnz = 6.0;
              spec.seed = 5;
              return spec;
            }(),
            3)),
        ws(&problem, &options) {}

  RunOptions options;
  ConsensusProblem problem;
  WorkerSet ws;
};

TEST(RunCheckpointTest, RoundTripPreservesEveryWorker) {
  RunCkptFixture f;
  f.ws.x(1)[0] = -2.5;
  f.ws.y(2)[3] = 1e-12;
  const std::vector<simnet::Rank> everyone{0, 1, 2};

  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 7, everyone, ckpt);
  EXPECT_EQ(ckpt.iteration, 7u);
  ASSERT_EQ(ckpt.workers.size(), 3u);

  std::ostringstream os;
  WriteRunCheckpoint(ckpt, os);
  std::istringstream is(os.str());
  const auto back = ReadRunCheckpoint(is);
  EXPECT_EQ(back.iteration, ckpt.iteration);
  EXPECT_DOUBLE_EQ(back.rho, ckpt.rho);
  ASSERT_EQ(back.workers.size(), ckpt.workers.size());
  for (std::size_t i = 0; i < ckpt.workers.size(); ++i) {
    EXPECT_EQ(back.workers[i].x, ckpt.workers[i].x) << "worker " << i;
    EXPECT_EQ(back.workers[i].y, ckpt.workers[i].y) << "worker " << i;
    EXPECT_EQ(back.workers[i].z, ckpt.workers[i].z) << "worker " << i;
  }
}

TEST(RunCheckpointTest, SubsetCaptureLeavesOtherSlotsUntouched) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  RunCheckpoint ckpt;
  f.ws.x(0)[0] = 11.0;
  CaptureRunCheckpoint(f.ws, 1, everyone, ckpt);
  const auto worker0_at_1 = ckpt.workers[0].x;

  // Worker 0 "crashes": its live state moves on, but the next capture only
  // covers the survivors, so its slot must keep the iteration-1 snapshot.
  f.ws.x(0)[0] = 99.0;
  f.ws.x(1)[0] = 42.0;
  const std::vector<simnet::Rank> survivors{1, 2};
  CaptureRunCheckpoint(f.ws, 2, survivors, ckpt);
  EXPECT_EQ(ckpt.iteration, 2u);
  EXPECT_EQ(ckpt.workers[0].x, worker0_at_1);
  EXPECT_DOUBLE_EQ(ckpt.workers[1].x[0], 42.0);
}

TEST(RunCheckpointTest, RestoreWorkerRecomputesDerivedState) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 1, everyone, ckpt);

  std::vector<double> flops(3, 0.0);
  f.ws.XWStepAll(flops);  // moves x and w away from the snapshot
  ASSERT_NE(f.ws.x(1), ckpt.workers[1].x);

  const auto w_before = f.ws.w(1);
  f.ws.RestoreWorker(1, ckpt.workers[1].x, ckpt.workers[1].y,
                     ckpt.workers[1].z);
  EXPECT_EQ(f.ws.x(1), ckpt.workers[1].x);
  EXPECT_EQ(f.ws.y(1), ckpt.workers[1].y);
  EXPECT_EQ(f.ws.z(1), ckpt.workers[1].z);
  EXPECT_NE(f.ws.w(1), w_before);  // w recomputed from the restored x/y
}

TEST(RunCheckpointTest, RejectsMalformedInput) {
  {
    std::istringstream is("not a run ckpt\n");
    EXPECT_THROW(ReadRunCheckpoint(is), InvalidArgument);
  }
  {
    // Truncated: promises 2 workers, delivers 1.
    std::istringstream is(
        "psra-run-ckpt v1\niteration 3\nrho 1\nworkers 2\ndim 2\n"
        "x 0 0\ny 0 0\nz 0 0\n");
    EXPECT_THROW(ReadRunCheckpoint(is), InvalidArgument);
  }
  {
    RunCheckpoint empty;
    std::ostringstream os;
    EXPECT_THROW(WriteRunCheckpoint(empty, os), InvalidArgument);
  }
}

TEST(RunCheckpointTest, MissingFileThrowsIoError) {
  EXPECT_THROW(ReadRunCheckpointFile("/nonexistent/run-ckpt"), IoError);
}

// -------------------------------------------- metrics snapshot round trip --

TEST(RunCheckpointTest, CaptureSnapshotsMetricsRegistry) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  obs::MetricsRegistry metrics;
  metrics.Counter("comm.allreduce.psr.bytes") = 12345;
  metrics.Gauge("run.makespan_s") = 0.125;

  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 3, everyone, ckpt, &metrics);
  EXPECT_EQ(ckpt.metrics, metrics);

  // The snapshot is a copy frozen at capture time, not a live reference.
  metrics.Counter("comm.allreduce.psr.bytes") = 99999;
  EXPECT_NE(ckpt.metrics, metrics);

  // Null metrics leaves the checkpoint's registry untouched.
  CaptureRunCheckpoint(f.ws, 4, everyone, ckpt);
  EXPECT_FALSE(ckpt.metrics.empty());
  EXPECT_EQ(ckpt.metrics.counters().at("comm.allreduce.psr.bytes"), 12345u);
}

TEST(RunCheckpointTest, MetricsSurviveWriteReadByteIdentically) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  obs::MetricsRegistry metrics;
  metrics.Counter("engine.iterations") = 41;
  metrics.Counter("comm.allreduce.ring.bytes") = 987654321;
  metrics.Gauge("run.cal_time_s") = 1.0 / 3.0;  // not representable exactly
  const double bounds[] = {0.1, 0.5, 1.0};
  auto& h = metrics.Histo("comm.allreduce.fill_ratio", bounds);
  h.Observe(0.05);
  h.Observe(0.7);
  h.Observe(2.0);

  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 9, everyone, ckpt, &metrics);
  std::ostringstream os;
  WriteRunCheckpoint(ckpt, os);
  std::istringstream is(os.str());
  const auto back = ReadRunCheckpoint(is);

  // A resumed harness continues from `back.metrics`; an uninterrupted run
  // would have continued from `metrics`. For the resumed run's metrics.json
  // to match, the restored registry must serialize byte-identically.
  EXPECT_EQ(back.metrics, ckpt.metrics);
  std::ostringstream before, after;
  metrics.WriteJson(before);
  back.metrics.WriteJson(after);
  EXPECT_EQ(before.str(), after.str());
  EXPECT_EQ(back.iteration, 9u);
}

TEST(RunCheckpointTest, FilesWithoutMetricsTrailerStillLoad) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 2, everyone, ckpt);  // no metrics
  std::ostringstream os;
  WriteRunCheckpoint(ckpt, os);
  EXPECT_EQ(os.str().find("metrics"), std::string::npos);
  std::istringstream is(os.str());
  const auto back = ReadRunCheckpoint(is);
  EXPECT_TRUE(back.metrics.empty());
  ASSERT_EQ(back.workers.size(), 3u);
}

// ------------------------------------------------ warm-start application --

TEST(RunCheckpointTest, ApplyWarmStartRestoresStateAndReturnsIteration) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  RunCheckpoint ckpt;
  f.ws.x(2)[1] = -7.5;
  CaptureRunCheckpoint(f.ws, 4, everyone, ckpt);

  std::vector<double> flops(3, 0.0);
  f.ws.XWStepAll(flops);  // move every worker away from the snapshot
  f.ws.SetRho(f.ws.rho() * 3.0);

  RunOptions opt;
  opt.warm_start = &ckpt;
  EXPECT_EQ(ApplyWarmStart(f.ws, opt), 4u);
  EXPECT_DOUBLE_EQ(f.ws.rho(), ckpt.rho);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.ws.x(i), ckpt.workers[i].x) << "worker " << i;
    EXPECT_EQ(f.ws.y(i), ckpt.workers[i].y) << "worker " << i;
    EXPECT_EQ(f.ws.z(i), ckpt.workers[i].z) << "worker " << i;
  }
}

TEST(RunCheckpointTest, WarmStartRejectsWorkerCountMismatch) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 1, everyone, ckpt);
  ckpt.workers.resize(2);  // claims a smaller cluster than ws
  RunOptions opt;
  opt.warm_start = &ckpt;
  EXPECT_THROW(ApplyWarmStart(f.ws, opt), InvalidArgument);
}

TEST(RunCheckpointTest, WarmStartRejectsDimensionMismatch) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 1, everyone, ckpt);
  ckpt.workers[1].y.resize(3);  // problem dim is 40
  RunOptions opt;
  opt.warm_start = &ckpt;
  EXPECT_THROW(ApplyWarmStart(f.ws, opt), InvalidArgument);
}

// --------------------------------------- split runs resume bit-identically --

ConsensusProblem SplitRunProblem() {
  data::SyntheticSpec spec;
  spec.num_features = 48;
  spec.num_train = 96;
  spec.num_test = 32;
  spec.mean_row_nnz = 6.0;
  spec.seed = 9;
  return BuildProblem(spec, 8);
}

/// Runs the engine 10 iterations straight, then as 5 + checkpoint + 5 warm
/// started, and requires the two final consensus models to match BITWISE.
/// Virtual clocks restart at zero on resume, so only the algebra (not the
/// makespan) is comparable — exactly the contract RunOptions documents.
template <typename Engine>
void ExpectSplitRunMatchesStraightRun(const Engine& engine,
                                      const ConsensusProblem& problem) {
  RunOptions straight;
  straight.max_iterations = 10;
  const auto full = engine.Run(problem, straight);
  ASSERT_EQ(full.iterations_run, 10u);

  RunCheckpoint ckpt;
  RunOptions first;
  first.max_iterations = 5;
  first.checkpoint_out = &ckpt;
  first.checkpoint_at = 5;
  (void)engine.Run(problem, first);
  ASSERT_EQ(ckpt.iteration, 5u);
  ASSERT_EQ(ckpt.workers.size(), 8u);

  RunOptions resume;
  resume.max_iterations = 10;
  resume.warm_start = &ckpt;
  const auto back = engine.Run(problem, resume);
  ASSERT_EQ(back.final_z.size(), full.final_z.size());
  EXPECT_EQ(back.final_z, full.final_z);
  EXPECT_DOUBLE_EQ(back.final_objective, full.final_objective);
}

TEST(SplitRunTest, PsraFlatResumesBitwise) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = GroupingMode::kFlat;
  ExpectSplitRunMatchesStraightRun(PsraHgAdmm(cfg), SplitRunProblem());
}

TEST(SplitRunTest, PsraHierarchicalMultiRackResumesBitwise) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.num_racks = 2;  // exercises the recursive leader collective
  cfg.grouping = GroupingMode::kHierarchical;
  ExpectSplitRunMatchesStraightRun(PsraHgAdmm(cfg), SplitRunProblem());
}

TEST(SplitRunTest, AdmmLibFullBarrierResumesBitwise) {
  AdmmLibConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  // A full barrier makes every round synchronous; partial-barrier staleness
  // lives outside the checkpoint, so only this mode resumes exactly.
  cfg.min_barrier_fraction = 1.0;
  ExpectSplitRunMatchesStraightRun(AdmmLib(cfg), SplitRunProblem());
}

/// The timeline analogue of the bitwise split-run contract: a run checkpointed
/// at 5 and resumed to 10 records rows 6..10, and concatenating them after the
/// first leg's rows 1..5 (TimeSeriesRecorder::MergeFrom) must reproduce the
/// uninterrupted run's JSONL byte-for-byte — per-iteration deltas (ts.bytes,
/// ts.rounds) are baselined after setup traffic, so resumed rows carry no
/// warm-start skew.
template <typename Engine>
void ExpectSplitTimelineMatchesStraightTimeline(
    const Engine& engine, const ConsensusProblem& problem) {
  obs::ObsContext straight_obs;
  RunOptions straight;
  straight.max_iterations = 10;
  straight.obs = &straight_obs;
  (void)engine.Run(problem, straight);
  ASSERT_EQ(straight_obs.timeline.rows(), 10u);

  RunCheckpoint ckpt;
  obs::ObsContext head_obs;
  RunOptions first;
  first.max_iterations = 5;
  first.checkpoint_out = &ckpt;
  first.checkpoint_at = 5;
  first.obs = &head_obs;
  (void)engine.Run(problem, first);
  ASSERT_EQ(head_obs.timeline.rows(), 5u);

  obs::ObsContext tail_obs;
  RunOptions resume;
  resume.max_iterations = 10;
  resume.warm_start = &ckpt;
  resume.obs = &tail_obs;
  (void)engine.Run(problem, resume);
  ASSERT_EQ(tail_obs.timeline.rows(), 5u);
  ASSERT_EQ(tail_obs.timeline.IterationAt(0), 6u);

  head_obs.timeline.MergeFrom(tail_obs.timeline);
  std::ostringstream merged, uninterrupted;
  head_obs.timeline.WriteJsonl(merged);
  straight_obs.timeline.WriteJsonl(uninterrupted);
  EXPECT_EQ(merged.str(), uninterrupted.str());
}

TEST(SplitRunTest, PsraTimelineMergesBitwise) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = GroupingMode::kFlat;
  ExpectSplitTimelineMatchesStraightTimeline(PsraHgAdmm(cfg),
                                             SplitRunProblem());
}

TEST(SplitRunTest, AdmmLibTimelineMergesBitwise) {
  AdmmLibConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.min_barrier_fraction = 1.0;  // see AdmmLibFullBarrierResumesBitwise
  ExpectSplitTimelineMatchesStraightTimeline(AdmmLib(cfg), SplitRunProblem());
}

TEST(SplitRunTest, GadmmRejectsWarmStarts) {
  const auto problem = SplitRunProblem();
  RunCheckpoint ckpt;
  RunOptions opt;
  opt.max_iterations = 2;
  opt.warm_start = &ckpt;
  GadmmConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  EXPECT_THROW(Gadmm(cfg).Run(problem, opt), InvalidArgument);
}

TEST(SplitRunTest, AdAdmmRejectsWarmStarts) {
  const auto problem = SplitRunProblem();
  RunCheckpoint ckpt;
  RunOptions opt;
  opt.max_iterations = 2;
  opt.warm_start = &ckpt;
  AdAdmmConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  EXPECT_THROW(AdAdmm(cfg).Run(problem, opt), InvalidArgument);
}

TEST(RunCheckpointTest, TruncatedMetricsTrailerThrows) {
  RunCkptFixture f;
  const std::vector<simnet::Rank> everyone{0, 1, 2};
  obs::MetricsRegistry metrics;
  metrics.Counter("engine.iterations") = 5;
  RunCheckpoint ckpt;
  CaptureRunCheckpoint(f.ws, 1, everyone, ckpt, &metrics);
  std::ostringstream os;
  WriteRunCheckpoint(ckpt, os);
  const std::string text = os.str();
  std::istringstream is(text.substr(0, text.size() - 4));
  EXPECT_THROW(ReadRunCheckpoint(is), InvalidArgument);
}

}  // namespace
}  // namespace psra::admm
