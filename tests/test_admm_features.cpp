// Tests for the extension features: consensus residuals, adaptive penalty,
// residual-based stopping, trace CSV export, and the extra collectives used
// through the ADMM layer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "linalg/dense_ops.hpp"
#include "support/status.hpp"

namespace psra::admm {
namespace {

data::SyntheticSpec TinySpec(std::uint64_t seed = 42) {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_features = 80;
  spec.num_train = 160;
  spec.num_test = 60;
  spec.mean_row_nnz = 8.0;
  spec.label_noise = 0.02;
  spec.seed = seed;
  return spec;
}

ClusterConfig TinyCluster(std::uint32_t nodes, std::uint32_t wpn) {
  ClusterConfig c;
  c.num_nodes = nodes;
  c.workers_per_node = wpn;
  return c;
}

// -------------------------------------------------------------- residuals ----

TEST(Residuals, RecordedAndDecreasing) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kFlat;
  RunOptions opt;
  opt.max_iterations = 40;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);

  ASSERT_EQ(res.trace.size(), 40u);
  for (const auto& rec : res.trace) {
    EXPECT_GE(rec.primal_residual, 0.0);
    EXPECT_GE(rec.dual_residual, 0.0);
    EXPECT_DOUBLE_EQ(rec.rho, p.rho);  // adaptive rho off: constant
  }
  // The primal residual must shrink substantially as consensus forms.
  EXPECT_LT(res.trace.back().primal_residual,
            0.2 * res.trace.front().primal_residual);
}

TEST(Residuals, WorkerSetComputesConsistentNorms) {
  const auto p = BuildProblem(TinySpec(), 2);
  RunOptions opt;
  WorkerSet ws(&p, &opt);
  // All state is zero: every norm must be zero.
  linalg::DenseVector z_prev(p.dim(), 0.0);
  const auto res = ws.ComputeResiduals(z_prev);
  EXPECT_DOUBLE_EQ(res.primal, 0.0);
  EXPECT_DOUBLE_EQ(res.dual, 0.0);
  EXPECT_DOUBLE_EQ(res.x_norm, 0.0);

  // Perturb one worker's x: primal residual equals that perturbation norm.
  ws.x(0)[3] = 2.0;
  const auto res2 = ws.ComputeResiduals(z_prev);
  EXPECT_DOUBLE_EQ(res2.primal, 2.0);
  EXPECT_DOUBLE_EQ(res2.x_norm, 2.0);
}

// ----------------------------------------------------------- adaptive rho ----

TEST(AdaptiveRho, BalancesResiduals) {
  const auto p = BuildProblem(TinySpec(), 2);
  RunOptions opt;
  WorkerSet ws(&p, &opt);
  AdaptiveRhoConfig cfg;
  cfg.enabled = true;
  cfg.mu = 10.0;
  cfg.tau = 2.0;

  WorkerSet::Residuals res;
  res.primal = 100.0;
  res.dual = 1.0;  // primal dominates -> rho must grow
  EXPECT_DOUBLE_EQ(ws.MaybeAdaptRho(cfg, res), p.rho * 2.0);

  res.primal = 1.0;
  res.dual = 1000.0;  // dual dominates -> rho must shrink
  EXPECT_DOUBLE_EQ(ws.MaybeAdaptRho(cfg, res), p.rho);  // back to initial

  res.primal = 1.0;
  res.dual = 2.0;  // balanced: no change
  EXPECT_DOUBLE_EQ(ws.MaybeAdaptRho(cfg, res), p.rho);
}

TEST(AdaptiveRho, RespectsClamps) {
  const auto p = BuildProblem(TinySpec(), 2);
  RunOptions opt;
  WorkerSet ws(&p, &opt);
  AdaptiveRhoConfig cfg;
  cfg.enabled = true;
  cfg.rho_max = 1.5;
  WorkerSet::Residuals res;
  res.primal = 100.0;
  res.dual = 0.001;
  EXPECT_DOUBLE_EQ(ws.MaybeAdaptRho(cfg, res), 1.5);
  EXPECT_DOUBLE_EQ(ws.MaybeAdaptRho(cfg, res), 1.5);  // stays clamped
}

TEST(AdaptiveRho, DisabledIsIdentity) {
  const auto p = BuildProblem(TinySpec(), 2);
  RunOptions opt;
  WorkerSet ws(&p, &opt);
  WorkerSet::Residuals res;
  res.primal = 100.0;
  res.dual = 0.001;
  EXPECT_DOUBLE_EQ(ws.MaybeAdaptRho({}, res), p.rho);
}

TEST(AdaptiveRho, EndToEndRunConvergesAndTracksRho) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kFlat;
  RunOptions opt;
  opt.max_iterations = 30;
  opt.adaptive_rho.enabled = true;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);
  EXPECT_LT(res.trace.back().objective, res.trace.front().objective);
  // rho must have been recorded each iteration and stay in clamps.
  for (const auto& rec : res.trace) {
    EXPECT_GE(rec.rho, opt.adaptive_rho.rho_min);
    EXPECT_LE(rec.rho, opt.adaptive_rho.rho_max);
  }
}

// --------------------------------------------------------------- stopping ----

TEST(Stopping, CriterionMathIsBoydStyle) {
  StoppingConfig cfg;
  cfg.enabled = true;
  cfg.eps_abs = 0.1;
  cfg.eps_rel = 0.0;
  WorkerSet::Residuals res;
  res.primal = 0.5;
  res.dual = 0.5;
  // scale = sqrt(4 * 1) = 2 -> thresholds 0.2: not converged at 0.5.
  EXPECT_FALSE(WorkerSet::ShouldStop(cfg, res, 4, 1));
  res.primal = 0.1;
  res.dual = 0.1;
  EXPECT_TRUE(WorkerSet::ShouldStop(cfg, res, 4, 1));
  cfg.enabled = false;
  EXPECT_FALSE(WorkerSet::ShouldStop(cfg, res, 4, 1));
}

TEST(Stopping, EndsRunEarlyOnLooseTolerances) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 200;
  opt.stopping.enabled = true;
  opt.stopping.eps_abs = 1e-2;
  opt.stopping.eps_rel = 1e-1;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.iterations_run, 200u);
  EXPECT_GT(res.iterations_run, 1u);
}

TEST(Stopping, TightTolerancesRunToMaxIterations) {
  const auto cluster = TinyCluster(2, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 5;
  opt.stopping.enabled = true;
  opt.stopping.eps_abs = 1e-14;
  opt.stopping.eps_rel = 1e-14;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);
  EXPECT_FALSE(res.stopped_early);
  EXPECT_EQ(res.iterations_run, 5u);
}

// -------------------------------------------------------------- trace csv ----

TEST(TraceCsv, WritesHeaderAndRows) {
  const auto cluster = TinyCluster(2, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  PsraConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 3;
  const auto res = PsraHgAdmm(cfg).Run(p, opt);

  std::ostringstream os;
  res.WriteTraceCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("algorithm,iteration,objective"), std::string::npos);
  // header + 3 records
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("PSRA-HGADMM(psr)"), std::string::npos);
}

// --------------------------------------------------------- mixed precision ----

TEST(MixedPrecision, CheaperCommSlightlyDifferentModel) {
  const auto cluster = TinyCluster(4, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 12;

  PsraConfig fp64;
  fp64.cluster = cluster;
  fp64.grouping = GroupingMode::kHierarchical;
  PsraConfig fp32 = fp64;
  fp32.mixed_precision = true;

  const auto a = PsraHgAdmm(fp64).Run(p, opt);
  const auto b = PsraHgAdmm(fp32).Run(p, opt);

  // Same element counts, cheaper wire time (4-byte values inter-node).
  EXPECT_LT(b.total_comm_time, a.total_comm_time);
  // fp32 rounding perturbs the trajectory only slightly: both converge to
  // nearly the same objective.
  EXPECT_NEAR(a.final_objective, b.final_objective,
              1e-3 * a.final_objective);
  EXPECT_GT(b.final_accuracy, 0.55);
}

TEST(MixedPrecision, RoundToFloatQuantizes) {
  linalg::DenseVector v{1.0, 0.1, -3.337779921e100, 0.0};
  linalg::RoundToFloat(v);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], static_cast<double>(0.1f));
  EXPECT_TRUE(std::isinf(v[2]));  // overflow saturates like fp32
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

// ---------------------------------------------------------------- censoring ----

TEST(Censoring, SuppressesSendsAndStaysAccurate) {
  const auto cluster = TinyCluster(4, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 40;

  PsraConfig plain;
  plain.cluster = cluster;
  plain.grouping = GroupingMode::kFlat;
  PsraConfig censored = plain;
  censored.censor_threshold = 0.5;
  censored.censor_decay = 0.95;

  const auto a = PsraHgAdmm(plain).Run(p, opt);
  const auto b = PsraHgAdmm(censored).Run(p, opt);

  EXPECT_EQ(a.censored_sends, 0u);
  EXPECT_GT(b.censored_sends, 0u);
  // Fewer elements hit the wire...
  EXPECT_LT(b.elements_sent, a.elements_sent);
  // ...and the model stays close to the uncensored run's quality.
  EXPECT_NEAR(a.final_objective, b.final_objective,
              0.05 * a.final_objective);
}

TEST(Censoring, HugeThresholdFreezesCommunication) {
  const auto cluster = TinyCluster(2, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 10;
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kFlat;
  cfg.censor_threshold = 1e12;  // everything censored
  const auto res = PsraHgAdmm(cfg).Run(p, opt);
  EXPECT_EQ(res.censored_sends, 10u * cluster.world_size());
  EXPECT_EQ(res.elements_sent, 0u);  // no payload ever moved
}

TEST(Censoring, WorksInHierarchicalMode) {
  const auto cluster = TinyCluster(4, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 40;
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kHierarchical;
  cfg.censor_threshold = 2.0;
  cfg.censor_decay = 1.0;  // constant threshold: late small deltas censored
  const auto res = PsraHgAdmm(cfg).Run(p, opt);
  EXPECT_GT(res.censored_sends, 0u);
  EXPECT_LT(res.trace.back().objective, res.trace.front().objective);
}

TEST(Censoring, RejectedWithDynamicGrouping) {
  const auto cluster = TinyCluster(4, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 1;
  PsraConfig cfg;
  cfg.cluster = cluster;
  cfg.grouping = GroupingMode::kDynamicGroups;
  cfg.censor_threshold = 0.5;
  EXPECT_THROW(PsraHgAdmm(cfg).Run(p, opt), InvalidArgument);
}

TEST(Censoring, ZeroThresholdIsExactlyPlainRun) {
  const auto cluster = TinyCluster(3, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 8;
  PsraConfig plain;
  plain.cluster = cluster;
  plain.grouping = GroupingMode::kFlat;
  PsraConfig off = plain;
  off.censor_threshold = 0.0;
  const auto a = PsraHgAdmm(plain).Run(p, opt);
  const auto b = PsraHgAdmm(off).Run(p, opt);
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
  EXPECT_EQ(a.elements_sent, b.elements_sent);
}

// --------------------------------------------- extra collectives in ADMM ----

class ExtraCollectiveInAdmm
    : public ::testing::TestWithParam<comm::AllreduceKind> {};

TEST_P(ExtraCollectiveInAdmm, ProducesSameModelAsPsr) {
  // In full-barrier mode the collective choice must not change the math.
  const auto cluster = TinyCluster(5, 1);  // odd size exercises RHD folding
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 8;

  PsraConfig base;
  base.cluster = cluster;
  base.grouping = GroupingMode::kHierarchical;
  base.allreduce = comm::AllreduceKind::kPsr;
  const auto ref = PsraHgAdmm(base).Run(p, opt);

  PsraConfig other = base;
  other.allreduce = GetParam();
  const auto alt = PsraHgAdmm(other).Run(p, opt);
  EXPECT_LT(linalg::DistanceL2(ref.final_z, alt.final_z), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ExtraCollectiveInAdmm,
                         ::testing::Values(comm::AllreduceKind::kRhd,
                                           comm::AllreduceKind::kTree,
                                           comm::AllreduceKind::kNaive,
                                           comm::AllreduceKind::kRing));

}  // namespace
}  // namespace psra::admm
