// End-to-end fault-injection tests (DESIGN.md "Fault model"): crash-restart
// recovery from checkpoints, survivor-set collectives under message loss,
// leader death + regrouping, and the async algorithms' drop/delay handling.
// The companion unit tests live next to each layer (test_simnet, test_comm,
// test_wlg, test_checkpoint); this file pins the cross-layer behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "admm/ad_admm.hpp"
#include "admm/gadmm.hpp"
#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"

namespace psra::admm {
namespace {

data::SyntheticSpec FaultSpec() {
  data::SyntheticSpec spec;
  spec.name = "faults";
  spec.num_features = 100;
  spec.num_train = 200;
  spec.num_test = 60;
  spec.mean_row_nnz = 10.0;
  spec.label_noise = 0.02;
  spec.seed = 21;
  return spec;
}

const ConsensusProblem& Problem() {
  static const ConsensusProblem problem = BuildProblem(FaultSpec(), 8);
  return problem;
}

const ConsensusProblem& Problem4() {
  static const ConsensusProblem problem = BuildProblem(FaultSpec(), 4);
  return problem;
}

RunOptions Options(std::uint64_t iters) {
  RunOptions opt;
  opt.max_iterations = iters;
  opt.eval_every = iters;
  return opt;
}

PsraConfig BaseConfig(GroupingMode grouping) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = grouping;
  return cfg;
}

/// Relative L2 distance ||a - b|| / ||b||.
double RelDiff(const linalg::DenseVector& a, const linalg::DenseVector& b) {
  EXPECT_EQ(a.size(), b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-12);
}

void ExpectSameBits(const linalg::DenseVector& a,
                    const linalg::DenseVector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0) << "index " << i;
  }
}

TEST(Faults, EmptyPlanReportsNoFaults) {
  const auto result =
      PsraHgAdmm(BaseConfig(GroupingMode::kDynamicGroups))
          .Run(Problem(), Options(6));
  EXPECT_EQ(result.faults, FaultStats{});
}

class CrashRecovery : public ::testing::TestWithParam<GroupingMode> {};

TEST_P(CrashRecovery, CheckpointRestartMatchesFaultFreeRun) {
  const std::uint64_t iters = 24;
  auto cfg = BaseConfig(GetParam());
  const RunResult clean = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  cfg.cluster.fault.crashes.push_back({/*rank=*/3, /*at_iteration=*/6,
                                       /*down_iterations=*/4});
  cfg.cluster.fault.checkpoint_every = 5;
  const RunResult faulty = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  EXPECT_EQ(faulty.faults.worker_crashes, 1u);
  EXPECT_EQ(faulty.faults.recoveries, 1u);
  EXPECT_EQ(faulty.faults.down_worker_iterations, 4u);

  // The crashed worker missed 4 of 24 rounds and restarted from the
  // iteration-5 checkpoint; consensus must still land where the fault-free
  // run does (same objective to ~1%, nearby model).
  EXPECT_LT(RelDiff(faulty.final_z, clean.final_z), 0.05);
  EXPECT_NEAR(faulty.final_objective, clean.final_objective,
              0.01 * std::fabs(clean.final_objective));
  // Recovery cost was charged: respawn delay + checkpoint transfer.
  EXPECT_GT(faulty.SystemTime(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Groupings, CrashRecovery,
                         ::testing::Values(GroupingMode::kFlat,
                                           GroupingMode::kHierarchical,
                                           GroupingMode::kDynamicGroups),
                         [](const auto& info) {
                           return GroupingModeName(info.param);
                         });

TEST(Faults, PermanentCrashDegradesToSurvivors) {
  const std::uint64_t iters = 16;
  auto cfg = BaseConfig(GroupingMode::kFlat);
  cfg.cluster.fault.crashes.push_back({/*rank=*/5, /*at_iteration=*/4,
                                       /*down_iterations=*/0});  // forever
  const RunResult result = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  EXPECT_EQ(result.faults.worker_crashes, 1u);
  EXPECT_EQ(result.faults.recoveries, 0u);
  EXPECT_EQ(result.faults.down_worker_iterations, iters - 4 + 1);
  EXPECT_EQ(result.iterations_run, iters);
  EXPECT_TRUE(std::isfinite(result.final_objective));
}

TEST(Faults, DroppedMessagesRetryUntilDelivered) {
  const std::uint64_t iters = 12;
  auto cfg = BaseConfig(GroupingMode::kFlat);
  const RunResult clean = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  cfg.cluster.fault.message_drop_probability = 0.15;
  cfg.cluster.fault.max_retries = 8;  // exclusion is (0.15)^9: never here
  const RunResult faulty = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  // Every drop was resolved by a retry, so the arithmetic is untouched —
  // the model is bitwise the fault-free one; only virtual time grew.
  ExpectSameBits(faulty.final_z, clean.final_z);
  EXPECT_GT(faulty.faults.dropped_messages, 0u);
  EXPECT_GT(faulty.faults.retries, 0u);
  EXPECT_GT(faulty.total_comm_time, clean.total_comm_time);
}

TEST(Faults, LeaderDeathTriggersRegroupAndReElection) {
  const std::uint64_t iters = 20;
  auto cfg = BaseConfig(GroupingMode::kDynamicGroups);
  const RunResult clean = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  cfg.cluster.fault.leader_deaths.push_back({/*node=*/1, /*at_iteration=*/4,
                                             /*down_iterations=*/3});
  cfg.cluster.fault.checkpoint_every = 3;
  const RunResult faulty = PsraHgAdmm(cfg).Run(Problem(), Options(iters));

  EXPECT_EQ(faulty.faults.leader_deaths, 1u);
  // Node 1 re-elected a survivor while its leader was down, then switched
  // back after the recovery.
  EXPECT_GE(faulty.faults.leader_reelections, 2u);
  EXPECT_EQ(faulty.faults.recoveries, 1u);
  EXPECT_EQ(faulty.faults.down_worker_iterations, 3u);
  EXPECT_LT(RelDiff(faulty.final_z, clean.final_z), 0.05);
  EXPECT_NEAR(faulty.final_objective, clean.final_objective,
              0.01 * std::fabs(clean.final_objective));
}

TEST(Faults, FaultyRunsAreReproducible) {
  auto cfg = BaseConfig(GroupingMode::kDynamicGroups);
  cfg.cluster.fault.crashes.push_back({/*rank=*/7, /*at_iteration=*/3,
                                       /*down_iterations=*/2});
  cfg.cluster.fault.leader_deaths.push_back({/*node=*/0, /*at_iteration=*/5,
                                             /*down_iterations=*/2});
  cfg.cluster.fault.message_drop_probability = 0.1;
  // Enough retries that a degraded (possibly single-member) collective never
  // ends up excluding everyone in this 10-iteration window.
  cfg.cluster.fault.max_retries = 8;
  cfg.cluster.fault.checkpoint_every = 2;

  const RunResult a = PsraHgAdmm(cfg).Run(Problem(), Options(10));
  const RunResult b = PsraHgAdmm(cfg).Run(Problem(), Options(10));
  ExpectSameBits(a.final_z, b.final_z);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(std::memcmp(&a.makespan, &b.makespan, sizeof(double)), 0);
}

TEST(Faults, GadmmChainRecoversFromCrash) {
  const std::uint64_t iters = 24;
  GadmmConfig cfg;
  cfg.cluster.num_nodes = 2;
  cfg.cluster.workers_per_node = 2;
  const RunResult clean = Gadmm(cfg).Run(Problem4(), Options(iters));

  auto faulty_cfg = cfg;
  faulty_cfg.cluster.fault.crashes.push_back(
      {/*rank=*/1, /*at_iteration=*/6, /*down_iterations=*/3});
  faulty_cfg.cluster.fault.checkpoint_every = 4;
  const RunResult faulty = Gadmm(faulty_cfg).Run(Problem4(), Options(iters));

  EXPECT_EQ(faulty.faults.worker_crashes, 1u);
  EXPECT_EQ(faulty.faults.recoveries, 1u);
  EXPECT_EQ(faulty.faults.down_worker_iterations, 3u);
  EXPECT_TRUE(std::isfinite(faulty.final_objective));
  EXPECT_NEAR(faulty.final_objective, clean.final_objective,
              0.05 * std::fabs(clean.final_objective));
}

TEST(Faults, AdAdmmRetransmitsDropsAndAbsorbsDelays) {
  const std::uint64_t iters = 20;
  AdAdmmConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  const RunResult clean = AdAdmm(cfg).Run(Problem(), Options(iters));

  auto faulty_cfg = cfg;
  faulty_cfg.cluster.fault.message_drop_probability = 0.2;
  faulty_cfg.cluster.fault.message_delay_probability = 0.3;
  faulty_cfg.cluster.fault.message_delay_s = 5e-4;
  const RunResult faulty = AdAdmm(faulty_cfg).Run(Problem(), Options(iters));

  EXPECT_GT(faulty.faults.dropped_messages, 0u);
  EXPECT_EQ(faulty.faults.retries, faulty.faults.dropped_messages);
  EXPECT_GT(faulty.faults.delayed_messages, 0u);
  EXPECT_GT(faulty.total_comm_time, clean.total_comm_time);
  EXPECT_EQ(faulty.iterations_run, clean.iterations_run);
  EXPECT_TRUE(std::isfinite(faulty.final_objective));
  // Late reports reshuffle the async barrier batches, but the bounded-delay
  // guarantee keeps the trajectory near the fault-free one.
  EXPECT_NEAR(faulty.final_objective, clean.final_objective,
              0.1 * std::fabs(clean.final_objective));
}

}  // namespace
}  // namespace psra::admm
