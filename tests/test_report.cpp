// Golden-file and contract tests for the trace/metrics analyzer behind
// tools/psra_report. The fixtures are committed; regenerate the goldens with
//
//   build/tools/psra_report --trace tests/fixtures/report_trace.json \
//     --metrics tests/fixtures/report_metrics.json \
//     --out tests/fixtures/report_golden.md \
//     --csv tests/fixtures/report_golden.csv
//
// whenever the report layout changes on purpose.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/wire.hpp"
#include "support/status.hpp"

namespace psra::obs {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(PSRA_TEST_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name));
  EXPECT_TRUE(static_cast<bool>(in)) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ------------------------------------------------------------ json DOM ----

TEST(JsonParse, BuildsDomWithOrderedMembers) {
  const auto v = json::Parse(R"({"b": [1, 2.5, "x"], "a": {"k": true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "b");  // insertion order, not sorted
  const json::Value* b = v.Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_DOUBLE_EQ(b->items[1].number, 2.5);
  EXPECT_EQ(b->items[2].str, "x");
  const json::Value* a = v.Find("a");
  ASSERT_TRUE(a != nullptr && a->is_object());
  ASSERT_TRUE(a->Find("k") != nullptr);
  EXPECT_TRUE(a->Find("k")->boolean);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json::Parse("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(json::Parse("{\"a\": 1,}"), InvalidArgument);
  EXPECT_THROW(json::Parse("[1, 2"), InvalidArgument);
  EXPECT_THROW(json::Parse("nul"), InvalidArgument);
  EXPECT_THROW(json::Parse(""), InvalidArgument);
}

// ----------------------------------------------------------- trace load ----

TEST(LoadChromeTrace, ReadsTracksSpansAndNesting) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  ASSERT_EQ(trace.tracks.size(), 3u);
  EXPECT_EQ(trace.tracks[0].name, "worker 0");
  EXPECT_EQ(trace.tracks[1].name, "worker 1");
  EXPECT_EQ(trace.tracks[2].name, "group generator");

  // scatter_reduce/allgather sit inside w_allreduce and must be flagged
  // nested; everything else is top-level.
  for (const auto& track : trace.tracks) {
    for (const auto& s : track.spans) {
      const bool child = s.name == "scatter_reduce" || s.name == "allgather";
      EXPECT_EQ(s.top_level, !child) << track.name << " " << s.name;
      EXPECT_GE(s.end, s.begin);
    }
  }
}

TEST(LoadChromeTrace, RejectsJsonWithoutTraceEvents) {
  EXPECT_THROW(LoadChromeTrace("{}"), Error);
  EXPECT_THROW(LoadChromeTrace(R"({"traceEvents": 3})"), Error);
  EXPECT_THROW(LoadChromeTrace("{"), InvalidArgument);
}

TEST(MetricsFromJson, RoundTripsRegistryByteExactly) {
  const auto text = ReadFixture("report_metrics.json");
  const auto reg = MetricsFromJson(text);
  EXPECT_EQ(reg.counters().at("comm.allreduce.psr.bytes"), 357032u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("run.makespan_s"), 0.00053);
  const auto& h = reg.histograms().at("comm.allreduce.fill_ratio");
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 1.75);

  std::ostringstream once, twice;
  reg.WriteJson(once);
  MetricsFromJson(once.str()).WriteJson(twice);
  EXPECT_EQ(once.str(), twice.str());
}

TEST(MetricsFromJson, RejectsMalformedShapes) {
  EXPECT_THROW(MetricsFromJson("[1]"), Error);
  EXPECT_THROW(MetricsFromJson(R"({"counters": 5})"), Error);
  EXPECT_THROW(MetricsFromJson(R"({"counters": {"c": "x"}})"), Error);
  // counts must be bounds.size() + 1 (overflow bucket).
  EXPECT_THROW(
      MetricsFromJson(
          R"({"histograms": {"h": {"bounds": [1], "counts": [1]}}})"),
      Error);
  EXPECT_THROW(MetricsFromJson("{\"counters\": {\"a\" 1}}"), InvalidArgument);
}

// ------------------------------------------------------------- analysis ----

TEST(AnalyzeTrace, ComputesPhasesSkewAndCriticalPath) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  const auto r = AnalyzeTrace(trace);

  EXPECT_EQ(r.num_spans, 19u);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_NEAR(r.horizon, 530e-6, 1e-12);
  EXPECT_NEAR(r.total_wall_s, 235e-6, 1e-12);

  // Nested children contribute no attributed virtual time, so the class
  // totals are a partition of top-level span time.
  const auto c = [&r](PhaseClass cls) {
    return r.class_virtual_s[static_cast<std::size_t>(cls)];
  };
  EXPECT_NEAR(c(PhaseClass::kCompute), 560e-6, 1e-12);
  EXPECT_NEAR(c(PhaseClass::kCommunicate), 410e-6, 1e-12);
  EXPECT_NEAR(c(PhaseClass::kWait), 30e-6, 1e-12);
  EXPECT_DOUBLE_EQ(c(PhaseClass::kOther), 0.0);

  // worker 1 ends both iterations last → owns the whole critical path.
  EXPECT_EQ(r.slowest_worker, "worker 1");
  EXPECT_NEAR(r.worker_skew, 530.0 / 495.0, 1e-9);
  ASSERT_EQ(r.tracks.size(), 3u);
  EXPECT_EQ(r.tracks[0].critical_spans, 0u);
  // The longest blocking chain walks every top-level span on worker 1's
  // lane: worker 1 finishes each phase last, so program order alone links
  // them back to t=0.
  EXPECT_EQ(r.tracks[1].critical_spans, 6u);
  ASSERT_FALSE(r.critical_phases.empty());
  EXPECT_EQ(r.critical_phases[0].name, "x_update");
}

// --------------------------------------------------------- golden files ----

TEST(ReportGolden, MarkdownMatchesCommittedFixture) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  const auto metrics = MetricsFromJson(ReadFixture("report_metrics.json"));
  const auto r = AnalyzeTrace(trace);
  std::ostringstream os;
  WriteReportMarkdown(r, &metrics, os);
  EXPECT_EQ(os.str(), ReadFixture("report_golden.md"))
      << "report layout changed; regenerate the golden (see file header)";
  EXPECT_NE(os.str().find("PSR < Ring bytes-on-wire: yes"),
            std::string::npos);
}

TEST(ReportGolden, CsvMatchesCommittedFixture) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  const auto r = AnalyzeTrace(trace);
  std::ostringstream os;
  WriteReportCsv(r, os);
  EXPECT_EQ(os.str(), ReadFixture("report_golden.csv"))
      << "CSV layout changed; regenerate the golden (see file header)";
}

// --------------------------------------------------- merged wire traces ----

ReportSpan MakeSpan(const char* name, double begin, double end,
                    std::uint64_t iter, std::int64_t peer = -1,
                    std::uint64_t tag = 0) {
  ReportSpan s;
  s.name = name;
  s.begin = begin;
  s.end = end;
  s.iteration = iter;
  s.peer = peer;
  s.tag = tag;
  return s;
}

/// Deterministic per-rank payload: a ring step (fence, post to the next
/// rank, local compute, recv from the previous rank) on rank-local time.
RankObsPayload MakeRankPayload(std::uint32_t rank, std::uint32_t world,
                               double clock_offset_s) {
  RankObsPayload p;
  p.rank = rank;
  p.clock_offset_s = clock_offset_s;
  ReportTrack lane;
  lane.name = "rank " + std::to_string(rank);
  const auto next = static_cast<std::int64_t>((rank + 1) % world);
  const auto prev = static_cast<std::int64_t>((rank + world - 1) % world);
  lane.spans.push_back(MakeSpan("wire_fence", 0.001, 0.002, 0));
  lane.spans.push_back(MakeSpan("wire_post", 0.003, 0.003, 1, next, 0x11));
  lane.spans.push_back(MakeSpan("compute", 0.003, 0.004, 1));
  lane.spans.push_back(MakeSpan("wire_recv", 0.004, 0.005, 1, prev, 0x11));
  p.trace.tracks.push_back(std::move(lane));
  return p;
}

// Regenerate the committed golden after an intentional layout change with
//   PSRA_REGEN_GOLDEN=1 build/tests/test_report \
//     --gtest_filter='WireMergedTrace.*'
TEST(WireMergedTrace, GoldenLanesAreRankOrderedAndClockAligned) {
  // Arrival order deliberately differs from rank order; rank 2's offset
  // exceeds its first span begin so the zero-clamp is on the golden path.
  const double offsets[] = {0.0, 0.0005, 0.0015, -0.0005};
  std::vector<RankObsPayload> payloads;
  for (const std::uint32_t r : {2u, 0u, 3u, 1u}) {
    payloads.push_back(MakeRankPayload(r, 4, offsets[r]));
  }
  std::ostringstream os;
  WriteMergedWireTrace(payloads, os);
  const std::string text = os.str();
  if (std::getenv("PSRA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(FixturePath("wire_merged_golden.json"));
    out << text;
  }
  EXPECT_EQ(text, ReadFixture("wire_merged_golden.json"))
      << "merged-trace layout changed; regenerate the golden (see comment)";

  const TraceData merged = LoadChromeTrace(text);
  ASSERT_EQ(merged.tracks.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    const auto& lane = merged.tracks[r];
    EXPECT_EQ(lane.name, "rank " + std::to_string(r));
    ASSERT_EQ(lane.spans.size(), 4u);
    for (std::size_t i = 0; i < lane.spans.size(); ++i) {
      EXPECT_GE(lane.spans[i].begin, 0.0) << "rank " << r << " span " << i;
      if (i > 0) {
        EXPECT_LE(lane.spans[i - 1].begin, lane.spans[i].begin)
            << "rank " << r << " span " << i;
      }
    }
  }
  // Rank 2's first span starts before its estimated offset: clamped at 0.
  EXPECT_DOUBLE_EQ(merged.tracks[2].spans[0].begin, 0.0);
  // Rank 3 runs "early" (negative offset): everything shifts later.
  EXPECT_NEAR(merged.tracks[3].spans[0].begin, 0.0015, 1e-12);

  const TraceReport rep = AnalyzeTrace(merged);
  EXPECT_EQ(rep.edges.matched, 4u);
  EXPECT_EQ(rep.edges.unmatched_posts, 0u);
  EXPECT_EQ(rep.edges.unmatched_recvs, 0u);
}

TEST(AnalyzeTrace, MatchesWireEdgesFifoPerPeerAndTag) {
  TraceData trace;
  ReportTrack a;
  a.name = "rank 0";
  a.spans.push_back(MakeSpan("wire_post", 0.000, 0.000, 1, 1, 5));
  a.spans.push_back(MakeSpan("wire_post", 0.010, 0.010, 1, 1, 5));
  a.spans.push_back(MakeSpan("wire_post", 0.020, 0.020, 1, 1, 9));  // lost
  ReportTrack b;
  b.name = "rank 1";
  b.spans.push_back(MakeSpan("wire_recv", 0.001, 0.004, 1, 0, 5));
  b.spans.push_back(MakeSpan("wire_recv", 0.011, 0.012, 1, 0, 5));
  b.spans.push_back(MakeSpan("wire_recv", 0.030, 0.031, 1, 0, 7));  // alien
  trace.tracks.push_back(a);
  trace.tracks.push_back(b);

  const TraceReport r = AnalyzeTrace(trace);
  EXPECT_EQ(r.edges.matched, 2u);
  EXPECT_EQ(r.edges.unmatched_posts, 1u);
  EXPECT_EQ(r.edges.unmatched_recvs, 1u);
  // k-th post pairs with the k-th recv: latencies 0.004 and 0.002.
  EXPECT_NEAR(r.edges.total_latency_s, 0.006, 1e-12);
  EXPECT_NEAR(r.edges.max_latency_s, 0.004, 1e-12);
}

// ----------------------------------------------------------------- diff ----

TEST(ReportDiff, SelfDiffIsAllZeroDeltas) {
  const auto r = AnalyzeTrace(LoadChromeTrace(ReadFixture("report_trace.json")));
  const auto metrics = MetricsFromJson(ReadFixture("report_metrics.json"));
  std::ostringstream os;
  WriteReportDiffMarkdown(r, r, &metrics, &metrics, os);
  const std::string out = os.str();
  // Every counter matches itself, so the counter table body is empty and
  // the unchanged tally equals the registry size.
  EXPECT_EQ(out.find(" | +"), std::string::npos) << out;
  EXPECT_EQ(out.find(" | -1"), std::string::npos) << out;
  EXPECT_NE(out.find(std::to_string(metrics.counters().size()) +
                     " counters unchanged."),
            std::string::npos)
      << out;
  // Each phase from the report appears exactly once in the union.
  for (const auto& p : r.phases) {
    EXPECT_NE(out.find("| " + p.name + " |"), std::string::npos) << p.name;
  }
}

TEST(ReportDiff, ReportsPhaseAndCounterMovement) {
  const auto a =
      AnalyzeTrace(LoadChromeTrace(ReadFixture("report_trace.json")));
  TraceReport b = a;
  ASSERT_FALSE(b.phases.empty());
  b.phases[0].virtual_s += 1.0;       // existing phase grows
  PhaseStat added;
  added.name = "new_phase";
  added.virtual_s = 0.5;
  b.phases.push_back(added);          // phase only B has
  b.horizon += 2.0;

  const auto ma = MetricsFromJson(ReadFixture("report_metrics.json"));
  MetricsRegistry mb = MetricsFromJson(ReadFixture("report_metrics.json"));
  mb.Counter("comm.allreduce.psr.bytes") += 100;

  std::ostringstream os;
  WriteReportDiffMarkdown(a, b, &ma, &mb, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("new_phase (B only)"), std::string::npos) << out;
  EXPECT_NE(out.find("+1 |"), std::string::npos);           // virtual delta
  EXPECT_NE(out.find("| +2 | "), std::string::npos);        // makespan delta
  EXPECT_NE(out.find("comm.allreduce.psr.bytes"), std::string::npos);
  EXPECT_NE(out.find("| +100 |"), std::string::npos);
}

}  // namespace
}  // namespace psra::obs
