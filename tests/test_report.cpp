// Golden-file and contract tests for the trace/metrics analyzer behind
// tools/psra_report. The fixtures are committed; regenerate the goldens with
//
//   build/tools/psra_report --trace tests/fixtures/report_trace.json \
//     --metrics tests/fixtures/report_metrics.json \
//     --out tests/fixtures/report_golden.md \
//     --csv tests/fixtures/report_golden.csv
//
// whenever the report layout changes on purpose.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/wire.hpp"
#include "support/status.hpp"

namespace psra::obs {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(PSRA_TEST_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name));
  EXPECT_TRUE(static_cast<bool>(in)) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ------------------------------------------------------------ json DOM ----

TEST(JsonParse, BuildsDomWithOrderedMembers) {
  const auto v = json::Parse(R"({"b": [1, 2.5, "x"], "a": {"k": true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "b");  // insertion order, not sorted
  const json::Value* b = v.Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_DOUBLE_EQ(b->items[1].number, 2.5);
  EXPECT_EQ(b->items[2].str, "x");
  const json::Value* a = v.Find("a");
  ASSERT_TRUE(a != nullptr && a->is_object());
  ASSERT_TRUE(a->Find("k") != nullptr);
  EXPECT_TRUE(a->Find("k")->boolean);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json::Parse("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(json::Parse("{\"a\": 1,}"), InvalidArgument);
  EXPECT_THROW(json::Parse("[1, 2"), InvalidArgument);
  EXPECT_THROW(json::Parse("nul"), InvalidArgument);
  EXPECT_THROW(json::Parse(""), InvalidArgument);
}

// ----------------------------------------------------------- trace load ----

TEST(LoadChromeTrace, ReadsTracksSpansAndNesting) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  ASSERT_EQ(trace.tracks.size(), 3u);
  EXPECT_EQ(trace.tracks[0].name, "worker 0");
  EXPECT_EQ(trace.tracks[1].name, "worker 1");
  EXPECT_EQ(trace.tracks[2].name, "group generator");

  // scatter_reduce/allgather sit inside w_allreduce and must be flagged
  // nested; everything else is top-level.
  for (const auto& track : trace.tracks) {
    for (const auto& s : track.spans) {
      const bool child = s.name == "scatter_reduce" || s.name == "allgather";
      EXPECT_EQ(s.top_level, !child) << track.name << " " << s.name;
      EXPECT_GE(s.end, s.begin);
    }
  }
}

TEST(LoadChromeTrace, RejectsJsonWithoutTraceEvents) {
  EXPECT_THROW(LoadChromeTrace("{}"), Error);
  EXPECT_THROW(LoadChromeTrace(R"({"traceEvents": 3})"), Error);
  EXPECT_THROW(LoadChromeTrace("{"), InvalidArgument);
}

TEST(MetricsFromJson, RoundTripsRegistryByteExactly) {
  const auto text = ReadFixture("report_metrics.json");
  const auto reg = MetricsFromJson(text);
  EXPECT_EQ(reg.counters().at("comm.allreduce.psr.bytes"), 357032u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("run.makespan_s"), 0.00053);
  const auto& h = reg.histograms().at("comm.allreduce.fill_ratio");
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 1.75);

  std::ostringstream once, twice;
  reg.WriteJson(once);
  MetricsFromJson(once.str()).WriteJson(twice);
  EXPECT_EQ(once.str(), twice.str());
}

TEST(MetricsFromJson, RejectsMalformedShapes) {
  EXPECT_THROW(MetricsFromJson("[1]"), Error);
  EXPECT_THROW(MetricsFromJson(R"({"counters": 5})"), Error);
  EXPECT_THROW(MetricsFromJson(R"({"counters": {"c": "x"}})"), Error);
  // counts must be bounds.size() + 1 (overflow bucket).
  EXPECT_THROW(
      MetricsFromJson(
          R"({"histograms": {"h": {"bounds": [1], "counts": [1]}}})"),
      Error);
  EXPECT_THROW(MetricsFromJson("{\"counters\": {\"a\" 1}}"), InvalidArgument);
}

// ------------------------------------------------------------- analysis ----

TEST(AnalyzeTrace, ComputesPhasesSkewAndCriticalPath) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  const auto r = AnalyzeTrace(trace);

  EXPECT_EQ(r.num_spans, 19u);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_NEAR(r.horizon, 530e-6, 1e-12);
  EXPECT_NEAR(r.total_wall_s, 235e-6, 1e-12);

  // Nested children contribute no attributed virtual time, so the class
  // totals are a partition of top-level span time.
  const auto c = [&r](PhaseClass cls) {
    return r.class_virtual_s[static_cast<std::size_t>(cls)];
  };
  EXPECT_NEAR(c(PhaseClass::kCompute), 560e-6, 1e-12);
  EXPECT_NEAR(c(PhaseClass::kCommunicate), 410e-6, 1e-12);
  EXPECT_NEAR(c(PhaseClass::kWait), 30e-6, 1e-12);
  EXPECT_DOUBLE_EQ(c(PhaseClass::kOther), 0.0);

  // worker 1 ends both iterations last → owns the whole critical path.
  EXPECT_EQ(r.slowest_worker, "worker 1");
  EXPECT_NEAR(r.worker_skew, 530.0 / 495.0, 1e-9);
  ASSERT_EQ(r.tracks.size(), 3u);
  EXPECT_EQ(r.tracks[0].critical_spans, 0u);
  // The longest blocking chain walks every top-level span on worker 1's
  // lane: worker 1 finishes each phase last, so program order alone links
  // them back to t=0.
  EXPECT_EQ(r.tracks[1].critical_spans, 6u);
  ASSERT_FALSE(r.critical_phases.empty());
  EXPECT_EQ(r.critical_phases[0].name, "x_update");
}

// --------------------------------------------------------- golden files ----

TEST(ReportGolden, MarkdownMatchesCommittedFixture) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  const auto metrics = MetricsFromJson(ReadFixture("report_metrics.json"));
  const auto r = AnalyzeTrace(trace);
  std::ostringstream os;
  WriteReportMarkdown(r, &metrics, os);
  EXPECT_EQ(os.str(), ReadFixture("report_golden.md"))
      << "report layout changed; regenerate the golden (see file header)";
  EXPECT_NE(os.str().find("PSR < Ring bytes-on-wire: yes"),
            std::string::npos);
}

TEST(ReportGolden, CsvMatchesCommittedFixture) {
  const auto trace = LoadChromeTrace(ReadFixture("report_trace.json"));
  const auto r = AnalyzeTrace(trace);
  std::ostringstream os;
  WriteReportCsv(r, os);
  EXPECT_EQ(os.str(), ReadFixture("report_golden.csv"))
      << "CSV layout changed; regenerate the golden (see file header)";
}

// --------------------------------------------------- merged wire traces ----

ReportSpan MakeSpan(const char* name, double begin, double end,
                    std::uint64_t iter, std::int64_t peer = -1,
                    std::uint64_t tag = 0) {
  ReportSpan s;
  s.name = name;
  s.begin = begin;
  s.end = end;
  s.iteration = iter;
  s.peer = peer;
  s.tag = tag;
  return s;
}

/// Deterministic per-rank payload: a ring step (fence, post to the next
/// rank, local compute, recv from the previous rank) on rank-local time.
RankObsPayload MakeRankPayload(std::uint32_t rank, std::uint32_t world,
                               double clock_offset_s) {
  RankObsPayload p;
  p.rank = rank;
  p.clock_offset_s = clock_offset_s;
  ReportTrack lane;
  lane.name = "rank " + std::to_string(rank);
  const auto next = static_cast<std::int64_t>((rank + 1) % world);
  const auto prev = static_cast<std::int64_t>((rank + world - 1) % world);
  lane.spans.push_back(MakeSpan("wire_fence", 0.001, 0.002, 0));
  lane.spans.push_back(MakeSpan("wire_post", 0.003, 0.003, 1, next, 0x11));
  lane.spans.push_back(MakeSpan("compute", 0.003, 0.004, 1));
  lane.spans.push_back(MakeSpan("wire_recv", 0.004, 0.005, 1, prev, 0x11));
  p.trace.tracks.push_back(std::move(lane));
  return p;
}

// Regenerate the committed golden after an intentional layout change with
//   PSRA_REGEN_GOLDEN=1 build/tests/test_report \
//     --gtest_filter='WireMergedTrace.*'
TEST(WireMergedTrace, GoldenLanesAreRankOrderedAndClockAligned) {
  // Arrival order deliberately differs from rank order; rank 2's offset
  // exceeds its first span begin so the zero-clamp is on the golden path.
  const double offsets[] = {0.0, 0.0005, 0.0015, -0.0005};
  std::vector<RankObsPayload> payloads;
  for (const std::uint32_t r : {2u, 0u, 3u, 1u}) {
    payloads.push_back(MakeRankPayload(r, 4, offsets[r]));
  }
  std::ostringstream os;
  WriteMergedWireTrace(payloads, os);
  const std::string text = os.str();
  if (std::getenv("PSRA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(FixturePath("wire_merged_golden.json"));
    out << text;
  }
  EXPECT_EQ(text, ReadFixture("wire_merged_golden.json"))
      << "merged-trace layout changed; regenerate the golden (see comment)";

  const TraceData merged = LoadChromeTrace(text);
  ASSERT_EQ(merged.tracks.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    const auto& lane = merged.tracks[r];
    EXPECT_EQ(lane.name, "rank " + std::to_string(r));
    ASSERT_EQ(lane.spans.size(), 4u);
    for (std::size_t i = 0; i < lane.spans.size(); ++i) {
      EXPECT_GE(lane.spans[i].begin, 0.0) << "rank " << r << " span " << i;
      if (i > 0) {
        EXPECT_LE(lane.spans[i - 1].begin, lane.spans[i].begin)
            << "rank " << r << " span " << i;
      }
    }
  }
  // Rank 2's first span starts before its estimated offset: clamped at 0.
  EXPECT_DOUBLE_EQ(merged.tracks[2].spans[0].begin, 0.0);
  // Rank 3 runs "early" (negative offset): everything shifts later.
  EXPECT_NEAR(merged.tracks[3].spans[0].begin, 0.0015, 1e-12);

  const TraceReport rep = AnalyzeTrace(merged);
  EXPECT_EQ(rep.edges.matched, 4u);
  EXPECT_EQ(rep.edges.unmatched_posts, 0u);
  EXPECT_EQ(rep.edges.unmatched_recvs, 0u);
}

TEST(AnalyzeTrace, MatchesWireEdgesFifoPerPeerAndTag) {
  TraceData trace;
  ReportTrack a;
  a.name = "rank 0";
  a.spans.push_back(MakeSpan("wire_post", 0.000, 0.000, 1, 1, 5));
  a.spans.push_back(MakeSpan("wire_post", 0.010, 0.010, 1, 1, 5));
  a.spans.push_back(MakeSpan("wire_post", 0.020, 0.020, 1, 1, 9));  // lost
  ReportTrack b;
  b.name = "rank 1";
  b.spans.push_back(MakeSpan("wire_recv", 0.001, 0.004, 1, 0, 5));
  b.spans.push_back(MakeSpan("wire_recv", 0.011, 0.012, 1, 0, 5));
  b.spans.push_back(MakeSpan("wire_recv", 0.030, 0.031, 1, 0, 7));  // alien
  trace.tracks.push_back(a);
  trace.tracks.push_back(b);

  const TraceReport r = AnalyzeTrace(trace);
  EXPECT_EQ(r.edges.matched, 2u);
  EXPECT_EQ(r.edges.unmatched_posts, 1u);
  EXPECT_EQ(r.edges.unmatched_recvs, 1u);
  // k-th post pairs with the k-th recv: latencies 0.004 and 0.002.
  EXPECT_NEAR(r.edges.total_latency_s, 0.006, 1e-12);
  EXPECT_NEAR(r.edges.max_latency_s, 0.004, 1e-12);
}

// ----------------------------------------------------------------- diff ----

TEST(ReportDiff, SelfDiffIsAllZeroDeltas) {
  const auto r = AnalyzeTrace(LoadChromeTrace(ReadFixture("report_trace.json")));
  const auto metrics = MetricsFromJson(ReadFixture("report_metrics.json"));
  std::ostringstream os;
  WriteReportDiffMarkdown(r, r, &metrics, &metrics, os);
  const std::string out = os.str();
  // Every counter matches itself, so the counter table body is empty and
  // the unchanged tally equals the registry size.
  EXPECT_EQ(out.find(" | +"), std::string::npos) << out;
  EXPECT_EQ(out.find(" | -1"), std::string::npos) << out;
  EXPECT_NE(out.find(std::to_string(metrics.counters().size()) +
                     " counters unchanged."),
            std::string::npos)
      << out;
  // Each phase from the report appears exactly once in the union.
  for (const auto& p : r.phases) {
    EXPECT_NE(out.find("| " + p.name + " |"), std::string::npos) << p.name;
  }
}

TEST(ReportDiff, ReportsPhaseAndCounterMovement) {
  const auto a =
      AnalyzeTrace(LoadChromeTrace(ReadFixture("report_trace.json")));
  TraceReport b = a;
  ASSERT_FALSE(b.phases.empty());
  b.phases[0].virtual_s += 1.0;       // existing phase grows
  PhaseStat added;
  added.name = "new_phase";
  added.virtual_s = 0.5;
  b.phases.push_back(added);          // phase only B has
  b.horizon += 2.0;

  const auto ma = MetricsFromJson(ReadFixture("report_metrics.json"));
  MetricsRegistry mb = MetricsFromJson(ReadFixture("report_metrics.json"));
  mb.Counter("comm.allreduce.psr.bytes") += 100;

  std::ostringstream os;
  WriteReportDiffMarkdown(a, b, &ma, &mb, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("new_phase (B only)"), std::string::npos) << out;
  EXPECT_NE(out.find("+1 |"), std::string::npos);           // virtual delta
  EXPECT_NE(out.find("| +2 | "), std::string::npos);        // makespan delta
  EXPECT_NE(out.find("comm.allreduce.psr.bytes"), std::string::npos);
  EXPECT_NE(out.find("| +100 |"), std::string::npos);
}

// ---------------------------------------------------- convergence timeline --

TEST(TimelineJsonl, RoundTripsRecorderOutput) {
  TimeSeriesRecorder rec;
  TimeSeries& primal = rec.Series("ts.primal_residual");
  TimeSeries& objective = rec.Series("ts.objective");
  const double p[] = {8.0, 4.0, 1.0};
  for (std::size_t i = 0; i < 3; ++i) {
    rec.BeginIteration(i + 1);
    primal.Append(p[i]);
    objective.Append(i == 1 ? std::numeric_limits<double>::infinity()
                            : 100.0 + static_cast<double>(i));
  }
  std::ostringstream os;
  rec.WriteJsonl(os);
  const TimelineData data = LoadTimelineJsonl(os.str());

  ASSERT_EQ(data.series,
            (std::vector<std::string>{"ts.objective", "ts.primal_residual"}));
  ASSERT_EQ(data.iterations, (std::vector<std::uint64_t>{1, 2, 3}));
  const std::vector<double>* col = data.Column("ts.primal_residual");
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(*col, (std::vector<double>{8.0, 4.0, 1.0}));
  // The infinity went out as null and comes back as NaN.
  const std::vector<double>& obj = *data.Column("ts.objective");
  EXPECT_DOUBLE_EQ(obj[0], 100.0);
  EXPECT_TRUE(std::isnan(obj[1]));
  EXPECT_DOUBLE_EQ(obj[2], 102.0);
  EXPECT_EQ(data.Column("ts.absent"), nullptr);
}

/// Loads `text` expecting a parse failure; returns the error message.
std::string TimelineFailure(const std::string& text) {
  try {
    LoadTimelineJsonl(text);
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected InvalidArgument for: " << text;
  return "";
}

TEST(TimelineJsonl, RejectsMalformedInputNamingTheLine) {
  constexpr const char* kHeader =
      "{\"psra_timeline\": 1, \"series\": [\"ts.a\", \"ts.b\"]}\n";

  EXPECT_NE(TimelineFailure("").find("no header"), std::string::npos);
  // A row before any header.
  EXPECT_NE(TimelineFailure("{\"it\": 1, \"v\": [1, 2]}\n")
                .find("timeline line 1"),
            std::string::npos);
  // Alien version.
  EXPECT_NE(TimelineFailure("{\"psra_timeline\": 2, \"series\": []}\n")
                .find("expected header"),
            std::string::npos);
  // Not JSON at all, with the 1-based line number.
  const std::string garbage = TimelineFailure(std::string(kHeader) + "}{\n");
  EXPECT_NE(garbage.find("timeline line 2"), std::string::npos) << garbage;
  // Row arity disagrees with the header.
  const std::string ragged =
      TimelineFailure(std::string(kHeader) + "{\"it\": 1, \"v\": [1]}\n");
  EXPECT_NE(ragged.find("1 values"), std::string::npos) << ragged;
  EXPECT_NE(ragged.find("2 series"), std::string::npos) << ragged;
  // Samples must be numbers or null.
  EXPECT_NE(TimelineFailure(std::string(kHeader) +
                            "{\"it\": 1, \"v\": [1, \"x\"]}\n")
                .find("numbers or null"),
            std::string::npos);
  // Negative / missing iteration number.
  EXPECT_NE(TimelineFailure(std::string(kHeader) +
                            "{\"it\": -1, \"v\": [1, 2]}\n")
                .find("numeric \"it\""),
            std::string::npos);
}

/// Hand-built timeline: a cleanly halving primal residual, constant bytes,
/// one rho adaptation.
TimelineData HalvingTimeline() {
  TimeSeriesRecorder rec;
  TimeSeries& primal = rec.Series("ts.primal_residual");
  TimeSeries& bytes = rec.Series("ts.bytes");
  TimeSeries& rho = rec.Series("ts.rho");
  double v = 8.0;
  for (std::uint64_t it = 1; it <= 8; ++it, v *= 0.5) {
    rec.BeginIteration(it);
    primal.Append(v);
    bytes.Append(100.0);
    rho.Append(it <= 4 ? 1.0 : 2.0);
  }
  std::ostringstream os;
  rec.WriteJsonl(os);
  return LoadTimelineJsonl(os.str());
}

TEST(AnalyzeTimelineSeries, ComputesCrossingsRhoAndEfficiency) {
  const TimelineReport r = AnalyzeTimeline(HalvingTimeline(), {4.0, 1.0, 1e-6});
  EXPECT_EQ(r.rows, 8u);
  EXPECT_EQ(r.first_iteration, 1u);
  EXPECT_EQ(r.last_iteration, 8u);
  EXPECT_TRUE(r.contiguous);

  ASSERT_EQ(r.crossings.size(), 3u);  // primal only: no dual series
  EXPECT_EQ(r.crossings[0].iteration, 2u);   // first sample <= 4.0
  EXPECT_EQ(r.crossings[1].iteration, 4u);   // first sample <= 1.0
  EXPECT_EQ(r.crossings[2].iteration, 0u);   // 1e-6: never reached

  ASSERT_EQ(r.health.size(), 1u);
  EXPECT_FALSE(r.health[0].diverged);
  EXPECT_FALSE(r.health[0].stalled);  // halving every row is > 1 % progress

  EXPECT_TRUE(r.has_rho);
  EXPECT_DOUBLE_EQ(r.rho_first, 1.0);
  EXPECT_DOUBLE_EQ(r.rho_last, 2.0);
  EXPECT_EQ(r.rho_changes, 1u);

  EXPECT_EQ(r.efficiency_series, "ts.primal_residual");
  EXPECT_DOUBLE_EQ(r.total_bytes, 800.0);
  ASSERT_FALSE(r.efficiency.empty());
  EXPECT_EQ(r.efficiency.front().iteration, 1u);
  EXPECT_DOUBLE_EQ(r.efficiency.front().cumulative_bytes, 100.0);
  EXPECT_EQ(r.efficiency.back().iteration, 8u);
  EXPECT_DOUBLE_EQ(r.efficiency.back().cumulative_bytes, 800.0);
  EXPECT_DOUBLE_EQ(r.efficiency.back().residual, 8.0 * std::pow(0.5, 7));
}

TEST(AnalyzeTimelineSeries, FlagsDivergenceStallAndGaps) {
  TimeSeriesRecorder rec;
  TimeSeries& primal = rec.Series("ts.primal_residual");
  TimeSeries& dual = rec.Series("ts.dual_residual");
  // 12 rows with a gap at the end; primal grows (diverges), dual freezes
  // after the first row (stalls). Row 12 jumps to iteration 13.
  for (std::uint64_t it = 1; it <= 12; ++it) {
    rec.BeginIteration(it == 12 ? 13 : it);
    primal.Append(static_cast<double>(it));
    dual.Append(it == 1 ? 2.0 : 1.0);
  }
  std::ostringstream os;
  rec.WriteJsonl(os);
  const TimelineReport r = AnalyzeTimeline(LoadTimelineJsonl(os.str()), {});

  EXPECT_FALSE(r.contiguous);
  ASSERT_EQ(r.health.size(), 2u);
  EXPECT_EQ(r.health[0].series, "ts.primal_residual");
  EXPECT_TRUE(r.health[0].diverged);
  EXPECT_EQ(r.health[1].series, "ts.dual_residual");
  EXPECT_FALSE(r.health[1].diverged);
  EXPECT_TRUE(r.health[1].stalled);

  // A non-finite sample marks the series diverged even if it ends lower.
  TimeSeriesRecorder nan_rec;
  TimeSeries& p = nan_rec.Series("ts.primal_residual");
  const double vals[] = {4.0, std::numeric_limits<double>::quiet_NaN(), 1.0};
  for (std::size_t i = 0; i < 3; ++i) {
    nan_rec.BeginIteration(i + 1);
    p.Append(vals[i]);
  }
  std::ostringstream nan_os;
  nan_rec.WriteJsonl(nan_os);
  const TimelineReport nr = AnalyzeTimeline(LoadTimelineJsonl(nan_os.str()), {});
  ASSERT_EQ(nr.health.size(), 1u);
  EXPECT_TRUE(nr.health[0].diverged);
  ASSERT_EQ(nr.series.size(), 1u);
  EXPECT_TRUE(nr.series[0].has_non_finite);
  EXPECT_EQ(nr.series[0].finite, 2u);
}

// Regenerate both goldens after an intentional change with
//   PSRA_REGEN_GOLDEN=1 build/tests/test_report \
//     --gtest_filter='TimelineGolden.*'
// (timeline_golden.jsonl itself comes from a real run; see its header
// comment in EXPERIMENTS.md — the md is derived here.)
TEST(TimelineGolden, MarkdownMatchesCommittedFixture) {
  const TimelineData data =
      LoadTimelineJsonl(ReadFixture("timeline_golden.jsonl"));
  const TimelineReport r =
      AnalyzeTimeline(data, {1e-1, 1e-2, 1e-3, 1e-4});  // psra_report default
  std::ostringstream os;
  WriteTimelineMarkdown(r, os);
  const std::string text = os.str();
  if (std::getenv("PSRA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(FixturePath("timeline_golden.md"));
    out << text;
  }
  EXPECT_EQ(text, ReadFixture("timeline_golden.md"))
      << "timeline report layout changed; regenerate the golden (see comment)";
  // The fixture is a real converging run: pin the headline facts.
  EXPECT_NE(text.find(", contiguous)"), std::string::npos);
  EXPECT_NE(text.find("| ts.primal_residual | converging |"),
            std::string::npos);
}

TEST(TimelineDiff, SelfDiffShowsNoMovement) {
  const TimelineReport r = AnalyzeTimeline(HalvingTimeline(), {1.0});
  std::ostringstream os;
  WriteTimelineDiffMarkdown(r, r, os);
  const std::string out = os.str();
  // Run-shape deltas are unsigned zeros; every series rel column is 0.0%.
  EXPECT_NE(out.find("| 8 | 8 | 0 |"), std::string::npos) << out;
  EXPECT_EQ(out.find("| +"), std::string::npos) << out;
  for (const char* name : {"ts.primal_residual", "ts.bytes", "ts.rho"}) {
    EXPECT_NE(out.find("| " + std::string(name) + " |"), std::string::npos)
        << name;
  }
  EXPECT_NE(out.find("0.0%"), std::string::npos);
}

TEST(TimelineDiff, ReportsShapeAndCrossingMovement) {
  const TimelineData data = HalvingTimeline();
  TimelineData shorter = data;
  shorter.iterations.resize(6);
  for (auto& col : shorter.columns) col.resize(6);
  const TimelineReport a = AnalyzeTimeline(shorter, {1.0});
  const TimelineReport b = AnalyzeTimeline(data, {1.0, 0.1});
  std::ostringstream os;
  WriteTimelineDiffMarkdown(a, b, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| rows | 6 | 8 | +2 |"), std::string::npos) << out;
  // Both reached 1.0 at the same row; only B ran long enough for 0.1 (its
  // row 8 sample, 8 * 0.5^7) — A's side reads "never".
  EXPECT_NE(out.find("| ts.primal_residual | 1 | 4 | 4 |"), std::string::npos)
      << out;
  EXPECT_NE(out.find("| ts.primal_residual | 0.1 | never | 8 |"),
            std::string::npos)
      << out;
}

}  // namespace
}  // namespace psra::obs
