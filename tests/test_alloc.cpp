// Steady-state allocation regression test: after warm-up, a PSRA-HGADMM
// iteration must perform ZERO dynamic allocations — for flat AND dynamic
// grouping, serial and pooled. This is the testable core of the
// bench_hotpath alloc gate: bench numbers need a quiet machine, but an
// allocation count is deterministic, so it can fail a plain ctest run the
// moment a hot-path std::vector sneaks back in.
//
// The measurement uses the same delta method as bench_hotpath: run the same
// configuration at two iteration counts K1 < K2 and require
//   (allocs(K2) - allocs(K1)) - (allocs(K1) - allocs(K0)) == 0
// which cancels setup, warm-up and teardown allocations exactly.
//
// This binary (and bench_hotpath) are the only ones that link
// psra_alloc_counter, which replaces global operator new/delete with
// counting forwarders.
#include <gtest/gtest.h>

#include <cstdint>

#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "engine/alloc_counter.hpp"
#include "engine/thread_pool.hpp"
#include "obs/obs.hpp"
#include "simnet/event_queue.hpp"

namespace psra::admm {
namespace {

data::SyntheticSpec SmallSpec() {
  data::SyntheticSpec spec;
  spec.name = "alloc";
  spec.num_features = 96;
  spec.num_train = 192;
  spec.num_test = 64;
  spec.mean_row_nnz = 8.0;
  spec.label_noise = 0.02;
  spec.seed = 11;
  return spec;
}

PsraConfig SmallCluster(GroupingMode grouping) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = grouping;
  cfg.sparse_comm = false;
  return cfg;
}

std::uint64_t RunOnce(const ConsensusProblem& problem, const PsraConfig& cfg,
                      engine::ThreadPool* pool, std::uint64_t iterations,
                      bool with_obs = false) {
  RunOptions opt;
  opt.max_iterations = iterations;
  opt.eval_every = iterations;  // evaluation allocates; keep it off-path
  opt.pool = pool;
  // One fresh context per run, like every harness: its setup cost (tracks,
  // hoisted counter slots, the first chunk lease per series) is then the
  // same for every run, so the delta method cancels it exactly. Metrics and
  // timeline only — span recording allocates by design.
  obs::ObsContext obs;
  obs.tracing = false;
  opt.obs = with_obs ? &obs : nullptr;
  return PsraHgAdmm(cfg).Run(problem, opt).iterations_run;
}

/// Allocations per iteration by the delta method (exact, not averaged: the
/// counts are deterministic, so the division must come out whole).
std::uint64_t AllocsPerIter(const ConsensusProblem& problem,
                            const PsraConfig& cfg, engine::ThreadPool* pool,
                            bool with_obs = false) {
  constexpr std::uint64_t k1 = 4;
  constexpr std::uint64_t k2 = 12;
  (void)RunOnce(problem, cfg, pool, k1, with_obs);  // warm-up: workspaces

  const std::uint64_t a0 = engine::AllocCount();
  (void)RunOnce(problem, cfg, pool, k1, with_obs);
  const std::uint64_t a1 = engine::AllocCount();
  (void)RunOnce(problem, cfg, pool, k2, with_obs);
  const std::uint64_t a2 = engine::AllocCount();

  const std::uint64_t delta = (a2 - a1) - (a1 - a0);
  return delta / (k2 - k1);
}

class AllocRegression : public ::testing::TestWithParam<GroupingMode> {
 protected:
  void SetUp() override {
#ifdef PSRA_SANITIZE_BUILD
    GTEST_SKIP() << "allocation counts are not meaningful under sanitizers";
#endif
  }
};

TEST_P(AllocRegression, SerialIterationIsAllocationFree) {
  const auto problem = BuildProblem(SmallSpec(), 8);
  EXPECT_EQ(AllocsPerIter(problem, SmallCluster(GetParam()), nullptr), 0u);
}

TEST_P(AllocRegression, PooledIterationIsAllocationFree) {
  const auto problem = BuildProblem(SmallSpec(), 8);
  engine::ThreadPool pool(8);
  pool.ForceParallelDispatchForTesting();
  EXPECT_EQ(AllocsPerIter(problem, SmallCluster(GetParam()), &pool), 0u);
}

// The convergence timeline must ride for free: with a metrics-only
// ObsContext attached (tracing off — span recording allocates by design),
// per-iteration counter adds are plain stores into hoisted slots and
// TimeSeries appends land in chunks pooled by the recorder, so the
// steady-state iteration stays allocation-free. This is the recorder's
// 0-allocs/iter contract from DESIGN.md §13.
TEST_P(AllocRegression, IterationWithTimelineRecorderIsAllocationFree) {
  const auto problem = BuildProblem(SmallSpec(), 8);
  EXPECT_EQ(AllocsPerIter(problem, SmallCluster(GetParam()), nullptr,
                          /*with_obs=*/true),
            0u);
}

INSTANTIATE_TEST_SUITE_P(AllGroupings, AllocRegression,
                         ::testing::Values(GroupingMode::kFlat,
                                           GroupingMode::kHierarchical,
                                           GroupingMode::kDynamicGroups),
                         [](const auto& info) {
                           return GroupingModeName(info.param);
                         });

// Transpose-reduction solver path (DESIGN.md §14): with the Gram Hessian
// forced on for every worker, the packed Gram rebuild inside PrepareHessian*
// and the dense Hessian-vector products must run entirely in the buffers
// preallocated by SetUseGramHessian — the steady-state iteration stays
// allocation-free like the CG path.
TEST(AllocRegressionGram, GramSolverIterationIsAllocationFree) {
#ifdef PSRA_SANITIZE_BUILD
  GTEST_SKIP() << "allocation counts are not meaningful under sanitizers";
#endif
  const auto problem = BuildProblem(SmallSpec(), 8);
  const auto cfg = SmallCluster(GroupingMode::kHierarchical);

  constexpr std::uint64_t k1 = 4;
  constexpr std::uint64_t k2 = 12;
  const auto run = [&](std::uint64_t iterations) {
    RunOptions opt;
    opt.max_iterations = iterations;
    opt.eval_every = iterations;
    opt.local_solver.mode = LocalSolverOptions::Mode::kGram;
    (void)PsraHgAdmm(cfg).Run(problem, opt).iterations_run;
  };
  run(k1);  // warm-up: workspaces + Gram buffers

  const std::uint64_t a0 = engine::AllocCount();
  run(k1);
  const std::uint64_t a1 = engine::AllocCount();
  run(k2);
  const std::uint64_t a2 = engine::AllocCount();
  EXPECT_EQ(((a2 - a1) - (a1 - a0)) / (k2 - k1), 0u);
}

// The timer-wheel event core itself: once the arena, the wheel buckets and
// the overflow list are warm, schedule + drain performs ZERO allocations
// per event — on the near path (wheel buckets), and on the far path
// (overflow insert + idle-wheel jump). Callables are stored inline, so no
// std::function spill can sneak in either.
TEST(EventQueueAlloc, SteadyStateEventsAreAllocationFree) {
#ifdef PSRA_SANITIZE_BUILD
  GTEST_SKIP() << "allocation counts are not meaningful under sanitizers";
#endif
  simnet::EventQueue q(simnet::EventQueue::WheelConfig{1e-6, 64});
  struct Hop {
    simnet::EventQueue* q;
    int* remaining;
    double delay;
    void operator()() const {
      if (--*remaining > 0) q->ScheduleAfter(delay, *this);
    }
  };
  int remaining = 0;
  const auto run_actors = [&](int actors, int events, double delay) {
    remaining = events;
    for (int a = 0; a < actors; ++a) {
      q.ScheduleAfter(0.0, Hop{&q, &remaining, delay});
    }
    q.Run();
  };

  // Warm-up: 8 actors at a one-tick cadence wrap the 64-bucket wheel many
  // times (every bucket vector gets capacity); the far cadence sits past
  // the 64 us horizon, warming the overflow list and the idle jump.
  run_actors(8, 1024, 1e-6);
  run_actors(8, 256, 5e-4);

  const std::uint64_t a0 = engine::AllocCount();
  run_actors(8, 1024, 1e-6);
  run_actors(8, 256, 5e-4);
  EXPECT_EQ(engine::AllocCount() - a0, 0u);
}

}  // namespace
}  // namespace psra::admm
