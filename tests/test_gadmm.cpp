// Tests for the GADMM / Q-GADMM related-work baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "admm/gadmm.hpp"
#include "admm/problem.hpp"
#include "admm/registry.hpp"
#include "support/status.hpp"

namespace psra::admm {
namespace {

data::SyntheticSpec TinySpec(std::uint64_t seed = 42) {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_features = 80;
  spec.num_train = 160;
  spec.num_test = 60;
  spec.mean_row_nnz = 8.0;
  spec.label_noise = 0.02;
  spec.seed = seed;
  return spec;
}

ClusterConfig TinyCluster(std::uint32_t nodes, std::uint32_t wpn) {
  ClusterConfig c;
  c.num_nodes = nodes;
  c.workers_per_node = wpn;
  return c;
}

TEST(Gadmm, LearnsOnTinyProblem) {
  // GADMM minimizes the smooth loss only (no global L1 term — see the
  // header note), so the eq.-17 objective is not its merit function; the
  // model quality is.
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  GadmmConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 40;
  const auto res = Gadmm(cfg).Run(p, opt);
  ASSERT_EQ(res.trace.size(), 40u);
  EXPECT_GT(res.final_accuracy, 0.65);
  // Accuracy improves over the first iteration's model.
  EXPECT_GT(res.final_accuracy, res.trace.front().accuracy - 1e-12);
  // The smooth training loss (objective minus the L1 term it does not
  // optimize) must decrease.
  const double l1_first = res.trace.front().objective;
  EXPECT_TRUE(std::isfinite(l1_first));
}

TEST(Gadmm, ChainConsensusResidualShrinks) {
  // Neighboring models must approach each other (the x_n = x_{n+1}
  // constraints), which shows up as improving agreement of the mean model.
  const auto cluster = TinyCluster(3, 1);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  GadmmConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 60;
  const auto res = Gadmm(cfg).Run(p, opt);
  // By 60 iterations the chain agrees well enough that the averaged model
  // classifies clearly better than chance.
  EXPECT_GT(res.final_accuracy, 0.7);
}

TEST(Gadmm, SingleWorkerDegeneratesToLocalFit) {
  const auto cluster = TinyCluster(1, 1);
  const auto p = BuildProblem(TinySpec(), 1);
  GadmmConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 5;
  const auto res = Gadmm(cfg).Run(p, opt);
  EXPECT_GT(res.final_accuracy, 0.6);
  EXPECT_EQ(res.messages_sent, 0u);  // no neighbors, no traffic
}

TEST(Gadmm, NeighborOnlyTrafficScalesLinearly) {
  // Each worker talks to at most two neighbors: messages per iteration is
  // 2*(N-1) regardless of topology size.
  for (std::uint32_t nodes : {2u, 4u}) {
    const auto cluster = TinyCluster(nodes, 2);
    const auto p = BuildProblem(TinySpec(), cluster.world_size());
    GadmmConfig cfg;
    cfg.cluster = cluster;
    RunOptions opt;
    opt.max_iterations = 3;
    const auto res = Gadmm(cfg).Run(p, opt);
    EXPECT_EQ(res.messages_sent,
              3u * 2u * (cluster.world_size() - 1))
        << nodes << " nodes";
  }
}

TEST(Gadmm, DeterministicAcrossRuns) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  GadmmConfig cfg;
  cfg.cluster = cluster;
  RunOptions opt;
  opt.max_iterations = 8;
  const auto a = Gadmm(cfg).Run(p, opt);
  const auto b = Gadmm(cfg).Run(p, opt);
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
  EXPECT_DOUBLE_EQ(a.total_comm_time, b.total_comm_time);
}

TEST(QGadmm, QuantizationCutsWireTimeConvergesClose) {
  // Strip latency and compute so comm time is pure payload transfer; the
  // 8-bit wire format must then cost well under half of fp64.
  auto cluster = TinyCluster(4, 1);
  cluster.cost.net_latency_s = 0.0;
  cluster.cost.bus_latency_s = 0.0;
  cluster.cost.seconds_per_flop = 1e-15;
  cluster.compute_jitter = 0.0;
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 30;

  GadmmConfig plain;
  plain.cluster = cluster;
  GadmmConfig quant = plain;
  quant.quantization_bits = 8;

  const auto a = Gadmm(plain).Run(p, opt);
  const auto b = Gadmm(quant).Run(p, opt);
  // 8-bit payloads cost ~1/8 of fp64 on the wire.
  EXPECT_LT(b.total_comm_time, 0.5 * a.total_comm_time);
  // And the model remains usable.
  EXPECT_GT(b.final_accuracy, a.final_accuracy - 0.1);
}

TEST(QGadmm, RejectsSillyBitWidths) {
  GadmmConfig cfg;
  cfg.quantization_bits = 17;
  EXPECT_THROW(Gadmm{cfg}, InvalidArgument);
}

TEST(QGadmm, NameEncodesBits) {
  GadmmConfig cfg;
  EXPECT_EQ(Gadmm(cfg).Name(), "GADMM");
  cfg.quantization_bits = 4;
  EXPECT_EQ(Gadmm(cfg).Name(), "Q-GADMM(4b)");
}

TEST(GadmmRegistry, ReachableByName) {
  const auto cluster = TinyCluster(2, 2);
  const auto p = BuildProblem(TinySpec(), cluster.world_size());
  RunOptions opt;
  opt.max_iterations = 3;
  for (const std::string name : {"gadmm", "q-gadmm"}) {
    const auto res = RunAlgorithm(name, cluster, p, opt);
    EXPECT_FALSE(res.trace.empty()) << name;
  }
}

}  // namespace
}  // namespace psra::admm
