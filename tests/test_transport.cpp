// Transport layer tests: the Transport contract on both backends, the
// cross-backend conformance suite (wire collectives must reproduce the
// simulator's reduced values BITWISE and its traffic counters EXACTLY), and
// the socket edge cases the ISSUE calls out — partial reads/writes on tiny
// socket buffers, rank death mid-collective failing fast, and rendezvous
// port-collision retry. TCP tests self-skip when the environment forbids
// sockets.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "admm/problem.hpp"
#include "admm/registry.hpp"
#include "comm/collective.hpp"
#include "comm/hierarchical.hpp"
#include "comm/transport.hpp"
#include "comm/wire_allreduce.hpp"
#include "comm/wire_obs.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/wire.hpp"
#include "support/rng.hpp"
#include "transport/inproc.hpp"
#include "transport/launch.hpp"
#include "transport/tcp.hpp"

namespace psra::transport {
namespace {

using comm::AllreduceKind;
using comm::CommStats;
using comm::ElemPricing;
using comm::GroupComm;
using comm::Transport;
using comm::TransportError;
using comm::WireCollectives;
using comm::WireStats;
using linalg::DenseVector;
using linalg::SparseVector;
using simnet::Rank;
using simnet::Topology;
using simnet::VirtualTime;

bool SocketsAvailable() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  close(fd);
  return true;
}

#define SKIP_WITHOUT_SOCKETS()                                   \
  do {                                                           \
    if (!SocketsAvailable()) {                                   \
      GTEST_SKIP() << "TCP sockets unavailable in this sandbox"; \
    }                                                            \
  } while (false)

// --- deterministic inputs shared by simulator and wire sides --------------

DenseVector MakeDense(std::uint32_t rank, std::uint64_t dim) {
  psra::Rng rng(1234 + rank);
  DenseVector v(dim);
  for (auto& x : v) x = rng.NextDouble(-1.0, 1.0);
  return v;
}

/// Irregular sparsity: rank 0 gets an empty vector when `with_empty`, other
/// ranks roughly 1/3 density on rank-dependent indices (exercises the
/// PSR/naive empty-contribution skip paths).
SparseVector MakeSparse(std::uint32_t rank, std::uint64_t dim,
                        bool with_empty) {
  if (with_empty && rank == 0) return SparseVector(dim, {}, {});
  psra::Rng rng(99 + rank);
  std::vector<SparseVector::Index> idx;
  std::vector<double> val;
  for (std::uint64_t i = 0; i < dim; ++i) {
    if (rng.NextDouble() < 0.34) {
      idx.push_back(i);
      val.push_back(rng.NextDouble(-2.0, 2.0));
    }
  }
  return SparseVector(dim, std::move(idx), std::move(val));
}

bool BitwiseEqual(const DenseVector& a, const DenseVector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool BitwiseEqual(const SparseVector& a, const SparseVector& b) {
  return a.dim() == b.dim() && a.nnz() == b.nnz() &&
         std::equal(a.indices().begin(), a.indices().end(),
                    b.indices().begin()) &&
         (a.nnz() == 0 ||
          std::memcmp(a.values().data(), b.values().data(),
                      a.nnz() * sizeof(double)) == 0);
}

/// Simulator reference: flat-network group over n workers.
struct SimSide {
  explicit SimSide(std::uint32_t n, std::uint32_t racks = 1)
      : topo(n, 1, racks), cost(simnet::CostModelConfig{}),
        group(MakeGroup(n)) {}

  GroupComm MakeGroup(std::uint32_t n) {
    std::vector<Rank> members(n);
    for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
    return GroupComm(&topo, &cost, members);
  }

  Topology topo;
  simnet::CostModel cost;
  GroupComm group;
};

/// Runs `body(rank, transport)` on `n` inproc endpoints, one thread each,
/// re-throwing the first failure.
void RunInproc(std::uint32_t n,
               const std::function<void(std::uint32_t, Transport&)>& body) {
  InprocMesh mesh(n);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r, mesh.endpoint(r));
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<Transport::Rank> AllRanks(std::uint32_t n) {
  std::vector<Transport::Rank> m(n);
  for (std::uint32_t i = 0; i < n; ++i) m[i] = i;
  return m;
}

/// Asserts the wire run over `n` inproc ranks reproduces the simulator:
/// values bitwise, per-rank rounds equal, aggregate traffic equal.
void CheckFlatConformance(AllreduceKind kind, std::uint32_t n,
                          std::uint64_t dim, bool sparse, bool with_empty) {
  SimSide sim(n);
  const std::vector<VirtualTime> starts(n, 0.0);
  const auto alg = comm::MakeAllreduce(kind);
  const auto members = AllRanks(n);

  std::vector<DenseVector> dense_out(n);
  std::vector<SparseVector> sparse_out(n);
  std::vector<WireStats> wire(n);

  CommStats sim_stats;
  DenseVector sim_dense;
  SparseVector sim_sparse;
  comm::AllreduceScratch scratch;
  if (sparse) {
    std::vector<SparseVector> inputs;
    for (std::uint32_t r = 0; r < n; ++r) {
      inputs.push_back(MakeSparse(r, dim, with_empty));
    }
    alg->ReduceSparse(sim.group, inputs, starts, scratch, sim_sparse,
                      sim_stats);
    RunInproc(n, [&](std::uint32_t r, Transport& t) {
      WireCollectives wc(t, sim.group.pricing());
      wc.AllreduceSparse(kind, members, inputs[r], sparse_out[r], wire[r]);
    });
    for (std::uint32_t r = 0; r < n; ++r) {
      ASSERT_TRUE(BitwiseEqual(sparse_out[r], sim_sparse))
          << "rank " << r << " sparse value mismatch (n=" << n << ")";
    }
  } else {
    std::vector<DenseVector> inputs;
    for (std::uint32_t r = 0; r < n; ++r) inputs.push_back(MakeDense(r, dim));
    alg->ReduceDense(sim.group, inputs, starts, scratch, sim_dense, sim_stats);
    RunInproc(n, [&](std::uint32_t r, Transport& t) {
      WireCollectives wc(t, sim.group.pricing());
      wc.AllreduceDense(kind, members, inputs[r], dense_out[r], wire[r]);
    });
    for (std::uint32_t r = 0; r < n; ++r) {
      ASSERT_TRUE(BitwiseEqual(dense_out[r], sim_dense))
          << "rank " << r << " dense value mismatch (n=" << n << ")";
    }
  }

  WireStats agg;
  for (std::uint32_t r = 0; r < n; ++r) {
    EXPECT_EQ(wire[r].rounds, sim_stats.rounds)
        << "rank " << r << " rounds (n=" << n << ")";
    agg.elements_sent += wire[r].elements_sent;
    agg.messages_sent += wire[r].messages_sent;
    agg.bytes_sent += wire[r].bytes_sent;
  }
  EXPECT_EQ(agg.elements_sent, sim_stats.elements_sent) << "n=" << n;
  EXPECT_EQ(agg.messages_sent, sim_stats.messages_sent) << "n=" << n;
  EXPECT_EQ(agg.bytes_sent, sim_stats.bytes_sent) << "n=" << n;
}

// --- Transport contract (inproc) ------------------------------------------

TEST(InprocTransport, DeliversMatchedAndOrdered) {
  RunInproc(2, [](std::uint32_t r, Transport& t) {
    std::vector<std::byte> buf;
    if (r == 0) {
      const char a = 'a', b = 'b', c = 'c';
      // Same (dst, tag) twice: must arrive in post order; a different tag
      // posted FIRST must not hijack the earlier Recv.
      t.Post(1, 7, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(&c), 1));
      t.Post(1, 3, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(&a), 1));
      t.Post(1, 3, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(&b), 1));
    } else {
      t.Recv(0, 3, buf);
      ASSERT_EQ(static_cast<char>(buf[0]), 'a');
      t.Recv(0, 3, buf);
      ASSERT_EQ(static_cast<char>(buf[0]), 'b');
      t.Recv(0, 7, buf);
      ASSERT_EQ(static_cast<char>(buf[0]), 'c');
    }
    t.Fence();
  });
}

TEST(InprocTransport, ZeroLengthPayloadDelivered) {
  RunInproc(2, [](std::uint32_t r, Transport& t) {
    std::vector<std::byte> buf{std::byte{42}};
    if (r == 0) {
      t.Post(1, 1, {});
    } else {
      t.Recv(0, 1, buf);
      ASSERT_TRUE(buf.empty());
    }
  });
}

TEST(InprocTransport, RecvTimeoutThrows) {
  InprocMesh mesh(2, /*recv_timeout_s=*/0.05);
  std::vector<std::byte> buf;
  EXPECT_THROW(mesh.endpoint(0).Recv(1, 0, buf), TransportError);
}

TEST(InprocTransport, ReservedTagRejected) {
  InprocMesh mesh(2);
  std::vector<std::byte> buf;
  EXPECT_THROW(mesh.endpoint(0).Post(1, Transport::kMaxUserTag, buf),
               psra::InvalidArgument);
}

TEST(InprocTransport, StatsCountAndPublish) {
  InprocMesh mesh(2);
  RunInproc(2, [](std::uint32_t r, Transport& t) {
    std::vector<std::byte> buf(16);
    if (r == 0) {
      t.Post(1, 0, buf);
    } else {
      t.Recv(0, 0, buf);
    }
    t.Fence();
  });
  // Fresh mesh per RunInproc above; count on a dedicated pair instead.
  auto& a = mesh.endpoint(0);
  auto& b = mesh.endpoint(1);
  std::vector<std::byte> buf(8);
  a.Post(1, 0, buf);
  b.Recv(0, 0, buf);
  EXPECT_EQ(a.stats().messages_posted, 1u);
  EXPECT_EQ(a.stats().bytes_posted, 8u);
  EXPECT_EQ(b.stats().messages_received, 1u);
  EXPECT_EQ(b.stats().bytes_received, 8u);
  obs::MetricsRegistry reg;
  a.PublishTo(reg);
  EXPECT_EQ(reg.counters().at("transport.post.bytes"), 8u);
  EXPECT_EQ(reg.counters().at("transport.post.msgs"), 1u);
  EXPECT_EQ(reg.counters().count("transport.fences"), 1u);
}

// --- cross-backend conformance (inproc) -----------------------------------

struct ConformanceCase {
  AllreduceKind kind;
  bool sparse;
  bool with_empty;
  const char* name;
};

class WireConformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(WireConformance, MatchesSimulatorAcrossGroupSizes) {
  const auto& c = GetParam();
  for (std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 8u}) {
    CheckFlatConformance(c.kind, n, /*dim=*/96 + 7, c.sparse, c.with_empty);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WireConformance,
    ::testing::Values(
        ConformanceCase{AllreduceKind::kPsr, false, false, "psr_dense"},
        ConformanceCase{AllreduceKind::kPsr, true, false, "psr_sparse"},
        ConformanceCase{AllreduceKind::kPsr, true, true, "psr_sparse_empty"},
        ConformanceCase{AllreduceKind::kRing, false, false, "ring_dense"},
        ConformanceCase{AllreduceKind::kRing, true, false, "ring_sparse"},
        ConformanceCase{AllreduceKind::kNaive, false, false, "naive_dense"},
        ConformanceCase{AllreduceKind::kNaive, true, false, "naive_sparse"},
        ConformanceCase{AllreduceKind::kNaive, true, true,
                        "naive_sparse_empty"}),
    [](const auto& info) { return info.param.name; });

TEST(WireConformance, HierarchicalMatchesSimulator) {
  // 3 racks x 2 node leaders; PSR at both levels (the paper's headline
  // configuration), then Ring to cover the non-ascending fold.
  for (AllreduceKind kind : {AllreduceKind::kPsr, AllreduceKind::kRing}) {
    const std::uint32_t racks = 3, per_rack = 2, n = racks * per_rack;
    const std::uint64_t dim = 64;
    SimSide sim(n, racks);
    std::vector<Rank> members(n);
    for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
    comm::MultiLevelAllreduce ml(&sim.topo, &sim.cost, members);
    const auto alg = comm::MakeAllreduce(kind);
    const std::vector<VirtualTime> starts(n, 0.0);

    std::vector<DenseVector> inputs;
    for (std::uint32_t r = 0; r < n; ++r) inputs.push_back(MakeDense(r, dim));
    comm::AllreduceScratch scratch;
    DenseVector sim_sum;
    CommStats sim_stats;
    ml.ReduceDense(*alg, inputs, starts, scratch, sim_sum, sim_stats);

    std::vector<DenseVector> outs(n);
    std::vector<WireStats> wire(n);
    const auto wire_members = AllRanks(n);
    RunInproc(n, [&](std::uint32_t r, Transport& t) {
      WireCollectives wc(t, sim.group.pricing());
      wc.MultiLevelDense(kind, wire_members, per_rack, inputs[r], outs[r],
                         wire[r]);
    });
    for (std::uint32_t r = 0; r < n; ++r) {
      ASSERT_TRUE(BitwiseEqual(outs[r], sim_sum)) << "rank " << r;
    }
    // Aggregate: the simulator books each rack stage once plus the root
    // stage once; redistribution is reported separately.
    WireStats agg;
    std::size_t rounds = 0, redist_elems = 0, redist_msgs = 0;
    for (std::uint32_t r = 0; r < n; ++r) {
      agg.elements_sent += wire[r].elements_sent;
      agg.messages_sent += wire[r].messages_sent;
      agg.bytes_sent += wire[r].bytes_sent;
      redist_elems += wire[r].redist_elements;
      redist_msgs += wire[r].redist_messages;
      if (r % per_rack == 0) rounds += wire[r].rack_rounds;
    }
    rounds += wire[0].root_rounds;
    EXPECT_EQ(agg.elements_sent, sim_stats.elements_sent);
    EXPECT_EQ(agg.messages_sent, sim_stats.messages_sent);
    EXPECT_EQ(agg.bytes_sent, sim_stats.bytes_sent);
    EXPECT_EQ(rounds, sim_stats.rounds);
    EXPECT_EQ(redist_elems, ml.redistribution_elements());
    EXPECT_EQ(redist_msgs, ml.redistribution_messages());
  }
}

TEST(WireConformance, SparseHierarchicalMatchesSimulator) {
  const std::uint32_t racks = 2, per_rack = 3, n = racks * per_rack;
  const std::uint64_t dim = 60;
  SimSide sim(n, racks);
  std::vector<Rank> members(n);
  for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
  comm::MultiLevelAllreduce ml(&sim.topo, &sim.cost, members);
  const auto alg = comm::MakeAllreduce(AllreduceKind::kPsr);
  const std::vector<VirtualTime> starts(n, 0.0);

  std::vector<SparseVector> inputs;
  for (std::uint32_t r = 0; r < n; ++r) {
    inputs.push_back(MakeSparse(r, dim, /*with_empty=*/true));
  }
  comm::AllreduceScratch scratch;
  SparseVector sim_sum;
  CommStats sim_stats;
  ml.ReduceSparse(*alg, inputs, starts, scratch, sim_sum, sim_stats);

  std::vector<SparseVector> outs(n);
  std::vector<WireStats> wire(n);
  const auto wire_members = AllRanks(n);
  RunInproc(n, [&](std::uint32_t r, Transport& t) {
    WireCollectives wc(t, sim.group.pricing());
    wc.MultiLevelSparse(AllreduceKind::kPsr, wire_members, per_rack,
                        inputs[r], outs[r], wire[r]);
  });
  WireStats agg;
  std::size_t rounds = 0, redist_elems = 0, redist_msgs = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    ASSERT_TRUE(BitwiseEqual(outs[r], sim_sum)) << "rank " << r;
    agg.elements_sent += wire[r].elements_sent;
    agg.messages_sent += wire[r].messages_sent;
    agg.bytes_sent += wire[r].bytes_sent;
    redist_elems += wire[r].redist_elements;
    redist_msgs += wire[r].redist_messages;
    if (r % per_rack == 0) rounds += wire[r].rack_rounds;
  }
  rounds += wire[0].root_rounds;
  EXPECT_EQ(agg.elements_sent, sim_stats.elements_sent);
  EXPECT_EQ(agg.messages_sent, sim_stats.messages_sent);
  EXPECT_EQ(agg.bytes_sent, sim_stats.bytes_sent);
  EXPECT_EQ(rounds, sim_stats.rounds);
  EXPECT_EQ(redist_elems, ml.redistribution_elements());
  EXPECT_EQ(redist_msgs, ml.redistribution_messages());
}

// --- observability collection plane ---------------------------------------

TEST(WireObsCollection, FourRankPlaneMergesMetricsAndLanes) {
  const std::uint32_t n = 4;
  const std::uint64_t dim = 96;
  SimSide sim(n);
  const auto members = AllRanks(n);

  comm::WireObsBundle bundle;  // written by rank 0's thread, read after join
  RunInproc(n, [&](std::uint32_t r, Transport& t) {
    obs::WireObs obs(r);
    t.AttachObs(&obs);
    WireCollectives wc(t, sim.group.pricing(), &obs);
    DenseVector out;
    WireStats st;
    wc.AllreduceDense(AllreduceKind::kPsr, members, MakeDense(r, dim), out,
                      st);
    wc.AllreduceDense(AllreduceKind::kRing, members, MakeDense(r, dim), out,
                      st);
    const bool root =
        comm::CollectWireObs(t, obs, r == 0 ? &bundle : nullptr);
    EXPECT_EQ(root, r == 0) << "rank " << r;
    EXPECT_EQ(t.attached_obs(), nullptr)
        << "rank " << r << " still attached after collection";
  });

  // One payload per rank, in rank order, each carrying its own "rank N"
  // lane with post/recv/fence spans from the instrumented transport.
  ASSERT_EQ(bundle.ranks.size(), n);
  std::uint64_t post_msgs = 0, recv_msgs = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    const obs::RankObsPayload& p = bundle.ranks[r];
    EXPECT_EQ(p.rank, r);
    ASSERT_EQ(p.trace.tracks.size(), 1u) << "rank " << r;
    EXPECT_EQ(p.trace.tracks[0].name, "rank " + std::to_string(r));
    bool saw_post = false, saw_recv = false, saw_fence = false;
    for (const auto& s : p.trace.tracks[0].spans) {
      if (s.name == "wire_post") saw_post = true;
      if (s.name == "wire_recv") saw_recv = true;
      if (s.name == "wire_fence") saw_fence = true;
    }
    EXPECT_TRUE(saw_post && saw_recv && saw_fence)
        << "rank " << r << " lane is missing transport spans";
    post_msgs += p.metrics.counters().at("transport.post.msgs");
    recv_msgs += p.metrics.counters().at("transport.recv.msgs");
  }

  // Merged registry: counters sum across ranks, per-rank gauges survive via
  // their rank-qualified keys, the shared-bounds histograms fold together.
  EXPECT_EQ(bundle.metrics.counters().at("transport.post.msgs"), post_msgs);
  EXPECT_EQ(bundle.metrics.counters().at("transport.recv.msgs"), recv_msgs);
  for (std::uint32_t r = 0; r < n; ++r) {
    EXPECT_TRUE(bundle.metrics.gauges().contains(
        "wire.rank" + std::to_string(r) + ".clock_offset_s"))
        << "rank " << r;
  }
  const auto& frame_wait = bundle.metrics.histograms().at("wire.frame.wait_s");
  EXPECT_GT(frame_wait.count, 0u);

  // Merged trace round-trip: stable rank-ascending lanes, monotonic aligned
  // timestamps within each lane.
  std::ostringstream os;
  obs::WriteMergedWireTrace(bundle.ranks, os);
  const obs::TraceData merged = obs::LoadChromeTrace(os.str());
  ASSERT_EQ(merged.tracks.size(), n);
  for (std::uint32_t r = 0; r < n; ++r) {
    const auto& lane = merged.tracks[r];
    EXPECT_EQ(lane.name, "rank " + std::to_string(r));
    for (std::size_t i = 1; i < lane.spans.size(); ++i) {
      EXPECT_LE(lane.spans[i - 1].begin, lane.spans[i].begin)
          << "rank " << r << " span " << i;
    }
  }
}

TEST(WireObsCollection, RejectsMalformedAndTruncatedPayloads) {
  obs::WireObs obs(3);
  obs.metrics().Counter("transport.post.msgs") += 5;
  obs.tracer().Add(obs.track(), "wire_post", 0.0, 0.0, 1, 0.0);
  const std::string good = SerializeWireObs(obs);
  EXPECT_EQ(obs::ParseWireObsPayload(good).rank, 3u);

  EXPECT_THROW(obs::ParseWireObsPayload(""), InvalidArgument);
  EXPECT_THROW(obs::ParseWireObsPayload("not json"), InvalidArgument);
  EXPECT_THROW(obs::ParseWireObsPayload("[1, 2]"), InvalidArgument);
  EXPECT_THROW(obs::ParseWireObsPayload("{}"), InvalidArgument);
  EXPECT_THROW(obs::ParseWireObsPayload(R"({"rank": 1, "metrics": {}})"),
               InvalidArgument);
  EXPECT_THROW(obs::ParseWireObsPayload(R"({"rank": 1, "trace": {}})"),
               InvalidArgument);
  EXPECT_THROW(obs::ParseWireObsPayload(R"({"rank": -1, "metrics": {},)"
                                        R"( "trace": {}})"),
               InvalidArgument);
  // Truncation anywhere in the body must be detected, not half-parsed.
  for (const std::size_t cut :
       {good.size() / 4, good.size() / 2, good.size() - 2}) {
    EXPECT_THROW(
        obs::ParseWireObsPayload(std::string_view(good).substr(0, cut)),
        InvalidArgument)
        << "cut at " << cut;
  }
}

// --- TCP backend ----------------------------------------------------------

TEST(TcpTransport, MultiProcessConformance) {
  SKIP_WITHOUT_SOCKETS();
  const std::uint32_t n = 4;
  const std::uint64_t dim = 64;
  // Every child derives the SAME deterministic inputs, runs the omniscient
  // simulator locally as the reference, then its own wire rank, and dies
  // nonzero on any divergence. Rank 0 additionally aggregates WireStats
  // shipped over the transport itself and checks the traffic counters.
  const auto result = ForkRanks(n, [&](const TcpOptions& opt) {
    TcpTransport t(opt);
    SimSide sim(n);
    std::vector<DenseVector> inputs;
    for (std::uint32_t r = 0; r < n; ++r) inputs.push_back(MakeDense(r, dim));
    const std::vector<VirtualTime> starts(n, 0.0);
    const auto alg = comm::MakeAllreduce(AllreduceKind::kPsr);
    comm::AllreduceScratch scratch;
    DenseVector expected;
    CommStats sim_stats;
    alg->ReduceDense(sim.group, inputs, starts, scratch, expected, sim_stats);

    WireCollectives wc(t, sim.group.pricing());
    DenseVector out;
    WireStats st;
    wc.AllreduceDense(AllreduceKind::kPsr, AllRanks(n), inputs[opt.rank], out,
                      st);
    if (!BitwiseEqual(out, expected)) throw TransportError("value mismatch");
    if (st.rounds != sim_stats.rounds) throw TransportError("rounds mismatch");

    // Ship per-rank stats to rank 0 for the aggregate check.
    const Transport::Tag stats_tag = 40'000;
    if (opt.rank == 0) {
      std::size_t elems = st.elements_sent, msgs = st.messages_sent,
                  bytes = st.bytes_sent;
      std::vector<std::byte> buf;
      for (std::uint32_t r = 1; r < n; ++r) {
        t.Recv(r, stats_tag, buf);
        std::size_t triple[3];
        std::memcpy(triple, buf.data(), sizeof(triple));
        elems += triple[0];
        msgs += triple[1];
        bytes += triple[2];
      }
      if (elems != sim_stats.elements_sent ||
          msgs != sim_stats.messages_sent ||
          bytes != sim_stats.bytes_sent) {
        throw TransportError("aggregate traffic mismatch");
      }
    } else {
      const std::size_t triple[3] = {st.elements_sent, st.messages_sent,
                                     st.bytes_sent};
      t.Post(0, stats_tag,
             std::as_bytes(std::span<const std::size_t>(triple)));
    }
    t.Fence();
  });
  EXPECT_TRUE(result.AllZero()) << "exit codes: "
                                << ::testing::PrintToString(result.exit_codes);
}

TEST(TcpTransport, PartialReadsAndWritesOnTinyBuffers) {
  SKIP_WITHOUT_SOCKETS();
  // 128 KiB payloads over 4 KiB socket buffers: every frame crosses the
  // kernel boundary in dozens of partial reads/writes. (Kept modest: a
  // receive window below the loopback MSS stalls on the delayed-ACK timer,
  // so bytes here cost wall-clock.)
  const std::size_t big = 128 << 10;
  const auto result = ForkRanks(2, [&](const TcpOptions& opt_in) {
    TcpOptions opt = opt_in;
    opt.sock_buf_bytes = 4096;
    TcpTransport t(opt);
    std::vector<std::byte> payload(big);
    for (std::size_t i = 0; i < big; ++i) {
      payload[i] = static_cast<std::byte>((i * 31 + opt.rank) & 0xFF);
    }
    std::vector<std::byte> got;
    if (opt.rank == 0) {
      t.Post(1, 5, payload);
      t.Recv(1, 6, got);
    } else {
      t.Post(0, 6, payload);
      t.Recv(0, 5, got);
    }
    std::vector<std::byte> expect(big);
    for (std::size_t i = 0; i < big; ++i) {
      expect[i] = static_cast<std::byte>((i * 31 + (1 - opt.rank)) & 0xFF);
    }
    if (got != expect) throw TransportError("payload corrupted in flight");
    t.Fence();
  });
  EXPECT_TRUE(result.AllZero()) << "exit codes: "
                                << ::testing::PrintToString(result.exit_codes);
}

TEST(TcpTransport, RankDeathFailsFastInsteadOfHanging) {
  SKIP_WITHOUT_SOCKETS();
  // Rank 2 completes rendezvous then dies. The survivors must get a clean
  // TransportError from Recv (peer closed / timeout), not a hang.
  const auto result = ForkRanks(3, [](const TcpOptions& opt_in) {
    TcpOptions opt = opt_in;
    opt.recv_timeout_s = 5.0;
    TcpTransport t(opt);
    if (opt.rank == 2) return;  // dies without sending
    std::vector<std::byte> buf;
    try {
      t.Recv(2, 9, buf);
    } catch (const TransportError&) {
      return;  // expected: fail-fast
    }
    throw TransportError("recv from dead rank did not fail");
  });
  EXPECT_TRUE(result.AllZero()) << "exit codes: "
                                << ::testing::PrintToString(result.exit_codes);
}

TEST(TcpTransport, PortCollisionRetriesUpward) {
  SKIP_WITHOUT_SOCKETS();
  // Occupy an ephemeral port, then ask for exactly that port with a retry
  // budget: the bind must land on a nearby higher port instead of failing.
  std::uint16_t occupied = 0;
  const int blocker = BindListener(occupied, 0);
  ASSERT_GE(blocker, 0);
  std::uint16_t requested = occupied;
  const int fd = BindListener(requested, /*retries=*/8);
  EXPECT_GE(fd, 0);
  EXPECT_NE(requested, occupied);
  EXPECT_GT(requested, occupied);
  close(fd);
  // With no retry budget the collision is a hard error.
  std::uint16_t again = occupied;
  EXPECT_THROW(BindListener(again, 0), TransportError);
  close(blocker);
}

// --- RunOptions::transport ------------------------------------------------

TEST(RunOptionsTransport, EnginesRejectNonSimTransport) {
  // In-process engines are simulator-only; real-socket runs are one process
  // per rank via tools/psra_launch. Anything but "sim" must be rejected up
  // front instead of silently simulating.
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_features = 40;
  spec.num_train = 80;
  spec.num_test = 20;
  spec.mean_row_nnz = 6.0;
  spec.seed = 7;
  const auto problem = admm::BuildProblem(spec, 4);
  admm::ClusterConfig cluster;
  cluster.num_nodes = 4;
  admm::RunOptions opt;
  opt.max_iterations = 1;
  EXPECT_EQ(opt.transport, "sim");
  opt.transport = "tcp";
  EXPECT_THROW(admm::RunAlgorithm("psra-hgadmm", cluster, problem, opt),
               psra::InvalidArgument);
  opt.transport = "sim";
  EXPECT_NO_THROW(admm::RunAlgorithm("psra-hgadmm", cluster, problem, opt));
}

TEST(TcpTransport, FromEnvRoundTrip) {
  setenv("PSRA_RANK", "2", 1);
  setenv("PSRA_WORLD", "4", 1);
  setenv("PSRA_PORT", "12345", 1);
  unsetenv("PSRA_LISTEN_FD");
  const TcpOptions o = TcpOptions::FromEnv();
  EXPECT_EQ(o.rank, 2u);
  EXPECT_EQ(o.world, 4u);
  EXPECT_EQ(o.port, 12345);
  EXPECT_EQ(o.listen_fd, -1);
  unsetenv("PSRA_RANK");
  unsetenv("PSRA_WORLD");
  unsetenv("PSRA_PORT");
}

}  // namespace
}  // namespace psra::transport
