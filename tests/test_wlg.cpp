// Tests for leader election and the Group Generator (paper Section 4.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "support/status.hpp"
#include "wlg/group_generator.hpp"
#include "wlg/leader.hpp"

namespace psra::wlg {
namespace {

using simnet::NodeId;
using simnet::Rank;
using simnet::Topology;

// ---------------------------------------------------------------- leader ----

TEST(Leader, LowestRankPolicy) {
  const Topology t(2, 4);
  const auto ranks = t.RanksOnNode(1);  // {4,5,6,7}
  EXPECT_EQ(ElectLeader(t, ranks, LeaderPolicy::kLowestRank), 4u);
}

TEST(Leader, SeededRandomIsDeterministicAndValid) {
  const Topology t(3, 4);
  const auto ranks = t.RanksOnNode(2);
  const Rank a = ElectLeader(t, ranks, LeaderPolicy::kSeededRandom, 9);
  const Rank b = ElectLeader(t, ranks, LeaderPolicy::kSeededRandom, 9);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::find(ranks.begin(), ranks.end(), a) != ranks.end());
}

TEST(Leader, SeededRandomVariesAcrossNodes) {
  const Topology t(8, 8);
  std::set<std::uint32_t> locals;
  for (NodeId n = 0; n < 8; ++n) {
    const auto ranks = t.RanksOnNode(n);
    locals.insert(t.LocalIndexOf(
        ElectLeader(t, ranks, LeaderPolicy::kSeededRandom, 4)));
  }
  EXPECT_GT(locals.size(), 1u);  // not all nodes pick the same slot
}

TEST(Leader, RejectsMixedNodesAndEmpty) {
  const Topology t(2, 2);
  const std::vector<Rank> mixed{1, 2};
  EXPECT_THROW(ElectLeader(t, mixed), InvalidArgument);
  const std::vector<Rank> empty;
  EXPECT_THROW(ElectLeader(t, empty), InvalidArgument);
}

// ------------------------------------------------------- group generator ----

TEST(GroupGenerator, FormsGroupAtThreshold) {
  GroupGenerator gg(3, 6);
  EXPECT_FALSE(gg.Report(0, 1.0).has_value());
  EXPECT_FALSE(gg.Report(1, 2.0).has_value());
  const auto g = gg.Report(2, 3.0);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->members, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(g->formed_at, 3.0);
  EXPECT_EQ(gg.QueueDepth(), 0u);
}

TEST(GroupGenerator, PaperFigure3Scenario) {
  // 6 nodes, threshold 3: leaders 0,1,2 then 3,4,5 form two groups.
  GroupGenerator gg(3, 6);
  std::vector<GroupFormation> groups;
  const std::vector<simnet::VirtualTime> times{1, 2, 3, 4, 5, 6};
  auto formed = RunGroupingCycle(gg, times);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(formed[1].members, (std::vector<NodeId>{3, 4, 5}));
}

TEST(GroupGenerator, GroupsByArrivalOrderNotNodeId) {
  GroupGenerator gg(2, 4);
  // Node 3 is fastest, node 0 slowest.
  const std::vector<simnet::VirtualTime> times{40.0, 20.0, 30.0, 10.0};
  const auto formed = RunGroupingCycle(gg, times);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members, (std::vector<NodeId>{3, 1}));
  EXPECT_EQ(formed[1].members, (std::vector<NodeId>{2, 0}));
  EXPECT_DOUBLE_EQ(formed[0].formed_at, 20.0);
  EXPECT_DOUBLE_EQ(formed[1].formed_at, 40.0);
}

TEST(GroupGenerator, ResidualFormsSmallerFinalGroup) {
  GroupGenerator gg(3, 5);
  const std::vector<simnet::VirtualTime> times{1, 2, 3, 4, 5};
  const auto formed = RunGroupingCycle(gg, times);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members.size(), 3u);
  EXPECT_EQ(formed[1].members.size(), 2u);  // residual flushed at cycle end
}

TEST(GroupGenerator, TieBreaksByNodeId) {
  GroupGenerator gg(2, 4);
  const std::vector<simnet::VirtualTime> times{5.0, 5.0, 5.0, 5.0};
  const auto formed = RunGroupingCycle(gg, times);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(formed[1].members, (std::vector<NodeId>{2, 3}));
}

TEST(GroupGenerator, CycleResetsAfterAllReport) {
  GroupGenerator gg(2, 2);
  ASSERT_TRUE(RunGroupingCycle(gg, {1.0, 2.0}).size() == 1);
  // A fresh cycle must accept the same nodes again.
  const auto formed = RunGroupingCycle(gg, {3.0, 4.0});
  ASSERT_EQ(formed.size(), 1u);
  EXPECT_DOUBLE_EQ(formed[0].formed_at, 4.0);
}

TEST(GroupGenerator, DoubleReportInOneCycleThrows) {
  GroupGenerator gg(3, 4);
  gg.Report(1, 1.0);
  EXPECT_THROW(gg.Report(1, 2.0), InvalidArgument);
}

TEST(GroupGenerator, OutOfOrderTimeThrows) {
  GroupGenerator gg(3, 4);
  gg.Report(0, 5.0);
  EXPECT_THROW(gg.Report(1, 4.0), InvalidArgument);
}

TEST(GroupGenerator, EndCycleOnEmptyQueueReturnsNothing) {
  GroupGenerator gg(2, 2);
  EXPECT_FALSE(gg.EndCycle().has_value());
}

TEST(GroupGenerator, ThresholdOneMakesSingletonGroups) {
  GroupGenerator gg(1, 3);
  const auto formed = RunGroupingCycle(gg, {1.0, 2.0, 3.0});
  ASSERT_EQ(formed.size(), 3u);
  for (const auto& g : formed) EXPECT_EQ(g.members.size(), 1u);
}

TEST(GroupGenerator, ThresholdEqualNodesActsAsFullBarrier) {
  GroupGenerator gg(4, 4);
  const auto formed = RunGroupingCycle(gg, {4.0, 3.0, 2.0, 1.0});
  ASSERT_EQ(formed.size(), 1u);
  EXPECT_EQ(formed[0].members.size(), 4u);
  EXPECT_DOUBLE_EQ(formed[0].formed_at, 4.0);
}

TEST(GroupGenerator, RejectsBadConstruction) {
  EXPECT_THROW(GroupGenerator(0, 4), InvalidArgument);
  EXPECT_THROW(GroupGenerator(5, 4), InvalidArgument);
}

TEST(GroupGenerator, EveryNodeAppearsExactlyOncePerCycle) {
  GroupGenerator gg(3, 8);
  const std::vector<simnet::VirtualTime> times{8, 1, 6, 2, 7, 3, 5, 4};
  const auto formed = RunGroupingCycle(gg, times);
  std::multiset<NodeId> seen;
  for (const auto& g : formed) {
    seen.insert(g.members.begin(), g.members.end());
  }
  EXPECT_EQ(seen.size(), 8u);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(seen.count(n), 1u);
}

// --------------------------------------------------- faults / regrouping ----

TEST(Leader, ReElectionExcludesTheDeadLeader) {
  const Topology t(2, 4);
  const auto ranks = t.RanksOnNode(1);  // {4,5,6,7}; original leader 4
  std::vector<Rank> alive{5, 6, 7};
  const Rank relected =
      ReElectLeader(t, alive, LeaderPolicy::kLowestRank, /*seed=*/0,
                    /*epoch=*/3);
  EXPECT_EQ(relected, 5u);
  // Seeded policy: deterministic for a fixed epoch, salted across epochs.
  const Rank e1 = ReElectLeader(t, alive, LeaderPolicy::kSeededRandom, 9, 1);
  EXPECT_EQ(e1, ReElectLeader(t, alive, LeaderPolicy::kSeededRandom, 9, 1));
  EXPECT_NE(std::find(alive.begin(), alive.end(), e1), alive.end());
  bool rotated = false;
  for (std::uint64_t epoch = 2; epoch < 12 && !rotated; ++epoch) {
    rotated = ReElectLeader(t, alive, LeaderPolicy::kSeededRandom, 9,
                            epoch) != e1;
  }
  EXPECT_TRUE(rotated) << "epoch salt never rotated the seeded pick";
  (void)ranks;
}

TEST(GroupGenerator, WithdrawRemovesQueuedReporter) {
  GroupGenerator gg(2, 4);
  EXPECT_FALSE(gg.Report(0, 1.0).has_value());
  EXPECT_EQ(gg.QueueDepth(), 1u);
  EXPECT_TRUE(gg.Withdraw(0));
  EXPECT_EQ(gg.QueueDepth(), 0u);
  EXPECT_FALSE(gg.Withdraw(0));  // already gone

  // The withdrawn slot is refilled by later reporters.
  EXPECT_FALSE(gg.Report(1, 2.0).has_value());
  const auto formed = gg.Report(2, 3.0);
  ASSERT_TRUE(formed.has_value());
  EXPECT_EQ(formed->members, (std::vector<NodeId>{1, 2}));
  EXPECT_DOUBLE_EQ(formed->formed_at, 3.0);
}

TEST(GroupGenerator, WithdrawAfterFormationReturnsFalse) {
  GroupGenerator gg(2, 4);
  gg.Report(0, 1.0);
  const auto formed = gg.Report(1, 2.0);
  ASSERT_TRUE(formed.has_value());
  EXPECT_FALSE(gg.Withdraw(0));  // its group already formed
}

TEST(GroupGenerator, FaultyCycleRegroupsAroundLeaderDeath) {
  // Node 0 reports first and dies immediately after: the GG withdraws it,
  // so nodes 1+2 pair up and node 3 forms the residual group.
  GroupGenerator gg(2, 4);
  std::vector<LeaderReport> reports{
      {.node = 0, .time = 1.0, .dies_at = 1.0},
      {.node = 1, .time = 2.0, .dies_at = std::nullopt},
      {.node = 2, .time = 3.0, .dies_at = std::nullopt},
      {.node = 3, .time = 4.0, .dies_at = std::nullopt},
  };
  const auto formed = RunGroupingCycle(gg, reports);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members, (std::vector<NodeId>{1, 2}));
  EXPECT_DOUBLE_EQ(formed[0].formed_at, 3.0);
  EXPECT_EQ(formed[1].members, (std::vector<NodeId>{3}));
}

TEST(GroupGenerator, FaultyCycleKeepsGroupsFormedBeforeTheDeath) {
  // Node 0's group forms at t=2; its death at t=5 cannot unform it — the
  // caller handles the dead member downstream.
  GroupGenerator gg(2, 4);
  std::vector<LeaderReport> reports{
      {.node = 0, .time = 1.0, .dies_at = 5.0},
      {.node = 1, .time = 2.0, .dies_at = std::nullopt},
      {.node = 2, .time = 6.0, .dies_at = std::nullopt},
      {.node = 3, .time = 7.0, .dies_at = std::nullopt},
  };
  const auto formed = RunGroupingCycle(gg, reports);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(formed[1].members, (std::vector<NodeId>{2, 3}));
}

TEST(GroupGenerator, FaultyCycleWithSubsetOfLeaders) {
  // Dead nodes simply do not report; the survivors still group and the
  // residual flushes at end of cycle.
  GroupGenerator gg(2, 4);
  std::vector<LeaderReport> reports{
      {.node = 2, .time = 1.5, .dies_at = std::nullopt},
      {.node = 0, .time = 2.5, .dies_at = std::nullopt},
      {.node = 3, .time = 3.5, .dies_at = std::nullopt},
  };
  const auto formed = RunGroupingCycle(gg, reports);
  ASSERT_EQ(formed.size(), 2u);
  EXPECT_EQ(formed[0].members, (std::vector<NodeId>{2, 0}));
  EXPECT_EQ(formed[1].members, (std::vector<NodeId>{3}));
}

// ------------------------------------------------------- group workspace ----

TEST(GroupWorkspace, BatchCycleMatchesVectorCycle) {
  // The pooled RunGroupingCycle overload must form the exact groups (same
  // membership, same order, same formed_at) as the allocating original.
  GroupGenerator gg_vec(3, 8);
  const std::vector<simnet::VirtualTime> times{5, 1, 7, 2, 8, 3, 6, 4};
  const auto expected = RunGroupingCycle(gg_vec, times);

  GroupGenerator gg_ws(3, 8);
  GroupWorkspace ws;
  RunGroupingCycle(gg_ws, times, ws);
  ASSERT_EQ(ws.groups.size(), expected.size());
  for (std::size_t g = 0; g < expected.size(); ++g) {
    const GroupView view = ws.groups.group(g);
    const auto members = ws.groups.members(view);
    ASSERT_EQ(members.size(), expected[g].members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(members[i], expected[g].members[i]);
    }
    EXPECT_DOUBLE_EQ(view.formed_at, expected[g].formed_at);
  }
}

TEST(GroupWorkspace, ClearKeepsStorageAcrossCycles) {
  // Steady state: after the first cycle the batch never reallocates —
  // Clear() keeps capacity and group sizes repeat, so re-running the same
  // shape of cycle reuses the flat arrays (data() stays put).
  GroupGenerator gg(2, 6);
  const std::vector<simnet::VirtualTime> times{1, 2, 3, 4, 5, 6};
  GroupWorkspace ws;
  RunGroupingCycle(gg, times, ws);
  ASSERT_EQ(ws.groups.size(), 3u);
  const GroupView before = ws.groups.group(0);
  const simnet::NodeId* data_before = ws.groups.members(before).data();

  RunGroupingCycle(gg, times, ws);
  ASSERT_EQ(ws.groups.size(), 3u);
  EXPECT_EQ(ws.groups.members(ws.groups.group(0)).data(), data_before);
}

TEST(GroupWorkspace, ReportIntoFormsAtThreshold) {
  GroupGenerator gg(3, 6);
  GroupBatch batch;
  batch.Reserve(6);
  EXPECT_FALSE(gg.ReportInto(0, 1.0, batch));
  EXPECT_FALSE(gg.ReportInto(1, 2.0, batch));
  EXPECT_TRUE(gg.ReportInto(2, 3.0, batch));
  ASSERT_EQ(batch.size(), 1u);
  const auto members = batch.members(batch.group(0));
  EXPECT_EQ(std::vector<NodeId>(members.begin(), members.end()),
            (std::vector<NodeId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(batch.group(0).formed_at, 3.0);

  // Residual flush at end of cycle.
  EXPECT_FALSE(gg.ReportInto(3, 4.0, batch));
  EXPECT_TRUE(gg.EndCycleInto(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.members(batch.group(1)).size(), 1u);
}

}  // namespace
}  // namespace psra::wlg
