// Tests for the collectives: correctness of every allreduce algorithm and
// the communication-cost properties the paper derives in Section 4.2
// (eq. 11-16). Layouts used:
//   uniform   — every worker has q nonzeros in every block (same indices
//               across workers), so block sizes never change during a reduce;
//   own       — worker i's nonzeros lie only in block i (PSR best case:
//               T_psr-sr = 0);
//   hot       — all workers share the same q indices inside block 0
//               (paper's "concentrated" worst case with overlap);
//   disjoint  — all nonzeros in block 0 but disjoint across workers (partial
//               sums grow while circulating: Ring's true worst case).
#include <gtest/gtest.h>

#include <cmath>

#include "comm/allreduce_impl.hpp"
#include "comm/collective.hpp"
#include "comm/group.hpp"
#include "comm/hierarchical.hpp"
#include "comm/intranode.hpp"
#include "simnet/fault.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::comm {
namespace {

using linalg::DenseVector;
using linalg::SparseVector;
using simnet::Link;
using simnet::Rank;
using simnet::Topology;
using simnet::VirtualTime;

/// One worker per node -> every pair is inter-node; theta_s == 1 exactly.
struct Fixture {
  explicit Fixture(std::uint32_t n)
      : topo(n, 1), cost(MakeConfig()), group(MakeGroup(n)) {}

  static simnet::CostModelConfig MakeConfig() {
    simnet::CostModelConfig cfg;
    cfg.net_bandwidth_bytes_per_s = 16.0;  // theta_s = (8+8)/16 = 1 s/elem
    cfg.bus_bandwidth_bytes_per_s = 160.0;
    cfg.net_latency_s = 0.0;
    cfg.bus_latency_s = 0.0;
    return cfg;
  }

  GroupComm MakeGroup(std::uint32_t n) {
    std::vector<Rank> members(n);
    for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
    return GroupComm(&topo, &cost, members);
  }

  Topology topo;
  simnet::CostModel cost;
  GroupComm group;
};

std::vector<VirtualTime> ZeroStarts(std::size_t n) {
  return std::vector<VirtualTime>(n, 0.0);
}

// Block b of worker i spans [dim*b/N, dim*(b+1)/N). Layout builders place q
// nonzeros per described region; dim = N * block elements.
std::vector<SparseVector> UniformLayout(std::uint32_t n, std::uint64_t block,
                                        std::uint32_t q) {
  const std::uint64_t dim = static_cast<std::uint64_t>(n) * block;
  std::vector<SparseVector> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<SparseVector::Index> idx;
    std::vector<double> val;
    for (std::uint32_t b = 0; b < n; ++b) {
      for (std::uint32_t k = 0; k < q; ++k) {
        idx.push_back(static_cast<std::uint64_t>(b) * block + k);
        val.push_back(1.0 + i);
      }
    }
    out.emplace_back(dim, std::move(idx), std::move(val));
  }
  return out;
}

std::vector<SparseVector> OwnBlockLayout(std::uint32_t n, std::uint64_t block,
                                         std::uint32_t q) {
  const std::uint64_t dim = static_cast<std::uint64_t>(n) * block;
  std::vector<SparseVector> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<SparseVector::Index> idx;
    std::vector<double> val;
    for (std::uint32_t k = 0; k < q; ++k) {
      idx.push_back(static_cast<std::uint64_t>(i) * block + k);
      val.push_back(2.0);
    }
    out.emplace_back(dim, std::move(idx), std::move(val));
  }
  return out;
}

std::vector<SparseVector> HotBlockLayout(std::uint32_t n, std::uint64_t block,
                                         std::uint32_t q) {
  const std::uint64_t dim = static_cast<std::uint64_t>(n) * block;
  std::vector<SparseVector> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<SparseVector::Index> idx;
    std::vector<double> val;
    for (std::uint32_t k = 0; k < q; ++k) {
      idx.push_back(k);  // same q indices in block 0 for everyone
      val.push_back(1.0);
    }
    out.emplace_back(dim, std::move(idx), std::move(val));
  }
  return out;
}

std::vector<SparseVector> DisjointBlockLayout(std::uint32_t n,
                                              std::uint64_t block,
                                              std::uint32_t q) {
  const std::uint64_t dim = static_cast<std::uint64_t>(n) * block;
  std::vector<SparseVector> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<SparseVector::Index> idx;
    std::vector<double> val;
    for (std::uint32_t k = 0; k < q; ++k) {
      idx.push_back(static_cast<std::uint64_t>(i) * q + k);  // in block 0
      val.push_back(1.0);
    }
    out.emplace_back(dim, std::move(idx), std::move(val));
  }
  return out;
}

DenseVector SumDense(const std::vector<DenseVector>& inputs) {
  DenseVector sum(inputs[0].size(), 0.0);
  for (const auto& v : inputs) linalg::Axpy(1.0, v, sum);
  return sum;
}

// ------------------------------------------------------------ GroupComm ----

TEST(GroupComm, RankMappingAndBlocks) {
  Fixture f(4);
  EXPECT_EQ(f.group.size(), 4u);
  EXPECT_EQ(f.group.GlobalRank(2), 2u);
  EXPECT_EQ(f.group.LocalRank(3), 3u);
  EXPECT_FALSE(f.group.Contains(99));
  const auto [lo, hi] = f.group.BlockRange(10, 1);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 5u);
}

TEST(GroupComm, RejectsDuplicatesAndStrangers) {
  Fixture f(4);
  EXPECT_THROW(GroupComm(&f.topo, &f.cost, {0, 0}), InvalidArgument);
  EXPECT_THROW(GroupComm(&f.topo, &f.cost, {9}), InvalidArgument);
  EXPECT_THROW(f.group.LocalRank(7), InvalidArgument);
}

TEST(GroupComm, SubsetGroupUsesGlobalRanks) {
  const Topology topo(4, 2);
  const simnet::CostModel cost;
  const GroupComm g(&topo, &cost, {1, 6, 0});
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.GlobalRank(1), 6u);
  EXPECT_EQ(g.LinkBetween(0, 2), Link::kIntraNode);  // ranks 1 and 0: node 0
  EXPECT_EQ(g.LinkBetween(0, 1), Link::kInterNode);  // ranks 1 and 6
}

// --------------------------------------------------- correctness (all) ----

class AllreduceCorrectness
    : public ::testing::TestWithParam<std::tuple<AllreduceKind, int>> {};

TEST_P(AllreduceCorrectness, DenseOutputsEqualSum) {
  const auto [kind, n] = GetParam();
  Fixture f(static_cast<std::uint32_t>(n));
  const auto alg = MakeAllreduce(kind);

  Rng rng(static_cast<std::uint64_t>(n) * 7 + 1);
  std::vector<DenseVector> inputs(n);
  for (auto& v : inputs) {
    v.resize(23);
    for (auto& e : v) e = rng.NextGaussian();
  }
  const auto expected = SumDense(inputs);

  const auto res = alg->RunDense(f.group, inputs, ZeroStarts(n));
  ASSERT_EQ(res.outputs.size(), static_cast<std::size_t>(n));
  for (const auto& out : res.outputs) {
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_NEAR(out[i], expected[i], 1e-12);
    }
  }
  for (auto ft : res.stats.finish_times) EXPECT_GE(ft, 0.0);
  EXPECT_GE(res.stats.all_done, res.stats.scatter_reduce_done);
}

TEST_P(AllreduceCorrectness, SparseOutputsEqualSum) {
  const auto [kind, n] = GetParam();
  Fixture f(static_cast<std::uint32_t>(n));
  const auto alg = MakeAllreduce(kind);

  Rng rng(static_cast<std::uint64_t>(n) * 13 + 2);
  const std::uint64_t dim = 40;
  std::vector<SparseVector> inputs;
  DenseVector expected(dim, 0.0);
  for (int i = 0; i < n; ++i) {
    DenseVector d(dim, 0.0);
    for (auto& e : d) {
      if (rng.NextBool(0.3)) e = rng.NextGaussian();
    }
    linalg::Axpy(1.0, d, expected);
    inputs.push_back(SparseVector::FromDense(d));
  }

  const auto res = alg->RunSparse(f.group, inputs, ZeroStarts(n));
  for (const auto& out : res.outputs) {
    const auto dense = out.ToDense();
    ASSERT_EQ(dense.size(), dim);
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(dense[i], expected[i], 1e-12);
    }
  }
}

TEST_P(AllreduceCorrectness, RespectsStartTimes) {
  const auto [kind, n] = GetParam();
  Fixture f(static_cast<std::uint32_t>(n));
  const auto alg = MakeAllreduce(kind);
  std::vector<DenseVector> inputs(n, DenseVector(8, 1.0));
  std::vector<VirtualTime> starts(n, 0.0);
  starts[0] = 100.0;  // one late worker delays everyone's completion
  const auto res = alg->RunDense(f.group, inputs, starts);
  if (n > 1) {
    EXPECT_GE(res.stats.all_done, 100.0);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(res.stats.finish_times[i], starts[i]);
  }
}

// The in-place Reduce* entry points must reproduce Run*'s sum and stats
// bitwise, including when the scratch and output buffers are reused across
// calls (the engine's steady-state pattern).
TEST_P(AllreduceCorrectness, ReduceDenseMatchesRunDense) {
  const auto [kind, n] = GetParam();
  Fixture f(static_cast<std::uint32_t>(n));
  const auto alg = MakeAllreduce(kind);

  Rng rng(static_cast<std::uint64_t>(n) * 19 + 3);
  std::vector<DenseVector> inputs(n);
  for (auto& v : inputs) {
    v.resize(23);
    for (auto& e : v) e = rng.NextGaussian();
  }
  const auto starts = ZeroStarts(n);
  const auto res = alg->RunDense(f.group, inputs, starts);

  AllreduceScratch scratch;
  DenseVector sum;
  CommStats stats;
  for (int pass = 0; pass < 2; ++pass) {  // second pass reuses warm buffers
    alg->ReduceDense(f.group, inputs, starts, scratch, sum, stats);
    EXPECT_EQ(sum, res.outputs[0]);
    EXPECT_EQ(stats, res.stats);
  }
}

TEST_P(AllreduceCorrectness, ReduceSparseMatchesRunSparse) {
  const auto [kind, n] = GetParam();
  Fixture f(static_cast<std::uint32_t>(n));
  const auto alg = MakeAllreduce(kind);

  Rng rng(static_cast<std::uint64_t>(n) * 23 + 5);
  const std::uint64_t dim = 40;
  std::vector<SparseVector> inputs;
  for (int i = 0; i < n; ++i) {
    DenseVector d(dim, 0.0);
    for (auto& e : d) {
      if (rng.NextBool(0.3)) e = rng.NextGaussian();
    }
    inputs.push_back(SparseVector::FromDense(d));
  }
  const auto starts = ZeroStarts(n);
  const auto res = alg->RunSparse(f.group, inputs, starts);

  AllreduceScratch scratch;
  SparseVector sum;
  CommStats stats;
  for (int pass = 0; pass < 2; ++pass) {
    alg->ReduceSparse(f.group, inputs, starts, scratch, sum, stats);
    EXPECT_EQ(sum, res.outputs[0]);
    EXPECT_EQ(stats, res.stats);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, AllreduceCorrectness,
    ::testing::Combine(::testing::Values(AllreduceKind::kNaive,
                                         AllreduceKind::kRing,
                                         AllreduceKind::kPsr,
                                         AllreduceKind::kRhd,
                                         AllreduceKind::kTree),
                       ::testing::Values(1, 2, 3, 5, 8, 16)));

// ------------------------------------------------ paper cost analysis ----

// theta_s == 1, latency == 0 in the fixture, so spans are exact element
// counts. q nonzeros per worker-block; c per worker as noted.

TEST(CostAnalysis, UniformLayoutBothAlgorithmsHitBestCase) {
  // c = N*q per worker; best case T = 2 c theta (N-1)/N = 2 q (N-1).
  const std::uint32_t n = 4, q = 5;
  Fixture f(n);
  const auto inputs = UniformLayout(n, 16, q);
  const double best = 2.0 * q * (n - 1);

  const auto ring = RingAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  const auto psr = PsrAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  EXPECT_NEAR(ring.stats.all_done, best, 1e-9);
  EXPECT_NEAR(psr.stats.all_done, best, 1e-9);
}

TEST(CostAnalysis, OwnBlockLayoutGivesPsrZeroScatterCost) {
  // Paper eq. 14 best case: every worker's nonzeros are in its own block.
  const std::uint32_t n = 4, q = 6;
  Fixture f(n);
  const auto inputs = OwnBlockLayout(n, 8, q);
  const auto psr = PsrAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  EXPECT_NEAR(psr.stats.scatter_reduce_done, 0.0, 1e-12);
  // Allgather: every owner serializes its q-element block to n-1 peers.
  EXPECT_NEAR(psr.stats.all_done, static_cast<double>(q) * (n - 1), 1e-9);
}

TEST(CostAnalysis, HotBlockLayoutMatchesPaperWorstCaseBound) {
  // Overlapping concentration: c = q. Paper eq. 16 upper bound: c*N*theta.
  const std::uint32_t n = 5, q = 8;
  Fixture f(n);
  const auto inputs = HotBlockLayout(n, 16, q);

  const auto psr = PsrAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  EXPECT_NEAR(psr.stats.all_done, static_cast<double>(q) * n, 1e-9);

  const auto ring = RingAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  EXPECT_NEAR(ring.stats.all_done, 2.0 * q * (n - 1), 1e-9);

  // PSR beats Ring whenever N > 2 (paper's conclusion).
  EXPECT_LT(psr.stats.all_done, ring.stats.all_done);
}

TEST(CostAnalysis, DisjointBlockLayoutIsRingsWorstCase) {
  // Disjoint concentration: partial sums grow as they circulate.
  // Ring scatter-reduce: q * N(N-1)/2; allgather: q * N(N-1).
  // Total: 1.5 * q * N * (N-1)  — paper eq. 13's upper bound with c = q.
  const std::uint32_t n = 4, q = 3;
  Fixture f(n);
  const auto inputs = DisjointBlockLayout(n, static_cast<std::uint64_t>(q) * n,
                                          q);

  const auto ring = RingAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  EXPECT_NEAR(ring.stats.all_done, 1.5 * q * n * (n - 1), 1e-9);

  const auto psr = PsrAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  // PSR: scatter q (parallel direct sends), allgather (n-1)*n*q serialized.
  EXPECT_NEAR(psr.stats.all_done, q + static_cast<double>(n) * (n - 1) * q,
              1e-9);
  EXPECT_LT(psr.stats.all_done, ring.stats.all_done);
}

TEST(CostAnalysis, DensePsrAndRingAreEquivalent) {
  // With dense payloads every block is d/N values; the paper's advantage is
  // sparse-only. Both algorithms: span = 2 (N-1) * (d/N) * theta_d.
  const std::uint32_t n = 4;
  Fixture f(n);
  const std::size_t dim = 32;
  std::vector<DenseVector> inputs(n, DenseVector(dim, 1.0));
  const double theta_d = 0.5;  // 8 bytes / 16 B/s
  const double expect = 2.0 * (n - 1) * (dim / n) * theta_d;

  const auto ring = RingAllreduce().RunDense(f.group, inputs, ZeroStarts(n));
  const auto psr = PsrAllreduce().RunDense(f.group, inputs, ZeroStarts(n));
  EXPECT_NEAR(ring.stats.all_done, expect, 1e-9);
  EXPECT_NEAR(psr.stats.all_done, expect, 1e-9);
}

/// Property sweep: for random sparse inputs with exactly c nonzeros per
/// worker, both algorithms respect the paper's bound structure and PSR never
/// loses to Ring by more than rounding.
class CostBoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(CostBoundsProperty, PaperBoundsHold) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 31);
  const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.NextBelow(7));
  const std::uint64_t dim = n * (8 + rng.NextBelow(8));
  const std::size_t c = 4 + static_cast<std::size_t>(rng.NextBelow(12));
  Fixture f(n);

  std::vector<SparseVector> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto picks = rng.SampleWithoutReplacement(dim, c);
    std::vector<SparseVector::Index> idx(picks.begin(), picks.end());
    std::vector<double> val(c, 1.0);
    inputs.emplace_back(dim, std::move(idx), std::move(val));
  }

  const auto ring = RingAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));
  const auto psr = PsrAllreduce().RunSparse(f.group, inputs, ZeroStarts(n));

  const double cd = static_cast<double>(c);
  // eq. 13: 2c(N-1)/N <= T_ring <= 1.5cN(N-1)
  EXPECT_GE(ring.stats.all_done, 2.0 * cd * (n - 1) / n - 1e-9);
  EXPECT_LE(ring.stats.all_done, 1.5 * cd * n * (n - 1) + 1e-9);
  // eq. 16 lower bound also applies to PSR, and PSR always stays within
  // Ring's worst-case envelope (the paper's headline comparison).
  EXPECT_GE(psr.stats.all_done, 2.0 * cd * (n - 1) / n - 1e-9);
  EXPECT_LE(psr.stats.all_done, 1.5 * cd * n * (n - 1) + 1e-9);

  // Both moved every element at least once.
  EXPECT_GT(ring.stats.elements_sent, 0u);
  EXPECT_GT(psr.stats.elements_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostBoundsProperty, ::testing::Range(0, 20));

TEST(CostAnalysis, NaiveSerializesThroughRoot) {
  const std::uint32_t n = 4;
  Fixture f(n);
  std::vector<DenseVector> inputs(n, DenseVector(10, 1.0));
  const auto res = NaiveAllreduce().RunDense(f.group, inputs, ZeroStarts(n));
  const double theta_d = 0.5;
  // Gather: parallel 10-elem sends (5 s). Broadcast: 3 serialized sends.
  EXPECT_NEAR(res.stats.scatter_reduce_done, 10 * theta_d, 1e-9);
  EXPECT_NEAR(res.stats.all_done, 10 * theta_d + 3 * 10 * theta_d, 1e-9);
}

TEST(CostAnalysis, SingleMemberIsFree) {
  Fixture f(1);
  std::vector<DenseVector> inputs(1, DenseVector(10, 2.0));
  for (auto kind : {AllreduceKind::kNaive, AllreduceKind::kRing,
                    AllreduceKind::kPsr}) {
    const auto res = MakeAllreduce(kind)->RunDense(f.group, inputs, {{5.0}});
    EXPECT_DOUBLE_EQ(res.stats.all_done, 5.0) << MakeAllreduce(kind)->Name();
    EXPECT_EQ(res.stats.elements_sent, 0u);
    EXPECT_EQ(res.outputs[0], inputs[0]);
  }
}

/// Property: with randomized start times every algorithm still produces the
/// correct sum, nobody finishes before their own start, and completion is
/// gated by the latest participant.
class RandomStartProperty
    : public ::testing::TestWithParam<std::tuple<AllreduceKind, int>> {};

TEST_P(RandomStartProperty, CorrectAndCausal) {
  const auto [kind, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 501);
  const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.NextBelow(9));
  Fixture f(n);
  const auto alg = MakeAllreduce(kind);

  const std::uint64_t dim = 30;
  std::vector<DenseVector> inputs(n);
  std::vector<VirtualTime> starts(n);
  DenseVector expected(dim, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    inputs[i].resize(dim);
    for (auto& e : inputs[i]) e = rng.NextGaussian();
    linalg::Axpy(1.0, inputs[i], expected);
    starts[i] = rng.NextDouble(0.0, 50.0);
  }

  const auto res = alg->RunDense(f.group, inputs, starts);
  const double max_start = *std::max_element(starts.begin(), starts.end());
  EXPECT_GE(res.stats.all_done, max_start);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_GE(res.stats.finish_times[i], starts[i]);
    for (std::size_t k = 0; k < dim; ++k) {
      EXPECT_NEAR(res.outputs[i][k], expected[k], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, RandomStartProperty,
    ::testing::Combine(::testing::Values(AllreduceKind::kNaive,
                                         AllreduceKind::kRing,
                                         AllreduceKind::kPsr,
                                         AllreduceKind::kRhd,
                                         AllreduceKind::kTree),
                       ::testing::Range(0, 6)));

TEST(ExtraCollectives, MessageCountsMatchTheory) {
  // Dense, power-of-two group: RHD sends 2*log2(N) messages per rank; Tree
  // sends N-1 up and N-1 down in total.
  const std::uint32_t n = 8;
  Fixture f(n);
  std::vector<DenseVector> inputs(n, DenseVector(64, 1.0));
  const auto starts = ZeroStarts(n);

  const auto rhd = RhdAllreduce().RunDense(f.group, inputs, starts);
  EXPECT_EQ(rhd.stats.messages_sent, n * 2 * 3);  // 2 log2(8) per rank

  const auto tree = TreeAllreduce().RunDense(f.group, inputs, starts);
  EXPECT_EQ(tree.stats.messages_sent, 2 * (n - 1));
}

TEST(ExtraCollectives, RhdFinishesBeforeTree) {
  // Total elements moved are equal (2d(N-1)/N per rank vs (N-1) full-vector
  // hops overall), but RHD's exchanged blocks halve every round while Tree
  // ships the full vector along a serial log-depth chain — its critical
  // path is strictly longer.
  const std::uint32_t n = 8;
  Fixture f(n);
  std::vector<DenseVector> inputs(n, DenseVector(64, 1.0));
  const auto starts = ZeroStarts(n);
  const auto rhd = RhdAllreduce().RunDense(f.group, inputs, starts);
  const auto tree = TreeAllreduce().RunDense(f.group, inputs, starts);
  EXPECT_EQ(rhd.stats.elements_sent, tree.stats.elements_sent);
  EXPECT_LT(rhd.stats.all_done, tree.stats.all_done);
}

TEST(Collective, InputValidation) {
  Fixture f(3);
  const auto alg = MakeAllreduce("ring");
  std::vector<DenseVector> two(2, DenseVector(4, 1.0));
  EXPECT_THROW(alg->RunDense(f.group, two, ZeroStarts(3)), InvalidArgument);
  std::vector<DenseVector> ragged{DenseVector(4, 1.0), DenseVector(5, 1.0),
                                  DenseVector(4, 1.0)};
  EXPECT_THROW(alg->RunDense(f.group, ragged, ZeroStarts(3)), InvalidArgument);
  EXPECT_THROW(MakeAllreduce("bogus"), InvalidArgument);
}

// ------------------------------------------------------------ intranode ----

TEST(IntraNode, ReduceToLeaderSumsAndTimes) {
  const Topology topo(1, 4);
  simnet::CostModelConfig cfg = Fixture::MakeConfig();
  const simnet::CostModel cost(cfg);
  const GroupComm g(&topo, &cost, {0, 1, 2, 3});

  std::vector<DenseVector> inputs(4, DenseVector(16, 1.0));
  const auto res = ReduceToLeader(g, 0, inputs, ZeroStarts(4));
  EXPECT_EQ(res.value, DenseVector(16, 4.0));
  // Bus theta_d = 8/160 = 0.05; three parallel 16-element sends.
  EXPECT_NEAR(res.leader_ready, 16 * 0.05, 1e-9);
  EXPECT_EQ(res.messages_sent, 3u);
}

TEST(IntraNode, BroadcastSerializesFromLeader) {
  const Topology topo(1, 3);
  const simnet::CostModel cost(Fixture::MakeConfig());
  const GroupComm g(&topo, &cost, {0, 1, 2});
  const auto res = BroadcastFromLeader(g, 0, 16, 10.0);
  const double t = 16 * 0.05;
  EXPECT_NEAR(res.finish_times[1], 10.0 + t, 1e-9);
  EXPECT_NEAR(res.finish_times[2], 10.0 + 2 * t, 1e-9);
  EXPECT_NEAR(res.finish_times[0], 10.0 + 2 * t, 1e-9);
}

TEST(IntraNode, LeaderStartGatesReduce) {
  const Topology topo(1, 2);
  const simnet::CostModel cost(Fixture::MakeConfig());
  const GroupComm g(&topo, &cost, {0, 1});
  std::vector<DenseVector> inputs(2, DenseVector(4, 1.0));
  std::vector<VirtualTime> starts{50.0, 0.0};
  const auto res = ReduceToLeader(g, 0, inputs, starts);
  EXPECT_GE(res.leader_ready, 50.0);
}

// ------------------------------------------------ fault-tolerant reduce ----

std::vector<DenseVector> RampInputs(std::size_t n, std::size_t dim) {
  std::vector<DenseVector> inputs(n, DenseVector(dim, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < dim; ++k) {
      inputs[i][k] = static_cast<double>(i + 1) + 0.25 * static_cast<double>(k);
    }
  }
  return inputs;
}

TEST(FaultyReduce, NullOrEmptyPlanIsExactlyThePlainPath) {
  const Fixture f(4);
  const auto alg = MakeAllreduce(AllreduceKind::kPsr);
  const auto inputs = RampInputs(4, 6);
  const auto starts = ZeroStarts(4);

  AllreduceScratch scratch;
  DenseVector plain_sum;
  CommStats plain_stats;
  alg->ReduceDense(f.group, inputs, starts, scratch, plain_sum, plain_stats);

  FaultContext fc;  // null plan
  DenseVector sum;
  CommStats stats;
  alg->ReduceDenseFaulty(f.group, inputs, starts, fc, scratch, sum, stats);
  EXPECT_EQ(sum, plain_sum);
  EXPECT_EQ(stats, plain_stats);
  EXPECT_TRUE(fc.excluded.empty());
  EXPECT_EQ(fc.dropped_messages, 0u);

  const simnet::FaultPlan empty_plan;  // empty plan behaves the same
  fc.plan = &empty_plan;
  alg->ReduceDenseFaulty(f.group, inputs, starts, fc, scratch, sum, stats);
  EXPECT_EQ(sum, plain_sum);
  EXPECT_EQ(stats, plain_stats);
}

TEST(FaultyReduce, ResolvedDropsKeepTheSumAndDelayTheFinish) {
  const Fixture f(4);
  const auto alg = MakeAllreduce(AllreduceKind::kPsr);
  const auto inputs = RampInputs(4, 6);
  const auto starts = ZeroStarts(4);

  AllreduceScratch scratch;
  DenseVector plain_sum;
  CommStats plain_stats;
  alg->ReduceDense(f.group, inputs, starts, scratch, plain_sum, plain_stats);

  simnet::FaultConfig cfg;
  cfg.message_drop_probability = 0.4;
  cfg.max_retries = 32;  // effectively always resolves
  cfg.retry_timeout_s = 1.0;
  const simnet::FaultPlan plan(cfg);
  FaultContext fc;
  fc.plan = &plan;
  fc.iteration = 1;

  // Scan iterations until one actually draws a drop on channel 0.
  DenseVector sum;
  CommStats stats;
  bool saw_drop = false;
  for (std::uint64_t it = 1; it <= 32 && !saw_drop; ++it) {
    fc.iteration = it;
    fc.channel = 0;
    const std::size_t before = fc.dropped_messages;
    alg->ReduceDenseFaulty(f.group, inputs, starts, fc, scratch, sum, stats);
    ASSERT_TRUE(fc.excluded.empty());
    EXPECT_EQ(sum, plain_sum);  // retries leave the arithmetic untouched
    if (fc.dropped_messages > before) {
      saw_drop = true;
      // Every member observed at least one full retry timeout.
      for (GroupRank g = 0; g < f.group.size(); ++g) {
        EXPECT_GE(stats.finish_times[g],
                  plain_stats.finish_times[g] + cfg.retry_timeout_s);
      }
      EXPECT_GT(fc.retries, 0u);
    }
  }
  EXPECT_TRUE(saw_drop) << "p=0.4 never dropped in 32 iterations";
}

TEST(FaultyReduce, ExhaustedRetriesDegradeToSurvivors) {
  const Fixture f(4);
  const auto alg = MakeAllreduce(AllreduceKind::kPsr);
  const auto inputs = RampInputs(4, 6);
  const auto starts = ZeroStarts(4);

  simnet::FaultConfig cfg;
  cfg.message_drop_probability = 0.6;
  cfg.max_retries = 0;  // first drop is final: degrade immediately
  cfg.retry_timeout_s = 1.0;
  const simnet::FaultPlan plan(cfg);
  FaultContext fc;
  fc.plan = &plan;

  AllreduceScratch scratch;
  DenseVector sum;
  CommStats stats;
  bool saw_exclusion = false;
  for (std::uint64_t it = 1; it <= 32 && !saw_exclusion; ++it) {
    fc.iteration = it;
    fc.channel = 0;
    alg->ReduceDenseFaulty(f.group, inputs, starts, fc, scratch, sum, stats);
    if (fc.excluded.empty() || fc.excluded.size() >= f.group.size()) continue;
    saw_exclusion = true;

    // The sum covers exactly the survivors.
    DenseVector expect(inputs[0].size(), 0.0);
    std::size_t next_ex = 0;
    for (GroupRank g = 0; g < f.group.size(); ++g) {
      if (next_ex < fc.excluded.size() && fc.excluded[next_ex] == g) {
        ++next_ex;
        // Excluded members finish at their timeout-adjusted start, and the
        // collective still reports a finish time for them.
        EXPECT_GE(stats.finish_times[g], cfg.retry_timeout_s);
        continue;
      }
      for (std::size_t k = 0; k < expect.size(); ++k) {
        expect[k] += inputs[g][k];
      }
    }
    ASSERT_EQ(sum.size(), expect.size());
    for (std::size_t k = 0; k < expect.size(); ++k) {
      EXPECT_DOUBLE_EQ(sum[k], expect[k]) << "component " << k;
    }
    EXPECT_EQ(stats.finish_times.size(), f.group.size());
  }
  EXPECT_TRUE(saw_exclusion) << "p=0.6 with no retries never excluded anyone";
}

TEST(FaultyReduce, SparseAndDenseFaultyPathsAgree) {
  const Fixture f(4);
  const auto alg = MakeAllreduce(AllreduceKind::kPsr);
  const auto dense_inputs = RampInputs(4, 6);
  std::vector<SparseVector> sparse_inputs(4);
  for (std::size_t i = 0; i < 4; ++i) {
    sparse_inputs[i].AssignFromDense(dense_inputs[i]);
  }
  const auto starts = ZeroStarts(4);

  simnet::FaultConfig cfg;
  cfg.message_drop_probability = 0.5;
  cfg.max_retries = 1;
  const simnet::FaultPlan plan(cfg);

  AllreduceScratch scratch;
  for (std::uint64_t it = 1; it <= 8; ++it) {
    FaultContext fd;
    fd.plan = &plan;
    fd.iteration = it;
    DenseVector dsum;
    CommStats dstats;
    alg->ReduceDenseFaulty(f.group, dense_inputs, starts, fd, scratch, dsum,
                           dstats);

    FaultContext fs;
    fs.plan = &plan;
    fs.iteration = it;
    SparseVector ssum;
    CommStats sstats;
    alg->ReduceSparseFaulty(f.group, sparse_inputs, starts, fs, scratch, ssum,
                            sstats);

    // Identical fault draws -> identical exclusions and identical sums.
    EXPECT_EQ(fd.excluded, fs.excluded) << "iteration " << it;
    DenseVector ssum_dense;
    ssum.ToDense(ssum_dense);
    ASSERT_EQ(ssum_dense.size(), dsum.size());
    for (std::size_t k = 0; k < dsum.size(); ++k) {
      EXPECT_DOUBLE_EQ(ssum_dense[k], dsum[k]) << "component " << k;
    }
  }
}

// ------------------------------------------------ multi-level allreduce ----

/// One worker per node, `racks` racks. Integer-valued inputs make every
/// summation order produce the identical double, so the recursive sum can
/// be compared bitwise against a flat collective.
struct RackFixture {
  RackFixture(std::uint32_t nodes, std::uint32_t racks)
      : topo(nodes, 1, racks),
        cost(Fixture::MakeConfig()),
        members(MakeMembers(nodes)),
        ml(&topo, &cost, members) {}

  static std::vector<Rank> MakeMembers(std::uint32_t n) {
    std::vector<Rank> m(n);
    for (std::uint32_t i = 0; i < n; ++i) m[i] = i;
    return m;
  }

  std::vector<DenseVector> IntegerInputs(std::size_t dim) const {
    std::vector<DenseVector> inputs(members.size());
    Rng rng(41);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i].resize(dim);
      for (auto& e : inputs[i]) {
        e = static_cast<double>(rng.NextBelow(64)) - 31.0;
      }
    }
    return inputs;
  }

  Topology topo;
  simnet::CostModel cost;
  std::vector<Rank> members;
  MultiLevelAllreduce ml;
};

TEST(MultiLevel, DenseSumMatchesFlatCollective) {
  RackFixture f(8, 2);
  const auto inputs = f.IntegerInputs(24);
  const auto starts = ZeroStarts(8);
  const GroupComm flat(&f.topo, &f.cost, f.members);

  for (const auto kind : {AllreduceKind::kPsr, AllreduceKind::kRing}) {
    const auto alg = MakeAllreduce(kind);
    AllreduceScratch scratch;
    DenseVector want, sum;
    CommStats want_stats, stats;
    alg->ReduceDense(flat, inputs, starts, scratch, want, want_stats);
    for (int pass = 0; pass < 2; ++pass) {  // second pass reuses warm buffers
      f.ml.ReduceDense(*alg, inputs, starts, scratch, sum, stats);
      EXPECT_EQ(sum, want) << alg->Name();
      ASSERT_EQ(stats.finish_times.size(), 8u);
      for (const VirtualTime t : stats.finish_times) {
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, stats.all_done);
      }
    }
  }
}

TEST(MultiLevel, SparseSumMatchesFlatCollective) {
  RackFixture f(8, 4);
  const auto starts = ZeroStarts(8);
  std::vector<SparseVector> inputs;
  Rng rng(17);
  for (int i = 0; i < 8; ++i) {
    DenseVector d(40, 0.0);
    for (auto& e : d) {
      if (rng.NextBool(0.3)) e = static_cast<double>(rng.NextBelow(32)) - 15.0;
    }
    inputs.push_back(SparseVector::FromDense(d));
  }
  const GroupComm flat(&f.topo, &f.cost, f.members);

  for (const auto kind : {AllreduceKind::kPsr, AllreduceKind::kRing}) {
    const auto alg = MakeAllreduce(kind);
    AllreduceScratch scratch;
    SparseVector want, sum;
    CommStats want_stats, stats;
    alg->ReduceSparse(flat, inputs, starts, scratch, want, want_stats);
    f.ml.ReduceSparse(*alg, inputs, starts, scratch, sum, stats);
    EXPECT_EQ(sum, want) << alg->Name();
  }
}

TEST(MultiLevel, RedistributionAccountsLeaderToPeerTraffic) {
  // 8 members in 2 racks: each rack leader re-broadcasts the global sum to
  // its 3 rack peers, so stage 3 ships 2 * 3 * dim elements in 2 * 3
  // messages — and is reported separately from the collective stats.
  RackFixture f(8, 2);
  const auto inputs = f.IntegerInputs(10);
  const auto starts = ZeroStarts(8);
  const auto alg = MakeAllreduce(AllreduceKind::kPsr);
  AllreduceScratch scratch;
  DenseVector sum;
  CommStats stats;
  f.ml.ReduceDense(*alg, inputs, starts, scratch, sum, stats);
  EXPECT_EQ(f.ml.redistribution_elements(), 2u * 3u * 10u);
  EXPECT_EQ(f.ml.redistribution_messages(), 2u * 3u);
  EXPECT_GT(stats.elements_sent, 0u);
}

TEST(MultiLevel, LateRackDelaysOnlyThatRacksStage) {
  // Rack 0 members start late; rack 1's stage-1 collective must finish on
  // its own clock (the recursion composes per-rack start times, it does not
  // impose a global barrier before stage 1).
  RackFixture f(4, 2);
  const auto inputs = f.IntegerInputs(6);
  std::vector<VirtualTime> starts = {5.0, 5.0, 0.0, 0.0};
  const auto alg = MakeAllreduce(AllreduceKind::kPsr);
  AllreduceScratch scratch;
  DenseVector sum;
  CommStats stats;
  f.ml.ReduceDense(*alg, inputs, starts, scratch, sum, stats);
  EXPECT_GE(stats.all_done, 5.0);  // gated by the late rack
  // Every member still ends at or after the late rack's sum arrives.
  for (const VirtualTime t : stats.finish_times) EXPECT_GE(t, 5.0);
}

TEST(MultiLevel, RejectsBadMembership) {
  const Topology topo(4, 1, 2);
  const simnet::CostModel cost;
  const std::vector<Rank> short_members = {0, 1, 2};
  EXPECT_THROW(MultiLevelAllreduce(&topo, &cost, short_members),
               InvalidArgument);
  const std::vector<Rank> shuffled = {0, 2, 1, 3};  // crosses rack boundary
  EXPECT_THROW(MultiLevelAllreduce(&topo, &cost, shuffled), InvalidArgument);
}

}  // namespace
}  // namespace psra::comm
