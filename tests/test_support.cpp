// Unit tests for the support library: rng, strings, config, cli, table.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/stopwatch.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace psra {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-3.5, 2.5);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, NextBelowCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.NextBelow(0), InvalidArgument);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= (v == -2);
    hit_hi |= (v == 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  Rng rng(17);
  const auto s = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  for (auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(17);
  const auto s = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(17);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), InvalidArgument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(5);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng b1(5), b2(5);
  Rng a = b1.Fork(7);
  Rng b = b2.Fork(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// ------------------------------------------------------------- strings ----

TEST(StringUtil, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(Trim("  abc \t"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtil, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e-3 "), -1e-3);
  EXPECT_THROW(ParseDouble("abc"), InvalidArgument);
  EXPECT_THROW(ParseDouble("1.5x"), InvalidArgument);
  EXPECT_THROW(ParseDouble(""), InvalidArgument);
}

TEST(StringUtil, ParseIntStrict) {
  EXPECT_EQ(ParseInt("-42"), -42);
  EXPECT_THROW(ParseInt("4.2"), InvalidArgument);
  EXPECT_THROW(ParseInt(""), InvalidArgument);
}

TEST(StringUtil, Formatters) {
  EXPECT_EQ(FormatBytes(1536.0), "1.50 KiB");
  EXPECT_EQ(FormatDuration(0.002), "2.00 ms");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

// -------------------------------------------------------------- config ----

TEST(Config, ParsesKeyValuesAndComments) {
  const auto cfg = Config::FromString(
      "a = 1\n# comment\nb = hello world \n\nc=2.5 # trailing\n");
  EXPECT_EQ(cfg.GetInt("a"), 1);
  EXPECT_EQ(cfg.GetString("b"), "hello world");
  EXPECT_DOUBLE_EQ(cfg.GetDouble("c"), 2.5);
}

TEST(Config, MissingKeyThrowsButFallbackWorks) {
  const Config cfg;
  EXPECT_THROW(cfg.GetString("x"), InvalidArgument);
  EXPECT_EQ(cfg.GetInt("x", 7), 7);
  EXPECT_TRUE(cfg.GetBool("x", true));
}

TEST(Config, BooleanParsing) {
  auto cfg = Config::FromString("t = TRUE\nf = 0\nbad = maybe\n");
  EXPECT_TRUE(cfg.GetBool("t"));
  EXPECT_FALSE(cfg.GetBool("f"));
  EXPECT_THROW(cfg.GetBool("bad"), InvalidArgument);
}

TEST(Config, RoundTripThroughToString) {
  Config cfg;
  cfg.Set("alpha", std::int64_t{3});
  cfg.Set("beta", 0.125);
  cfg.Set("gamma", true);
  const auto parsed = Config::FromString(cfg.ToString());
  EXPECT_EQ(parsed.GetInt("alpha"), 3);
  EXPECT_DOUBLE_EQ(parsed.GetDouble("beta"), 0.125);
  EXPECT_TRUE(parsed.GetBool("gamma"));
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::FromString("no equals sign\n"), InvalidArgument);
}

// ----------------------------------------------------------------- cli ----

TEST(Cli, ParsesAllValueForms) {
  CliParser cli("prog", "test");
  std::int64_t n = 1;
  double x = 0.5;
  std::string s = "def";
  bool flag = false;
  cli.AddInt("n", &n, "an int");
  cli.AddDouble("x", &x, "a double");
  cli.AddString("s", &s, "a string");
  cli.AddBool("flag", &flag, "a flag");
  const char* argv[] = {"prog", "--n=3", "--x", "2.5", "--s=hi", "--flag"};
  ASSERT_TRUE(cli.Parse(6, argv));
  EXPECT_EQ(n, 3);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hi");
  EXPECT_TRUE(flag);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.Parse(2, argv), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  std::int64_t n = 0;
  cli.AddInt("n", &n, "int");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.Parse(2, argv), InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(Cli, BoolExplicitFalse) {
  CliParser cli("prog", "test");
  bool flag = true;
  cli.AddBool("flag", &flag, "a flag");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(cli.Parse(2, argv));
  EXPECT_FALSE(flag);
}

// ----------------------------------------------------------------- log ----

TEST(Log, LevelGateControlsEmission) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging must be a no-op (and must not crash).
  PSRA_LOG_DEBUG << "suppressed " << 42;
  PSRA_LOG_INFO << "suppressed";
  SetLogLevel(LogLevel::kOff);
  PSRA_LOG_ERROR << "also suppressed";
  SetLogLevel(prev);
}

TEST(Log, StructuredLineCarriesComponentAndVirtualTime) {
  const LogLevel prev = GetLogLevel();
  std::ostringstream captured;
  SetLogSink(&captured);
  SetLogLevel(LogLevel::kInfo);

  PSRA_SLOG(kInfo, "wlg").At(0.001234) << "regrouped " << 3 << " nodes";
  PSRA_SLOG(kWarn, "fault") << "no timestamp on this one";
  PSRA_LOG_INFO << "plain line";
  PSRA_SLOG(kDebug, "wlg") << "below threshold, suppressed";

  SetLogSink(nullptr);
  SetLogLevel(prev);

  const std::string out = captured.str();
  EXPECT_NE(out.find("[psra INFO  wlg @0.001234s] regrouped 3 nodes"),
            std::string::npos);
  EXPECT_NE(out.find("[psra WARN  fault] no timestamp on this one"),
            std::string::npos);
  EXPECT_NE(out.find("[psra INFO ] plain line"), std::string::npos);
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
}

// ------------------------------------------------------------ stopwatch ----

TEST(Stopwatch, MeasuresNonNegativeMonotoneTime) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  // Busy-wait a hair so the second reading cannot precede the first.
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(b, a);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), b + 1.0);
}

// --------------------------------------------------------------- table ----

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1.5"});
  t.AddRow({"b", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), InvalidArgument);
}

}  // namespace
}  // namespace psra
