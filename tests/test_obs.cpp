// Observability subsystem tests: histogram bucketing, deterministic metrics
// JSON, span bookkeeping and Chrome-trace export, plus the engine-level
// contracts — traced runs cover each worker's virtual makespan, metrics are
// identical for any host pool size, and attaching an ObsContext leaves the
// run's numerical results bitwise untouched.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "admm/registry.hpp"
#include "engine/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "support/status.hpp"

namespace psra {
namespace {

using admm::BuildProblem;
using admm::ConsensusProblem;
using admm::GroupingMode;
using admm::PsraConfig;
using admm::PsraHgAdmm;
using admm::RunOptions;
using admm::RunResult;

// ------------------------------------------------------------ histogram ----

TEST(Histogram, BucketsObservationsWithOverflow) {
  const double bounds[] = {1.0, 10.0, 100.0};
  obs::Histogram h;
  h.bounds.assign(std::begin(bounds), std::end(bounds));
  h.counts.assign(4, 0);

  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (inclusive upper bound)
  h.Observe(5.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e6);    // overflow

  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(Histogram, MergeAddsBucketwise) {
  obs::MetricsRegistry a, b;
  const double bounds[] = {1.0, 2.0};
  a.Histo("h", bounds).Observe(0.5);
  b.Histo("h", bounds).Observe(1.5);
  b.Histo("h", bounds).Observe(9.0);
  a.MergeFrom(b);
  const auto& h = a.histograms().at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.count, 3u);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  const double coarse[] = {1.0, 2.0};
  const double fine[] = {0.5, 1.0, 2.0};
  obs::MetricsRegistry a, b;
  a.Histo("h", coarse).Observe(0.5);
  b.Histo("h", fine).Observe(0.5);
  // Both the direct histogram merge and the registry-level MergeFrom must
  // refuse: bucket-wise addition across different bounds is meaningless,
  // which is why every wire.* histogram shares WireLatencyBounds().
  EXPECT_THROW(a.Histo("h", coarse).Merge(b.histograms().at("h")),
               InvalidArgument);
  EXPECT_THROW(a.MergeFrom(b), InvalidArgument);
}

TEST(Histogram, MergeAccumulatesSumAndOverflow) {
  const double bounds[] = {1.0};
  obs::MetricsRegistry a, b;
  a.Histo("h", bounds).Observe(0.25);
  b.Histo("h", bounds).Observe(4.0);  // overflow bucket
  b.Histo("h", bounds).Observe(0.75);
  a.MergeFrom(b);
  const auto& h = a.histograms().at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 5.0);
}

// ------------------------------------------------------------- registry ----

TEST(MetricsRegistry, JsonIsDeterministicAcrossInsertionOrder) {
  const double bounds[] = {0.1, 1.0};
  obs::MetricsRegistry a;
  a.Counter("z.last") = 3;
  a.Counter("a.first") = 1;
  a.Gauge("m.mid") = 2.5;
  a.Histo("h.one", bounds).Observe(0.5);

  obs::MetricsRegistry b;
  b.Histo("h.one", bounds).Observe(0.5);
  b.Gauge("m.mid") = 2.5;
  b.Counter("a.first") = 1;
  b.Counter("z.last") = 3;

  std::ostringstream ja, jb;
  a.WriteJson(ja);
  b.WriteJson(jb);
  const std::string text = ja.str();
  EXPECT_EQ(text, jb.str());
  EXPECT_EQ(a, b);

  obs::json::Scanner scanner(text);
  ASSERT_TRUE(scanner.Validate()) << scanner.Error();
}

TEST(MetricsRegistry, MergeSemantics) {
  obs::MetricsRegistry a, b;
  a.Counter("c") = 2;
  b.Counter("c") = 3;
  b.Counter("only_b") = 7;
  a.Gauge("g") = 1.0;
  b.Gauge("g") = 9.0;
  a.MergeFrom(b);
  EXPECT_EQ(a.counters().at("c"), 5u);        // counters add
  EXPECT_EQ(a.counters().at("only_b"), 7u);   // missing keys appear
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 9.0);  // gauges overwrite
}

// --------------------------------------------------------------- tracer ----

TEST(SpanTracer, CoverageIsUnionOfSpans) {
  obs::SpanTracer tr;
  const auto t = tr.AddTrack("worker 0");
  tr.Add(t, "a", 0.0, 0.4, 1);
  tr.Add(t, "b", 0.2, 0.5, 1);  // overlaps a
  tr.Add(t, "c", 0.9, 1.0, 2);
  // Union covers [0, 0.5] + [0.9, 1.0] = 0.6 of a 1.0 horizon.
  EXPECT_NEAR(tr.Coverage(t, 1.0), 0.6, 1e-12);

  // Negative-length spans clamp to zero length rather than corrupting the
  // union computation.
  tr.Add(t, "bad", 0.8, 0.7, 3);
  EXPECT_NEAR(tr.Coverage(t, 1.0), 0.6, 1e-12);
}

TEST(SpanTracer, SpansKeepInsertionOrderAndIterationTags) {
  obs::SpanTracer tr;
  const auto t = tr.AddTrack("worker 0");
  tr.Add(t, "x_update", 0.0, 0.1, 1);
  tr.Add(t, "w_allreduce", 0.1, 0.3, 1);
  tr.Add(t, "x_update", 0.3, 0.4, 2);
  const auto& spans = tr.spans(t);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "x_update");
  EXPECT_STREQ(spans[1].name, "w_allreduce");
  EXPECT_EQ(spans[2].iteration, 2u);
}

// Chrome's trace viewer renders same-track spans by duration containment:
// two spans on one track may nest or be disjoint, never partially overlap.
void ExpectProperNesting(const std::vector<obs::TraceSpan>& spans) {
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const auto& a = spans[i];
      const auto& b = spans[j];
      const bool disjoint =
          a.end <= b.begin + kEps || b.end <= a.begin + kEps;
      const bool a_contains_b =
          a.begin <= b.begin + kEps && b.end <= a.end + kEps;
      const bool b_contains_a =
          b.begin <= a.begin + kEps && a.end <= b.end + kEps;
      EXPECT_TRUE(disjoint || a_contains_b || b_contains_a)
          << a.name << " [" << a.begin << ", " << a.end << ") vs " << b.name
          << " [" << b.begin << ", " << b.end << ")";
    }
  }
}

TEST(SpanTracer, ChromeJsonIsValidAndCarriesTrackMetadata) {
  obs::SpanTracer tr;
  const auto t0 = tr.AddTrack("worker 0");
  tr.AddTrack("group generator");
  tr.Add(t0, "x_update", 0.0, 0.25, 1);

  std::ostringstream os;
  tr.WriteChromeJson(os);
  const std::string text = os.str();

  obs::json::Scanner scanner(text);
  ASSERT_TRUE(scanner.Validate()) << scanner.Error();
  bool has_events = false;
  for (const auto& k : scanner.Keys()) {
    if (k == "traceEvents") has_events = true;
  }
  EXPECT_TRUE(has_events);
  EXPECT_NE(text.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(text.find("\"group generator\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
}

TEST(SpanTracer, PeerAndTagRoundTripThroughChromeJson) {
  obs::SpanTracer tr;
  const auto t = tr.AddTrack("rank 0");
  tr.Add(t, "wire_post", 0.0, 0.0, 1, 0.0, /*peer=*/2, /*tag=*/0x30005u);
  tr.Add(t, "compute", 0.1, 0.2, 1);  // no peer: exporter omits the args

  std::ostringstream os;
  tr.WriteChromeJson(os);
  const obs::TraceData back = obs::LoadChromeTrace(os.str());
  ASSERT_EQ(back.tracks.size(), 1u);
  ASSERT_EQ(back.tracks[0].spans.size(), 2u);
  const auto& post = back.tracks[0].spans[0];
  EXPECT_EQ(post.name, "wire_post");
  EXPECT_EQ(post.peer, 2);
  EXPECT_EQ(post.tag, 0x30005u);
  const auto& compute = back.tracks[0].spans[1];
  EXPECT_EQ(compute.peer, -1);
  EXPECT_EQ(compute.tag, 0u);
}

// ------------------------------------------------------ engine contracts ----

data::SyntheticSpec ObsSpec() {
  data::SyntheticSpec spec;
  spec.name = "obs";
  spec.num_features = 120;
  spec.num_train = 240;
  spec.num_test = 80;
  spec.mean_row_nnz = 10.0;
  spec.label_noise = 0.02;
  spec.seed = 11;
  return spec;
}

PsraConfig ObsCluster(GroupingMode grouping) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = grouping;
  return cfg;
}

RunResult RunWithObs(GroupingMode grouping, obs::ObsContext* obs,
                     engine::ThreadPool* pool = nullptr) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  RunOptions opt;
  opt.max_iterations = 6;
  opt.eval_every = 2;
  opt.obs = obs;
  opt.pool = pool;
  return PsraHgAdmm(ObsCluster(grouping)).Run(problem, opt);
}

class TracedEngine : public ::testing::TestWithParam<GroupingMode> {};

TEST_P(TracedEngine, SpansCoverEachWorkersVirtualMakespan) {
  obs::ObsContext obs;
  const auto res = RunWithObs(GetParam(), &obs);
  ASSERT_GE(obs.tracer.num_tracks(), 8u);

  std::size_t worker_tracks = 0;
  for (obs::TrackId t = 0; t < obs.tracer.num_tracks(); ++t) {
    if (obs.tracer.track_name(t).rfind("worker", 0) != 0) continue;
    ++worker_tracks;
    const auto& spans = obs.tracer.spans(t);
    ASSERT_FALSE(spans.empty()) << obs.tracer.track_name(t);
    simnet::VirtualTime horizon = 0.0;
    for (const auto& s : spans) {
      EXPECT_LE(s.end, res.makespan + 1e-12);
      horizon = std::max(horizon, s.end);
    }
    ExpectProperNesting(spans);
    // The acceptance gate: >= 95% of the worker's own virtual makespan is
    // attributed to a named phase (the bracketing span discipline should
    // make this essentially 100%).
    EXPECT_GE(obs.tracer.Coverage(t, horizon), 0.95)
        << obs.tracer.track_name(t);
  }
  EXPECT_EQ(worker_tracks, 8u);
}

TEST_P(TracedEngine, ChromeExportOfARealRunValidates) {
  obs::ObsContext obs;
  RunWithObs(GetParam(), &obs);
  std::ostringstream os;
  obs.tracer.WriteChromeJson(os);
  const std::string text = os.str();
  obs::json::Scanner scanner(text);
  EXPECT_TRUE(scanner.Validate()) << scanner.Error();
}

TEST_P(TracedEngine, MetricsIdenticalForAnyHostPoolSize) {
  obs::ObsContext serial, pooled;
  const auto a = RunWithObs(GetParam(), &serial);

  engine::ThreadPool pool4(4);
  pool4.ForceParallelDispatchForTesting();
  const auto b = RunWithObs(GetParam(), &pooled, &pool4);

  EXPECT_EQ(serial.metrics, pooled.metrics);
  std::ostringstream ja, jb;
  a.metrics.WriteJson(ja);
  b.metrics.WriteJson(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST_P(TracedEngine, AttachingObsLeavesRunBitwiseIdentical) {
  obs::ObsContext obs;
  const auto with = RunWithObs(GetParam(), &obs);
  const auto without = RunWithObs(GetParam(), nullptr);

  ASSERT_EQ(with.final_z.size(), without.final_z.size());
  EXPECT_EQ(std::memcmp(with.final_z.data(), without.final_z.data(),
                        with.final_z.size() * sizeof(double)),
            0);
  const double a[] = {with.final_objective, with.total_cal_time,
                      with.total_comm_time, with.makespan};
  const double b[] = {without.final_objective, without.total_cal_time,
                      without.total_comm_time, without.makespan};
  EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0);
  EXPECT_EQ(with.elements_sent, without.elements_sent);
  EXPECT_EQ(with.messages_sent, without.messages_sent);
  // The obs-off run carries an empty registry; the obs-on run filled one.
  EXPECT_TRUE(without.metrics.empty());
  EXPECT_FALSE(with.metrics.empty());
}

TEST_P(TracedEngine, MetricsAgreeWithRunResultTotals) {
  obs::ObsContext obs;
  const auto res = RunWithObs(GetParam(), &obs);
  EXPECT_EQ(res.metrics.counters().at("engine.iterations"),
            res.iterations_run);
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("run.makespan_s"), res.makespan);
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("run.cal_time_s"),
                   res.total_cal_time);
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("run.comm_time_s"),
                   res.total_comm_time);
}

INSTANTIATE_TEST_SUITE_P(AllGroupings, TracedEngine,
                         ::testing::Values(GroupingMode::kFlat,
                                           GroupingMode::kHierarchical,
                                           GroupingMode::kDynamicGroups),
                         [](const auto& param_info) {
                           return admm::GroupingModeName(param_info.param);
                         });

// The other engine families publish their own traffic counters.
TEST(EngineMetrics, GadmmChainAndAdmmMasterCountersAppear) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  admm::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.workers_per_node = 2;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 2;

  obs::ObsContext obs_gadmm;
  opt.obs = &obs_gadmm;
  const auto g = admm::RunAlgorithm("gadmm", cluster, problem, opt);
  EXPECT_GT(g.metrics.counters().at("comm.chain.push.messages"), 0u);
  EXPECT_GT(g.metrics.counters().at("comm.chain.push.bytes"), 0u);

  obs::ObsContext obs_ad;
  opt.obs = &obs_ad;
  const auto ad = admm::RunAlgorithm("ad-admm", cluster, problem, opt);
  EXPECT_GT(ad.metrics.counters().at("comm.master.report.messages"), 0u);
  EXPECT_GT(ad.metrics.counters().at("master.z_updates"), 0u);
}

// ADMMLib publishes its SSP-barrier layer and ring traffic, and its spans
// carry host wall time in the Chrome trace args.
TEST(EngineMetrics, AdmmLibSspCountersAndWallClockAppear) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  admm::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.workers_per_node = 2;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 2;

  obs::ObsContext obs;
  opt.obs = &obs;
  const auto res = admm::RunAlgorithm("admmlib", cluster, problem, opt);
  const auto& c = res.metrics.counters();
  EXPECT_GT(c.at("ssp.rounds"), 0u);
  EXPECT_GT(c.at("comm.allreduce.ring.invocations"), 0u);
  EXPECT_GT(c.at("comm.allreduce.ring.bytes"), 0u);
  EXPECT_EQ(c.at("engine.iterations"), res.iterations_run);
  EXPECT_EQ(res.metrics.histograms().count("ssp.participants"), 1u);

  std::ostringstream os;
  obs.tracer.WriteChromeJson(os);
  const std::string text = os.str();
  for (const char* span : {"x_update", "w_allreduce", "z_y_update"}) {
    EXPECT_NE(text.find('"' + std::string(span) + '"'), std::string::npos)
        << span;
  }
  EXPECT_NE(text.find("\"wall_us\""), std::string::npos);
}

// PSR moves fewer bytes than Ring for the same job (paper eq. 11-16): the
// per-collective byte counters must reproduce that ordering. Hierarchical
// grouping (full leader barrier), so the collective spans all 8 nodes —
// dynamic grouping tends to form pairs, and at group size 2 every allreduce
// is the same exchange.
TEST(EngineMetrics, PsrBytesBelowRingBytes) {
  const auto problem = BuildProblem(ObsSpec(), 16);
  PsraConfig cfg;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = GroupingMode::kHierarchical;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 4;

  obs::ObsContext obs_psr;
  opt.obs = &obs_psr;
  cfg.allreduce = comm::AllreduceKind::kPsr;
  PsraHgAdmm(cfg).Run(problem, opt);

  obs::ObsContext obs_ring;
  opt.obs = &obs_ring;
  cfg.allreduce = comm::AllreduceKind::kRing;
  PsraHgAdmm(cfg).Run(problem, opt);

  const auto& psr = obs_psr.metrics.counters();
  const auto& ring = obs_ring.metrics.counters();
  EXPECT_LT(psr.at("comm.allreduce.psr.bytes"),
            ring.at("comm.allreduce.ring.bytes"));
  // Both send 2*n*(n-1) point-to-point messages at group size n; the hop
  // advantage shows in rounds: PSR is 2 phases flat, Ring takes 2*(n-1)
  // pipeline steps.
  EXPECT_EQ(psr.at("comm.allreduce.psr.messages"),
            ring.at("comm.allreduce.ring.messages"));
  EXPECT_LT(psr.at("comm.allreduce.psr.rounds"),
            ring.at("comm.allreduce.ring.rounds"));
}

}  // namespace
}  // namespace psra
