// Observability subsystem tests: histogram bucketing, deterministic metrics
// JSON, span bookkeeping and Chrome-trace export, plus the engine-level
// contracts — traced runs cover each worker's virtual makespan, metrics are
// identical for any host pool size, and attaching an ObsContext leaves the
// run's numerical results bitwise untouched.
#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "admm/registry.hpp"
#include "engine/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "support/status.hpp"

namespace psra {
namespace {

using admm::BuildProblem;
using admm::ConsensusProblem;
using admm::GroupingMode;
using admm::PsraConfig;
using admm::PsraHgAdmm;
using admm::RunOptions;
using admm::RunResult;

// ------------------------------------------------------------ histogram ----

TEST(Histogram, BucketsObservationsWithOverflow) {
  const double bounds[] = {1.0, 10.0, 100.0};
  obs::Histogram h;
  h.bounds.assign(std::begin(bounds), std::end(bounds));
  h.counts.assign(4, 0);

  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (inclusive upper bound)
  h.Observe(5.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e6);    // overflow

  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(Histogram, MergeAddsBucketwise) {
  obs::MetricsRegistry a, b;
  const double bounds[] = {1.0, 2.0};
  a.Histo("h", bounds).Observe(0.5);
  b.Histo("h", bounds).Observe(1.5);
  b.Histo("h", bounds).Observe(9.0);
  a.MergeFrom(b);
  const auto& h = a.histograms().at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(h.count, 3u);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  const double coarse[] = {1.0, 2.0};
  const double fine[] = {0.5, 1.0, 2.0};
  obs::MetricsRegistry a, b;
  a.Histo("h", coarse).Observe(0.5);
  b.Histo("h", fine).Observe(0.5);
  // Both the direct histogram merge and the registry-level MergeFrom must
  // refuse: bucket-wise addition across different bounds is meaningless,
  // which is why every wire.* histogram shares WireLatencyBounds().
  EXPECT_THROW(a.Histo("h", coarse).Merge(b.histograms().at("h")),
               InvalidArgument);
  EXPECT_THROW(a.MergeFrom(b), InvalidArgument);
}

TEST(Histogram, MergeAccumulatesSumAndOverflow) {
  const double bounds[] = {1.0};
  obs::MetricsRegistry a, b;
  a.Histo("h", bounds).Observe(0.25);
  b.Histo("h", bounds).Observe(4.0);  // overflow bucket
  b.Histo("h", bounds).Observe(0.75);
  a.MergeFrom(b);
  const auto& h = a.histograms().at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 5.0);
}

// ------------------------------------------------------------- registry ----

TEST(MetricsRegistry, JsonIsDeterministicAcrossInsertionOrder) {
  const double bounds[] = {0.1, 1.0};
  obs::MetricsRegistry a;
  a.Counter("z.last") = 3;
  a.Counter("a.first") = 1;
  a.Gauge("m.mid") = 2.5;
  a.Histo("h.one", bounds).Observe(0.5);

  obs::MetricsRegistry b;
  b.Histo("h.one", bounds).Observe(0.5);
  b.Gauge("m.mid") = 2.5;
  b.Counter("a.first") = 1;
  b.Counter("z.last") = 3;

  std::ostringstream ja, jb;
  a.WriteJson(ja);
  b.WriteJson(jb);
  const std::string text = ja.str();
  EXPECT_EQ(text, jb.str());
  EXPECT_EQ(a, b);

  obs::json::Scanner scanner(text);
  ASSERT_TRUE(scanner.Validate()) << scanner.Error();
}

TEST(MetricsRegistry, MergeSemantics) {
  obs::MetricsRegistry a, b;
  a.Counter("c") = 2;
  b.Counter("c") = 3;
  b.Counter("only_b") = 7;
  a.Gauge("g") = 1.0;
  b.Gauge("g") = 9.0;
  a.MergeFrom(b);
  EXPECT_EQ(a.counters().at("c"), 5u);        // counters add
  EXPECT_EQ(a.counters().at("only_b"), 7u);   // missing keys appear
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 9.0);  // gauges overwrite
}

// --------------------------------------------------------------- tracer ----

TEST(SpanTracer, CoverageIsUnionOfSpans) {
  obs::SpanTracer tr;
  const auto t = tr.AddTrack("worker 0");
  tr.Add(t, "a", 0.0, 0.4, 1);
  tr.Add(t, "b", 0.2, 0.5, 1);  // overlaps a
  tr.Add(t, "c", 0.9, 1.0, 2);
  // Union covers [0, 0.5] + [0.9, 1.0] = 0.6 of a 1.0 horizon.
  EXPECT_NEAR(tr.Coverage(t, 1.0), 0.6, 1e-12);

  // Negative-length spans clamp to zero length rather than corrupting the
  // union computation.
  tr.Add(t, "bad", 0.8, 0.7, 3);
  EXPECT_NEAR(tr.Coverage(t, 1.0), 0.6, 1e-12);
}

TEST(SpanTracer, SpansKeepInsertionOrderAndIterationTags) {
  obs::SpanTracer tr;
  const auto t = tr.AddTrack("worker 0");
  tr.Add(t, "x_update", 0.0, 0.1, 1);
  tr.Add(t, "w_allreduce", 0.1, 0.3, 1);
  tr.Add(t, "x_update", 0.3, 0.4, 2);
  const auto& spans = tr.spans(t);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "x_update");
  EXPECT_STREQ(spans[1].name, "w_allreduce");
  EXPECT_EQ(spans[2].iteration, 2u);
}

// Chrome's trace viewer renders same-track spans by duration containment:
// two spans on one track may nest or be disjoint, never partially overlap.
void ExpectProperNesting(const std::vector<obs::TraceSpan>& spans) {
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const auto& a = spans[i];
      const auto& b = spans[j];
      const bool disjoint =
          a.end <= b.begin + kEps || b.end <= a.begin + kEps;
      const bool a_contains_b =
          a.begin <= b.begin + kEps && b.end <= a.end + kEps;
      const bool b_contains_a =
          b.begin <= a.begin + kEps && a.end <= b.end + kEps;
      EXPECT_TRUE(disjoint || a_contains_b || b_contains_a)
          << a.name << " [" << a.begin << ", " << a.end << ") vs " << b.name
          << " [" << b.begin << ", " << b.end << ")";
    }
  }
}

TEST(SpanTracer, ChromeJsonIsValidAndCarriesTrackMetadata) {
  obs::SpanTracer tr;
  const auto t0 = tr.AddTrack("worker 0");
  tr.AddTrack("group generator");
  tr.Add(t0, "x_update", 0.0, 0.25, 1);

  std::ostringstream os;
  tr.WriteChromeJson(os);
  const std::string text = os.str();

  obs::json::Scanner scanner(text);
  ASSERT_TRUE(scanner.Validate()) << scanner.Error();
  bool has_events = false;
  for (const auto& k : scanner.Keys()) {
    if (k == "traceEvents") has_events = true;
  }
  EXPECT_TRUE(has_events);
  EXPECT_NE(text.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(text.find("\"group generator\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
}

TEST(SpanTracer, PeerAndTagRoundTripThroughChromeJson) {
  obs::SpanTracer tr;
  const auto t = tr.AddTrack("rank 0");
  tr.Add(t, "wire_post", 0.0, 0.0, 1, 0.0, /*peer=*/2, /*tag=*/0x30005u);
  tr.Add(t, "compute", 0.1, 0.2, 1);  // no peer: exporter omits the args

  std::ostringstream os;
  tr.WriteChromeJson(os);
  const obs::TraceData back = obs::LoadChromeTrace(os.str());
  ASSERT_EQ(back.tracks.size(), 1u);
  ASSERT_EQ(back.tracks[0].spans.size(), 2u);
  const auto& post = back.tracks[0].spans[0];
  EXPECT_EQ(post.name, "wire_post");
  EXPECT_EQ(post.peer, 2);
  EXPECT_EQ(post.tag, 0x30005u);
  const auto& compute = back.tracks[0].spans[1];
  EXPECT_EQ(compute.peer, -1);
  EXPECT_EQ(compute.tag, 0u);
}

// ------------------------------------------------------ engine contracts ----

data::SyntheticSpec ObsSpec() {
  data::SyntheticSpec spec;
  spec.name = "obs";
  spec.num_features = 120;
  spec.num_train = 240;
  spec.num_test = 80;
  spec.mean_row_nnz = 10.0;
  spec.label_noise = 0.02;
  spec.seed = 11;
  return spec;
}

PsraConfig ObsCluster(GroupingMode grouping) {
  PsraConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = grouping;
  return cfg;
}

RunResult RunWithObs(GroupingMode grouping, obs::ObsContext* obs,
                     engine::ThreadPool* pool = nullptr) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  RunOptions opt;
  opt.max_iterations = 6;
  opt.eval_every = 2;
  opt.obs = obs;
  opt.pool = pool;
  return PsraHgAdmm(ObsCluster(grouping)).Run(problem, opt);
}

class TracedEngine : public ::testing::TestWithParam<GroupingMode> {};

TEST_P(TracedEngine, SpansCoverEachWorkersVirtualMakespan) {
  obs::ObsContext obs;
  const auto res = RunWithObs(GetParam(), &obs);
  ASSERT_GE(obs.tracer.num_tracks(), 8u);

  std::size_t worker_tracks = 0;
  for (obs::TrackId t = 0; t < obs.tracer.num_tracks(); ++t) {
    if (obs.tracer.track_name(t).rfind("worker", 0) != 0) continue;
    ++worker_tracks;
    const auto& spans = obs.tracer.spans(t);
    ASSERT_FALSE(spans.empty()) << obs.tracer.track_name(t);
    simnet::VirtualTime horizon = 0.0;
    for (const auto& s : spans) {
      EXPECT_LE(s.end, res.makespan + 1e-12);
      horizon = std::max(horizon, s.end);
    }
    ExpectProperNesting(spans);
    // The acceptance gate: >= 95% of the worker's own virtual makespan is
    // attributed to a named phase (the bracketing span discipline should
    // make this essentially 100%).
    EXPECT_GE(obs.tracer.Coverage(t, horizon), 0.95)
        << obs.tracer.track_name(t);
  }
  EXPECT_EQ(worker_tracks, 8u);
}

TEST_P(TracedEngine, ChromeExportOfARealRunValidates) {
  obs::ObsContext obs;
  RunWithObs(GetParam(), &obs);
  std::ostringstream os;
  obs.tracer.WriteChromeJson(os);
  const std::string text = os.str();
  obs::json::Scanner scanner(text);
  EXPECT_TRUE(scanner.Validate()) << scanner.Error();
}

TEST_P(TracedEngine, MetricsIdenticalForAnyHostPoolSize) {
  obs::ObsContext serial, pooled;
  const auto a = RunWithObs(GetParam(), &serial);

  engine::ThreadPool pool4(4);
  pool4.ForceParallelDispatchForTesting();
  const auto b = RunWithObs(GetParam(), &pooled, &pool4);

  EXPECT_EQ(serial.metrics, pooled.metrics);
  std::ostringstream ja, jb;
  a.metrics.WriteJson(ja);
  b.metrics.WriteJson(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST_P(TracedEngine, AttachingObsLeavesRunBitwiseIdentical) {
  obs::ObsContext obs;
  const auto with = RunWithObs(GetParam(), &obs);
  const auto without = RunWithObs(GetParam(), nullptr);

  ASSERT_EQ(with.final_z.size(), without.final_z.size());
  EXPECT_EQ(std::memcmp(with.final_z.data(), without.final_z.data(),
                        with.final_z.size() * sizeof(double)),
            0);
  const double a[] = {with.final_objective, with.total_cal_time,
                      with.total_comm_time, with.makespan};
  const double b[] = {without.final_objective, without.total_cal_time,
                      without.total_comm_time, without.makespan};
  EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0);
  EXPECT_EQ(with.elements_sent, without.elements_sent);
  EXPECT_EQ(with.messages_sent, without.messages_sent);
  // The obs-off run carries an empty registry; the obs-on run filled one.
  EXPECT_TRUE(without.metrics.empty());
  EXPECT_FALSE(with.metrics.empty());
}

TEST_P(TracedEngine, MetricsAgreeWithRunResultTotals) {
  obs::ObsContext obs;
  const auto res = RunWithObs(GetParam(), &obs);
  EXPECT_EQ(res.metrics.counters().at("engine.iterations"),
            res.iterations_run);
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("run.makespan_s"), res.makespan);
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("run.cal_time_s"),
                   res.total_cal_time);
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("run.comm_time_s"),
                   res.total_comm_time);
}

INSTANTIATE_TEST_SUITE_P(AllGroupings, TracedEngine,
                         ::testing::Values(GroupingMode::kFlat,
                                           GroupingMode::kHierarchical,
                                           GroupingMode::kDynamicGroups),
                         [](const auto& param_info) {
                           return admm::GroupingModeName(param_info.param);
                         });

// The other engine families publish their own traffic counters.
TEST(EngineMetrics, GadmmChainAndAdmmMasterCountersAppear) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  admm::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.workers_per_node = 2;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 2;

  obs::ObsContext obs_gadmm;
  opt.obs = &obs_gadmm;
  const auto g = admm::RunAlgorithm("gadmm", cluster, problem, opt);
  EXPECT_GT(g.metrics.counters().at("comm.chain.push.messages"), 0u);
  EXPECT_GT(g.metrics.counters().at("comm.chain.push.bytes"), 0u);

  obs::ObsContext obs_ad;
  opt.obs = &obs_ad;
  const auto ad = admm::RunAlgorithm("ad-admm", cluster, problem, opt);
  EXPECT_GT(ad.metrics.counters().at("comm.master.report.messages"), 0u);
  EXPECT_GT(ad.metrics.counters().at("master.z_updates"), 0u);
}

// ADMMLib publishes its SSP-barrier layer and ring traffic, and its spans
// carry host wall time in the Chrome trace args.
TEST(EngineMetrics, AdmmLibSspCountersAndWallClockAppear) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  admm::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.workers_per_node = 2;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 2;

  obs::ObsContext obs;
  opt.obs = &obs;
  const auto res = admm::RunAlgorithm("admmlib", cluster, problem, opt);
  const auto& c = res.metrics.counters();
  EXPECT_GT(c.at("ssp.rounds"), 0u);
  EXPECT_GT(c.at("comm.allreduce.ring.invocations"), 0u);
  EXPECT_GT(c.at("comm.allreduce.ring.bytes"), 0u);
  EXPECT_EQ(c.at("engine.iterations"), res.iterations_run);
  EXPECT_EQ(res.metrics.histograms().count("ssp.participants"), 1u);

  std::ostringstream os;
  obs.tracer.WriteChromeJson(os);
  const std::string text = os.str();
  for (const char* span : {"x_update", "w_allreduce", "z_y_update"}) {
    EXPECT_NE(text.find('"' + std::string(span) + '"'), std::string::npos)
        << span;
  }
  EXPECT_NE(text.find("\"wall_us\""), std::string::npos);
}

// PSR moves fewer bytes than Ring for the same job (paper eq. 11-16): the
// per-collective byte counters must reproduce that ordering. Hierarchical
// grouping (full leader barrier), so the collective spans all 8 nodes —
// dynamic grouping tends to form pairs, and at group size 2 every allreduce
// is the same exchange.
TEST(EngineMetrics, PsrBytesBelowRingBytes) {
  const auto problem = BuildProblem(ObsSpec(), 16);
  PsraConfig cfg;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.workers_per_node = 2;
  cfg.grouping = GroupingMode::kHierarchical;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 4;

  obs::ObsContext obs_psr;
  opt.obs = &obs_psr;
  cfg.allreduce = comm::AllreduceKind::kPsr;
  PsraHgAdmm(cfg).Run(problem, opt);

  obs::ObsContext obs_ring;
  opt.obs = &obs_ring;
  cfg.allreduce = comm::AllreduceKind::kRing;
  PsraHgAdmm(cfg).Run(problem, opt);

  const auto& psr = obs_psr.metrics.counters();
  const auto& ring = obs_ring.metrics.counters();
  EXPECT_LT(psr.at("comm.allreduce.psr.bytes"),
            ring.at("comm.allreduce.ring.bytes"));
  // Both send 2*n*(n-1) point-to-point messages at group size n; the hop
  // advantage shows in rounds: PSR is 2 phases flat, Ring takes 2*(n-1)
  // pipeline steps.
  EXPECT_EQ(psr.at("comm.allreduce.psr.messages"),
            ring.at("comm.allreduce.ring.messages"));
  EXPECT_LT(psr.at("comm.allreduce.psr.rounds"),
            ring.at("comm.allreduce.ring.rounds"));
}

// ----------------------------------------------------- timeline recorder ----

TEST(TimeSeriesRecorder, AppendsAcrossChunkBoundariesAndReadsBack) {
  constexpr std::size_t kChunk = obs::TimeSeriesRecorder::kChunkSamples;
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& s = rec.Series("ts.x");
  const std::size_t n = 2 * kChunk + 7;  // spans three chunks
  for (std::size_t i = 0; i < n; ++i) {
    rec.BeginIteration(i + 1);
    s.Append(0.5 * static_cast<double>(i));
  }
  ASSERT_EQ(s.size(), n);
  ASSERT_EQ(rec.rows(), n);
  EXPECT_DOUBLE_EQ(s.front(), 0.0);
  EXPECT_DOUBLE_EQ(s.back(), 0.5 * static_cast<double>(n - 1));
  // The first sample of each fresh chunk, where a stale lease would show.
  EXPECT_DOUBLE_EQ(s[kChunk], 0.5 * static_cast<double>(kChunk));
  EXPECT_DOUBLE_EQ(s[2 * kChunk], 0.5 * static_cast<double>(2 * kChunk));
  EXPECT_EQ(rec.IterationAt(0), 1u);
  EXPECT_EQ(rec.IterationAt(n - 1), n);
}

TEST(TimeSeriesRecorder, SeriesNamesLiveUnderTheTsNamespace) {
  obs::TimeSeriesRecorder rec;
  EXPECT_THROW(rec.Series("primal_residual"), InvalidArgument);
  EXPECT_THROW(rec.Series("ts."), InvalidArgument);
  EXPECT_NO_THROW(rec.Series("ts.primal_residual"));
}

TEST(TimeSeriesRecorder, HandlesAreStableAcrossLaterRegistrations) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& first = rec.Series("ts.m");
  first.Append(1.0);
  // Registering more series (map rebalancing) must not move the handle.
  for (const char* name : {"ts.a", "ts.z", "ts.b", "ts.y"}) rec.Series(name);
  EXPECT_EQ(&rec.Series("ts.m"), &first);
  EXPECT_DOUBLE_EQ(first.back(), 1.0);
}

TEST(TimeSeriesRecorder, FirstIterationAtOrBelowFindsTheEarliestCrossing) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& s = rec.Series("ts.r");
  const double samples[] = {8.0, 4.0, 2.0, 1.0, 0.5};
  for (std::size_t i = 0; i < std::size(samples); ++i) {
    rec.BeginIteration(i + 1);
    s.Append(samples[i]);
  }
  EXPECT_EQ(rec.FirstIterationAtOrBelow("ts.r", 4.0), 2u);   // halved
  EXPECT_EQ(rec.FirstIterationAtOrBelow("ts.r", 0.5), 5u);
  EXPECT_EQ(rec.FirstIterationAtOrBelow("ts.r", 0.1), 0u);   // never
  EXPECT_EQ(rec.FirstIterationAtOrBelow("ts.absent", 1.0), 0u);
}

TEST(TimeSeriesRecorder, MergeFromConcatenatesLikeAnUninterruptedRun) {
  obs::TimeSeriesRecorder full, head, tail;
  for (std::uint64_t it = 1; it <= 6; ++it) {
    obs::TimeSeriesRecorder& part = it <= 3 ? head : tail;
    for (obs::TimeSeriesRecorder* r : {&full, &part}) {
      r->BeginIteration(it);
      r->Series("ts.a").Append(1.0 / static_cast<double>(it));
      r->Series("ts.b").Append(static_cast<double>(10 * it));
    }
  }
  head.MergeFrom(tail);
  std::ostringstream merged, straight;
  head.WriteJsonl(merged);
  full.WriteJsonl(straight);
  EXPECT_EQ(merged.str(), straight.str());
}

TEST(TimeSeriesRecorder, JsonlHeaderIsSortedAndNonFiniteBecomesNull) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& b = rec.Series("ts.b");  // registered before ts.a
  obs::TimeSeries& a = rec.Series("ts.a");
  rec.BeginIteration(1);
  b.Append(std::numeric_limits<double>::quiet_NaN());
  a.Append(2.0);
  std::ostringstream os;
  rec.WriteJsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("{\"psra_timeline\": 1, \"series\": "
                      "[\"ts.a\", \"ts.b\"]}\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"it\": 1, \"v\": [2, null]}\n"), std::string::npos)
      << text;
  // Every line is itself valid JSON.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    obs::json::Scanner scanner(line);
    EXPECT_TRUE(scanner.Validate()) << line << ": " << scanner.Error();
  }
}

TEST(TimeSeriesRecorder, JsonlRejectsRaggedSeries) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& a = rec.Series("ts.a");
  obs::TimeSeries& b = rec.Series("ts.b");
  rec.BeginIteration(1);
  a.Append(1.0);
  b.Append(1.0);
  rec.BeginIteration(2);
  a.Append(2.0);  // ts.b misses its row 2 sample
  std::ostringstream os;
  EXPECT_THROW(rec.WriteJsonl(os), InvalidArgument);
}

TEST(TimeSeriesRecorder, ClearReturnsChunksToThePoolForReuse) {
  constexpr std::size_t kChunk = obs::TimeSeriesRecorder::kChunkSamples;
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& s = rec.Series("ts.x");
  for (std::size_t i = 0; i < kChunk + 1; ++i) {
    rec.BeginIteration(i + 1);
    s.Append(static_cast<double>(i));
  }
  rec.Clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.rows(), 0u);
  EXPECT_EQ(rec.Find("ts.x"), nullptr);
  // Refill: leases come from the pool and the old samples are gone.
  obs::TimeSeries& again = rec.Series("ts.x");
  rec.BeginIteration(1);
  again.Append(-3.5);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_DOUBLE_EQ(again[0], -3.5);
  EXPECT_EQ(rec.IterationAt(0), 1u);
}

TEST(TimeSeriesRecorder, PublishSummaryEmitsOverwriteSafeGauges) {
  obs::TimeSeriesRecorder rec;
  obs::TimeSeries& s = rec.Series("ts.r");
  for (const double v : {4.0, 1.0, 9.0}) {
    rec.BeginIteration(s.size() + 1);
    s.Append(v);
  }
  obs::MetricsRegistry m;
  rec.PublishSummary(m);
  rec.PublishSummary(m);  // idempotent: gauges overwrite, never accumulate
  EXPECT_DOUBLE_EQ(m.gauges().at("ts.r.samples"), 3.0);
  EXPECT_DOUBLE_EQ(m.gauges().at("ts.r.first"), 4.0);
  EXPECT_DOUBLE_EQ(m.gauges().at("ts.r.last"), 9.0);
  EXPECT_DOUBLE_EQ(m.gauges().at("ts.r.min"), 1.0);
  EXPECT_DOUBLE_EQ(m.gauges().at("ts.r.max"), 9.0);
}

// ------------------------------------------------------ engine timelines ----

TEST_P(TracedEngine, TimelineRecordsOneRowPerIteration) {
  obs::ObsContext obs;
  const auto res = RunWithObs(GetParam(), &obs);
  ASSERT_EQ(obs.timeline.rows(), res.iterations_run);
  for (std::size_t r = 0; r < obs.timeline.rows(); ++r) {
    EXPECT_EQ(obs.timeline.IterationAt(r), r + 1);
  }
  for (const char* name :
       {"ts.primal_residual", "ts.dual_residual", "ts.objective", "ts.rho",
        "ts.active_groups", "ts.regroup_events", "ts.bytes", "ts.rounds"}) {
    const obs::TimeSeries* s = obs.timeline.Find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->size(), res.iterations_run) << name;
  }
  // The per-iteration bytes deltas add back up to the registry's totals: the
  // delta baselining (setup traffic excluded) must not leak rows.
  const obs::TimeSeries& bytes = *obs.timeline.Find("ts.bytes");
  double timeline_bytes = 0.0;
  for (std::size_t r = 0; r < bytes.size(); ++r) timeline_bytes += bytes[r];
  EXPECT_GT(timeline_bytes, 0.0);
  // Summary gauges ride the registry (and therefore every metrics.json).
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("ts.primal_residual.samples"),
                   static_cast<double>(res.iterations_run));
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("ts.rho.first"),
                   obs.timeline.Find("ts.rho")->front());
  // Max-iteration exit: the stopping gauges must say "did not converge".
  EXPECT_DOUBLE_EQ(res.metrics.gauges().at("stopping.converged"), 0.0);
  EXPECT_DOUBLE_EQ(
      res.metrics.gauges().at("stopping.iterations_to_tolerance"), 0.0);
}

TEST_P(TracedEngine, TimelineIdenticalForAnyHostPoolSize) {
  obs::ObsContext serial, pooled;
  RunWithObs(GetParam(), &serial);

  engine::ThreadPool pool4(4);
  pool4.ForceParallelDispatchForTesting();
  RunWithObs(GetParam(), &pooled, &pool4);

  std::ostringstream ja, jb;
  serial.timeline.WriteJsonl(ja);
  pooled.timeline.WriteJsonl(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

// Every engine family records a convergence timeline with its own series
// taxonomy; rows always ascend one per update round.
TEST(EngineTimeline, EveryEngineRecordsItsSeriesTaxonomy) {
  const auto problem = BuildProblem(ObsSpec(), 8);
  admm::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.workers_per_node = 2;
  RunOptions opt;
  opt.max_iterations = 4;
  opt.eval_every = 2;

  const struct {
    const char* algorithm;
    std::vector<const char*> series;
  } cases[] = {
      {"admmlib",
       {"ts.primal_residual", "ts.dual_residual", "ts.objective", "ts.rho",
        "ts.ssp_staleness", "ts.bytes", "ts.rounds"}},
      {"gadmm",
       {"ts.primal_residual", "ts.objective", "ts.rho", "ts.bytes",
        "ts.messages"}},
      {"ad-admm", {"ts.objective", "ts.rho", "ts.bytes", "ts.participants"}},
  };
  for (const auto& c : cases) {
    obs::ObsContext obs;
    opt.obs = &obs;
    const auto res = admm::RunAlgorithm(c.algorithm, cluster, problem, opt);
    // One row per completed update round — engine.iterations is the
    // cross-family iteration count (the async master leaves
    // RunResult::iterations_run at 0 by design).
    EXPECT_EQ(obs.timeline.rows(),
              res.metrics.counters().at("engine.iterations"))
        << c.algorithm;
    for (const char* name : c.series) {
      const obs::TimeSeries* s = obs.timeline.Find(name);
      ASSERT_NE(s, nullptr) << c.algorithm << " " << name;
      EXPECT_EQ(s->size(), obs.timeline.rows()) << c.algorithm << " " << name;
    }
    // The taxonomy is exact, not a subset: series() holds nothing else.
    EXPECT_EQ(obs.timeline.series().size(), c.series.size()) << c.algorithm;
    std::ostringstream os;
    EXPECT_NO_THROW(obs.timeline.WriteJsonl(os)) << c.algorithm;
  }
}

}  // namespace
}  // namespace psra
