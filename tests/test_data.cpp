// Tests for dataset container, LIBSVM I/O, synthetic generation, partition.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "data/dataset.hpp"
#include "data/libsvm_io.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "support/status.hpp"

namespace psra::data {
namespace {

Dataset TinyDataset() {
  linalg::CsrMatrix::Builder b(4);
  const linalg::CsrMatrix::Index c0[] = {0, 2};
  const double v0[] = {1.0, -1.5};
  b.AddRow(c0, v0);
  const linalg::CsrMatrix::Index c1[] = {1, 3};
  const double v1[] = {0.5, 2.0};
  b.AddRow(c1, v1);
  const linalg::CsrMatrix::Index c2[] = {0};
  const double v2[] = {3.0};
  b.AddRow(c2, v2);
  return Dataset(b.Build(), {1.0, -1.0, 1.0});
}

// -------------------------------------------------------------- dataset ----

TEST(Dataset, BasicStats) {
  const auto ds = TinyDataset();
  EXPECT_EQ(ds.num_samples(), 3u);
  EXPECT_EQ(ds.num_features(), 4u);
  EXPECT_EQ(ds.nnz(), 5u);
  EXPECT_NEAR(ds.MeanRowNnz(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(ds.PositiveFraction(), 2.0 / 3.0, 1e-12);
}

TEST(Dataset, RejectsBadLabels) {
  linalg::CsrMatrix::Builder b(2);
  const linalg::CsrMatrix::Index c[] = {0};
  const double v[] = {1.0};
  b.AddRow(c, v);
  EXPECT_THROW(Dataset(b.Build(), {0.5}), InvalidArgument);
}

TEST(Dataset, RejectsLabelCountMismatch) {
  linalg::CsrMatrix::Builder b(2);
  const linalg::CsrMatrix::Index c[] = {0};
  const double v[] = {1.0};
  b.AddRow(c, v);
  EXPECT_THROW(Dataset(b.Build(), {1.0, -1.0}), InvalidArgument);
}

TEST(Dataset, SliceSamples) {
  const auto ds = TinyDataset();
  const auto s = ds.SliceSamples(1, 3);
  EXPECT_EQ(s.num_samples(), 2u);
  EXPECT_EQ(s.labels(), (std::vector<double>{-1.0, 1.0}));
}

TEST(Dataset, SplitPrefix) {
  const auto [train, test] = TinyDataset().Split(2);
  EXPECT_EQ(train.num_samples(), 2u);
  EXPECT_EQ(test.num_samples(), 1u);
}

TEST(Dataset, WithFeatureDimWidens) {
  const auto ds = TinyDataset().WithFeatureDim(10);
  EXPECT_EQ(ds.num_features(), 10u);
  EXPECT_EQ(ds.nnz(), 5u);
  EXPECT_THROW(ds.WithFeatureDim(2), InvalidArgument);
}

TEST(Dataset, ComputeStatsFillsAllFields) {
  const auto s = ComputeStats("tiny", TinyDataset());
  EXPECT_EQ(s.name, "tiny");
  EXPECT_EQ(s.dimension, 4u);
  EXPECT_EQ(s.num_samples, 3u);
  EXPECT_GT(s.density, 0.0);
}

// --------------------------------------------------------------- libsvm ----

TEST(LibsvmIo, ParsesOneBasedIndices) {
  std::istringstream in("+1 1:0.5 3:1.5\n-1 2:2.0\n");
  const auto ds = ReadLibsvm(in);
  EXPECT_EQ(ds.num_samples(), 2u);
  EXPECT_EQ(ds.num_features(), 3u);
  EXPECT_DOUBLE_EQ(ds.features().Row(0).At(0), 0.5);
  EXPECT_DOUBLE_EQ(ds.features().Row(0).At(2), 1.5);
  EXPECT_DOUBLE_EQ(ds.features().Row(1).At(1), 2.0);
  EXPECT_EQ(ds.labels(), (std::vector<double>{1.0, -1.0}));
}

TEST(LibsvmIo, MapsMulticlassLabelsToBinary) {
  std::istringstream in("3 1:1\n0 1:1\n-2 1:1\n");
  const auto ds = ReadLibsvm(in);
  EXPECT_EQ(ds.labels(), (std::vector<double>{1.0, -1.0, -1.0}));
}

TEST(LibsvmIo, RespectsMaxSamplesAndFeatureDim) {
  std::istringstream in("+1 1:1\n-1 2:1\n+1 3:1\n");
  LibsvmReadOptions opt;
  opt.max_samples = 2;
  opt.feature_dim = 10;
  const auto ds = ReadLibsvm(in, opt);
  EXPECT_EQ(ds.num_samples(), 2u);
  EXPECT_EQ(ds.num_features(), 10u);
}

TEST(LibsvmIo, RejectsMalformedTokens) {
  std::istringstream a("+1 1-0.5\n");
  EXPECT_THROW(ReadLibsvm(a), InvalidArgument);
  std::istringstream b("+1 0:1\n");  // 0 is invalid in 1-based format
  EXPECT_THROW(ReadLibsvm(b), InvalidArgument);
  std::istringstream c("+1 2:1 1:1\n");  // out of order
  EXPECT_THROW(ReadLibsvm(c), InvalidArgument);
}

TEST(LibsvmIo, WriteReadRoundTrip) {
  const auto ds = TinyDataset();
  std::ostringstream out;
  WriteLibsvm(ds, out);
  std::istringstream in(out.str());
  LibsvmReadOptions opt;
  opt.feature_dim = ds.num_features();
  const auto back = ReadLibsvm(in, opt);
  ASSERT_EQ(back.num_samples(), ds.num_samples());
  EXPECT_EQ(back.labels(), ds.labels());
  for (std::uint64_t r = 0; r < ds.num_samples(); ++r) {
    const auto a = ds.features().Row(r).ToDense();
    const auto b = back.features().Row(r).ToDense();
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-7);
  }
}

TEST(LibsvmIo, MissingFileThrows) {
  EXPECT_THROW(ReadLibsvmFile("/nonexistent/path.svm"), IoError);
}

// ------------------------------------------------------------ synthetic ----

TEST(Synthetic, GeneratesRequestedShape) {
  SyntheticSpec spec;
  spec.num_features = 200;
  spec.num_train = 150;
  spec.num_test = 50;
  spec.mean_row_nnz = 10.0;
  const auto gen = GenerateSynthetic(spec);
  EXPECT_EQ(gen.train.num_samples(), 150u);
  EXPECT_EQ(gen.test.num_samples(), 50u);
  EXPECT_EQ(gen.train.num_features(), 200u);
  EXPECT_EQ(gen.true_weights.size(), 200u);
}

TEST(Synthetic, RowNnzNearTarget) {
  SyntheticSpec spec;
  spec.num_features = 1000;
  spec.num_train = 200;
  spec.num_test = 10;
  spec.mean_row_nnz = 20.0;
  const auto gen = GenerateSynthetic(spec);
  // Row nnz is drawn from [0.5, 1.5] * mean (minus collision loss).
  EXPECT_GT(gen.train.MeanRowNnz(), 8.0);
  EXPECT_LT(gen.train.MeanRowNnz(), 32.0);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 50;
  spec.num_test = 10;
  spec.seed = 99;
  const auto a = GenerateSynthetic(spec);
  const auto b = GenerateSynthetic(spec);
  EXPECT_EQ(a.train.labels(), b.train.labels());
  EXPECT_EQ(a.train.nnz(), b.train.nnz());
}

TEST(Synthetic, RowsAreUnitNormalized) {
  SyntheticSpec spec;
  spec.num_features = 300;
  spec.num_train = 30;
  spec.num_test = 5;
  const auto gen = GenerateSynthetic(spec);
  for (std::uint64_t r = 0; r < gen.train.num_samples(); ++r) {
    EXPECT_NEAR(gen.train.features().Row(r).Norm2(), 1.0, 1e-9);
  }
}

TEST(Synthetic, LabelsFollowPlantedSeparatorMostly) {
  SyntheticSpec spec;
  spec.num_features = 500;
  spec.num_train = 400;
  spec.num_test = 10;
  spec.label_noise = 0.0;
  const auto gen = GenerateSynthetic(spec);
  std::size_t agree = 0;
  for (std::uint64_t r = 0; r < gen.train.num_samples(); ++r) {
    const double margin = gen.train.features().Row(r).Dot(gen.true_weights);
    const double pred = margin >= 0 ? 1.0 : -1.0;
    if (pred == gen.train.labels()[static_cast<std::size_t>(r)]) ++agree;
  }
  EXPECT_EQ(agree, gen.train.num_samples());
}

TEST(Synthetic, ProfilesMatchPaperRatios) {
  const auto news = News20Profile(0.01);
  EXPECT_EQ(news.num_features, 13551u);
  // 0.01 * 16000 = 160 is below the container floor of 2048 samples.
  EXPECT_EQ(news.num_train, 2048u);
  const auto web = WebspamProfile(0.01);
  EXPECT_EQ(web.num_features, 166091u);
  const auto url = UrlProfile(0.01);
  EXPECT_EQ(url.num_features, 32319u);
}

TEST(Synthetic, ProfileByNameAcceptsAliases) {
  EXPECT_EQ(ProfileByName("news20").name, "news20_like");
  EXPECT_EQ(ProfileByName("webspam_like").name, "webspam_like");
  EXPECT_EQ(ProfileByName("URL").name, "url_like");
  EXPECT_THROW(ProfileByName("mnist"), InvalidArgument);
}

TEST(Synthetic, InvalidSpecsThrow) {
  SyntheticSpec s;
  s.label_noise = 0.7;
  EXPECT_THROW(GenerateSynthetic(s), InvalidArgument);
  EXPECT_THROW(News20Profile(0.0), InvalidArgument);
  EXPECT_THROW(News20Profile(1.5), InvalidArgument);
}

// ------------------------------------------------------------ partition ----

TEST(Partition, ContiguousBoundsCoverAllSamples) {
  const auto b = ContiguousBounds(10, 3);
  EXPECT_EQ(b, (std::vector<std::uint64_t>{0, 3, 6, 10}));
}

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<int, PartitionScheme>> {};

TEST_P(PartitionProperty, ShardsAreDisjointCover) {
  const auto [parts, scheme] = GetParam();
  SyntheticSpec spec;
  spec.num_features = 50;
  spec.num_train = 37;
  spec.num_test = 5;
  const auto gen = GenerateSynthetic(spec);
  const auto shards = Partition(gen.train, static_cast<std::uint64_t>(parts),
                                scheme);
  ASSERT_EQ(shards.size(), static_cast<std::size_t>(parts));

  std::uint64_t total = 0;
  std::size_t total_nnz = 0;
  std::uint64_t min_size = UINT64_MAX, max_size = 0;
  for (const auto& s : shards) {
    total += s.num_samples();
    total_nnz += s.nnz();
    min_size = std::min(min_size, s.num_samples());
    max_size = std::max(max_size, s.num_samples());
    EXPECT_EQ(s.num_features(), gen.train.num_features());
  }
  EXPECT_EQ(total, gen.train.num_samples());
  EXPECT_EQ(total_nnz, gen.train.nnz());
  EXPECT_LE(max_size - min_size, 1u);  // balanced
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PartitionProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 37),
                       ::testing::Values(PartitionScheme::kContiguous,
                                         PartitionScheme::kStriped)));

TEST(Partition, StripedAssignsRoundRobin) {
  const auto ds = TinyDataset();
  const auto shards = Partition(ds, 2, PartitionScheme::kStriped);
  EXPECT_EQ(shards[0].num_samples(), 2u);  // rows 0, 2
  EXPECT_EQ(shards[1].num_samples(), 1u);  // row 1
  EXPECT_EQ(shards[0].labels(), (std::vector<double>{1.0, 1.0}));
}

TEST(Partition, ZeroPartsThrows) {
  EXPECT_THROW(Partition(TinyDataset(), 0), InvalidArgument);
}

}  // namespace
}  // namespace psra::data
