// Tests for the solvers: logistic loss derivatives (checked against finite
// differences), TRON convergence, proximal z-update, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/dense_ops.hpp"
#include "solver/direct.hpp"
#include "solver/logistic.hpp"
#include "solver/metrics.hpp"
#include "solver/prox.hpp"
#include "solver/tron.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::solver {
namespace {

data::Dataset SmallDataset(std::uint64_t seed = 5, std::uint64_t n = 60,
                           std::uint64_t d = 25) {
  data::SyntheticSpec spec;
  spec.num_features = d;
  spec.num_train = n;
  spec.num_test = 10;
  spec.mean_row_nnz = 6.0;
  spec.seed = seed;
  return data::GenerateSynthetic(spec).train;
}

// ------------------------------------------------------------- logistic ----

TEST(Logistic, ValueAtZeroIsNLog2) {
  const auto ds = SmallDataset();
  const linalg::DenseVector x(ds.num_features(), 0.0);
  EXPECT_NEAR(LogisticValue(ds, x),
              static_cast<double>(ds.num_samples()) * std::log(2.0), 1e-9);
}

TEST(Logistic, ValueIsFiniteForExtremeMargins) {
  const auto ds = SmallDataset();
  linalg::DenseVector x(ds.num_features(), 1e4);
  EXPECT_TRUE(std::isfinite(LogisticValue(ds, x)));
  for (auto& v : x) v = -1e4;
  EXPECT_TRUE(std::isfinite(LogisticValue(ds, x)));
}

class ProximalFixture : public ::testing::Test {
 protected:
  ProximalFixture()
      : ds_(SmallDataset()),
        f_(&ds_, 0.7),
        v_(ds_.num_features(), 0.0),
        z_(ds_.num_features(), 0.0) {
    Rng rng(3);
    for (auto& e : v_) e = 0.1 * rng.NextGaussian();
    for (auto& e : z_) e = 0.2 * rng.NextGaussian();
    f_.SetIterationTerms(v_, z_);
  }

  data::Dataset ds_;
  ProximalLogistic f_;
  linalg::DenseVector v_, z_;
};

TEST_F(ProximalFixture, GradientMatchesFiniteDifferences) {
  const auto d = static_cast<std::size_t>(ds_.num_features());
  Rng rng(11);
  linalg::DenseVector x(d);
  for (auto& e : x) e = 0.3 * rng.NextGaussian();

  linalg::DenseVector grad(d);
  const double val = f_.ValueAndGradient(x, grad);
  EXPECT_NEAR(val, f_.Value(x), 1e-9);

  const double h = 1e-6;
  for (std::size_t i = 0; i < d; i += 3) {  // probe a subset of coordinates
    auto xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fd = (f_.Value(xp) - f_.Value(xm)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-4) << "coordinate " << i;
  }
}

TEST_F(ProximalFixture, HessianVecMatchesGradientDifferences) {
  const auto d = static_cast<std::size_t>(ds_.num_features());
  Rng rng(13);
  linalg::DenseVector x(d), dir(d);
  for (auto& e : x) e = 0.2 * rng.NextGaussian();
  for (auto& e : dir) e = rng.NextGaussian();

  f_.PrepareHessian(x);
  linalg::DenseVector hv(d);
  f_.HessianVec(dir, hv);

  const double h = 1e-6;
  linalg::DenseVector xp = x, xm = x, gp(d), gm(d);
  linalg::Axpy(h, dir, xp);
  linalg::Axpy(-h, dir, xm);
  f_.ValueAndGradient(xp, gp);
  f_.ValueAndGradient(xm, gm);
  for (std::size_t i = 0; i < d; i += 2) {
    const double fd = (gp[i] - gm[i]) / (2 * h);
    EXPECT_NEAR(hv[i], fd, 1e-4) << "coordinate " << i;
  }
}

TEST_F(ProximalFixture, HessianIsPositiveDefiniteWithRho) {
  const auto d = static_cast<std::size_t>(ds_.num_features());
  Rng rng(17);
  linalg::DenseVector x(d, 0.0), dir(d), hv(d);
  for (auto& e : dir) e = rng.NextGaussian();
  f_.PrepareHessian(x);
  f_.HessianVec(dir, hv);
  // d^T H d >= rho ||d||^2
  EXPECT_GE(linalg::Dot(dir, hv), 0.7 * linalg::Dot(dir, dir) - 1e-9);
}

TEST_F(ProximalFixture, FlopCountingAccumulates) {
  const auto d = static_cast<std::size_t>(ds_.num_features());
  linalg::DenseVector x(d, 0.1), grad(d);
  FlopCounter flops;
  f_.ValueAndGradient(x, grad, &flops);
  EXPECT_GT(flops.flops, 0.0);
  const double after_grad = flops.flops;
  f_.PrepareHessian(x, &flops);
  f_.HessianVec(grad, x, &flops);
  EXPECT_GT(flops.flops, after_grad);
}

TEST(Proximal, RequiresIterationTermsBeforeUse) {
  const auto ds = SmallDataset();
  ProximalLogistic f(&ds, 1.0);
  const linalg::DenseVector x(ds.num_features(), 0.0);
  EXPECT_THROW(f.Value(x), InvalidArgument);
}

// ----------------------------------------------------------------- tron ----

TEST(Tron, SolvesSubproblemToStationarity) {
  const auto ds = SmallDataset(7);
  const double rho = 1.0;
  ProximalLogistic f(&ds, rho);
  const auto d = static_cast<std::size_t>(ds.num_features());
  linalg::DenseVector v(d, 0.05), z(d, 0.0);
  f.SetIterationTerms(v, z);

  linalg::DenseVector x(d, 0.0);
  TronOptions opt;
  opt.gradient_tolerance = 1e-6;
  const auto res = TronMinimize(f, x, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.iterations, 0);

  linalg::DenseVector grad(d);
  f.ValueAndGradient(x, grad);
  EXPECT_LT(linalg::Norm2(grad), 1e-3);
}

TEST(Tron, WorkspaceOverloadIsBitwiseIdentical) {
  const auto ds = SmallDataset(7);
  ProximalLogistic f(&ds, 1.0);
  const auto d = static_cast<std::size_t>(ds.num_features());
  linalg::DenseVector v(d, 0.05), z(d, 0.0);
  f.SetIterationTerms(v, z);
  TronOptions opt;
  opt.gradient_tolerance = 1e-6;

  linalg::DenseVector x_plain(d, 0.0);
  const auto res_plain = TronMinimize(f, x_plain, opt);

  // A reused (dirty) workspace must not change anything.
  TronWorkspace ws;
  for (int pass = 0; pass < 2; ++pass) {
    linalg::DenseVector x(d, 0.0);
    const auto res = TronMinimize(f, x, opt, nullptr, ws);
    EXPECT_EQ(x, x_plain);
    EXPECT_EQ(res.iterations, res_plain.iterations);
    EXPECT_EQ(res.cg_iterations, res_plain.cg_iterations);
    EXPECT_EQ(res.objective, res_plain.objective);
    EXPECT_EQ(res.gradient_norm, res_plain.gradient_norm);
    EXPECT_EQ(res.converged, res_plain.converged);
  }
}

TEST(Tron, ObjectiveNeverIncreases) {
  const auto ds = SmallDataset(9);
  ProximalLogistic f(&ds, 0.5);
  const auto d = static_cast<std::size_t>(ds.num_features());
  linalg::DenseVector v(d, 0.0), z(d, 0.1);
  f.SetIterationTerms(v, z);

  linalg::DenseVector x(d, 0.0);
  const double before = f.Value(x);
  TronOptions opt;
  opt.max_iterations = 3;  // even a truncated run must not go uphill
  TronMinimize(f, x, opt);
  EXPECT_LE(f.Value(x), before + 1e-12);
}

TEST(Tron, AlreadyOptimalReturnsImmediately) {
  const auto ds = SmallDataset(21);
  ProximalLogistic f(&ds, 1.0);
  const auto d = static_cast<std::size_t>(ds.num_features());
  linalg::DenseVector v(d, 0.0), z(d, 0.0);
  f.SetIterationTerms(v, z);
  linalg::DenseVector x(d, 0.0);
  TronOptions opt;
  opt.gradient_tolerance = 1e-8;
  const auto r1 = TronMinimize(f, x, opt);
  ASSERT_TRUE(r1.converged);
  // Warm start: the gradient is already below an absolute threshold, so the
  // solver must return without taking a step.
  opt.absolute_tolerance = 1e-5;
  const auto r2 = TronMinimize(f, x, opt);
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r2.iterations, 0);
}

TEST(Tron, MatchesIndependentGradientDescent) {
  // Cross-check the minimizer against a slow but simple reference method.
  const auto ds = SmallDataset(15, 40, 12);
  ProximalLogistic f(&ds, 2.0);
  const auto d = static_cast<std::size_t>(ds.num_features());
  linalg::DenseVector v(d, 0.02), z(d, -0.05);
  f.SetIterationTerms(v, z);

  linalg::DenseVector x_tron(d, 0.0);
  TronOptions opt;
  opt.gradient_tolerance = 1e-8;
  opt.max_iterations = 100;
  TronMinimize(f, x_tron, opt);

  linalg::DenseVector x_gd(d, 0.0), grad(d);
  for (int it = 0; it < 20000; ++it) {
    f.ValueAndGradient(x_gd, grad);
    linalg::Axpy(-0.05, grad, x_gd);
  }
  EXPECT_LT(linalg::DistanceL2(x_tron, x_gd), 1e-3);
}

// ----------------------------------- gram Hessian (transpose reduction) ----

TEST(GramHessian, HessianVecMatchesMatrixFreePath) {
  const auto ds = SmallDataset(27);
  const auto d = static_cast<std::size_t>(ds.num_features());
  ProximalLogistic cg_f(&ds, 0.9), gram_f(&ds, 0.9);
  gram_f.SetUseGramHessian(true);
  EXPECT_TRUE(gram_f.use_gram_hessian());
  linalg::DenseVector v(d, 0.03), z(d, -0.02);
  cg_f.SetIterationTerms(v, z);
  gram_f.SetIterationTerms(v, z);

  Rng rng(51);
  linalg::DenseVector x(d), dir(d), hv_cg(d), hv_gram(d);
  for (auto& e : x) e = 0.2 * rng.NextGaussian();
  for (auto& e : dir) e = rng.NextGaussian();

  cg_f.PrepareHessian(x);
  gram_f.PrepareHessian(x);
  cg_f.HessianVec(dir, hv_cg);
  gram_f.HessianVec(dir, hv_gram);
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(hv_gram[i], hv_cg[i], 1e-10) << "coordinate " << i;
  }

  // The fused quadratic-form variant must agree with <d, Hd> too.
  const double dd = linalg::Dot(dir, dir);
  const double quad = gram_f.HessianVecQuad(dir, dd, hv_gram);
  EXPECT_NEAR(quad, linalg::Dot(dir, hv_cg), 1e-8);
}

TEST(GramHessian, TronSolutionsAgreeAcrossHessianPaths) {
  // Same subproblem minimized through the matrix-free and the Gram Hessian:
  // the minimizer is unique (rho-strongly convex), so both must land on it.
  const auto ds = SmallDataset(29, 80, 15);
  const auto d = static_cast<std::size_t>(ds.num_features());
  linalg::DenseVector v(d, 0.05), z(d, 0.0);
  TronOptions opt;
  opt.gradient_tolerance = 1e-8;
  opt.max_iterations = 100;

  ProximalLogistic cg_f(&ds, 1.2);
  cg_f.SetIterationTerms(v, z);
  linalg::DenseVector x_cg(d, 0.0);
  ASSERT_TRUE(TronMinimize(cg_f, x_cg, opt).converged);

  ProximalLogistic gram_f(&ds, 1.2);
  gram_f.SetUseGramHessian(true);
  gram_f.SetIterationTerms(v, z);
  linalg::DenseVector x_gram(d, 0.0);
  ASSERT_TRUE(TronMinimize(gram_f, x_gram, opt).converged);

  EXPECT_LT(linalg::DistanceL2(x_cg, x_gram), 1e-5);
}

TEST(GramHessian, FlopCountingCoversGramBuild) {
  const auto ds = SmallDataset(30);
  const auto d = static_cast<std::size_t>(ds.num_features());
  ProximalLogistic f(&ds, 1.0);
  f.SetUseGramHessian(true);
  linalg::DenseVector v(d, 0.0), z(d, 0.0);
  f.SetIterationTerms(v, z);
  linalg::DenseVector x(d, 0.1), hv(d);
  FlopCounter flops;
  f.PrepareHessian(x, &flops);
  EXPECT_GT(flops.flops, 0.0);
  const double after_prepare = flops.flops;
  f.HessianVec(x, hv, &flops);
  EXPECT_GT(flops.flops, after_prepare);
}

// ------------------------------------ cached-Gram direct least squares ----

namespace {

/// Tall random least-squares instance shared by the direct-solver tests.
struct LsInstance {
  linalg::CsrMatrix a;
  linalg::DenseVector b;
};

LsInstance MakeLs(std::uint64_t seed, std::size_t rows = 40,
                  std::size_t cols = 9) {
  Rng rng(seed);
  linalg::CsrMatrix::Builder builder(cols);
  linalg::DenseVector b(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<linalg::CsrMatrix::Index> idx;
    std::vector<double> val;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.NextBool(0.5)) {
        idx.push_back(c);
        val.push_back(rng.NextGaussian());
      }
    }
    builder.AddRow(idx, val);
    b[r] = rng.NextGaussian();
  }
  return {builder.Build(), std::move(b)};
}

}  // namespace

TEST(CachedGramLeastSquares, SolvesTheNormalEquations) {
  const auto ls = MakeLs(61);
  const double rho = 0.8;
  CachedGramLeastSquares solver(&ls.a, ls.b, rho);
  EXPECT_EQ(solver.dim(), 9u);

  Rng rng(62);
  linalg::DenseVector v(9), z(9), x(9);
  for (auto& e : v) e = rng.NextGaussian();
  for (auto& e : z) e = rng.NextGaussian();
  solver.Solve(v, z, x);

  // Residual of (A^T A + rho I) x = A^T b - v + rho z, assembled
  // independently with the matrix-free kernels.
  linalg::DenseVector ax(40), lhs(9, 0.0), rhs(9, 0.0);
  ls.a.Multiply(x, ax);
  ls.a.TransposeMultiplyAdd(ax, lhs);
  linalg::Axpy(rho, x, lhs);
  ls.a.TransposeMultiplyAdd(ls.b, rhs);
  for (std::size_t i = 0; i < 9; ++i) rhs[i] += -v[i] + rho * z[i];
  EXPECT_LT(linalg::DistanceL2(lhs, rhs), 1e-9);

  // Empty v/z spans mean zero terms.
  linalg::DenseVector x0(9);
  solver.Solve({}, {}, x0);
  linalg::DenseVector ax0(40), lhs0(9, 0.0), atb(9, 0.0);
  ls.a.Multiply(x0, ax0);
  ls.a.TransposeMultiplyAdd(ax0, lhs0);
  linalg::Axpy(rho, x0, lhs0);
  ls.a.TransposeMultiplyAdd(ls.b, atb);
  EXPECT_LT(linalg::DistanceL2(lhs0, atb), 1e-9);
}

TEST(CachedGramLeastSquares, RhoChangeRefactorsWithoutRestreaming) {
  const auto ls = MakeLs(63);
  CachedGramLeastSquares solver(&ls.a, ls.b, 1.0);
  EXPECT_EQ(solver.gram_builds(), 1);
  EXPECT_EQ(solver.factor_count(), 0);  // factorization is lazy

  linalg::DenseVector x(9);
  solver.Solve({}, {}, x);
  solver.Solve({}, {}, x);
  solver.Solve({}, {}, x);
  EXPECT_EQ(solver.factor_count(), 1);  // repeated solves reuse the factor

  solver.SetRho(1.0);  // no-op change must not refactor
  solver.Solve({}, {}, x);
  EXPECT_EQ(solver.factor_count(), 1);

  solver.SetRho(2.5);
  EXPECT_EQ(solver.factor_count(), 1);  // stale, not yet refactored
  solver.Solve({}, {}, x);
  EXPECT_EQ(solver.factor_count(), 2);  // exactly one extra factorization
  EXPECT_EQ(solver.gram_builds(), 1);   // A was never re-streamed

  // The refreshed factor solves the rho = 2.5 normal equations.
  linalg::DenseVector ax(40), lhs(9, 0.0), atb(9, 0.0);
  ls.a.Multiply(x, ax);
  ls.a.TransposeMultiplyAdd(ax, lhs);
  linalg::Axpy(2.5, x, lhs);
  ls.a.TransposeMultiplyAdd(ls.b, atb);
  EXPECT_LT(linalg::DistanceL2(lhs, atb), 1e-9);
}

TEST(CachedGramLeastSquares, ValidatesArguments) {
  const auto ls = MakeLs(64);
  EXPECT_THROW(CachedGramLeastSquares(&ls.a, ls.b, 0.0), InvalidArgument);
  CachedGramLeastSquares solver(&ls.a, ls.b, 1.0);
  EXPECT_THROW(solver.SetRho(-1.0), InvalidArgument);
  linalg::DenseVector wrong(3);
  EXPECT_THROW(solver.Solve(wrong, {}, wrong), InvalidArgument);
}

// ----------------------------------------------------------------- prox ----

TEST(Prox, ZUpdateL1IsSoftThreshold) {
  ZUpdateConfig cfg;
  cfg.lambda = 2.0;
  cfg.rho = 1.0;
  cfg.num_workers = 4;
  // scale = 4, kappa = 0.5
  const linalg::DenseVector W{8.0, -8.0, 1.0, 0.0};
  linalg::DenseVector z(4);
  ZUpdate(cfg, W, z);
  EXPECT_DOUBLE_EQ(z[0], 1.5);
  EXPECT_DOUBLE_EQ(z[1], -1.5);
  EXPECT_DOUBLE_EQ(z[2], 0.0);
  EXPECT_DOUBLE_EQ(z[3], 0.0);
}

TEST(Prox, ZUpdateSolvesStationarityCondition) {
  // z must satisfy 0 in lambda*sign(z) + rho*N*z - W componentwise.
  ZUpdateConfig cfg;
  cfg.lambda = 1.0;
  cfg.rho = 0.5;
  cfg.num_workers = 3;
  const linalg::DenseVector W{5.0, -0.4, 2.0};
  linalg::DenseVector z(3);
  ZUpdate(cfg, W, z);
  const double scale = cfg.rho * 3;
  for (std::size_t i = 0; i < 3; ++i) {
    if (z[i] != 0.0) {
      const double subgrad = cfg.lambda * (z[i] > 0 ? 1 : -1) +
                             scale * z[i] - W[i];
      EXPECT_NEAR(subgrad, 0.0, 1e-12);
    } else {
      EXPECT_LE(std::fabs(W[i]), cfg.lambda + 1e-12);
    }
  }
}

TEST(Prox, ZUpdateNoneAndL2) {
  ZUpdateConfig cfg;
  cfg.regularizer = Regularizer::kNone;
  cfg.rho = 2.0;
  cfg.num_workers = 1;
  const linalg::DenseVector W{4.0};
  linalg::DenseVector z(1);
  ZUpdate(cfg, W, z);
  EXPECT_DOUBLE_EQ(z[0], 2.0);

  cfg.regularizer = Regularizer::kL2;
  cfg.lambda = 1.0;
  ZUpdate(cfg, W, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);  // W / (rho*N + 2*lambda) = 4/4
}

TEST(Prox, YUpdateAndWLocal) {
  const linalg::DenseVector x{1.0, 2.0}, z{0.5, 0.5};
  linalg::DenseVector y{0.0, 1.0};
  YUpdate(2.0, x, z, y);
  EXPECT_EQ(y, (linalg::DenseVector{1.0, 4.0}));
  linalg::DenseVector w(2);
  WLocal(2.0, x, y, w);
  EXPECT_EQ(w, (linalg::DenseVector{3.0, 8.0}));
}

TEST(Prox, ValidationErrors) {
  ZUpdateConfig cfg;
  cfg.rho = 0.0;
  const linalg::DenseVector W{1.0};
  linalg::DenseVector z(1);
  EXPECT_THROW(ZUpdate(cfg, W, z), InvalidArgument);
}

// -------------------------------------------------------------- metrics ----

TEST(Metrics, RelativeErrorDefinition) {
  EXPECT_DOUBLE_EQ(RelativeError(12.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(RelativeError(10.0, 10.0), 0.0);
  EXPECT_THROW(RelativeError(1.0, 0.0), InvalidArgument);
}

TEST(Metrics, AccuracyOnSeparableData) {
  data::SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 10;
  spec.num_test = 200;
  spec.label_noise = 0.0;
  spec.seed = 31;
  const auto gen = data::GenerateSynthetic(spec);
  // The planted separator classifies its own data perfectly.
  EXPECT_DOUBLE_EQ(Accuracy(gen.test, gen.true_weights), 1.0);
  // The negated separator gets everything wrong.
  auto neg = gen.true_weights;
  linalg::Scale(-1.0, neg);
  EXPECT_LT(Accuracy(gen.test, neg), 0.1);
}

TEST(Metrics, GlobalObjectiveIncludesRegularizer) {
  const auto ds = SmallDataset();
  linalg::DenseVector z(ds.num_features(), 0.0);
  const double base = GlobalObjective(ds, z, 5.0);
  z[0] = 1.0;
  const double with_l1 = GlobalObjective(ds, z, 5.0);
  EXPECT_GT(with_l1, 0.0);
  EXPECT_NEAR(with_l1 - (LogisticValue(ds, z)), 5.0, 1e-9);
  EXPECT_GT(base, 0.0);
}

}  // namespace
}  // namespace psra::solver
