// Cross-module integration scenarios: full user workflows exercised end to
// end through the public API, plus randomized invariants that span several
// subsystems at once.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <fstream>
#include <sstream>

#include "psra/psra.hpp"
#include "support/string_util.hpp"

namespace psra {
namespace {

/// Temp-file helper that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& suffix)
      : path_("/tmp/psra_itest_" + std::to_string(::getpid()) + suffix) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------- workflows ----

TEST(Workflow, LibsvmToTrainedCheckpointAndBack) {
  // 1. Generate data and persist it in LIBSVM format (as a user would have
  //    a file on disk).
  data::SyntheticSpec spec;
  spec.num_features = 300;
  spec.num_train = 400;
  spec.num_test = 0;
  spec.mean_row_nnz = 12.0;
  spec.seed = 77;
  const auto gen = data::GenerateSynthetic(spec);
  TempFile svm(".svm");
  data::WriteLibsvmFile(gen.train, svm.path());

  // 2. Load it back, split, partition, train.
  data::LibsvmReadOptions ropt;
  ropt.feature_dim = spec.num_features;
  const auto loaded = data::ReadLibsvmFile(svm.path(), ropt);
  ASSERT_EQ(loaded.num_samples(), 400u);
  auto [train, test] = loaded.Split(320);

  admm::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.workers_per_node = 2;
  const auto problem = admm::BuildProblemFromData(
      "itest", std::move(train), std::move(test), cluster.world_size());

  admm::RunOptions opt;
  opt.max_iterations = 15;
  const auto res = admm::RunAlgorithm("psra-hgadmm", cluster, problem, opt);
  EXPECT_GT(res.final_accuracy, 0.6);

  // 3. Checkpoint the model, reload, and verify identical scoring.
  TempFile model(".model");
  admm::WriteModelFile(admm::FromRunResult(res, problem.lambda, problem.rho),
                       model.path());
  const auto restored = admm::ReadModelFile(model.path());
  EXPECT_DOUBLE_EQ(solver::Accuracy(problem.test, restored.z),
                   res.final_accuracy);
}

TEST(Workflow, ConfigFileDrivesACompleteRun) {
  // Experiment description via the Config layer, as a harness would do.
  TempFile cfg_file(".cfg");
  {
    std::ofstream out(cfg_file.path());
    out << "# integration experiment\n"
        << "nodes = 2\nworkers_per_node = 2\niterations = 8\n"
        << "algorithm = admmlib\nlambda = 0.5\n";
  }
  const auto cfg = Config::FromFile(cfg_file.path());

  admm::ClusterConfig cluster;
  cluster.num_nodes = static_cast<std::uint32_t>(cfg.GetInt("nodes"));
  cluster.workers_per_node =
      static_cast<std::uint32_t>(cfg.GetInt("workers_per_node"));

  data::SyntheticSpec spec;
  spec.num_features = 120;
  spec.num_train = 200;
  spec.num_test = 80;
  spec.mean_row_nnz = 10.0;
  const auto problem = admm::BuildProblem(spec, cluster.world_size(),
                                          cfg.GetDouble("lambda"));
  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(cfg.GetInt("iterations"));
  const auto res = admm::RunAlgorithm(cfg.GetString("algorithm"), cluster,
                                      problem, opt);
  EXPECT_EQ(res.trace.size(), 8u);
  EXPECT_EQ(res.algorithm, "ADMMLib");
}

TEST(Workflow, TraceCsvRoundTripsThroughLibsvmStyleParsing) {
  data::SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 150;
  spec.num_test = 50;
  spec.mean_row_nnz = 8.0;
  admm::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.workers_per_node = 1;
  const auto problem = admm::BuildProblem(spec, cluster.world_size());
  admm::RunOptions opt;
  opt.max_iterations = 5;
  const auto res = admm::RunAlgorithm("psra-admm", cluster, problem, opt);

  std::ostringstream os;
  res.WriteTraceCsv(os);
  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  std::size_t rows = 0;
  std::string line;
  while (std::getline(is, line)) {
    const auto cells = Split(line, ',');
    ASSERT_EQ(cells.size(), Split(header, ',').size());
    // iteration column parses as an integer, objective as double.
    EXPECT_GT(ParseInt(cells[1]), 0);
    EXPECT_GT(ParseDouble(cells[2]), 0.0);
    ++rows;
  }
  EXPECT_EQ(rows, 5u);
}

// ------------------------------------------------ cross-module invariants ----

/// All synchronous algorithms must agree that more L1 regularization means
/// sparser consensus models.
TEST(Invariant, StrongerL1YieldsSparserModels) {
  data::SyntheticSpec spec;
  spec.num_features = 200;
  spec.num_train = 300;
  spec.num_test = 50;
  spec.mean_row_nnz = 10.0;
  admm::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.workers_per_node = 2;
  admm::RunOptions opt;
  opt.max_iterations = 20;

  std::size_t prev_nnz = SIZE_MAX;
  for (const double lambda : {0.1, 1.0, 5.0}) {
    const auto problem =
        admm::BuildProblem(spec, cluster.world_size(), lambda);
    const auto res = admm::RunAlgorithm("psra-hgadmm", cluster, problem, opt);
    const std::size_t nnz = linalg::CountNonzeros(res.final_z, 1e-12);
    EXPECT_LE(nnz, prev_nnz) << "lambda " << lambda;
    prev_nnz = nnz;
  }
}

/// Virtual-time sanity across every algorithm: time ledgers only grow, the
/// makespan dominates both mean times, and traces are monotone in
/// iteration number.
class LedgerSanity : public ::testing::TestWithParam<const char*> {};

TEST_P(LedgerSanity, TimesAreCoherent) {
  data::SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 160;
  spec.num_test = 40;
  spec.mean_row_nnz = 8.0;
  admm::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.workers_per_node = 2;
  const auto problem = admm::BuildProblem(spec, cluster.world_size());
  admm::RunOptions opt;
  opt.max_iterations = 6;
  const auto res = admm::RunAlgorithm(GetParam(), cluster, problem, opt);

  EXPECT_GT(res.total_cal_time, 0.0);
  EXPECT_GE(res.total_comm_time, 0.0);
  EXPECT_GE(res.makespan, res.total_cal_time);
  simnet::VirtualTime prev_cal = 0.0, prev_comm = 0.0;
  std::uint64_t prev_iter = 0;
  for (const auto& rec : res.trace) {
    EXPECT_GT(rec.iteration, prev_iter);
    EXPECT_GE(rec.cal_time, prev_cal);
    EXPECT_GE(rec.comm_time, prev_comm - 1e-15);
    prev_iter = rec.iteration;
    prev_cal = rec.cal_time;
    prev_comm = rec.comm_time;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, LedgerSanity,
                         ::testing::Values("psra-hgadmm", "psra-admm",
                                           "hgadmm-nogroup", "admmlib",
                                           "ad-admm", "gadmm"));

/// Stragglers can only increase virtual times, never change the math:
/// the same seed with/without stragglers yields the same model for BSP
/// algorithms (stragglers affect the clock, not the values).
TEST(Invariant, StragglersSlowButDontChangeBspResults) {
  data::SyntheticSpec spec;
  spec.num_features = 100;
  spec.num_train = 160;
  spec.num_test = 40;
  spec.mean_row_nnz = 8.0;

  admm::ClusterConfig fast;
  fast.num_nodes = 4;
  fast.workers_per_node = 1;
  auto slow = fast;
  slow.straggler.node_probability = 0.4;
  slow.straggler.slow_factor_min = 4.0;
  slow.straggler.slow_factor_max = 8.0;

  const auto problem = admm::BuildProblem(spec, fast.world_size());
  admm::RunOptions opt;
  opt.max_iterations = 8;

  // Full barrier: group membership is fixed, so straggling cannot change
  // the computed model — only the clock.
  admm::PsraConfig a;
  a.cluster = fast;
  a.grouping = admm::GroupingMode::kHierarchical;
  admm::PsraConfig b = a;
  b.cluster = slow;

  const auto ra = admm::PsraHgAdmm(a).Run(problem, opt);
  const auto rb = admm::PsraHgAdmm(b).Run(problem, opt);
  EXPECT_DOUBLE_EQ(ra.final_objective, rb.final_objective);
  EXPECT_GT(rb.SystemTime(), ra.SystemTime());
}

}  // namespace
}  // namespace psra
