// psra_launch: run a worker binary as N ranks over the TCP transport.
//
//   psra_launch --ranks 4 [--timeout 120] [--trace-dir DIR]
//               -- ./worker --flag ...
//
// The launcher binds the rendezvous listener on an ephemeral port BEFORE
// forking (no port race), then forks N children. Each child execs the
// worker with the transport environment set:
//
//   PSRA_RANK       this rank (0 .. N-1)
//   PSRA_WORLD      N
//   PSRA_PORT       rank 0's rendezvous port
//   PSRA_LISTEN_FD  (rank 0 only) the inherited pre-bound listener fd
//   PSRA_TRACE_DIR  (with --trace-dir) where workers put run artifacts —
//                   relative --trace-out/--metrics-out paths land there
//
// Every "%r" in the pass-through worker args is replaced with the child's
// rank ("%%" escapes a literal '%'), so per-rank output files need no
// wrapper script:
//
//   psra_launch --ranks 4 -- ./worker --log worker_%r.log
//
// Workers construct their transport with TcpOptions::FromEnv(). The
// launcher exits 0 iff every rank exited 0; stragglers past --timeout are
// killed and reported.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "transport/tcp.hpp"

namespace {

/// Expands "%r" to the rank and "%%" to a literal '%'; any other '%' passes
/// through unchanged (so printf-style worker flags keep working).
std::string ExpandRank(const char* arg, std::int64_t rank) {
  std::string out;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p == '%' && p[1] == 'r') {
      out += std::to_string(rank);
      ++p;
    } else if (*p == '%' && p[1] == '%') {
      out += '%';
      ++p;
    } else {
      out += *p;
    }
  }
  return out;
}

int Run(int argc, char** argv) {
  // Split "launcher flags -- worker command".
  int split = argc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      split = i;
      break;
    }
  }
  psra::CliParser cli("psra_launch",
                      "Runs a worker binary as N ranks over TCP sockets");
  std::int64_t ranks = 4;
  double timeout_s = 120.0;
  std::string trace_dir;
  cli.AddInt("ranks", &ranks, "number of worker processes");
  cli.AddDouble("timeout", &timeout_s, "seconds before stragglers are killed");
  cli.AddString("trace-dir", &trace_dir,
                "exported to workers as PSRA_TRACE_DIR (artifact directory)");
  if (!cli.Parse(split, argv)) return 0;
  if (split >= argc - 1) {
    std::fprintf(stderr, "usage: psra_launch --ranks N -- <worker> [args]\n");
    return 2;
  }
  if (ranks < 1 || ranks > 1024) {
    std::fprintf(stderr, "psra_launch: --ranks must be in [1, 1024]\n");
    return 2;
  }
  char** worker_argv = argv + split + 1;

  std::uint16_t port = 0;
  const int listener = psra::transport::BindListener(port, 0);

  std::vector<pid_t> pids(static_cast<std::size_t>(ranks), -1);
  for (std::int64_t r = 0; r < ranks; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      for (pid_t p : pids) {
        if (p > 0) kill(p, SIGKILL);
      }
      return 1;
    }
    if (pid == 0) {
      setenv("PSRA_RANK", std::to_string(r).c_str(), 1);
      setenv("PSRA_WORLD", std::to_string(ranks).c_str(), 1);
      setenv("PSRA_PORT", std::to_string(port).c_str(), 1);
      if (!trace_dir.empty()) setenv("PSRA_TRACE_DIR", trace_dir.c_str(), 1);
      if (r == 0) {
        setenv("PSRA_LISTEN_FD", std::to_string(listener).c_str(), 1);
      } else {
        unsetenv("PSRA_LISTEN_FD");
        close(listener);
      }
      // Per-rank arg expansion (%r -> rank). The strings must outlive
      // execvp's argv, but exec never returns on success, so locals are
      // fine.
      std::vector<std::string> expanded;
      std::vector<char*> child_argv;
      for (char** a = worker_argv; *a != nullptr; ++a) {
        expanded.push_back(ExpandRank(*a, r));
      }
      for (std::string& s : expanded) child_argv.push_back(s.data());
      child_argv.push_back(nullptr);
      execvp(child_argv[0], child_argv.data());
      std::perror(child_argv[0]);
      _exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }
  close(listener);

  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  std::vector<int> codes(static_cast<std::size_t>(ranks), -1);
  std::size_t live = static_cast<std::size_t>(ranks);
  bool killed = false;
  while (live > 0) {
    bool reaped = false;
    for (std::size_t r = 0; r < pids.size(); ++r) {
      if (codes[r] != -1) continue;
      int status = 0;
      if (waitpid(pids[r], &status, WNOHANG) == pids[r]) {
        codes[r] = WIFEXITED(status)
                       ? WEXITSTATUS(status)
                       : WIFSIGNALED(status) ? 128 + WTERMSIG(status) : 254;
        --live;
        reaped = true;
      }
    }
    if (live == 0) break;
    if (!killed && Clock::now() >= deadline) {
      std::fprintf(stderr, "psra_launch: timeout, killing stragglers\n");
      for (std::size_t r = 0; r < pids.size(); ++r) {
        if (codes[r] == -1) kill(pids[r], SIGKILL);
      }
      killed = true;
    }
    if (!reaped) usleep(5'000);
  }

  int rc = 0;
  for (std::size_t r = 0; r < codes.size(); ++r) {
    if (codes[r] != 0) {
      std::fprintf(stderr, "psra_launch: rank %zu exited %d\n", r, codes[r]);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psra_launch: %s\n", e.what());
    return 1;
  }
}
