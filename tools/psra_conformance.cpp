// psra_conformance: cross-backend conformance checker over real TCP
// sockets, one OS process per rank. Every rank derives the same
// deterministic inputs, runs the omniscient simulator locally as the
// reference, then runs the wire collectives over the transport and dies
// nonzero on any divergence: reduced values must match BITWISE, per-rank
// rounds must equal the simulator's, and rank 0 aggregates every rank's
// WireStats (shipped over the transport itself) to check the traffic
// counters (elements/messages/bytes) exactly.
//
// Two modes:
//   psra_conformance --ranks 8 [--dim 103]   self-forks via ForkRanks
//   PSRA_RANK=... psra_conformance           env-mode worker, for use
//                                            under tools/psra_launch:
//   psra_launch --ranks 4 -- ./psra_conformance --dim 103
//
// Covers psr/ring/naive x dense/sparse (plus empty-contribution sparse
// variants) and — when the world size is a multiple of 2 and >= 4 — the
// hierarchical rack/root/redistribute decomposition.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "comm/collective.hpp"
#include "comm/hierarchical.hpp"
#include "comm/transport.hpp"
#include "comm/wire_allreduce.hpp"
#include "comm/wire_obs.hpp"
#include "obs/wire.hpp"
#include "support/artifact_path.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "transport/launch.hpp"
#include "transport/tcp.hpp"

namespace {

using psra::comm::AllreduceKind;
using psra::comm::CommStats;
using psra::comm::GroupComm;
using psra::comm::Transport;
using psra::comm::TransportError;
using psra::comm::WireCollectives;
using psra::comm::WireStats;
using psra::linalg::DenseVector;
using psra::linalg::SparseVector;
using psra::simnet::Rank;
using psra::simnet::VirtualTime;
using psra::transport::TcpOptions;
using psra::transport::TcpTransport;

// Stats frames ride tags far above the wire collectives' epoch-derived
// range but still below Transport::kMaxCollectiveTag (the obs collection
// plane owns [kMaxCollectiveTag, kMaxUserTag)).
constexpr Transport::Tag kStatsBase = 0xFFFC0000u;

const char* AlgKey(AllreduceKind kind) {
  switch (kind) {
    case AllreduceKind::kPsr: return "psr";
    case AllreduceKind::kRing: return "ring";
    case AllreduceKind::kNaive: return "naive";
    default: return "other";
  }
}

DenseVector MakeDense(std::uint32_t rank, std::uint64_t dim) {
  psra::Rng rng(1234 + rank);
  DenseVector v(dim);
  for (auto& x : v) x = rng.NextDouble(-1.0, 1.0);
  return v;
}

SparseVector MakeSparse(std::uint32_t rank, std::uint64_t dim,
                        bool with_empty) {
  if (with_empty && rank == 0) return SparseVector(dim, {}, {});
  psra::Rng rng(99 + rank);
  std::vector<SparseVector::Index> idx;
  std::vector<double> val;
  for (std::uint64_t i = 0; i < dim; ++i) {
    if (rng.NextDouble() < 0.34) {
      idx.push_back(i);
      val.push_back(rng.NextDouble(-2.0, 2.0));
    }
  }
  return SparseVector(dim, std::move(idx), std::move(val));
}

bool BitwiseEqual(const DenseVector& a, const DenseVector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool BitwiseEqual(const SparseVector& a, const SparseVector& b) {
  return a.dim() == b.dim() && a.nnz() == b.nnz() &&
         std::equal(a.indices().begin(), a.indices().end(),
                    b.indices().begin()) &&
         (a.nnz() == 0 ||
          std::memcmp(a.values().data(), b.values().data(),
                      a.nnz() * sizeof(double)) == 0);
}

struct SimSide {
  explicit SimSide(std::uint32_t n, std::uint32_t racks = 1)
      : topo(n, 1, racks), cost(psra::simnet::CostModelConfig{}),
        group(MakeGroup(n)) {}

  GroupComm MakeGroup(std::uint32_t n) {
    std::vector<Rank> members(n);
    for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
    return GroupComm(&topo, &cost, members);
  }

  psra::simnet::Topology topo;
  psra::simnet::CostModel cost;
  GroupComm group;
};

std::vector<Transport::Rank> AllRanks(std::uint32_t n) {
  std::vector<Transport::Rank> m(n);
  for (std::uint32_t i = 0; i < n; ++i) m[i] = i;
  return m;
}

struct Case {
  AllreduceKind kind;
  bool sparse;
  bool with_empty;
  const char* name;
};

constexpr Case kFlatCases[] = {
    {AllreduceKind::kPsr, false, false, "psr_dense"},
    {AllreduceKind::kPsr, true, false, "psr_sparse"},
    {AllreduceKind::kPsr, true, true, "psr_sparse_empty"},
    {AllreduceKind::kRing, false, false, "ring_dense"},
    {AllreduceKind::kRing, true, false, "ring_sparse"},
    {AllreduceKind::kNaive, false, false, "naive_dense"},
    {AllreduceKind::kNaive, true, false, "naive_sparse"},
    {AllreduceKind::kNaive, true, true, "naive_sparse_empty"},
};

void Fail(const char* case_name, const char* what) {
  throw TransportError(std::string("conformance [") + case_name + "]: " +
                       what);
}

/// Ships {elements, messages, bytes} to rank 0 and checks the aggregate
/// against the simulator's totals there.
void CheckAggregateTraffic(Transport& t, std::uint32_t world,
                           Transport::Tag tag, const WireStats& mine,
                           const CommStats& sim_stats,
                           const char* case_name) {
  if (t.rank() == 0) {
    std::size_t elems = mine.elements_sent, msgs = mine.messages_sent,
                bytes = mine.bytes_sent;
    std::vector<std::byte> buf;
    for (std::uint32_t r = 1; r < world; ++r) {
      t.Recv(r, tag, buf);
      std::size_t triple[3];
      std::memcpy(triple, buf.data(), sizeof(triple));
      elems += triple[0];
      msgs += triple[1];
      bytes += triple[2];
    }
    if (elems != sim_stats.elements_sent) Fail(case_name, "aggregate elements");
    if (msgs != sim_stats.messages_sent) Fail(case_name, "aggregate messages");
    if (bytes != sim_stats.bytes_sent) Fail(case_name, "aggregate bytes");
  } else {
    const std::size_t triple[3] = {mine.elements_sent, mine.messages_sent,
                                   mine.bytes_sent};
    t.Post(0, tag, std::as_bytes(std::span<const std::size_t>(triple)));
  }
}

void RunFlatCase(Transport& t, WireCollectives& wc, const Case& c,
                 std::uint32_t world, std::uint64_t dim,
                 Transport::Tag stats_tag, psra::obs::WireObs* obs) {
  SimSide sim(world);
  const std::vector<VirtualTime> starts(world, 0.0);
  const auto alg = psra::comm::MakeAllreduce(c.kind);
  const auto members = AllRanks(world);
  psra::comm::AllreduceScratch scratch;
  CommStats sim_stats;
  WireStats st;

  if (c.sparse) {
    std::vector<SparseVector> inputs;
    for (std::uint32_t r = 0; r < world; ++r) {
      inputs.push_back(MakeSparse(r, dim, c.with_empty));
    }
    SparseVector expected;
    alg->ReduceSparse(sim.group, inputs, starts, scratch, expected, sim_stats);
    SparseVector out;
    wc.AllreduceSparse(c.kind, members, inputs[t.rank()], out, st);
    if (!BitwiseEqual(out, expected)) Fail(c.name, "sparse value mismatch");
  } else {
    std::vector<DenseVector> inputs;
    for (std::uint32_t r = 0; r < world; ++r) {
      inputs.push_back(MakeDense(r, dim));
    }
    DenseVector expected;
    alg->ReduceDense(sim.group, inputs, starts, scratch, expected, sim_stats);
    DenseVector out;
    wc.AllreduceDense(c.kind, members, inputs[t.rank()], out, st);
    if (!BitwiseEqual(out, expected)) Fail(c.name, "dense value mismatch");
  }
  if (st.rounds != sim_stats.rounds) Fail(c.name, "rounds mismatch");
  CheckAggregateTraffic(t, world, stats_tag, st, sim_stats, c.name);

  if (obs != nullptr) {
    // Measured traffic per rank: MergeFrom on rank 0 sums these across the
    // world, so the aggregate must equal the simulator's totals exactly —
    // the sim.* reference counters (global, published once on rank 0) are
    // what psra_report --assert-wire compares against.
    auto& m = obs->metrics();
    const std::string base = std::string("comm.allreduce.") + AlgKey(c.kind);
    m.Counter(base + ".invocations") += 1;
    m.Counter(base + ".elements") += st.elements_sent;
    m.Counter(base + ".messages") += st.messages_sent;
    m.Counter(base + ".bytes") += st.bytes_sent;
    if (t.rank() == 0) {
      // Per-rank rounds equal the simulator's phase count for flat
      // collectives, so rank 0's value IS the global figure.
      m.Counter(base + ".rounds") += st.rounds;
      m.Counter("sim." + base + ".elements") += sim_stats.elements_sent;
      m.Counter("sim." + base + ".messages") += sim_stats.messages_sent;
      m.Counter("sim." + base + ".bytes") += sim_stats.bytes_sent;
      m.Counter("sim." + base + ".rounds") += sim_stats.rounds;
    }
  }
}

/// Hierarchical conformance: racks of 2 over the whole world, PSR at both
/// levels (the paper's headline configuration), dense and sparse. Rank 0
/// aggregates the full per-stage stats 7-tuple.
void RunHierarchicalCase(Transport& t, WireCollectives& wc, bool sparse,
                         std::uint32_t world, std::uint64_t dim,
                         Transport::Tag stats_tag, const char* case_name,
                         psra::obs::WireObs* obs) {
  const std::uint32_t per_rack = 2, racks = world / per_rack;
  SimSide sim(world, racks);
  std::vector<Rank> members(world);
  for (std::uint32_t i = 0; i < world; ++i) members[i] = i;
  psra::comm::MultiLevelAllreduce ml(&sim.topo, &sim.cost, members);
  const auto alg = psra::comm::MakeAllreduce(AllreduceKind::kPsr);
  const std::vector<VirtualTime> starts(world, 0.0);
  psra::comm::AllreduceScratch scratch;
  CommStats sim_stats;
  WireStats st;
  const auto wire_members = AllRanks(world);

  if (sparse) {
    std::vector<SparseVector> inputs;
    for (std::uint32_t r = 0; r < world; ++r) {
      inputs.push_back(MakeSparse(r, dim, /*with_empty=*/true));
    }
    SparseVector expected;
    ml.ReduceSparse(*alg, inputs, starts, scratch, expected, sim_stats);
    SparseVector out;
    wc.MultiLevelSparse(AllreduceKind::kPsr, wire_members, per_rack,
                        inputs[t.rank()], out, st);
    if (!BitwiseEqual(out, expected)) Fail(case_name, "value mismatch");
  } else {
    std::vector<DenseVector> inputs;
    for (std::uint32_t r = 0; r < world; ++r) {
      inputs.push_back(MakeDense(r, dim));
    }
    DenseVector expected;
    ml.ReduceDense(*alg, inputs, starts, scratch, expected, sim_stats);
    DenseVector out;
    wc.MultiLevelDense(AllreduceKind::kPsr, wire_members, per_rack,
                       inputs[t.rank()], out, st);
    if (!BitwiseEqual(out, expected)) Fail(case_name, "value mismatch");
  }

  if (t.rank() == 0) {
    // tuple = {elements, messages, bytes, rack_rounds, root_rounds,
    //          redist_elements, redist_messages}
    std::size_t elems = st.elements_sent, msgs = st.messages_sent,
                bytes = st.bytes_sent, rounds = 0,
                redist_e = st.redist_elements, redist_m = st.redist_messages;
    rounds += st.rack_rounds + st.root_rounds;  // rank 0 is a rack leader
    std::vector<std::byte> buf;
    for (std::uint32_t r = 1; r < world; ++r) {
      t.Recv(r, stats_tag, buf);
      std::size_t tup[7];
      std::memcpy(tup, buf.data(), sizeof(tup));
      elems += tup[0];
      msgs += tup[1];
      bytes += tup[2];
      if (r % per_rack == 0) rounds += tup[3];  // rack leaders only
      redist_e += tup[5];
      redist_m += tup[6];
    }
    if (elems != sim_stats.elements_sent) Fail(case_name, "aggregate elements");
    if (msgs != sim_stats.messages_sent) Fail(case_name, "aggregate messages");
    if (bytes != sim_stats.bytes_sent) Fail(case_name, "aggregate bytes");
    if (rounds != sim_stats.rounds) Fail(case_name, "aggregate rounds");
    if (redist_e != ml.redistribution_elements()) {
      Fail(case_name, "redistribution elements");
    }
    if (redist_m != ml.redistribution_messages()) {
      Fail(case_name, "redistribution messages");
    }
    if (obs != nullptr) {
      auto& m = obs->metrics();
      m.Counter("comm.allreduce.psr_ml.rounds") += rounds;
      m.Counter("sim.comm.allreduce.psr_ml.elements") +=
          sim_stats.elements_sent;
      m.Counter("sim.comm.allreduce.psr_ml.messages") +=
          sim_stats.messages_sent;
      m.Counter("sim.comm.allreduce.psr_ml.bytes") += sim_stats.bytes_sent;
      m.Counter("sim.comm.allreduce.psr_ml.rounds") += sim_stats.rounds;
      m.Counter("sim.comm.rack.bcast.elements") +=
          ml.redistribution_elements();
      m.Counter("sim.comm.rack.bcast.messages") +=
          ml.redistribution_messages();
    }
  } else {
    const std::size_t tup[7] = {st.elements_sent,   st.messages_sent,
                                st.bytes_sent,      st.rack_rounds,
                                st.root_rounds,     st.redist_elements,
                                st.redist_messages};
    t.Post(0, stats_tag, std::as_bytes(std::span<const std::size_t>(tup)));
  }
  if (obs != nullptr) {
    auto& m = obs->metrics();
    m.Counter("comm.allreduce.psr_ml.invocations") += 1;
    m.Counter("comm.allreduce.psr_ml.elements") += st.elements_sent;
    m.Counter("comm.allreduce.psr_ml.messages") += st.messages_sent;
    m.Counter("comm.allreduce.psr_ml.bytes") += st.bytes_sent;
    m.Counter("comm.rack.bcast.elements") += st.redist_elements;
    m.Counter("comm.rack.bcast.messages") += st.redist_messages;
  }
}

int RunWorker(const TcpOptions& opt, std::uint64_t dim,
              const std::string& trace_out, const std::string& metrics_out) {
  TcpTransport t(opt);
  SimSide pricing_side(opt.world);
  // Tracing is always on here: the conformance run doubles as the
  // acceptance fixture for the wire observability plane, and the overhead
  // is irrelevant at this scale.
  psra::obs::WireObs obs(opt.rank);
  t.AttachObs(&obs);
  WireCollectives wc(t, pricing_side.group.pricing(), &obs);
  std::uint32_t cases = 0;
  for (const Case& c : kFlatCases) {
    RunFlatCase(t, wc, c, opt.world, dim, kStatsBase + cases, &obs);
    if (opt.rank == 0) {
      std::fprintf(stderr, "psra_conformance: %-18s ok\n", c.name);
    }
    ++cases;
  }
  if (opt.world >= 4 && opt.world % 2 == 0) {
    RunHierarchicalCase(t, wc, /*sparse=*/false, opt.world, dim,
                        kStatsBase + cases, "hier_psr_dense", &obs);
    if (opt.rank == 0) {
      std::fprintf(stderr, "psra_conformance: %-18s ok\n", "hier_psr_dense");
    }
    ++cases;
    RunHierarchicalCase(t, wc, /*sparse=*/true, opt.world, dim,
                        kStatsBase + cases, "hier_psr_sparse", &obs);
    if (opt.rank == 0) {
      std::fprintf(stderr, "psra_conformance: %-18s ok\n", "hier_psr_sparse");
    }
    ++cases;
  }
  if (opt.rank == 0) {
    // Run summary (required by the metrics schema) on rank 0 only so the
    // MergeFrom aggregation keeps single-valued semantics.
    const double makespan = obs.Now();
    obs.metrics().Counter("engine.iterations") += cases;
    obs.metrics().Gauge("run.makespan_s") = makespan;
    obs.metrics().Gauge("run.cal_time_s") = 0.0;
    obs.metrics().Gauge("run.comm_time_s") = makespan;
    obs.metrics().Gauge("run.iterations") = static_cast<double>(cases);
  }

  // Collection plane: fences, estimates clock offsets, ships every rank's
  // trace + registry to rank 0.
  psra::comm::WireObsBundle bundle;
  const bool root = psra::comm::CollectWireObs(t, obs, &bundle);
  if (root && !trace_out.empty()) {
    const std::string path = psra::ResolveArtifactPath(trace_out);
    std::ofstream os(path);
    if (!os) throw psra::IoError("cannot write " + path);
    psra::obs::WriteMergedWireTrace(bundle.ranks, os);
  }
  if (root && !metrics_out.empty()) {
    const std::string path = psra::ResolveArtifactPath(metrics_out);
    std::ofstream os(path);
    if (!os) throw psra::IoError("cannot write " + path);
    bundle.metrics.WriteJson(os);
  }
  if (opt.rank == 0) {
    std::printf("psra_conformance: OK (%u ranks, %u cases, dim %llu)\n",
                opt.world, cases,
                static_cast<unsigned long long>(dim));
  }
  return 0;
}

int Run(int argc, char** argv) {
  psra::CliParser cli("psra_conformance",
                      "Multi-process TCP conformance vs the simulator");
  std::int64_t ranks = 4;
  std::int64_t dim = 103;
  std::string trace_out;
  std::string metrics_out;
  cli.AddInt("ranks", &ranks, "world size when self-forking (ignored in "
                              "env-worker mode)");
  cli.AddInt("dim", &dim, "vector dimension for every collective");
  cli.AddString("trace-out", &trace_out,
                "merged Chrome trace path written by rank 0 (relative paths "
                "land under $PSRA_TRACE_DIR; empty = no artifact)");
  cli.AddString("metrics-out", &metrics_out,
                "aggregated metrics JSON path written by rank 0 (same path "
                "rules; empty = no artifact)");
  if (!cli.Parse(argc, argv)) return 0;
  if (dim < 1) {
    std::fprintf(stderr, "psra_conformance: --dim must be >= 1\n");
    return 2;
  }

  if (std::getenv("PSRA_RANK") != nullptr) {
    // Worker under tools/psra_launch.
    return RunWorker(TcpOptions::FromEnv(), static_cast<std::uint64_t>(dim),
                     trace_out, metrics_out);
  }
  if (ranks < 1 || ranks > 64) {
    std::fprintf(stderr, "psra_conformance: --ranks must be in [1, 64]\n");
    return 2;
  }
  const auto result = psra::transport::ForkRanks(
      static_cast<std::uint32_t>(ranks), [&](const TcpOptions& opt) {
        RunWorker(opt, static_cast<std::uint64_t>(dim), trace_out,
                  metrics_out);
      });
  if (!result.AllZero()) {
    std::fprintf(stderr, "psra_conformance: FAILED exit codes:");
    for (int c : result.exit_codes) std::fprintf(stderr, " %d", c);
    std::fprintf(stderr, "\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psra_conformance: %s\n", e.what());
    return 1;
  }
}
