// Run-report analyzer: turns --trace-out / --metrics-out artifacts into the
// paper's answers.
//
//   psra_report --trace OBS_trace.json --metrics OBS_metrics.json
//               [--out report.md] [--csv report.csv]
//   psra_report --diff --trace A_trace.json --trace-b B_trace.json
//               [--metrics A_metrics.json --metrics-b B_metrics.json]
//               [--out diff.md]
//
// Diff mode treats the --trace/--metrics pair as run A (baseline) and the
// --trace-b/--metrics-b pair as run B (candidate), and emits per-phase and
// per-class virtual/wall deltas plus every metrics counter that changed —
// the before/after evidence for a performance PR.
//
// The markdown report carries the per-phase time breakdown (compute vs.
// communicate vs. wait), the per-iteration critical path, per-worker
// straggler skew, wall-vs-virtual ratios, and — when a metrics.json is
// given — the eq. 11-16 bytes-on-wire table across collectives.
//
// --assert-fig6 turns the report into a gate for the bench_fig6 artifact
// pair: the PSR collective must beat Ring on bytes-on-wire and the trace
// must attribute a nonzero share to communicate-class phases; either
// failure exits nonzero so CI catches a comms regression, not a dashboard.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw psra::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteTo(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw psra::IoError("cannot write " + path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psra;

  std::string trace_path, metrics_path, out_path, csv_path;
  std::string trace_b_path, metrics_b_path;
  bool assert_fig6 = false, diff = false;
  CliParser cli("psra_report",
                "analyze --trace-out/--metrics-out run artifacts");
  cli.AddString("trace", &trace_path, "trace.json artifact (Chrome format)");
  cli.AddString("metrics", &metrics_path, "metrics.json artifact");
  cli.AddString("out", &out_path, "markdown report path (default: stdout)");
  cli.AddString("csv", &csv_path, "machine-readable CSV report path");
  cli.AddBool("assert-fig6", &assert_fig6,
              "fail unless PSR < Ring bytes and communicate share > 0");
  cli.AddBool("diff", &diff,
              "compare two runs: --trace/--metrics (A) vs --trace-b/"
              "--metrics-b (B)");
  cli.AddString("trace-b", &trace_b_path, "candidate trace for --diff");
  cli.AddString("metrics-b", &metrics_b_path, "candidate metrics for --diff");
  if (!cli.Parse(argc, argv)) return 0;

  try {
    if (diff) {
      if (trace_path.empty() || trace_b_path.empty()) {
        std::cerr << "psra_report: --diff needs --trace (A) and --trace-b"
                     " (B)\n";
        return 2;
      }
      if (metrics_path.empty() != metrics_b_path.empty()) {
        std::cerr << "psra_report: --diff needs --metrics and --metrics-b"
                     " together (or neither)\n";
        return 2;
      }
      const obs::TraceReport a =
          obs::AnalyzeTrace(obs::LoadChromeTrace(ReadFile(trace_path)));
      const obs::TraceReport b =
          obs::AnalyzeTrace(obs::LoadChromeTrace(ReadFile(trace_b_path)));
      obs::MetricsRegistry ma, mb;
      const bool have_metrics = !metrics_path.empty();
      if (have_metrics) {
        ma = obs::MetricsFromJson(ReadFile(metrics_path));
        mb = obs::MetricsFromJson(ReadFile(metrics_b_path));
      }
      std::ostringstream md;
      obs::WriteReportDiffMarkdown(a, b, have_metrics ? &ma : nullptr,
                                   have_metrics ? &mb : nullptr, md);
      if (out_path.empty()) {
        std::cout << md.str();
      } else {
        WriteTo(out_path, md.str());
        std::cout << "diff: " << out_path << "\n";
      }
      return 0;
    }
    if (trace_path.empty() && metrics_path.empty()) {
      std::cerr << "psra_report: need --trace and/or --metrics\n";
      return 2;
    }
    obs::TraceReport report;
    if (!trace_path.empty()) {
      report = obs::AnalyzeTrace(obs::LoadChromeTrace(ReadFile(trace_path)));
    }
    obs::MetricsRegistry metrics;
    const bool have_metrics = !metrics_path.empty();
    if (have_metrics) metrics = obs::MetricsFromJson(ReadFile(metrics_path));

    std::ostringstream md;
    obs::WriteReportMarkdown(report, have_metrics ? &metrics : nullptr, md);
    if (out_path.empty()) {
      std::cout << md.str();
    } else {
      WriteTo(out_path, md.str());
      std::cout << "report: " << out_path << "\n";
    }
    if (!csv_path.empty()) {
      std::ostringstream csv;
      obs::WriteReportCsv(report, csv);
      WriteTo(csv_path, csv.str());
      std::cout << "csv: " << csv_path << "\n";
    }

    if (assert_fig6) {
      int failures = 0;
      const auto& counters = metrics.counters();
      const auto psr = counters.find("comm.allreduce.psr.bytes");
      const auto ring = counters.find("comm.allreduce.ring.bytes");
      if (!have_metrics || psr == counters.end() || ring == counters.end()) {
        std::cerr << "assert-fig6: psr/ring bytes counters missing\n";
        ++failures;
      } else if (psr->second >= ring->second) {
        std::cerr << "assert-fig6: PSR bytes (" << psr->second
                  << ") not below Ring bytes (" << ring->second << ")\n";
        ++failures;
      }
      if (trace_path.empty() ||
          report.class_virtual_s[static_cast<std::size_t>(
              obs::PhaseClass::kCommunicate)] <= 0.0) {
        std::cerr << "assert-fig6: no communicate-class time in trace\n";
        ++failures;
      }
      if (failures != 0) return 1;
      std::cout << "assert-fig6 OK: PSR < Ring bytes-on-wire, communicate"
                   " share nonzero\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "psra_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
