// Run-report analyzer: turns --trace-out / --metrics-out artifacts into the
// paper's answers.
//
//   psra_report --trace OBS_trace.json --metrics OBS_metrics.json
//               [--out report.md] [--csv report.csv]
//   psra_report --wire --trace OBS_wire_trace.json
//               --metrics OBS_wire_metrics.json [--assert-wire]
//   psra_report --diff --trace A_trace.json --trace-b B_trace.json
//               [--metrics A_metrics.json --metrics-b B_metrics.json]
//               [--out diff.md]
//   psra_report --timeline OBS_timeline.jsonl [--tol 1e-1,1e-2,...]
//               [--metrics OBS_metrics.json] [--assert-timeline]
//               [--timeline-b candidate.jsonl] [--out timeline.md]
//
// --timeline reads a --timeline-out JSONL artifact (the convergence
// telemetry plane, DESIGN.md §13) and reports the convergence curve:
// per-series first/last/min/max, iterations-to-tolerance at the --tol
// thresholds, stall/divergence health, the rho trajectory, and the
// bytes-vs-residual efficiency table. With --timeline-b it diffs two
// timelines instead. --assert-timeline gates the artifact: rows must exist,
// recorded iterations must ascend by exactly 1, tolerance crossings must be
// monotone (a tighter tolerance can never cross earlier), no residual
// series may have diverged, and — when --metrics is given — the recorder's
// last iteration must equal the run.iterations gauge exactly, which pins
// the recorded timeline to what the simulator says actually ran.
//
// --wire reads a MERGED wire-run artifact pair (rank 0's output from the
// observability collection plane): per-rank phase breakdown, rank
// skew/straggler table, send->recv edge matching across rank lanes, and the
// wire.* transport metrics. --assert-wire gates it: every sim.* reference
// counter must equal its measured counterpart exactly, measured PSR must
// beat Ring on bytes-per-invocation, the trace must carry >= 2 rank lanes,
// and every recorded wire_post must have found its matching wire_recv.
//
// Diff mode treats the --trace/--metrics pair as run A (baseline) and the
// --trace-b/--metrics-b pair as run B (candidate), and emits per-phase and
// per-class virtual/wall deltas plus every metrics counter that changed —
// the before/after evidence for a performance PR.
//
// The markdown report carries the per-phase time breakdown (compute vs.
// communicate vs. wait), the per-iteration critical path, per-worker
// straggler skew, wall-vs-virtual ratios, and — when a metrics.json is
// given — the eq. 11-16 bytes-on-wire table across collectives.
//
// --assert-fig6 turns the report into a gate for the bench_fig6 artifact
// pair: the PSR collective must beat Ring on bytes-on-wire and the trace
// must attribute a nonzero share to communicate-class phases; either
// failure exits nonzero so CI catches a comms regression, not a dashboard.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw psra::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteTo(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw psra::IoError("cannot write " + path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psra;

  std::string trace_path, metrics_path, out_path, csv_path;
  std::string trace_b_path, metrics_b_path;
  std::string timeline_path, timeline_b_path;
  std::string tol_spec = "1e-1,1e-2,1e-3,1e-4";
  bool assert_fig6 = false, diff = false, wire = false, assert_wire = false;
  bool assert_timeline = false;
  CliParser cli("psra_report",
                "analyze --trace-out/--metrics-out run artifacts");
  cli.AddString("trace", &trace_path, "trace.json artifact (Chrome format)");
  cli.AddString("metrics", &metrics_path, "metrics.json artifact");
  cli.AddString("out", &out_path, "markdown report path (default: stdout)");
  cli.AddString("csv", &csv_path, "machine-readable CSV report path");
  cli.AddBool("assert-fig6", &assert_fig6,
              "fail unless PSR < Ring bytes and communicate share > 0");
  cli.AddBool("wire", &wire,
              "treat the artifacts as a merged wire run (per-rank lanes, "
              "edge matching, wire.* metrics)");
  cli.AddBool("assert-wire", &assert_wire,
              "with --wire: fail unless sim.* counters match measured, PSR "
              "beats Ring per invocation, >= 2 rank lanes, edges all match");
  cli.AddBool("diff", &diff,
              "compare two runs: --trace/--metrics (A) vs --trace-b/"
              "--metrics-b (B)");
  cli.AddString("trace-b", &trace_b_path, "candidate trace for --diff");
  cli.AddString("metrics-b", &metrics_b_path, "candidate metrics for --diff");
  cli.AddString("timeline", &timeline_path,
                "timeline.jsonl artifact (--timeline-out): convergence "
                "curve report");
  cli.AddString("timeline-b", &timeline_b_path,
                "candidate timeline: diff two convergence timelines");
  cli.AddString("tol", &tol_spec,
                "comma-separated iterations-to-tolerance thresholds");
  cli.AddBool("assert-timeline", &assert_timeline,
              "with --timeline: fail unless rows exist, iterations ascend "
              "by 1, crossings are monotone, nothing diverged, and (with "
              "--metrics) the last row matches run.iterations");
  if (!cli.Parse(argc, argv)) return 0;

  try {
    if (!timeline_path.empty() || !timeline_b_path.empty() ||
        assert_timeline) {
      if (timeline_path.empty()) {
        std::cerr << "psra_report: timeline mode needs --timeline\n";
        return 2;
      }
      std::vector<double> tolerances;
      for (const std::string& tok : Split(tol_spec, ',')) {
        if (!Trim(tok).empty()) tolerances.push_back(ParseDouble(Trim(tok)));
      }
      const obs::TimelineData data =
          obs::LoadTimelineJsonl(ReadFile(timeline_path));
      const obs::TimelineReport report =
          obs::AnalyzeTimeline(data, tolerances);

      std::ostringstream md;
      if (!timeline_b_path.empty()) {
        const obs::TimelineReport b = obs::AnalyzeTimeline(
            obs::LoadTimelineJsonl(ReadFile(timeline_b_path)), tolerances);
        obs::WriteTimelineDiffMarkdown(report, b, md);
      } else {
        obs::WriteTimelineMarkdown(report, md);
      }
      if (out_path.empty()) {
        std::cout << md.str();
      } else {
        WriteTo(out_path, md.str());
        std::cout << "timeline: " << out_path << "\n";
      }

      if (assert_timeline) {
        int failures = 0;
        if (report.rows == 0) {
          std::cerr << "assert-timeline: timeline has no rows\n";
          ++failures;
        }
        if (!report.contiguous) {
          std::cerr << "assert-timeline: recorded iterations do not ascend "
                       "by exactly 1 (split-run merge gap or corrupt "
                       "artifact)\n";
          ++failures;
        }
        // Monotone crossings: among one series' crossings (tolerances in
        // --tol order, loosest first), a crossed threshold can never come
        // later than a tighter one crossed earlier, and once a threshold is
        // never reached no tighter one may be reached.
        for (std::size_t i = 1; i < report.crossings.size(); ++i) {
          const auto& prev = report.crossings[i - 1];
          const auto& cur = report.crossings[i];
          if (prev.series != cur.series || cur.tol >= prev.tol) continue;
          const bool bad =
              (prev.iteration == 0 && cur.iteration != 0) ||
              (prev.iteration != 0 && cur.iteration != 0 &&
               cur.iteration < prev.iteration);
          if (bad) {
            std::cerr << "assert-timeline: " << cur.series
                      << " crossings not monotone: tol "
                      << FormatDouble(prev.tol, 6) << " at iteration "
                      << prev.iteration << " but tol "
                      << FormatDouble(cur.tol, 6) << " at " << cur.iteration
                      << "\n";
            ++failures;
          }
        }
        for (const auto& h : report.health) {
          if (h.diverged) {
            std::cerr << "assert-timeline: " << h.series
                      << " diverged (last sample above the first, or "
                         "non-finite)\n";
            ++failures;
          }
        }
        if (!metrics_path.empty()) {
          const obs::MetricsRegistry metrics =
              obs::MetricsFromJson(ReadFile(metrics_path));
          const auto& gauges = metrics.gauges();
          const auto it = gauges.find("run.iterations");
          if (it == gauges.end()) {
            std::cerr << "assert-timeline: metrics carry no run.iterations "
                         "gauge\n";
            ++failures;
          } else if (it->second !=
                     static_cast<double>(report.last_iteration)) {
            std::cerr << "assert-timeline: last recorded iteration "
                      << report.last_iteration << " != run.iterations gauge "
                      << FormatDouble(it->second, 17) << "\n";
            ++failures;
          }
        }
        if (failures != 0) return 1;
        std::cout << "assert-timeline OK: " << report.rows
                  << " contiguous rows, crossings monotone, no divergence"
                  << (metrics_path.empty()
                          ? ""
                          : ", last row matches run.iterations")
                  << "\n";
      }
      return 0;
    }
    if (diff) {
      if (trace_path.empty() || trace_b_path.empty()) {
        std::cerr << "psra_report: --diff needs --trace (A) and --trace-b"
                     " (B)\n";
        return 2;
      }
      if (metrics_path.empty() != metrics_b_path.empty()) {
        std::cerr << "psra_report: --diff needs --metrics and --metrics-b"
                     " together (or neither)\n";
        return 2;
      }
      const obs::TraceReport a =
          obs::AnalyzeTrace(obs::LoadChromeTrace(ReadFile(trace_path)));
      const obs::TraceReport b =
          obs::AnalyzeTrace(obs::LoadChromeTrace(ReadFile(trace_b_path)));
      obs::MetricsRegistry ma, mb;
      const bool have_metrics = !metrics_path.empty();
      if (have_metrics) {
        ma = obs::MetricsFromJson(ReadFile(metrics_path));
        mb = obs::MetricsFromJson(ReadFile(metrics_b_path));
      }
      std::ostringstream md;
      obs::WriteReportDiffMarkdown(a, b, have_metrics ? &ma : nullptr,
                                   have_metrics ? &mb : nullptr, md);
      if (out_path.empty()) {
        std::cout << md.str();
      } else {
        WriteTo(out_path, md.str());
        std::cout << "diff: " << out_path << "\n";
      }
      return 0;
    }
    if (wire) {
      if (trace_path.empty()) {
        std::cerr << "psra_report: --wire needs --trace\n";
        return 2;
      }
      const obs::TraceData trace =
          obs::LoadChromeTrace(ReadFile(trace_path));
      const obs::TraceReport report = obs::AnalyzeTrace(trace);
      obs::MetricsRegistry metrics;
      const bool have_metrics = !metrics_path.empty();
      if (have_metrics) metrics = obs::MetricsFromJson(ReadFile(metrics_path));

      std::ostringstream md;
      obs::WriteWireReportMarkdown(trace, report,
                                   have_metrics ? &metrics : nullptr, md);
      if (out_path.empty()) {
        std::cout << md.str();
      } else {
        WriteTo(out_path, md.str());
        std::cout << "report: " << out_path << "\n";
      }
      if (!csv_path.empty()) {
        std::ostringstream csv;
        obs::WriteReportCsv(report, csv);
        WriteTo(csv_path, csv.str());
        std::cout << "csv: " << csv_path << "\n";
      }

      if (assert_wire) {
        int failures = 0;
        std::size_t lanes = 0;
        for (const auto& t : trace.tracks) {
          if (t.name.rfind("rank ", 0) == 0) ++lanes;
        }
        if (lanes < 2) {
          std::cerr << "assert-wire: merged trace has " << lanes
                    << " rank lane(s), need >= 2\n";
          ++failures;
        }
        if (report.edges.matched == 0) {
          std::cerr << "assert-wire: no send->recv edges matched\n";
          ++failures;
        }
        if (report.edges.unmatched_posts != 0 ||
            report.edges.unmatched_recvs != 0) {
          std::cerr << "assert-wire: " << report.edges.unmatched_posts
                    << " unmatched post(s), " << report.edges.unmatched_recvs
                    << " unmatched recv(s)\n";
          ++failures;
        }
        if (!have_metrics) {
          std::cerr << "assert-wire: needs --metrics\n";
          ++failures;
        } else {
          const auto& counters = metrics.counters();
          auto counter = [&counters](const std::string& n) -> std::uint64_t {
            const auto it = counters.find(n);
            return it == counters.end() ? 0 : it->second;
          };
          std::size_t sim_refs = 0;
          for (const auto& [name, sim_value] : counters) {
            if (name.rfind("sim.", 0) != 0) continue;
            ++sim_refs;
            const std::string measured = name.substr(4);
            if (counter(measured) != sim_value) {
              std::cerr << "assert-wire: " << measured << " = "
                        << counter(measured) << " but " << name << " = "
                        << sim_value << "\n";
              ++failures;
            }
          }
          if (sim_refs == 0) {
            std::cerr << "assert-wire: no sim.* reference counters\n";
            ++failures;
          }
          const std::uint64_t psr = counter("comm.allreduce.psr.bytes");
          const std::uint64_t ring = counter("comm.allreduce.ring.bytes");
          const std::uint64_t psr_inv =
              counter("comm.allreduce.psr.invocations");
          const std::uint64_t ring_inv =
              counter("comm.allreduce.ring.invocations");
          if (psr == 0 || ring == 0 || psr_inv == 0 || ring_inv == 0) {
            std::cerr << "assert-wire: psr/ring byte counters missing\n";
            ++failures;
          } else if (static_cast<double>(psr) / psr_inv >=
                     static_cast<double>(ring) / ring_inv) {
            std::cerr << "assert-wire: PSR bytes/invocation ("
                      << static_cast<double>(psr) / psr_inv
                      << ") not below Ring ("
                      << static_cast<double>(ring) / ring_inv << ")\n";
            ++failures;
          }
        }
        if (failures != 0) return 1;
        std::cout << "assert-wire OK: " << lanes << " rank lanes, "
                  << report.edges.matched
                  << " matched edges, sim counters agree, PSR < Ring "
                     "bytes/invocation\n";
      }
      return 0;
    }
    if (trace_path.empty() && metrics_path.empty()) {
      std::cerr << "psra_report: need --trace and/or --metrics\n";
      return 2;
    }
    obs::TraceReport report;
    if (!trace_path.empty()) {
      report = obs::AnalyzeTrace(obs::LoadChromeTrace(ReadFile(trace_path)));
    }
    obs::MetricsRegistry metrics;
    const bool have_metrics = !metrics_path.empty();
    if (have_metrics) metrics = obs::MetricsFromJson(ReadFile(metrics_path));

    std::ostringstream md;
    obs::WriteReportMarkdown(report, have_metrics ? &metrics : nullptr, md);
    if (out_path.empty()) {
      std::cout << md.str();
    } else {
      WriteTo(out_path, md.str());
      std::cout << "report: " << out_path << "\n";
    }
    if (!csv_path.empty()) {
      std::ostringstream csv;
      obs::WriteReportCsv(report, csv);
      WriteTo(csv_path, csv.str());
      std::cout << "csv: " << csv_path << "\n";
    }

    if (assert_fig6) {
      int failures = 0;
      const auto& counters = metrics.counters();
      const auto psr = counters.find("comm.allreduce.psr.bytes");
      const auto ring = counters.find("comm.allreduce.ring.bytes");
      if (!have_metrics || psr == counters.end() || ring == counters.end()) {
        std::cerr << "assert-fig6: psr/ring bytes counters missing\n";
        ++failures;
      } else if (psr->second >= ring->second) {
        std::cerr << "assert-fig6: PSR bytes (" << psr->second
                  << ") not below Ring bytes (" << ring->second << ")\n";
        ++failures;
      }
      if (trace_path.empty() ||
          report.class_virtual_s[static_cast<std::size_t>(
              obs::PhaseClass::kCommunicate)] <= 0.0) {
        std::cerr << "assert-fig6: no communicate-class time in trace\n";
        ++failures;
      }
      if (failures != 0) return 1;
      std::cout << "assert-fig6 OK: PSR < Ring bytes-on-wire, communicate"
                   " share nonzero\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "psra_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
