// Schema gate for metrics.json artifacts.
//
//   check_metrics_schema <schema.txt> <metrics.json>
//
// The schema file lists one dotted key pattern per line ('#' starts a
// comment). A '*' segment matches exactly one key segment, so
// `counters.comm.allreduce.*.bytes` covers every collective. Two checks:
//
//   1. Every key emitted in metrics.json must match some pattern — an
//      unknown or renamed metric fails the gate, so dashboards built on the
//      published names cannot rot silently.
//   2. Patterns prefixed with '!' are required: at least one emitted key
//      must match, so silently dropping a core metric also fails.
//
// Histogram objects carry fixed sub-keys (bounds/counts/count/sum); those
// are accepted automatically under any matching `histograms.` pattern.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace {

std::vector<std::string> SplitSegments(std::string_view key) {
  std::vector<std::string> segs;
  std::string cur;
  for (const char c : key) {
    if (c == '.') {
      segs.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  segs.push_back(cur);
  return segs;
}

bool Matches(const std::vector<std::string>& pattern,
             const std::vector<std::string>& key) {
  if (pattern.size() != key.size()) return false;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] != "*" && pattern[i] != key[i]) return false;
  }
  return true;
}

bool IsHistogramSubKey(std::string_view key) {
  if (key.rfind("histograms.", 0) != 0) return false;
  return key.ends_with(".bounds") || key.ends_with(".counts") ||
         key.ends_with(".count") || key.ends_with(".sum");
}

std::string StripLastSegment(const std::string& key) {
  return key.substr(0, key.rfind('.'));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: check_metrics_schema <schema.txt> <metrics.json>\n";
    return 2;
  }

  std::ifstream schema_in(argv[1]);
  if (!schema_in) {
    std::cerr << "cannot open schema file: " << argv[1] << "\n";
    return 2;
  }
  struct Pattern {
    std::string text;
    std::vector<std::string> segments;
    bool required = false;
    bool hit = false;
  };
  std::vector<Pattern> patterns;
  for (std::string line; std::getline(schema_in, line);) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    Pattern p;
    p.required = line[start] == '!';
    if (p.required) ++start;
    p.text = line.substr(start);
    p.segments = SplitSegments(p.text);
    patterns.push_back(std::move(p));
  }

  std::ifstream metrics_in(argv[2]);
  if (!metrics_in) {
    std::cerr << "cannot open metrics file: " << argv[2] << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << metrics_in.rdbuf();
  const std::string text = buf.str();

  psra::obs::json::Scanner scanner(text);
  if (!scanner.Validate()) {
    std::cerr << "metrics.json is not valid JSON: " << scanner.Error()
              << "\n";
    return 1;
  }

  int failures = 0;
  for (const std::string& raw_key : scanner.Keys()) {
    if (raw_key == "counters" || raw_key == "gauges" ||
        raw_key == "histograms") {
      continue;
    }
    const std::string key =
        IsHistogramSubKey(raw_key) ? StripLastSegment(raw_key) : raw_key;
    const auto segs = SplitSegments(key);
    bool matched = false;
    for (auto& p : patterns) {
      if (Matches(p.segments, segs)) {
        p.hit = true;
        matched = true;
      }
    }
    if (!matched) {
      std::cerr << "unknown metric key (not in schema): " << key << "\n";
      ++failures;
    }
  }
  for (const auto& p : patterns) {
    if (p.required && !p.hit) {
      std::cerr << "required metric missing from output: " << p.text << "\n";
      ++failures;
    }
  }
  if (failures != 0) {
    std::cerr << failures << " schema violation(s) in " << argv[2] << "\n";
    return 1;
  }
  std::cout << "metrics schema OK: " << scanner.Keys().size()
            << " keys validated against " << patterns.size()
            << " patterns\n";
  return 0;
}
