// Figure 5 reproduction: relative objective error vs iteration for
// PSRA-HGADMM, ADMMLib and AD-ADMM on the three dataset profiles, with 8
// nodes and 32/64/128 workers (4/8/16 per node), 100 iterations, GQ
// threshold = nodes/2, SSP Min_barrier = workers/2 and Max_delay = 5 —
// exactly the paper's Section 5.3 setup (at container scale).
//
// Output: one series per (dataset, workers, algorithm) with the relative
// error (eq. 18) at checkpoint iterations.
#include <iostream>

#include "bench_util.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::int64_t nodes = 8, iterations = 100;
  std::string datasets_csv = "news20,webspam,url";
  std::string wpn_csv = "4,8,16";
  double scale = 0.0;
  CliParser cli("bench_fig5_convergence",
                "paper Fig. 5: relative error vs iteration");
  cli.AddInt("nodes", &nodes, "physical nodes (paper: 8)");
  cli.AddString("workers-per-node", &wpn_csv,
                "comma-separated workers/node (paper: 4,8,16)");
  cli.AddInt("iterations", &iterations, "ADMM iterations (paper: 100)");
  cli.AddString("datasets", &datasets_csv, "datasets to run");
  cli.AddDouble("scale", &scale, "profile scale (0 = per-dataset default)");
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  const std::vector<std::uint64_t> checkpoints{1,  5,  10, 20, 30, 40,
                                               50, 60, 80, 100};
  bench::ReferenceCache refs;

  for (const auto& dataset : bench::ParseList(datasets_csv)) {
    for (const auto& wpn_tok : bench::ParseList(wpn_csv)) {
      const auto wpn = static_cast<std::uint32_t>(ParseInt(wpn_tok));
      admm::ClusterConfig cluster;
      cluster.num_nodes = static_cast<std::uint32_t>(nodes);
      cluster.workers_per_node = wpn;

      const auto problem =
          bench::MakeProblem(dataset, scale, cluster.world_size());
      const double f_min =
          refs.Get(dataset, problem.train, problem.lambda);

      std::cout << "\n== Fig.5 | " << dataset << " | " << nodes << " nodes x "
                << wpn << " workers = " << cluster.world_size()
                << " workers ==\n";

      admm::RunOptions opt;
      opt.max_iterations = static_cast<std::uint64_t>(iterations);
      opt.tron = bench::BenchTron();

      std::vector<std::string> headers{"algorithm"};
      for (auto cp : checkpoints) {
        if (cp <= static_cast<std::uint64_t>(iterations)) {
          headers.push_back("it" + std::to_string(cp));
        }
      }
      Table table(headers);

      for (const std::string name : {"psra-hgadmm", "admmlib", "ad-admm"}) {
        auto res = admm::RunAlgorithm(name, cluster, problem, opt);
        res.ApplyReference(f_min);
        std::vector<std::string> row{res.algorithm};
        for (auto cp : checkpoints) {
          if (cp > static_cast<std::uint64_t>(iterations)) continue;
          double value = res.trace.back().relative_error;
          for (const auto& rec : res.trace) {
            if (rec.iteration >= cp) {
              value = rec.relative_error;
              break;
            }
          }
          row.push_back(Table::Cell(value, 4));
        }
        table.AddRow(std::move(row));
      }
      table.Print(std::cout);
    }
  }
  std::cout << "\nShape to check against the paper: PSRA-HGADMM reaches lower"
               "\nrelative error than ADMMLib and AD-ADMM at equal iteration"
               "\ncounts, and the gap widens as workers increase.\n";
  return 0;
}
