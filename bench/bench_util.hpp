// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "admm/problem.hpp"
#include "admm/reference.hpp"
#include "admm/registry.hpp"
#include "data/synthetic.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::bench {

/// Default per-dataset scales: chosen so a full figure reproduction runs in
/// minutes on one core while preserving each dataset's density profile.
/// (webspam's 16.6M-feature space is scaled hardest; see DESIGN.md §2.)
inline double DefaultScale(const std::string& dataset) {
  if (dataset == "news20") return 0.01;
  if (dataset == "webspam") return 0.001;
  if (dataset == "url") return 0.003;
  if (dataset == "url_tall") return 0.01;
  if (dataset == "smoke") return 1.0;
  throw InvalidArgument("unknown dataset: " + dataset);
}

inline std::vector<std::string> ParseList(const std::string& csv) {
  std::vector<std::string> out;
  for (auto& tok : Split(csv, ',')) {
    const auto t = std::string(Trim(tok));
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

/// TRON settings for the distributed x-subproblems: shards are small, so a
/// short inexact solve is standard practice (and what makes 100-iteration
/// sweeps tractable).
inline solver::TronOptions BenchTron() {
  solver::TronOptions t;
  t.max_iterations = 10;
  t.max_cg_iterations = 10;
  t.gradient_tolerance = 1e-2;
  return t;
}

/// Builds the consensus problem for `dataset` at `scale` (0 = default).
inline admm::ConsensusProblem MakeProblem(const std::string& dataset,
                                          double scale,
                                          std::uint64_t num_workers) {
  const double s = scale > 0 ? scale : DefaultScale(dataset);
  const auto spec = data::ProfileByName(dataset, s);
  return admm::BuildProblem(spec, num_workers, /*lambda=*/1.0, /*rho=*/1.0);
}

/// Caches the reference minimum per dataset so the figure harnesses don't
/// recompute it for every cluster size.
class ReferenceCache {
 public:
  double Get(const std::string& key, const data::Dataset& train,
             double lambda) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    admm::ReferenceOptions opt;
    opt.iterations = 200;
    opt.tron = BenchTron();
    opt.tron.max_iterations = 25;
    opt.tron.max_cg_iterations = 25;
    const double f = admm::ReferenceMinimum(train, lambda, opt);
    cache_[key] = f;
    return f;
  }

 private:
  std::map<std::string, double> cache_;
};

}  // namespace psra::bench
