// Table 1 reproduction: summary of the datasets.
//
// Prints the paper's original dataset table alongside the scaled synthetic
// profiles this repo actually trains on, including measured statistics of
// the generated data (dimension, samples, nnz/row, density).
#include <iostream>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  double scale = 0.0;
  CliParser cli("bench_table1_datasets", "regenerates the paper's Table 1");
  cli.AddDouble("scale", &scale, "profile scale (0 = per-dataset default)");
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  std::cout << "== Paper Table 1 (original datasets) ==\n";
  Table paper({"Datasets", "Dimension", "Training set", "Test set"});
  paper.AddRow({"news20", "1355191", "16000", "3996"});
  paper.AddRow({"webspam", "16609143", "300000", "50000"});
  paper.AddRow({"url", "3231961", "2000000", "396130"});
  paper.Print(std::cout);

  std::cout << "\n== This repo: scaled synthetic profiles (measured) ==\n";
  Table ours({"Datasets", "Scale", "Dimension", "Training set", "Test set",
              "nnz/row", "Density"});
  for (const std::string name : {"news20", "webspam", "url"}) {
    const double s = scale > 0 ? scale : bench::DefaultScale(name);
    const auto spec = data::ProfileByName(name, s);
    const auto gen = data::GenerateSynthetic(spec);
    const auto stats = data::ComputeStats(spec.name, gen.train);
    ours.AddRow({spec.name, Table::Cell(s, 3),
                 std::to_string(stats.dimension),
                 std::to_string(stats.num_samples),
                 std::to_string(gen.test.num_samples()),
                 Table::Cell(stats.mean_row_nnz, 4),
                 Table::Cell(stats.density, 3)});
  }
  ours.Print(std::cout);
  std::cout << "\nProfiles preserve each dataset's sparsity character"
               " (dimension >> samples for news20/webspam, heavier rows for"
               " webspam, strong feature skew for url) at container scale.\n";
  return 0;
}
