// Related-work comparison (beyond the paper's evaluation): puts every
// implemented distributed-ADMM variant side by side on one workload —
// the paper's PSRA-HGADMM family, the two evaluated baselines (ADMMLib,
// AD-ADMM) and the Section 3 related-work algorithms we additionally
// implement (GADMM, Q-GADMM).
#include <iostream>

#include "bench_util.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::int64_t nodes = 8, wpn = 4, iterations = 50;
  std::string dataset = "news20";
  double scale = 0.0;
  CliParser cli("bench_related_work",
                "all implemented distributed ADMM variants, one workload");
  cli.AddInt("nodes", &nodes, "simulated nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("iterations", &iterations, "iterations");
  cli.AddString("dataset", &dataset, "dataset profile");
  cli.AddDouble("scale", &scale, "profile scale (0 = default)");
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  admm::ClusterConfig cluster;
  cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  const auto problem = bench::MakeProblem(dataset, scale, cluster.world_size());

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(iterations);
  opt.tron = bench::BenchTron();
  opt.eval_every = opt.max_iterations;

  bench::ReferenceCache refs;
  const double f_min = refs.Get(dataset, problem.train, problem.lambda);

  Table table({"algorithm", "rel_error", "accuracy", "cal_time", "comm_time",
               "system_time", "messages"});
  for (const auto& name : admm::AlgorithmNames()) {
    auto res = admm::RunAlgorithm(name, cluster, problem, opt);
    res.ApplyReference(f_min);
    table.AddRow({res.algorithm,
                  Table::Cell(res.trace.back().relative_error, 4),
                  Table::Cell(res.final_accuracy, 4),
                  FormatDuration(res.total_cal_time),
                  FormatDuration(res.total_comm_time),
                  FormatDuration(res.SystemTime()),
                  std::to_string(res.messages_sent)});
  }
  table.Print(std::cout);
  std::cout <<
      "\nNotes: GADMM/Q-GADMM optimize the smooth loss over a worker chain"
      "\n(no global L1 term), so their relative error floors higher; their"
      "\nstrength is the tiny neighbor-only message count. The PSRA family"
      "\nand the SSP/async baselines solve the paper's eq. 2 exactly.\n";
  return 0;
}
