// Figure 6 reproduction: system time (Cal_time + Comm_time) and accuracy vs
// cluster size for the three algorithms on the three dataset profiles.
// Paper setup: 4/8/16/32 nodes with 4 workers each (16-128 workers),
// 100 iterations. Also prints the paper's headline aggregate: overall
// communication-cost reduction of PSRA-HGADMM vs ADMMLib.
#include <iostream>

#include "admm/artifacts.hpp"
#include "admm/progress.hpp"
#include "admm/psra_hgadmm.hpp"
#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::string nodes_csv = "4,8,16,32";
  std::int64_t wpn = 4, iterations = 100;
  std::string datasets_csv = "news20,webspam,url";
  double scale = 0.0;
  CliParser cli("bench_fig6_system_time",
                "paper Fig. 6: system time split and accuracy vs nodes");
  cli.AddString("nodes", &nodes_csv, "comma-separated node counts");
  cli.AddInt("workers-per-node", &wpn, "workers per node (paper: 4)");
  cli.AddInt("iterations", &iterations, "ADMM iterations (paper: 100)");
  cli.AddString("datasets", &datasets_csv, "datasets to run");
  cli.AddDouble("scale", &scale, "profile scale (0 = per-dataset default)");
  admm::RunArtifactPaths artifacts;
  admm::AddArtifactFlags(cli, &artifacts);
  bool progress = false;
  admm::AddProgressFlag(cli, &progress);
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);
  admm::ProgressPrinter progress_printer;

  double total_comm_psra = 0.0, total_comm_admmlib = 0.0;
  double total_sys_psra = 0.0, total_sys_admmlib = 0.0;

  for (const auto& dataset : bench::ParseList(datasets_csv)) {
    std::cout << "\n== Fig.6 | " << dataset << " ==\n";
    Table table({"algorithm", "nodes", "workers", "cal_time", "comm_time",
                 "system_time", "accuracy"});
    // Accuracy drop from the smallest to the largest cluster (the paper's
    // scalability criterion in Section 5.4).
    std::map<std::string, std::pair<double, double>> acc_first_last;

    for (const std::string name : {"psra-hgadmm", "admmlib", "ad-admm"}) {
      for (const auto& node_tok : bench::ParseList(nodes_csv)) {
        const auto nodes = static_cast<std::uint32_t>(ParseInt(node_tok));
        admm::ClusterConfig cluster;
        cluster.num_nodes = nodes;
        cluster.workers_per_node = static_cast<std::uint32_t>(wpn);

        const auto problem =
            bench::MakeProblem(dataset, scale, cluster.world_size());
        admm::RunOptions opt;
        opt.max_iterations = static_cast<std::uint64_t>(iterations);
        opt.tron = bench::BenchTron();
        opt.eval_every = opt.max_iterations;  // only final metrics needed
        if (progress) opt.progress = &progress_printer;

        const auto res = admm::RunAlgorithm(name, cluster, problem, opt);
        progress_printer.Finish();
        table.AddRow({res.algorithm, std::to_string(nodes),
                      std::to_string(cluster.world_size()),
                      FormatDuration(res.total_cal_time),
                      FormatDuration(res.total_comm_time),
                      FormatDuration(res.SystemTime()),
                      Table::Cell(res.final_accuracy, 4)});

        if (acc_first_last.find(name) == acc_first_last.end()) {
          acc_first_last[name] = {res.final_accuracy, res.final_accuracy};
        } else {
          acc_first_last[name].second = res.final_accuracy;
        }
        if (name == "psra-hgadmm") {
          total_comm_psra += res.total_comm_time;
          total_sys_psra += res.SystemTime();
        } else if (name == "admmlib") {
          total_comm_admmlib += res.total_comm_time;
          total_sys_admmlib += res.SystemTime();
        }
      }
    }
    table.Print(std::cout);
    for (const auto& [name, fl] : acc_first_last) {
      std::cout << "accuracy drop (" << name << ", smallest -> largest): "
                << FormatDouble(100.0 * (fl.first - fl.second), 3) << "%\n";
    }
  }

  std::cout << "\n== Headline aggregates across all runs above ==\n";
  if (total_comm_admmlib > 0) {
    std::cout << "PSRA-HGADMM comm time vs ADMMLib: "
              << FormatDouble(
                     100.0 * (1.0 - total_comm_psra / total_comm_admmlib), 4)
              << "% reduction (paper reports 32%)\n";
    std::cout << "PSRA-HGADMM system time vs ADMMLib: "
              << FormatDouble(
                     100.0 * (1.0 - total_sys_psra / total_sys_admmlib), 4)
              << "% reduction (paper: 28.3% news20 / 63.18% webspam / 60.4%"
                 " url at 32 nodes)\n";
  }
  std::cout << "\nShapes to check: PSRA-HGADMM comm time decreases with node"
               "\ncount; ADMMLib's stays roughly flat; AD-ADMM's grows."
               "\nAccuracy decreases with cluster size, least for"
               " PSRA-HGADMM.\n";

  // ---- Observability artifacts (--trace-out/--metrics-out/--csv-out) -----
  // One dedicated instrumented pair of runs on the smallest configured
  // cluster / first dataset: hierarchical PSRA-HGADMM over the PSR
  // collective (traced) and the identical run over Ring (metrics only).
  // Hierarchical (full leader barrier) rather than dynamic grouping, so the
  // inter-node collective spans all N leaders — dynamic grouping tends to
  // pair nodes, and every allreduce degenerates to the same exchange at
  // group size 2. Both registries merge into one metrics.json, so the
  // per-collective bytes-on-wire counters (comm.allreduce.psr.bytes vs
  // comm.allreduce.ring.bytes) expose the paper's eq. 11-16 traffic
  // ordering directly.
  if (artifacts.any()) {
    const auto nodes = static_cast<std::uint32_t>(
        ParseInt(bench::ParseList(nodes_csv).front()));
    const std::string dataset = bench::ParseList(datasets_csv).front();
    admm::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
    const auto problem =
        bench::MakeProblem(dataset, scale, cluster.world_size());
    admm::RunOptions opt;
    opt.max_iterations = static_cast<std::uint64_t>(iterations);
    opt.tron = bench::BenchTron();
    opt.eval_every = 1;  // per-iteration CSV

    admm::PsraConfig cfg;
    cfg.cluster = cluster;
    cfg.grouping = admm::GroupingMode::kHierarchical;

    obs::ObsContext obs_psr;
    opt.obs = &obs_psr;
    if (progress) opt.progress = &progress_printer;
    cfg.allreduce = comm::AllreduceKind::kPsr;
    const auto res = admm::PsraHgAdmm(cfg).Run(problem, opt);
    progress_printer.Finish();

    obs::ObsContext obs_ring;
    obs_ring.tracing = false;  // metrics only; the trace comes from PSR
    opt.obs = &obs_ring;
    cfg.allreduce = comm::AllreduceKind::kRing;
    admm::PsraHgAdmm(cfg).Run(problem, opt);
    progress_printer.Finish();
    obs_psr.metrics.MergeFrom(obs_ring.metrics);

    // The timeline comes from the PSR run alone (the Ring run merges its
    // registry only), so the JSONL rows are a single ascending-iteration
    // run — what psra_report --assert-timeline pins.
    admm::WriteRunArtifacts(artifacts, &obs_psr.tracer, &obs_psr.metrics,
                            &res, &obs_psr.timeline);
    std::cout << "\nartifacts (psra-hgadmm psr+ring, " << dataset << ", "
              << nodes << " nodes):";
    if (!artifacts.trace_json.empty()) {
      std::cout << " trace=" << artifacts.trace_json;
    }
    if (!artifacts.metrics_json.empty()) {
      std::cout << " metrics=" << artifacts.metrics_json;
    }
    if (!artifacts.trace_csv.empty()) {
      std::cout << " csv=" << artifacts.trace_csv;
    }
    std::cout << "\n";
  }
  return 0;
}
