// Scale sweep: every engine across a (nodes x algorithm x sparsity) grid,
// one metrics.json per cell — the raw material for the eq. 11-16
// bytes-on-wire scaling comparison (Figures 6-7) and for the CI regression
// baseline (scripts/sweep_report diffs the per-cell metrics against
// bench/baselines/sweep_baseline.json).
//
// Algorithm tokens:
//   psr | ring | naive | rhd | tree — PSRA-HGADMM with hierarchical
//       grouping (intra reduce -> ONE collective over all N leaders ->
//       intra broadcast) and that inter-node collective, so the collective
//       cost scales with N instead of degenerating to fixed-size dynamic
//       groups; `dense` sparsity clears sparse_comm.
//   admmlib — SSP + ring over all leaders; `dense` clears sparse_comm.
//   ad-admm — asynchronous master/worker; `sparse` sends sparse deltas
//       (classic_exchange = false), `dense` the classic dense exchange.
//   gadmm — chain GADMM. The chain always ships dense models, so gadmm
//       only produces `dense` cells (sparse is skipped, not aliased).
//
// --racks R partitions the nodes into R racks: cross-rack links are priced
// on the slower kInterRack fabric and the hierarchical PSRA cells run their
// leader collective recursively (per rack, then across rack leaders) — the
// multi-level sweep of DESIGN.md §10. R must divide every node count.
//
// --pool T runs every cell's host-side loops on a T-thread pool (0 = serial,
// the default). Virtual-time results and every counter in metrics.json are
// bitwise-identical for any T; the flag only shortens large-N wall time.
//
// Cells are run metrics-only (tracing off): the sweep gate diffs counters,
// and skipping span recording keeps the grid cheap.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "admm/ad_admm.hpp"
#include "admm/admmlib.hpp"
#include "admm/gadmm.hpp"
#include "admm/progress.hpp"
#include "admm/psra_hgadmm.hpp"
#include "bench_util.hpp"
#include "engine/thread_pool.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/status.hpp"
#include "support/table.hpp"

namespace {

using namespace psra;

admm::LocalSolverOptions::Mode ParseSolverMode(const std::string& name) {
  if (name == "cg") return admm::LocalSolverOptions::Mode::kCg;
  if (name == "auto") return admm::LocalSolverOptions::Mode::kAuto;
  if (name == "gram") return admm::LocalSolverOptions::Mode::kGram;
  throw InvalidArgument("unknown solver mode '" + name + "'");
}

comm::AllreduceKind ParseKind(const std::string& name) {
  if (name == "naive") return comm::AllreduceKind::kNaive;
  if (name == "ring") return comm::AllreduceKind::kRing;
  if (name == "psr") return comm::AllreduceKind::kPsr;
  if (name == "rhd") return comm::AllreduceKind::kRhd;
  if (name == "tree") return comm::AllreduceKind::kTree;
  throw InvalidArgument("unknown algorithm token '" + name + "'");
}

/// Total bytes on the simulated wire for one cell: the sum of every
/// comm.*.bytes counter the engine recorded.
std::uint64_t BytesOnWire(const obs::MetricsRegistry& m) {
  std::uint64_t total = 0;
  for (const auto& [name, v] : m.counters()) {
    if (StartsWith(name, "comm.") && name.ends_with(".bytes")) total += v;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::string nodes_csv = "4,8,16";
  std::int64_t wpn = 4, iterations = 20, racks = 1, pool_threads = 0;
  std::string dataset = "news20";
  double scale = 0.0;
  std::string algorithms_csv = "psr,ring,naive,admmlib,ad-admm,gadmm";
  std::string sparsity_csv = "sparse,dense";
  std::string out_dir = "sweep";
  std::string solver = "cg";
  std::string cell_prefix;
  std::string log_level = "warn";
  CliParser cli("bench_sweep",
                "metrics sweep over (nodes x algorithm x sparsity)");
  cli.AddString("nodes", &nodes_csv, "comma-separated node counts");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("iterations", &iterations, "ADMM iterations per cell");
  cli.AddInt("racks", &racks, "racks per cluster (must divide node counts)");
  cli.AddInt("pool", &pool_threads,
             "host pool threads (0 = serial; counters are identical)");
  cli.AddString("dataset", &dataset, "dataset profile");
  cli.AddDouble("scale", &scale, "profile scale (0 = dataset default)");
  cli.AddString("algorithms", &algorithms_csv,
                "cells: psr|ring|naive|rhd|tree|admmlib|ad-admm|gadmm");
  cli.AddString("sparsity", &sparsity_csv, "sparse,dense");
  cli.AddString("out-dir", &out_dir, "directory for per-cell metrics.json");
  cli.AddString("solver", &solver,
                "local x-update solver: cg (baseline) | auto | gram");
  cli.AddString("cell-prefix", &cell_prefix,
                "prefix for cell names (separates baseline namespaces)");
  bool progress = false;
  admm::AddProgressFlag(cli, &progress);
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);
  const auto solver_mode = ParseSolverMode(solver);
  PSRA_REQUIRE(racks >= 1, "--racks must be at least 1");
  admm::ProgressPrinter progress_printer;

  std::optional<engine::ThreadPool> pool;
  if (pool_threads > 0) {
    pool.emplace(static_cast<std::size_t>(pool_threads));
  }

  std::filesystem::create_directories(out_dir);
  std::ofstream manifest(out_dir + "/manifest.csv");
  if (!manifest) {
    std::cerr << "bench_sweep: cannot write to " << out_dir << "\n";
    return 2;
  }
  manifest << "cell,algorithm,sparsity,nodes,workers,file\n";

  Table table({"algorithm", "sparsity", "nodes", "bytes_on_wire",
               "makespan_s", "iterations"});
  for (const auto& node_tok : bench::ParseList(nodes_csv)) {
    const auto nodes = static_cast<std::uint32_t>(ParseInt(node_tok));
    PSRA_REQUIRE(nodes % static_cast<std::uint32_t>(racks) == 0,
                 "--racks must divide every node count");
    admm::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
    cluster.num_racks = static_cast<std::uint32_t>(racks);
    const auto problem = bench::MakeProblem(dataset, scale,
                                            cluster.world_size());
    for (const auto& alg : bench::ParseList(algorithms_csv)) {
      for (const auto& sparsity : bench::ParseList(sparsity_csv)) {
        PSRA_REQUIRE(sparsity == "sparse" || sparsity == "dense",
                     "sparsity must be sparse or dense");
        const bool sparse = sparsity == "sparse";
        // GADMM's chain ships dense models only; there is no sparse cell.
        if (alg == "gadmm" && sparse) continue;

        obs::ObsContext obs;
        obs.tracing = false;  // metrics only
        admm::RunOptions opt;
        opt.max_iterations = static_cast<std::uint64_t>(iterations);
        opt.tron = bench::BenchTron();
        opt.eval_every = opt.max_iterations;
        opt.obs = &obs;
        opt.local_solver.mode = solver_mode;
        opt.pool = pool.has_value() ? &*pool : nullptr;
        if (progress) opt.progress = &progress_printer;

        admm::RunResult res;
        if (alg == "admmlib") {
          admm::AdmmLibConfig cfg;
          cfg.cluster = cluster;
          cfg.sparse_comm = sparse;
          res = admm::AdmmLib(cfg).Run(problem, opt);
        } else if (alg == "ad-admm") {
          admm::AdAdmmConfig cfg;
          cfg.cluster = cluster;
          cfg.classic_exchange = !sparse;
          res = admm::AdAdmm(cfg).Run(problem, opt);
        } else if (alg == "gadmm") {
          admm::GadmmConfig cfg;
          cfg.cluster = cluster;
          res = admm::Gadmm(cfg).Run(problem, opt);
        } else {
          admm::PsraConfig cfg;
          cfg.cluster = cluster;
          cfg.grouping = admm::GroupingMode::kHierarchical;
          cfg.allreduce = ParseKind(alg);
          cfg.sparse_comm = sparse;
          res = admm::PsraHgAdmm(cfg).Run(problem, opt);
        }

        progress_printer.Finish();

        // Convergence gate feed: the first iteration at which each residual
        // series halved from its first recorded value (0 = never). Computed
        // post-run from the recorded timeline — early stopping stays OFF, so
        // engine.iterations baselines are untouched. Deterministic integers
        // (virtual-time state only); scripts/sweep_report diffs them exactly
        // against the committed baseline like any traffic counter.
        for (const auto& [series, counter] :
             {std::pair{"ts.primal_residual",
                        "convergence.primal.iters_to_half"},
              std::pair{"ts.dual_residual",
                        "convergence.dual.iters_to_half"}}) {
          const obs::TimeSeries* s = obs.timeline.Find(series);
          if (s == nullptr || s->empty()) continue;
          obs.metrics.Counter(counter) +=
              obs.timeline.FirstIterationAtOrBelow(series, 0.5 * s->front());
        }

        const std::string cell =
            cell_prefix + alg + "_" + sparsity + "_n" + std::to_string(nodes);
        const std::string file = out_dir + "/" + cell + ".metrics.json";
        std::ofstream out(file);
        obs.metrics.WriteJson(out);
        manifest << cell << "," << alg << "," << sparsity << "," << nodes
                 << "," << cluster.world_size() << "," << cell
                 << ".metrics.json\n";
        table.AddRow({alg, sparsity, std::to_string(nodes),
                      std::to_string(BytesOnWire(obs.metrics)),
                      FormatDouble(res.makespan, 6),
                      std::to_string(res.iterations_run)});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nwrote " << out_dir << "/manifest.csv\n";
  return 0;
}
