// Hot-path benchmark: host-side iterations/sec and steady-state heap
// allocations per iteration for the PSRA-HGADMM engine.
//
// Allocations are measured with the counting allocator from
// src/engine/alloc_counter.hpp (this is the only binary that links
// psra_alloc_counter). Per-iteration cost is isolated by the delta method:
// run the same configuration at two iteration counts K1 < K2 and report
//   (allocs(K2) - allocs(K1)) / (K2 - K1),
// which cancels problem construction, warm-up and teardown allocations
// exactly. The flat-grouping dense path is expected to report 0.
//
// Results are emitted as BENCH_hotpath.json in the current directory (and
// echoed to stdout). `--quick` shrinks the iteration counts for CI-style
// smoke runs; the headline numbers in the JSON come from the default counts.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "admm/psra_hgadmm.hpp"
#include "bench_util.hpp"
#include "engine/alloc_counter.hpp"
#include "engine/thread_pool.hpp"
#include "support/cli.hpp"

namespace {

using namespace psra;

// Wall-clock iterations/sec recorded before this optimization pass, on the
// same configuration (news20 @ 0.01, 8 nodes x 4 workers, flat grouping,
// dense transport, serial host loop). Kept in the JSON so the speedup is
// auditable.
constexpr double kBaselineItersPerSec = 44.5;

struct Measurement {
  double iters_per_sec = 0.0;
  double allocs_per_iter = 0.0;
  std::uint64_t iterations = 0;
};

admm::PsraConfig MakeConfig(admm::GroupingMode grouping) {
  admm::PsraConfig cfg;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.workers_per_node = 4;
  cfg.grouping = grouping;
  // Dense transport: the sparse path trades host time for simulated bytes
  // and is benchmarked separately by the figure harnesses.
  cfg.sparse_comm = false;
  return cfg;
}

std::uint64_t RunOnce(const admm::ConsensusProblem& problem,
                      const admm::PsraConfig& cfg, engine::ThreadPool* pool,
                      std::uint64_t iterations) {
  admm::RunOptions opt;
  opt.max_iterations = iterations;
  opt.tron = bench::BenchTron();
  opt.eval_every = iterations;  // metrics only at the end
  opt.pool = pool;
  const admm::PsraHgAdmm alg(cfg);
  const auto res = alg.Run(problem, opt);
  return res.iterations_run;
}

Measurement Measure(const admm::ConsensusProblem& problem,
                    const admm::PsraConfig& cfg, engine::ThreadPool* pool,
                    std::uint64_t k1, std::uint64_t k2, int reps) {
  // Warm-up run: populates every lazily grown workspace so the measured
  // runs see steady state from iteration one.
  (void)RunOnce(problem, cfg, pool, k1);

  const std::uint64_t a0 = engine::AllocCount();
  (void)RunOnce(problem, cfg, pool, k1);
  const std::uint64_t a1 = engine::AllocCount();

  Measurement m;
  // Best-of-`reps` wall time: the minimum is the standard estimator least
  // affected by scheduler/co-tenant interference. Allocations are counted
  // on the first rep only (they are deterministic across reps).
  double best_secs = 0.0;
  std::uint64_t a2 = a1;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    m.iterations = RunOnce(problem, cfg, pool, k2);
    const auto t1 = std::chrono::steady_clock::now();
    if (rep == 0) a2 = engine::AllocCount();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || secs < best_secs) best_secs = secs;
  }
  m.iters_per_sec =
      best_secs > 0 ? static_cast<double>(m.iterations) / best_secs : 0.0;
  m.allocs_per_iter = static_cast<double>((a2 - a1) - (a1 - a0)) /
                      static_cast<double>(k2 - k1);
  return m;
}

void EmitJson(std::ostream& os, const std::string& grouping,
              const std::string& host, const Measurement& m, bool last) {
  os << "    {\"grouping\": \"" << grouping << "\", \"host\": \"" << host
     << "\", \"iterations\": " << m.iterations
     << ", \"iters_per_sec\": " << m.iters_per_sec
     << ", \"allocs_per_iter\": " << m.allocs_per_iter << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "news20";
  double scale = 0.0;
  std::int64_t threads = 8;
  bool quick = false;
  CliParser cli("bench_hotpath",
                "hot-path iterations/sec and steady-state allocations/iter");
  cli.AddString("dataset", &dataset, "dataset profile (default news20)");
  cli.AddDouble("scale", &scale, "profile scale (0 = per-dataset default)");
  cli.AddInt("threads", &threads, "pool size for the pooled runs");
  cli.AddBool("quick", &quick, "shrink iteration counts for a smoke run");
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  const std::uint64_t k1 = quick ? 5 : 30;
  const std::uint64_t k2 = quick ? 15 : 100;
  const int reps = quick ? 1 : 3;

  const auto problem = bench::MakeProblem(
      dataset, scale, MakeConfig(admm::GroupingMode::kFlat).cluster.world_size());
  std::cout << "bench_hotpath: " << dataset << " dim=" << problem.dim()
            << " workers=" << problem.num_workers() << " K1=" << k1
            << " K2=" << k2 << "\n";

  engine::ThreadPool pool(static_cast<std::size_t>(threads));

  struct Row {
    std::string grouping;
    std::string host;
    Measurement m;
  };
  std::vector<Row> rows;
  for (const auto grouping :
       {admm::GroupingMode::kFlat, admm::GroupingMode::kDynamicGroups}) {
    const std::string gname =
        grouping == admm::GroupingMode::kFlat ? "flat" : "dynamic";
    const auto cfg = MakeConfig(grouping);
    rows.push_back(
        {gname, "serial", Measure(problem, cfg, nullptr, k1, k2, reps)});
    rows.push_back({gname, "pool" + std::to_string(threads),
                    Measure(problem, cfg, &pool, k1, k2, reps)});
  }

  for (const auto& row : rows) {
    std::cout << "  " << row.grouping << " / " << row.host << ": "
              << row.m.iters_per_sec << " iters/sec, "
              << row.m.allocs_per_iter << " allocs/iter\n";
  }
  const double speedup = rows.front().m.iters_per_sec / kBaselineItersPerSec;
  std::cout << "  flat/serial speedup vs pre-change baseline ("
            << kBaselineItersPerSec << "): " << speedup << "x\n";

  // Dynamic-grouping gap summaries (rows are flat/serial, flat/pool,
  // dynamic/serial, dynamic/pool). CI gates on these ratios, so they are
  // computed once here rather than re-derived from the rows downstream.
  auto rate = [&rows](const std::string& g, const std::string& h) {
    for (const auto& row : rows) {
      if (row.grouping == g && row.host == h) return row.m.iters_per_sec;
    }
    return 0.0;
  };
  const std::string pool_name = "pool" + std::to_string(threads);
  const double flat_pool = rate("flat", pool_name);
  const double dyn_serial = rate("dynamic", "serial");
  const double dyn_pool = rate("dynamic", pool_name);
  const double dyn_over_flat = flat_pool > 0 ? dyn_pool / flat_pool : 0.0;
  const double dyn_pool_over_serial =
      dyn_serial > 0 ? dyn_pool / dyn_serial : 0.0;
  std::cout << "  dynamic/" << pool_name << " vs flat/" << pool_name << ": "
            << dyn_over_flat << "x; vs dynamic/serial: " << dyn_pool_over_serial
            << "x\n";

  std::ofstream json("BENCH_hotpath.json");
  json << "{\n  \"benchmark\": \"hotpath\",\n  \"dataset\": \"" << dataset
       << "\",\n  \"config\": {\"nodes\": 8, \"workers_per_node\": 4, "
          "\"sparse_comm\": false, \"k1\": "
       << k1 << ", \"k2\": " << k2 << ", \"threads\": " << threads
       << ", \"quick\": " << (quick ? "true" : "false")
       << "},\n  \"baseline_iters_per_sec\": " << kBaselineItersPerSec
       << ",\n  \"speedup_flat_serial\": " << speedup
       << ",\n  \"dynamic_pool_over_flat_pool\": " << dyn_over_flat
       << ",\n  \"dynamic_pool_over_serial\": " << dyn_pool_over_serial
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EmitJson(json, rows[i].grouping, rows[i].host, rows[i].m,
             i + 1 == rows.size());
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_hotpath.json\n";
  return 0;
}
