// Ablation study of the design decisions DESIGN.md §6 calls out — not a
// paper figure; it isolates each ingredient of PSRA-HGADMM:
//
//   A. Allreduce algorithm inside the WLG framework:
//      psr (paper) vs ring vs rhd vs tree vs naive.
//   B. Sparse vs dense aggregate encoding.
//   C. Group Generator threshold sweep (grouping-overhead vs wait tradeoff).
//   D. Adaptive penalty (residual balancing) vs fixed rho.
#include <iostream>

#include "admm/psra_hgadmm.hpp"
#include "admm/reference.hpp"
#include "bench_util.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::int64_t nodes = 8, wpn = 4, iterations = 50;
  std::string dataset = "news20";
  double scale = 0.0;
  CliParser cli("bench_ablation", "design-choice ablations for PSRA-HGADMM");
  cli.AddInt("nodes", &nodes, "simulated nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("iterations", &iterations, "ADMM iterations");
  cli.AddString("dataset", &dataset, "dataset profile");
  cli.AddDouble("scale", &scale, "profile scale (0 = default)");
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  admm::ClusterConfig cluster;
  cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  const auto problem = bench::MakeProblem(dataset, scale, cluster.world_size());

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(iterations);
  opt.tron = bench::BenchTron();
  opt.eval_every = opt.max_iterations;

  bench::ReferenceCache refs;
  const double f_min = refs.Get(dataset, problem.train, problem.lambda);

  auto run = [&](const admm::PsraConfig& cfg, const admm::RunOptions& o) {
    auto res = admm::PsraHgAdmm(cfg).Run(problem, o);
    res.ApplyReference(f_min);
    return res;
  };
  auto row = [&](Table& t, const std::string& label, const admm::RunResult& r) {
    t.AddRow({label, Table::Cell(r.trace.back().relative_error, 4),
              Table::Cell(r.final_accuracy, 4),
              FormatDuration(r.total_comm_time),
              FormatDuration(r.SystemTime()),
              std::to_string(r.elements_sent)});
  };

  std::cout << "== A. Allreduce algorithm (dynamic grouping fixed) ==\n";
  {
    Table t({"allreduce", "rel_error", "accuracy", "comm_time", "system_time",
             "elements"});
    const std::pair<const char*, comm::AllreduceKind> kinds[] = {
        {"psr", comm::AllreduceKind::kPsr},
        {"ring", comm::AllreduceKind::kRing},
        {"rhd", comm::AllreduceKind::kRhd},
        {"tree", comm::AllreduceKind::kTree},
        {"naive", comm::AllreduceKind::kNaive},
    };
    for (const auto& [name, kind] : kinds) {
      admm::PsraConfig cfg;
      cfg.cluster = cluster;
      cfg.allreduce = kind;
      row(t, name, run(cfg, opt));
    }
    t.Print(std::cout);
  }

  std::cout << "\n== B. Sparse vs dense aggregate encoding ==\n";
  {
    Table t({"encoding", "rel_error", "accuracy", "comm_time", "system_time",
             "elements"});
    for (const bool sparse : {true, false}) {
      admm::PsraConfig cfg;
      cfg.cluster = cluster;
      cfg.sparse_comm = sparse;
      row(t, sparse ? "sparse (index,value)" : "dense", run(cfg, opt));
    }
    t.Print(std::cout);
  }

  std::cout << "\n== C. Group Generator threshold (paper default: nodes/2) ==\n";
  {
    Table t({"threshold", "rel_error", "accuracy", "comm_time", "system_time",
             "elements"});
    for (std::uint32_t thr = 1; thr <= cluster.num_nodes; thr *= 2) {
      admm::PsraConfig cfg;
      cfg.cluster = cluster;
      cfg.group_threshold = thr;
      row(t, std::to_string(thr), run(cfg, opt));
    }
    t.Print(std::cout);
  }

  std::cout << "\n== D. Adaptive penalty (residual balancing) vs fixed rho ==\n";
  {
    Table t({"penalty", "rel_error", "accuracy", "comm_time", "system_time",
             "elements"});
    admm::PsraConfig cfg;
    cfg.cluster = cluster;
    row(t, "fixed rho=1", run(cfg, opt));
    auto aopt = opt;
    aopt.adaptive_rho.enabled = true;
    row(t, "adaptive (mu=10, tau=2)", run(cfg, aopt));
    t.Print(std::cout);
  }

  std::cout << "\n== E. Wire-format options (fixed full-barrier hierarchy) ==\n";
  {
    Table t({"option", "rel_error", "accuracy", "comm_time", "system_time",
             "elements"});
    admm::PsraConfig base;
    base.cluster = cluster;
    base.grouping = admm::GroupingMode::kHierarchical;
    row(t, "fp64 (baseline)", run(base, opt));

    auto mp = base;
    mp.mixed_precision = true;
    row(t, "mixed precision (fp32 wire)", run(mp, opt));

    auto cen = base;
    cen.censor_threshold = 1.0;
    cen.censor_decay = 0.98;
    auto cen_res = run(cen, opt);
    row(t, "censored deltas (COLA-style)", cen_res);
    t.Print(std::cout);
    std::cout << "censored transmissions: " << cen_res.censored_sends << "\n";
  }

  std::cout << "\nReadings: (A) psr <= ring on comm time at equal accuracy;"
               "\n(B) sparse encoding moves fewer elements early on; (C) small"
               "\nthresholds cut waiting but slow convergence (partial"
               "\nconsensus), the paper's nodes/2 balances both; (D) adaptive"
               "\nrho trades a little comm for better conditioning.\n";
  return 0;
}
