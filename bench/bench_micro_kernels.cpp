// Engineering micro-benchmarks (google-benchmark): host throughput of the
// numeric kernels and collectives. These are not paper figures; they guard
// against performance regressions in the building blocks.
#include <benchmark/benchmark.h>

#include "comm/collective.hpp"
#include "comm/group.hpp"
#include "data/synthetic.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/sparse_vector.hpp"
#include "solver/logistic.hpp"
#include "solver/tron.hpp"
#include "support/rng.hpp"

namespace {

using namespace psra;

void BM_DenseAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::DenseVector x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    linalg::Axpy(0.9, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseAxpy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_DenseDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::DenseVector x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseDot)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SoftThreshold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  linalg::DenseVector x(n), out(n);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    linalg::SoftThreshold(x, 0.5, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoftThreshold)->Arg(1 << 14);

void BM_SparseSum(benchmark::State& state) {
  const auto nnz = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const std::uint64_t dim = nnz * 8;
  auto make = [&] {
    auto picks = rng.SampleWithoutReplacement(dim, nnz);
    std::vector<linalg::SparseVector::Index> idx(picks.begin(), picks.end());
    std::vector<double> val(nnz, 1.0);
    return linalg::SparseVector(dim, std::move(idx), std::move(val));
  };
  const auto a = make(), b = make();
  for (auto _ : state) {
    auto s = linalg::SparseVector::Sum(a, b);
    benchmark::DoNotOptimize(s.nnz());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * nnz));
}
BENCHMARK(BM_SparseSum)->Arg(1 << 10)->Arg(1 << 14);

void BM_CsrMultiply(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_features = 4096;
  spec.num_train = static_cast<std::uint64_t>(state.range(0));
  spec.num_test = 1;
  spec.mean_row_nnz = 32;
  const auto gen = data::GenerateSynthetic(spec);
  linalg::DenseVector x(spec.num_features, 0.5), out(spec.num_train);
  for (auto _ : state) {
    gen.train.features().Multiply(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.train.nnz()));
}
BENCHMARK(BM_CsrMultiply)->Arg(512)->Arg(4096);

void BM_TronSolve(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_features = 1024;
  spec.num_train = 256;
  spec.num_test = 1;
  spec.mean_row_nnz = 24;
  const auto gen = data::GenerateSynthetic(spec);
  solver::ProximalLogistic f(&gen.train, 1.0);
  linalg::DenseVector v(spec.num_features, 0.01), z(spec.num_features, 0.0);
  f.SetIterationTerms(v, z);
  solver::TronOptions opt;
  opt.max_iterations = 10;
  opt.max_cg_iterations = 10;
  for (auto _ : state) {
    linalg::DenseVector x(spec.num_features, 0.0);
    const auto res = solver::TronMinimize(f, x, opt);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_TronSolve);

template <comm::AllreduceKind kKind>
void BM_SparseAllreduce(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::size_t c = 512;
  const std::uint64_t dim = n * c * 2;
  simnet::Topology topo(n, 1);
  simnet::CostModel cost;
  std::vector<simnet::Rank> members(n);
  for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
  comm::GroupComm group(&topo, &cost, members);

  Rng rng(3);
  std::vector<linalg::SparseVector> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto picks = rng.SampleWithoutReplacement(dim, c);
    std::vector<linalg::SparseVector::Index> idx(picks.begin(), picks.end());
    std::vector<double> val(c, 1.0);
    inputs.emplace_back(dim, std::move(idx), std::move(val));
  }
  const std::vector<simnet::VirtualTime> starts(n, 0.0);
  const auto alg = comm::MakeAllreduce(kKind);
  for (auto _ : state) {
    auto res = alg->RunSparse(group, inputs, starts);
    benchmark::DoNotOptimize(res.stats.all_done);
  }
}
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kRing>)->Arg(8)->Arg(32);
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kPsr>)->Arg(8)->Arg(32);
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kRhd>)->Arg(8)->Arg(32);
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kTree>)->Arg(8)->Arg(32);

void BM_SparseVectorSlice(benchmark::State& state) {
  Rng rng(5);
  const std::size_t nnz = 1 << 14;
  const std::uint64_t dim = nnz * 8;
  auto picks = rng.SampleWithoutReplacement(dim, nnz);
  std::vector<linalg::SparseVector::Index> idx(picks.begin(), picks.end());
  std::vector<double> val(nnz, 1.0);
  const linalg::SparseVector v(dim, std::move(idx), std::move(val));
  for (auto _ : state) {
    auto s = v.Slice(dim / 4, dim / 2);
    benchmark::DoNotOptimize(s.nnz());
  }
}
BENCHMARK(BM_SparseVectorSlice);

void BM_LogisticGradient(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_features = 4096;
  spec.num_train = 1024;
  spec.num_test = 1;
  spec.mean_row_nnz = 32;
  const auto gen = data::GenerateSynthetic(spec);
  solver::ProximalLogistic f(&gen.train, 1.0);
  linalg::DenseVector v(spec.num_features, 0.01), z(spec.num_features, 0.0);
  f.SetIterationTerms(v, z);
  linalg::DenseVector x(spec.num_features, 0.1), grad(spec.num_features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ValueAndGradient(x, grad));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.train.nnz()));
}
BENCHMARK(BM_LogisticGradient);

}  // namespace
