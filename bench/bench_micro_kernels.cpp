// Engineering micro-benchmarks (google-benchmark): host throughput of the
// numeric kernels and collectives. These are not paper figures; they guard
// against performance regressions in the building blocks.
//
// Invoked with --kernels-out <path> this binary instead runs the gated
// solver-kernel microbench (DESIGN.md §14): blocked-vs-scalar ratios for the
// linalg kernels plus the Gram-vs-CG x-update comparison on a tall url_like
// shard, written as BENCH_kernels.json and diffed in CI like
// BENCH_hotpath.json. All other arguments delegate to google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "comm/collective.hpp"
#include "comm/group.hpp"
#include "data/synthetic.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/gram.hpp"
#include "linalg/sparse_vector.hpp"
#include "solver/direct.hpp"
#include "solver/logistic.hpp"
#include "solver/tron.hpp"
#include "support/rng.hpp"

namespace {

using namespace psra;

void BM_DenseAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::DenseVector x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    linalg::Axpy(0.9, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseAxpy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_DenseDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::DenseVector x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseDot)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SoftThreshold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  linalg::DenseVector x(n), out(n);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto _ : state) {
    linalg::SoftThreshold(x, 0.5, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoftThreshold)->Arg(1 << 14);

void BM_SparseSum(benchmark::State& state) {
  const auto nnz = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const std::uint64_t dim = nnz * 8;
  auto make = [&] {
    auto picks = rng.SampleWithoutReplacement(dim, nnz);
    std::vector<linalg::SparseVector::Index> idx(picks.begin(), picks.end());
    std::vector<double> val(nnz, 1.0);
    return linalg::SparseVector(dim, std::move(idx), std::move(val));
  };
  const auto a = make(), b = make();
  for (auto _ : state) {
    auto s = linalg::SparseVector::Sum(a, b);
    benchmark::DoNotOptimize(s.nnz());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * nnz));
}
BENCHMARK(BM_SparseSum)->Arg(1 << 10)->Arg(1 << 14);

void BM_CsrMultiply(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_features = 4096;
  spec.num_train = static_cast<std::uint64_t>(state.range(0));
  spec.num_test = 1;
  spec.mean_row_nnz = 32;
  const auto gen = data::GenerateSynthetic(spec);
  linalg::DenseVector x(spec.num_features, 0.5), out(spec.num_train);
  for (auto _ : state) {
    gen.train.features().Multiply(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.train.nnz()));
}
BENCHMARK(BM_CsrMultiply)->Arg(512)->Arg(4096);

void BM_TronSolve(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_features = 1024;
  spec.num_train = 256;
  spec.num_test = 1;
  spec.mean_row_nnz = 24;
  const auto gen = data::GenerateSynthetic(spec);
  solver::ProximalLogistic f(&gen.train, 1.0);
  linalg::DenseVector v(spec.num_features, 0.01), z(spec.num_features, 0.0);
  f.SetIterationTerms(v, z);
  solver::TronOptions opt;
  opt.max_iterations = 10;
  opt.max_cg_iterations = 10;
  for (auto _ : state) {
    linalg::DenseVector x(spec.num_features, 0.0);
    const auto res = solver::TronMinimize(f, x, opt);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_TronSolve);

template <comm::AllreduceKind kKind>
void BM_SparseAllreduce(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::size_t c = 512;
  const std::uint64_t dim = n * c * 2;
  simnet::Topology topo(n, 1);
  simnet::CostModel cost;
  std::vector<simnet::Rank> members(n);
  for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
  comm::GroupComm group(&topo, &cost, members);

  Rng rng(3);
  std::vector<linalg::SparseVector> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto picks = rng.SampleWithoutReplacement(dim, c);
    std::vector<linalg::SparseVector::Index> idx(picks.begin(), picks.end());
    std::vector<double> val(c, 1.0);
    inputs.emplace_back(dim, std::move(idx), std::move(val));
  }
  const std::vector<simnet::VirtualTime> starts(n, 0.0);
  const auto alg = comm::MakeAllreduce(kKind);
  for (auto _ : state) {
    auto res = alg->RunSparse(group, inputs, starts);
    benchmark::DoNotOptimize(res.stats.all_done);
  }
}
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kRing>)->Arg(8)->Arg(32);
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kPsr>)->Arg(8)->Arg(32);
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kRhd>)->Arg(8)->Arg(32);
BENCHMARK(BM_SparseAllreduce<comm::AllreduceKind::kTree>)->Arg(8)->Arg(32);

void BM_SparseVectorSlice(benchmark::State& state) {
  Rng rng(5);
  const std::size_t nnz = 1 << 14;
  const std::uint64_t dim = nnz * 8;
  auto picks = rng.SampleWithoutReplacement(dim, nnz);
  std::vector<linalg::SparseVector::Index> idx(picks.begin(), picks.end());
  std::vector<double> val(nnz, 1.0);
  const linalg::SparseVector v(dim, std::move(idx), std::move(val));
  for (auto _ : state) {
    auto s = v.Slice(dim / 4, dim / 2);
    benchmark::DoNotOptimize(s.nnz());
  }
}
BENCHMARK(BM_SparseVectorSlice);

void BM_LogisticGradient(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.num_features = 4096;
  spec.num_train = 1024;
  spec.num_test = 1;
  spec.mean_row_nnz = 32;
  const auto gen = data::GenerateSynthetic(spec);
  solver::ProximalLogistic f(&gen.train, 1.0);
  linalg::DenseVector v(spec.num_features, 0.01), z(spec.num_features, 0.0);
  f.SetIterationTerms(v, z);
  linalg::DenseVector x(spec.num_features, 0.1), grad(spec.num_features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ValueAndGradient(x, grad));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.train.nnz()));
}
BENCHMARK(BM_LogisticGradient);

// ---------------------------------------------------------------------------
// Gated solver-kernel microbench (--kernels-out): emits BENCH_kernels.json.
// ---------------------------------------------------------------------------

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` seconds for one call of `fn`, where each timed sample runs
/// `inner` calls back to back (so sub-microsecond kernels still get a
/// multi-millisecond sample).
template <typename Fn>
double TimeBest(int reps, int inner, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = NowSeconds();
    for (int k = 0; k < inner; ++k) fn();
    const double dt = (NowSeconds() - t0) / inner;
    best = std::min(best, dt);
  }
  return best;
}

/// A raw copy of the CSR arrays so the scalar reference loops run over plain
/// pointers — the same access pattern the pre-blocking CsrMatrix kernels had.
struct RawCsr {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> rp;
  std::vector<std::uint64_t> ci;
  std::vector<double> va;
};

RawCsr ExtractRaw(const linalg::CsrMatrix& m) {
  RawCsr r;
  r.rows = static_cast<std::size_t>(m.rows());
  r.cols = static_cast<std::size_t>(m.cols());
  r.rp.reserve(r.rows + 1);
  r.rp.push_back(0);
  for (std::uint64_t row = 0; row < m.rows(); ++row) {
    const auto idx = m.RowIndices(row);
    const auto val = m.RowValues(row);
    r.ci.insert(r.ci.end(), idx.begin(), idx.end());
    r.va.insert(r.va.end(), val.begin(), val.end());
    r.rp.push_back(r.ci.size());
  }
  return r;
}

void ScalarCsrMultiply(const RawCsr& m, std::span<const double> x,
                       std::span<double> out) {
  for (std::size_t r = 0; r < m.rows; ++r) {
    double acc = 0.0;
    for (std::size_t k = m.rp[r]; k < m.rp[r + 1]; ++k) {
      acc += m.va[k] * x[static_cast<std::size_t>(m.ci[k])];
    }
    out[r] = acc;
  }
}

void ScalarCsrTransposeMultiplyAdd(const RawCsr& m, std::span<const double> v,
                                   std::span<double> out) {
  for (std::size_t r = 0; r < m.rows; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (std::size_t k = m.rp[r]; k < m.rp[r + 1]; ++k) {
      out[static_cast<std::size_t>(m.ci[k])] += vr * m.va[k];
    }
  }
}

void ScalarGemv(std::span<const double> a, std::size_t rows, std::size_t cols,
                std::span<const double> x, std::span<double> y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a.data() + r * cols;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
    y[r] = acc;
  }
}

void ScalarGemvT(std::span<const double> a, std::size_t rows, std::size_t cols,
                 std::span<const double> x, std::span<double> y) {
  linalg::SetZero(y);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a.data() + r * cols;
    const double xr = x[r];
    for (std::size_t j = 0; j < cols; ++j) y[j] += xr * row[j];
  }
}

struct KernelRow {
  std::string name;
  double scalar_s = 0.0;
  double blocked_s = 0.0;
  double ratio() const { return blocked_s > 0 ? scalar_s / blocked_s : 0.0; }
};

/// Matrix-free CG on the normal equations (A^T A + rho I) x = rhs — the
/// least-squares x-update a worker WITHOUT the cached Gram has to run every
/// ADMM iteration, streaming the shard twice per CG step. The cached-Gram
/// direct path solves the identical subproblem from its factor.
int LsCgSolve(const linalg::CsrMatrix& m, std::span<const double> rhs,
              double rho, std::span<double> x, linalg::DenseVector& r,
              linalg::DenseVector& p, linalg::DenseVector& hp,
              linalg::DenseVector& ax, double tol, int max_iters) {
  const std::size_t d = x.size();
  linalg::SetZero(x);
  for (std::size_t i = 0; i < d; ++i) {
    r[i] = rhs[i];
    p[i] = rhs[i];
  }
  double rr = linalg::Dot(r, r);
  const double stop = tol * tol * rr;
  int iters = 0;
  while (iters < max_iters && rr > stop) {
    ++iters;
    m.Multiply(p, ax);
    for (std::size_t i = 0; i < d; ++i) hp[i] = rho * p[i];
    m.TransposeMultiplyAdd(ax, hp);
    const double php = linalg::Dot(p, hp);
    if (php <= 0.0) break;
    const double alpha = rr / php;
    linalg::Axpy(alpha, p, x);
    const double rr_new = linalg::AxpyNormSq(-alpha, hp, r);
    const double beta = rr_new / rr;
    linalg::XpayNormSq(beta, r, p);
    rr = rr_new;
  }
  return iters;
}

int RunKernelGate(const std::string& out_path, bool quick) {
  const int reps = quick ? 3 : 7;
  std::vector<KernelRow> rows;

  // -- CSR kernels on a url_tall-shaped shard (tall, ~12 nnz/row). --------
  data::SyntheticSpec csr_spec;
  csr_spec.name = "url_tall_shard";
  csr_spec.num_features = 256;
  csr_spec.num_train = quick ? 8192 : 24576;
  csr_spec.num_test = 1;
  csr_spec.mean_row_nnz = 12.0;
  csr_spec.feature_skew = 1.2;
  csr_spec.seed = 46;
  const auto gen = data::GenerateSynthetic(csr_spec);
  const auto& mat = gen.train.features();
  const RawCsr raw = ExtractRaw(mat);
  const auto nrows = static_cast<std::size_t>(mat.rows());
  const auto ncols = static_cast<std::size_t>(mat.cols());

  {
    linalg::DenseVector x(ncols, 0.5), out_s(nrows), out_b(nrows);
    KernelRow k{"csr_multiply"};
    k.scalar_s = TimeBest(reps, 50, [&] { ScalarCsrMultiply(raw, x, out_s); });
    k.blocked_s = TimeBest(reps, 50, [&] { mat.Multiply(x, out_b); });
    rows.push_back(k);
  }
  {
    linalg::DenseVector v(nrows, 0.25), out_s(ncols, 0.0), out_b(ncols, 0.0);
    KernelRow k{"csr_transpose_multiply_add"};
    k.scalar_s =
        TimeBest(reps, 50, [&] { ScalarCsrTransposeMultiplyAdd(raw, v, out_s); });
    k.blocked_s = TimeBest(reps, 50, [&] { mat.TransposeMultiplyAdd(v, out_b); });
    rows.push_back(k);
  }

  // -- Dense register-blocked gemv / gemv_t. ------------------------------
  {
    const std::size_t n = 512;
    Rng rng(7);
    linalg::DenseVector a(n * n);
    for (auto& v : a) v = rng.NextGaussian();
    linalg::DenseVector x(n, 0.5), y_s(n), y_b(n);
    KernelRow k{"gemv"};
    k.scalar_s = TimeBest(reps, 200, [&] { ScalarGemv(a, n, n, x, y_s); });
    k.blocked_s = TimeBest(reps, 200, [&] { linalg::Gemv(a, n, n, x, y_b); });
    rows.push_back(k);
    KernelRow kt{"gemv_t"};
    kt.scalar_s = TimeBest(reps, 200, [&] { ScalarGemvT(a, n, n, x, y_s); });
    kt.blocked_s = TimeBest(reps, 200, [&] { linalg::GemvT(a, n, n, x, y_b); });
    rows.push_back(kt);
  }

  // -- Fused axpy + ||y||^2 vs the separate Axpy/Dot pair. ----------------
  {
    const std::size_t n = 1 << 16;
    linalg::DenseVector x(n, 1e-8), y(n, 0.5);
    double sink = 0.0;
    KernelRow k{"fused_axpy_normsq"};
    k.scalar_s = TimeBest(reps, 200, [&] {
      linalg::Axpy(1e-9, x, y);
      sink += linalg::Dot(y, y);
    });
    k.blocked_s = TimeBest(reps, 200, [&] {
      sink += linalg::AxpyNormSq(1e-9, x, y);
    });
    benchmark::DoNotOptimize(sink);
    rows.push_back(k);
  }

  // -- x-update on the tall shard: the least-squares subproblem solved
  //    matrix-free by CG on the normal equations (streams the shard every
  //    iteration) vs the cached-Gram direct solve (factor once, then a pair
  //    of packed triangular substitutions). Plus the logistic TRON variant
  //    with the Gram-accelerated Hessian, reported as a tripwire ratio. ----
  solver::TronOptions topt;
  topt.max_iterations = 10;
  topt.max_cg_iterations = 10;
  topt.gradient_tolerance = 1e-2;
  linalg::DenseVector v(ncols, 0.01), z(ncols, 0.0), x(ncols, 0.0);
  solver::TronWorkspace tws;
  const int solve_reps = quick ? 3 : 8;

  solver::ProximalLogistic f_cg(&gen.train, 1.0);
  f_cg.SetIterationTerms(v, z);
  const double tron_cg_solve_s = TimeBest(solve_reps, 1, [&] {
    linalg::SetZero(x);
    solver::TronMinimize(f_cg, x, topt, nullptr, tws);
  });

  solver::ProximalLogistic f_gram(&gen.train, 1.0);
  f_gram.SetUseGramHessian(true);
  f_gram.SetIterationTerms(v, z);
  const double tron_gram_solve_s = TimeBest(solve_reps, 1, [&] {
    linalg::SetZero(x);
    solver::TronMinimize(f_gram, x, topt, nullptr, tws);
  });

  // Shared right-hand side A^T b - v + rho z (both solvers cache A^T b; the
  // per-iteration terms are what change inside ADMM).
  const double rho = 1.0;
  linalg::DenseVector atb(ncols, 0.0);
  mat.TransposeMultiplyAdd(gen.train.labels(), atb);
  linalg::DenseVector rhs(ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    rhs[i] = atb[i] - v[i] + rho * z[i];
  }
  linalg::DenseVector cg_r(ncols), cg_p(ncols), cg_hp(ncols), cg_ax(nrows);
  int ls_cg_iters = 0;
  const double ls_cg_solve_s = TimeBest(solve_reps, 1, [&] {
    ls_cg_iters = LsCgSolve(mat, rhs, rho, x, cg_r, cg_p, cg_hp, cg_ax,
                            /*tol=*/1e-6, /*max_iters=*/4 * 256);
  });

  const double t_build0 = NowSeconds();
  solver::CachedGramLeastSquares direct(&mat, gen.train.labels(), rho);
  const double direct_build_s = NowSeconds() - t_build0;
  const double t_first0 = NowSeconds();
  direct.Solve(v, z, x);
  const double direct_first_solve_s = NowSeconds() - t_first0;
  const double direct_resolve_s =
      TimeBest(solve_reps, 20, [&] { direct.Solve(v, z, x); });
  double rho_flip = 2.0;
  const double direct_refactor_s = TimeBest(solve_reps, 5, [&] {
    direct.SetRho(rho_flip);
    rho_flip = rho_flip == 2.0 ? 4.0 : 2.0;
    direct.Solve(v, z, x);
  });

  // Headline gate: per-ADMM-iteration x-update cost, steady state (the
  // factor is cached; CG re-streams the shard every time).
  const double gram_over_cg =
      direct_resolve_s > 0 ? ls_cg_solve_s / direct_resolve_s : 0.0;
  const double tron_gram_over_cg =
      tron_gram_solve_s > 0 ? tron_cg_solve_s / tron_gram_solve_s : 0.0;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"kernels\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"config\": {\"shard_rows\": " << nrows
      << ", \"shard_cols\": " << ncols
      << ", \"tron_outer\": " << topt.max_iterations
      << ", \"tron_cg\": " << topt.max_cg_iterations << "},\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& k = rows[i];
    out << "    {\"name\": \"" << k.name << "\", \"scalar_us\": "
        << k.scalar_s * 1e6 << ", \"blocked_us\": " << k.blocked_s * 1e6
        << ", \"blocked_over_scalar\": " << k.ratio() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"xupdate\": {\n";
  out << "    \"rows\": " << nrows << ",\n";
  out << "    \"cols\": " << ncols << ",\n";
  out << "    \"ls_cg_solve_ms\": " << ls_cg_solve_s * 1e3 << ",\n";
  out << "    \"ls_cg_iters\": " << ls_cg_iters << ",\n";
  out << "    \"direct_gram_build_ms\": " << direct_build_s * 1e3 << ",\n";
  out << "    \"direct_first_solve_ms\": " << direct_first_solve_s * 1e3
      << ",\n";
  out << "    \"direct_resolve_ms\": " << direct_resolve_s * 1e3 << ",\n";
  out << "    \"direct_refactor_ms\": " << direct_refactor_s * 1e3 << ",\n";
  out << "    \"tron_cg_solve_ms\": " << tron_cg_solve_s * 1e3 << ",\n";
  out << "    \"tron_gram_solve_ms\": " << tron_gram_solve_s * 1e3 << "\n";
  out << "  },\n";
  out << "  \"tron_gram_over_cg\": " << tron_gram_over_cg << ",\n";
  out << "  \"gram_over_cg\": " << gram_over_cg << "\n";
  out << "}\n";
  out.close();

  std::cout << "kernel gate: gram_over_cg=" << gram_over_cg
            << " tron_gram_over_cg=" << tron_gram_over_cg;
  for (const auto& k : rows) {
    std::cout << " " << k.name << "=" << k.ratio();
  }
  std::cout << " -> " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernels_out;
  bool quick = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernels-out" && i + 1 < argc) {
      kernels_out = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!kernels_out.empty()) {
    return RunKernelGate(kernels_out, quick);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
