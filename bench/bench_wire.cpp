// bench_wire: wall-clock calibration of the wire collectives over real
// loopback TCP sockets, one OS process per rank, against the simulator's
// virtual-time model of the identical collective.
//
//   bench_wire --ranks 4 [--dim 65536] [--reps 10]
//              [--out CALIB_transport.json] [--metrics metrics_wire.json]
//
// For each (algorithm, density) case every rank runs `reps` timed
// collectives (after warmup) between two fences; rank 0 reports
// measured seconds per collective next to the simulator's modeled
// completion time (CommStats::all_done under the default cost model) and
// their ratio. The ratio is NOT expected to be 1.0 — the cost model prices
// a 10GbE-class fabric, loopback is a memory copy — it is the documented
// calibration constant between the two (DESIGN.md section 11).
//
// Artifacts (written by rank 0):
//   CALIB_transport.json   one record per case: modeled_s, measured_s, ratio
//   metrics_wire.json      schema-checked metrics: comm.allreduce.* traffic
//                          aggregated across ranks over the transport
//                          itself, run summary gauges, transport.* counters
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "comm/collective.hpp"
#include "comm/transport.hpp"
#include "comm/wire_allreduce.hpp"
#include "comm/wire_obs.hpp"
#include "obs/metrics.hpp"
#include "obs/wire.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "transport/launch.hpp"
#include "transport/tcp.hpp"

namespace {

using psra::comm::AllreduceKind;
using psra::comm::CommStats;
using psra::comm::GroupComm;
using psra::comm::Transport;
using psra::comm::WireCollectives;
using psra::comm::WireStats;
using psra::linalg::DenseVector;
using psra::linalg::SparseVector;
using psra::simnet::Rank;
using psra::simnet::VirtualTime;
using psra::transport::TcpOptions;
using psra::transport::TcpTransport;

// Below Transport::kMaxCollectiveTag: [kMaxCollectiveTag, kMaxUserTag) is
// the obs collection plane's reserved range.
constexpr Transport::Tag kStatsBase = 0xFFFC0000u;

struct Case {
  AllreduceKind kind;
  bool sparse;
  const char* name;   // case label in CALIB_transport.json
  const char* metric; // comm.allreduce.<metric> key segment
};

/// Stage names the wire collectives record for this algorithm, in schedule
/// order (wire.phase.<name>.wall_s histograms).
std::span<const char* const> PhaseNames(AllreduceKind kind) {
  static constexpr const char* kTwoStage[] = {"scatter_reduce", "allgather"};
  static constexpr const char* kRooted[] = {"gather", "broadcast"};
  return kind == AllreduceKind::kNaive ? std::span<const char* const>(kRooted)
                                       : std::span<const char* const>(
                                             kTwoStage);
}

/// (sum, count) snapshot of one histogram; subtraction isolates the timed
/// window of a case from its warmup and from earlier cases.
struct HistoSnap {
  double sum = 0.0;
  std::uint64_t count = 0;
};

HistoSnap Snap(const psra::obs::MetricsRegistry& reg,
               const std::string& name) {
  const auto it = reg.histograms().find(name);
  if (it == reg.histograms().end()) return {};
  return {it->second.sum, it->second.count};
}

constexpr Case kCases[] = {
    {AllreduceKind::kPsr, false, "psr_dense", "psr"},
    {AllreduceKind::kPsr, true, "psr_sparse", "psr"},
    {AllreduceKind::kRing, false, "ring_dense", "ring"},
    {AllreduceKind::kRing, true, "ring_sparse", "ring"},
    {AllreduceKind::kNaive, false, "naive_dense", "naive"},
    {AllreduceKind::kNaive, true, "naive_sparse", "naive"},
};

DenseVector MakeDense(std::uint32_t rank, std::uint64_t dim) {
  psra::Rng rng(1234 + rank);
  DenseVector v(dim);
  for (auto& x : v) x = rng.NextDouble(-1.0, 1.0);
  return v;
}

SparseVector MakeSparse(std::uint32_t rank, std::uint64_t dim) {
  psra::Rng rng(99 + rank);
  std::vector<SparseVector::Index> idx;
  std::vector<double> val;
  for (std::uint64_t i = 0; i < dim; ++i) {
    if (rng.NextDouble() < 0.25) {
      idx.push_back(i);
      val.push_back(rng.NextDouble(-2.0, 2.0));
    }
  }
  return SparseVector(dim, std::move(idx), std::move(val));
}

struct PhaseResult {
  std::string name;
  double modeled_s = 0.0;   // simulator stage completion delta
  double measured_s = 0.0;  // mean wall seconds per timed collective
};

struct CaseResult {
  std::string name;
  double modeled_s = 0.0;
  double measured_s = 0.0;
  std::size_t invocations = 0;
  WireStats traffic;  // aggregated across all ranks, all invocations
  std::vector<PhaseResult> phases;
};

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

void RunWorker(const TcpOptions& opt, std::uint64_t dim, std::uint32_t reps,
               const std::string& out_path, const std::string& metrics_path) {
  constexpr std::uint32_t kWarmup = 2;
  TcpTransport t(opt);
  const std::uint32_t n = opt.world;

  // Simulator reference side (also supplies the byte pricing).
  psra::simnet::Topology topo(n, 1);
  psra::simnet::CostModel cost{psra::simnet::CostModelConfig{}};
  std::vector<Rank> sim_members(n);
  for (std::uint32_t i = 0; i < n; ++i) sim_members[i] = i;
  GroupComm group(&topo, &cost, sim_members);
  psra::obs::WireObs obs(opt.rank);
  t.AttachObs(&obs);
  WireCollectives wc(t, group.pricing(), &obs);

  std::vector<Transport::Rank> members(n);
  for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
  const std::vector<VirtualTime> starts(n, 0.0);

  std::vector<CaseResult> results;
  Transport::Tag stats_tag = kStatsBase;
  for (const Case& c : kCases) {
    // Modeled side: the omniscient simulator on identical inputs.
    CommStats sim_stats;
    psra::comm::AllreduceScratch scratch;
    const auto alg = psra::comm::MakeAllreduce(c.kind);
    std::vector<DenseVector> dense_in;
    std::vector<SparseVector> sparse_in;
    if (c.sparse) {
      for (std::uint32_t r = 0; r < n; ++r) {
        sparse_in.push_back(MakeSparse(r, dim));
      }
      SparseVector sum;
      alg->ReduceSparse(group, sparse_in, starts, scratch, sum, sim_stats);
    } else {
      for (std::uint32_t r = 0; r < n; ++r) {
        dense_in.push_back(MakeDense(r, dim));
      }
      DenseVector sum;
      alg->ReduceDense(group, dense_in, starts, scratch, sum, sim_stats);
    }

    // Measured side: warmup, fence, `reps` timed collectives, fence.
    WireStats st;
    DenseVector dense_out;
    SparseVector sparse_out;
    auto once = [&] {
      if (c.sparse) {
        wc.AllreduceSparse(c.kind, members, sparse_in[opt.rank], sparse_out,
                           st);
      } else {
        wc.AllreduceDense(c.kind, members, dense_in[opt.rank], dense_out, st);
      }
    };
    for (std::uint32_t i = 0; i < kWarmup; ++i) once();
    t.Fence();
    // Per-phase window: the wire.phase.* histograms accumulate across the
    // whole run, so the timed reps are isolated by snapshot subtraction.
    std::vector<HistoSnap> before;
    for (const char* phase : PhaseNames(c.kind)) {
      before.push_back(Snap(
          obs.metrics(), std::string("wire.phase.") + phase + ".wall_s"));
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < reps; ++i) once();
    t.Fence();
    const double wall = Seconds(std::chrono::steady_clock::now() - start);

    // Aggregate every rank's traffic on rank 0 (over the transport).
    CaseResult res;
    res.name = c.name;
    res.modeled_s = sim_stats.all_done;
    res.measured_s = wall / reps;
    res.invocations = kWarmup + reps;
    res.traffic = st;
    {
      const auto names = PhaseNames(c.kind);
      const double modeled_split[2] = {
          sim_stats.scatter_reduce_done,
          sim_stats.all_done - sim_stats.scatter_reduce_done};
      for (std::size_t i = 0; i < names.size(); ++i) {
        const HistoSnap after = Snap(
            obs.metrics(), std::string("wire.phase.") + names[i] + ".wall_s");
        PhaseResult pr;
        pr.name = names[i];
        pr.modeled_s = modeled_split[i];
        const std::uint64_t n = after.count - before[i].count;
        pr.measured_s = n > 0 ? (after.sum - before[i].sum) / n : 0.0;
        res.phases.push_back(std::move(pr));
      }
    }
    if (opt.rank == 0) {
      std::vector<std::byte> buf;
      for (std::uint32_t r = 1; r < n; ++r) {
        t.Recv(r, stats_tag, buf);
        std::size_t quad[4];
        std::memcpy(quad, buf.data(), sizeof(quad));
        res.traffic.elements_sent += quad[0];
        res.traffic.messages_sent += quad[1];
        res.traffic.bytes_sent += quad[2];
        res.traffic.rounds += quad[3];
      }
      results.push_back(res);
    } else {
      const std::size_t quad[4] = {st.elements_sent, st.messages_sent,
                                   st.bytes_sent, st.rounds};
      t.Post(0, stats_tag, std::as_bytes(std::span<const std::size_t>(quad)));
    }
    ++stats_tag;

    // Per-rank measured traffic; rank 0's MergeFrom during collection sums
    // these back into the same aggregates the quad shipping computed.
    {
      auto& m = obs.metrics();
      const std::string base = std::string("comm.allreduce.") + c.metric;
      if (opt.rank == 0) m.Counter(base + ".invocations") += kWarmup + reps;
      m.Counter(base + ".elements") += st.elements_sent;
      m.Counter(base + ".messages") += st.messages_sent;
      m.Counter(base + ".bytes") += st.bytes_sent;
      m.Counter(base + ".rounds") += st.rounds;
    }
  }
  if (opt.rank == 0) {
    std::uint64_t total_invocations = 0;
    double total_wall = 0.0;
    for (const auto& r : results) {
      total_invocations += r.invocations;
      total_wall += r.measured_s * (r.invocations - kWarmup);
    }
    auto& m = obs.metrics();
    m.Counter("engine.iterations") += total_invocations;
    m.Gauge("run.makespan_s") = total_wall;
    m.Gauge("run.cal_time_s") = 0.0;
    m.Gauge("run.comm_time_s") = total_wall;
    m.Gauge("run.iterations") = static_cast<double>(total_invocations);
  }

  // Collection plane: every rank's registry (and trace) lands on rank 0;
  // the merged registry is what metrics_wire.json carries, transport.*
  // counters now summed over the whole world.
  psra::comm::WireObsBundle bundle;
  const bool root = psra::comm::CollectWireObs(t, obs, &bundle);
  if (!root) return;

  // ---- CALIB_transport.json ----
  {
    std::ofstream os(out_path);
    if (!os) throw psra::IoError("cannot write " + out_path);
    char num[64];
    os << "{\n  \"ranks\": " << n << ",\n  \"dim\": " << dim
       << ",\n  \"reps\": " << reps << ",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      os << "    {\"name\": \"" << r.name << "\"";
      std::snprintf(num, sizeof(num), "%.9g", r.modeled_s);
      os << ", \"modeled_s\": " << num;
      std::snprintf(num, sizeof(num), "%.9g", r.measured_s);
      os << ", \"measured_s\": " << num;
      std::snprintf(num, sizeof(num), "%.9g",
                    r.modeled_s > 0 ? r.measured_s / r.modeled_s : 0.0);
      os << ", \"measured_over_modeled\": " << num;
      os << ", \"bytes_per_collective\": "
         << r.traffic.bytes_sent / r.invocations;
      os << ", \"phases\": [";
      for (std::size_t j = 0; j < r.phases.size(); ++j) {
        const auto& p = r.phases[j];
        os << (j > 0 ? ", " : "") << "{\"name\": \"" << p.name << "\"";
        std::snprintf(num, sizeof(num), "%.9g", p.modeled_s);
        os << ", \"modeled_s\": " << num;
        std::snprintf(num, sizeof(num), "%.9g", p.measured_s);
        os << ", \"measured_s\": " << num;
        std::snprintf(num, sizeof(num), "%.9g",
                      p.modeled_s > 0 ? p.measured_s / p.modeled_s : 0.0);
        os << ", \"measured_over_modeled\": " << num << "}";
      }
      os << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }

  // ---- metrics_wire.json (schema-gated, merged across all ranks) ----
  {
    std::ofstream os(metrics_path);
    if (!os) throw psra::IoError("cannot write " + metrics_path);
    bundle.metrics.WriteJson(os);
  }

  std::printf("bench_wire: %u ranks dim %llu reps %u\n", n,
              static_cast<unsigned long long>(dim), reps);
  for (const auto& r : results) {
    std::printf("  %-12s modeled %.6fs  measured %.6fs  ratio %.3f\n",
                r.name.c_str(), r.modeled_s, r.measured_s,
                r.modeled_s > 0 ? r.measured_s / r.modeled_s : 0.0);
  }
  std::printf("bench_wire: wrote %s and %s\n", out_path.c_str(),
              metrics_path.c_str());
}

int Run(int argc, char** argv) {
  psra::CliParser cli("bench_wire",
                      "Wall-clock calibration of wire collectives vs the "
                      "simulator's cost model");
  std::int64_t ranks = 4;
  std::int64_t dim = 65536;
  std::int64_t reps = 10;
  std::string out = "CALIB_transport.json";
  std::string metrics = "metrics_wire.json";
  cli.AddInt("ranks", &ranks, "worker processes (ignored in env-worker mode)");
  cli.AddInt("dim", &dim, "vector dimension");
  cli.AddInt("reps", &reps, "timed repetitions per case");
  cli.AddString("out", &out, "calibration JSON path");
  cli.AddString("metrics", &metrics, "metrics JSON path (schema-gated)");
  if (!cli.Parse(argc, argv)) return 0;
  if (dim < 1 || reps < 1) {
    std::fprintf(stderr, "bench_wire: --dim and --reps must be >= 1\n");
    return 2;
  }
  const auto u64 = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };

  if (std::getenv("PSRA_RANK") != nullptr) {
    RunWorker(TcpOptions::FromEnv(), u64(dim),
              static_cast<std::uint32_t>(reps), out, metrics);
    return 0;
  }
  if (ranks < 1 || ranks > 64) {
    std::fprintf(stderr, "bench_wire: --ranks must be in [1, 64]\n");
    return 2;
  }
  const auto result = psra::transport::ForkRanks(
      static_cast<std::uint32_t>(ranks), [&](const TcpOptions& opt) {
        RunWorker(opt, u64(dim), static_cast<std::uint32_t>(reps), out,
                  metrics);
      });
  if (!result.AllZero()) {
    std::fprintf(stderr, "bench_wire: FAILED exit codes:");
    for (int c : result.exit_codes) std::fprintf(stderr, " %d", c);
    std::fprintf(stderr, "\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_wire: %s\n", e.what());
    return 1;
  }
}
