// Figure 7 reproduction: the dynamic grouping strategy under injected
// stragglers. Paper Section 5.5: random nodes are slowed down; PSRA-HGADMM
// with the Group Generator (dynamic grouping) is compared against the same
// algorithm with a full leader barrier (no grouping), over 4-32 nodes.
#include <iostream>

#include "admm/artifacts.hpp"
#include "admm/psra_hgadmm.hpp"
#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::string nodes_csv = "4,8,16,32";
  std::int64_t wpn = 4, iterations = 100;
  std::string datasets_csv = "news20,webspam,url";
  double scale = 0.0, straggler_prob = 0.25, slow_min = 3.0, slow_max = 6.0;
  CliParser cli("bench_fig7_grouping",
                "paper Fig. 7: dynamic grouping vs no grouping w/ stragglers");
  cli.AddString("nodes", &nodes_csv, "comma-separated node counts");
  cli.AddInt("workers-per-node", &wpn, "workers per node (paper: 4)");
  cli.AddInt("iterations", &iterations, "ADMM iterations (paper: 100)");
  cli.AddString("datasets", &datasets_csv, "datasets to run");
  cli.AddDouble("scale", &scale, "profile scale (0 = per-dataset default)");
  cli.AddDouble("straggler-prob", &straggler_prob,
                "per-node straggle probability per iteration");
  cli.AddDouble("slow-min", &slow_min, "min straggler slowdown factor");
  cli.AddDouble("slow-max", &slow_max, "max straggler slowdown factor");
  admm::RunArtifactPaths artifacts;
  admm::AddArtifactFlags(cli, &artifacts);
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  for (const auto& dataset : bench::ParseList(datasets_csv)) {
    std::cout << "\n== Fig.7 | " << dataset << " (straggler prob "
              << straggler_prob << ", slowdown " << slow_min << "-"
              << slow_max << "x) ==\n";
    Table table({"strategy", "nodes", "workers", "cal_time", "comm_time",
                 "system_time", "accuracy"});

    // comm time at the smallest/largest cluster per strategy, for the
    // paper's -62% / +36% style trend statement.
    std::map<bool, std::pair<double, double>> comm_first_last;

    for (const bool dynamic : {true, false}) {
      for (const auto& node_tok : bench::ParseList(nodes_csv)) {
        const auto nodes = static_cast<std::uint32_t>(ParseInt(node_tok));
        admm::ClusterConfig cluster;
        cluster.num_nodes = nodes;
        cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
        cluster.straggler.node_probability = straggler_prob;
        cluster.straggler.slow_factor_min = slow_min;
        cluster.straggler.slow_factor_max = slow_max;

        const auto problem =
            bench::MakeProblem(dataset, scale, cluster.world_size());
        admm::RunOptions opt;
        opt.max_iterations = static_cast<std::uint64_t>(iterations);
        opt.tron = bench::BenchTron();
        opt.eval_every = opt.max_iterations;

        admm::PsraConfig cfg;
        cfg.cluster = cluster;
        cfg.grouping = dynamic ? admm::GroupingMode::kDynamicGroups
                               : admm::GroupingMode::kHierarchical;
        const auto res = admm::PsraHgAdmm(cfg).Run(problem, opt);

        table.AddRow({dynamic ? "dynamic-grouping" : "no-grouping",
                      std::to_string(nodes),
                      std::to_string(cluster.world_size()),
                      FormatDuration(res.total_cal_time),
                      FormatDuration(res.total_comm_time),
                      FormatDuration(res.SystemTime()),
                      Table::Cell(res.final_accuracy, 4)});

        if (comm_first_last.find(dynamic) == comm_first_last.end()) {
          comm_first_last[dynamic] = {res.total_comm_time,
                                      res.total_comm_time};
        } else {
          comm_first_last[dynamic].second = res.total_comm_time;
        }
      }
    }
    table.Print(std::cout);
    for (const auto& [dynamic, fl] : comm_first_last) {
      const double change = 100.0 * (fl.second - fl.first) / fl.first;
      std::cout << (dynamic ? "dynamic-grouping" : "no-grouping      ")
                << " comm time, smallest -> largest cluster: "
                << (change >= 0 ? "+" : "") << FormatDouble(change, 4)
                << "% (paper on webspam: -62% grouped / +36% ungrouped)\n";
    }
  }
  std::cout << "\nShape to check: at 4 nodes the two strategies are close"
               "\n(grouping overhead can even lose); from 8 nodes up the"
               "\ndynamic grouping wins and the gap widens with scale.\n";

  // ---- Observability artifacts: one instrumented dynamic-grouping run on
  // the smallest configured cluster / first dataset (the WLG metrics —
  // wlg.group_size, wlg.gg_wait_s — are this bench's subject).
  if (artifacts.any()) {
    const auto nodes = static_cast<std::uint32_t>(
        ParseInt(bench::ParseList(nodes_csv).front()));
    const std::string dataset = bench::ParseList(datasets_csv).front();
    admm::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
    cluster.straggler.node_probability = straggler_prob;
    cluster.straggler.slow_factor_min = slow_min;
    cluster.straggler.slow_factor_max = slow_max;
    const auto problem =
        bench::MakeProblem(dataset, scale, cluster.world_size());
    admm::RunOptions opt;
    opt.max_iterations = static_cast<std::uint64_t>(iterations);
    opt.tron = bench::BenchTron();
    opt.eval_every = 1;

    obs::ObsContext obs;
    opt.obs = &obs;
    admm::PsraConfig cfg;
    cfg.cluster = cluster;
    cfg.grouping = admm::GroupingMode::kDynamicGroups;
    const auto res = admm::PsraHgAdmm(cfg).Run(problem, opt);
    admm::WriteRunArtifacts(artifacts, obs, res);
    std::cout << "\nartifacts (dynamic grouping, " << dataset << ", " << nodes
              << " nodes) written\n";
  }
  return 0;
}
