// Scale acceptance bench: the event core at O(10k) workers.
//
// Drives one flat-grouping PSRA-HGADMM run at --workers workers (default
// 10240) for --iterations iterations (default 1000) on the tiny "smoke"
// profile, and reports host wall time and iterations/sec. This is the run
// the timer-wheel + event-arena redesign is sized for: every iteration
// schedules tens of thousands of events, so a single run exercises tens of
// millions of wheel insert/pop cycles with zero steady-state allocations.
//
// --verify-pool re-runs a short prefix of the same configuration twice —
// serial host loop, then on the thread pool — and requires the final
// consensus vector and every traffic counter to match bitwise. Virtual time
// is simulated, so pool size must never change results; this is the
// cross-pool determinism gate from the scale acceptance criteria.
//
// Results are emitted as BENCH_scale.json in the current directory (and
// echoed to stdout) so CI can archive large-N numbers next to the sweep
// metrics.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "admm/psra_hgadmm.hpp"
#include "bench_util.hpp"
#include "engine/thread_pool.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"

namespace {

using namespace psra;

comm::AllreduceKind ParseKind(const std::string& name) {
  if (name == "naive") return comm::AllreduceKind::kNaive;
  if (name == "ring") return comm::AllreduceKind::kRing;
  if (name == "psr") return comm::AllreduceKind::kPsr;
  if (name == "rhd") return comm::AllreduceKind::kRhd;
  if (name == "tree") return comm::AllreduceKind::kTree;
  throw InvalidArgument("unknown algorithm token '" + name + "'");
}

admm::RunResult RunOnce(const admm::ConsensusProblem& problem,
                        const admm::PsraConfig& cfg, engine::ThreadPool* pool,
                        std::uint64_t iterations) {
  admm::RunOptions opt;
  opt.max_iterations = iterations;
  opt.tron = bench::BenchTron();
  opt.eval_every = iterations;  // objective/accuracy once, at the end
  opt.pool = pool;
  return admm::PsraHgAdmm(cfg).Run(problem, opt);
}

/// Bitwise equality of two runs: consensus vector and traffic counters.
/// (Exact ==, not a tolerance — the determinism contract is bit-for-bit.)
bool SameRun(const admm::RunResult& a, const admm::RunResult& b) {
  if (a.final_z.size() != b.final_z.size()) return false;
  for (std::size_t i = 0; i < a.final_z.size(); ++i) {
    if (a.final_z[i] != b.final_z[i]) return false;
  }
  return a.makespan == b.makespan && a.elements_sent == b.elements_sent &&
         a.messages_sent == b.messages_sent &&
         a.iterations_run == b.iterations_run;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t workers = 10240, wpn = 1, iterations = 1000;
  std::int64_t pool_threads = -1, verify_iterations = 25;
  std::string dataset = "smoke", algorithm = "naive";
  double scale = 0.0;
  bool verify_pool = false;
  std::string log_level = "warn";
  CliParser cli("bench_scale",
                "O(10k)-worker flat-grouping scale run (wall time, iters/sec)");
  cli.AddInt("workers", &workers, "total workers (default 10240)");
  cli.AddInt("workers-per-node", &wpn, "workers per node (default 1)");
  cli.AddInt("iterations", &iterations, "ADMM iterations for the timed run");
  cli.AddInt("pool", &pool_threads,
             "host pool threads (-1 = hardware concurrency, 0 = serial)");
  cli.AddString("dataset", &dataset, "dataset profile (default smoke)");
  cli.AddDouble("scale", &scale, "profile scale (0 = dataset default)");
  cli.AddString("algorithm", &algorithm,
                "inter-node collective: psr|ring|naive|rhd|tree");
  cli.AddBool("verify-pool", &verify_pool,
              "also run a short serial-vs-pooled prefix and require bitwise "
              "identical results");
  cli.AddInt("verify-iterations", &verify_iterations,
             "iteration count for the --verify-pool prefix");
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);
  PSRA_REQUIRE(workers >= 1 && wpn >= 1 && workers % wpn == 0,
               "--workers must be a positive multiple of --workers-per-node");

  if (pool_threads < 0) {
    pool_threads = static_cast<std::int64_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  std::optional<engine::ThreadPool> pool;
  if (pool_threads > 0) pool.emplace(static_cast<std::size_t>(pool_threads));
  engine::ThreadPool* host = pool.has_value() ? &*pool : nullptr;

  admm::PsraConfig cfg;
  cfg.cluster.num_nodes = static_cast<std::uint32_t>(workers / wpn);
  cfg.cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  cfg.grouping = admm::GroupingMode::kFlat;
  cfg.allreduce = ParseKind(algorithm);
  // Dense transport: the scale run measures event-core throughput, not the
  // sparse encoding (the sweep covers that).
  cfg.sparse_comm = false;

  const auto problem =
      bench::MakeProblem(dataset, scale, cfg.cluster.world_size());
  std::cout << "bench_scale: " << dataset << " dim=" << problem.dim()
            << " workers=" << problem.num_workers() << " iterations="
            << iterations << " host=" << (host ? "pool" : "serial")
            << pool_threads << "\n";

  bool verify_ok = true;
  if (verify_pool) {
    PSRA_REQUIRE(host != nullptr, "--verify-pool needs --pool > 0");
    const auto serial = RunOnce(problem, cfg, nullptr,
                                static_cast<std::uint64_t>(verify_iterations));
    const auto pooled = RunOnce(problem, cfg, host,
                                static_cast<std::uint64_t>(verify_iterations));
    verify_ok = SameRun(serial, pooled);
    std::cout << "  verify-pool (" << verify_iterations << " iters): "
              << (verify_ok ? "bitwise identical" : "MISMATCH") << "\n";
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto res =
      RunOnce(problem, cfg, host, static_cast<std::uint64_t>(iterations));
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  const double ips =
      wall > 0 ? static_cast<double>(res.iterations_run) / wall : 0.0;

  std::cout << "  wall: " << wall << " s for " << res.iterations_run
            << " iterations (" << ips << " iters/sec)\n"
            << "  virtual makespan: " << res.makespan << " s, messages: "
            << res.messages_sent << "\n";

  std::ofstream json("BENCH_scale.json");
  json << "{\n  \"benchmark\": \"scale\",\n  \"dataset\": \"" << dataset
       << "\",\n  \"workers\": " << problem.num_workers()
       << ",\n  \"workers_per_node\": " << wpn << ",\n  \"algorithm\": \""
       << algorithm << "\",\n  \"pool_threads\": " << pool_threads
       << ",\n  \"iterations\": " << res.iterations_run
       << ",\n  \"wall_seconds\": " << wall << ",\n  \"iters_per_sec\": "
       << ips << ",\n  \"messages_sent\": " << res.messages_sent
       << ",\n  \"verify_pool\": "
       << (verify_pool ? (verify_ok ? "\"ok\"" : "\"mismatch\"") : "\"skipped\"")
       << "\n}\n";
  std::cout << "wrote BENCH_scale.json\n";
  return verify_ok ? 0 : 3;
}
