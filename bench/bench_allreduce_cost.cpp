// Section 4.2 cost-model reproduction (supports Figures 1-2 and eq. 11-16):
// measured communication cost of Ring-Allreduce vs PSR-Allreduce across
// worker counts and sparsity layouts, checked against the paper's analytic
// bounds. theta_s is normalized to 1 so every number is in units of
// "sparse-element transfer times".
//
// Layouts (c = nnz per worker):
//   uniform      nonzeros spread evenly over all N blocks (paper best case)
//   own-block    each worker's nonzeros live in its own block (PSR T_sr = 0)
//   hot-overlap  all workers share the same c indices in block 0
//   hot-disjoint all nonzeros in block 0, disjoint across workers
//                (Ring's true worst case: partial sums grow as they travel)
#include <algorithm>
#include <iostream>

#include "comm/collective.hpp"
#include "comm/group.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace {

using namespace psra;
using linalg::SparseVector;

std::vector<SparseVector> MakeLayout(const std::string& kind, std::uint32_t n,
                                     std::size_t c, std::uint64_t dim,
                                     const comm::GroupComm& group) {
  std::vector<SparseVector> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<SparseVector::Index> idx;
    if (kind == "uniform") {
      // c/N (rounded) indices per block, same positions for everyone.
      const std::size_t per_block = std::max<std::size_t>(1, c / n);
      for (std::uint32_t b = 0; b < n; ++b) {
        const auto [lo, hi] = group.BlockRange(dim, b);
        for (std::size_t k = 0; k < per_block && lo + k < hi; ++k) {
          idx.push_back(lo + k);
        }
      }
    } else if (kind == "own-block") {
      const auto [lo, hi] = group.BlockRange(dim, i);
      for (std::size_t k = 0; k < c && lo + k < hi; ++k) idx.push_back(lo + k);
    } else if (kind == "hot-overlap") {
      for (std::size_t k = 0; k < c; ++k) idx.push_back(k);
    } else {  // hot-disjoint
      for (std::size_t k = 0; k < c; ++k) {
        idx.push_back(static_cast<std::uint64_t>(i) * c + k);
      }
    }
    std::vector<double> val(idx.size(), 1.0);
    out.emplace_back(dim, std::move(idx), std::move(val));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t nnz = 256;
  std::string workers_csv = "2,4,8,16,32,64";
  CliParser cli("bench_allreduce_cost",
                "Ring vs PSR Allreduce cost under the paper's sparse layouts");
  cli.AddInt("nnz", &nnz, "nonzeros per worker (the paper's c)");
  cli.AddString("workers", &workers_csv, "comma-separated worker counts");
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);
  const auto c = static_cast<std::size_t>(nnz);

  // theta_s = 1: 16-byte sparse elements over a 16 B/s link, zero latency.
  simnet::CostModelConfig cfg;
  cfg.net_bandwidth_bytes_per_s = 16.0;
  cfg.bus_bandwidth_bytes_per_s = 16.0;
  cfg.net_latency_s = 0.0;
  cfg.bus_latency_s = 0.0;
  const simnet::CostModel cost(cfg);

  Table table({"layout", "N", "T_ring", "T_psr", "psr/ring", "bound_lo",
               "ring_bound_hi", "psr_bound_hi"});

  for (const std::string layout :
       {"uniform", "own-block", "hot-overlap", "hot-disjoint"}) {
    for (const auto& wtok : Split(workers_csv, ',')) {
      const auto n = static_cast<std::uint32_t>(ParseInt(wtok));
      const simnet::Topology topo(n, 1);
      std::vector<simnet::Rank> members(n);
      for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
      const comm::GroupComm group(&topo, &cost, members);
      // hot-disjoint needs all n*c distinct indices to fit inside block 0
      // (size dim/n), i.e. dim >= n^2 * c.
      const std::uint64_t dim =
          layout == "hot-disjoint"
              ? static_cast<std::uint64_t>(n) * n * c * 2
              : std::max<std::uint64_t>(static_cast<std::uint64_t>(n) * c * 2,
                                        static_cast<std::uint64_t>(n));

      const auto inputs = MakeLayout(layout, n, c, dim, group);
      const std::vector<simnet::VirtualTime> starts(n, 0.0);

      const auto ring = comm::MakeAllreduce("ring")->RunSparse(group, inputs,
                                                               starts);
      const auto psr = comm::MakeAllreduce("psr")->RunSparse(group, inputs,
                                                             starts);
      const double cd = static_cast<double>(c);
      const double nd = static_cast<double>(n);
      table.AddRow({layout, std::to_string(n),
                    Table::Cell(ring.stats.all_done, 6),
                    Table::Cell(psr.stats.all_done, 6),
                    Table::Cell(psr.stats.all_done /
                                    std::max(1e-12, ring.stats.all_done),
                                3),
                    Table::Cell(2.0 * cd * (nd - 1) / nd, 6),   // eq. 13/16 lo
                    Table::Cell(1.5 * cd * nd * (nd - 1), 6),   // eq. 13 hi
                    Table::Cell(cd * nd, 6)});                  // eq. 16 hi
    }
  }
  table.Print(std::cout);
  std::cout <<
      "\nT in units of theta_s (one sparse element transfer). bound_lo is the"
      "\nshared best case 2c*theta*(N-1)/N; ring_bound_hi = 1.5cN(N-1)*theta"
      "\n(eq. 13); psr_bound_hi = cN*theta (eq. 16, overlap worst case)."
      "\nShapes to check: uniform ties; PSR wins on hot layouts and the gap"
      "\ngrows ~N; PSR scatter cost is zero for own-block (eq. 14).\n";
  return 0;
}
