// Train on a real LIBSVM file (e.g. the actual news20/webspam/url from the
// LIBSVM site) with any of the registered algorithms. If no file is given,
// a synthetic stand-in is written to /tmp and used, so the example is
// runnable offline end to end.
//
//   ./libsvm_train --file path/to/data.svm --algorithm psra-hgadmm
#include <iostream>

#include "admm/problem.hpp"
#include "admm/registry.hpp"
#include "data/libsvm_io.hpp"
#include "data/synthetic.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::string file, algorithm = "psra-hgadmm";
  std::int64_t nodes = 4, wpn = 4, iterations = 30, max_samples = 20000;
  double train_fraction = 0.8, lambda = 1.0;
  CliParser cli("libsvm_train", "train on a LIBSVM-format file");
  cli.AddString("file", &file, "LIBSVM file (empty: generate a demo file)");
  cli.AddString("algorithm", &algorithm,
                "psra-hgadmm | psra-admm | hgadmm-nogroup | admmlib | ad-admm");
  cli.AddInt("nodes", &nodes, "simulated nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("iterations", &iterations, "ADMM iterations");
  cli.AddInt("max-samples", &max_samples, "cap on samples read (0 = all)");
  cli.AddDouble("train-fraction", &train_fraction, "train/test split");
  cli.AddDouble("lambda", &lambda, "L1 regularization strength");
  if (!cli.Parse(argc, argv)) return 0;

  if (file.empty()) {
    file = "/tmp/psra_demo.svm";
    std::cout << "no --file given; writing a synthetic demo to " << file
              << "\n";
    data::SyntheticSpec spec;
    spec.num_features = 5000;
    spec.num_train = 4000;
    spec.num_test = 0;
    spec.mean_row_nnz = 30.0;
    const auto gen = data::GenerateSynthetic(spec);
    data::WriteLibsvmFile(gen.train, file);
  }

  data::LibsvmReadOptions ropt;
  ropt.max_samples = static_cast<std::uint64_t>(max_samples);
  const auto all = data::ReadLibsvmFile(file, ropt);
  std::cout << "loaded " << all.num_samples() << " samples, "
            << all.num_features() << " features, "
            << FormatDouble(100.0 * all.features().Density(), 3)
            << "% dense\n";

  const auto cut = static_cast<std::uint64_t>(
      train_fraction * static_cast<double>(all.num_samples()));
  auto [train, test] = all.Split(cut);

  admm::ClusterConfig cluster;
  cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  const auto problem = admm::BuildProblemFromData(
      file, std::move(train), std::move(test), cluster.world_size(), lambda);

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(iterations);
  opt.eval_every = 5;

  const auto res = admm::RunAlgorithm(algorithm, cluster, problem, opt);

  Table table({"iter", "objective", "accuracy"});
  for (const auto& rec : res.trace) {
    table.AddRow({std::to_string(rec.iteration), Table::Cell(rec.objective, 6),
                  Table::Cell(rec.accuracy, 4)});
  }
  table.Print(std::cout);
  std::cout << "\n" << res.algorithm << ": final accuracy "
            << FormatDouble(res.final_accuracy, 4) << ", virtual system time "
            << FormatDuration(res.SystemTime()) << "\n";
  return 0;
}
