// Extension-feature tour: residual-based early stopping, adaptive penalty,
// mixed-precision communication, trace CSV export and model checkpointing —
// a realistic "train, monitor, save" workflow on top of PSRA-HGADMM.
//
//   ./adaptive_training [--out-prefix /tmp/psra] [--mixed-precision]
#include <fstream>
#include <iostream>

#include "admm/checkpoint.hpp"
#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "solver/metrics.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::string out_prefix = "/tmp/psra_adaptive";
  std::int64_t nodes = 4, wpn = 4, max_iterations = 200;
  bool mixed_precision = false, adaptive_rho = true;
  double eps_abs = 5e-3, eps_rel = 5e-2;
  CliParser cli("adaptive_training",
                "early stopping + adaptive rho + checkpointing workflow");
  cli.AddString("out-prefix", &out_prefix, "prefix for .csv/.model outputs");
  cli.AddInt("nodes", &nodes, "simulated nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("max-iterations", &max_iterations, "iteration budget");
  cli.AddBool("mixed-precision", &mixed_precision,
              "fp32 inter-node aggregates");
  cli.AddBool("adaptive-rho", &adaptive_rho, "residual-balancing penalty");
  cli.AddDouble("eps-abs", &eps_abs, "absolute stopping tolerance");
  cli.AddDouble("eps-rel", &eps_rel, "relative stopping tolerance");
  if (!cli.Parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.name = "adaptive-demo";
  spec.num_features = 3000;
  spec.num_train = 3000;
  spec.num_test = 600;
  spec.mean_row_nnz = 20.0;
  const auto problem = admm::BuildProblem(
      spec, static_cast<std::uint64_t>(nodes * wpn));

  admm::PsraConfig cfg;
  cfg.cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cfg.cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  cfg.mixed_precision = mixed_precision;

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(max_iterations);
  opt.adaptive_rho.enabled = adaptive_rho;
  opt.stopping.enabled = true;
  opt.stopping.eps_abs = eps_abs;
  opt.stopping.eps_rel = eps_rel;

  const auto res = admm::PsraHgAdmm(cfg).Run(problem, opt);

  std::cout << res.algorithm << (mixed_precision ? " [fp32 wire]" : "")
            << ": " << (res.stopped_early ? "converged after " : "hit budget at ")
            << res.iterations_run << " iterations\n";

  Table table({"iter", "objective", "primal_res", "dual_res", "rho",
               "accuracy"});
  for (const auto& rec : res.trace) {
    if (rec.iteration % 10 != 0 && rec.iteration != 1 &&
        rec.iteration != res.iterations_run) {
      continue;
    }
    table.AddRow({std::to_string(rec.iteration), Table::Cell(rec.objective, 6),
                  Table::Cell(rec.primal_residual, 4),
                  Table::Cell(rec.dual_residual, 4), Table::Cell(rec.rho, 4),
                  Table::Cell(rec.accuracy, 4)});
  }
  table.Print(std::cout);

  // Persist the trace for plotting and the model for serving.
  const std::string csv_path = out_prefix + ".csv";
  std::ofstream csv(csv_path);
  res.WriteTraceCsv(csv);
  const std::string model_path = out_prefix + ".model";
  admm::WriteModelFile(
      admm::FromRunResult(res, problem.lambda, problem.rho), model_path);

  // Round-trip check: the reloaded model must score identically.
  const auto loaded = admm::ReadModelFile(model_path);
  const double acc = solver::Accuracy(problem.test, loaded.z);
  std::cout << "\nwrote " << csv_path << " and " << model_path
            << "\nreloaded model accuracy: " << FormatDouble(acc, 4)
            << " (training run: " << FormatDouble(res.final_accuracy, 4)
            << ")\n";
  return acc == res.final_accuracy ? 0 : 1;
}
