// Quickstart: train an L1-regularized logistic regression with PSRA-HGADMM
// on a simulated 4-node x 4-worker cluster and watch it converge.
//
//   ./quickstart [--nodes 4] [--workers-per-node 4] [--iterations 30]
//                [--trace-out trace.json] [--metrics-out metrics.json]
//                [--timeline-out timeline.jsonl] [--progress]
#include <iostream>

#include "admm/artifacts.hpp"
#include "admm/problem.hpp"
#include "admm/progress.hpp"
#include "admm/psra_hgadmm.hpp"
#include "admm/reference.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::int64_t nodes = 4, wpn = 4, iterations = 30;
  CliParser cli("quickstart", "minimal PSRA-HGADMM training run");
  cli.AddInt("nodes", &nodes, "simulated physical nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("iterations", &iterations, "ADMM iterations");
  admm::RunArtifactPaths artifacts;
  admm::AddArtifactFlags(cli, &artifacts);
  bool progress = false;
  admm::AddProgressFlag(cli, &progress);
  std::string log_level = "warn";
  AddLogLevelFlag(cli, &log_level);
  if (!cli.Parse(argc, argv)) return 0;
  ApplyLogLevelFlag(log_level);

  // 1. Build a problem: synthetic sparse binary classification data,
  //    partitioned into one shard per worker.
  data::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_features = 2000;
  spec.num_train = 4000;
  spec.num_test = 800;
  spec.mean_row_nnz = 25.0;
  const auto problem = admm::BuildProblem(
      spec, static_cast<std::uint64_t>(nodes * wpn), /*lambda=*/1.0,
      /*rho=*/1.0);

  std::cout << "dataset: " << problem.train.num_samples() << " train / "
            << problem.test.num_samples() << " test samples, "
            << problem.dim() << " features, "
            << problem.num_workers() << " workers\n\n";

  // 2. Configure the algorithm: hierarchical dynamic grouping over
  //    PSR-Allreduce (the full PSRA-HGADMM of the paper).
  admm::PsraConfig cfg;
  cfg.cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cfg.cluster.workers_per_node = static_cast<std::uint32_t>(wpn);

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(iterations);
  // Observability: with --trace-out/--metrics-out, the run records per-worker
  // phase spans and a metrics registry (zero overhead when the flags are
  // absent — opt.obs stays null).
  obs::ObsContext obs;
  if (artifacts.wants_obs()) opt.obs = &obs;
  admm::ProgressPrinter progress_printer;
  if (progress) opt.progress = &progress_printer;

  // 3. Run, then anchor relative error to a high-accuracy reference.
  auto result = admm::PsraHgAdmm(cfg).Run(problem, opt);
  progress_printer.Finish();
  const double f_min = admm::ReferenceMinimum(
      problem.train, problem.lambda, {.iterations = 200, .rho = problem.rho, .tron = {}});
  result.ApplyReference(f_min);

  Table table({"iter", "objective", "rel_error", "accuracy", "cal_time",
               "comm_time"});
  for (const auto& rec : result.trace) {
    if (rec.iteration % 5 != 0 && rec.iteration != 1 &&
        rec.iteration != result.trace.back().iteration) {
      continue;
    }
    table.AddRow({std::to_string(rec.iteration), Table::Cell(rec.objective, 6),
                  Table::Cell(rec.relative_error, 4),
                  Table::Cell(rec.accuracy, 4),
                  FormatDuration(rec.cal_time), FormatDuration(rec.comm_time)});
  }
  table.Print(std::cout);

  std::cout << "\nfinal accuracy " << FormatDouble(result.final_accuracy, 4)
            << ", virtual system time "
            << FormatDuration(result.SystemTime()) << " (cal "
            << FormatDuration(result.total_cal_time) << " + comm "
            << FormatDuration(result.total_comm_time) << "), "
            << result.messages_sent << " messages, "
            << result.elements_sent << " elements on the wire\n";

  if (artifacts.any()) {
    admm::WriteRunArtifacts(artifacts, obs, result);
    std::cout << "artifacts written";
    if (!artifacts.trace_json.empty()) {
      std::cout << "; open " << artifacts.trace_json
                << " in chrome://tracing or ui.perfetto.dev";
    }
    std::cout << "\n";
  }
  return 0;
}
