// Text classification scenario: a news20-like sparse tf-idf workload (the
// paper's motivating dataset family) trained with all three algorithms, to
// compare convergence and simulated system time.
//
//   ./text_classification [--scale 0.005] [--iterations 40] [--nodes 8]
#include <iostream>

#include "admm/problem.hpp"
#include "admm/reference.hpp"
#include "admm/registry.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  double scale = 0.005;
  std::int64_t iterations = 40, nodes = 8, wpn = 4;
  CliParser cli("text_classification",
                "news20-like workload across three distributed ADMM variants");
  cli.AddDouble("scale", &scale, "dataset scale vs the paper's news20");
  cli.AddInt("iterations", &iterations, "ADMM iterations");
  cli.AddInt("nodes", &nodes, "simulated nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  if (!cli.Parse(argc, argv)) return 0;

  const auto spec = data::News20Profile(scale);
  admm::ClusterConfig cluster;
  cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  const auto problem =
      admm::BuildProblem(spec, cluster.world_size(), /*lambda=*/1.0);

  std::cout << "profile " << spec.name << ": " << problem.dim()
            << " features, " << problem.train.num_samples()
            << " train samples, mean row nnz "
            << FormatDouble(problem.train.MeanRowNnz(), 3) << "\n\n";

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(iterations);

  const double f_min = admm::ReferenceMinimum(
      problem.train, problem.lambda,
      {.iterations = 150, .rho = problem.rho, .tron = {}});

  Table table({"algorithm", "rel_error", "accuracy", "cal_time", "comm_time",
               "system_time"});
  for (const std::string name : {"psra-hgadmm", "admmlib", "ad-admm"}) {
    auto res = admm::RunAlgorithm(name, cluster, problem, opt);
    res.ApplyReference(f_min);
    table.AddRow({res.algorithm,
                  Table::Cell(res.trace.back().relative_error, 4),
                  Table::Cell(res.final_accuracy, 4),
                  FormatDuration(res.total_cal_time),
                  FormatDuration(res.total_comm_time),
                  FormatDuration(res.SystemTime())});
  }
  table.Print(std::cout);
  std::cout << "\n(relative error after " << iterations
            << " iterations, against a centralized reference minimum)\n";
  return 0;
}
