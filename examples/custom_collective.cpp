// Using the collectives directly: build sparse vectors by hand, run
// Ring-Allreduce and PSR-Allreduce through the public comm API, and compare
// the modeled communication cost on different sparsity layouts (the
// scenario of paper Figures 1-2).
//
//   ./custom_collective [--workers 8] [--nnz 64]
#include <iostream>

#include "comm/collective.hpp"
#include "comm/group.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::int64_t workers = 8, nnz = 64;
  CliParser cli("custom_collective",
                "drive Ring/PSR-Allreduce directly on sparse vectors");
  cli.AddInt("workers", &workers, "workers (one per node)");
  cli.AddInt("nnz", &nnz, "nonzeros per worker");
  if (!cli.Parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(workers);
  const auto c = static_cast<std::size_t>(nnz);
  const std::uint64_t dim = static_cast<std::uint64_t>(n) * c * 2;

  // One worker per node: every link is inter-node, like leaders in WLG.
  simnet::Topology topo(n, 1);
  simnet::CostModel cost;  // default TH2-Express-like parameters
  std::vector<simnet::Rank> members(n);
  for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
  comm::GroupComm group(&topo, &cost, members);

  auto make_layout = [&](const std::string& kind) {
    Rng rng(7);
    std::vector<linalg::SparseVector> inputs;
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<linalg::SparseVector::Index> idx;
      if (kind == "uniform") {
        for (std::size_t k = 0; k < c; ++k) {
          idx.push_back(k * (dim / c) % dim);
        }
      } else if (kind == "own-block") {
        const auto [lo, hi] = group.BlockRange(dim, i);
        for (std::size_t k = 0; k < c && lo + k < hi; ++k) idx.push_back(lo + k);
      } else {  // concentrated: everything in block 0
        for (std::size_t k = 0; k < c; ++k) idx.push_back(k);
      }
      std::sort(idx.begin(), idx.end());
      idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
      std::vector<double> val(idx.size(), 1.0 + i);
      inputs.emplace_back(dim, std::move(idx), std::move(val));
    }
    return inputs;
  };

  const std::vector<simnet::VirtualTime> starts(n, 0.0);
  Table table({"layout", "algorithm", "span", "elements", "messages"});
  for (const std::string layout : {"uniform", "own-block", "concentrated"}) {
    const auto inputs = make_layout(layout);
    for (const std::string alg_name : {"ring", "psr"}) {
      const auto alg = comm::MakeAllreduce(alg_name);
      const auto res = alg->RunSparse(group, inputs, starts);
      table.AddRow({layout, alg_name,
                    FormatDuration(res.stats.Span(starts)),
                    std::to_string(res.stats.elements_sent),
                    std::to_string(res.stats.messages_sent)});

      // Sanity: every worker received the same reduced vector.
      for (const auto& out : res.outputs) {
        if (!(out == res.outputs[0])) {
          std::cerr << "BUG: outputs differ across workers\n";
          return 1;
        }
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nPSR-Allreduce's advantage appears on skewed layouts"
               " (concentrated blocks); uniform layouts tie, as the paper's"
               " Section 4.2 analysis predicts.\n";
  return 0;
}
