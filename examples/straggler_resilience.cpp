// Straggler resilience scenario (paper Section 5.5 in miniature): inject
// slow nodes and compare PSRA-HGADMM with and without the dynamic grouping
// strategy of the WLG framework.
//
//   ./straggler_resilience [--nodes 8] [--straggler-prob 0.3] [--slow 4]
#include <iostream>

#include "admm/problem.hpp"
#include "admm/psra_hgadmm.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace psra;

  std::int64_t nodes = 8, wpn = 2, iterations = 30;
  double straggler_prob = 0.3, slow = 4.0;
  CliParser cli("straggler_resilience",
                "dynamic grouping vs full barrier under injected stragglers");
  cli.AddInt("nodes", &nodes, "simulated nodes");
  cli.AddInt("workers-per-node", &wpn, "workers per node");
  cli.AddInt("iterations", &iterations, "ADMM iterations");
  cli.AddDouble("straggler-prob", &straggler_prob,
                "per-node, per-iteration probability of straggling");
  cli.AddDouble("slow", &slow, "compute slowdown factor of a straggler");
  if (!cli.Parse(argc, argv)) return 0;

  admm::ClusterConfig cluster;
  cluster.num_nodes = static_cast<std::uint32_t>(nodes);
  cluster.workers_per_node = static_cast<std::uint32_t>(wpn);
  cluster.straggler.node_probability = straggler_prob;
  cluster.straggler.slow_factor_min = slow;
  cluster.straggler.slow_factor_max = slow * 1.5;

  data::SyntheticSpec spec;
  spec.name = "straggler-demo";
  spec.num_features = 3000;
  spec.num_train = 3200;
  spec.num_test = 600;
  spec.mean_row_nnz = 20.0;
  const auto problem = admm::BuildProblem(spec, cluster.world_size());

  admm::RunOptions opt;
  opt.max_iterations = static_cast<std::uint64_t>(iterations);

  Table table({"strategy", "groups", "comm_time", "cal_time", "system_time",
               "accuracy"});
  for (const bool dynamic : {true, false}) {
    admm::PsraConfig cfg;
    cfg.cluster = cluster;
    cfg.grouping = dynamic ? admm::GroupingMode::kDynamicGroups
                           : admm::GroupingMode::kHierarchical;
    const auto res = admm::PsraHgAdmm(cfg).Run(problem, opt);
    table.AddRow({dynamic ? "dynamic grouping (WLG)" : "full barrier",
                  dynamic ? "threshold nodes/2" : "all leaders",
                  FormatDuration(res.total_comm_time),
                  FormatDuration(res.total_cal_time),
                  FormatDuration(res.SystemTime()),
                  Table::Cell(res.final_accuracy, 4)});
  }
  table.Print(std::cout);
  std::cout << "\nWith stragglers, the full barrier forces every leader to"
               " wait for the slowest node each iteration; the Group"
               " Generator lets fast nodes synchronize among themselves.\n";
  return 0;
}
