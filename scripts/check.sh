#!/usr/bin/env bash
# One-command verification gate: configure, build, run the tier-1 test suite
# and a quick hot-path regression check (iterations/sec + allocs/iteration).
#
# Usage: scripts/check.sh [build-dir]
#   PSRA_CHECK_SANITIZE=address scripts/check.sh build-asan   # sanitized gate
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake_args=(-B "$build" -S "$repo")
if [[ -n "${PSRA_CHECK_SANITIZE:-}" ]]; then
  cmake_args+=(-DPSRA_SANITIZE="$PSRA_CHECK_SANITIZE")
fi

echo "== configure =="
cmake "${cmake_args[@]}"

echo "== build =="
cmake --build "$build" -j

echo "== tests =="
ctest --test-dir "$build" --output-on-failure -j

echo "== hot path (quick) =="
# Run from the build dir so BENCH_hotpath.json lands next to the binaries
# instead of overwriting a checked-in result.
(cd "$build" && ./bench/bench_hotpath --quick)

echo "== OK =="
