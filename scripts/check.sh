#!/usr/bin/env bash
# One-command verification gate: configure, build, run the tier-1 test suite
# and a quick hot-path regression check (iterations/sec + allocs/iteration).
#
# Usage: scripts/check.sh [build-dir]
#
# Env knobs (all optional; CC/CXX are honored by CMake as usual):
#   PSRA_CHECK_SANITIZE=address,undefined   sanitized gate (e.g. build-asan)
#   PSRA_CHECK_BUILD_TYPE=Debug             CMAKE_BUILD_TYPE (default Release)
#   PSRA_CHECK_NATIVE_ARCH=OFF              portable codegen for CI runners
#   PSRA_CHECK_LARGE_SWEEP=1                also run the large-N gates: the
#                                           128/1024-node multi-rack sweep
#                                           (PSR < Ring + baseline diff), a
#                                           10240-node smoke cell diffed in
#                                           the same baseline, and a
#                                           shortened bench_scale run with
#                                           the cross-pool determinism check
#   PSRA_CHECK_TRANSPORT=1                  also run the real-socket gates:
#                                           multi-process TCP conformance at
#                                           4 and 8 ranks (psra_launch +
#                                           psra_conformance) and bench_wire
#                                           with its schema-checked metrics
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake_args=(-B "$build" -S "$repo")
if [[ -n "${PSRA_CHECK_SANITIZE:-}" ]]; then
  cmake_args+=(-DPSRA_SANITIZE="$PSRA_CHECK_SANITIZE")
fi
if [[ -n "${PSRA_CHECK_BUILD_TYPE:-}" ]]; then
  cmake_args+=(-DCMAKE_BUILD_TYPE="$PSRA_CHECK_BUILD_TYPE")
fi
if [[ -n "${PSRA_CHECK_NATIVE_ARCH:-}" ]]; then
  cmake_args+=(-DPSRA_NATIVE_ARCH="$PSRA_CHECK_NATIVE_ARCH")
fi

echo "== configure =="
cmake "${cmake_args[@]}"

echo "== build =="
cmake --build "$build" -j

echo "== tests =="
ctest --test-dir "$build" --output-on-failure -j

echo "== hot path (quick) =="
# Run from the build dir so BENCH_hotpath.json lands next to the binaries
# instead of overwriting a checked-in result.
(cd "$build" && ./bench/bench_hotpath --quick)

echo "== observability artifacts + metrics schema =="
# A tiny instrumented Fig.6 run must emit a Chrome trace and a metrics.json
# whose key set matches the published schema exactly — renaming or adding a
# metric without updating scripts/metrics_schema.txt fails the gate.
(cd "$build" && ./bench/bench_fig6_system_time \
  --nodes 4 --iterations 5 --datasets news20 \
  --trace-out OBS_trace.json --metrics-out OBS_metrics.json \
  --csv-out OBS_trace.csv --timeline-out OBS_timeline.jsonl > /dev/null)
"$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
  "$build/OBS_metrics.json"
if command -v python3 > /dev/null; then
  # Second opinion on the trace from a stock JSON parser (the span-level
  # schema is pinned by tests/test_obs.cpp).
  python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
    "$build/OBS_trace.json" \
    || { echo "FAIL: OBS_trace.json is not valid JSON"; exit 1; }
  echo "  trace OBS_trace.json parses as JSON"
fi

echo "== trace analytics (psra_report) =="
# The analyzer must digest the artifacts it just gated and reproduce the
# paper's Fig.6 ordering: PSR moves fewer bytes than Ring, and the trace
# attributes a nonzero share of virtual time to communication.
"$build/tools/psra_report" --trace "$build/OBS_trace.json" \
  --metrics "$build/OBS_metrics.json" --assert-fig6 \
  --out "$build/OBS_report.md" --csv "$build/OBS_report.csv"

echo "== convergence timeline (psra_report --timeline) =="
# The timeline artifact the same fig6 run just wrote must analyze cleanly:
# contiguous rows, monotone iterations-to-tolerance, no divergence, and a
# last row that agrees with the run.iterations gauge in metrics.json. The
# self-diff exercises the --timeline-b path end to end.
"$build/tools/psra_report" --timeline "$build/OBS_timeline.jsonl" \
  --metrics "$build/OBS_metrics.json" --assert-timeline \
  --out "$build/OBS_timeline_report.md"
"$build/tools/psra_report" --timeline "$build/OBS_timeline.jsonl" \
  --timeline-b "$build/OBS_timeline.jsonl" \
  --out "$build/OBS_timeline_diff.md"
grep -q "| rows | 5 | 5 | 0 |" "$build/OBS_timeline_diff.md" \
  || { echo "FAIL: timeline self-diff reports row movement"; exit 1; }

echo "== scale sweep + regression gate =="
# Reduced-scale (nodes x algorithm x sparsity) sweep; every cell's metrics
# must match the published schema, the eq. 11-16 byte ordering must hold,
# and the structural counters must match the committed baseline exactly
# (traffic counters within tolerance). --selftest proves the gate still
# fails on a perturbed baseline.
(cd "$build" && ./bench/bench_sweep \
  --nodes 2,4,8,16,32 --iterations 5 \
  --algorithms psr,ring,admmlib,gadmm,ad-admm \
  --sparsity sparse,dense --out-dir SWEEP > /dev/null)
for cell in "$build"/SWEEP/*.metrics.json; do
  # The schema's required keys (comm.allreduce.*) only apply to engines
  # that run a collective; the related-work chain/master engines emit their
  # own key families and are gated by the baseline diff instead.
  case "$(basename "$cell")" in
    gadmm_*|ad-admm_*) continue ;;
  esac
  "$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
    "$cell"
done
echo "== url_tall solver sweep (transpose-reduction path) =="
# Tall-shard url profile through the kAuto solver heuristic: every worker
# shard is tall (rows >> cols), so the engines take the Gram/direct x-update
# (DESIGN.md §14). The 193-feature model is fully dense, so these are dense
# cells (the sparse psr-vs-ring ordering claim does not apply here). Cells
# carry the url_ prefix and are schema-checked and baseline-diffed together
# with the main grid below.
(cd "$build" && ./bench/bench_sweep \
  --nodes 4 --iterations 5 --dataset url_tall \
  --algorithms psr,ring --sparsity dense \
  --solver auto --cell-prefix url_ --out-dir SWEEP_URL > /dev/null)
for cell in "$build"/SWEEP_URL/*.metrics.json; do
  "$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
    "$cell"
done

if command -v python3 > /dev/null; then
  "$repo/scripts/sweep_report" --dir "$build/SWEEP" --dir "$build/SWEEP_URL" \
    --out "$build/SWEEP_report.md" \
    --baseline "$repo/bench/baselines/sweep_baseline.json" \
    --assert-ordering --selftest
else
  echo "  python3 not found; skipping sweep baseline gate"
fi

if [[ -n "${PSRA_CHECK_LARGE_SWEEP:-}" ]]; then
  echo "== large-N sweep (128/1024 nodes, 8 racks) =="
  # The multi-level hierarchy at sizes the flat grids never reach: the
  # paper's PSR < Ring ordering must survive 128- and 1024-leader
  # collectives running recursively across 8 racks, and the traffic
  # counters must match their own committed baseline.
  (cd "$build" && ./bench/bench_sweep \
    --nodes 128,1024 --workers-per-node 1 --iterations 5 \
    --dataset news20 --scale 0.003 --algorithms psr,ring \
    --sparsity sparse --racks 8 --out-dir SWEEP_LARGE > /dev/null)
  for cell in "$build"/SWEEP_LARGE/*.metrics.json; do
    "$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
      "$cell"
  done

  echo "== 10240-node smoke cell =="
  # One O(10k) hierarchical cell proving the event core and the metrics
  # contract hold at the target scale. Its counters are pinned in the
  # large-sweep baseline like every other cell (--dir is repeatable, so the
  # asymmetric grids diff together below).
  (cd "$build" && ./bench/bench_sweep \
    --nodes 10240 --workers-per-node 1 --iterations 2 --dataset smoke \
    --algorithms psr --sparsity dense --racks 8 \
    --out-dir SWEEP_SMOKE > /dev/null)
  "$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
    "$build/SWEEP_SMOKE/psr_dense_n10240.metrics.json"

  if command -v python3 > /dev/null; then
    "$repo/scripts/sweep_report" \
      --dir "$build/SWEEP_LARGE" --dir "$build/SWEEP_SMOKE" \
      --out "$build/SWEEP_LARGE_report.md" \
      --baseline "$repo/bench/baselines/sweep_large_baseline.json" \
      --assert-ordering --selftest
  else
    echo "  python3 not found; skipping large-sweep baseline gate"
  fi

  echo "== scale bench (shortened) + cross-pool determinism =="
  # 10240 flat-grouping workers through the timer wheel; --verify-pool
  # requires serial and pooled hosts to produce bitwise-identical results
  # (bench_scale exits nonzero on mismatch). 100 iterations keeps this
  # under ~5 s; the committed headline numbers come from the full run.
  (cd "$build" && ./bench/bench_scale --iterations 100 \
    --verify-pool --pool 4 --verify-iterations 5)
fi

if [[ -n "${PSRA_CHECK_TRANSPORT:-}" ]]; then
  echo "== transport conformance (real sockets, multi-process) =="
  # The wire collectives over loopback TCP — one OS process per rank — must
  # reproduce the simulator's reduced values BITWISE and its traffic
  # counters exactly, at 4 and 8 ranks, both self-forked and under the
  # launcher (which exercises the inherited-listener rendezvous path).
  (cd "$build" && ./tools/psra_conformance --ranks 4)
  (cd "$build" && ./tools/psra_conformance --ranks 8)
  (cd "$build" && ./tools/psra_launch --ranks 4 -- \
    ./tools/psra_conformance)

  echo "== wire observability (traced 4-rank run + assert-wire) =="
  # Same conformance run with the collection plane on: rank 0 merges every
  # rank's trace + metrics into one artifact pair, which must pass the
  # schema gate and the --assert-wire report gate (sim.* counters equal
  # measured, PSR < Ring bytes/invocation, all send->recv edges matched).
  mkdir -p "$build/obs"
  (cd "$build" && ./tools/psra_launch --ranks 4 --trace-dir obs -- \
    ./tools/psra_conformance \
    --trace-out OBS_wire_trace.json --metrics-out OBS_wire_metrics.json)
  "$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
    "$build/obs/OBS_wire_metrics.json"
  "$build/tools/psra_report" --wire --assert-wire \
    --trace "$build/obs/OBS_wire_trace.json" \
    --metrics "$build/obs/OBS_wire_metrics.json" \
    --out "$build/obs/OBS_wire_report.md"

  echo "== wire calibration (bench_wire) =="
  # Wall time per collective over loopback next to the simulator's modeled
  # time; the metrics artifact must satisfy the published schema (including
  # the transport.* keys).
  (cd "$build" && ./bench/bench_wire --ranks 4 --reps 5 \
    --out CALIB_transport.json --metrics metrics_wire.json)
  "$build/tools/check_metrics_schema" "$repo/scripts/metrics_schema.txt" \
    "$build/metrics_wire.json"
fi

echo "== trace diff (psra_report --diff) =="
# Diff the fig6 artifacts against themselves: a self-diff must succeed and
# report every counter unchanged — exercises the diff path end to end.
"$build/tools/psra_report" --diff \
  --trace "$build/OBS_trace.json" --metrics "$build/OBS_metrics.json" \
  --trace-b "$build/OBS_trace.json" --metrics-b "$build/OBS_metrics.json" \
  --out "$build/OBS_diff.md"
grep -q "counters unchanged" "$build/OBS_diff.md" \
  || { echo "FAIL: self-diff reports counter movement"; exit 1; }

if [[ -z "${PSRA_CHECK_SANITIZE:-}" ]]; then
  echo "== alloc gate =="
  # EVERY hot-path row — flat and dynamic grouping, serial and pooled — is
  # allocation-free in steady state and must stay that way: fail if any row
  # reports allocs_per_iter > 0. Skipped under sanitizers, whose runtimes
  # allocate on their own schedule.
  awk -F'"allocs_per_iter": ' '
    /"grouping": / {
      v = $2 + 0
      printf "  row: %g allocs/iter\n", v
      if (v > 0) bad = 1
    }
    END {
      if (bad) { print "FAIL: hot path allocates in steady state"; exit 1 }
    }' "$build/BENCH_hotpath.json"

  echo "== dynamic-grouping gap gate =="
  # Dynamic grouping must keep pace with flat grouping on the pooled host
  # path: the pooled-lifecycle work is regressed if dynamic/pool drops more
  # than 5% below flat/pool. The committed full-run artifact carries the
  # headline numbers and is held to the 5% bar exactly; the quick run this
  # script just produced is single-rep and noisy, so it gets a looser 10%
  # tripwire that still catches a serialized or deoptimized dynamic path.
  gap_gate() {
    awk -F'"dynamic_pool_over_flat_pool": ' -v floor="$2" -v label="$1" '
      NF > 1 {
        r = $2 + 0
        printf "  %s dynamic/pool over flat/pool: %g (floor %g)\n", label, r, floor
        if (r < floor + 0) bad = 1
        found = 1
      }
      END {
        if (!found) { print "FAIL: dynamic_pool_over_flat_pool missing (" label ")"; exit 1 }
        if (bad) { print "FAIL: dynamic grouping too far behind flat on the pooled path (" label ")"; exit 1 }
      }' "$3"
  }
  gap_gate "committed" 0.95 "$repo/BENCH_hotpath.json"
  gap_gate "quick-run" 0.90 "$build/BENCH_hotpath.json"

  echo "== solver kernel microbench gate =="
  # The blocked kernels of DESIGN.md §14 must not fall behind their scalar
  # references, and the cached-Gram direct x-update must keep its lead over
  # the matrix-free CG path on the tall shard. The committed full-run
  # artifact carries the headline numbers and is held to the strict bars
  # (blocked/scalar >= 0.95, gram_over_cg >= 3); the quick single-shot run
  # this script produces is noisy, so it gets looser tripwires that still
  # catch a deoptimized kernel or a broken Gram cache.
  (cd "$build" && ./bench/bench_micro_kernels \
    --kernels-out BENCH_kernels.json --quick)
  kernel_gate() {
    awk -v floor_ratio="$2" -v floor_gram="$3" -v label="$1" '
      /"blocked_over_scalar":/ {
        split($0, n, /"name": "/); split(n[2], nn, /"/)
        split($0, a, /"blocked_over_scalar": /); r = a[2] + 0
        printf "  %s %s blocked/scalar: %g (floor %g)\n", \
               label, nn[1], r, floor_ratio
        if (r < floor_ratio + 0) bad = 1
        found_k = 1
      }
      /^[ ]*"gram_over_cg":/ {
        split($0, g, /"gram_over_cg": /); r = g[2] + 0
        printf "  %s gram_over_cg: %g (floor %g)\n", label, r, floor_gram
        if (r < floor_gram + 0) bad = 1
        found_g = 1
      }
      END {
        if (!found_k || !found_g) {
          print "FAIL: kernel ratios missing (" label ")"; exit 1
        }
        if (bad) { print "FAIL: solver kernel regression (" label ")"; exit 1 }
      }' "$4"
  }
  kernel_gate "committed" 0.95 3.0 "$repo/BENCH_kernels.json"
  kernel_gate "quick-run" 0.85 2.0 "$build/BENCH_kernels.json"
fi

echo "== OK =="
