// Umbrella header: the full public API of the PSRA-HGADMM library.
//
//   #include "psra/psra.hpp"
//
// pulls in everything a downstream application needs — problem construction,
// the algorithm family, the communication layer, the cluster model, and the
// supporting utilities. Individual headers remain includable on their own
// for finer-grained dependencies.
#pragma once

// Supporting utilities.
#include "support/cli.hpp"        // IWYU pragma: export
#include "support/config.hpp"     // IWYU pragma: export
#include "support/log.hpp"        // IWYU pragma: export
#include "support/rng.hpp"        // IWYU pragma: export
#include "support/status.hpp"       // IWYU pragma: export
#include "support/string_util.hpp"  // IWYU pragma: export
#include "support/table.hpp"        // IWYU pragma: export

// Numerics.
#include "linalg/csr_matrix.hpp"     // IWYU pragma: export
#include "linalg/dense_ops.hpp"      // IWYU pragma: export
#include "linalg/sparse_vector.hpp"  // IWYU pragma: export

// Data.
#include "data/dataset.hpp"    // IWYU pragma: export
#include "data/libsvm_io.hpp"  // IWYU pragma: export
#include "data/partition.hpp"  // IWYU pragma: export
#include "data/synthetic.hpp"  // IWYU pragma: export

// Simulated cluster.
#include "simnet/cost_model.hpp"   // IWYU pragma: export
#include "simnet/event_queue.hpp"  // IWYU pragma: export
#include "simnet/straggler.hpp"    // IWYU pragma: export
#include "simnet/topology.hpp"     // IWYU pragma: export

// Communication.
#include "comm/collective.hpp"  // IWYU pragma: export
#include "comm/group.hpp"       // IWYU pragma: export
#include "comm/intranode.hpp"   // IWYU pragma: export

// WLG framework.
#include "wlg/group_generator.hpp"  // IWYU pragma: export
#include "wlg/leader.hpp"           // IWYU pragma: export

// Solvers and metrics.
#include "solver/logistic.hpp"  // IWYU pragma: export
#include "solver/metrics.hpp"   // IWYU pragma: export
#include "solver/prox.hpp"      // IWYU pragma: export
#include "solver/tron.hpp"      // IWYU pragma: export

// Execution.
#include "engine/ledger.hpp"       // IWYU pragma: export
#include "engine/thread_pool.hpp"  // IWYU pragma: export

// The algorithms.
#include "admm/ad_admm.hpp"       // IWYU pragma: export
#include "admm/checkpoint.hpp"    // IWYU pragma: export
#include "admm/gadmm.hpp"         // IWYU pragma: export
#include "admm/admmlib.hpp"       // IWYU pragma: export
#include "admm/problem.hpp"       // IWYU pragma: export
#include "admm/psra_hgadmm.hpp"   // IWYU pragma: export
#include "admm/reference.hpp"     // IWYU pragma: export
#include "admm/registry.hpp"      // IWYU pragma: export
#include "admm/trace.hpp"         // IWYU pragma: export
