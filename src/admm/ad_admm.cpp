#include "admm/ad_admm.hpp"

#include "admm/instrument.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "linalg/sparse_vector.hpp"
#include "simnet/event_queue.hpp"
#include "solver/metrics.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace psra::admm {

AdAdmm::AdAdmm(const AdAdmmConfig& config) : cfg_(config) {
  PSRA_REQUIRE(config.min_barrier_fraction > 0.0 &&
                   config.min_barrier_fraction <= 1.0,
               "min_barrier_fraction must be in (0, 1]");
  PSRA_REQUIRE(config.max_delay >= 1, "max_delay must be at least 1");
}

RunResult AdAdmm::Run(const ConsensusProblem& problem,
                      const RunOptions& options) const {
  const simnet::Topology topo(cfg_.cluster.num_nodes,
                              cfg_.cluster.workers_per_node,
                              cfg_.cluster.num_racks);
  PSRA_REQUIRE(problem.num_workers() == topo.world_size(),
               "problem must be partitioned into one shard per worker");
  // The async master's in-flight update state is not part of a
  // RunCheckpoint, so a restored snapshot cannot resume this engine.
  PSRA_REQUIRE(options.warm_start == nullptr,
               "AD-ADMM does not support warm starts (async master state is "
               "not checkpointed)");
  const simnet::CostModel cost(cfg_.cluster.cost);
  const simnet::StragglerModel stragglers(topo, cfg_.cluster.straggler);
  // The asynchronous exchange exercises the message-level fault knobs: a
  // dropped report is retransmitted after an ack timeout; a delayed one
  // arrives late at the master and lands in a later barrier batch.
  const simnet::FaultPlan faults(cfg_.cluster.fault);
  const bool faulty = !faults.Empty();
  const auto world = static_cast<std::size_t>(topo.world_size());
  const auto min_barrier = static_cast<std::size_t>(std::max<double>(
      1.0,
      std::ceil(cfg_.min_barrier_fraction * static_cast<double>(world))));
  const auto d = static_cast<std::size_t>(problem.dim());
  // The master lives on node 0; worker-master link depends on the worker's
  // node (bus for co-located workers, network otherwise).
  const simnet::Rank master_home = 0;

  WorkerSet ws(&problem, &options);
  engine::TimeLedger ledger(world);

  RunResult result;
  result.algorithm = Name();

  // ---- Observability (no-op without RunOptions::obs; see DESIGN.md §9) ---
  EngineObs eo(options.obs, world);
  obs::TrackId master_track = 0;
  std::uint64_t* c_report_elements = nullptr;
  std::uint64_t* c_report_messages = nullptr;
  std::uint64_t* c_report_bytes = nullptr;
  std::uint64_t* c_reply_elements = nullptr;
  std::uint64_t* c_reply_messages = nullptr;
  std::uint64_t* c_z_updates = nullptr;
  obs::TimeSeries* ts_objective = nullptr;
  obs::TimeSeries* ts_rho = nullptr;
  obs::TimeSeries* ts_bytes = nullptr;
  obs::TimeSeries* ts_participants = nullptr;
  std::uint64_t prev_report_bytes = 0;
  const std::uint64_t report_elem_bytes =
      cfg_.classic_exchange
          ? cfg_.cluster.cost.value_bytes
          : cfg_.cluster.cost.value_bytes + cfg_.cluster.cost.index_bytes;
  if (eo.on()) {
    auto& m = eo.metrics();
    master_track = eo.AddAuxTrack("master");
    c_report_elements = &m.Counter("comm.master.report.elements");
    c_report_messages = &m.Counter("comm.master.report.messages");
    c_report_bytes = &m.Counter("comm.master.report.bytes");
    c_reply_elements = &m.Counter("comm.master.reply.elements");
    c_reply_messages = &m.Counter("comm.master.reply.messages");
    c_z_updates = &m.Counter("master.z_updates");
    // Convergence timeline: the async master has no synchronous residual
    // pair, so the timeline carries the consensus objective plus the
    // barrier shape (how many reports each z-update consumed).
    ts_objective = eo.Series("ts.objective");
    ts_rho = eo.Series("ts.rho");
    ts_bytes = eo.Series("ts.bytes");
    ts_participants = eo.Series("ts.participants");
  }

  // --- Master state -------------------------------------------------------
  std::vector<linalg::DenseVector> w_latest(world,
                                            linalg::DenseVector(d, 0.0));
  std::vector<std::uint64_t> contributed_update(world, 0);
  std::vector<std::size_t> waiting;          // workers blocked on the next z
  std::size_t fresh_count = 0;
  std::uint64_t K = 0;                       // completed z updates
  linalg::DenseVector z_global(d, 0.0);
  simnet::VirtualTime master_busy = 0.0;
  std::vector<std::uint64_t> worker_iter(world, 0);

  simnet::EventQueue queue;

  // Classic exchange: dense x_i + y_i up (2d values), dense z down (d).
  // Sparse ablation: w_i / z as (index,value) pairs.
  auto report_elems = [&](std::size_t j) {
    return cfg_.classic_exchange
               ? 2 * d
               : linalg::SparseVector::FromDense(ws.w(j)).nnz();
  };
  auto reply_elems = [&](const linalg::DenseVector& z) {
    return cfg_.classic_exchange ? d
                                 : linalg::SparseVector::FromDense(z).nnz();
  };
  auto transfer = [&](simnet::Rank worker, std::size_t elems) {
    const simnet::Link link = topo.LinkBetween(worker, master_home);
    return cfg_.classic_exchange ? cost.DenseTransferTime(link, elems)
                                 : cost.SparseTransferTime(link, elems);
  };

  // Forward declaration of the compute step so callbacks can recurse.
  std::function<void(std::size_t)> start_compute;

  auto fire_condition = [&]() {
    if (fresh_count < min_barrier) return false;
    for (std::size_t j = 0; j < world; ++j) {
      // A worker whose last contribution is about to fall out of the delay
      // bound blocks the update until it reports.
      if (K + 1 > cfg_.max_delay &&
          contributed_update[j] < K + 1 - cfg_.max_delay) {
        return false;
      }
    }
    return true;
  };

  auto do_update = [&](simnet::VirtualTime now) {
    ++K;
    if (c_z_updates != nullptr) ++*c_z_updates;
    linalg::DenseVector W(d, 0.0);
    for (std::size_t j = 0; j < world; ++j) {
      linalg::Axpy(1.0, w_latest[j], W);
    }
    solver::ZUpdateConfig zcfg;
    zcfg.regularizer = solver::Regularizer::kL1;
    zcfg.lambda = problem.lambda;
    zcfg.rho = problem.rho;
    zcfg.num_workers = world;
    solver::ZUpdate(zcfg, W, z_global);

    // Timeline row for z-update K, sampled before the reply loop below
    // re-enters start_compute (whose next-round report traffic must land in
    // the NEXT row's bytes delta, not this one's).
    if (eo.on()) {
      eo.BeginTimelineRow(K);
      ts_objective->Append(
          solver::GlobalObjective(problem.train, z_global, problem.lambda));
      ts_rho->Append(problem.rho);
      ts_bytes->Append(
          static_cast<double>(*c_report_bytes - prev_report_bytes));
      prev_report_bytes = *c_report_bytes;
      ts_participants->Append(static_cast<double>(waiting.size()));
    }
    if (options.progress != nullptr) {
      options.progress->Report(
          {K, options.max_iterations, 0.0, 0.0, problem.rho});
    }

    // Reply serialized to every waiting worker (ascending rank for
    // determinism). A reply carries z (sparse after soft-thresholding).
    std::sort(waiting.begin(), waiting.end());
    const std::size_t z_elems = reply_elems(z_global);
    master_busy = std::max(master_busy, now);
    const bool done = K >= options.max_iterations;
    for (std::size_t j : waiting) {
      const simnet::VirtualTime t = transfer(static_cast<simnet::Rank>(j),
                                             z_elems);
      const simnet::VirtualTime send_begin = master_busy;
      master_busy += t;
      result.elements_sent += z_elems;
      ++result.messages_sent;
      ledger.WaitUntil(j, master_busy);
      if (eo.on()) {
        *c_reply_elements += z_elems;
        ++*c_reply_messages;
        eo.AuxSpan(master_track, "reply_send", send_begin, master_busy, K);
        eo.Span("z_wait", ledger, j, K);
      }
      // Worker adopts the new z and performs its local y-update.
      ws.z(j) = z_global;
      solver::FlopCounter fl;
      solver::YUpdate(problem.rho, ws.x(j), ws.z(j), ws.y(j), &fl);
      ledger.ChargeCompute(j, cost.ComputeTime(fl.flops));
      eo.Span("y_update", ledger, j, K);
      if (!done) start_compute(j);
    }
    waiting.clear();
    fresh_count = 0;

    if (options.record_trace &&
        (K % options.eval_every == 0 || K == options.max_iterations)) {
      IterationRecord rec;
      rec.iteration = K;
      rec.objective =
          solver::GlobalObjective(problem.train, z_global, problem.lambda);
      rec.accuracy = solver::Accuracy(problem.test, z_global);
      rec.cal_time = ledger.MeanCalTime();
      rec.comm_time = ledger.MeanCommTime();
      rec.makespan = ledger.MaxClock();
      result.trace.push_back(rec);
    }
  };

  // Report arrival at the master. Lives outside the scheduled callback so
  // the event record only captures (&deliver, j, elems) — small enough for
  // the EventQueue's inline storage, keeping the event path allocation-free.
  auto deliver = [&](std::size_t j, std::size_t elems) {
    // Master receive is serialized (the bottleneck).
    const simnet::VirtualTime recv_cost =
        transfer(static_cast<simnet::Rank>(j), elems);
    const simnet::VirtualTime recv_begin = std::max(master_busy, queue.Now());
    master_busy = recv_begin + recv_cost;
    if (eo.tracing()) {
      eo.AuxSpan(master_track, "recv_report", recv_begin, master_busy,
                 worker_iter[j]);
    }
    w_latest[j] = ws.w(j);
    contributed_update[j] = K + 1;
    waiting.push_back(j);
    ++fresh_count;
    if (K < options.max_iterations && fire_condition()) {
      do_update(master_busy);
    }
  };

  // Worker j computes x/w and schedules its report's arrival at the master.
  start_compute = [&](std::size_t j) {
    ++worker_iter[j];
    eo.Mark(ledger, j);
    const double flops = ws.XWStep(j);
    const double mult =
        ComputeMultiplier(cfg_.cluster, topo, stragglers,
                          static_cast<simnet::Rank>(j), worker_iter[j]);
    ledger.ChargeCompute(j, cost.ComputeTime(flops) * mult);
    eo.Span("x_update", ledger, j, worker_iter[j]);

    const std::size_t elems = report_elems(j);
    const simnet::VirtualTime send_cost =
        transfer(static_cast<simnet::Rank>(j), elems);
    if (faulty) {
      // Lost reports: the worker retransmits after an ack timeout, at most
      // max_retries times; the attempt after the last retry always goes
      // through (the master polls workers stalled past that point).
      std::uint32_t attempt = 0;
      while (attempt < cfg_.cluster.fault.max_retries &&
             faults.DropsMessage(worker_iter[j], /*channel=*/0,
                                 static_cast<simnet::Rank>(j), attempt)) {
        ledger.ChargeComm(j, send_cost);  // the transfer that was lost
        ledger.ChargeComm(j, cfg_.cluster.fault.retry_timeout_s);
        result.elements_sent += elems;
        ++result.messages_sent;
        if (eo.on()) {
          *c_report_elements += elems;
          ++*c_report_messages;
          *c_report_bytes += elems * report_elem_bytes;
          eo.Span("fault_retry", ledger, j, worker_iter[j]);
        }
        ++result.faults.dropped_messages;
        ++result.faults.retries;
        ++attempt;
        PSRA_SLOG(kDebug, "fault").At(ledger[j].clock)
            << "worker " << j << " report dropped, retry " << attempt << "/"
            << cfg_.cluster.fault.max_retries;
      }
    }
    ledger.ChargeComm(j, send_cost);
    result.elements_sent += elems;
    ++result.messages_sent;
    if (eo.on()) {
      *c_report_elements += elems;
      ++*c_report_messages;
      *c_report_bytes += elems * report_elem_bytes;
      eo.Span("report_send", ledger, j, worker_iter[j]);
    }

    simnet::VirtualTime arrival = ledger[j].clock;
    if (faulty) {
      const simnet::VirtualTime delay =
          faults.MessageDelay(worker_iter[j], /*channel=*/0,
                              static_cast<simnet::Rank>(j), master_home);
      if (delay > 0.0) {
        arrival += delay;  // in flight: the sender's clock is unaffected
        ++result.faults.delayed_messages;
      }
    }
    queue.ScheduleAt(arrival,
                     [&deliver, j, elems] { deliver(j, elems); });
  };

  for (std::size_t j = 0; j < world; ++j) start_compute(j);
  queue.Run();

  // If the event queue drained before K reached max_iterations (all workers
  // waiting but the barrier cannot fire), force the remaining updates from
  // what is available — this only happens with extreme configs; normal runs
  // never enter this loop.
  while (K < options.max_iterations && !waiting.empty()) {
    do_update(master_busy);
    queue.Run();
  }

  for (std::size_t j = 0; j < world; ++j) ws.z(j) = z_global;
  result.final_z = z_global;
  result.final_objective =
      solver::GlobalObjective(problem.train, result.final_z, problem.lambda);
  result.final_accuracy = solver::Accuracy(problem.test, result.final_z);
  result.total_cal_time = ledger.MeanCalTime();
  result.total_comm_time = ledger.MeanCommTime();
  result.makespan = ledger.MaxClock();
  if (eo.on()) {
    auto& m = eo.metrics();
    m.Counter("engine.iterations") += K;
    m.Counter("fault.dropped_messages") += result.faults.dropped_messages;
    m.Counter("fault.retries") += result.faults.retries;
    m.Counter("fault.delayed_messages") += result.faults.delayed_messages;
    m.Gauge("run.makespan_s") = result.makespan;
    m.Gauge("run.cal_time_s") = result.total_cal_time;
    m.Gauge("run.comm_time_s") = result.total_comm_time;
    m.Gauge("run.iterations") = static_cast<double>(K);
    eo.PublishTimelineSummary();
    result.metrics = m;
  }
  return result;
}

}  // namespace psra::admm
