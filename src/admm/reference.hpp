// Reference minimum f for the relative-error metric (paper eq. 18).
//
// The paper measures |f* - f| / f against the best attainable objective.
// We obtain f by running the consensus ADMM with a single worker (so the
// x-subproblem sees the whole training set and z is an exact proximal step)
// for many iterations, and taking the smallest objective seen.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "solver/tron.hpp"

namespace psra::admm {

struct ReferenceOptions {
  std::uint64_t iterations = 300;
  double rho = 1.0;
  solver::TronOptions tron;
};

/// Best objective value of eq. 17 found for (train, lambda).
double ReferenceMinimum(const data::Dataset& train, double lambda,
                        const ReferenceOptions& options = {});

}  // namespace psra::admm
