// Engine-side adapter over obs::ObsContext.
//
// An engine constructs one EngineObs per Run from RunOptions::obs. With a
// null context every method is a no-op behind a single pointer test and the
// adapter allocates nothing, so uninstrumented runs keep the 0-allocs/iter
// hot-path guarantee. With a context attached, the adapter owns one tracer
// track per worker plus a per-worker "mark" clock used for bracketing:
//
//   obs.MarkAll(ledger);            // before a phase mutates worker clocks
//   ... phase charges the ledger ...
//   obs.SpanAll("x_update", ledger, iter);   // [mark, new clock] per worker
//
// Because every ledger mutation in the engine loop is bracketed this way,
// the union of a worker's spans covers its whole clock range — which is how
// the >= 95 % makespan-coverage acceptance gate is met by construction.
//
// Counter/gauge references are hoisted by the engines at Run start (they are
// stable for the registry's lifetime), so per-iteration metric updates are
// plain integer adds.
//
// Wall-clock attribution: when tracing, the adapter also runs a Stopwatch
// and attributes the host seconds elapsed between a phase's Mark and its
// Span to the emitted span(s) (split evenly when one SpanAll closes several
// workers at once — the host did the phase's work for all of them together).
// Wall time lives ONLY on TraceSpan::wall_s: it never enters the
// MetricsRegistry (which must stay byte-identical across pool sizes) and
// never feeds back into the TimeLedger, so virtual-time results remain
// bitwise deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/ledger.hpp"
#include "obs/obs.hpp"
#include "support/stopwatch.hpp"

namespace psra::admm {

class EngineObs {
 public:
  /// `ctx` may be null (all methods become no-ops). `world` is the number of
  /// per-worker tracks to create.
  EngineObs(obs::ObsContext* ctx, std::size_t world) : ctx_(ctx) {
    if (ctx_ == nullptr) return;
    marks_.assign(world, 0.0);
    tracks_.reserve(world);
    for (std::size_t i = 0; i < world; ++i) {
      tracks_.push_back(ctx_->tracer.AddTrack("worker " + std::to_string(i)));
    }
  }

  bool on() const { return ctx_ != nullptr; }
  bool tracing() const { return ctx_ != nullptr && ctx_->tracing; }
  obs::MetricsRegistry& metrics() { return ctx_->metrics; }
  obs::SpanTracer& tracer() { return ctx_->tracer; }

  /// Registers an auxiliary track (e.g. "group generator", "master").
  obs::TrackId AddAuxTrack(std::string name) {
    return ctx_->tracer.AddTrack(std::move(name));
  }

  /// Hoists a timeline series handle (stable for the context's lifetime) or
  /// null without a context — engines grab these at Run start and append
  /// behind a null check, exactly like hoisted Counter()/Gauge() slots.
  obs::TimeSeries* Series(const char* name) {
    return ctx_ != nullptr ? &ctx_->timeline.Series(name) : nullptr;
  }

  /// Starts a timeline row for `iteration`; every hoisted series must then
  /// receive exactly one sample before the next row begins.
  void BeginTimelineRow(std::uint64_t iteration) {
    if (ctx_ != nullptr) ctx_->timeline.BeginIteration(iteration);
  }

  /// Publishes the per-series summary gauges (ts.*.samples/first/last/...)
  /// into the registry; engines call this once from their final metrics
  /// block so the timeline's footprint rides every metrics.json.
  void PublishTimelineSummary() {
    if (ctx_ != nullptr) ctx_->timeline.PublishSummary(ctx_->metrics);
  }

  /// Re-reads worker i's mark from the ledger and restarts the wall lap
  /// (host time spent outside bracketed phases — evaluation, bookkeeping —
  /// is deliberately not attributed to any span).
  void Mark(const engine::TimeLedger& ledger, std::size_t i) {
    if (ctx_ == nullptr) return;
    marks_[i] = ledger[i].clock;
    last_wall_ = watch_.ElapsedSeconds();
  }
  void MarkAll(const engine::TimeLedger& ledger) {
    if (ctx_ == nullptr) return;
    for (std::size_t i = 0; i < marks_.size(); ++i) {
      marks_[i] = ledger[i].clock;
    }
    last_wall_ = watch_.ElapsedSeconds();
  }

  /// Emits [mark_i, clock_i] on worker i's track and advances the mark. The
  /// host seconds since the last Mark/Span are attributed to the span, so a
  /// per-worker Span loop after one shared phase charges the whole lap to
  /// the first worker and ~0 to the rest (per-phase totals stay right).
  /// `name` must be a string literal (TraceSpan stores the pointer).
  void Span(const char* name, const engine::TimeLedger& ledger, std::size_t i,
            std::uint64_t iter) {
    if (!tracing()) return;
    const simnet::VirtualTime now = ledger[i].clock;
    ctx_->tracer.Add(tracks_[i], name, marks_[i], now, iter, LapWall());
    marks_[i] = now;
  }
  /// SpanAll skips workers whose clock did not move (a phase that left a
  /// worker untouched — e.g. a crashed worker during x-updates — produces no
  /// empty span). The phase's wall lap is split evenly across the emitted
  /// spans.
  void SpanAll(const char* name, const engine::TimeLedger& ledger,
               std::uint64_t iter) {
    if (!tracing()) return;
    std::size_t movers = 0;
    for (std::size_t i = 0; i < marks_.size(); ++i) {
      if (ledger[i].clock > marks_[i]) ++movers;
    }
    const double share = movers > 0 ? LapWall() / static_cast<double>(movers)
                                    : 0.0;
    for (std::size_t i = 0; i < marks_.size(); ++i) {
      const simnet::VirtualTime now = ledger[i].clock;
      if (now <= marks_[i]) continue;
      ctx_->tracer.Add(tracks_[i], name, marks_[i], now, iter, share);
      marks_[i] = now;
    }
  }

  /// SpanAll with measured per-worker wall time: `wall[i]` (host seconds the
  /// pool thread running worker i's body observed, via
  /// engine::ThreadPool::ThreadSeconds) is attributed to worker i's span
  /// instead of an even split of the region's lap. Summed thread time can
  /// exceed the region's wall lap when pool threads overlap — that is the
  /// point: the trace then shows what each worker actually cost the host.
  /// Same skip rule as SpanAll for workers whose clock did not move.
  void SpanAllWall(const char* name, const engine::TimeLedger& ledger,
                   std::uint64_t iter, std::span<const double> wall) {
    if (!tracing()) return;
    LapWall();  // consume the region's lap so later spans do not inherit it
    for (std::size_t i = 0; i < marks_.size(); ++i) {
      const simnet::VirtualTime now = ledger[i].clock;
      if (now <= marks_[i]) continue;
      ctx_->tracer.Add(tracks_[i], name, marks_[i], now, iter, wall[i]);
      marks_[i] = now;
    }
  }

  /// Span with measured wall seconds: the span's host cost is the
  /// caller-supplied `wall_s` (ThreadPool::ThreadSeconds deltas taken inside
  /// a pooled region) instead of the adapter's lap, which is consumed and
  /// discarded so later spans do not inherit the pooled region's host time.
  /// Used when a batched phase runs concurrently and its ledger/span updates
  /// replay serially afterwards: the replay loop itself costs ~nothing, and
  /// the real host seconds were measured where the work ran.
  void SpanWall(const char* name, const engine::TimeLedger& ledger,
                std::size_t i, std::uint64_t iter, double wall_s) {
    if (!tracing()) return;
    LapWall();
    const simnet::VirtualTime now = ledger[i].clock;
    ctx_->tracer.Add(tracks_[i], name, marks_[i], now, iter, wall_s);
    marks_[i] = now;
  }

  /// Pins worker i's mark to an explicit time (used to split a bracketed
  /// interval into adjacent sibling spans, e.g. gg_wait | w_allreduce).
  void SetMark(std::size_t i, simnet::VirtualTime t) {
    if (ctx_ == nullptr) return;
    marks_[i] = t;
  }

  /// Emits an explicit span on worker i's track WITHOUT touching the mark
  /// (for nested sub-phases inside a bracketed parent span).
  void SpanAt(const char* name, std::size_t i, simnet::VirtualTime begin,
              simnet::VirtualTime end, std::uint64_t iter) {
    if (!tracing()) return;
    ctx_->tracer.Add(tracks_[i], name, begin, end, iter);
  }

  /// Emits an explicit span on an auxiliary track.
  void AuxSpan(obs::TrackId track, const char* name, simnet::VirtualTime begin,
               simnet::VirtualTime end, std::uint64_t iter) {
    if (!tracing()) return;
    ctx_->tracer.Add(track, name, begin, end, iter);
  }

  simnet::VirtualTime mark(std::size_t i) const { return marks_[i]; }

 private:
  /// Host seconds since the previous lap (Mark/MarkAll/Span/SpanAll).
  double LapWall() {
    const double now = watch_.ElapsedSeconds();
    const double lap = now - last_wall_;
    last_wall_ = now;
    return lap;
  }

  obs::ObsContext* ctx_ = nullptr;
  std::vector<obs::TrackId> tracks_;
  std::vector<simnet::VirtualTime> marks_;
  Stopwatch watch_;
  double last_wall_ = 0.0;
};

}  // namespace psra::admm
