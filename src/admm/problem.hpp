// The distributed consensus problem instance shared by every algorithm:
// an L1-regularized logistic regression (paper eq. 17) whose training set is
// partitioned across workers (paper eq. 1/2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace psra::admm {

struct ConsensusProblem {
  std::string name;
  /// Full training set (metrics: global objective, eq. 17).
  data::Dataset train;
  /// Held-out test set (metrics: accuracy).
  data::Dataset test;
  /// One shard per worker (disjoint cover of `train`).
  std::vector<data::Dataset> shards;

  double lambda = 1.0;
  double rho = 1.0;

  std::uint64_t dim() const { return train.num_features(); }
  std::uint64_t num_workers() const { return shards.size(); }
};

/// Generates a synthetic dataset from `spec` and partitions it across
/// `num_workers` workers.
ConsensusProblem BuildProblem(
    const data::SyntheticSpec& spec, std::uint64_t num_workers,
    double lambda = 1.0, double rho = 1.0,
    data::PartitionScheme scheme = data::PartitionScheme::kStriped);

/// Partitions already-loaded data (e.g. real LIBSVM files) across workers.
ConsensusProblem BuildProblemFromData(
    std::string name, data::Dataset train, data::Dataset test,
    std::uint64_t num_workers, double lambda = 1.0, double rho = 1.0,
    data::PartitionScheme scheme = data::PartitionScheme::kStriped);

}  // namespace psra::admm
