#include "admm/psra_hgadmm.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <utility>

#include "comm/intranode.hpp"
#include "linalg/sparse_vector.hpp"
#include "solver/metrics.hpp"
#include "support/status.hpp"
#include "wlg/group_generator.hpp"

namespace psra::admm {

std::string GroupingModeName(GroupingMode mode) {
  switch (mode) {
    case GroupingMode::kFlat: return "flat";
    case GroupingMode::kHierarchical: return "hierarchical";
    case GroupingMode::kDynamicGroups: return "dynamic";
  }
  return "?";
}

PsraHgAdmm::PsraHgAdmm(const PsraConfig& config) : cfg_(config) {
  PSRA_REQUIRE(config.cluster.num_nodes >= 1 &&
                   config.cluster.workers_per_node >= 1,
               "empty cluster");
}

std::string PsraHgAdmm::Name() const {
  const auto alg = MakeAllreduce(cfg_.allreduce)->Name();
  switch (cfg_.grouping) {
    case GroupingMode::kFlat: return "PSRA-ADMM(" + alg + ")";
    case GroupingMode::kHierarchical: return "HGADMM-nogroup(" + alg + ")";
    case GroupingMode::kDynamicGroups: return "PSRA-HGADMM(" + alg + ")";
  }
  return "?";
}

namespace {

/// Per-run workspace for the inter-node allreduce: sparse conversion
/// buffers, the collective's scratch, and the result fields. One instance
/// lives across all iterations of Run, so the steady-state exchange is
/// allocation-free.
struct InterWorkspace {
  comm::AllreduceScratch scratch;
  comm::CommStats stats;
  std::vector<linalg::SparseVector> sparse_inputs;
  linalg::SparseVector sparse_sum;
  /// Dense group sum (the aggregate W); finish times live in stats.
  linalg::DenseVector sum;
  std::size_t elements = 0;
  std::size_t messages = 0;
  std::size_t result_nnz = 0;
};

/// Runs one inter-node allreduce over `w_inputs` (one dense vector per group
/// member), leaving the dense sum and per-member finish times in `ws`.
void RunInterAllreduce(const comm::GroupComm& group,
                       const comm::AllreduceAlgorithm& alg, bool sparse_comm,
                       std::span<const linalg::DenseVector> w_inputs,
                       std::span<const simnet::VirtualTime> starts,
                       InterWorkspace& ws) {
  if (sparse_comm) {
    ws.sparse_inputs.resize(w_inputs.size());
    for (std::size_t i = 0; i < w_inputs.size(); ++i) {
      ws.sparse_inputs[i].AssignFromDense(w_inputs[i]);
    }
    alg.ReduceSparse(group, ws.sparse_inputs, starts, ws.scratch,
                     ws.sparse_sum, ws.stats);
    ws.sparse_sum.ToDense(ws.sum);
    ws.result_nnz = ws.sparse_sum.nnz();
  } else {
    alg.ReduceDense(group, w_inputs, starts, ws.scratch, ws.sum, ws.stats);
    ws.result_nnz = ws.sum.size();
  }
  ws.elements = ws.stats.elements_sent;
  ws.messages = ws.stats.messages_sent;
}

}  // namespace

RunResult PsraHgAdmm::Run(const ConsensusProblem& problem,
                          const RunOptions& options) const {
  const simnet::Topology topo(cfg_.cluster.num_nodes,
                              cfg_.cluster.workers_per_node);
  PSRA_REQUIRE(problem.num_workers() == topo.world_size(),
               "problem must be partitioned into one shard per worker");
  const simnet::CostModel cost(cfg_.cluster.cost);
  const simnet::StragglerModel stragglers(topo, cfg_.cluster.straggler);

  const auto world = static_cast<std::size_t>(topo.world_size());
  const auto nodes = cfg_.cluster.num_nodes;
  const std::uint32_t threshold =
      cfg_.group_threshold != 0 ? cfg_.group_threshold
                                : std::max<std::uint32_t>(1, nodes / 2);

  WorkerSet ws(&problem, &options);
  engine::TimeLedger ledger(world);
  const auto alg = MakeAllreduce(cfg_.allreduce);

  RunResult result;
  result.algorithm = Name();

  // Per-node structures: member ranks, leader, intra-node communicator.
  std::vector<std::vector<simnet::Rank>> node_ranks(nodes);
  std::vector<simnet::Rank> leaders(nodes);
  std::vector<comm::GroupComm> intra;
  intra.reserve(nodes);
  for (simnet::NodeId n = 0; n < nodes; ++n) {
    node_ranks[n] = topo.RanksOnNode(n);
    leaders[n] = wlg::ElectLeader(topo, node_ranks[n], cfg_.leader_policy,
                                  cfg_.cluster.seed);
    intra.emplace_back(&topo, &cost, node_ranks[n]);
  }
  // Inter-node transfers optionally run in mixed precision: fp32 values on
  // the wire (4 bytes) instead of fp64.
  simnet::CostModelConfig inter_cost_cfg = cfg_.cluster.cost;
  if (cfg_.mixed_precision) inter_cost_cfg.value_bytes = 4;
  const simnet::CostModel cost_inter(inter_cost_cfg);

  wlg::GroupGenerator gg(threshold, nodes);
  const simnet::VirtualTime request_cost =
      cost.LatencyOf(simnet::Link::kInterNode) +
      static_cast<double>(cfg_.request_bytes) /
          cost.BandwidthOf(simnet::Link::kInterNode) +
      cfg_.gg_service_time_s;

  std::vector<double> flops(world, 0.0);
  linalg::DenseVector z_prev_mean(static_cast<std::size_t>(problem.dim()),
                                  0.0);

  // ---- Hoisted per-run workspaces --------------------------------------
  // Everything a steady-state iteration needs is sized here (or on first
  // use) and recycled, so the flat dense hot path performs no heap
  // allocations after warm-up.
  InterWorkspace iw;
  std::vector<simnet::Rank> everyone(world);
  for (std::size_t i = 0; i < world; ++i) {
    everyone[i] = static_cast<simnet::Rank>(i);
  }
  std::optional<comm::GroupComm> flat_global;
  if (cfg_.grouping == GroupingMode::kFlat) {
    flat_global.emplace(&topo, &cost_inter, everyone);
  }
  std::vector<linalg::DenseVector> inputs;  // member w snapshots
  std::vector<simnet::VirtualTime> starts;
  // Hierarchical-path scratch.
  std::vector<comm::ReduceResult> red(nodes);
  comm::BroadcastResult bc;
  std::vector<simnet::VirtualTime> leader_ready(nodes);
  std::vector<simnet::VirtualTime> report(nodes);
  std::vector<std::pair<std::vector<simnet::NodeId>, simnet::VirtualTime>>
      groups;
  std::vector<simnet::Rank> group_leaders(nodes);
  std::vector<linalg::DenseVector> ginputs(nodes);
  std::vector<simnet::VirtualTime> gstarts(nodes);

  // Communication censoring (COLA-ADMM style): senders ship deltas against
  // their last transmission and skip negligible ones; every participant
  // folds the aggregated deltas into a shared running sum.
  const bool censoring = cfg_.censor_threshold > 0.0;
  PSRA_REQUIRE(!censoring || cfg_.grouping != GroupingMode::kDynamicGroups,
               "censoring requires fixed membership (kFlat/kHierarchical)");
  const std::size_t num_senders =
      cfg_.grouping == GroupingMode::kFlat ? world : nodes;
  const auto d_sz = static_cast<std::size_t>(problem.dim());
  std::vector<linalg::DenseVector> last_sent;
  linalg::DenseVector W_running;
  if (censoring) {
    last_sent.assign(num_senders, linalg::DenseVector(d_sz, 0.0));
    W_running.assign(d_sz, 0.0);
  }
  // Replaces the sender's raw aggregate with its delta (or zero when
  // censored) and reports whether it was censored.
  linalg::DenseVector censor_scratch;
  auto apply_censoring = [&](std::size_t sender, std::uint64_t iter,
                             linalg::DenseVector& value) {
    linalg::Subtract(value, last_sent[sender], censor_scratch);
    const double tau = cfg_.censor_threshold *
                       std::pow(cfg_.censor_decay, static_cast<double>(iter));
    if (linalg::Norm2(censor_scratch) < tau) {
      linalg::SetZero(censor_scratch);
      value = censor_scratch;
      ++result.censored_sends;
      return;
    }
    last_sent[sender] = value;
    value = censor_scratch;
  };

  for (std::uint64_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations_run = iter;
    // ---- x / w updates (parallel local computation, paper Alg. 1) --------
    ws.XWStepAll(flops);
    for (std::size_t i = 0; i < world; ++i) {
      const double mult = ComputeMultiplier(
          cfg_.cluster, topo, stragglers, static_cast<simnet::Rank>(i), iter);
      ledger.ChargeCompute(i, cost.ComputeTime(flops[i]) * mult);
    }

    if (cfg_.grouping == GroupingMode::kFlat) {
      // ---- PSRA-ADMM: one global allreduce over all workers --------------
      // The collective only reads its inputs, so the workers' w vectors go
      // in directly; a private snapshot is taken only when mixed precision
      // or censoring must rewrite the payload first.
      const bool mutate_inputs = cfg_.mixed_precision || censoring;
      starts.resize(world);
      if (mutate_inputs) {
        inputs.resize(world);
        for (std::size_t i = 0; i < world; ++i) {
          inputs[i] = ws.w(i);
          if (cfg_.mixed_precision) linalg::RoundToFloat(inputs[i]);
          if (censoring) apply_censoring(i, iter, inputs[i]);
        }
      }
      for (std::size_t i = 0; i < world; ++i) starts[i] = ledger[i].clock;
      RunInterAllreduce(*flat_global, *alg, cfg_.sparse_comm,
                        mutate_inputs ? std::span<const linalg::DenseVector>(
                                            inputs)
                                      : ws.w_all(),
                        starts, iw);
      result.elements_sent += iw.elements;
      result.messages_sent += iw.messages;
      if (censoring) {
        linalg::Axpy(1.0, iw.sum, W_running);
        iw.sum = W_running;
      }
      for (std::size_t i = 0; i < world; ++i) {
        ledger.WaitUntil(i, iw.stats.finish_times[i]);
      }
      ws.ZYStepAll(everyone, iw.sum, world, flops);
      for (std::size_t i = 0; i < world; ++i) {
        ledger.ChargeCompute(i, cost.ComputeTime(flops[i]));
      }
    } else {
      // ---- Hierarchical: intra-node reduce to the Leader ------------------
      for (simnet::NodeId n = 0; n < nodes; ++n) {
        const auto& members = node_ranks[n];
        const comm::GroupRank leader_g = intra[n].LocalRank(leaders[n]);
        inputs.resize(members.size());
        starts.resize(members.size());
        for (std::size_t m = 0; m < members.size(); ++m) {
          inputs[m] = ws.w(members[m]);
          starts[m] = ledger[members[m]].clock;
        }
        comm::ReduceToLeader(intra[n], leader_g, inputs, starts, red[n]);
        result.elements_sent += red[n].elements_sent;
        result.messages_sent += red[n].messages_sent;
        for (std::size_t m = 0; m < members.size(); ++m) {
          ledger.WaitUntil(members[m], red[n].finish_times[m]);
        }
        ledger.WaitUntil(leaders[n], red[n].leader_ready);
        if (censoring) apply_censoring(n, iter, red[n].value);
        leader_ready[n] = ledger[leaders[n]].clock;
      }

      // ---- Group formation -------------------------------------------------
      // Each formed group is (members, start time of its allreduce).
      if (cfg_.grouping == GroupingMode::kHierarchical) {
        simnet::VirtualTime all_ready = 0.0;
        for (simnet::NodeId n = 0; n < nodes; ++n) {
          all_ready = std::max(all_ready, leader_ready[n]);
        }
        if (groups.empty()) {  // fixed membership: build the group once
          std::vector<simnet::NodeId> all(nodes);
          for (simnet::NodeId n = 0; n < nodes; ++n) all[n] = n;
          groups.emplace_back(std::move(all), all_ready);
        } else {
          groups.front().second = all_ready;
        }
      } else {
        // Leaders report to the GG (one small message each, paper Alg. 3).
        groups.clear();
        for (simnet::NodeId n = 0; n < nodes; ++n) {
          ledger.ChargeComm(leaders[n], request_cost);
          ++result.messages_sent;
          report[n] = ledger[leaders[n]].clock;
        }
        for (auto& g : wlg::RunGroupingCycle(gg, report)) {
          // GG notifies the group members (one message back per leader).
          const simnet::VirtualTime start = g.formed_at + request_cost;
          result.messages_sent += g.members.size();
          groups.emplace_back(std::move(g.members), start);
        }
      }

      // ---- Inter-node allreduce within each group + intra broadcast --------
      for (const auto& [members, start] : groups) {
        const std::size_t gsize = members.size();
        std::uint64_t contributors = 0;
        for (std::size_t j = 0; j < gsize; ++j) {
          const simnet::NodeId n = members[j];
          group_leaders[j] = leaders[n];
          ginputs[j] = red[n].value;
          if (cfg_.mixed_precision) linalg::RoundToFloat(ginputs[j]);
          gstarts[j] = std::max(start, ledger[leaders[n]].clock);
          contributors += node_ranks[n].size();
        }
        const comm::GroupComm inter(
            &topo, &cost_inter,
            {group_leaders.begin(), group_leaders.begin() + gsize});
        RunInterAllreduce(inter, *alg, cfg_.sparse_comm,
                          std::span(ginputs.data(), gsize),
                          std::span(gstarts.data(), gsize), iw);
        result.elements_sent += iw.elements;
        result.messages_sent += iw.messages;
        if (censoring) {  // fixed membership: fold deltas into the run sum
          linalg::Axpy(1.0, iw.sum, W_running);
          iw.sum = W_running;
        }

        for (std::size_t gi = 0; gi < gsize; ++gi) {
          const simnet::NodeId n = members[gi];
          ledger.WaitUntil(leaders[n], iw.stats.finish_times[gi]);

          // Leader broadcasts W to its node (paper Alg. 1 step 11).
          const comm::GroupRank leader_g = intra[n].LocalRank(leaders[n]);
          const std::size_t elems =
              cfg_.sparse_comm ? iw.result_nnz
                               : static_cast<std::size_t>(problem.dim());
          comm::BroadcastFromLeader(intra[n], leader_g, elems,
                                    ledger[leaders[n]].clock, bc);
          result.elements_sent += bc.elements_sent;
          result.messages_sent += bc.messages_sent;
          for (std::size_t m = 0; m < node_ranks[n].size(); ++m) {
            ledger.WaitUntil(node_ranks[n][m], bc.finish_times[m]);
          }
          ws.ZYStepAll(node_ranks[n], iw.sum, contributors, flops);
          for (std::size_t m = 0; m < node_ranks[n].size(); ++m) {
            const simnet::Rank r = node_ranks[n][m];
            ledger.ChargeCompute(r, cost.ComputeTime(flops[r]));
          }
        }
      }
    }

    // ---- Residuals, adaptive penalty, stopping ---------------------------
    // Residual norms piggyback on the existing aggregation traffic (two
    // scalars), so no extra virtual time is charged.
    const WorkerSet::Residuals residuals = ws.ComputeResiduals(z_prev_mean);
    ws.MeanZInto(z_prev_mean);
    const double rho_now = ws.MaybeAdaptRho(options.adaptive_rho, residuals);

    // ---- Metrics ----------------------------------------------------------
    if (options.record_trace &&
        (iter % options.eval_every == 0 || iter == options.max_iterations)) {
      IterationRecord rec = ws.Evaluate(iter, ledger);
      rec.primal_residual = residuals.primal;
      rec.dual_residual = residuals.dual;
      rec.rho = rho_now;
      result.trace.push_back(rec);
    }

    if (iter > 1 && WorkerSet::ShouldStop(options.stopping, residuals,
                                          problem.num_workers(),
                                          problem.dim())) {
      result.stopped_early = true;
      break;
    }
  }

  result.final_z = ws.MeanZ();
  result.final_objective =
      solver::GlobalObjective(problem.train, result.final_z, problem.lambda);
  result.final_accuracy = solver::Accuracy(problem.test, result.final_z);
  result.total_cal_time = ledger.MeanCalTime();
  result.total_comm_time = ledger.MeanCommTime();
  result.makespan = ledger.MaxClock();
  return result;
}

}  // namespace psra::admm
