#include "admm/psra_hgadmm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "admm/checkpoint.hpp"
#include "admm/instrument.hpp"
#include "comm/hierarchical.hpp"
#include "comm/intranode.hpp"
#include "linalg/sparse_vector.hpp"
#include "simnet/fault.hpp"
#include "solver/metrics.hpp"
#include "support/log.hpp"
#include "support/status.hpp"
#include "wlg/group_generator.hpp"
#include "wlg/leader.hpp"

namespace psra::admm {

std::string GroupingModeName(GroupingMode mode) {
  switch (mode) {
    case GroupingMode::kFlat: return "flat";
    case GroupingMode::kHierarchical: return "hierarchical";
    case GroupingMode::kDynamicGroups: return "dynamic";
  }
  return "?";
}

PsraHgAdmm::PsraHgAdmm(const PsraConfig& config) : cfg_(config) {
  PSRA_REQUIRE(config.cluster.num_nodes >= 1 &&
                   config.cluster.workers_per_node >= 1,
               "empty cluster");
}

std::string PsraHgAdmm::Name() const {
  const auto alg = MakeAllreduce(cfg_.allreduce)->Name();
  switch (cfg_.grouping) {
    case GroupingMode::kFlat: return "PSRA-ADMM(" + alg + ")";
    case GroupingMode::kHierarchical: return "HGADMM-nogroup(" + alg + ")";
    case GroupingMode::kDynamicGroups: return "PSRA-HGADMM(" + alg + ")";
  }
  return "?";
}

namespace {

/// Per-run workspace for the inter-node allreduce: sparse conversion
/// buffers, the collective's scratch, and the result fields. One instance
/// lives across all iterations of Run, so the steady-state exchange is
/// allocation-free.
struct InterWorkspace {
  comm::AllreduceScratch scratch;
  comm::CommStats stats;
  std::vector<linalg::SparseVector> sparse_inputs;
  linalg::SparseVector sparse_sum;
  /// Dense group sum (the aggregate W); finish times live in stats.
  linalg::DenseVector sum;
  std::size_t elements = 0;
  std::size_t messages = 0;
  std::size_t result_nnz = 0;
};

/// Hoisted per-collective metric slots (stable MetricsRegistry references).
/// Null `invocations` means "not recording"; `fill` is set only for sparse
/// payloads (it observes result_nnz / dim per invocation).
struct ArMetrics {
  std::uint64_t* invocations = nullptr;
  std::uint64_t* elements = nullptr;
  std::uint64_t* messages = nullptr;
  std::uint64_t* bytes = nullptr;
  std::uint64_t* rounds = nullptr;
  obs::Histogram* fill = nullptr;
  double dim = 1.0;
};

/// Every metric slot the PSRA engine updates, hoisted once per run so the
/// per-iteration updates are plain integer adds.
struct PsraMetrics {
  ArMetrics ar;
  obs::Histogram* group_size = nullptr;
  obs::Histogram* gg_wait_s = nullptr;
  obs::Histogram* recovery_s = nullptr;
  std::uint64_t* gg_reports = nullptr;
  std::uint64_t* gg_notifies = nullptr;
  std::uint64_t* groups_formed = nullptr;
  std::uint64_t* intra_reduce_elements = nullptr;
  std::uint64_t* intra_reduce_messages = nullptr;
  std::uint64_t* intra_reduce_bytes = nullptr;
  std::uint64_t* intra_bcast_elements = nullptr;
  std::uint64_t* intra_bcast_messages = nullptr;
  std::uint64_t* intra_bcast_bytes = nullptr;
  std::uint64_t* rack_bcast_elements = nullptr;
  std::uint64_t* rack_bcast_messages = nullptr;
  std::uint64_t* rack_bcast_bytes = nullptr;

  /// Multi-rack runs only: the rack leaders' redistribution of the global
  /// sum (stage 3 of the recursive collective). Hoisted separately so
  /// single-rack runs keep their metric key set unchanged.
  void HoistRack(obs::MetricsRegistry& m) {
    rack_bcast_elements = &m.Counter("comm.rack.bcast.elements");
    rack_bcast_messages = &m.Counter("comm.rack.bcast.messages");
    rack_bcast_bytes = &m.Counter("comm.rack.bcast.bytes");
  }

  void Hoist(obs::MetricsRegistry& m, const std::string& alg_name, bool sparse,
             double dim) {
    const std::string p = "comm.allreduce." + alg_name + ".";
    ar.invocations = &m.Counter(p + "invocations");
    ar.elements = &m.Counter(p + "elements");
    ar.messages = &m.Counter(p + "messages");
    ar.bytes = &m.Counter(p + "bytes");
    ar.rounds = &m.Counter(p + "rounds");
    if (sparse) {
      static constexpr double kFillBounds[] = {0.01, 0.05, 0.1, 0.25,
                                               0.5,  0.75, 0.9, 1.0};
      ar.fill = &m.Histo("comm.allreduce.fill_ratio", kFillBounds);
      ar.dim = dim;
    }
    static constexpr double kSizeBounds[] = {1, 2, 4, 8, 16, 32};
    static constexpr double kTimeBounds[] = {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
    group_size = &m.Histo("wlg.group_size", kSizeBounds);
    gg_wait_s = &m.Histo("wlg.gg_wait_s", kTimeBounds);
    recovery_s = &m.Histo("fault.recovery_latency_s", kTimeBounds);
    gg_reports = &m.Counter("comm.gg.reports");
    gg_notifies = &m.Counter("comm.gg.notifies");
    groups_formed = &m.Counter("wlg.groups_formed");
    intra_reduce_elements = &m.Counter("comm.intra.reduce.elements");
    intra_reduce_messages = &m.Counter("comm.intra.reduce.messages");
    intra_reduce_bytes = &m.Counter("comm.intra.reduce.bytes");
    intra_bcast_elements = &m.Counter("comm.intra.bcast.elements");
    intra_bcast_messages = &m.Counter("comm.intra.bcast.messages");
    intra_bcast_bytes = &m.Counter("comm.intra.bcast.bytes");
  }
};

/// Hoisted convergence-timeline series (DESIGN.md §13) plus the cumulative
/// counter values at the previous row, which turn the registry's running
/// totals into per-iteration deltas. Series handles are stable for the
/// ObsContext's lifetime, so appends are plain stores.
struct PsraSeries {
  obs::TimeSeries* primal = nullptr;
  obs::TimeSeries* dual = nullptr;
  obs::TimeSeries* objective = nullptr;
  obs::TimeSeries* rho = nullptr;
  obs::TimeSeries* active_groups = nullptr;
  obs::TimeSeries* regroups = nullptr;
  obs::TimeSeries* bytes = nullptr;
  obs::TimeSeries* rounds = nullptr;
  std::uint64_t prev_invocations = 0;
  std::uint64_t prev_groups = 0;
  std::uint64_t prev_bytes = 0;
  std::uint64_t prev_rounds = 0;

  void Hoist(EngineObs& eo) {
    primal = eo.Series("ts.primal_residual");
    dual = eo.Series("ts.dual_residual");
    objective = eo.Series("ts.objective");
    rho = eo.Series("ts.rho");
    active_groups = eo.Series("ts.active_groups");
    regroups = eo.Series("ts.regroup_events");
    bytes = eo.Series("ts.bytes");
    rounds = eo.Series("ts.rounds");
  }

  /// Cumulative collective payload bytes across the engine's channels
  /// (inter-group allreduce + intra-node reduce/bcast + rack bcast).
  std::uint64_t BytesNow(const PsraMetrics& pm) const {
    std::uint64_t b = *pm.ar.bytes + *pm.intra_reduce_bytes +
                      *pm.intra_bcast_bytes;
    if (pm.rack_bcast_bytes != nullptr) b += *pm.rack_bcast_bytes;
    return b;
  }
};

/// Folds one collective invocation's stats into the hoisted metric slots.
/// Split out of RunInterAllreduce so the batched path can run collectives in
/// parallel and replay the registry updates serially, in formation order.
void AccumulateArMetrics(ArMetrics& am, const InterWorkspace& ws) {
  ++*am.invocations;
  *am.elements += ws.stats.elements_sent;
  *am.messages += ws.stats.messages_sent;
  *am.bytes += ws.stats.bytes_sent;
  *am.rounds += ws.stats.rounds;
  if (am.fill != nullptr) {
    am.fill->Observe(static_cast<double>(ws.result_nnz) / am.dim);
  }
}

/// Runs one inter-node allreduce over `w_inputs` (one dense vector per group
/// member), leaving the dense sum and per-member finish times in `ws`. With
/// a FaultContext the fault-tolerant entry points run instead (exactly the
/// plain ones when the plan is empty).
void RunInterAllreduce(const comm::GroupComm& group,
                       const comm::AllreduceAlgorithm& alg, bool sparse_comm,
                       std::span<const linalg::DenseVector> w_inputs,
                       std::span<const simnet::VirtualTime> starts,
                       InterWorkspace& ws, comm::FaultContext* fc = nullptr,
                       ArMetrics* am = nullptr) {
  if (sparse_comm) {
    ws.sparse_inputs.resize(w_inputs.size());
    for (std::size_t i = 0; i < w_inputs.size(); ++i) {
      ws.sparse_inputs[i].AssignFromDense(w_inputs[i]);
    }
    if (fc != nullptr) {
      alg.ReduceSparseFaulty(group, ws.sparse_inputs, starts, *fc, ws.scratch,
                             ws.sparse_sum, ws.stats);
    } else {
      alg.ReduceSparse(group, ws.sparse_inputs, starts, ws.scratch,
                       ws.sparse_sum, ws.stats);
    }
    ws.sparse_sum.ToDense(ws.sum);
    ws.result_nnz = ws.sparse_sum.nnz();
  } else {
    if (fc != nullptr) {
      alg.ReduceDenseFaulty(group, w_inputs, starts, *fc, ws.scratch, ws.sum,
                            ws.stats);
    } else {
      alg.ReduceDense(group, w_inputs, starts, ws.scratch, ws.sum, ws.stats);
    }
    ws.result_nnz = ws.sum.size();
  }
  ws.elements = ws.stats.elements_sent;
  ws.messages = ws.stats.messages_sent;
  if (am != nullptr) AccumulateArMetrics(*am, ws);
}

/// Multi-rack counterpart of RunInterAllreduce: the recursive node -> rack
/// -> cluster collective fills the same InterWorkspace contract (global sum,
/// per-leader finish times, traffic totals), so the batched replay below
/// consumes either interchangeably.
void RunMultiLevelAllreduce(comm::MultiLevelAllreduce& ml,
                            const comm::AllreduceAlgorithm& alg,
                            bool sparse_comm,
                            std::span<const linalg::DenseVector> w_inputs,
                            std::span<const simnet::VirtualTime> starts,
                            InterWorkspace& ws) {
  if (sparse_comm) {
    ws.sparse_inputs.resize(w_inputs.size());
    for (std::size_t i = 0; i < w_inputs.size(); ++i) {
      ws.sparse_inputs[i].AssignFromDense(w_inputs[i]);
    }
    ml.ReduceSparse(alg, ws.sparse_inputs, starts, ws.scratch, ws.sparse_sum,
                    ws.stats);
    ws.sparse_sum.ToDense(ws.sum);
    ws.result_nnz = ws.sparse_sum.nnz();
  } else {
    ml.ReduceDense(alg, w_inputs, starts, ws.scratch, ws.sum, ws.stats);
    ws.result_nnz = ws.sum.size();
  }
  ws.elements = ws.stats.elements_sent;
  ws.messages = ws.stats.messages_sent;
}

/// One formed group's collective context: the member leaders, their input
/// snapshots and start times, the communicator, and the allreduce workspace.
/// Slots are recycled across regrouping cycles by GroupSlotArena below, so a
/// steady-state iteration leases fully warmed buffers.
struct GroupSlot {
  InterWorkspace iw;
  std::vector<simnet::Rank> leaders;        // member leaders, group order
  std::vector<linalg::DenseVector> inputs;  // leader aggregate snapshots
  std::vector<simnet::VirtualTime> starts;
  std::optional<comm::GroupComm> comm;  // rebound in place on reuse
  std::span<const simnet::NodeId> members;  // view into the cycle's batch
  simnet::VirtualTime start = 0.0;          // earliest collective start
  std::uint64_t contributors = 0;           // workers behind the group sum
  double wall = 0.0;  // measured host seconds of the collective (traced)
};

/// Size-keyed free lists of GroupSlots. Dynamic grouping re-forms groups
/// every iteration but the multiset of group SIZES is fixed by the threshold
/// arithmetic, so leasing by size hands every group a slot whose buffers
/// (scratch, inputs, communicator storage) already have exactly the right
/// capacity — zero allocations once each size has been seen once.
class GroupSlotArena {
 public:
  explicit GroupSlotArena(std::size_t max_groups) {
    leased_.reserve(max_groups);
    leased_sizes_.reserve(max_groups);
  }

  GroupSlot& Lease(std::size_t group_size) {
    if (free_.size() <= group_size) free_.resize(group_size + 1);
    auto& bucket = free_[group_size];
    if (bucket.empty()) {
      slots_.push_back(std::make_unique<GroupSlot>());
      bucket.push_back(slots_.size() - 1);
    }
    const std::size_t idx = bucket.back();
    bucket.pop_back();
    leased_.push_back(idx);
    leased_sizes_.push_back(group_size);
    return *slots_[idx];
  }

  /// Returns every leased slot to its size bucket (end of iteration).
  void RecycleAll() {
    for (std::size_t k = 0; k < leased_.size(); ++k) {
      free_[leased_sizes_[k]].push_back(leased_[k]);
    }
    leased_.clear();
    leased_sizes_.clear();
  }

 private:
  std::vector<std::unique_ptr<GroupSlot>> slots_;
  std::vector<std::vector<std::size_t>> free_;  // indexed by group size
  std::vector<std::size_t> leased_;
  std::vector<std::size_t> leased_sizes_;
};

}  // namespace

RunResult PsraHgAdmm::Run(const ConsensusProblem& problem,
                          const RunOptions& options) const {
  const simnet::Topology topo(cfg_.cluster.num_nodes,
                              cfg_.cluster.workers_per_node,
                              cfg_.cluster.num_racks);
  PSRA_REQUIRE(problem.num_workers() == topo.world_size(),
               "problem must be partitioned into one shard per worker");
  const simnet::CostModel cost(cfg_.cluster.cost);
  const simnet::StragglerModel stragglers(topo, cfg_.cluster.straggler);
  const simnet::FaultPlan faults(cfg_.cluster.fault);
  const bool faulty = !faults.Empty();
  // With several racks the fixed hierarchical group runs its leader
  // collective recursively (per rack, then across rack leaders). Flat and
  // dynamic grouping still work across racks — their collectives simply pay
  // kInterRack link costs where members straddle racks.
  const bool multi_rack = topo.num_racks() > 1 &&
                          cfg_.grouping == GroupingMode::kHierarchical;
  PSRA_REQUIRE(!(multi_rack && faulty),
               "the recursive multi-rack collective does not support fault "
               "injection; use one rack (or flat/dynamic grouping)");

  const auto world = static_cast<std::size_t>(topo.world_size());
  const auto nodes = cfg_.cluster.num_nodes;
  const std::uint32_t threshold =
      cfg_.group_threshold != 0 ? cfg_.group_threshold
                                : std::max<std::uint32_t>(1, nodes / 2);

  WorkerSet ws(&problem, &options);
  // Warm start: seed (x, y, z, rho) from a restored checkpoint and resume
  // right after its iteration; 1 (a cold start) otherwise.
  const std::uint64_t first_iter = ApplyWarmStart(ws, options) + 1;
  engine::TimeLedger ledger(world);
  const auto alg = MakeAllreduce(cfg_.allreduce);

  RunResult result;
  result.algorithm = Name();

  // ---- Observability -----------------------------------------------------
  // Every instrumentation site below sits behind eo.on() / eo.tracing() (a
  // single pointer test with no sink installed), and only OBSERVES ledger
  // clocks and collective stats — an instrumented run is bitwise-identical
  // to an uninstrumented one (pinned by test_obs).
  EngineObs eo(options.obs, world);
  PsraMetrics pm;
  PsraSeries conv;
  obs::TrackId gg_track = 0;
  if (eo.on()) {
    pm.Hoist(eo.metrics(), alg->Name(), cfg_.sparse_comm,
             static_cast<double>(problem.dim()));
    if (multi_rack) pm.HoistRack(eo.metrics());
    conv.Hoist(eo);
    if (cfg_.grouping == GroupingMode::kDynamicGroups) {
      gg_track = eo.AddAuxTrack("group generator");
    }
  }

  // Per-node structures: member ranks, leader, intra-node communicator.
  std::vector<std::vector<simnet::Rank>> node_ranks(nodes);
  std::vector<simnet::Rank> leaders(nodes);
  std::vector<comm::GroupComm> intra;
  intra.reserve(nodes);
  for (simnet::NodeId n = 0; n < nodes; ++n) {
    node_ranks[n] = topo.RanksOnNode(n);
    leaders[n] = wlg::ElectLeader(topo, node_ranks[n], cfg_.leader_policy,
                                  cfg_.cluster.seed);
    intra.emplace_back(&topo, &cost, node_ranks[n]);
  }
  // Inter-node transfers optionally run in mixed precision: fp32 values on
  // the wire (4 bytes) instead of fp64.
  simnet::CostModelConfig inter_cost_cfg = cfg_.cluster.cost;
  if (cfg_.mixed_precision) inter_cost_cfg.value_bytes = 4;
  const simnet::CostModel cost_inter(inter_cost_cfg);
  // Recursive node -> rack -> cluster collective over the leaders (the
  // hierarchical group has fixed membership, so this is built once).
  std::optional<comm::MultiLevelAllreduce> mlar;
  if (multi_rack) mlar.emplace(&topo, &cost_inter, leaders);

  wlg::GroupGenerator gg(threshold, nodes);
  const simnet::VirtualTime request_cost =
      cost.LatencyOf(simnet::Link::kInterNode) +
      static_cast<double>(cfg_.request_bytes) /
          cost.BandwidthOf(simnet::Link::kInterNode) +
      cfg_.gg_service_time_s;

  std::vector<double> flops(world, 0.0);
  linalg::DenseVector z_prev_mean(static_cast<std::size_t>(problem.dim()),
                                  0.0);
  // Warm start: the dual-residual reference is the restored consensus mean —
  // exactly what the uninterrupted run holds entering this iteration — so a
  // split run's residuals (and timeline rows) match the full run's.
  if (first_iter > 1) ws.MeanZInto(z_prev_mean);

  // ---- Hoisted per-run workspaces --------------------------------------
  // Everything a steady-state iteration needs is sized here (or on first
  // use) and recycled, so the flat dense hot path performs no heap
  // allocations after warm-up.
  InterWorkspace iw;
  std::vector<simnet::Rank> everyone(world);
  for (std::size_t i = 0; i < world; ++i) {
    everyone[i] = static_cast<simnet::Rank>(i);
  }
  std::optional<comm::GroupComm> flat_global;
  if (cfg_.grouping == GroupingMode::kFlat) {
    flat_global.emplace(&topo, &cost_inter, everyone);
  }
  std::vector<linalg::DenseVector> inputs;  // member w snapshots
  std::vector<simnet::VirtualTime> starts;
  // Hierarchical-path scratch.
  std::vector<comm::ReduceResult> red(nodes);
  comm::BroadcastResult bc;
  std::vector<simnet::VirtualTime> leader_ready(nodes);
  std::vector<simnet::VirtualTime> report(nodes);
  std::vector<std::pair<std::vector<simnet::NodeId>, simnet::VirtualTime>>
      groups;
  std::vector<simnet::Rank> group_leaders(nodes);
  std::vector<linalg::DenseVector> ginputs(nodes);
  std::vector<simnet::VirtualTime> gstarts(nodes);
  // Batched non-faulty hierarchical/dynamic path: the pooled group
  // lifecycle (cycle batch + size-keyed collective slots) and the flattened
  // cross-group consensus-update work list.
  const auto wpn = static_cast<std::size_t>(cfg_.cluster.workers_per_node);
  wlg::GroupWorkspace gws;
  gws.groups.Reserve(nodes);
  std::vector<simnet::NodeId> all_nodes(nodes);
  for (simnet::NodeId n = 0; n < nodes; ++n) all_nodes[n] = n;
  std::vector<simnet::VirtualTime> all_starts(world);
  GroupSlotArena garena(nodes);
  std::vector<GroupSlot*> gslots;
  gslots.reserve(nodes);
  std::vector<simnet::Rank> zy_first;  // per group: the worker computing z
  std::vector<simnet::Rank> zy_copy_w, zy_copy_src;  // flattened copy pairs
  zy_first.reserve(nodes);
  zy_copy_w.reserve(world);
  zy_copy_src.reserve(world);
  std::vector<double> xw_wall;  // per-worker x-update host seconds (traced)
  std::vector<double> red_wall;  // per-node intra-reduce host seconds
  std::vector<double> zy_wall;   // per-worker consensus-update host seconds
  if (options.obs != nullptr && options.obs->tracing) {
    xw_wall.assign(world, 0.0);
    red_wall.assign(nodes, 0.0);
    zy_wall.assign(world, 0.0);
  }

  // Communication censoring (COLA-ADMM style): senders ship deltas against
  // their last transmission and skip negligible ones; every participant
  // folds the aggregated deltas into a shared running sum.
  const bool censoring = cfg_.censor_threshold > 0.0;
  PSRA_REQUIRE(!censoring || cfg_.grouping != GroupingMode::kDynamicGroups,
               "censoring requires fixed membership (kFlat/kHierarchical)");
  const std::size_t num_senders =
      cfg_.grouping == GroupingMode::kFlat ? world : nodes;
  const auto d_sz = static_cast<std::size_t>(problem.dim());
  std::vector<linalg::DenseVector> last_sent;
  linalg::DenseVector W_running;
  if (censoring) {
    last_sent.assign(num_senders, linalg::DenseVector(d_sz, 0.0));
    W_running.assign(d_sz, 0.0);
  }
  // Replaces the sender's raw aggregate with its delta (or zero when
  // censored) and reports whether it was censored.
  linalg::DenseVector censor_scratch;
  auto apply_censoring = [&](std::size_t sender, std::uint64_t iter,
                             linalg::DenseVector& value) {
    linalg::Subtract(value, last_sent[sender], censor_scratch);
    const double tau = cfg_.censor_threshold *
                       std::pow(cfg_.censor_decay, static_cast<double>(iter));
    if (linalg::Norm2(censor_scratch) < tau) {
      linalg::SetZero(censor_scratch);
      value = censor_scratch;
      ++result.censored_sends;
      return;
    }
    last_sent[sender] = value;
    value = censor_scratch;
  };

  PSRA_REQUIRE(!(censoring && faulty),
               "communication censoring is incompatible with fault injection "
               "(its running sum needs every sender in every round)");

  // ---- Fault-injection state -------------------------------------------
  // Only touched on faulty runs: with an empty plan the iteration body below
  // takes byte-for-byte the fault-free path (pinned by test_determinism).
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  comm::FaultContext fctx;
  fctx.plan = faulty ? &faults : nullptr;
  RunCheckpoint ckpt;
  std::vector<char> down_now;        // 1 = worker currently down
  std::vector<std::uint64_t> up_at;  // recovery iteration (kNever = none)
  std::vector<simnet::Rank> alive;
  std::vector<std::vector<simnet::Rank>> node_alive;
  std::vector<std::optional<comm::GroupComm>> intra_alive;
  std::vector<simnet::Rank> cur_leaders;
  std::vector<char> node_active;  // node has >= 1 alive worker
  std::vector<char> node_out;     // node dropped from the current round
  std::vector<wlg::LeaderReport> leader_reports;
  std::vector<simnet::NodeId> active_nodes;
  std::optional<comm::GroupComm> flat_sub;  // survivor group, flat mode
  std::vector<simnet::Rank> zy_ranks;
  std::vector<simnet::NodeId> live_members;
  if (faulty) {
    down_now.assign(world, 0);
    up_at.assign(world, kNever);
    node_alive.assign(nodes, {});
    intra_alive.assign(nodes, std::nullopt);
    cur_leaders = leaders;
    node_active.assign(nodes, 1);
    node_out.assign(nodes, 0);
    alive.reserve(world);
    // Iteration-0 checkpoint: a worker crashing before the first periodic
    // capture restarts from the common initial state.
    CaptureRunCheckpoint(ws, 0, everyone, ckpt,
                         eo.on() ? &eo.metrics() : nullptr);
  }
  // A recovering worker refetches its checkpointed vectors (x, y, z) over
  // the network on top of the fixed respawn delay.
  const simnet::VirtualTime recovery_transfer =
      cost.DenseTransferTime(simnet::Link::kInterNode, 3 * d_sz);
  // The elected leader of node `n` dies mid-round: it drops out of the rest
  // of this iteration and stays down like a crashed worker afterwards.
  auto kill_leader_mid_round = [&](simnet::NodeId n,
                                   const simnet::LeaderDeathSpec& death,
                                   std::uint64_t it) {
    const auto li = static_cast<std::size_t>(cur_leaders[n]);
    down_now[li] = 1;
    up_at[li] =
        death.down_iterations == 0 ? kNever : it + 1 + death.down_iterations;
    node_out[n] = 1;
    ++result.faults.leader_deaths;
    PSRA_SLOG(kWarn, "fault").At(ledger[li].clock)
        << "leader " << li << " of node " << n << " died mid-round, iter "
        << it;
  };

  // Baseline the delta-series counters on whatever setup traffic is already
  // booked, so every ts.* delta is pure per-iteration traffic — which is
  // what makes a warm-started run's rows match the uninterrupted run's.
  if (eo.on()) {
    conv.prev_invocations = *pm.ar.invocations;
    conv.prev_groups = *pm.groups_formed;
    conv.prev_bytes = conv.BytesNow(pm);
    conv.prev_rounds = *pm.ar.rounds;
  }

  for (std::uint64_t iter = first_iter; iter <= options.max_iterations;
       ++iter) {
    result.iterations_run = iter;
    eo.MarkAll(ledger);

    // ---- Fault bookkeeping: recoveries, fresh crashes, per-node views ----
    bool any_down = false;
    if (faulty) {
      fctx.iteration = iter;
      fctx.channel = 0;
      for (std::size_t i = 0; i < world; ++i) {
        const auto r = static_cast<simnet::Rank>(i);
        if (down_now[i] != 0 && up_at[i] == iter) {
          // Crash-restart: restore the last checkpoint, pay the respawn
          // delay plus the virtual transfer of the checkpointed vectors.
          // Dead time itself is skipped, not booked — it is neither
          // computation nor communication.
          const WorkerCheckpoint& wc = ckpt.workers[i];
          ws.RestoreWorker(i, wc.x, wc.y, wc.z);
          ledger.SkipUntil(i, ledger.MaxClock());
          ledger.ChargeCompute(i, cfg_.cluster.fault.restart_delay_s);
          ledger.ChargeComm(i, recovery_transfer);
          down_now[i] = 0;
          up_at[i] = kNever;
          ++result.faults.recoveries;
          PSRA_SLOG(kInfo, "fault").At(ledger[i].clock)
              << "worker " << i << " recovered from checkpoint at iter "
              << iter;
          if (eo.on()) {
            pm.recovery_s->Observe(ledger[i].clock - eo.mark(i));
            eo.Span("fault_recover", ledger, i, iter);
          }
        }
        if (const auto crash = faults.CrashAt(r, iter);
            crash && down_now[i] == 0) {
          down_now[i] = 1;
          up_at[i] = crash->down_iterations == 0
                         ? kNever
                         : iter + crash->down_iterations;
          ++result.faults.worker_crashes;
          PSRA_SLOG(kWarn, "fault").At(ledger[i].clock)
              << "worker " << i << " crashed at iter " << iter
              << (crash->down_iterations == 0
                      ? " (permanent)"
                      : " (crash-restart)");
        }
        if (down_now[i] != 0) {
          any_down = true;
          ++result.faults.down_worker_iterations;
        }
      }
      alive.clear();
      for (std::size_t i = 0; i < world; ++i) {
        if (down_now[i] == 0) alive.push_back(static_cast<simnet::Rank>(i));
      }
      PSRA_REQUIRE(!alive.empty(), "fault plan left no live worker");
      for (simnet::NodeId n = 0; n < nodes; ++n) {
        node_alive[n].clear();
        for (const simnet::Rank r : node_ranks[n]) {
          if (down_now[static_cast<std::size_t>(r)] == 0) {
            node_alive[n].push_back(r);
          }
        }
        node_active[n] = node_alive[n].empty() ? 0 : 1;
        node_out[n] = 0;
        if (node_active[n] == 0) continue;
        simnet::Rank lead = leaders[n];
        if (down_now[static_cast<std::size_t>(lead)] != 0) {
          lead = wlg::ReElectLeader(topo, node_alive[n], cfg_.leader_policy,
                                    cfg_.cluster.seed, iter);
        }
        if (lead != cur_leaders[n]) {
          ++result.faults.leader_reelections;
          PSRA_SLOG(kInfo, "wlg")
              .At(ledger[static_cast<std::size_t>(lead)].clock)
              << "node " << n << " re-elected leader " << lead << " (was "
              << cur_leaders[n] << ") at iter " << iter;
          cur_leaders[n] = lead;
        }
        if (!intra_alive[n].has_value() ||
            intra_alive[n]->members() != node_alive[n]) {
          intra_alive[n].emplace(&topo, &cost, node_alive[n]);
        }
      }
    }

    // ---- x / w updates (parallel local computation, paper Alg. 1) --------
    // On traced runs each worker's host seconds are measured inside the
    // pooled loop (per-thread stopwatches), so the trace attributes wall
    // time to the worker that spent it rather than an even split.
    std::vector<double>* const wall = eo.tracing() ? &xw_wall : nullptr;
    if (faulty && any_down) {
      ws.XWStepAll(alive, flops, wall);
      for (const simnet::Rank r : alive) {
        const auto i = static_cast<std::size_t>(r);
        const double mult =
            ComputeMultiplier(cfg_.cluster, topo, stragglers, r, iter);
        ledger.ChargeCompute(i, cost.ComputeTime(flops[i]) * mult);
      }
    } else {
      ws.XWStepAll(flops, wall);
      for (std::size_t i = 0; i < world; ++i) {
        const double mult = ComputeMultiplier(
            cfg_.cluster, topo, stragglers, static_cast<simnet::Rank>(i), iter);
        ledger.ChargeCompute(i, cost.ComputeTime(flops[i]) * mult);
      }
    }
    if (wall != nullptr) {
      eo.SpanAllWall("x_update", ledger, iter, xw_wall);
    } else {
      eo.SpanAll("x_update", ledger, iter);
    }

    if (cfg_.grouping == GroupingMode::kFlat) {
      // ---- PSRA-ADMM: one global allreduce over all workers --------------
      // The collective only reads its inputs, so the workers' w vectors go
      // in directly; a private snapshot is taken only when mixed precision
      // or censoring must rewrite the payload first. On faulty runs with a
      // worker down, the collective degrades to the survivor set.
      comm::FaultContext* const fc = faulty ? &fctx : nullptr;
      const bool degraded = faulty && any_down;
      const bool mutate_inputs = cfg_.mixed_precision || censoring;
      if (degraded) {
        if (!flat_sub.has_value() || flat_sub->members() != alive) {
          flat_sub.emplace(&topo, &cost_inter, alive);
        }
        inputs.resize(alive.size());
        starts.resize(alive.size());
        for (std::size_t m = 0; m < alive.size(); ++m) {
          const auto i = static_cast<std::size_t>(alive[m]);
          inputs[m] = ws.w(i);
          if (cfg_.mixed_precision) linalg::RoundToFloat(inputs[m]);
          starts[m] = ledger[i].clock;
        }
        RunInterAllreduce(*flat_sub, *alg, cfg_.sparse_comm, inputs, starts,
                          iw, fc, eo.on() ? &pm.ar : nullptr);
      } else {
        starts.resize(world);
        if (mutate_inputs) {
          inputs.resize(world);
          for (std::size_t i = 0; i < world; ++i) {
            inputs[i] = ws.w(i);
            if (cfg_.mixed_precision) linalg::RoundToFloat(inputs[i]);
            if (censoring) apply_censoring(i, iter, inputs[i]);
          }
        }
        for (std::size_t i = 0; i < world; ++i) starts[i] = ledger[i].clock;
        RunInterAllreduce(*flat_global, *alg, cfg_.sparse_comm,
                          mutate_inputs ? std::span<const linalg::DenseVector>(
                                              inputs)
                                        : ws.w_all(),
                          starts, iw, fc, eo.on() ? &pm.ar : nullptr);
      }
      result.elements_sent += iw.elements;
      result.messages_sent += iw.messages;
      if (censoring) {
        linalg::Axpy(1.0, iw.sum, W_running);
        iw.sum = W_running;
      }
      if (degraded) {
        for (std::size_t m = 0; m < alive.size(); ++m) {
          ledger.WaitUntil(static_cast<std::size_t>(alive[m]),
                           iw.stats.finish_times[m]);
        }
      } else {
        for (std::size_t i = 0; i < world; ++i) {
          ledger.WaitUntil(i, iw.stats.finish_times[i]);
        }
      }
      if (eo.tracing()) {
        // w_allreduce on each participant's track, with the collective's
        // scatter-reduce / allgather stages nested inside where they fall
        // within the participant's own [start, finish] window.
        const simnet::VirtualTime sr = iw.stats.scatter_reduce_done;
        const std::size_t np = degraded ? alive.size() : world;
        for (std::size_t m = 0; m < np; ++m) {
          const auto i = degraded ? static_cast<std::size_t>(alive[m]) : m;
          const simnet::VirtualTime b = eo.mark(i);
          const simnet::VirtualTime e = ledger[i].clock;
          if (sr > b && sr < e) {
            eo.SpanAt("scatter_reduce", i, b, sr, iter);
            eo.SpanAt("allgather", i, sr, e, iter);
          }
          eo.Span("w_allreduce", ledger, i, iter);
        }
      }
      // Consensus update over this round's participants. Members the
      // collective excluded after exhausting retries keep their state
      // frozen for the round, like a worker that timed out.
      std::span<const simnet::Rank> participants(everyone);
      if (degraded) participants = alive;
      if (fc != nullptr && !fc->excluded.empty()) {
        zy_ranks.clear();
        std::size_t e = 0;
        for (std::size_t m = 0; m < participants.size(); ++m) {
          if (e < fc->excluded.size() &&
              fc->excluded[e] == static_cast<comm::GroupRank>(m)) {
            ++e;
            continue;
          }
          zy_ranks.push_back(participants[m]);
        }
        participants = zy_ranks;
      }
      ws.ZYStepAll(participants, iw.sum,
                   static_cast<std::uint64_t>(participants.size()), flops,
                   wall != nullptr ? &zy_wall : nullptr);
      for (const simnet::Rank r : participants) {
        ledger.ChargeCompute(static_cast<std::size_t>(r),
                             cost.ComputeTime(flops[r]));
      }
      if (eo.tracing()) {
        for (const simnet::Rank r : participants) {
          const auto i = static_cast<std::size_t>(r);
          eo.SpanWall("z_y_update", ledger, i, iter, zy_wall[i]);
        }
      }
    } else if (!faulty) {
      // ---- Hierarchical/dynamic, batched (the non-faulty hot path) --------
      // Node reductions are independent, so all of them run as ONE
      // ParallelFor over nodes. Each node's inputs are its workers' live w
      // vectors — node n owns the contiguous rank range [n*wpn, (n+1)*wpn),
      // so a subspan of w_all() replaces the per-member snapshot copies the
      // serial flow used to make. Ledger charges, metrics and spans replay
      // serially afterwards in node order, so every observable stream is
      // identical to the one-node-at-a-time flow.
      for (std::size_t i = 0; i < world; ++i) all_starts[i] = ledger[i].clock;
      const bool walled = wall != nullptr;  // measured wall attribution on
      auto reduce_node = [&](std::size_t n) {
        const double t0 = walled ? engine::ThreadPool::ThreadSeconds() : 0.0;
        const comm::GroupComm& ic = intra[n];
        const comm::GroupRank leader_g = ic.LocalRank(leaders[n]);
        comm::ReduceToLeader(
            ic, leader_g, ws.w_all().subspan(n * wpn, wpn),
            std::span<const simnet::VirtualTime>(all_starts).subspan(n * wpn,
                                                                     wpn),
            red[n]);
        if (walled) red_wall[n] = engine::ThreadPool::ThreadSeconds() - t0;
      };
      if (options.pool != nullptr) {
        options.pool->ParallelFor(static_cast<std::size_t>(nodes),
                                  reduce_node);
      } else {
        engine::SerialFor(static_cast<std::size_t>(nodes), reduce_node);
      }
      for (simnet::NodeId n = 0; n < nodes; ++n) {
        const auto& members = node_ranks[n];
        const simnet::Rank lead = leaders[n];
        result.elements_sent += red[n].elements_sent;
        result.messages_sent += red[n].messages_sent;
        for (std::size_t m = 0; m < members.size(); ++m) {
          ledger.WaitUntil(members[m], red[n].finish_times[m]);
        }
        ledger.WaitUntil(lead, red[n].leader_ready);
        if (eo.on()) {
          *pm.intra_reduce_elements += red[n].elements_sent;
          *pm.intra_reduce_messages += red[n].messages_sent;
          *pm.intra_reduce_bytes +=
              red[n].elements_sent * cfg_.cluster.cost.value_bytes;
          if (eo.tracing()) {
            // The node's measured reduce wall is shared evenly among its
            // members (the pool thread did the whole node's reduce at once).
            const double share =
                red_wall[n] / static_cast<double>(members.size());
            for (std::size_t m = 0; m < members.size(); ++m) {
              eo.SpanWall("intra_reduce", ledger,
                          static_cast<std::size_t>(members[m]), iter, share);
            }
          }
        }
        if (censoring) apply_censoring(n, iter, red[n].value);
        leader_ready[n] = ledger[lead].clock;
      }

      // ---- Group formation into the pooled cycle batch ---------------------
      if (cfg_.grouping == GroupingMode::kHierarchical) {
        simnet::VirtualTime all_ready = 0.0;
        for (simnet::NodeId n = 0; n < nodes; ++n) {
          all_ready = std::max(all_ready, leader_ready[n]);
        }
        gws.groups.Clear();
        gws.groups.PushGroup(all_nodes, all_ready);
      } else {
        // Leaders report to the GG (one small message each, paper Alg. 3).
        for (simnet::NodeId n = 0; n < nodes; ++n) {
          ledger.ChargeComm(leaders[n], request_cost);
          ++result.messages_sent;
          report[n] = ledger[leaders[n]].clock;
          if (eo.on()) {
            ++*pm.gg_reports;
            eo.Span("gg_report", ledger,
                    static_cast<std::size_t>(leaders[n]), iter);
          }
        }
        wlg::RunGroupingCycle(gg, report, gws);
        for (std::size_t gi = 0; gi < gws.groups.size(); ++gi) {
          const wlg::GroupView& view = gws.groups.group(gi);
          const auto gmembers = gws.groups.members(view);
          // GG notifies the group members (one message back per leader).
          result.messages_sent += gmembers.size();
          if (eo.on()) {
            *pm.gg_notifies += gmembers.size();
            if (eo.tracing()) {
              simnet::VirtualTime first = view.formed_at;
              for (const simnet::NodeId n : gmembers) {
                first = std::min(first, report[n]);
              }
              eo.AuxSpan(gg_track, "group_form", first, view.formed_at, iter);
            }
          }
          PSRA_SLOG(kDebug, "wlg").At(view.formed_at)
              << "group of " << gmembers.size() << " nodes formed, iter "
              << iter;
        }
      }

      // ---- Inter-node allreduce, one ParallelFor across all groups ---------
      // Every formed group leases a size-keyed slot (warm buffers + a
      // rebindable communicator) and the collectives — which only read the
      // ledger and write slot-local state — run concurrently. Registry and
      // ledger updates replay serially in formation order below; groups are
      // node-disjoint, so the replayed values match the serial flow exactly.
      garena.RecycleAll();
      gslots.clear();
      const bool dyn = cfg_.grouping == GroupingMode::kDynamicGroups;
      for (std::size_t gi = 0; gi < gws.groups.size(); ++gi) {
        const wlg::GroupView& view = gws.groups.group(gi);
        GroupSlot& slot = garena.Lease(view.size);
        slot.members = gws.groups.members(view);
        // Dynamic groups start after the GG's notify message; the fixed
        // hierarchical group starts as soon as every leader is ready.
        slot.start = dyn ? view.formed_at + request_cost : view.formed_at;
        gslots.push_back(&slot);
      }
      auto run_group = [&](std::size_t gi) {
        GroupSlot& slot = *gslots[gi];
        const double t0 = walled ? engine::ThreadPool::ThreadSeconds() : 0.0;
        const std::size_t gsize = slot.members.size();
        slot.leaders.resize(gsize);
        slot.inputs.resize(gsize);
        slot.starts.resize(gsize);
        slot.contributors = 0;
        for (std::size_t j = 0; j < gsize; ++j) {
          const simnet::NodeId n = slot.members[j];
          slot.leaders[j] = leaders[n];
          slot.inputs[j] = red[n].value;
          if (cfg_.mixed_precision) linalg::RoundToFloat(slot.inputs[j]);
          slot.starts[j] = std::max(slot.start, ledger[slot.leaders[j]].clock);
          slot.contributors += node_ranks[n].size();
        }
        if (multi_rack) {
          // One hierarchical group spanning every node: run the collective
          // recursively (per rack, then across rack leaders). mlar is shared
          // state, but multi_rack implies exactly one group per cycle.
          RunMultiLevelAllreduce(*mlar, *alg, cfg_.sparse_comm, slot.inputs,
                                 slot.starts, slot.iw);
        } else {
          if (slot.comm.has_value()) {
            slot.comm->Rebind(slot.leaders);
          } else {
            slot.comm.emplace(&topo, &cost_inter, slot.leaders);
          }
          RunInterAllreduce(*slot.comm, *alg, cfg_.sparse_comm, slot.inputs,
                            slot.starts, slot.iw);
        }
        if (walled) slot.wall = engine::ThreadPool::ThreadSeconds() - t0;
      };
      if (options.pool != nullptr) {
        options.pool->ParallelFor(gslots.size(), run_group);
      } else {
        engine::SerialFor(gslots.size(), run_group);
      }

      // Serial replay: metrics, leader waits, and the intra-node broadcast,
      // group by group in formation order (the order the serial flow used).
      for (std::size_t gi = 0; gi < gslots.size(); ++gi) {
        GroupSlot& slot = *gslots[gi];
        const std::size_t gsize = slot.members.size();
        if (eo.on()) {
          ++*pm.groups_formed;
          pm.group_size->Observe(static_cast<double>(gsize));
          for (std::size_t j = 0; j < gsize; ++j) {
            const auto li = static_cast<std::size_t>(slot.leaders[j]);
            pm.gg_wait_s->Observe(
                std::max(0.0, slot.starts[j] - ledger[li].clock));
            if (eo.tracing() && slot.starts[j] > eo.mark(li)) {
              eo.SpanAt("gg_wait", li, eo.mark(li), slot.starts[j], iter);
              eo.SetMark(li, slot.starts[j]);
            }
          }
          AccumulateArMetrics(pm.ar, slot.iw);
        }
        result.elements_sent += slot.iw.elements;
        result.messages_sent += slot.iw.messages;
        if (multi_rack) {
          // Stage-3 redistribution (rack leader -> its node leaders). It is
          // identical for every collective algorithm, so it is booked under
          // comm.rack.bcast.* rather than the algorithm's comm.allreduce.*
          // traffic — the PSR-vs-Ring comparison stays apples-to-apples.
          const std::size_t relems = mlar->redistribution_elements();
          const std::size_t rmsgs = mlar->redistribution_messages();
          result.elements_sent += relems;
          result.messages_sent += rmsgs;
          if (eo.on()) {
            *pm.rack_bcast_elements += relems;
            *pm.rack_bcast_messages += rmsgs;
            *pm.rack_bcast_bytes +=
                relems * (cfg_.sparse_comm ? inter_cost_cfg.value_bytes +
                                                 inter_cost_cfg.index_bytes
                                           : inter_cost_cfg.value_bytes);
          }
        }
        if (censoring) {  // fixed membership: fold deltas into the run sum
          linalg::Axpy(1.0, slot.iw.sum, W_running);
          slot.iw.sum = W_running;
        }
        for (std::size_t j = 0; j < gsize; ++j) {
          const simnet::NodeId n = slot.members[j];
          const simnet::Rank lead = leaders[n];
          ledger.WaitUntil(lead, slot.iw.stats.finish_times[j]);
          if (eo.tracing()) {
            const auto li = static_cast<std::size_t>(lead);
            const simnet::VirtualTime b = eo.mark(li);
            const simnet::VirtualTime e = ledger[li].clock;
            const simnet::VirtualTime sr = slot.iw.stats.scatter_reduce_done;
            if (sr > b && sr < e) {
              eo.SpanAt("scatter_reduce", li, b, sr, iter);
              eo.SpanAt("allgather", li, sr, e, iter);
            }
            // The group's measured collective wall, shared evenly among its
            // member leaders (one pool thread ran the whole collective).
            eo.SpanWall("w_allreduce", ledger, li, iter,
                        slot.wall / static_cast<double>(gsize));
          }

          // Leader broadcasts W to its node (paper Alg. 1 step 11).
          const auto& nmembers = node_ranks[n];
          const comm::GroupRank leader_g = intra[n].LocalRank(lead);
          const std::size_t elems =
              cfg_.sparse_comm ? slot.iw.result_nnz : d_sz;
          comm::BroadcastFromLeader(intra[n], leader_g, elems,
                                    ledger[lead].clock, bc);
          result.elements_sent += bc.elements_sent;
          result.messages_sent += bc.messages_sent;
          for (std::size_t m = 0; m < nmembers.size(); ++m) {
            ledger.WaitUntil(nmembers[m], bc.finish_times[m]);
          }
          if (eo.on()) {
            *pm.intra_bcast_elements += bc.elements_sent;
            *pm.intra_bcast_messages += bc.messages_sent;
            *pm.intra_bcast_bytes +=
                bc.elements_sent *
                (cfg_.sparse_comm ? cfg_.cluster.cost.value_bytes +
                                        cfg_.cluster.cost.index_bytes
                                  : cfg_.cluster.cost.value_bytes);
            if (eo.tracing()) {
              for (std::size_t m = 0; m < nmembers.size(); ++m) {
                eo.Span("w_broadcast", ledger,
                        static_cast<std::size_t>(nmembers[m]), iter);
              }
            }
          }
        }
      }

      // ---- Consensus update, flattened across all groups -------------------
      // One worker per group computes z in full; every other member worker
      // adopts it (bitwise-identical, same shortcut as ZYStepAll) in a
      // single ParallelFor over the flattened (group, worker) list — one
      // fork-join for the whole cluster instead of one per node. Ledger
      // charges and spans replay serially per worker afterwards, in the same
      // per-worker order as the serial flow.
      zy_first.clear();
      zy_copy_w.clear();
      zy_copy_src.clear();
      for (std::size_t gi = 0; gi < gslots.size(); ++gi) {
        const GroupSlot& slot = *gslots[gi];
        const simnet::Rank gfirst = node_ranks[slot.members[0]][0];
        zy_first.push_back(gfirst);
        for (const simnet::NodeId n : slot.members) {
          for (const simnet::Rank r : node_ranks[n]) {
            if (r != gfirst) {
              zy_copy_w.push_back(r);
              zy_copy_src.push_back(gfirst);
            }
          }
        }
      }
      auto zy_group = [&](std::size_t gi) {
        const GroupSlot& slot = *gslots[gi];
        const auto i = static_cast<std::size_t>(zy_first[gi]);
        if (walled) {
          const double t0 = engine::ThreadPool::ThreadSeconds();
          flops[i] = ws.ZYStep(i, slot.iw.sum, slot.contributors);
          zy_wall[i] = engine::ThreadPool::ThreadSeconds() - t0;
        } else {
          flops[i] = ws.ZYStep(i, slot.iw.sum, slot.contributors);
        }
      };
      auto zy_copy = [&](std::size_t k) {
        const auto i = static_cast<std::size_t>(zy_copy_w[k]);
        if (walled) {
          const double t0 = engine::ThreadPool::ThreadSeconds();
          flops[i] =
              ws.ZYStepFrom(i, static_cast<std::size_t>(zy_copy_src[k]));
          zy_wall[i] = engine::ThreadPool::ThreadSeconds() - t0;
        } else {
          flops[i] =
              ws.ZYStepFrom(i, static_cast<std::size_t>(zy_copy_src[k]));
        }
      };
      if (options.pool != nullptr) {
        options.pool->ParallelFor(gslots.size(), zy_group);
        options.pool->ParallelFor(zy_copy_w.size(), zy_copy);
      } else {
        engine::SerialFor(gslots.size(), zy_group);
        engine::SerialFor(zy_copy_w.size(), zy_copy);
      }
      for (std::size_t gi = 0; gi < gslots.size(); ++gi) {
        const GroupSlot& slot = *gslots[gi];
        for (const simnet::NodeId n : slot.members) {
          for (const simnet::Rank r : node_ranks[n]) {
            ledger.ChargeCompute(static_cast<std::size_t>(r),
                                 cost.ComputeTime(flops[r]));
          }
          if (eo.tracing()) {
            for (const simnet::Rank r : node_ranks[n]) {
              const auto i = static_cast<std::size_t>(r);
              eo.SpanWall("z_y_update", ledger, i, iter, zy_wall[i]);
            }
          }
        }
      }
    } else {
      // ---- Hierarchical/dynamic under fault injection ----------------------
      // The faulty path keeps the serial one-group-at-a-time flow: fault
      // handling (timeouts, exclusions, regrouping) threads per-group state
      // through the collective, and faulty iterations are rare and not
      // performance-critical.
      for (simnet::NodeId n = 0; n < nodes; ++n) {
        if (node_active[n] == 0) continue;
        const auto& members = node_alive[n];
        const comm::GroupComm& ic = *intra_alive[n];
        const simnet::Rank lead = cur_leaders[n];
        const comm::GroupRank leader_g = ic.LocalRank(lead);
        inputs.resize(members.size());
        starts.resize(members.size());
        for (std::size_t m = 0; m < members.size(); ++m) {
          inputs[m] = ws.w(members[m]);
          starts[m] = ledger[members[m]].clock;
        }
        comm::ReduceToLeader(ic, leader_g, inputs, starts, red[n]);
        result.elements_sent += red[n].elements_sent;
        result.messages_sent += red[n].messages_sent;
        for (std::size_t m = 0; m < members.size(); ++m) {
          ledger.WaitUntil(members[m], red[n].finish_times[m]);
        }
        ledger.WaitUntil(lead, red[n].leader_ready);
        if (eo.on()) {
          *pm.intra_reduce_elements += red[n].elements_sent;
          *pm.intra_reduce_messages += red[n].messages_sent;
          *pm.intra_reduce_bytes +=
              red[n].elements_sent * cfg_.cluster.cost.value_bytes;
          if (eo.tracing()) {
            for (std::size_t m = 0; m < members.size(); ++m) {
              eo.Span("intra_reduce", ledger,
                      static_cast<std::size_t>(members[m]), iter);
            }
          }
        }
        leader_ready[n] = ledger[lead].clock;
      }

      // ---- Group formation -------------------------------------------------
      // Each formed group is (members, start time of its allreduce).
      if (cfg_.grouping == GroupingMode::kHierarchical) {
        // Rebuild the single group from the nodes still standing; a leader
        // dying mid-round drops its node from this round.
        simnet::VirtualTime all_ready = 0.0;
        groups.clear();
        active_nodes.clear();
        for (simnet::NodeId n = 0; n < nodes; ++n) {
          if (node_active[n] == 0) continue;
          if (const auto death = faults.LeaderDeathAt(n, iter)) {
            kill_leader_mid_round(n, *death, iter);
            continue;
          }
          active_nodes.push_back(n);
          all_ready = std::max(all_ready, leader_ready[n]);
        }
        groups.emplace_back(active_nodes, all_ready);
      } else {
        // Faulty dynamic grouping: only live nodes report; a leader dying
        // right after its report is withdrawn from the GG queue (the
        // survivors regroup) or, if its group already formed, excluded from
        // that group below.
        groups.clear();
        leader_reports.clear();
        for (simnet::NodeId n = 0; n < nodes; ++n) {
          if (node_active[n] == 0) continue;
          const simnet::Rank lead = cur_leaders[n];
          ledger.ChargeComm(lead, request_cost);
          ++result.messages_sent;
          report[n] = ledger[lead].clock;
          wlg::LeaderReport lr;
          lr.node = n;
          lr.time = report[n];
          if (const auto death = faults.LeaderDeathAt(n, iter)) {
            lr.dies_at = report[n];  // dies right after reporting
            kill_leader_mid_round(n, *death, iter);
          }
          leader_reports.push_back(lr);
          if (eo.on()) {
            ++*pm.gg_reports;
            eo.Span("gg_report", ledger, static_cast<std::size_t>(lead),
                    iter);
          }
        }
        for (auto& g : wlg::RunGroupingCycle(gg, leader_reports)) {
          const simnet::VirtualTime start = g.formed_at + request_cost;
          result.messages_sent += g.members.size();
          if (eo.on()) {
            *pm.gg_notifies += g.members.size();
            if (eo.tracing()) {
              simnet::VirtualTime first = g.formed_at;
              for (const simnet::NodeId n : g.members) {
                first = std::min(first, report[n]);
              }
              eo.AuxSpan(gg_track, "group_form", first, g.formed_at, iter);
            }
          }
          PSRA_SLOG(kDebug, "wlg").At(g.formed_at)
              << "survivors regrouped into " << g.members.size()
              << " nodes, iter " << iter;
          groups.emplace_back(std::move(g.members), start);
        }
      }

      // ---- Inter-node allreduce within each group + intra broadcast --------
      comm::FaultContext* const fc = faulty ? &fctx : nullptr;
      for (const auto& [members, start] : groups) {
        std::span<const simnet::NodeId> gmembers(members);
        if (faulty) {
          // Leaders that died after their group formed are excluded here
          // (the ones that died while queued never made it into a group).
          live_members.clear();
          for (const simnet::NodeId n : gmembers) {
            if (node_out[n] == 0) live_members.push_back(n);
          }
          gmembers = live_members;
        }
        const std::size_t gsize = gmembers.size();
        if (gsize == 0) continue;
        std::uint64_t contributors = 0;
        for (std::size_t j = 0; j < gsize; ++j) {
          const simnet::NodeId n = gmembers[j];
          group_leaders[j] = faulty ? cur_leaders[n] : leaders[n];
          ginputs[j] = red[n].value;
          if (cfg_.mixed_precision) linalg::RoundToFloat(ginputs[j]);
          gstarts[j] = std::max(start, ledger[group_leaders[j]].clock);
          contributors += faulty ? node_alive[n].size() : node_ranks[n].size();
        }
        if (eo.on()) {
          ++*pm.groups_formed;
          pm.group_size->Observe(static_cast<double>(gsize));
          for (std::size_t j = 0; j < gsize; ++j) {
            const auto li = static_cast<std::size_t>(group_leaders[j]);
            pm.gg_wait_s->Observe(
                std::max(0.0, gstarts[j] - ledger[li].clock));
            if (eo.tracing() && gstarts[j] > eo.mark(li)) {
              eo.SpanAt("gg_wait", li, eo.mark(li), gstarts[j], iter);
              eo.SetMark(li, gstarts[j]);
            }
          }
        }
        const comm::GroupComm inter(
            &topo, &cost_inter,
            {group_leaders.begin(), group_leaders.begin() + gsize});
        RunInterAllreduce(inter, *alg, cfg_.sparse_comm,
                          std::span(ginputs.data(), gsize),
                          std::span(gstarts.data(), gsize), iw, fc,
                          eo.on() ? &pm.ar : nullptr);
        result.elements_sent += iw.elements;
        result.messages_sent += iw.messages;
        if (censoring) {  // fixed membership: fold deltas into the run sum
          linalg::Axpy(1.0, iw.sum, W_running);
          iw.sum = W_running;
        }
        if (fc != nullptr && !fc->excluded.empty()) {
          // Nodes the collective timed out of this round contributed
          // nothing to the sum; their workers skip the consensus update.
          for (const comm::GroupRank g : fc->excluded) {
            contributors -= node_alive[gmembers[g]].size();
          }
        }

        std::size_t excl = 0;  // cursor into fc->excluded (sorted ascending)
        for (std::size_t gi = 0; gi < gsize; ++gi) {
          const simnet::NodeId n = gmembers[gi];
          const simnet::Rank lead = faulty ? cur_leaders[n] : leaders[n];
          ledger.WaitUntil(lead, iw.stats.finish_times[gi]);
          if (eo.tracing()) {
            const auto li = static_cast<std::size_t>(lead);
            const simnet::VirtualTime b = eo.mark(li);
            const simnet::VirtualTime e = ledger[li].clock;
            const simnet::VirtualTime sr = iw.stats.scatter_reduce_done;
            if (sr > b && sr < e) {
              eo.SpanAt("scatter_reduce", li, b, sr, iter);
              eo.SpanAt("allgather", li, sr, e, iter);
            }
            eo.Span("w_allreduce", ledger, li, iter);
          }
          if (fc != nullptr && excl < fc->excluded.size() &&
              fc->excluded[excl] == static_cast<comm::GroupRank>(gi)) {
            ++excl;  // timed out: no broadcast, node state frozen this round
            continue;
          }

          // Leader broadcasts W to its node (paper Alg. 1 step 11).
          const auto& nmembers = faulty ? node_alive[n] : node_ranks[n];
          const comm::GroupComm& ic = faulty ? *intra_alive[n] : intra[n];
          const comm::GroupRank leader_g = ic.LocalRank(lead);
          const std::size_t elems =
              cfg_.sparse_comm ? iw.result_nnz
                               : static_cast<std::size_t>(problem.dim());
          comm::BroadcastFromLeader(ic, leader_g, elems, ledger[lead].clock,
                                    bc);
          result.elements_sent += bc.elements_sent;
          result.messages_sent += bc.messages_sent;
          for (std::size_t m = 0; m < nmembers.size(); ++m) {
            ledger.WaitUntil(nmembers[m], bc.finish_times[m]);
          }
          if (eo.on()) {
            *pm.intra_bcast_elements += bc.elements_sent;
            *pm.intra_bcast_messages += bc.messages_sent;
            *pm.intra_bcast_bytes +=
                bc.elements_sent *
                (cfg_.sparse_comm ? cfg_.cluster.cost.value_bytes +
                                        cfg_.cluster.cost.index_bytes
                                  : cfg_.cluster.cost.value_bytes);
            if (eo.tracing()) {
              for (std::size_t m = 0; m < nmembers.size(); ++m) {
                eo.Span("w_broadcast", ledger,
                        static_cast<std::size_t>(nmembers[m]), iter);
              }
            }
          }
          ws.ZYStepAll(nmembers, iw.sum, contributors, flops);
          for (std::size_t m = 0; m < nmembers.size(); ++m) {
            const simnet::Rank r = nmembers[m];
            ledger.ChargeCompute(r, cost.ComputeTime(flops[r]));
          }
          if (eo.tracing()) {
            for (std::size_t m = 0; m < nmembers.size(); ++m) {
              eo.Span("z_y_update", ledger,
                      static_cast<std::size_t>(nmembers[m]), iter);
            }
          }
        }
      }
    }

    // ---- Residuals, adaptive penalty, stopping ---------------------------
    // Residual norms piggyback on the existing aggregation traffic (two
    // scalars), so no extra virtual time is charged.
    const WorkerSet::Residuals residuals = ws.ComputeResiduals(z_prev_mean);
    ws.MeanZInto(z_prev_mean);
    const double rho_now = ws.MaybeAdaptRho(options.adaptive_rho, residuals);

    // ---- Convergence timeline (one row per iteration) --------------------
    // Samples come from virtual-time state and hoisted counters only, so the
    // timeline is bitwise-identical across pool sizes; appends are plain
    // stores into pooled chunks (0 allocs/iter, pinned by test_alloc).
    if (eo.on()) {
      eo.BeginTimelineRow(iter);
      conv.primal->Append(residuals.primal);
      conv.dual->Append(residuals.dual);
      // z_prev_mean was just refreshed: it holds THIS iteration's consensus
      // mean, so the objective is evaluated allocation-free on it.
      conv.objective->Append(
          solver::GlobalObjective(problem.train, z_prev_mean, problem.lambda));
      conv.rho->Append(rho_now);
      const std::uint64_t inv = *pm.ar.invocations;
      const std::uint64_t grp = *pm.groups_formed;
      const std::uint64_t byt = conv.BytesNow(pm);
      const std::uint64_t rnd = *pm.ar.rounds;
      conv.active_groups->Append(static_cast<double>(inv - conv.prev_invocations));
      conv.regroups->Append(static_cast<double>(grp - conv.prev_groups));
      conv.bytes->Append(static_cast<double>(byt - conv.prev_bytes));
      conv.rounds->Append(static_cast<double>(rnd - conv.prev_rounds));
      conv.prev_invocations = inv;
      conv.prev_groups = grp;
      conv.prev_bytes = byt;
      conv.prev_rounds = rnd;
    }
    if (options.progress != nullptr) {
      options.progress->Report({iter, options.max_iterations, residuals.primal,
                                residuals.dual, rho_now});
    }

    // ---- Metrics ----------------------------------------------------------
    if (options.record_trace &&
        (iter % options.eval_every == 0 || iter == options.max_iterations)) {
      IterationRecord rec = ws.Evaluate(iter, ledger);
      rec.primal_residual = residuals.primal;
      rec.dual_residual = residuals.dual;
      rec.rho = rho_now;
      result.trace.push_back(rec);
    }

    // ---- Periodic checkpoint (fault runs only) ---------------------------
    // Captures the live workers' state; a down worker's slot keeps its last
    // pre-crash snapshot, which is what its recovery restores.
    if (faulty && iter % cfg_.cluster.fault.checkpoint_every == 0) {
      CaptureRunCheckpoint(ws, iter, alive, ckpt,
                           eo.on() ? &eo.metrics() : nullptr);
    }

    // ---- Requested checkpoint (split-run / warm-restart harnesses) -------
    if (options.checkpoint_out != nullptr && iter == options.checkpoint_at) {
      CaptureRunCheckpoint(ws, iter, everyone, *options.checkpoint_out,
                           eo.on() ? &eo.metrics() : nullptr);
    }

    if (iter > 1 && WorkerSet::ShouldStop(options.stopping, residuals,
                                          problem.num_workers(),
                                          problem.dim())) {
      result.stopped_early = true;
      break;
    }
  }

  if (faulty) {
    result.faults.dropped_messages = fctx.dropped_messages;
    result.faults.retries = fctx.retries;
    result.faults.delayed_messages = fctx.delayed_messages;
  }

  result.final_z = ws.MeanZ();
  result.final_objective =
      solver::GlobalObjective(problem.train, result.final_z, problem.lambda);
  result.final_accuracy = solver::Accuracy(problem.test, result.final_z);
  result.total_cal_time = ledger.MeanCalTime();
  result.total_comm_time = ledger.MeanCommTime();
  result.makespan = ledger.MaxClock();
  if (eo.on()) {
    auto& m = eo.metrics();
    m.Counter("engine.iterations") += result.iterations_run;
    m.Counter("engine.censored_sends") += result.censored_sends;
    m.Counter("fault.worker_crashes") += result.faults.worker_crashes;
    m.Counter("fault.recoveries") += result.faults.recoveries;
    m.Counter("fault.leader_deaths") += result.faults.leader_deaths;
    m.Counter("fault.leader_reelections") += result.faults.leader_reelections;
    m.Counter("fault.dropped_messages") += result.faults.dropped_messages;
    m.Counter("fault.retries") += result.faults.retries;
    m.Counter("fault.delayed_messages") += result.faults.delayed_messages;
    m.Counter("fault.down_worker_iterations") +=
        result.faults.down_worker_iterations;
    m.Gauge("run.makespan_s") = result.makespan;
    m.Gauge("run.cal_time_s") = result.total_cal_time;
    m.Gauge("run.comm_time_s") = result.total_comm_time;
    m.Gauge("run.iterations") = static_cast<double>(result.iterations_run);
    // Early-stop outcome (Boyd §3.3): lets any metrics.json distinguish a
    // converged run from a max-iteration exit, and records how many
    // iterations the tolerance took when it was reached.
    m.Gauge("stopping.converged") = result.stopped_early ? 1.0 : 0.0;
    m.Gauge("stopping.iterations_to_tolerance") =
        result.stopped_early ? static_cast<double>(result.iterations_run) : 0.0;
    eo.PublishTimelineSummary();
    result.metrics = m;
  }
  return result;
}

}  // namespace psra::admm
