// PSRA-HGADMM and its ablations (paper Section 4).
//
// One class covers the synchronous (BSP) family; the grouping mode selects
// the paper's variants:
//   kFlat           — PSRA-ADMM: every worker joins one global allreduce
//                     (Section 4.2, no hierarchy).
//   kHierarchical   — hierarchical aggregation but *no* dynamic grouping:
//                     intra-node reduce -> one allreduce over all Leaders ->
//                     intra-node broadcast. This is the "without dynamic
//                     grouping" configuration of Figure 7.
//   kDynamicGroups  — full PSRA-HGADMM: Leaders report to the Group
//                     Generator, which batches them into groups of
//                     `group_threshold`; each group allreduces and computes
//                     a group-consensus z (Section 4.3, Algorithms 1-3).
//
// The allreduce algorithm is pluggable (PSR / Ring / naive) so the PSR
// contribution can be measured in isolation.
#pragma once

#include <string>

#include "admm/common.hpp"
#include "comm/collective.hpp"
#include "wlg/leader.hpp"

namespace psra::admm {

enum class GroupingMode { kFlat, kHierarchical, kDynamicGroups };

std::string GroupingModeName(GroupingMode mode);

struct PsraConfig {
  ClusterConfig cluster;
  GroupingMode grouping = GroupingMode::kDynamicGroups;
  /// Leaders per group; 0 = num_nodes / 2 (the paper's Fig. 5 setting).
  std::uint32_t group_threshold = 0;
  comm::AllreduceKind allreduce = comm::AllreduceKind::kPsr;
  /// Transmit aggregates in sparse (index,value) form; the paper's Section
  /// 4.2 analysis assumes this. Dense mode is kept for ablation.
  bool sparse_comm = true;
  wlg::LeaderPolicy leader_policy = wlg::LeaderPolicy::kLowestRank;
  /// Payload of a grouping request / notify message to or from the GG.
  std::size_t request_bytes = 64;
  /// Service time of the Group Generator per request (queueing + handling in
  /// the central GG process). This is the "time on node grouping" overhead
  /// the paper observes at small node counts (Section 5.5 / Section 6).
  double gg_service_time_s = 50e-6;
  /// Mixed-precision communication (the technique ADMMLib integrates, and
  /// the Q-GADMM direction the related work quantizes further): inter-node
  /// aggregates are rounded through fp32 before transmission and priced at
  /// 4 bytes per value. Halves inter-node bandwidth at a small, measurable
  /// accuracy cost.
  bool mixed_precision = false;
  /// Communication censoring (COLA-ADMM, paper ref [13]): senders transmit
  /// the *change* of their aggregate since the last transmission, and skip
  /// the round entirely when ||delta||_2 < censor_threshold * decay^k.
  /// Every participant maintains the running sum, so censored rounds cost
  /// nothing on the wire. 0 disables. Only valid with kFlat/kHierarchical
  /// (dynamic groups have no fixed membership to keep a running sum over).
  double censor_threshold = 0.0;
  double censor_decay = 0.97;
};

class PsraHgAdmm {
 public:
  explicit PsraHgAdmm(const PsraConfig& config);

  /// Algorithm label used in traces/benches, e.g. "PSRA-HGADMM(psr)".
  std::string Name() const;

  /// Requires problem.num_workers() == cluster.world_size().
  RunResult Run(const ConsensusProblem& problem,
                const RunOptions& options) const;

 private:
  PsraConfig cfg_;
};

}  // namespace psra::admm
