#include "admm/gadmm.hpp"

#include "admm/instrument.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <cmath>

#include "solver/metrics.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::admm {

Gadmm::Gadmm(const GadmmConfig& config) : cfg_(config) {
  PSRA_REQUIRE(config.quantization_bits <= 16,
               "quantization_bits must be in [0, 16]");
}

std::string Gadmm::Name() const {
  if (cfg_.quantization_bits == 0) return "GADMM";
  return "Q-GADMM(" + std::to_string(cfg_.quantization_bits) + "b)";
}

namespace {

/// Stochastic uniform quantization of (value - reference) with 2^bits
/// levels, reconstructed against the reference — both ends derive the same
/// result, so only the quantized payload crosses the wire.
void QuantizeDelta(std::span<const double> value, std::span<double> out,
                   std::span<const double> reference, std::uint32_t bits,
                   Rng& rng) {
  const double levels = std::pow(2.0, bits) - 1.0;
  double radius = 0.0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    radius = std::max(radius, std::fabs(value[i] - reference[i]));
  }
  if (radius == 0.0) {
    std::copy(value.begin(), value.end(), out.begin());
    return;
  }
  const double step = 2.0 * radius / levels;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const double delta = value[i] - reference[i];
    const double scaled = (delta + radius) / step;
    double lower = std::floor(scaled);
    // Stochastic rounding: unbiased quantization, as in Q-GADMM.
    if (rng.NextDouble() < scaled - lower) lower += 1.0;
    out[i] = reference[i] + lower * step - radius;
  }
}

}  // namespace

RunResult Gadmm::Run(const ConsensusProblem& problem,
                     const RunOptions& options) const {
  const simnet::Topology topo(cfg_.cluster.num_nodes,
                              cfg_.cluster.workers_per_node,
                              cfg_.cluster.num_racks);
  PSRA_REQUIRE(problem.num_workers() == topo.world_size(),
               "problem must be partitioned into one shard per worker");
  // GADMM's chain duals (lambda) are not part of a RunCheckpoint, so a
  // restored snapshot cannot reconstruct its full state.
  PSRA_REQUIRE(options.warm_start == nullptr,
               "GADMM does not support warm starts (chain duals are not "
               "checkpointed)");
  const simnet::CostModel cost(cfg_.cluster.cost);
  const simnet::StragglerModel stragglers(topo, cfg_.cluster.straggler);
  const simnet::FaultPlan faults(cfg_.cluster.fault);
  // The chain has no leaders or collectives, so only the crash schedule
  // applies here; drop/delay/leader-death knobs concern the WLG algorithms.
  const bool faulty = !faults.Empty() && !faults.crashes().empty();
  const auto world = static_cast<std::size_t>(topo.world_size());
  const auto d = static_cast<std::size_t>(problem.dim());
  const double rho = problem.rho;

  engine::TimeLedger ledger(world);
  RunResult result;
  result.algorithm = Name();
  Rng rng(cfg_.cluster.seed ^ 0x6ADuLL);

  // ---- Observability (no-op without RunOptions::obs; see DESIGN.md §9) ---
  EngineObs eo(options.obs, world);
  std::uint64_t* c_push_elements = nullptr;
  std::uint64_t* c_push_messages = nullptr;
  std::uint64_t* c_push_bytes = nullptr;
  obs::Histogram* h_recovery = nullptr;
  // Wire width of one chain transfer (quantized payloads carry `bits` per
  // value plus a 16-byte scale/radius header).
  const auto push_bytes = static_cast<std::uint64_t>(
      cfg_.quantization_bits == 0
          ? static_cast<double>(d) * cfg_.cluster.cost.value_bytes
          : static_cast<double>(d) * cfg_.quantization_bits / 8.0 + 16.0);
  if (eo.on()) {
    auto& m = eo.metrics();
    c_push_elements = &m.Counter("comm.chain.push.elements");
    c_push_messages = &m.Counter("comm.chain.push.messages");
    c_push_bytes = &m.Counter("comm.chain.push.bytes");
    static constexpr double kTimeBounds[] = {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
    h_recovery = &m.Histo("fault.recovery_latency_s", kTimeBounds);
  }
  // Hoisted convergence-timeline series (DESIGN.md §13). GADMM has no
  // consensus z, so its "primal residual" is the chain-link disagreement
  // sqrt(sum_n ||x_n - x_{n+1}||^2), which goes to zero at consensus.
  obs::TimeSeries* ts_primal = nullptr;
  obs::TimeSeries* ts_objective = nullptr;
  obs::TimeSeries* ts_rho = nullptr;
  obs::TimeSeries* ts_bytes = nullptr;
  obs::TimeSeries* ts_messages = nullptr;
  std::uint64_t prev_push_bytes = 0;
  std::uint64_t prev_push_messages = 0;
  linalg::DenseVector tl_mean;  // reusable mean-model buffer (telemetry only)
  if (eo.on()) {
    ts_primal = eo.Series("ts.primal_residual");
    ts_objective = eo.Series("ts.objective");
    ts_rho = eo.Series("ts.rho");
    ts_bytes = eo.Series("ts.bytes");
    ts_messages = eo.Series("ts.messages");
    tl_mean.assign(d, 0.0);
  }

  // Chain state. neighbor_copy[n][side]: worker n's latest copy of
  // x_{n-1} (side 0) / x_{n+1} (side 1). last_sent[n][side]: the model n's
  // neighbor on that side last received from n (quantization reference).
  std::vector<solver::ProximalLogistic> local;
  local.reserve(world);
  for (std::size_t n = 0; n < world; ++n) {
    local.emplace_back(&problem.shards[n], rho);
    // Same tall-vs-wide transpose-reduction selection as WorkerSet.
    local.back().SetUseGramHessian(
        UseGramSolver(options.local_solver, problem.shards[n].num_samples(),
                      problem.shards[n].num_features()));
  }
  std::vector<linalg::DenseVector> x(world, linalg::DenseVector(d, 0.0));
  std::vector<linalg::DenseVector> lambda(world > 1 ? world - 1 : 0,
                                          linalg::DenseVector(d, 0.0));
  std::vector<std::array<linalg::DenseVector, 2>> neighbor_copy(
      world, {linalg::DenseVector(d, 0.0), linalg::DenseVector(d, 0.0)});
  std::vector<std::array<linalg::DenseVector, 2>> last_sent(
      world, {linalg::DenseVector(d, 0.0), linalg::DenseVector(d, 0.0)});

  // ---- Fault-injection state (crash-restart over the chain) --------------
  // With an empty crash schedule none of this is touched and the iteration
  // body is byte-for-byte the fault-free path.
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  std::vector<char> down_now;
  std::vector<std::uint64_t> up_at;
  // A worker's recoverable chain state: x, its dual (owned link), neighbor
  // copies. Captured every checkpoint_every iterations for live workers.
  std::vector<linalg::DenseVector> ckpt_x;
  std::vector<linalg::DenseVector> ckpt_lambda;
  std::vector<std::array<linalg::DenseVector, 2>> ckpt_copy;
  if (faulty) {
    down_now.assign(world, 0);
    up_at.assign(world, kNever);
    ckpt_x = x;
    ckpt_lambda = lambda;
    ckpt_copy = neighbor_copy;
  }
  const simnet::VirtualTime recovery_transfer =
      cost.DenseTransferTime(simnet::Link::kInterNode, 4 * d);

  // Wire cost of one model transfer: quantized payloads carry `bits` per
  // value plus a scale/radius header; unquantized ones are dense doubles.
  auto transfer_time = [&](std::size_t from, std::size_t to) {
    const simnet::Link link = topo.LinkBetween(
        static_cast<simnet::Rank>(from), static_cast<simnet::Rank>(to));
    if (link == simnet::Link::kLocal) return 0.0;
    if (cfg_.quantization_bits == 0) {
      return cost.DenseTransferTime(link, d);
    }
    const double bytes =
        static_cast<double>(d) * cfg_.quantization_bits / 8.0 + 16.0;
    return cost.LatencyOf(link) + bytes / cost.BandwidthOf(link);
  };

  // TRON solve of the chain x_n subproblem against current neighbor copies.
  linalg::DenseVector v(d), center(d);
  auto update_x = [&](std::size_t n, std::uint64_t iter) {
    solver::FlopCounter flops;
    const bool has_left = n > 0, has_right = n + 1 < world;
    if (has_left && has_right) {
      for (std::size_t i = 0; i < d; ++i) {
        center[i] = 0.5 * (neighbor_copy[n][0][i] + neighbor_copy[n][1][i]);
        v[i] = lambda[n][i] - lambda[n - 1][i];
      }
      local[n].SetRho(2.0 * rho);
    } else if (has_right) {  // head of the chain
      center = neighbor_copy[n][1];
      v = lambda[n];
      local[n].SetRho(rho);
    } else if (has_left) {  // tail of the chain
      center = neighbor_copy[n][0];
      for (std::size_t i = 0; i < d; ++i) v[i] = -lambda[n - 1][i];
      local[n].SetRho(rho);
    } else {  // single worker: plain regularized fit around 0
      linalg::SetZero(center);
      linalg::SetZero(v);
      local[n].SetRho(rho);
    }
    local[n].SetIterationTerms(v, center);
    solver::TronMinimize(local[n], x[n], options.tron, &flops);
    const double mult = ComputeMultiplier(cfg_.cluster, topo, stragglers,
                                          static_cast<simnet::Rank>(n), iter);
    ledger.ChargeCompute(n, cost.ComputeTime(flops.flops) * mult);
  };

  // Worker n pushes its model to neighbor `to`; the receiver's copy and the
  // quantization reference are updated with the (possibly quantized) value.
  linalg::DenseVector wire(d);
  auto push_model = [&](std::size_t n, std::size_t to) {
    if (faulty && down_now[n] != 0) return;  // dead senders send nothing
    const std::size_t side_sender = to > n ? 1 : 0;  // n's side facing `to`
    const std::size_t side_receiver = to > n ? 0 : 1;
    if (faulty && down_now[to] != 0) {
      // The sender does not know its neighbor is dead: the transfer is paid
      // for and counted, but never delivered.
      ledger.ChargeComm(n, transfer_time(n, to));
      result.elements_sent += d;
      ++result.messages_sent;
      if (c_push_messages != nullptr) {
        *c_push_elements += d;
        ++*c_push_messages;
        *c_push_bytes += push_bytes;
      }
      return;
    }
    if (cfg_.quantization_bits == 0) {
      wire = x[n];
    } else {
      QuantizeDelta(x[n], wire,
                    cfg_.quantize_error_feedback ? last_sent[n][side_sender]
                                                 : linalg::DenseVector(d, 0.0),
                    cfg_.quantization_bits, rng);
      last_sent[n][side_sender] = wire;
    }
    const simnet::VirtualTime t = transfer_time(n, to);
    ledger.ChargeComm(n, t);
    result.elements_sent += d;
    ++result.messages_sent;
    if (c_push_messages != nullptr) {
      *c_push_elements += d;
      ++*c_push_messages;
      *c_push_bytes += push_bytes;
    }
    neighbor_copy[to][side_receiver] = wire;
    // Receiver cannot proceed before the arrival.
    ledger.WaitUntil(to, ledger[n].clock);
  };

  auto mean_model = [&] {
    linalg::DenseVector m(d, 0.0);
    for (const auto& xi : x) linalg::Axpy(1.0, xi, m);
    linalg::Scale(1.0 / static_cast<double>(world), m);
    return m;
  };
  auto chain_disagreement = [&] {
    double acc = 0.0;
    for (std::size_t n = 0; n + 1 < world; ++n) {
      for (std::size_t i = 0; i < d; ++i) {
        const double diff = x[n][i] - x[n + 1][i];
        acc += diff * diff;
      }
    }
    return std::sqrt(acc);
  };

  for (std::uint64_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations_run = iter;
    eo.MarkAll(ledger);

    // ---- Fault bookkeeping: recoveries first, then fresh crashes ---------
    if (faulty) {
      for (std::size_t n = 0; n < world; ++n) {
        if (down_now[n] != 0 && up_at[n] == iter) {
          x[n] = ckpt_x[n];
          if (n + 1 < world) lambda[n] = ckpt_lambda[n];
          neighbor_copy[n] = ckpt_copy[n];
          ledger.SkipUntil(n, ledger.MaxClock());
          ledger.ChargeCompute(n, cfg_.cluster.fault.restart_delay_s);
          ledger.ChargeComm(n, recovery_transfer);
          down_now[n] = 0;
          up_at[n] = kNever;
          ++result.faults.recoveries;
          PSRA_SLOG(kInfo, "fault").At(ledger[n].clock)
              << "chain worker " << n << " recovered at iter " << iter;
          if (eo.on()) {
            h_recovery->Observe(ledger[n].clock - eo.mark(n));
            eo.Span("fault_recover", ledger, n, iter);
          }
        }
        if (const auto crash = faults.CrashAt(static_cast<simnet::Rank>(n),
                                              iter);
            crash && down_now[n] == 0) {
          down_now[n] = 1;
          up_at[n] = crash->down_iterations == 0
                         ? kNever
                         : iter + crash->down_iterations;
          ++result.faults.worker_crashes;
        }
        if (down_now[n] != 0) ++result.faults.down_worker_iterations;
      }
    }
    const auto is_down = [&](std::size_t n) {
      return faulty && down_now[n] != 0;
    };

    // Head group (even chain positions): update then push to neighbors.
    for (std::size_t n = 0; n < world; n += 2) {
      if (!is_down(n)) update_x(n, iter);
    }
    eo.SpanAll("x_update", ledger, iter);
    for (std::size_t n = 0; n < world; n += 2) {
      if (n > 0) push_model(n, n - 1);
      if (n + 1 < world) push_model(n, n + 1);
    }
    eo.SpanAll("push_model", ledger, iter);
    // Tail group (odd positions): update with fresh head models, push back.
    for (std::size_t n = 1; n < world; n += 2) {
      if (!is_down(n)) update_x(n, iter);
    }
    eo.SpanAll("x_update", ledger, iter);
    for (std::size_t n = 1; n < world; n += 2) {
      push_model(n, n - 1);
      if (n + 1 < world) push_model(n, n + 1);
    }
    eo.SpanAll("push_model", ledger, iter);

    // Dual ascent on every link (local at both endpoints; we keep one copy).
    for (std::size_t n = 0; n + 1 < world; ++n) {
      if (is_down(n)) continue;  // the link owner is dead: dual frozen
      // Endpoint n uses its own x and its copy of x_{n+1} (just received).
      for (std::size_t i = 0; i < d; ++i) {
        lambda[n][i] += rho * (x[n][i] - neighbor_copy[n][1][i]);
      }
      ledger.ChargeCompute(n, cost.ComputeTime(3.0 * static_cast<double>(d)));
    }
    eo.SpanAll("dual_update", ledger, iter);

    // ---- Periodic checkpoint of the live workers' chain state ------------
    if (faulty && iter % cfg_.cluster.fault.checkpoint_every == 0) {
      for (std::size_t n = 0; n < world; ++n) {
        if (down_now[n] != 0) continue;
        ckpt_x[n] = x[n];
        if (n + 1 < world) ckpt_lambda[n] = lambda[n];
        ckpt_copy[n] = neighbor_copy[n];
      }
    }

    // ---- Convergence timeline (one row per iteration) --------------------
    if (eo.on() || options.progress != nullptr) {
      const double disagreement = chain_disagreement();
      if (eo.on()) {
        eo.BeginTimelineRow(iter);
        ts_primal->Append(disagreement);
        linalg::SetZero(tl_mean);
        for (const auto& xi : x) linalg::Axpy(1.0, xi, tl_mean);
        linalg::Scale(1.0 / static_cast<double>(world), tl_mean);
        ts_objective->Append(
            solver::GlobalObjective(problem.train, tl_mean, problem.lambda));
        ts_rho->Append(rho);
        const std::uint64_t byt = *c_push_bytes;
        const std::uint64_t msg = *c_push_messages;
        ts_bytes->Append(static_cast<double>(byt - prev_push_bytes));
        ts_messages->Append(static_cast<double>(msg - prev_push_messages));
        prev_push_bytes = byt;
        prev_push_messages = msg;
      }
      if (options.progress != nullptr) {
        options.progress->Report(
            {iter, options.max_iterations, disagreement, 0.0, rho});
      }
    }

    if (options.record_trace &&
        (iter % options.eval_every == 0 || iter == options.max_iterations)) {
      IterationRecord rec;
      rec.iteration = iter;
      const auto m = mean_model();
      rec.objective = solver::GlobalObjective(problem.train, m,
                                              problem.lambda);
      rec.accuracy = solver::Accuracy(problem.test, m);
      rec.cal_time = ledger.MeanCalTime();
      rec.comm_time = ledger.MeanCommTime();
      rec.makespan = ledger.MaxClock();
      rec.rho = rho;
      result.trace.push_back(rec);
    }
  }

  result.final_z = mean_model();
  result.final_objective =
      solver::GlobalObjective(problem.train, result.final_z, problem.lambda);
  result.final_accuracy = solver::Accuracy(problem.test, result.final_z);
  result.total_cal_time = ledger.MeanCalTime();
  result.total_comm_time = ledger.MeanCommTime();
  result.makespan = ledger.MaxClock();
  if (eo.on()) {
    auto& m = eo.metrics();
    m.Counter("engine.iterations") += result.iterations_run;
    m.Counter("fault.worker_crashes") += result.faults.worker_crashes;
    m.Counter("fault.recoveries") += result.faults.recoveries;
    m.Counter("fault.down_worker_iterations") +=
        result.faults.down_worker_iterations;
    m.Gauge("run.makespan_s") = result.makespan;
    m.Gauge("run.cal_time_s") = result.total_cal_time;
    m.Gauge("run.comm_time_s") = result.total_comm_time;
    m.Gauge("run.iterations") = static_cast<double>(result.iterations_run);
    eo.PublishTimelineSummary();
    result.metrics = m;
  }
  return result;
}

}  // namespace psra::admm
