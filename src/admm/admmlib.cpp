#include "admm/admmlib.hpp"

#include <algorithm>
#include <cmath>

#include "comm/intranode.hpp"
#include "linalg/sparse_vector.hpp"
#include "solver/metrics.hpp"
#include "support/status.hpp"

namespace psra::admm {

AdmmLib::AdmmLib(const AdmmLibConfig& config) : cfg_(config) {
  PSRA_REQUIRE(config.min_barrier_fraction > 0.0 &&
                   config.min_barrier_fraction <= 1.0,
               "min_barrier_fraction must be in (0, 1]");
  PSRA_REQUIRE(config.max_delay >= 1, "max_delay must be at least 1");
}

RunResult AdmmLib::Run(const ConsensusProblem& problem,
                       const RunOptions& options) const {
  const simnet::Topology topo(cfg_.cluster.num_nodes,
                              cfg_.cluster.workers_per_node);
  PSRA_REQUIRE(problem.num_workers() == topo.world_size(),
               "problem must be partitioned into one shard per worker");
  const simnet::CostModel cost(cfg_.cluster.cost);
  const simnet::StragglerModel stragglers(topo, cfg_.cluster.straggler);
  const auto world = static_cast<std::size_t>(topo.world_size());
  const std::uint32_t nodes = cfg_.cluster.num_nodes;
  const auto barrier_nodes = static_cast<std::uint32_t>(std::max<double>(
      1.0, std::ceil(cfg_.min_barrier_fraction * static_cast<double>(nodes))));

  WorkerSet ws(&problem, &options);
  engine::TimeLedger ledger(world);
  const auto ring = comm::MakeAllreduce(cfg_.allreduce);
  const auto d = static_cast<std::size_t>(problem.dim());

  RunResult result;
  result.algorithm = Name();

  // Node-level helpers.
  std::vector<std::vector<simnet::Rank>> node_ranks(nodes);
  std::vector<simnet::Rank> leaders(nodes);
  std::vector<comm::GroupComm> intra;
  intra.reserve(nodes);
  for (simnet::NodeId n = 0; n < nodes; ++n) {
    node_ranks[n] = topo.RanksOnNode(n);
    leaders[n] = wlg::ElectLeader(topo, node_ranks[n], cfg_.leader_policy,
                                  cfg_.cluster.seed);
    intra.emplace_back(&topo, &cost, node_ranks[n]);
  }

  // Runs the local computation of one node (x/w updates for its workers and
  // the intra-node reduce) and returns the node-level sum; `iteration` keys
  // the jitter/straggler draw.
  std::vector<std::uint64_t> local_iter(nodes, 0);
  auto compute_node = [&](simnet::NodeId n) -> linalg::DenseVector {
    ++local_iter[n];
    const auto& members = node_ranks[n];
    std::vector<linalg::DenseVector> inputs(members.size());
    std::vector<simnet::VirtualTime> starts(members.size());
    for (std::size_t m = 0; m < members.size(); ++m) {
      const simnet::Rank r = members[m];
      const double flops = ws.XWStep(r);
      const double mult = ComputeMultiplier(cfg_.cluster, topo, stragglers, r,
                                            local_iter[n]);
      ledger.ChargeCompute(r, cost.ComputeTime(flops) * mult);
      inputs[m] = ws.w(r);
      starts[m] = ledger[r].clock;
    }
    auto red = comm::ReduceToLeader(intra[n], intra[n].LocalRank(leaders[n]),
                                    inputs, starts);
    result.elements_sent += red.elements_sent;
    result.messages_sent += red.messages_sent;
    for (std::size_t m = 0; m < members.size(); ++m) {
      ledger.WaitUntil(members[m], red.finish_times[m]);
    }
    ledger.WaitUntil(leaders[n], red.leader_ready);
    return std::move(red.value);
  };

  // SSP state.
  std::vector<linalg::DenseVector> node_w(nodes);   // freshest node sum
  std::vector<linalg::DenseVector> cache_w(nodes, linalg::DenseVector(d, 0.0));
  std::vector<simnet::VirtualTime> ready(nodes);
  std::vector<std::uint64_t> last_contrib(nodes, 0);

  for (simnet::NodeId n = 0; n < nodes; ++n) {
    node_w[n] = compute_node(n);
    ready[n] = ledger[leaders[n]].clock;
  }

  linalg::DenseVector W(d, 0.0);
  for (std::uint64_t k = 1; k <= options.max_iterations; ++k) {
    result.iterations_run = k;
    // Fire time: the barrier-th smallest ready time, pushed later by any
    // node whose contribution would otherwise exceed Max_delay.
    std::vector<simnet::VirtualTime> sorted(ready.begin(), ready.end());
    std::nth_element(sorted.begin(),
                     sorted.begin() + (barrier_nodes - 1), sorted.end());
    simnet::VirtualTime fire = sorted[barrier_nodes - 1];
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      if (k - last_contrib[n] > cfg_.max_delay) {
        fire = std::max(fire, ready[n]);
      }
    }

    std::vector<simnet::NodeId> participants;
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      if (ready[n] <= fire) participants.push_back(n);
    }
    PSRA_CHECK(!participants.empty(), "SSP round fired with no participants");

    for (simnet::NodeId n : participants) {
      cache_w[n] = node_w[n];
      last_contrib[n] = k;
    }

    // Ring-Allreduce over ALL leaders: the ring topology is fixed in
    // ADMMLib's hierarchical architecture, so every node's communication
    // thread joins each round, contributing its freshest *cached* w (stale
    // for non-participants). This is what keeps ADMMLib's communication
    // cost roughly independent of stragglers but high: 2(N-1) pipelined
    // rounds over every leader, every iteration.
    std::vector<simnet::Rank> all_leaders(leaders.begin(), leaders.end());
    const std::vector<simnet::VirtualTime> starts(nodes, fire);
    const comm::GroupComm inter(&topo, &cost, all_leaders);

    std::vector<simnet::VirtualTime> finish;
    std::size_t result_nnz = 0;
    if (cfg_.sparse_comm) {
      std::vector<linalg::SparseVector> sv;
      sv.reserve(nodes);
      for (simnet::NodeId n = 0; n < nodes; ++n) {
        sv.push_back(linalg::SparseVector::FromDense(cache_w[n]));
      }
      auto res = ring->RunSparse(inter, sv, starts);
      result.elements_sent += res.stats.elements_sent;
      result.messages_sent += res.stats.messages_sent;
      result_nnz = res.outputs[0].nnz();
      finish = std::move(res.stats.finish_times);
    } else {
      std::vector<linalg::DenseVector> dv(cache_w.begin(), cache_w.end());
      auto res = ring->RunDense(inter, dv, starts);
      result.elements_sent += res.stats.elements_sent;
      result.messages_sent += res.stats.messages_sent;
      result_nnz = d;
      finish = std::move(res.stats.finish_times);
    }

    // Global aggregate (the ring's output): fresh + stale terms.
    linalg::SetZero(W);
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      linalg::Axpy(1.0, cache_w[n], W);
    }

    // A node still computing when the ring ran had its communication thread
    // serve the ring concurrently; book the overlapped portion as comm time
    // (the post-compute remainder is booked by the WaitUntil below).
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      const simnet::VirtualTime overlapped =
          std::max(0.0, std::min(ready[n], finish[n]) - fire);
      if (overlapped > 0) ledger.ChargeCommConcurrent(leaders[n], overlapped);
    }

    // Every node receives the new aggregate and immediately starts its next
    // local iteration — SSP workers never idle. A node that was still
    // computing when the round fired (a non-participant) picks the new W up
    // as soon as both its compute and the ring are done; the w it just
    // finished is simply superseded by the fresher one it will produce
    // against the new z (standard SSP freshest-state semantics).
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      ledger.WaitUntil(leaders[n], std::max(ready[n], finish[n]));
      const std::size_t elems = cfg_.sparse_comm ? result_nnz : d;
      auto bc = comm::BroadcastFromLeader(intra[n],
                                          intra[n].LocalRank(leaders[n]),
                                          elems, ledger[leaders[n]].clock);
      result.elements_sent += bc.elements_sent;
      result.messages_sent += bc.messages_sent;
      for (std::size_t m = 0; m < node_ranks[n].size(); ++m) {
        const simnet::Rank r = node_ranks[n][m];
        ledger.WaitUntil(r, bc.finish_times[m]);
        const double zf = ws.ZYStep(r, W, topo.world_size());
        ledger.ChargeCompute(r, cost.ComputeTime(zf));
      }
      node_w[n] = compute_node(n);
      ready[n] = ledger[leaders[n]].clock;
    }

    if (options.record_trace &&
        (k % options.eval_every == 0 || k == options.max_iterations)) {
      result.trace.push_back(ws.Evaluate(k, ledger));
    }
  }

  result.final_z = ws.MeanZ();
  result.final_objective =
      solver::GlobalObjective(problem.train, result.final_z, problem.lambda);
  result.final_accuracy = solver::Accuracy(problem.test, result.final_z);
  result.total_cal_time = ledger.MeanCalTime();
  result.total_comm_time = ledger.MeanCommTime();
  result.makespan = ledger.MaxClock();
  return result;
}

}  // namespace psra::admm
