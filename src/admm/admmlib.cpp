#include "admm/admmlib.hpp"

#include <algorithm>
#include <cmath>

#include "admm/checkpoint.hpp"
#include "admm/instrument.hpp"
#include "comm/intranode.hpp"
#include "linalg/sparse_vector.hpp"
#include "solver/metrics.hpp"
#include "support/status.hpp"

namespace psra::admm {

AdmmLib::AdmmLib(const AdmmLibConfig& config) : cfg_(config) {
  PSRA_REQUIRE(config.min_barrier_fraction > 0.0 &&
                   config.min_barrier_fraction <= 1.0,
               "min_barrier_fraction must be in (0, 1]");
  PSRA_REQUIRE(config.max_delay >= 1, "max_delay must be at least 1");
}

namespace {

/// Hoisted metric slots (stable MetricsRegistry references) for the ADMMLib
/// engine, mirroring psra_hgadmm's PsraMetrics. Null slots mean "not
/// recording". The ssp.* family is ADMMLib-specific: one round per fired
/// barrier, stale contributions counted per non-participant.
struct LibMetrics {
  std::uint64_t* ar_invocations = nullptr;
  std::uint64_t* ar_elements = nullptr;
  std::uint64_t* ar_messages = nullptr;
  std::uint64_t* ar_bytes = nullptr;
  std::uint64_t* ar_rounds = nullptr;
  obs::Histogram* fill = nullptr;
  std::uint64_t* intra_reduce_elements = nullptr;
  std::uint64_t* intra_reduce_messages = nullptr;
  std::uint64_t* intra_reduce_bytes = nullptr;
  std::uint64_t* intra_bcast_elements = nullptr;
  std::uint64_t* intra_bcast_messages = nullptr;
  std::uint64_t* intra_bcast_bytes = nullptr;
  std::uint64_t* ssp_rounds = nullptr;
  std::uint64_t* ssp_stale = nullptr;
  obs::Histogram* participants = nullptr;
  double dim = 1.0;

  void Hoist(obs::MetricsRegistry& m, const std::string& alg_name, bool sparse,
             double d) {
    const std::string p = "comm.allreduce." + alg_name + ".";
    ar_invocations = &m.Counter(p + "invocations");
    ar_elements = &m.Counter(p + "elements");
    ar_messages = &m.Counter(p + "messages");
    ar_bytes = &m.Counter(p + "bytes");
    ar_rounds = &m.Counter(p + "rounds");
    if (sparse) {
      static constexpr double kFillBounds[] = {0.01, 0.05, 0.1, 0.25,
                                               0.5,  0.75, 0.9, 1.0};
      fill = &m.Histo("comm.allreduce.fill_ratio", kFillBounds);
      dim = d;
    }
    intra_reduce_elements = &m.Counter("comm.intra.reduce.elements");
    intra_reduce_messages = &m.Counter("comm.intra.reduce.messages");
    intra_reduce_bytes = &m.Counter("comm.intra.reduce.bytes");
    intra_bcast_elements = &m.Counter("comm.intra.bcast.elements");
    intra_bcast_messages = &m.Counter("comm.intra.bcast.messages");
    intra_bcast_bytes = &m.Counter("comm.intra.bcast.bytes");
    ssp_rounds = &m.Counter("ssp.rounds");
    ssp_stale = &m.Counter("ssp.stale_contributions");
    static constexpr double kPartBounds[] = {1, 2, 4, 8, 16, 32};
    participants = &m.Histo("ssp.participants", kPartBounds);
  }
};

/// Hoisted convergence-timeline series (DESIGN.md §13) plus the cumulative
/// counter values at the previous row (per-iteration byte/round deltas).
struct LibSeries {
  obs::TimeSeries* primal = nullptr;
  obs::TimeSeries* dual = nullptr;
  obs::TimeSeries* objective = nullptr;
  obs::TimeSeries* rho = nullptr;
  obs::TimeSeries* staleness = nullptr;
  obs::TimeSeries* bytes = nullptr;
  obs::TimeSeries* rounds = nullptr;
  std::uint64_t prev_bytes = 0;
  std::uint64_t prev_rounds = 0;

  void Hoist(EngineObs& eo) {
    primal = eo.Series("ts.primal_residual");
    dual = eo.Series("ts.dual_residual");
    objective = eo.Series("ts.objective");
    rho = eo.Series("ts.rho");
    staleness = eo.Series("ts.ssp_staleness");
    bytes = eo.Series("ts.bytes");
    rounds = eo.Series("ts.rounds");
  }

  std::uint64_t BytesNow(const LibMetrics& lm) const {
    return *lm.ar_bytes + *lm.intra_reduce_bytes + *lm.intra_bcast_bytes;
  }
};

}  // namespace

RunResult AdmmLib::Run(const ConsensusProblem& problem,
                       const RunOptions& options) const {
  const simnet::Topology topo(cfg_.cluster.num_nodes,
                              cfg_.cluster.workers_per_node,
                              cfg_.cluster.num_racks);
  PSRA_REQUIRE(problem.num_workers() == topo.world_size(),
               "problem must be partitioned into one shard per worker");
  const simnet::CostModel cost(cfg_.cluster.cost);
  const simnet::StragglerModel stragglers(topo, cfg_.cluster.straggler);
  const auto world = static_cast<std::size_t>(topo.world_size());
  const std::uint32_t nodes = cfg_.cluster.num_nodes;
  const auto barrier_nodes = static_cast<std::uint32_t>(std::max<double>(
      1.0, std::ceil(cfg_.min_barrier_fraction * static_cast<double>(nodes))));

  WorkerSet ws(&problem, &options);
  // Warm start: seed (x, y, z, rho) from a restored checkpoint and resume
  // right after its iteration (the pre-loop node sums below then start from
  // the warm state).
  const std::uint64_t first_iter = ApplyWarmStart(ws, options) + 1;
  engine::TimeLedger ledger(world);
  const auto ring = comm::MakeAllreduce(cfg_.allreduce);
  const auto d = static_cast<std::size_t>(problem.dim());

  RunResult result;
  result.algorithm = Name();

  // ---- Observability -----------------------------------------------------
  // Every instrumentation site only OBSERVES ledger clocks and collective
  // stats behind eo.on()/eo.tracing() — an instrumented run is
  // bitwise-identical to an uninstrumented one (pinned by test_obs).
  EngineObs eo(options.obs, world);
  LibMetrics lm;
  LibSeries conv;
  if (eo.on()) {
    lm.Hoist(eo.metrics(), ring->Name(), cfg_.sparse_comm,
             static_cast<double>(problem.dim()));
    conv.Hoist(eo);
  }
  // Residual/objective telemetry state (observe-only: ComputeResiduals and
  // MeanZInto recycle scratch and never touch algorithm state). On a warm
  // start the dual-residual reference is the restored consensus mean — what
  // the uninterrupted run would hold — so a split run's timeline rows match
  // the full run's exactly.
  linalg::DenseVector z_prev_mean;
  if (eo.on() || options.progress != nullptr) {
    z_prev_mean.assign(d, 0.0);
    if (first_iter > 1) ws.MeanZInto(z_prev_mean);
  }

  // Node-level helpers.
  std::vector<std::vector<simnet::Rank>> node_ranks(nodes);
  std::vector<simnet::Rank> leaders(nodes);
  std::vector<comm::GroupComm> intra;
  intra.reserve(nodes);
  for (simnet::NodeId n = 0; n < nodes; ++n) {
    node_ranks[n] = topo.RanksOnNode(n);
    leaders[n] = wlg::ElectLeader(topo, node_ranks[n], cfg_.leader_policy,
                                  cfg_.cluster.seed);
    intra.emplace_back(&topo, &cost, node_ranks[n]);
  }

  // Runs the local computation of one node (x/w updates for its workers and
  // the intra-node reduce) and returns the node-level sum; `iteration` keys
  // the jitter/straggler draw.
  std::vector<std::uint64_t> local_iter(nodes, 0);
  auto compute_node = [&](simnet::NodeId n) -> linalg::DenseVector {
    ++local_iter[n];
    const auto& members = node_ranks[n];
    std::vector<linalg::DenseVector> inputs(members.size());
    std::vector<simnet::VirtualTime> starts(members.size());
    for (std::size_t m = 0; m < members.size(); ++m) {
      const simnet::Rank r = members[m];
      eo.Mark(ledger, static_cast<std::size_t>(r));
      const double flops = ws.XWStep(r);
      const double mult = ComputeMultiplier(cfg_.cluster, topo, stragglers, r,
                                            local_iter[n]);
      ledger.ChargeCompute(r, cost.ComputeTime(flops) * mult);
      eo.Span("x_update", ledger, static_cast<std::size_t>(r), local_iter[n]);
      inputs[m] = ws.w(r);
      starts[m] = ledger[r].clock;
    }
    auto red = comm::ReduceToLeader(intra[n], intra[n].LocalRank(leaders[n]),
                                    inputs, starts);
    result.elements_sent += red.elements_sent;
    result.messages_sent += red.messages_sent;
    for (std::size_t m = 0; m < members.size(); ++m) {
      ledger.WaitUntil(members[m], red.finish_times[m]);
    }
    ledger.WaitUntil(leaders[n], red.leader_ready);
    if (eo.on()) {
      *lm.intra_reduce_elements += red.elements_sent;
      *lm.intra_reduce_messages += red.messages_sent;
      *lm.intra_reduce_bytes +=
          red.elements_sent * cfg_.cluster.cost.value_bytes;
      if (eo.tracing()) {
        for (std::size_t m = 0; m < members.size(); ++m) {
          const auto i = static_cast<std::size_t>(members[m]);
          if (ledger[i].clock > eo.mark(i)) {
            eo.Span("intra_reduce", ledger, i, local_iter[n]);
          }
        }
      }
    }
    return std::move(red.value);
  };

  // SSP state.
  std::vector<linalg::DenseVector> node_w(nodes);   // freshest node sum
  std::vector<linalg::DenseVector> cache_w(nodes, linalg::DenseVector(d, 0.0));
  std::vector<simnet::VirtualTime> ready(nodes);
  std::vector<std::uint64_t> last_contrib(nodes, 0);

  for (simnet::NodeId n = 0; n < nodes; ++n) {
    node_w[n] = compute_node(n);
    ready[n] = ledger[leaders[n]].clock;
  }

  // Baseline the delta series on the pre-loop node pass's traffic, so every
  // ts.* delta is pure per-round — a warm-started run (whose pre-loop pass
  // re-runs the restored round's x-updates) then produces the same rows as
  // the uninterrupted run.
  if (eo.on()) {
    conv.prev_bytes = conv.BytesNow(lm);
    conv.prev_rounds = *lm.ar_rounds;
  }

  linalg::DenseVector W(d, 0.0);
  for (std::uint64_t k = first_iter; k <= options.max_iterations; ++k) {
    result.iterations_run = k;
    // Fire time: the barrier-th smallest ready time, pushed later by any
    // node whose contribution would otherwise exceed Max_delay.
    std::vector<simnet::VirtualTime> sorted(ready.begin(), ready.end());
    std::nth_element(sorted.begin(),
                     sorted.begin() + (barrier_nodes - 1), sorted.end());
    simnet::VirtualTime fire = sorted[barrier_nodes - 1];
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      if (k - last_contrib[n] > cfg_.max_delay) {
        fire = std::max(fire, ready[n]);
      }
    }

    std::vector<simnet::NodeId> participants;
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      if (ready[n] <= fire) participants.push_back(n);
    }
    PSRA_CHECK(!participants.empty(), "SSP round fired with no participants");

    for (simnet::NodeId n : participants) {
      cache_w[n] = node_w[n];
      last_contrib[n] = k;
    }

    // Ring-Allreduce over ALL leaders: the ring topology is fixed in
    // ADMMLib's hierarchical architecture, so every node's communication
    // thread joins each round, contributing its freshest *cached* w (stale
    // for non-participants). This is what keeps ADMMLib's communication
    // cost roughly independent of stragglers but high: 2(N-1) pipelined
    // rounds over every leader, every iteration.
    std::vector<simnet::Rank> all_leaders(leaders.begin(), leaders.end());
    const std::vector<simnet::VirtualTime> starts(nodes, fire);
    const comm::GroupComm inter(&topo, &cost, all_leaders);

    std::vector<simnet::VirtualTime> finish;
    comm::CommStats ring_stats;
    std::size_t result_nnz = 0;
    if (cfg_.sparse_comm) {
      std::vector<linalg::SparseVector> sv;
      sv.reserve(nodes);
      for (simnet::NodeId n = 0; n < nodes; ++n) {
        sv.push_back(linalg::SparseVector::FromDense(cache_w[n]));
      }
      auto res = ring->RunSparse(inter, sv, starts);
      result.elements_sent += res.stats.elements_sent;
      result.messages_sent += res.stats.messages_sent;
      result_nnz = res.outputs[0].nnz();
      finish = std::move(res.stats.finish_times);
      ring_stats = std::move(res.stats);
    } else {
      std::vector<linalg::DenseVector> dv(cache_w.begin(), cache_w.end());
      auto res = ring->RunDense(inter, dv, starts);
      result.elements_sent += res.stats.elements_sent;
      result.messages_sent += res.stats.messages_sent;
      result_nnz = d;
      finish = std::move(res.stats.finish_times);
      ring_stats = std::move(res.stats);
    }
    if (eo.on()) {
      ++*lm.ssp_rounds;
      *lm.ssp_stale += nodes - participants.size();
      lm.participants->Observe(static_cast<double>(participants.size()));
      ++*lm.ar_invocations;
      *lm.ar_elements += ring_stats.elements_sent;
      *lm.ar_messages += ring_stats.messages_sent;
      *lm.ar_bytes += ring_stats.bytes_sent;
      *lm.ar_rounds += ring_stats.rounds;
      if (lm.fill != nullptr) {
        lm.fill->Observe(static_cast<double>(result_nnz) / lm.dim);
      }
    }

    // Global aggregate (the ring's output): fresh + stale terms.
    linalg::SetZero(W);
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      linalg::Axpy(1.0, cache_w[n], W);
    }

    // A node still computing when the ring ran had its communication thread
    // serve the ring concurrently; book the overlapped portion as comm time
    // (the post-compute remainder is booked by the WaitUntil below).
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      const simnet::VirtualTime overlapped =
          std::max(0.0, std::min(ready[n], finish[n]) - fire);
      if (overlapped > 0) ledger.ChargeCommConcurrent(leaders[n], overlapped);
    }

    // Every node receives the new aggregate and immediately starts its next
    // local iteration — SSP workers never idle. A node that was still
    // computing when the round fired (a non-participant) picks the new W up
    // as soon as both its compute and the ring are done; the w it just
    // finished is simply superseded by the fresher one it will produce
    // against the new z (standard SSP freshest-state semantics).
    for (simnet::NodeId n = 0; n < nodes; ++n) {
      const auto li = static_cast<std::size_t>(leaders[n]);
      // A participant leader idles from its ready time until the barrier
      // fires; split that out of the collective span as ssp_wait.
      if (eo.tracing() && fire > eo.mark(li)) {
        eo.SpanAt("ssp_wait", li, eo.mark(li), fire, k);
        eo.SetMark(li, fire);
      }
      ledger.WaitUntil(leaders[n], std::max(ready[n], finish[n]));
      if (eo.tracing() && ledger[li].clock > eo.mark(li)) {
        eo.Span("w_allreduce", ledger, li, k);
      }
      const std::size_t elems = cfg_.sparse_comm ? result_nnz : d;
      auto bc = comm::BroadcastFromLeader(intra[n],
                                          intra[n].LocalRank(leaders[n]),
                                          elems, ledger[leaders[n]].clock);
      result.elements_sent += bc.elements_sent;
      result.messages_sent += bc.messages_sent;
      if (eo.on()) {
        *lm.intra_bcast_elements += bc.elements_sent;
        *lm.intra_bcast_messages += bc.messages_sent;
        *lm.intra_bcast_bytes +=
            bc.elements_sent *
            (cfg_.sparse_comm ? cfg_.cluster.cost.value_bytes +
                                    cfg_.cluster.cost.index_bytes
                              : cfg_.cluster.cost.value_bytes);
      }
      for (std::size_t m = 0; m < node_ranks[n].size(); ++m) {
        const simnet::Rank r = node_ranks[n][m];
        const auto i = static_cast<std::size_t>(r);
        ledger.WaitUntil(r, bc.finish_times[m]);
        if (eo.tracing() && ledger[i].clock > eo.mark(i)) {
          eo.Span("w_broadcast", ledger, i, k);
        }
        const double zf = ws.ZYStep(r, W, topo.world_size());
        ledger.ChargeCompute(r, cost.ComputeTime(zf));
        eo.Span("z_y_update", ledger, i, k);
      }
      // Requested checkpoint: snapshot this node's workers now — after
      // their z/y update, but BEFORE compute_node advances their x into
      // round k+1. A warm start re-runs that x-update from the restored
      // state (its pre-loop compute_node), so capturing any later would
      // make the resumed run apply TRON twice.
      if (options.checkpoint_out != nullptr && k == options.checkpoint_at) {
        CaptureRunCheckpoint(ws, k, node_ranks[n], *options.checkpoint_out);
      }
      node_w[n] = compute_node(n);
      ready[n] = ledger[leaders[n]].clock;
    }

    // ---- Convergence timeline (one row per SSP round) --------------------
    // Sampled after the round's consensus + local updates, from virtual-time
    // state and hoisted counters only (bitwise-identical across pool sizes).
    if (eo.on() || options.progress != nullptr) {
      const WorkerSet::Residuals res = ws.ComputeResiduals(z_prev_mean);
      ws.MeanZInto(z_prev_mean);
      if (eo.on()) {
        eo.BeginTimelineRow(k);
        conv.primal->Append(res.primal);
        conv.dual->Append(res.dual);
        // z_prev_mean was just refreshed to this round's consensus mean.
        conv.objective->Append(solver::GlobalObjective(
            problem.train, z_prev_mean, problem.lambda));
        conv.rho->Append(ws.rho());
        conv.staleness->Append(
            static_cast<double>(nodes - participants.size()));
        const std::uint64_t byt = conv.BytesNow(lm);
        const std::uint64_t rnd = *lm.ar_rounds;
        conv.bytes->Append(static_cast<double>(byt - conv.prev_bytes));
        conv.rounds->Append(static_cast<double>(rnd - conv.prev_rounds));
        conv.prev_bytes = byt;
        conv.prev_rounds = rnd;
      }
      if (options.progress != nullptr) {
        options.progress->Report(
            {k, options.max_iterations, res.primal, res.dual, ws.rho()});
      }
    }

    if (options.record_trace &&
        (k % options.eval_every == 0 || k == options.max_iterations)) {
      result.trace.push_back(ws.Evaluate(k, ledger));
    }

    // The per-node captures above took the algorithm state; the metrics
    // snapshot waits until the whole round is booked.
    if (options.checkpoint_out != nullptr && k == options.checkpoint_at &&
        eo.on()) {
      options.checkpoint_out->metrics = eo.metrics();
    }
  }

  result.final_z = ws.MeanZ();
  result.final_objective =
      solver::GlobalObjective(problem.train, result.final_z, problem.lambda);
  result.final_accuracy = solver::Accuracy(problem.test, result.final_z);
  result.total_cal_time = ledger.MeanCalTime();
  result.total_comm_time = ledger.MeanCommTime();
  result.makespan = ledger.MaxClock();
  if (eo.on()) {
    auto& m = eo.metrics();
    m.Counter("engine.iterations") += result.iterations_run;
    m.Gauge("run.makespan_s") = result.makespan;
    m.Gauge("run.cal_time_s") = result.total_cal_time;
    m.Gauge("run.comm_time_s") = result.total_comm_time;
    m.Gauge("run.iterations") = static_cast<double>(result.iterations_run);
    eo.PublishTimelineSummary();
    result.metrics = m;
  }
  return result;
}

}  // namespace psra::admm
