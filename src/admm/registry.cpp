#include "admm/registry.hpp"

#include "admm/ad_admm.hpp"
#include "admm/admmlib.hpp"
#include "admm/gadmm.hpp"
#include "admm/psra_hgadmm.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::admm {

std::vector<std::string> AlgorithmNames() {
  return {"psra-hgadmm", "psra-hgadmm-ring", "psra-hgadmm-naive",
          "psra-admm",   "hgadmm-nogroup",   "admmlib",
          "ad-admm",     "gadmm",            "q-gadmm"};
}

RunResult RunAlgorithm(const std::string& name, const ClusterConfig& cluster,
                       const ConsensusProblem& problem,
                       const RunOptions& options) {
  const std::string n = ToLower(name);
  if (options.transport != "sim") {
    throw InvalidArgument(
        "RunOptions.transport=\"" + options.transport +
        "\": in-process engines run on the simulator transport only; "
        "real-socket runs are one process per rank — use tools/psra_launch "
        "with a transport worker (see DESIGN.md section 11)");
  }

  auto run_psra = [&](GroupingMode mode, comm::AllreduceKind kind) {
    PsraConfig cfg;
    cfg.cluster = cluster;
    cfg.grouping = mode;
    cfg.allreduce = kind;
    return PsraHgAdmm(cfg).Run(problem, options);
  };

  if (n == "psra-hgadmm") {
    return run_psra(GroupingMode::kDynamicGroups, comm::AllreduceKind::kPsr);
  }
  if (n == "psra-hgadmm-ring") {
    return run_psra(GroupingMode::kDynamicGroups, comm::AllreduceKind::kRing);
  }
  if (n == "psra-hgadmm-naive") {
    return run_psra(GroupingMode::kDynamicGroups, comm::AllreduceKind::kNaive);
  }
  if (n == "psra-admm") {
    return run_psra(GroupingMode::kFlat, comm::AllreduceKind::kPsr);
  }
  if (n == "hgadmm-nogroup") {
    return run_psra(GroupingMode::kHierarchical, comm::AllreduceKind::kPsr);
  }
  if (n == "admmlib") {
    AdmmLibConfig cfg;
    cfg.cluster = cluster;
    return AdmmLib(cfg).Run(problem, options);
  }
  if (n == "ad-admm") {
    AdAdmmConfig cfg;
    cfg.cluster = cluster;
    return AdAdmm(cfg).Run(problem, options);
  }
  if (n == "gadmm") {
    GadmmConfig cfg;
    cfg.cluster = cluster;
    return Gadmm(cfg).Run(problem, options);
  }
  if (n == "q-gadmm") {
    GadmmConfig cfg;
    cfg.cluster = cluster;
    cfg.quantization_bits = 8;
    return Gadmm(cfg).Run(problem, options);
  }
  throw InvalidArgument("unknown algorithm: " + name);
}

}  // namespace psra::admm
