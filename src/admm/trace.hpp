// Per-iteration records and the overall run result every algorithm returns.
// These carry exactly the series the paper's figures plot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/dense_ops.hpp"
#include "obs/metrics.hpp"
#include "simnet/cost_model.hpp"

namespace psra::admm {

struct IterationRecord {
  std::uint64_t iteration = 0;  // 1-based (matches the paper's x axes)
  /// Global objective F(z) on the full training set (eq. 17).
  double objective = 0.0;
  /// |f* - f| / f against the run's reference minimum (eq. 18); NaN until a
  /// reference is known.
  double relative_error = 0.0;
  /// Test accuracy of the consensus model.
  double accuracy = 0.0;
  /// Cumulative mean Cal_time / Comm_time across workers (Fig. 6/7 y-axis).
  simnet::VirtualTime cal_time = 0.0;
  simnet::VirtualTime comm_time = 0.0;
  /// Virtual makespan so far (max worker clock).
  simnet::VirtualTime makespan = 0.0;
  /// Consensus residual norms (0 when the algorithm does not track them).
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  /// Penalty parameter in effect during this iteration.
  double rho = 0.0;
};

/// What the fault-injection subsystem actually did during a run. All zeros
/// for an empty FaultPlan.
struct FaultStats {
  std::size_t worker_crashes = 0;
  std::size_t recoveries = 0;
  std::size_t leader_deaths = 0;
  std::size_t leader_reelections = 0;
  std::size_t dropped_messages = 0;
  std::size_t retries = 0;
  std::size_t delayed_messages = 0;
  /// Worker-iterations skipped because the worker was down.
  std::size_t down_worker_iterations = 0;

  bool operator==(const FaultStats& other) const = default;
};

struct RunResult {
  std::string algorithm;
  std::vector<IterationRecord> trace;
  /// Consensus model after the last iteration (mean of per-worker z).
  linalg::DenseVector final_z;
  /// True when the residual-based stopping test ended the run before
  /// max_iterations.
  bool stopped_early = false;
  std::uint64_t iterations_run = 0;

  double final_objective = 0.0;
  double final_accuracy = 0.0;
  simnet::VirtualTime total_cal_time = 0.0;   // mean across workers
  simnet::VirtualTime total_comm_time = 0.0;  // mean across workers
  simnet::VirtualTime makespan = 0.0;
  std::size_t elements_sent = 0;
  std::size_t messages_sent = 0;
  /// Transmissions suppressed by communication censoring (0 unless enabled).
  std::size_t censored_sends = 0;
  /// Fault-injection accounting (all zeros with an empty FaultPlan).
  FaultStats faults;
  /// Snapshot of the run's metrics registry (empty when RunOptions::obs is
  /// null). Deterministically ordered; see DESIGN.md §9 for the name table.
  obs::MetricsRegistry metrics;

  simnet::VirtualTime SystemTime() const {
    return total_cal_time + total_comm_time;
  }

  /// Recomputes relative_error for every record against `f_min` (eq. 18).
  void ApplyReference(double f_min);

  /// Writes the trace as CSV (one row per record) for external plotting.
  void WriteTraceCsv(std::ostream& os) const;
};

}  // namespace psra::admm
