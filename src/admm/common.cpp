#include "admm/common.hpp"

#include <algorithm>
#include <cmath>

#include "solver/metrics.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::admm {

namespace {

/// ||x - z||, ||x||, ||y|| in one pass over the feature dimension. Each
/// accumulator uses the same four-lane order as linalg::DistanceL2/Norm2,
/// so the three results are bitwise-identical to the separate calls while
/// reading x/z/y once instead of loading x twice and touching memory five
/// times.
void WorkerNorms(std::span<const double> x, std::span<const double> z,
                 std::span<const double> y, double& dist_xz, double& norm_x,
                 double& norm_y) {
  const std::size_t n = x.size();
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - z[i];
    const double d1 = x[i + 1] - z[i + 1];
    const double d2 = x[i + 2] - z[i + 2];
    const double d3 = x[i + 3] - z[i + 3];
    p0 += d0 * d0;
    p1 += d1 * d1;
    p2 += d2 * d2;
    p3 += d3 * d3;
    a0 += x[i] * x[i];
    a1 += x[i + 1] * x[i + 1];
    a2 += x[i + 2] * x[i + 2];
    a3 += x[i + 3] * x[i + 3];
    b0 += y[i] * y[i];
    b1 += y[i + 1] * y[i + 1];
    b2 += y[i + 2] * y[i + 2];
    b3 += y[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) {
    const double d = x[i] - z[i];
    p0 += d * d;
    a0 += x[i] * x[i];
    b0 += y[i] * y[i];
  }
  dist_xz = std::sqrt((p0 + p1) + (p2 + p3));
  norm_x = std::sqrt((a0 + a1) + (a2 + a3));
  norm_y = std::sqrt((b0 + b1) + (b2 + b3));
}

}  // namespace

double ComputeMultiplier(const ClusterConfig& cluster,
                         const simnet::Topology& topo,
                         const simnet::StragglerModel& stragglers,
                         simnet::Rank worker, std::uint64_t iteration) {
  double mult = stragglers.ComputeMultiplier(worker, iteration);
  if (cluster.compute_jitter > 0.0) {
    Rng base(cluster.seed ^ 0xC0FFEEULL);
    Rng iter_rng = base.Fork(iteration);
    Rng wr = iter_rng.Fork(worker);
    mult *= wr.NextDouble(1.0, 1.0 + cluster.compute_jitter);
  }
  (void)topo;
  return mult;
}

bool UseGramSolver(const LocalSolverOptions& solver, std::uint64_t rows,
                   std::uint64_t cols) {
  switch (solver.mode) {
    case LocalSolverOptions::Mode::kCg:
      return false;
    case LocalSolverOptions::Mode::kGram:
      return true;
    case LocalSolverOptions::Mode::kAuto:
      return cols > 0 && cols <= solver.max_gram_dim &&
             static_cast<double>(rows) >=
                 solver.tall_ratio * static_cast<double>(cols);
  }
  return false;
}

WorkerSet::WorkerSet(const ConsensusProblem* problem,
                     const RunOptions* options)
    : problem_(problem), options_(options), rho_(problem->rho) {
  PSRA_REQUIRE(problem_ != nullptr && options_ != nullptr,
               "null problem/options");
  PSRA_REQUIRE(rho_ > 0.0, "rho must be positive");
  const auto n = static_cast<std::size_t>(problem_->num_workers());
  const auto d = static_cast<std::size_t>(problem_->dim());
  local_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    local_.emplace_back(&problem_->shards[i], problem_->rho);
    // Tall-vs-wide selection is per worker: shard shapes differ, and the
    // Gram buffer is preallocated here so XWStep stays allocation-free.
    local_.back().SetUseGramHessian(
        UseGramSolver(options_->local_solver, problem_->shards[i].num_samples(),
                      problem_->shards[i].num_features()));
  }
  x_.assign(n, linalg::DenseVector(d, 0.0));
  y_.assign(n, linalg::DenseVector(d, 0.0));
  w_.assign(n, linalg::DenseVector(d, 0.0));
  z_.assign(n, linalg::DenseVector(d, 0.0));
  tron_ws_.resize(n);
}

double WorkerSet::XWStep(std::size_t i) {
  PSRA_REQUIRE(i < local_.size(), "worker index out of range");
  solver::FlopCounter flops;
  local_[i].SetRho(rho_);
  local_[i].SetIterationTerms(y_[i], z_[i]);
  solver::TronMinimize(local_[i], x_[i], options_->tron, &flops, tron_ws_[i]);
  solver::WLocal(rho_, x_[i], y_[i], w_[i], &flops);
  return flops.flops;
}

void WorkerSet::XWStepAll(std::vector<double>& flops_out,
                          std::vector<double>* wall_out) {
  PSRA_REQUIRE(flops_out.size() == size(), "flops_out size mismatch");
  PSRA_REQUIRE(wall_out == nullptr || wall_out->size() == size(),
               "wall_out size mismatch");
  auto body = [&](std::size_t i) {
    if (wall_out != nullptr) {
      const double t0 = engine::ThreadPool::ThreadSeconds();
      flops_out[i] = XWStep(i);
      (*wall_out)[i] = engine::ThreadPool::ThreadSeconds() - t0;
    } else {
      flops_out[i] = XWStep(i);
    }
  };
  if (options_->pool != nullptr) {
    options_->pool->ParallelFor(static_cast<std::size_t>(size()), body);
  } else {
    engine::SerialFor(static_cast<std::size_t>(size()), body);
  }
}

void WorkerSet::XWStepAll(std::span<const simnet::Rank> ranks,
                          std::vector<double>& flops_out,
                          std::vector<double>* wall_out) {
  PSRA_REQUIRE(flops_out.size() == size(), "flops_out size mismatch");
  PSRA_REQUIRE(wall_out == nullptr || wall_out->size() == size(),
               "wall_out size mismatch");
  auto body = [&](std::size_t k) {
    const auto i = static_cast<std::size_t>(ranks[k]);
    if (wall_out != nullptr) {
      const double t0 = engine::ThreadPool::ThreadSeconds();
      flops_out[i] = XWStep(i);
      (*wall_out)[i] = engine::ThreadPool::ThreadSeconds() - t0;
    } else {
      flops_out[i] = XWStep(i);
    }
  };
  if (options_->pool != nullptr) {
    options_->pool->ParallelFor(ranks.size(), body);
  } else {
    engine::SerialFor(ranks.size(), body);
  }
}

void WorkerSet::RestoreWorker(std::size_t i, const linalg::DenseVector& x,
                              const linalg::DenseVector& y,
                              const linalg::DenseVector& z) {
  PSRA_REQUIRE(i < x_.size(), "worker index out of range");
  const auto d = static_cast<std::size_t>(dim());
  PSRA_REQUIRE(x.size() == d && y.size() == d && z.size() == d,
               "checkpoint dimension mismatch");
  x_[i] = x;
  y_[i] = y;
  z_[i] = z;
  solver::WLocal(rho_, x_[i], y_[i], w_[i], /*flops=*/nullptr);
}

double WorkerSet::ZYStep(std::size_t i, std::span<const double> W,
                         std::uint64_t num_contributors) {
  PSRA_REQUIRE(i < z_.size(), "worker index out of range");
  solver::FlopCounter flops;
  solver::ZUpdateConfig zcfg;
  zcfg.regularizer = solver::Regularizer::kL1;
  zcfg.lambda = problem_->lambda;
  zcfg.rho = rho_;
  zcfg.num_workers = num_contributors;
  solver::ZYUpdate(zcfg, W, x_[i], z_[i], y_[i], &flops);
  return flops.flops;
}

void WorkerSet::ZYStepAll(std::span<const simnet::Rank> ranks,
                          std::span<const double> W,
                          std::uint64_t num_contributors,
                          std::vector<double>& flops_out,
                          std::vector<double>* wall_out) {
  PSRA_REQUIRE(flops_out.size() == size(), "flops_out size mismatch");
  PSRA_REQUIRE(wall_out == nullptr || wall_out->size() == size(),
               "wall_out size mismatch");
  if (ranks.empty()) return;
  // Every rank in this call receives the same aggregated W, so they all
  // compute the same z. Host-side shortcut: compute it once, copy it to the
  // other workers (bitwise-identical by construction), and charge the copies
  // the virtual flops of the computation they replace — the simulated
  // cluster still does the work on every worker.
  const auto first = static_cast<std::size_t>(ranks.front());
  if (wall_out != nullptr) {
    const double t0 = engine::ThreadPool::ThreadSeconds();
    flops_out[first] = ZYStep(first, W, num_contributors);
    (*wall_out)[first] = engine::ThreadPool::ThreadSeconds() - t0;
  } else {
    flops_out[first] = ZYStep(first, W, num_contributors);
  }
  auto body = [&](std::size_t k) {
    const auto i = static_cast<std::size_t>(ranks[k + 1]);
    if (wall_out != nullptr) {
      const double t0 = engine::ThreadPool::ThreadSeconds();
      flops_out[i] = ZYStepFrom(i, first);
      (*wall_out)[i] = engine::ThreadPool::ThreadSeconds() - t0;
    } else {
      flops_out[i] = ZYStepFrom(i, first);
    }
  };
  if (options_->pool != nullptr) {
    options_->pool->ParallelFor(ranks.size() - 1, body);
  } else {
    engine::SerialFor(ranks.size() - 1, body);
  }
}

double WorkerSet::ZYStepFrom(std::size_t i, std::size_t src) {
  PSRA_REQUIRE(i < z_.size() && src < z_.size(), "worker index out of range");
  solver::FlopCounter flops;
  flops.Add(3.0 * static_cast<double>(z_[src].size()));  // ZUpdate's charge
  z_[i] = z_[src];
  solver::YUpdate(rho_, x_[i], z_[i], y_[i], &flops);
  return flops.flops;
}

void WorkerSet::SetRho(double rho) {
  PSRA_REQUIRE(rho > 0.0, "rho must be positive");
  rho_ = rho;
}

WorkerSet::Residuals WorkerSet::ComputeResiduals(
    std::span<const double> z_prev_mean) const {
  PSRA_REQUIRE(z_prev_mean.size() == dim(), "z_prev dimension mismatch");
  const std::size_t n = x_.size();

  // Per-worker norms are independent, so they can run on the pool; the
  // squares are then folded serially in ascending worker order, which keeps
  // the sums bitwise-identical to a fully serial pass.
  norm_primal_.resize(n);
  norm_x_.resize(n);
  norm_y_.resize(n);
  auto body = [&](std::size_t i) {
    WorkerNorms(x_[i], z_[i], y_[i], norm_primal_[i], norm_x_[i], norm_y_[i]);
  };
  if (options_->pool != nullptr) {
    options_->pool->ParallelFor(n, body);
  } else {
    engine::SerialFor(n, body);
  }

  Residuals res;
  double primal_sq = 0.0, x_sq = 0.0, y_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    primal_sq += norm_primal_[i] * norm_primal_[i];
    x_sq += norm_x_[i] * norm_x_[i];
    y_sq += norm_y_[i] * norm_y_[i];
  }
  MeanZInto(mean_scratch_);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  res.primal = std::sqrt(primal_sq);
  res.dual = rho_ * sqrt_n * linalg::DistanceL2(mean_scratch_, z_prev_mean);
  res.x_norm = std::sqrt(x_sq);
  res.y_norm = std::sqrt(y_sq);
  res.z_norm = sqrt_n * linalg::Norm2(mean_scratch_);
  return res;
}

bool WorkerSet::ShouldStop(const StoppingConfig& cfg, const Residuals& res,
                           std::uint64_t num_workers, std::uint64_t dim) {
  if (!cfg.enabled) return false;
  const double scale =
      std::sqrt(static_cast<double>(num_workers) * static_cast<double>(dim));
  const double eps_primal =
      scale * cfg.eps_abs +
      cfg.eps_rel * std::max(res.x_norm, res.z_norm);
  const double eps_dual = scale * cfg.eps_abs + cfg.eps_rel * res.y_norm;
  return res.primal <= eps_primal && res.dual <= eps_dual;
}

double WorkerSet::MaybeAdaptRho(const AdaptiveRhoConfig& cfg,
                                const Residuals& res) {
  if (!cfg.enabled) return rho_;
  double rho = rho_;
  if (res.primal > cfg.mu * res.dual) {
    rho *= cfg.tau;
  } else if (res.dual > cfg.mu * res.primal) {
    rho /= cfg.tau;
  }
  rho = std::clamp(rho, cfg.rho_min, cfg.rho_max);
  if (rho != rho_) SetRho(rho);
  return rho_;
}

linalg::DenseVector WorkerSet::MeanZ() const {
  linalg::DenseVector out;
  MeanZInto(out);
  return out;
}

void WorkerSet::MeanZInto(linalg::DenseVector& out) const {
  const auto d = static_cast<std::size_t>(dim());
  const double inv_n = 1.0 / static_cast<double>(z_.size());
  out.resize(d);
  // Chunk over coordinates, never over workers: coordinate j always
  // accumulates z_0[j], z_1[j], ... in that order, so any chunking (and thus
  // any pool size) yields the bitwise-identical mean. Within a chunk the
  // workers form the outer loop — each z is streamed sequentially and the
  // inner loop vectorizes — while the per-coordinate summation order stays
  // exactly z_0 + z_1 + ... as before.
  auto chunk = [&](std::size_t begin, std::size_t end) {
    const auto& z0 = z_.front();
    for (std::size_t j = begin; j < end; ++j) out[j] = z0[j];
    for (std::size_t k = 1; k < z_.size(); ++k) {
      const auto& zk = z_[k];
      for (std::size_t j = begin; j < end; ++j) out[j] += zk[j];
    }
    for (std::size_t j = begin; j < end; ++j) out[j] *= inv_n;
  };
  if (options_->pool != nullptr) {
    options_->pool->ParallelFor(d, /*grain=*/2048, chunk);
  } else {
    chunk(0, d);
  }
}

IterationRecord WorkerSet::Evaluate(std::uint64_t iteration,
                                    const engine::TimeLedger& ledger) const {
  IterationRecord rec;
  rec.iteration = iteration;
  const linalg::DenseVector zbar = MeanZ();
  rec.objective =
      solver::GlobalObjective(problem_->train, zbar, problem_->lambda);
  rec.accuracy = solver::Accuracy(problem_->test, zbar);
  rec.relative_error = 0.0;  // filled by RunResult::ApplyReference
  rec.cal_time = ledger.MeanCalTime();
  rec.comm_time = ledger.MeanCommTime();
  rec.makespan = ledger.MaxClock();
  return rec;
}

}  // namespace psra::admm
