#include "admm/common.hpp"

#include <algorithm>
#include <cmath>

#include "solver/metrics.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::admm {

double ComputeMultiplier(const ClusterConfig& cluster,
                         const simnet::Topology& topo,
                         const simnet::StragglerModel& stragglers,
                         simnet::Rank worker, std::uint64_t iteration) {
  double mult = stragglers.ComputeMultiplier(worker, iteration);
  if (cluster.compute_jitter > 0.0) {
    Rng base(cluster.seed ^ 0xC0FFEEULL);
    Rng iter_rng = base.Fork(iteration);
    Rng wr = iter_rng.Fork(worker);
    mult *= wr.NextDouble(1.0, 1.0 + cluster.compute_jitter);
  }
  (void)topo;
  return mult;
}

WorkerSet::WorkerSet(const ConsensusProblem* problem,
                     const RunOptions* options)
    : problem_(problem), options_(options), rho_(problem->rho) {
  PSRA_REQUIRE(problem_ != nullptr && options_ != nullptr,
               "null problem/options");
  PSRA_REQUIRE(rho_ > 0.0, "rho must be positive");
  const auto n = static_cast<std::size_t>(problem_->num_workers());
  const auto d = static_cast<std::size_t>(problem_->dim());
  local_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    local_.emplace_back(&problem_->shards[i], problem_->rho);
  }
  x_.assign(n, linalg::DenseVector(d, 0.0));
  y_.assign(n, linalg::DenseVector(d, 0.0));
  w_.assign(n, linalg::DenseVector(d, 0.0));
  z_.assign(n, linalg::DenseVector(d, 0.0));
}

double WorkerSet::XWStep(std::size_t i) {
  PSRA_REQUIRE(i < local_.size(), "worker index out of range");
  solver::FlopCounter flops;
  local_[i].SetRho(rho_);
  local_[i].SetIterationTerms(y_[i], z_[i]);
  solver::TronMinimize(local_[i], x_[i], options_->tron, &flops);
  solver::WLocal(rho_, x_[i], y_[i], w_[i], &flops);
  return flops.flops;
}

void WorkerSet::XWStepAll(std::vector<double>& flops_out) {
  PSRA_REQUIRE(flops_out.size() == size(), "flops_out size mismatch");
  auto body = [&](std::size_t i) { flops_out[i] = XWStep(i); };
  if (options_->pool != nullptr) {
    options_->pool->ParallelFor(static_cast<std::size_t>(size()), body);
  } else {
    engine::SerialFor(static_cast<std::size_t>(size()), body);
  }
}

double WorkerSet::ZYStep(std::size_t i, std::span<const double> W,
                         std::uint64_t num_contributors) {
  PSRA_REQUIRE(i < z_.size(), "worker index out of range");
  solver::FlopCounter flops;
  solver::ZUpdateConfig zcfg;
  zcfg.regularizer = solver::Regularizer::kL1;
  zcfg.lambda = problem_->lambda;
  zcfg.rho = rho_;
  zcfg.num_workers = num_contributors;
  solver::ZUpdate(zcfg, W, z_[i], &flops);
  solver::YUpdate(rho_, x_[i], z_[i], y_[i], &flops);
  return flops.flops;
}

void WorkerSet::SetRho(double rho) {
  PSRA_REQUIRE(rho > 0.0, "rho must be positive");
  rho_ = rho;
}

WorkerSet::Residuals WorkerSet::ComputeResiduals(
    std::span<const double> z_prev_mean) const {
  PSRA_REQUIRE(z_prev_mean.size() == dim(), "z_prev dimension mismatch");
  Residuals res;
  double primal_sq = 0.0, x_sq = 0.0, y_sq = 0.0;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    const double di = linalg::DistanceL2(x_[i], z_[i]);
    primal_sq += di * di;
    const double xn = linalg::Norm2(x_[i]);
    x_sq += xn * xn;
    const double yn = linalg::Norm2(y_[i]);
    y_sq += yn * yn;
  }
  const linalg::DenseVector zbar = MeanZ();
  const double sqrt_n = std::sqrt(static_cast<double>(x_.size()));
  res.primal = std::sqrt(primal_sq);
  res.dual = rho_ * sqrt_n * linalg::DistanceL2(zbar, z_prev_mean);
  res.x_norm = std::sqrt(x_sq);
  res.y_norm = std::sqrt(y_sq);
  res.z_norm = sqrt_n * linalg::Norm2(zbar);
  return res;
}

bool WorkerSet::ShouldStop(const StoppingConfig& cfg, const Residuals& res,
                           std::uint64_t num_workers, std::uint64_t dim) {
  if (!cfg.enabled) return false;
  const double scale =
      std::sqrt(static_cast<double>(num_workers) * static_cast<double>(dim));
  const double eps_primal =
      scale * cfg.eps_abs +
      cfg.eps_rel * std::max(res.x_norm, res.z_norm);
  const double eps_dual = scale * cfg.eps_abs + cfg.eps_rel * res.y_norm;
  return res.primal <= eps_primal && res.dual <= eps_dual;
}

double WorkerSet::MaybeAdaptRho(const AdaptiveRhoConfig& cfg,
                                const Residuals& res) {
  if (!cfg.enabled) return rho_;
  double rho = rho_;
  if (res.primal > cfg.mu * res.dual) {
    rho *= cfg.tau;
  } else if (res.dual > cfg.mu * res.primal) {
    rho /= cfg.tau;
  }
  rho = std::clamp(rho, cfg.rho_min, cfg.rho_max);
  if (rho != rho_) SetRho(rho);
  return rho_;
}

linalg::DenseVector WorkerSet::MeanZ() const {
  const auto d = static_cast<std::size_t>(dim());
  linalg::DenseVector out(d, 0.0);
  for (const auto& z : z_) linalg::Axpy(1.0, z, out);
  linalg::Scale(1.0 / static_cast<double>(z_.size()), out);
  return out;
}

IterationRecord WorkerSet::Evaluate(std::uint64_t iteration,
                                    const engine::TimeLedger& ledger) const {
  IterationRecord rec;
  rec.iteration = iteration;
  const linalg::DenseVector zbar = MeanZ();
  rec.objective =
      solver::GlobalObjective(problem_->train, zbar, problem_->lambda);
  rec.accuracy = solver::Accuracy(problem_->test, zbar);
  rec.relative_error = 0.0;  // filled by RunResult::ApplyReference
  rec.cal_time = ledger.MeanCalTime();
  rec.comm_time = ledger.MeanCommTime();
  rec.makespan = ledger.MaxClock();
  return rec;
}

}  // namespace psra::admm
