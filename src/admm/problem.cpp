#include "admm/problem.hpp"

#include "support/status.hpp"

namespace psra::admm {

ConsensusProblem BuildProblemFromData(std::string name, data::Dataset train,
                                      data::Dataset test,
                                      std::uint64_t num_workers, double lambda,
                                      double rho,
                                      data::PartitionScheme scheme) {
  PSRA_REQUIRE(num_workers >= 1, "need at least one worker");
  PSRA_REQUIRE(train.num_samples() >= num_workers,
               "fewer training samples than workers");
  PSRA_REQUIRE(train.num_features() == test.num_features(),
               "train/test feature spaces differ");
  ConsensusProblem p;
  p.name = std::move(name);
  p.shards = data::Partition(train, num_workers, scheme);
  p.train = std::move(train);
  p.test = std::move(test);
  p.lambda = lambda;
  p.rho = rho;
  return p;
}

ConsensusProblem BuildProblem(const data::SyntheticSpec& spec,
                              std::uint64_t num_workers, double lambda,
                              double rho, data::PartitionScheme scheme) {
  auto generated = data::GenerateSynthetic(spec);
  return BuildProblemFromData(spec.name, std::move(generated.train),
                              std::move(generated.test), num_workers, lambda,
                              rho, scheme);
}

}  // namespace psra::admm
