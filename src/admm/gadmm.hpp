// GADMM and Q-GADMM baselines (paper Related Work, refs [3] and [4]).
//
// GADMM (Elgabli et al., JMLR 2020) solves
//     min sum_n f_n(x_n)   s.t.  x_n = x_{n+1},  n = 1..N-1
// over a logical chain of workers split into a HEAD group (odd positions)
// and a TAIL group (even positions). Each iteration:
//   1. head workers update x_n given their two neighbors' latest models,
//   2. head workers push x_n to their neighbors,
//   3. tail workers update x_n given the fresh head models,
//   4. tail workers push x_n; every worker updates its link duals
//      lambda_n += rho (x_n - x_{n+1}).
// Every worker talks to at most two neighbors, so per-iteration traffic is
// O(d) per worker regardless of N — the communication-efficiency idea the
// paper contrasts with its own hierarchical scheme.
//
// Q-GADMM additionally quantizes every transmitted model with stochastic
// uniform quantization (configurable bit width) around the receiver's last
// copy, which cuts the wire cost by ~64/(bits+overhead).
//
// The x_n update
//   argmin f_n(x) + lambda_{n-1}^T (x_prev - x) + lambda_n^T (x - x_next)
//          + rho/2 (||x_prev - x||^2 + ||x - x_next||^2)
// is mapped onto the shared ProximalLogistic solver: the sum of the two
// quadratic proximal terms equals rho ||x - (x_prev+x_next)/2||^2 + const,
// and the linear terms fold into v = lambda_n - lambda_{n-1}.
//
// Note: unlike the consensus algorithms there is no global z; metrics are
// evaluated on the chain-average model, and the L1 term is handled by each
// worker owning lambda/N of the global regularizer smoothed away — GADMM as
// published targets differentiable f_n, so we run it on the smooth logistic
// part and report the same global objective (eq. 17) for comparability.
#pragma once

#include <string>

#include "admm/common.hpp"

namespace psra::admm {

struct GadmmConfig {
  ClusterConfig cluster;
  /// Quantization bit-width for transmitted models. 0 = no quantization
  /// (plain GADMM); 1..16 = Q-GADMM with that many bits per value.
  std::uint32_t quantization_bits = 0;
  /// Chain order: workers are chained by global rank (rank r talks to r-1
  /// and r+1), so neighbors are usually on the same node — the layout the
  /// GADMM paper assumes.
  bool quantize_error_feedback = true;
};

class Gadmm {
 public:
  explicit Gadmm(const GadmmConfig& config);

  std::string Name() const;

  RunResult Run(const ConsensusProblem& problem,
                const RunOptions& options) const;

 private:
  GadmmConfig cfg_;
};

}  // namespace psra::admm
