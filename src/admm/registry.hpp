// Uniform entry point for running any of the implemented algorithms by
// name — the benches and examples drive everything through this.
//
// Names: "psra-hgadmm" (full system), "psra-admm" (flat, no hierarchy),
// "hgadmm-nogroup" (hierarchy without dynamic grouping), "admmlib",
// "ad-admm". "psra-hgadmm-ring" / "psra-hgadmm-naive" select the allreduce
// ablation.
#pragma once

#include <string>
#include <vector>

#include "admm/common.hpp"

namespace psra::admm {

/// All registered algorithm names (canonical spellings).
std::vector<std::string> AlgorithmNames();

/// Runs `name` on `problem` over `cluster`. Throws psra::InvalidArgument for
/// unknown names.
RunResult RunAlgorithm(const std::string& name, const ClusterConfig& cluster,
                       const ConsensusProblem& problem,
                       const RunOptions& options);

}  // namespace psra::admm
