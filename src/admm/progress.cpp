#include "admm/progress.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/cli.hpp"

namespace psra::admm {

void ProgressPrinter::Report(const ProgressUpdate& update) {
  ++reports_;
  const double now = watch_.ElapsedSeconds();
  const bool final_iteration = update.max_iterations != 0 &&
                               update.iteration >= update.max_iterations;
  if (!final_iteration && last_emit_s_ >= 0.0 &&
      now - last_emit_s_ < min_interval_s_) {
    return;
  }
  last_emit_s_ = now;
  printed_ = true;
  const double rate =
      now > 0.0 ? static_cast<double>(reports_) / now : 0.0;
  std::fprintf(stderr,
               "\r[psra] iter %" PRIu64 "/%" PRIu64
               "  primal %.3e  dual %.3e  rho %g  %.1f it/s",
               update.iteration, update.max_iterations,
               update.primal_residual, update.dual_residual, update.rho,
               rate);
  std::fflush(stderr);
}

void ProgressPrinter::Finish() {
  if (!printed_) return;
  printed_ = false;
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

void AddProgressFlag(CliParser& cli, bool* enabled) {
  cli.AddBool("progress", enabled,
              "live rate-limited progress line on stderr (iteration, "
              "residuals, iterations/sec)");
}

}  // namespace psra::admm
