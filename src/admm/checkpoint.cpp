#include "admm/checkpoint.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/report.hpp"
#include "support/log.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::admm {

namespace {
constexpr const char* kMagic = "psra-model v1";
}

void WriteModel(const ModelCheckpoint& model, std::ostream& os) {
  PSRA_REQUIRE(!model.z.empty(), "cannot write an empty model");
  os << kMagic << '\n';
  os << "algorithm " << model.algorithm << '\n';
  os << "dim " << model.z.size() << '\n';
  os << "lambda " << FormatDouble(model.lambda, 17) << '\n';
  os << "rho " << FormatDouble(model.rho, 17) << '\n';

  std::size_t nnz = 0;
  for (double v : model.z) {
    if (v != 0.0) ++nnz;
  }
  os << "nnz " << nnz << '\n';
  for (std::size_t i = 0; i < model.z.size(); ++i) {
    if (model.z[i] != 0.0) {
      os << i << ' ' << FormatDouble(model.z[i], 17) << '\n';
    }
  }
}

void WriteModelFile(const ModelCheckpoint& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open model file for writing: " + path);
  WriteModel(model, out);
  PSRA_CHECK(static_cast<bool>(out), "model write failed: " + path);
  PSRA_SLOG(kInfo, "ckpt") << "wrote model checkpoint (" << model.z.size()
                           << " dims) to " << path;
}

ModelCheckpoint ReadModel(std::istream& is) {
  std::string line;
  PSRA_REQUIRE(std::getline(is, line) && Trim(line) == kMagic,
               "not a psra model file (bad magic)");

  ModelCheckpoint model;
  std::size_t dim = 0, nnz = 0;
  bool have_dim = false, have_nnz = false;
  while (std::getline(is, line)) {
    const auto tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "algorithm") {
      PSRA_REQUIRE(tokens.size() == 2, "malformed algorithm line");
      model.algorithm = tokens[1];
    } else if (tokens[0] == "dim") {
      PSRA_REQUIRE(tokens.size() == 2, "malformed dim line");
      dim = static_cast<std::size_t>(ParseInt(tokens[1]));
      have_dim = true;
    } else if (tokens[0] == "lambda") {
      PSRA_REQUIRE(tokens.size() == 2, "malformed lambda line");
      model.lambda = ParseDouble(tokens[1]);
    } else if (tokens[0] == "rho") {
      PSRA_REQUIRE(tokens.size() == 2, "malformed rho line");
      model.rho = ParseDouble(tokens[1]);
    } else if (tokens[0] == "nnz") {
      PSRA_REQUIRE(tokens.size() == 2, "malformed nnz line");
      nnz = static_cast<std::size_t>(ParseInt(tokens[1]));
      have_nnz = true;
      break;  // entries follow
    } else {
      throw InvalidArgument("unknown model header field: " + tokens[0]);
    }
  }
  PSRA_REQUIRE(have_dim && have_nnz, "model header missing dim/nnz");
  PSRA_REQUIRE(dim > 0, "model dimension must be positive");

  model.z.assign(dim, 0.0);
  for (std::size_t k = 0; k < nnz; ++k) {
    PSRA_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 "model file truncated: expected " + std::to_string(nnz) +
                     " entries");
    const auto tokens = SplitWhitespace(line);
    PSRA_REQUIRE(tokens.size() == 2, "malformed model entry");
    const auto idx = static_cast<std::size_t>(ParseInt(tokens[0]));
    PSRA_REQUIRE(idx < dim, "model entry index out of range");
    model.z[idx] = ParseDouble(tokens[1]);
  }
  return model;
}

ModelCheckpoint ReadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open model file: " + path);
  auto model = ReadModel(in);
  PSRA_SLOG(kInfo, "ckpt") << "restored model checkpoint ("
                           << model.z.size() << " dims) from " << path;
  return model;
}

ModelCheckpoint FromRunResult(const RunResult& result, double lambda,
                              double rho) {
  ModelCheckpoint model;
  model.algorithm = result.algorithm;
  model.lambda = lambda;
  model.rho = rho;
  model.z = result.final_z;
  return model;
}

namespace {
constexpr const char* kRunMagic = "psra-run-ckpt v1";

void WriteVectorLine(std::ostream& os, const char* tag,
                     const linalg::DenseVector& v) {
  os << tag;
  for (double x : v) os << ' ' << FormatDouble(x, 17);
  os << '\n';
}

void ReadVectorLine(std::istream& is, const char* tag, std::size_t dim,
                    linalg::DenseVector& out) {
  std::string line;
  PSRA_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "run checkpoint truncated");
  const auto tokens = SplitWhitespace(line);
  PSRA_REQUIRE(tokens.size() == dim + 1 && tokens[0] == tag,
               "malformed run-checkpoint vector line");
  out.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = ParseDouble(tokens[i + 1]);
}
}  // namespace

void CaptureRunCheckpoint(const WorkerSet& ws, std::uint64_t iteration,
                          std::span<const simnet::Rank> ranks,
                          RunCheckpoint& ckpt,
                          const obs::MetricsRegistry* metrics) {
  ckpt.workers.resize(static_cast<std::size_t>(ws.size()));
  ckpt.iteration = iteration;
  ckpt.rho = ws.rho();
  for (const simnet::Rank r : ranks) {
    const auto i = static_cast<std::size_t>(r);
    PSRA_REQUIRE(i < ckpt.workers.size(), "rank out of range");
    ckpt.workers[i].x = ws.x(i);
    ckpt.workers[i].y = ws.y(i);
    ckpt.workers[i].z = ws.z(i);
  }
  if (metrics != nullptr) ckpt.metrics = *metrics;
}

std::uint64_t ApplyWarmStart(WorkerSet& ws, const RunOptions& options) {
  if (options.warm_start == nullptr) return 0;
  const RunCheckpoint& ckpt = *options.warm_start;
  PSRA_REQUIRE(ckpt.workers.size() == static_cast<std::size_t>(ws.size()),
               "warm-start checkpoint holds a different worker count");
  const auto d = static_cast<std::size_t>(ws.dim());
  for (std::size_t i = 0; i < ckpt.workers.size(); ++i) {
    const WorkerCheckpoint& wc = ckpt.workers[i];
    PSRA_REQUIRE(wc.x.size() == d && wc.y.size() == d && wc.z.size() == d,
                 "warm-start checkpoint dimension mismatch");
    ws.RestoreWorker(i, wc.x, wc.y, wc.z);
  }
  ws.SetRho(ckpt.rho);
  return ckpt.iteration;
}

void WriteRunCheckpoint(const RunCheckpoint& ckpt, std::ostream& os) {
  PSRA_REQUIRE(!ckpt.workers.empty(), "cannot write an empty run checkpoint");
  const std::size_t dim = ckpt.workers.front().x.size();
  os << kRunMagic << '\n';
  os << "iteration " << ckpt.iteration << '\n';
  os << "rho " << FormatDouble(ckpt.rho, 17) << '\n';
  os << "workers " << ckpt.workers.size() << '\n';
  os << "dim " << dim << '\n';
  for (const auto& w : ckpt.workers) {
    PSRA_REQUIRE(w.x.size() == dim && w.y.size() == dim && w.z.size() == dim,
                 "run checkpoint worker dimension mismatch");
    WriteVectorLine(os, "x", w.x);
    WriteVectorLine(os, "y", w.y);
    WriteVectorLine(os, "z", w.z);
  }
  if (!ckpt.metrics.empty()) {
    // Length-prefixed raw JSON trailer: WriteJson is deterministic and
    // round-trips exactly through MetricsFromJson, so resuming from the
    // checkpoint restores the registry byte-for-byte.
    std::ostringstream json;
    ckpt.metrics.WriteJson(json);
    const std::string text = json.str();
    os << "metrics " << text.size() << '\n' << text;
  }
}

void WriteRunCheckpointFile(const RunCheckpoint& ckpt,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open run checkpoint for writing: " + path);
  WriteRunCheckpoint(ckpt, out);
  PSRA_CHECK(static_cast<bool>(out), "run checkpoint write failed: " + path);
}

RunCheckpoint ReadRunCheckpoint(std::istream& is) {
  std::string line;
  PSRA_REQUIRE(std::getline(is, line) && Trim(line) == kRunMagic,
               "not a psra run checkpoint (bad magic)");
  RunCheckpoint ckpt;
  std::size_t workers = 0, dim = 0;
  for (const char* key : {"iteration", "rho", "workers", "dim"}) {
    PSRA_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 "run checkpoint header truncated");
    const auto tokens = SplitWhitespace(line);
    PSRA_REQUIRE(tokens.size() == 2 && tokens[0] == key,
                 "malformed run-checkpoint header line");
    if (tokens[0] == std::string("iteration")) {
      ckpt.iteration = static_cast<std::uint64_t>(ParseInt(tokens[1]));
    } else if (tokens[0] == std::string("rho")) {
      ckpt.rho = ParseDouble(tokens[1]);
    } else if (tokens[0] == std::string("workers")) {
      workers = static_cast<std::size_t>(ParseInt(tokens[1]));
    } else {
      dim = static_cast<std::size_t>(ParseInt(tokens[1]));
    }
  }
  PSRA_REQUIRE(workers > 0 && dim > 0,
               "run checkpoint must have workers and dim");
  ckpt.workers.resize(workers);
  for (auto& w : ckpt.workers) {
    ReadVectorLine(is, "x", dim, w.x);
    ReadVectorLine(is, "y", dim, w.y);
    ReadVectorLine(is, "z", dim, w.z);
  }
  // Optional metrics trailer; absent in pre-trailer files.
  std::string trailer;
  while (std::getline(is, trailer)) {
    const auto tokens = SplitWhitespace(trailer);
    if (tokens.empty()) continue;
    PSRA_REQUIRE(tokens.size() == 2 && tokens[0] == "metrics",
                 "unexpected content after run-checkpoint workers");
    const auto nbytes = static_cast<std::size_t>(ParseInt(tokens[1]));
    std::string text(nbytes, '\0');
    is.read(text.data(), static_cast<std::streamsize>(nbytes));
    PSRA_REQUIRE(static_cast<std::size_t>(is.gcount()) == nbytes,
                 "run checkpoint metrics trailer truncated");
    ckpt.metrics = obs::MetricsFromJson(text);
    break;
  }
  return ckpt;
}

RunCheckpoint ReadRunCheckpointFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open run checkpoint: " + path);
  return ReadRunCheckpoint(in);
}

}  // namespace psra::admm
