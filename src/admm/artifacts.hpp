// Run-artifact export: every bench/example binary can emit the observability
// artifacts of a run through one shared code path (DESIGN.md §9):
//
//   trace.json     — Chrome trace_event JSON from the run's SpanTracer
//                    (chrome://tracing / Perfetto loadable);
//   metrics.json   — the MetricsRegistry, deterministically ordered
//                    (schema-checked in CI by tools/check_metrics_schema);
//   trace.csv      — the per-iteration IterationRecord series;
//   timeline.jsonl — the per-iteration convergence time-series from the
//                    run's TimeSeriesRecorder (psra_report --timeline).
//
// Binaries call AddArtifactFlags() to grow --trace-out / --metrics-out /
// --csv-out / --timeline-out flags, attach an obs::ObsContext to RunOptions
// when the user asked for trace/metrics/timeline output, and hand
// everything to WriteRunArtifacts afterwards. Relative paths are resolved
// against $PSRA_TRACE_DIR (support/artifact_path.hpp) at write time.
#pragma once

#include <string>

#include "admm/trace.hpp"
#include "obs/obs.hpp"

namespace psra {
class CliParser;
}

namespace psra::admm {

/// Where to write each artifact; an empty path skips that artifact.
struct RunArtifactPaths {
  std::string trace_json;
  std::string metrics_json;
  std::string trace_csv;
  std::string timeline_jsonl;

  bool any() const {
    return !trace_json.empty() || !metrics_json.empty() ||
           !trace_csv.empty() || !timeline_jsonl.empty();
  }
  /// True when the run must be instrumented (trace/metrics/timeline
  /// requested).
  bool wants_obs() const {
    return !trace_json.empty() || !metrics_json.empty() ||
           !timeline_jsonl.empty();
  }
};

/// Registers --trace-out, --metrics-out, --csv-out and --timeline-out on
/// `cli`, writing the parsed paths into `paths` (which must outlive the
/// parser).
void AddArtifactFlags(CliParser& cli, RunArtifactPaths* paths);

/// Writes the requested artifacts. `tracer` backs trace.json, `metrics`
/// backs metrics.json, `result` backs trace.csv, `timeline` backs
/// timeline.jsonl; a null source for a requested artifact is an error
/// (PSRA_REQUIRE), as is an unwritable path.
void WriteRunArtifacts(const RunArtifactPaths& paths,
                       const obs::SpanTracer* tracer,
                       const obs::MetricsRegistry* metrics,
                       const RunResult* result,
                       const obs::TimeSeriesRecorder* timeline = nullptr);

/// Convenience overload: trace and metrics both come from `ctx`.
void WriteRunArtifacts(const RunArtifactPaths& paths,
                       const obs::ObsContext& ctx, const RunResult& result);

}  // namespace psra::admm
