// Run-artifact export: every bench/example binary can emit the observability
// artifacts of a run through one shared code path (DESIGN.md §9):
//
//   trace.json   — Chrome trace_event JSON from the run's SpanTracer
//                  (chrome://tracing / Perfetto loadable);
//   metrics.json — the MetricsRegistry, deterministically ordered
//                  (schema-checked in CI by tools/check_metrics_schema);
//   trace.csv    — the per-iteration IterationRecord series.
//
// Binaries call AddArtifactFlags() to grow --trace-out / --metrics-out /
// --csv-out flags, attach an obs::ObsContext to RunOptions when the user
// asked for trace or metrics output, and hand everything to
// WriteRunArtifacts afterwards.
#pragma once

#include <string>

#include "admm/trace.hpp"
#include "obs/obs.hpp"

namespace psra {
class CliParser;
}

namespace psra::admm {

/// Where to write each artifact; an empty path skips that artifact.
struct RunArtifactPaths {
  std::string trace_json;
  std::string metrics_json;
  std::string trace_csv;

  bool any() const {
    return !trace_json.empty() || !metrics_json.empty() || !trace_csv.empty();
  }
  /// True when the run must be instrumented (trace/metrics requested).
  bool wants_obs() const {
    return !trace_json.empty() || !metrics_json.empty();
  }
};

/// Registers --trace-out, --metrics-out and --csv-out on `cli`, writing the
/// parsed paths into `paths` (which must outlive the parser).
void AddArtifactFlags(CliParser& cli, RunArtifactPaths* paths);

/// Writes the requested artifacts. `tracer` backs trace.json, `metrics`
/// backs metrics.json, `result` backs trace.csv; a null source for a
/// requested artifact is an error (PSRA_REQUIRE), as is an unwritable path.
void WriteRunArtifacts(const RunArtifactPaths& paths,
                       const obs::SpanTracer* tracer,
                       const obs::MetricsRegistry* metrics,
                       const RunResult* result);

/// Convenience overload: trace and metrics both come from `ctx`.
void WriteRunArtifacts(const RunArtifactPaths& paths,
                       const obs::ObsContext& ctx, const RunResult& result);

}  // namespace psra::admm
