// AD-ADMM baseline (Zhang & Kwok 2014, paper ref [26]).
//
// Asynchronous master-worker consensus ADMM with a partial barrier and
// bounded delay: the master updates z once it has received at least
// `min_barrier` fresh w_i since the last update, provided no worker's
// contribution is staler than `max_delay` updates (otherwise the update
// blocks until the laggard reports). Workers compute against the z they
// last received and block from their report until the next z update.
//
// The master is a dedicated process hosted on node 0; all traffic funnels
// through it with serialized sends and receives — the bandwidth bottleneck
// that makes AD-ADMM's communication time grow with the cluster in Figure 6.
// Simulation is event-driven over virtual time (simnet::EventQueue).
#pragma once

#include <string>

#include "admm/common.hpp"

namespace psra::admm {

struct AdAdmmConfig {
  ClusterConfig cluster;
  /// Fraction of workers whose fresh reports fire a z-update (paper: 1/2).
  double min_barrier_fraction = 0.5;
  std::uint32_t max_delay = 5;
  /// Classic master-worker exchange (paper Section 4.1): each worker uploads
  /// x_i AND y_i as dense d-vectors and downloads dense z. This is the
  /// pre-reformulation traffic pattern whose master bottleneck PSRA-HGADMM
  /// eliminates. Disable to give AD-ADMM the sparse w_i trick (ablation).
  bool classic_exchange = true;
};

class AdAdmm {
 public:
  explicit AdAdmm(const AdAdmmConfig& config);

  std::string Name() const { return "AD-ADMM"; }

  RunResult Run(const ConsensusProblem& problem,
                const RunOptions& options) const;

 private:
  AdAdmmConfig cfg_;
};

}  // namespace psra::admm
