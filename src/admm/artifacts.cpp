#include "admm/artifacts.hpp"

#include <fstream>

#include "support/artifact_path.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"

namespace psra::admm {

void AddArtifactFlags(CliParser& cli, RunArtifactPaths* paths) {
  cli.AddString("trace-out", &paths->trace_json,
                "write a Chrome trace_event JSON of the run here");
  cli.AddString("metrics-out", &paths->metrics_json,
                "write the run's metrics registry as JSON here");
  cli.AddString("csv-out", &paths->trace_csv,
                "write the per-iteration trace as CSV here");
  cli.AddString("timeline-out", &paths->timeline_jsonl,
                "write the per-iteration convergence timeline as JSONL here");
}

namespace {

std::ofstream OpenOrDie(const std::string& path) {
  std::ofstream os(ResolveArtifactPath(path));
  PSRA_REQUIRE(os.good(), "cannot open artifact file for writing: " + path);
  return os;
}

}  // namespace

void WriteRunArtifacts(const RunArtifactPaths& paths,
                       const obs::SpanTracer* tracer,
                       const obs::MetricsRegistry* metrics,
                       const RunResult* result,
                       const obs::TimeSeriesRecorder* timeline) {
  if (!paths.trace_json.empty()) {
    PSRA_REQUIRE(tracer != nullptr, "--trace-out requested but no tracer");
    auto os = OpenOrDie(paths.trace_json);
    tracer->WriteChromeJson(os);
  }
  if (!paths.metrics_json.empty()) {
    PSRA_REQUIRE(metrics != nullptr,
                 "--metrics-out requested but no metrics registry");
    auto os = OpenOrDie(paths.metrics_json);
    metrics->WriteJson(os);
  }
  if (!paths.trace_csv.empty()) {
    PSRA_REQUIRE(result != nullptr, "--csv-out requested but no run result");
    auto os = OpenOrDie(paths.trace_csv);
    result->WriteTraceCsv(os);
  }
  if (!paths.timeline_jsonl.empty()) {
    PSRA_REQUIRE(timeline != nullptr,
                 "--timeline-out requested but no timeline recorder");
    auto os = OpenOrDie(paths.timeline_jsonl);
    timeline->WriteJsonl(os);
  }
}

void WriteRunArtifacts(const RunArtifactPaths& paths,
                       const obs::ObsContext& ctx, const RunResult& result) {
  WriteRunArtifacts(paths, &ctx.tracer, &ctx.metrics, &result, &ctx.timeline);
}

}  // namespace psra::admm
