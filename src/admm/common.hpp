// Shared machinery for the ADMM algorithm family: cluster/run configuration
// and the per-worker state (x_i, y_i, w_i, z_i) with the update steps all
// algorithms share (paper eq. 4, 6, 8, 10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "admm/problem.hpp"
#include "admm/trace.hpp"
#include "engine/ledger.hpp"
#include "engine/thread_pool.hpp"
#include "simnet/cost_model.hpp"
#include "simnet/fault.hpp"
#include "simnet/straggler.hpp"
#include "simnet/topology.hpp"
#include "solver/logistic.hpp"
#include "solver/prox.hpp"
#include "solver/tron.hpp"

namespace psra::obs {
struct ObsContext;
}

namespace psra::admm {

struct RunCheckpoint;

/// The simulated cluster an algorithm runs on.
struct ClusterConfig {
  std::uint32_t num_nodes = 1;
  std::uint32_t workers_per_node = 1;
  /// Racks partition the nodes contiguously (must divide num_nodes). With
  /// more than one rack, inter-node links within a rack stay on the rack
  /// network while cross-rack messages pay the slower kInterRack fabric, and
  /// the hierarchical PSRA engine runs its leader collective recursively
  /// (per rack, then across racks). One rack (the default) reproduces the
  /// original two-level cluster exactly.
  std::uint32_t num_racks = 1;
  simnet::CostModelConfig cost;
  /// Injected stragglers (paper Section 5.5); probability 0 disables.
  simnet::StragglerConfig straggler;
  /// Injected faults: worker crashes, leader deaths, message drops/delays.
  /// The default is an EMPTY plan, under which every algorithm is
  /// bitwise-identical to a build without the fault subsystem (pinned by
  /// test_determinism).
  simnet::FaultConfig fault;
  /// Natural per-iteration compute-time jitter: each worker's compute charge
  /// is multiplied by U[1, 1+jitter]. Real clusters always jitter (OS noise,
  /// cache effects); this is what makes SSP staleness and dynamic grouping
  /// observable in the simulator. 0 disables.
  double compute_jitter = 0.05;
  std::uint64_t seed = 123;

  std::uint32_t world_size() const { return num_nodes * workers_per_node; }
};

/// Residual-balancing adaptive penalty (Boyd et al. §3.4.1; the paper's
/// Section 3 cites AADMM for the same problem — ADMM is sensitive to rho).
/// After each iteration: if ||r|| > mu ||s||, rho *= tau; if ||s|| > mu
/// ||r||, rho /= tau; clamped to [rho_min, rho_max]. The update is driven by
/// globally aggregated residual norms, so every worker applies the same rho.
struct AdaptiveRhoConfig {
  bool enabled = false;
  double mu = 10.0;
  double tau = 2.0;
  double rho_min = 1e-4;
  double rho_max = 1e4;
};

/// Residual-based termination (Boyd et al. §3.3):
///   ||r|| <= sqrt(N d) eps_abs + eps_rel * max(||x||, sqrt(N)||z||)
///   ||s|| <= sqrt(N d) eps_abs + eps_rel * ||y||
/// where r/s are the primal/dual residuals of the consensus problem.
struct StoppingConfig {
  bool enabled = false;
  double eps_abs = 1e-4;
  double eps_rel = 1e-3;
};

/// One engine iteration's headline state, pushed to a ProgressSink when the
/// caller asked for live progress. Fields an engine does not track (e.g.
/// residual norms outside PSRA) stay zero.
struct ProgressUpdate {
  std::uint64_t iteration = 0;
  std::uint64_t max_iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double rho = 0.0;
};

/// Receiver for per-iteration progress (see admm/progress.hpp for the
/// rate-limited stderr printer). Engines call Report once per iteration
/// behind a null check, so an unset sink costs one predictable branch.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void Report(const ProgressUpdate& update) = 0;
};

/// Local x-subproblem solver selection (DESIGN.md §14). The CG mode is the
/// matrix-free TRON/CG path every engine has always used; the Gram mode
/// enables the transpose-reduction Hessian (A^T D A accumulated once per
/// outer Newton iteration, Hessian-vector products as dense d x d matvecs
/// that never re-stream the shard — arXiv:1504.02147). Auto picks per
/// worker from the shard shape. Changing the mode changes the summation
/// order of the x-update, so the default stays kCg: existing runs remain
/// bitwise-identical to every committed baseline.
struct LocalSolverOptions {
  enum class Mode {
    kCg,    ///< matrix-free TRON/CG (default; baseline-exact)
    kAuto,  ///< Gram on tall shards (rows >= tall_ratio * cols), CG otherwise
    kGram,  ///< Gram Hessian on every worker
  };
  Mode mode = Mode::kCg;
  /// kAuto threshold: a shard is "tall" when rows >= tall_ratio * cols.
  double tall_ratio = 4.0;
  /// kAuto refuses the Gram path above this feature dimension (the packed
  /// Gram is d(d+1)/2 doubles per worker; 2048 caps it at 16 MiB).
  std::uint64_t max_gram_dim = 2048;
};

/// Per-worker selection: true when `solver` says this shard shape should run
/// the Gram-accelerated Hessian path.
bool UseGramSolver(const LocalSolverOptions& solver, std::uint64_t rows,
                   std::uint64_t cols);

struct RunOptions {
  std::uint64_t max_iterations = 100;
  solver::TronOptions tron;
  /// Local solver selection for the x-update (see LocalSolverOptions).
  LocalSolverOptions local_solver;
  /// Optional host thread pool for the per-worker x-updates (wall-clock
  /// speed only; virtual time is unaffected).
  engine::ThreadPool* pool = nullptr;
  /// Record an IterationRecord every `eval_every` iterations (plus the last).
  std::uint64_t eval_every = 1;
  bool record_trace = true;
  AdaptiveRhoConfig adaptive_rho;
  StoppingConfig stopping;
  /// Optional observability sink (spans + metrics). Null — the default —
  /// compiles every instrumentation site down to a pointer test, keeping the
  /// hot path allocation-free and the results bitwise-identical to an
  /// uninstrumented run (pinned by test_obs).
  obs::ObsContext* obs = nullptr;
  /// Optional live-progress receiver (iteration, residuals, rho), reported
  /// once per iteration. Null — the default — costs one branch per
  /// iteration; progress never feeds back into the run.
  ProgressSink* progress = nullptr;
  /// Optional restored checkpoint: the engine seeds every worker's (x, y, z)
  /// and rho from it and resumes at iteration warm_start->iteration + 1,
  /// running through max_iterations as usual. Virtual clocks restart at
  /// zero — the checkpoint carries algorithm state, not timing — so a
  /// resumed run reproduces the remaining iterations' algebra exactly
  /// (bitwise, for fixed-membership grouping with adaptive rho off).
  /// Engines without per-worker consensus state reject a warm start.
  const RunCheckpoint* warm_start = nullptr;
  /// When non-null, the engine snapshots every worker's state (and rho)
  /// into this checkpoint right after iteration `checkpoint_at` completes.
  /// Together with `warm_start` this is the split-run facility: run to K,
  /// capture, and a fresh Run resumes from K + 1 with identical algebra.
  /// Ignored by engines that do not support warm starts.
  RunCheckpoint* checkpoint_out = nullptr;
  std::uint64_t checkpoint_at = 0;
  /// Which transport executes the collectives. "sim" — the default and the
  /// only in-process choice — is the deterministic virtual-time simulator.
  /// Real-socket runs are one OS process per rank and are launched
  /// externally (tools/psra_launch driving a worker built on
  /// transport::TcpTransport + comm::WireCollectives; see DESIGN.md §11);
  /// the engines reject any other value rather than silently simulating.
  std::string transport = "sim";
};

/// Deterministic compute-time multiplier combining natural jitter and the
/// straggler model for (worker, iteration).
double ComputeMultiplier(const ClusterConfig& cluster,
                         const simnet::Topology& topo,
                         const simnet::StragglerModel& stragglers,
                         simnet::Rank worker, std::uint64_t iteration);

/// Per-worker ADMM state and the local update steps.
class WorkerSet {
 public:
  WorkerSet(const ConsensusProblem* problem, const RunOptions* options);

  std::uint64_t size() const { return problem_->num_workers(); }
  std::uint64_t dim() const { return problem_->dim(); }

  linalg::DenseVector& x(std::size_t i) { return x_[i]; }
  linalg::DenseVector& y(std::size_t i) { return y_[i]; }
  linalg::DenseVector& w(std::size_t i) { return w_[i]; }
  linalg::DenseVector& z(std::size_t i) { return z_[i]; }
  const linalg::DenseVector& x(std::size_t i) const { return x_[i]; }
  const linalg::DenseVector& y(std::size_t i) const { return y_[i]; }
  const linalg::DenseVector& z(std::size_t i) const { return z_[i]; }
  const linalg::DenseVector& w(std::size_t i) const { return w_[i]; }
  /// All per-worker w vectors, for passing straight into a collective when
  /// the caller does not need to mutate its input snapshots.
  std::span<const linalg::DenseVector> w_all() const { return w_; }

  /// Runs the x-update (TRON on eq. 4) and w computation (eq. 8) for worker
  /// i against its current z_i/y_i. Returns flops performed.
  double XWStep(std::size_t i);

  /// Runs XWStep for all workers, optionally on the host pool. flops_out
  /// must have size() entries. When `wall_out` is non-null (also size()
  /// entries) each worker's slot receives the host seconds its own step took
  /// on whichever pool thread ran it — per-worker wall attribution for the
  /// tracer; pass null on untraced runs to avoid the clock reads.
  void XWStepAll(std::vector<double>& flops_out,
                 std::vector<double>* wall_out = nullptr);

  /// Runs XWStep for the workers in `ranks` only (the fault path: crashed
  /// workers compute nothing). flops_out must have size() entries; entries
  /// of workers not in `ranks` are left untouched. `wall_out` as above.
  void XWStepAll(std::span<const simnet::Rank> ranks,
                 std::vector<double>& flops_out,
                 std::vector<double>* wall_out = nullptr);

  /// Crash-restart recovery: replaces worker i's state with a checkpointed
  /// snapshot and recomputes its w from the restored x/y (w is derived
  /// state, not part of a checkpoint).
  void RestoreWorker(std::size_t i, const linalg::DenseVector& x,
                     const linalg::DenseVector& y,
                     const linalg::DenseVector& z);

  /// z-update (eq. 10) + y-update (eq. 6) for worker i from aggregate W
  /// accumulated over `num_contributors` workers. Returns flops.
  double ZYStep(std::size_t i, std::span<const double> W,
                std::uint64_t num_contributors);

  /// Runs ZYStep for every worker in `ranks`, optionally on the host pool
  /// (workers touch disjoint state, so the result is order-independent).
  /// Per-worker flops land in flops_out[rank]; flops_out must have size()
  /// entries. `wall_out` as in XWStepAll: per-worker host seconds for the
  /// tracer, measured on whichever pool thread ran the step.
  void ZYStepAll(std::span<const simnet::Rank> ranks, std::span<const double> W,
                 std::uint64_t num_contributors,
                 std::vector<double>& flops_out,
                 std::vector<double>* wall_out = nullptr);

  /// The copy half of the ZYStepAll shortcut, exposed for callers that batch
  /// the consensus update across groups themselves: worker i adopts worker
  /// `src`'s freshly computed z (bitwise-identical to recomputing it — z
  /// depends only on the shared aggregate) and runs its own y-update.
  /// Returns the virtual flops of the full computation being replaced.
  double ZYStepFrom(std::size_t i, std::size_t src);

  /// Mean of per-worker z (the consensus model used for metrics).
  linalg::DenseVector MeanZ() const;

  /// In-place MeanZ: fills `out` reusing its storage. Coordinate chunks run
  /// on the host pool, but each coordinate accumulates over workers in
  /// ascending order, so the result is bitwise-identical for any pool size.
  void MeanZInto(linalg::DenseVector& out) const;

  /// Current penalty parameter (problem rho, possibly adapted since).
  double rho() const { return rho_; }
  /// Applies a new penalty everywhere (x-subproblems and z/y updates).
  void SetRho(double rho);

  /// Consensus residual norms after the current iteration:
  ///   primal  ||r|| = sqrt(sum_i ||x_i - z_i||^2)
  ///   dual    ||s|| = rho * sqrt(N) * ||z_mean - z_prev_mean||
  /// plus the norms the stopping criterion scales against.
  struct Residuals {
    double primal = 0.0;
    double dual = 0.0;
    double x_norm = 0.0;  // sqrt(sum_i ||x_i||^2)
    double y_norm = 0.0;  // sqrt(sum_i ||y_i||^2)
    double z_norm = 0.0;  // sqrt(N) * ||z_mean||
  };
  Residuals ComputeResiduals(std::span<const double> z_prev_mean) const;

  /// Evaluates the Boyd-style stopping test.
  static bool ShouldStop(const StoppingConfig& cfg, const Residuals& res,
                         std::uint64_t num_workers, std::uint64_t dim);

  /// Applies the residual-balancing rho update; returns the new rho.
  double MaybeAdaptRho(const AdaptiveRhoConfig& cfg, const Residuals& res);

  /// Evaluates objective/accuracy of MeanZ() and the ledger's cumulative
  /// times into an IterationRecord (not charged to virtual time).
  IterationRecord Evaluate(std::uint64_t iteration,
                           const engine::TimeLedger& ledger) const;

 private:
  const ConsensusProblem* problem_;
  const RunOptions* options_;
  double rho_;
  std::vector<solver::ProximalLogistic> local_;
  std::vector<linalg::DenseVector> x_, y_, w_, z_;
  // Preallocated per-worker TRON workspaces and reduction scratch. Mutable
  // because they are caches: const methods (ComputeResiduals, MeanZInto)
  // recycle them instead of allocating per call.
  mutable std::vector<solver::TronWorkspace> tron_ws_;
  mutable linalg::DenseVector mean_scratch_;
  mutable std::vector<double> norm_primal_, norm_x_, norm_y_;
};

}  // namespace psra::admm
