// Model persistence: save/load a trained consensus model (the z vector plus
// the metadata needed to validate it against a dataset at load time).
//
// Format: a small text header followed by the nonzero entries —
//   psra-model v1
//   algorithm <name>
//   dim <d>
//   lambda <l>
//   rho <r>
//   nnz <k>
//   <index> <value>          (k lines)
//
// Models after L1-regularized training are sparse, so the on-disk size is
// proportional to the active feature count, not the dimension.
#pragma once

#include <iosfwd>
#include <string>

#include "admm/trace.hpp"

namespace psra::admm {

struct ModelCheckpoint {
  std::string algorithm;
  double lambda = 0.0;
  double rho = 0.0;
  linalg::DenseVector z;
};

void WriteModel(const ModelCheckpoint& model, std::ostream& os);
void WriteModelFile(const ModelCheckpoint& model, const std::string& path);

/// Throws psra::IoError / psra::InvalidArgument on malformed input.
ModelCheckpoint ReadModel(std::istream& is);
ModelCheckpoint ReadModelFile(const std::string& path);

/// Convenience: checkpoint straight from a finished run.
ModelCheckpoint FromRunResult(const RunResult& result, double lambda,
                              double rho);

}  // namespace psra::admm
