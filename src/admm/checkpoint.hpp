// Model persistence: save/load a trained consensus model (the z vector plus
// the metadata needed to validate it against a dataset at load time).
//
// Format: a small text header followed by the nonzero entries —
//   psra-model v1
//   algorithm <name>
//   dim <d>
//   lambda <l>
//   rho <r>
//   nnz <k>
//   <index> <value>          (k lines)
//
// Models after L1-regularized training are sparse, so the on-disk size is
// proportional to the active feature count, not the dimension.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "admm/common.hpp"
#include "admm/trace.hpp"
#include "obs/metrics.hpp"

namespace psra::admm {

struct ModelCheckpoint {
  std::string algorithm;
  double lambda = 0.0;
  double rho = 0.0;
  linalg::DenseVector z;
};

void WriteModel(const ModelCheckpoint& model, std::ostream& os);
void WriteModelFile(const ModelCheckpoint& model, const std::string& path);

/// Throws psra::IoError / psra::InvalidArgument on malformed input.
ModelCheckpoint ReadModel(std::istream& is);
ModelCheckpoint ReadModelFile(const std::string& path);

/// Convenience: checkpoint straight from a finished run.
ModelCheckpoint FromRunResult(const RunResult& result, double lambda,
                              double rho);

// ---------------------------------------------------------------------------
// Run checkpoints (crash-restart recovery).
//
// A RunCheckpoint snapshots every worker's ADMM state (x_i, y_i, z_i; w_i is
// recomputed on restore) at an iteration boundary. Engines capture one every
// FaultConfig::checkpoint_every iterations when a fault plan is active, and
// a recovering worker restores its slot from the last capture — paying the
// restart delay plus the virtual transfer time of the restored vectors.
//
// On-disk format (text, like the model format):
//   psra-run-ckpt v1
//   iteration <k>
//   rho <r>
//   workers <n>
//   dim <d>
//   x <d values> / y <d values> / z <d values>   (three lines per worker)
//   metrics <nbytes>                             (optional trailer)
//   <nbytes of metrics.json>
//
// The metrics trailer snapshots the run's MetricsRegistry at capture time,
// so a harness that restarts from the checkpoint resumes its counters
// instead of losing the pre-crash traffic — the resumed run's metrics.json
// then matches an uninterrupted run's. Files without the trailer (pre-v1.1
// captures) still load, with an empty registry.
// ---------------------------------------------------------------------------

struct WorkerCheckpoint {
  linalg::DenseVector x, y, z;
};

struct RunCheckpoint {
  std::uint64_t iteration = 0;
  double rho = 0.0;
  std::vector<WorkerCheckpoint> workers;
  /// Observability state at capture time (empty when the run had no obs).
  obs::MetricsRegistry metrics;
};

/// Snapshots the workers in `ranks` into their slots of `ckpt`, reusing the
/// slot storage; other slots are left untouched (a crashed worker's slot
/// keeps its last pre-crash capture). Sizes `ckpt.workers` on first use.
/// `metrics`, when non-null, is copied into the checkpoint alongside the
/// worker state.
void CaptureRunCheckpoint(const WorkerSet& ws, std::uint64_t iteration,
                          std::span<const simnet::Rank> ranks,
                          RunCheckpoint& ckpt,
                          const obs::MetricsRegistry* metrics = nullptr);

/// Warm start: seeds `ws` from `options.warm_start` — rho plus every
/// worker's (x, y, z); w is recomputed — and returns the checkpointed
/// iteration, so the engine resumes at that + 1. Returns 0 and leaves `ws`
/// untouched when no warm start is set.
std::uint64_t ApplyWarmStart(WorkerSet& ws, const RunOptions& options);

void WriteRunCheckpoint(const RunCheckpoint& ckpt, std::ostream& os);
void WriteRunCheckpointFile(const RunCheckpoint& ckpt,
                            const std::string& path);

/// Throws psra::IoError / psra::InvalidArgument on malformed input.
RunCheckpoint ReadRunCheckpoint(std::istream& is);
RunCheckpoint ReadRunCheckpointFile(const std::string& path);

}  // namespace psra::admm
