#include "admm/reference.hpp"

#include <algorithm>

#include "linalg/dense_ops.hpp"
#include "solver/logistic.hpp"
#include "solver/metrics.hpp"
#include "solver/prox.hpp"
#include "support/status.hpp"

namespace psra::admm {

double ReferenceMinimum(const data::Dataset& train, double lambda,
                        const ReferenceOptions& options) {
  PSRA_REQUIRE(lambda >= 0.0, "lambda must be non-negative");
  PSRA_REQUIRE(options.rho > 0.0, "rho must be positive");
  const auto d = static_cast<std::size_t>(train.num_features());

  solver::ProximalLogistic local(&train, options.rho);
  linalg::DenseVector x(d, 0.0), y(d, 0.0), w(d, 0.0), z(d, 0.0);

  solver::ZUpdateConfig zcfg;
  zcfg.regularizer = solver::Regularizer::kL1;
  zcfg.lambda = lambda;
  zcfg.rho = options.rho;
  zcfg.num_workers = 1;

  double best = solver::GlobalObjective(train, z, lambda);
  for (std::uint64_t k = 0; k < options.iterations; ++k) {
    local.SetIterationTerms(y, z);
    solver::TronMinimize(local, x, options.tron);
    solver::WLocal(options.rho, x, y, w);
    solver::ZUpdate(zcfg, w, z);
    solver::YUpdate(options.rho, x, z, y);
    best = std::min(best, solver::GlobalObjective(train, z, lambda));
  }
  return best;
}

}  // namespace psra::admm
