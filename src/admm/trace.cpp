#include "admm/trace.hpp"

#include <ostream>

#include "solver/metrics.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::admm {

void RunResult::ApplyReference(double f_min) {
  PSRA_REQUIRE(f_min > 0.0, "reference objective must be positive");
  for (auto& rec : trace) {
    rec.relative_error = solver::RelativeError(rec.objective, f_min);
  }
}

void RunResult::WriteTraceCsv(std::ostream& os) const {
  os << "algorithm,iteration,objective,relative_error,accuracy,cal_time,"
        "comm_time,makespan,primal_residual,dual_residual,rho\n";
  for (const auto& r : trace) {
    os << algorithm << ',' << r.iteration << ','
       << FormatDouble(r.objective, 12) << ','
       << FormatDouble(r.relative_error, 9) << ','
       << FormatDouble(r.accuracy, 9) << ',' << FormatDouble(r.cal_time, 9)
       << ',' << FormatDouble(r.comm_time, 9) << ','
       << FormatDouble(r.makespan, 9) << ','
       << FormatDouble(r.primal_residual, 9) << ','
       << FormatDouble(r.dual_residual, 9) << ',' << FormatDouble(r.rho, 9)
       << '\n';
  }
}

}  // namespace psra::admm
