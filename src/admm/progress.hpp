// Rate-limited live progress for long-running binaries (--progress).
//
// Engines report one ProgressUpdate per iteration through
// RunOptions::progress (a single pointer test when disabled — the hot path
// stays allocation-free and the flag costs nothing when off). This printer
// renders the updates as one self-overwriting stderr line:
//
//   [psra] iter 128/4096  primal 1.2e-02  dual 3.4e-03  rho 1  42.3 it/s
//
// at most every `min_interval_s` host seconds (plus the final iteration),
// and terminates the line with a newline in Finish(). Stderr only: stdout
// tables and every artifact stay byte-identical with or without it — the
// printer reads host wall time, which must never leak into results.
#pragma once

#include "admm/common.hpp"
#include "support/stopwatch.hpp"

namespace psra {
class CliParser;
}

namespace psra::admm {

class ProgressPrinter : public ProgressSink {
 public:
  explicit ProgressPrinter(double min_interval_s = 0.25)
      : min_interval_s_(min_interval_s) {}
  ~ProgressPrinter() override { Finish(); }
  ProgressPrinter(const ProgressPrinter&) = delete;
  ProgressPrinter& operator=(const ProgressPrinter&) = delete;

  void Report(const ProgressUpdate& update) override;

  /// Ends the progress line (newline on stderr) if anything was printed;
  /// idempotent, and run automatically on destruction.
  void Finish();

 private:
  double min_interval_s_;
  Stopwatch watch_;
  double last_emit_s_ = -1.0;
  std::uint64_t reports_ = 0;
  bool printed_ = false;
};

/// Registers --progress on `cli` (off by default), writing into `enabled`.
/// Binaries then point RunOptions::progress at a ProgressPrinter when set.
void AddProgressFlag(CliParser& cli, bool* enabled);

}  // namespace psra::admm
