// ADMMLib baseline (Xie & Lei 2019, paper ref [22]).
//
// Hierarchical communication (intra-node reduce -> inter-node Ring-Allreduce
// among Leaders -> intra-node broadcast) under the SSP computation model
// with the paper's two hyper-parameters:
//   Min_barrier — a global round fires once this many workers have fresh
//                 contributions (the paper sets workers/2);
//   Max_delay   — no node's contribution may be staler than this many
//                 rounds; the round blocks on nodes that would exceed it.
//
// Simulation semantics (DESIGN.md §2): nodes compute asynchronously; a round
// aggregates fresh w from participants and the cached (stale) w of
// non-participants — exactly SSP's stale-parameter behaviour, which is what
// degrades ADMMLib's per-iteration convergence relative to the BSP
// PSRA-HGADMM in Figure 5. Ring-Allreduce timing is charged to the
// participants' Leaders.
#pragma once

#include <string>

#include "admm/common.hpp"
#include "comm/collective.hpp"
#include "wlg/leader.hpp"

namespace psra::admm {

struct AdmmLibConfig {
  ClusterConfig cluster;
  /// Fraction of *workers* with fresh updates required to fire a round;
  /// the node-level barrier is ceil(min_barrier_fraction * nodes).
  double min_barrier_fraction = 0.5;
  std::uint32_t max_delay = 5;
  comm::AllreduceKind allreduce = comm::AllreduceKind::kRing;
  bool sparse_comm = true;
  wlg::LeaderPolicy leader_policy = wlg::LeaderPolicy::kLowestRank;
};

class AdmmLib {
 public:
  explicit AdmmLib(const AdmmLibConfig& config);

  std::string Name() const { return "ADMMLib"; }

  RunResult Run(const ConsensusProblem& problem,
                const RunOptions& options) const;

 private:
  AdmmLibConfig cfg_;
};

}  // namespace psra::admm
