// Sample partitioning for data-parallel training.
//
// The global consensus ADMM assigns a disjoint shard of samples to each
// worker (paper eq. 1: f_i is the loss over worker i's shard). Two schemes:
//   - Contiguous: worker i gets rows [i*n/N, (i+1)*n/N) — cheap, preserves
//     any ordering structure in the file.
//   - Striped: worker i gets rows {i, i+N, i+2N, ...} — decorrelates shards
//     when the file is sorted by label/source.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace psra::data {

enum class PartitionScheme { kContiguous, kStriped };

/// Splits `ds` into `num_parts` shards. Sizes differ by at most one sample.
/// Requires num_parts >= 1; shards may be empty when num_parts > samples.
std::vector<Dataset> Partition(const Dataset& ds, std::uint64_t num_parts,
                               PartitionScheme scheme = PartitionScheme::kContiguous);

/// Shard boundaries used by the contiguous scheme (num_parts + 1 entries).
std::vector<std::uint64_t> ContiguousBounds(std::uint64_t num_samples,
                                            std::uint64_t num_parts);

}  // namespace psra::data
