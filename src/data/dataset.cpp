#include "data/dataset.hpp"

#include <cmath>

#include "support/status.hpp"

namespace psra::data {

Dataset::Dataset(linalg::CsrMatrix features, std::vector<double> labels)
    : features_(std::move(features)), labels_(std::move(labels)) {
  PSRA_REQUIRE(labels_.size() == features_.rows(),
               "label count must match sample count");
  for (double y : labels_) {
    PSRA_REQUIRE(y == 1.0 || y == -1.0, "labels must be +1 or -1");
  }
}

double Dataset::MeanRowNnz() const {
  if (num_samples() == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(num_samples());
}

double Dataset::PositiveFraction() const {
  if (labels_.empty()) return 0.0;
  std::size_t pos = 0;
  for (double y : labels_) {
    if (y > 0) ++pos;
  }
  return static_cast<double>(pos) / static_cast<double>(labels_.size());
}

Dataset Dataset::SliceSamples(std::uint64_t begin, std::uint64_t end) const {
  PSRA_REQUIRE(begin <= end && end <= num_samples(), "bad sample range");
  return Dataset(features_.SliceRows(begin, end),
                 {labels_.begin() + static_cast<std::ptrdiff_t>(begin),
                  labels_.begin() + static_cast<std::ptrdiff_t>(end)});
}

Dataset Dataset::WithFeatureDim(std::uint64_t dim) const {
  PSRA_REQUIRE(dim >= features_.MaxOccupiedColumn(),
               "requested dimension would truncate features");
  if (dim == num_features()) return *this;
  linalg::CsrMatrix::Builder b(dim);
  for (std::uint64_t r = 0; r < num_samples(); ++r) {
    b.AddRow(features_.RowIndices(r), features_.RowValues(r));
  }
  return Dataset(b.Build(), labels_);
}

std::pair<Dataset, Dataset> Dataset::Split(std::uint64_t train_count) const {
  PSRA_REQUIRE(train_count <= num_samples(),
               "train split larger than dataset");
  return {SliceSamples(0, train_count),
          SliceSamples(train_count, num_samples())};
}

DatasetStats ComputeStats(const std::string& name, const Dataset& ds) {
  DatasetStats s;
  s.name = name;
  s.dimension = ds.num_features();
  s.num_samples = ds.num_samples();
  s.nnz = ds.nnz();
  s.density = ds.features().Density();
  s.mean_row_nnz = ds.MeanRowNnz();
  s.positive_fraction = ds.PositiveFraction();
  return s;
}

}  // namespace psra::data
