// LIBSVM sparse-format reader/writer.
//
// Format (one sample per line):  <label> <index>:<value> <index>:<value> ...
// Indices in files are 1-based (LIBSVM convention) and are converted to
// 0-based internally. Labels other than ±1 are mapped: values > 0 become +1,
// everything else -1 (matching how binary tools consume multiclass files).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace psra::data {

struct LibsvmReadOptions {
  /// Force the feature dimension (0 = use max index found).
  std::uint64_t feature_dim = 0;
  /// Stop after this many samples (0 = read all).
  std::uint64_t max_samples = 0;
};

Dataset ReadLibsvm(std::istream& in, const LibsvmReadOptions& options = {});
Dataset ReadLibsvmFile(const std::string& path,
                       const LibsvmReadOptions& options = {});

void WriteLibsvm(const Dataset& ds, std::ostream& out);
void WriteLibsvmFile(const Dataset& ds, const std::string& path);

}  // namespace psra::data
