#include "data/partition.hpp"

#include "support/status.hpp"

namespace psra::data {

std::vector<std::uint64_t> ContiguousBounds(std::uint64_t num_samples,
                                            std::uint64_t num_parts) {
  PSRA_REQUIRE(num_parts >= 1, "need at least one partition");
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(num_parts) + 1);
  for (std::uint64_t p = 0; p <= num_parts; ++p) {
    bounds[static_cast<std::size_t>(p)] = num_samples * p / num_parts;
  }
  return bounds;
}

std::vector<Dataset> Partition(const Dataset& ds, std::uint64_t num_parts,
                               PartitionScheme scheme) {
  PSRA_REQUIRE(num_parts >= 1, "need at least one partition");
  std::vector<Dataset> shards;
  shards.reserve(static_cast<std::size_t>(num_parts));

  if (scheme == PartitionScheme::kContiguous) {
    const auto bounds = ContiguousBounds(ds.num_samples(), num_parts);
    for (std::uint64_t p = 0; p < num_parts; ++p) {
      shards.push_back(ds.SliceSamples(bounds[static_cast<std::size_t>(p)],
                                       bounds[static_cast<std::size_t>(p) + 1]));
    }
    return shards;
  }

  // Striped: row r goes to shard r % num_parts.
  const auto& m = ds.features();
  for (std::uint64_t p = 0; p < num_parts; ++p) {
    linalg::CsrMatrix::Builder b(ds.num_features());
    std::vector<double> labels;
    for (std::uint64_t r = p; r < ds.num_samples(); r += num_parts) {
      b.AddRow(m.RowIndices(r), m.RowValues(r));
      labels.push_back(ds.labels()[static_cast<std::size_t>(r)]);
    }
    shards.emplace_back(b.Build(), std::move(labels));
  }
  return shards;
}

}  // namespace psra::data
