#include "data/libsvm_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::data {

Dataset ReadLibsvm(std::istream& in, const LibsvmReadOptions& options) {
  std::vector<double> labels;
  std::vector<std::vector<linalg::CsrMatrix::Index>> row_cols;
  std::vector<std::vector<double>> row_vals;
  std::uint64_t max_col = 0;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;

    const double raw_label = ParseDouble(tokens[0]);
    labels.push_back(raw_label > 0 ? 1.0 : -1.0);

    std::vector<linalg::CsrMatrix::Index> cols;
    std::vector<double> vals;
    cols.reserve(tokens.size() - 1);
    vals.reserve(tokens.size() - 1);
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const auto colon = tokens[t].find(':');
      PSRA_REQUIRE(colon != std::string::npos,
                   "line " + std::to_string(lineno) +
                       ": feature token lacks ':' — " + tokens[t]);
      const std::int64_t one_based = ParseInt(tokens[t].substr(0, colon));
      PSRA_REQUIRE(one_based >= 1, "line " + std::to_string(lineno) +
                                       ": LIBSVM indices are 1-based");
      const auto col = static_cast<std::uint64_t>(one_based - 1);
      PSRA_REQUIRE(cols.empty() || cols.back() < col,
                   "line " + std::to_string(lineno) +
                       ": indices must be strictly increasing");
      cols.push_back(col);
      vals.push_back(ParseDouble(tokens[t].substr(colon + 1)));
      max_col = std::max(max_col, col + 1);
    }
    row_cols.push_back(std::move(cols));
    row_vals.push_back(std::move(vals));

    if (options.max_samples != 0 && labels.size() >= options.max_samples) {
      break;
    }
  }

  std::uint64_t dim = options.feature_dim != 0 ? options.feature_dim : max_col;
  PSRA_REQUIRE(dim >= max_col,
               "feature_dim smaller than max index found in file");
  if (dim == 0) dim = 1;  // empty file: keep a valid 1-column space

  linalg::CsrMatrix::Builder b(dim);
  for (std::size_t r = 0; r < row_cols.size(); ++r) {
    b.AddRow(row_cols[r], row_vals[r]);
  }
  return Dataset(b.Build(), std::move(labels));
}

Dataset ReadLibsvmFile(const std::string& path,
                       const LibsvmReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open LIBSVM file: " + path);
  return ReadLibsvm(in, options);
}

void WriteLibsvm(const Dataset& ds, std::ostream& out) {
  const auto& m = ds.features();
  for (std::uint64_t r = 0; r < m.rows(); ++r) {
    out << (ds.labels()[static_cast<std::size_t>(r)] > 0 ? "+1" : "-1");
    const auto idx = m.RowIndices(r);
    const auto val = m.RowValues(r);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      out << ' ' << (idx[k] + 1) << ':' << FormatDouble(val[k], 9);
    }
    out << '\n';
  }
}

void WriteLibsvmFile(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open file for writing: " + path);
  WriteLibsvm(ds, out);
  PSRA_CHECK(static_cast<bool>(out), "write failed: " + path);
}

}  // namespace psra::data
