// Labeled sparse dataset for binary classification.
//
// Features are a CsrMatrix (rows = samples), labels are ±1. This is the unit
// of data the partitioner splits across workers and the solvers consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace psra::data {

class Dataset {
 public:
  Dataset() = default;

  /// labels.size() must equal features.rows(); labels must be ±1.
  Dataset(linalg::CsrMatrix features, std::vector<double> labels);

  const linalg::CsrMatrix& features() const { return features_; }
  const std::vector<double>& labels() const { return labels_; }

  std::uint64_t num_samples() const { return features_.rows(); }
  std::uint64_t num_features() const { return features_.cols(); }
  std::size_t nnz() const { return features_.nnz(); }

  /// Mean nonzeros per sample.
  double MeanRowNnz() const;

  /// Fraction of +1 labels.
  double PositiveFraction() const;

  /// Samples [begin, end) as a new dataset.
  Dataset SliceSamples(std::uint64_t begin, std::uint64_t end) const;

  /// Widens (or validates) the feature space to `dim` columns so that train
  /// and test partitions share one coordinate system.
  Dataset WithFeatureDim(std::uint64_t dim) const;

  /// Splits into (train, test) by a deterministic prefix cut.
  std::pair<Dataset, Dataset> Split(std::uint64_t train_count) const;

 private:
  linalg::CsrMatrix features_;
  std::vector<double> labels_;
};

/// Summary statistics (Table 1 regeneration).
struct DatasetStats {
  std::string name;
  std::uint64_t dimension = 0;
  std::uint64_t num_samples = 0;
  std::size_t nnz = 0;
  double density = 0.0;
  double mean_row_nnz = 0.0;
  double positive_fraction = 0.0;
};

DatasetStats ComputeStats(const std::string& name, const Dataset& ds);

}  // namespace psra::data
