// Synthetic sparse classification datasets.
//
// The paper evaluates on news20, webspam and url (LIBSVM). Those files are
// not redistributable inside this repo, so we generate datasets with matched
// statistical profiles — dimension, per-sample sparsity, skewed feature
// popularity (a few very common features, a long tail), unit-normalized rows
// and learnable ±1 labels from a sparse ground-truth separator. Profiles are
// scaled down (default 1/100 of the paper's dimensions) so that experiments
// complete in a container; the `scale` knob restores larger sizes.
//
// DESIGN.md §2 documents this substitution.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "support/rng.hpp"

namespace psra::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::uint64_t num_features = 1000;
  std::uint64_t num_train = 1000;
  std::uint64_t num_test = 200;
  /// Mean nonzeros per sample (actual count varies ±50%).
  double mean_row_nnz = 20.0;
  /// Zipf exponent for feature popularity (0 = uniform; ~1 = text-like skew).
  double feature_skew = 1.0;
  /// Number of ground-truth active features (0 = 5% of num_features).
  std::uint64_t true_support = 0;
  /// Probability a label is flipped after generation.
  double label_noise = 0.05;
  std::uint64_t seed = 42;
};

/// Generates train+test with one shared ground truth; returns them split.
struct SyntheticDataset {
  Dataset train;
  Dataset test;
  /// The planted separator (dimension num_features).
  linalg::DenseVector true_weights;
};

SyntheticDataset GenerateSynthetic(const SyntheticSpec& spec);

/// Paper dataset profiles (Table 1), scaled by `scale` in (0, 1].
/// scale = 1.0 reproduces the paper's dimensions / sample counts;
/// scale = 0.01 (default used by benches) keeps the same density profile in
/// a container-sized problem.
SyntheticSpec News20Profile(double scale = 0.01, std::uint64_t seed = 42);
SyntheticSpec WebspamProfile(double scale = 0.01, std::uint64_t seed = 43);
SyntheticSpec UrlProfile(double scale = 0.01, std::uint64_t seed = 44);

/// Tall-shard url variant for the transpose-reduction solver path
/// (DESIGN.md §14): url-style rows over a small feature dimension so worker
/// shards are tall (rows >> cols) and the Gram/direct x-update pays off.
SyntheticSpec UrlTallProfile(double scale = 0.01, std::uint64_t seed = 46);

/// Not from the paper: a 64-feature, many-row profile for O(10k)-worker
/// scale smokes — every worker gets a shard while the algebra stays tiny.
SyntheticSpec SmokeProfile(double scale = 1.0, std::uint64_t seed = 45);

/// Looks up a profile by name: "news20", "webspam", "url" (suffix "_like"
/// accepted) or "smoke". Throws psra::InvalidArgument for unknown names.
SyntheticSpec ProfileByName(const std::string& name, double scale = 0.01);

}  // namespace psra::data
