#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::data {

namespace {

/// Precomputed cumulative Zipf distribution over feature ids.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double exponent) : cdf_(n) {
    PSRA_REQUIRE(n > 0, "empty feature space");
    double acc = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[static_cast<std::size_t>(i)] = acc;
    }
    for (double& v : cdf_) v /= acc;
  }

  std::uint64_t Sample(psra::Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// One sample: draw nnz count, draw distinct popularity ranks (zipf), map
/// them through the id permutation, tf-idf-like positive values,
/// L2-normalize. The permutation spreads popular features across the whole
/// index space, as in real hashed/lexicographic feature spaces — without it
/// every popular feature would land in the first Allreduce block.
linalg::SparseVector MakeRow(std::uint64_t dim, double mean_nnz,
                             const ZipfSampler& zipf,
                             const std::vector<std::uint64_t>& perm,
                             psra::Rng& rng) {
  const auto lo = static_cast<std::uint64_t>(std::max(1.0, mean_nnz * 0.5));
  const auto hi = static_cast<std::uint64_t>(
      std::max<double>(lo, std::min(static_cast<double>(dim), mean_nnz * 1.5)));
  const std::uint64_t target =
      lo + (hi > lo ? rng.NextBelow(hi - lo + 1) : 0);

  std::vector<linalg::SparseVector::Index> idx;
  idx.reserve(static_cast<std::size_t>(target) * 2);
  // Rejection until `target` distinct ids (dim >> target in all profiles).
  std::size_t attempts = 0;
  while (idx.size() < target && attempts < static_cast<std::size_t>(target) * 50 + 100) {
    ++attempts;
    idx.push_back(perm[static_cast<std::size_t>(zipf.Sample(rng))]);
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  }

  std::vector<double> val(idx.size());
  double norm_sq = 0.0;
  for (double& v : val) {
    v = 0.1 + std::fabs(rng.NextGaussian());
    norm_sq += v * v;
  }
  const double inv = norm_sq > 0 ? 1.0 / std::sqrt(norm_sq) : 1.0;
  for (double& v : val) v *= inv;
  return linalg::SparseVector(dim, std::move(idx), std::move(val));
}

}  // namespace

SyntheticDataset GenerateSynthetic(const SyntheticSpec& spec) {
  PSRA_REQUIRE(spec.num_features > 0, "num_features must be positive");
  PSRA_REQUIRE(spec.mean_row_nnz > 0, "mean_row_nnz must be positive");
  PSRA_REQUIRE(spec.label_noise >= 0.0 && spec.label_noise < 0.5,
               "label_noise must be in [0, 0.5)");

  Rng rng(spec.seed);
  const ZipfSampler zipf(spec.num_features, spec.feature_skew);

  // Popularity rank -> feature id: a deterministic shuffle, so popular
  // features are spread over the index space like real datasets.
  std::vector<std::uint64_t> perm(static_cast<std::size_t>(spec.num_features));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  // Plant a sparse separator over the most popular features so the labels
  // are learnable from the sparse rows.
  std::uint64_t support = spec.true_support != 0
                              ? spec.true_support
                              : std::max<std::uint64_t>(1, spec.num_features / 20);
  support = std::min(support, spec.num_features);
  linalg::DenseVector w_true(static_cast<std::size_t>(spec.num_features), 0.0);
  for (std::uint64_t i = 0; i < support; ++i) {
    w_true[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        rng.NextGaussian() * 2.0;
  }

  auto make_split = [&](std::uint64_t n) {
    linalg::CsrMatrix::Builder b(spec.num_features);
    std::vector<double> labels;
    labels.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t s = 0; s < n; ++s) {
      const auto row =
          MakeRow(spec.num_features, spec.mean_row_nnz, zipf, perm, rng);
      double margin = row.Dot(w_true);
      double y = margin >= 0 ? 1.0 : -1.0;
      if (rng.NextBool(spec.label_noise)) y = -y;
      b.AddRow(row);
      labels.push_back(y);
    }
    return Dataset(b.Build(), std::move(labels));
  };

  SyntheticDataset out;
  out.train = make_split(spec.num_train);
  out.test = make_split(spec.num_test);
  out.true_weights = std::move(w_true);
  return out;
}

namespace {
std::uint64_t Scaled(std::uint64_t paper_value, double scale,
                     std::uint64_t minimum) {
  const double v = static_cast<double>(paper_value) * scale;
  return std::max<std::uint64_t>(minimum, static_cast<std::uint64_t>(v));
}
}  // namespace

// Paper Table 1: news20 d=1,355,191 train=16,000 test=3,996. news20 rows are
// tf-idf text documents — very skewed feature popularity, ~450 nnz/row in the
// original; we keep that ratio against the scaled dimension.
SyntheticSpec News20Profile(double scale, std::uint64_t seed) {
  PSRA_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticSpec s;
  s.name = "news20_like";
  s.num_features = Scaled(1355191, scale, 256);
  s.num_train = Scaled(16000, scale, 2048);
  s.num_test = Scaled(3996, scale, 512);
  s.mean_row_nnz = std::max(8.0, 455.0 * std::sqrt(scale));
  s.feature_skew = 1.1;
  s.label_noise = 0.05;
  s.seed = seed;
  return s;
}

// Paper Table 1: webspam d=16,609,143 train=300,000 test=50,000. webspam
// (trigram) is denser per row (~3,700 nnz) with moderate skew.
SyntheticSpec WebspamProfile(double scale, std::uint64_t seed) {
  PSRA_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticSpec s;
  s.name = "webspam_like";
  s.num_features = Scaled(16609143, scale, 512);
  // Sample counts scale harder (0.01 of 300k is still 3k).
  s.num_train = Scaled(300000, scale * 0.1, 2048);
  s.num_test = Scaled(50000, scale * 0.1, 512);
  s.mean_row_nnz = std::max(16.0, 3700.0 * std::sqrt(scale) * 0.25);
  s.feature_skew = 0.8;
  s.label_noise = 0.03;
  s.seed = seed;
  return s;
}

// Paper Table 1: url d=3,231,961 train=2,000,000 test=396,130. url rows have
// ~115 nnz with strong skew (host/day features dominate).
SyntheticSpec UrlProfile(double scale, std::uint64_t seed) {
  PSRA_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticSpec s;
  s.name = "url_like";
  s.num_features = Scaled(3231961, scale, 512);
  s.num_train = Scaled(2000000, scale * 0.02, 2048);
  s.num_test = Scaled(396130, scale * 0.02, 512);
  s.mean_row_nnz = std::max(10.0, 115.0 * std::sqrt(scale));
  s.feature_skew = 1.2;
  s.label_noise = 0.04;
  s.seed = seed;
  return s;
}

// The transpose-reduction scenario (DESIGN.md §14): url-style rows (strong
// popularity skew, ~11 nnz/row) over a deliberately small feature dimension
// with the paper's full url row count scaled directly, so every worker's
// shard is tall (rows >> cols) and the Gram/direct x-update path pays off.
// At the default bench scale (0.01) this is 20,000 x 193 — sixteen workers
// still see a 6.5:1 aspect ratio, comfortably past the kAuto threshold.
SyntheticSpec UrlTallProfile(double scale, std::uint64_t seed) {
  PSRA_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticSpec s;
  s.name = "url_tall";
  s.num_features = Scaled(3231961, scale * 0.006, 128);
  s.num_train = Scaled(2000000, scale, 8192);
  s.num_test = Scaled(396130, scale * 0.1, 512);
  s.mean_row_nnz = std::max(10.0, 115.0 * std::sqrt(scale));
  s.feature_skew = 1.2;
  s.label_noise = 0.04;
  s.seed = seed;
  return s;
}

// Not a paper dataset: a deliberately tiny feature space with a large row
// count, sized so O(10k)-worker smoke runs give every worker a shard while
// the per-iteration algebra stays trivial. Scale only grows the row count.
SyntheticSpec SmokeProfile(double scale, std::uint64_t seed) {
  PSRA_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticSpec s;
  s.name = "smoke";
  s.num_features = 64;
  s.num_train = Scaled(20480, scale, 2048);
  s.num_test = Scaled(1024, scale, 256);
  s.mean_row_nnz = 4.0;
  s.feature_skew = 1.0;
  s.label_noise = 0.05;
  s.seed = seed;
  return s;
}

SyntheticSpec ProfileByName(const std::string& name, double scale) {
  const std::string n = ToLower(name);
  if (n == "news20" || n == "news20_like") return News20Profile(scale);
  if (n == "webspam" || n == "webspam_like") return WebspamProfile(scale);
  if (n == "url" || n == "url_like") return UrlProfile(scale);
  if (n == "url_tall") return UrlTallProfile(scale);
  if (n == "smoke") return SmokeProfile(scale);
  throw InvalidArgument("unknown dataset profile: " + name);
}

}  // namespace psra::data
