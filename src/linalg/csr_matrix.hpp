// Compressed sparse row matrix for sample-major datasets.
//
// Rows are samples, columns are features. Provides the matrix-vector kernels
// the logistic-loss/TRON solver needs: A*x, A^T*v, and row extraction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_ops.hpp"
#include "linalg/sparse_vector.hpp"

namespace psra::linalg {

class SymmetricGram;

class CsrMatrix {
 public:
  using Index = std::uint64_t;

  CsrMatrix() = default;

  /// Builds from CSR arrays. row_ptr has rows+1 entries; within each row the
  /// column indices must be strictly increasing and < cols.
  CsrMatrix(Index rows, Index cols, std::vector<std::size_t> row_ptr,
            std::vector<Index> col_idx, std::vector<double> values);

  /// Incremental builder: append rows one at a time.
  class Builder {
   public:
    explicit Builder(Index cols);
    /// Appends a row given sorted (col, value) pairs.
    void AddRow(std::span<const Index> cols, std::span<const double> values);
    void AddRow(const SparseVector& row);
    CsrMatrix Build();

   private:
    Index cols_;
    std::vector<std::size_t> row_ptr_{0};
    std::vector<Index> col_idx_;
    std::vector<double> values_;
  };

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Density in [0, 1].
  double Density() const;

  std::span<const Index> RowIndices(Index r) const;
  std::span<const double> RowValues(Index r) const;

  /// Row as a SparseVector of dimension cols().
  SparseVector Row(Index r) const;

  /// out = A * x  (out has rows() entries)
  void Multiply(std::span<const double> x, std::span<double> out) const;

  /// out += A^T * v  (out has cols() entries)
  void TransposeMultiplyAdd(std::span<const double> v,
                            std::span<double> out) const;

  /// Dot of row r with dense x.
  double RowDot(Index r, std::span<const double> x) const;

  /// Extracts rows [begin, end) as a new matrix (same column space).
  CsrMatrix SliceRows(Index begin, Index end) const;

  /// Per-column count of nonzero entries (feature frequency).
  std::vector<std::size_t> ColumnNnz() const;

  /// Largest column index + 1 that actually occurs (<= cols()). Cached at
  /// construction — the column array is immutable, so this is O(1).
  Index MaxOccupiedColumn() const { return max_occupied_col_; }

  /// out += A^T A accumulated row by row (transpose reduction,
  /// arXiv:1504.02147): each sparse row contributes its outer product to the
  /// packed lower triangle. `out` must be Reset(cols()) by the caller. Cost
  /// is sum_r nnz(r)^2 — paid once, after which products with A^T A never
  /// touch A again.
  void GramProduct(SymmetricGram& out) const;

  /// out += A^T diag(w) A — the weighted Gram the logistic TRON Hessian
  /// needs (H = A^T D A + rho I). w has rows() entries.
  void GramProduct(std::span<const double> w, SymmetricGram& out) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Index max_occupied_col_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<Index> col_idx_;
  std::vector<double> values_;
};

}  // namespace psra::linalg
