#include "linalg/csr_matrix.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace psra::linalg {

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<std::size_t> row_ptr,
                     std::vector<Index> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  PSRA_REQUIRE(row_ptr_.size() == rows_ + 1, "row_ptr length must be rows+1");
  PSRA_REQUIRE(col_idx_.size() == values_.size(),
               "col/value arrays differ in length");
  PSRA_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == col_idx_.size(),
               "row_ptr endpoints inconsistent with nnz");
  for (Index r = 0; r < rows_; ++r) {
    PSRA_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be monotone");
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      PSRA_REQUIRE(col_idx_[k] < cols_, "column index out of range");
      if (k > row_ptr_[r]) {
        PSRA_REQUIRE(col_idx_[k - 1] < col_idx_[k],
                     "columns within a row must be strictly increasing");
      }
    }
  }
}

CsrMatrix::Builder::Builder(Index cols) : cols_(cols) {}

void CsrMatrix::Builder::AddRow(std::span<const Index> cols,
                                std::span<const double> values) {
  PSRA_REQUIRE(cols.size() == values.size(), "row arrays differ in length");
  for (std::size_t k = 0; k < cols.size(); ++k) {
    PSRA_REQUIRE(cols[k] < cols_, "column index out of range");
    if (k > 0) {
      PSRA_REQUIRE(cols[k - 1] < cols[k],
                   "columns within a row must be strictly increasing");
    }
  }
  col_idx_.insert(col_idx_.end(), cols.begin(), cols.end());
  values_.insert(values_.end(), values.begin(), values.end());
  row_ptr_.push_back(col_idx_.size());
}

void CsrMatrix::Builder::AddRow(const SparseVector& row) {
  PSRA_REQUIRE(row.dim() == cols_, "row dimension mismatch");
  AddRow(row.indices(), row.values());
}

CsrMatrix CsrMatrix::Builder::Build() {
  const Index rows = static_cast<Index>(row_ptr_.size() - 1);
  return CsrMatrix(rows, cols_, std::move(row_ptr_), std::move(col_idx_),
                   std::move(values_));
}

double CsrMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::span<const CsrMatrix::Index> CsrMatrix::RowIndices(Index r) const {
  PSRA_REQUIRE(r < rows_, "row out of range");
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::RowValues(Index r) const {
  PSRA_REQUIRE(r < rows_, "row out of range");
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

SparseVector CsrMatrix::Row(Index r) const {
  const auto idx = RowIndices(r);
  const auto val = RowValues(r);
  return SparseVector(cols_, {idx.begin(), idx.end()},
                      {val.begin(), val.end()});
}

void CsrMatrix::Multiply(std::span<const double> x,
                         std::span<double> out) const {
  PSRA_REQUIRE(x.size() == cols_, "multiply input dimension mismatch");
  PSRA_REQUIRE(out.size() == rows_, "multiply output dimension mismatch");
  for (Index r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
    }
    out[static_cast<std::size_t>(r)] = acc;
  }
}

void CsrMatrix::TransposeMultiplyAdd(std::span<const double> v,
                                     std::span<double> out) const {
  PSRA_REQUIRE(v.size() == rows_, "transpose-multiply input mismatch");
  PSRA_REQUIRE(out.size() == cols_, "transpose-multiply output mismatch");
  for (Index r = 0; r < rows_; ++r) {
    const double vr = v[static_cast<std::size_t>(r)];
    if (vr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out[static_cast<std::size_t>(col_idx_[k])] += vr * values_[k];
    }
  }
}

double CsrMatrix::RowDot(Index r, std::span<const double> x) const {
  PSRA_REQUIRE(r < rows_, "row out of range");
  PSRA_REQUIRE(x.size() == cols_, "row-dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
  }
  return acc;
}

CsrMatrix CsrMatrix::SliceRows(Index begin, Index end) const {
  PSRA_REQUIRE(begin <= end && end <= rows_, "bad row slice range");
  Builder b(cols_);
  for (Index r = begin; r < end; ++r) b.AddRow(RowIndices(r), RowValues(r));
  return b.Build();
}

std::vector<std::size_t> CsrMatrix::ColumnNnz() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(cols_), 0);
  for (Index c : col_idx_) ++counts[static_cast<std::size_t>(c)];
  return counts;
}

CsrMatrix::Index CsrMatrix::MaxOccupiedColumn() const {
  Index m = 0;
  for (Index c : col_idx_) m = std::max(m, c + 1);
  return m;
}

}  // namespace psra::linalg
