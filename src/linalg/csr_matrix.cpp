#include "linalg/csr_matrix.hpp"

#include <algorithm>

#include "linalg/gram.hpp"
#include "support/status.hpp"

namespace psra::linalg {

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<std::size_t> row_ptr,
                     std::vector<Index> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  PSRA_REQUIRE(row_ptr_.size() == rows_ + 1, "row_ptr length must be rows+1");
  PSRA_REQUIRE(col_idx_.size() == values_.size(),
               "col/value arrays differ in length");
  PSRA_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == col_idx_.size(),
               "row_ptr endpoints inconsistent with nnz");
  for (Index r = 0; r < rows_; ++r) {
    PSRA_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be monotone");
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      PSRA_REQUIRE(col_idx_[k] < cols_, "column index out of range");
      if (k > row_ptr_[r]) {
        PSRA_REQUIRE(col_idx_[k - 1] < col_idx_[k],
                     "columns within a row must be strictly increasing");
      }
    }
    // Columns are strictly increasing within a row, so the row's last entry
    // is its maximum; the validation pass doubles as the occupancy scan.
    if (row_ptr_[r + 1] > row_ptr_[r]) {
      max_occupied_col_ =
          std::max(max_occupied_col_, col_idx_[row_ptr_[r + 1] - 1] + 1);
    }
  }
}

CsrMatrix::Builder::Builder(Index cols) : cols_(cols) {}

void CsrMatrix::Builder::AddRow(std::span<const Index> cols,
                                std::span<const double> values) {
  PSRA_REQUIRE(cols.size() == values.size(), "row arrays differ in length");
  for (std::size_t k = 0; k < cols.size(); ++k) {
    PSRA_REQUIRE(cols[k] < cols_, "column index out of range");
    if (k > 0) {
      PSRA_REQUIRE(cols[k - 1] < cols[k],
                   "columns within a row must be strictly increasing");
    }
  }
  col_idx_.insert(col_idx_.end(), cols.begin(), cols.end());
  values_.insert(values_.end(), values.begin(), values.end());
  row_ptr_.push_back(col_idx_.size());
}

void CsrMatrix::Builder::AddRow(const SparseVector& row) {
  PSRA_REQUIRE(row.dim() == cols_, "row dimension mismatch");
  AddRow(row.indices(), row.values());
}

CsrMatrix CsrMatrix::Builder::Build() {
  const Index rows = static_cast<Index>(row_ptr_.size() - 1);
  return CsrMatrix(rows, cols_, std::move(row_ptr_), std::move(col_idx_),
                   std::move(values_));
}

double CsrMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::span<const CsrMatrix::Index> CsrMatrix::RowIndices(Index r) const {
  PSRA_REQUIRE(r < rows_, "row out of range");
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::RowValues(Index r) const {
  PSRA_REQUIRE(r < rows_, "row out of range");
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

SparseVector CsrMatrix::Row(Index r) const {
  const auto idx = RowIndices(r);
  const auto val = RowValues(r);
  return SparseVector(cols_, {idx.begin(), idx.end()},
                      {val.begin(), val.end()});
}

void CsrMatrix::Multiply(std::span<const double> x,
                         std::span<double> out) const {
  PSRA_REQUIRE(x.size() == cols_, "multiply input dimension mismatch");
  PSRA_REQUIRE(out.size() == rows_, "multiply output dimension mismatch");
  const std::size_t* rp = row_ptr_.data();
  const Index* ci = col_idx_.data();
  const double* va = values_.data();
  Index r = 0;
  // Four rows advance in lockstep, one sequential accumulator per row: the
  // four FP-add chains are independent (ILP across rows) while each row still
  // sums its entries in CSR order — bitwise-identical to the scalar loop,
  // which the sweep baselines' convergence counters pin down exactly.
  for (; r + 4 <= rows_; r += 4) {
    std::size_t k0 = rp[r], k1 = rp[r + 1], k2 = rp[r + 2], k3 = rp[r + 3];
    const std::size_t e0 = rp[r + 1], e1 = rp[r + 2], e2 = rp[r + 3],
                      e3 = rp[r + 4];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    while (k0 < e0 && k1 < e1 && k2 < e2 && k3 < e3) {
      a0 += va[k0] * x[static_cast<std::size_t>(ci[k0])];
      a1 += va[k1] * x[static_cast<std::size_t>(ci[k1])];
      a2 += va[k2] * x[static_cast<std::size_t>(ci[k2])];
      a3 += va[k3] * x[static_cast<std::size_t>(ci[k3])];
      ++k0;
      ++k1;
      ++k2;
      ++k3;
    }
    for (; k0 < e0; ++k0) a0 += va[k0] * x[static_cast<std::size_t>(ci[k0])];
    for (; k1 < e1; ++k1) a1 += va[k1] * x[static_cast<std::size_t>(ci[k1])];
    for (; k2 < e2; ++k2) a2 += va[k2] * x[static_cast<std::size_t>(ci[k2])];
    for (; k3 < e3; ++k3) a3 += va[k3] * x[static_cast<std::size_t>(ci[k3])];
    out[static_cast<std::size_t>(r)] = a0;
    out[static_cast<std::size_t>(r + 1)] = a1;
    out[static_cast<std::size_t>(r + 2)] = a2;
    out[static_cast<std::size_t>(r + 3)] = a3;
  }
  for (; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += va[k] * x[static_cast<std::size_t>(ci[k])];
    }
    out[static_cast<std::size_t>(r)] = acc;
  }
}

void CsrMatrix::TransposeMultiplyAdd(std::span<const double> v,
                                     std::span<double> out) const {
  PSRA_REQUIRE(v.size() == rows_, "transpose-multiply input mismatch");
  PSRA_REQUIRE(out.size() == cols_, "transpose-multiply output mismatch");
  const std::size_t* rp = row_ptr_.data();
  const Index* ci = col_idx_.data();
  const double* va = values_.data();
  for (Index r = 0; r < rows_; ++r) {
    const double vr = v[static_cast<std::size_t>(r)];
    if (vr == 0.0) continue;
    // Columns within a row are strictly increasing, so the four scatters per
    // block hit distinct targets: unrolling changes no accumulation order,
    // only exposes independent add chains.
    std::size_t k = rp[r];
    const std::size_t end = rp[r + 1];
    for (; k + 4 <= end; k += 4) {
      out[static_cast<std::size_t>(ci[k])] += vr * va[k];
      out[static_cast<std::size_t>(ci[k + 1])] += vr * va[k + 1];
      out[static_cast<std::size_t>(ci[k + 2])] += vr * va[k + 2];
      out[static_cast<std::size_t>(ci[k + 3])] += vr * va[k + 3];
    }
    for (; k < end; ++k) {
      out[static_cast<std::size_t>(ci[k])] += vr * va[k];
    }
  }
}

double CsrMatrix::RowDot(Index r, std::span<const double> x) const {
  PSRA_REQUIRE(r < rows_, "row out of range");
  PSRA_REQUIRE(x.size() == cols_, "row-dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
  }
  return acc;
}

CsrMatrix CsrMatrix::SliceRows(Index begin, Index end) const {
  PSRA_REQUIRE(begin <= end && end <= rows_, "bad row slice range");
  Builder b(cols_);
  for (Index r = begin; r < end; ++r) b.AddRow(RowIndices(r), RowValues(r));
  return b.Build();
}

std::vector<std::size_t> CsrMatrix::ColumnNnz() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(cols_), 0);
  for (Index c : col_idx_) ++counts[static_cast<std::size_t>(c)];
  return counts;
}

void CsrMatrix::GramProduct(SymmetricGram& out) const {
  PSRA_REQUIRE(out.dim() == cols_, "gram-product dimension mismatch");
  for (Index r = 0; r < rows_; ++r) {
    out.AddScaledOuter(RowIndices(r), RowValues(r), 1.0);
  }
}

void CsrMatrix::GramProduct(std::span<const double> w,
                            SymmetricGram& out) const {
  PSRA_REQUIRE(w.size() == rows_, "gram-product weight size mismatch");
  PSRA_REQUIRE(out.dim() == cols_, "gram-product dimension mismatch");
  for (Index r = 0; r < rows_; ++r) {
    out.AddScaledOuter(RowIndices(r), RowValues(r),
                       w[static_cast<std::size_t>(r)]);
  }
}

}  // namespace psra::linalg
