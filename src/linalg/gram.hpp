// Packed symmetric Gram container + Cholesky factorization.
//
// SymmetricGram stores a d x d symmetric matrix as its lower triangle in
// packed row-major order (row i holds i+1 entries at offset i(i+1)/2), the
// shape produced by transpose-reduction local solvers: A^T A (or A^T D A)
// accumulated once from a CSR shard, then reused by every Hessian-vector
// product or factored by PackedCholesky for direct x-updates
// (DESIGN.md §14). Storage is recycled across Reset calls, so a warm
// container performs no allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_ops.hpp"

namespace psra::linalg {

class SymmetricGram {
 public:
  SymmetricGram() = default;

  /// Sizes the container for a `dim` x `dim` matrix and zeroes it. The
  /// packed buffer only grows; a warm Reset is a memset, not an allocation.
  void Reset(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::size_t packed_size() const { return dim_ * (dim_ + 1) / 2; }

  /// Element access (i >= j enforced by the packed layout; the symmetric
  /// mirror is implied).
  double At(std::size_t i, std::size_t j) const;

  /// G += w * a a^T for a sparse vector a given as sorted (cols, vals).
  /// Only the lower triangle is touched; cols must be strictly increasing.
  void AddScaledOuter(std::span<const std::uint64_t> cols,
                      std::span<const double> vals, double w);

  /// G[i][i] += v for every i.
  void AddDiagonal(double v);

  /// out = G x (full symmetric product; out is overwritten). One pass over
  /// the packed triangle: each row contributes its dot to out[i] and its
  /// scaled mirror to out[j<i], so every stored element is read once.
  void Multiply(std::span<const double> x, std::span<double> out) const;

  std::span<const double> packed() const { return packed_; }

 private:
  std::size_t dim_ = 0;
  std::vector<double> packed_;
};

/// Cholesky factor of a shifted SymmetricGram: L L^T = G + shift * I.
/// Factor and Solve recycle internal storage (no allocations when warm), so
/// a per-worker instance keeps the ADMM x-update allocation-free.
class PackedCholesky {
 public:
  PackedCholesky() = default;

  /// Factors G + shift * I. Returns false (leaving the factor unusable) if
  /// the shifted matrix is not numerically positive definite; with any
  /// shift > 0 this only happens on pathological input.
  bool Factor(const SymmetricGram& g, double shift);

  std::size_t dim() const { return dim_; }
  bool ok() const { return ok_; }

  /// x = (L L^T)^{-1} b. Requires a successful Factor.
  void Solve(std::span<const double> b, std::span<double> x) const;

 private:
  std::size_t dim_ = 0;
  bool ok_ = false;
  std::vector<double> factor_;  // packed lower triangle of L
};

}  // namespace psra::linalg
