#include "linalg/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace psra::linalg {

SparseVector::SparseVector(Index dim, std::vector<Index> indices,
                           std::vector<double> values)
    : dim_(dim), indices_(std::move(indices)), values_(std::move(values)) {
  PSRA_REQUIRE(indices_.size() == values_.size(),
               "index/value arrays differ in length");
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    PSRA_REQUIRE(indices_[i] < dim_, "sparse index out of range");
    if (i > 0) {
      PSRA_REQUIRE(indices_[i - 1] < indices_[i],
                   "sparse indices must be strictly increasing");
    }
  }
}

SparseVector SparseVector::FromDense(std::span<const double> dense,
                                     double tol) {
  SparseVector out;
  out.AssignFromDense(dense, tol);
  return out;
}

void SparseVector::AssignFromDense(std::span<const double> dense, double tol) {
  dim_ = static_cast<Index>(dense.size());
  indices_.clear();
  values_.clear();
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (std::fabs(dense[i]) > tol) {
      indices_.push_back(static_cast<Index>(i));
      values_.push_back(dense[i]);
    }
  }
}

DenseVector SparseVector::ToDense() const {
  DenseVector out;
  ToDense(out);
  return out;
}

void SparseVector::ToDense(DenseVector& out) const {
  out.assign(static_cast<std::size_t>(dim_), 0.0);
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    out[static_cast<std::size_t>(indices_[k])] = values_[k];
  }
}

void SparseVector::AddToDense(std::span<double> dense, double scale) const {
  PSRA_REQUIRE(dense.size() == dim_, "dense accumulator dimension mismatch");
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    dense[static_cast<std::size_t>(indices_[k])] += scale * values_[k];
  }
}

double SparseVector::At(Index i) const {
  PSRA_REQUIRE(i < dim_, "index out of range");
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), i);
  if (it == indices_.end() || *it != i) return 0.0;
  return values_[static_cast<std::size_t>(it - indices_.begin())];
}

SparseVector SparseVector::Slice(Index begin, Index end) const {
  SparseVector out;
  SliceInto(begin, end, out);
  return out;
}

void SparseVector::SliceInto(Index begin, Index end, SparseVector& out) const {
  PSRA_REQUIRE(begin <= end && end <= dim_, "bad slice range");
  PSRA_REQUIRE(&out != this, "SliceInto must not alias its source");
  const auto lo = std::lower_bound(indices_.begin(), indices_.end(), begin);
  const auto hi = std::lower_bound(lo, indices_.end(), end);
  out.dim_ = dim_;
  out.indices_.assign(lo, hi);
  out.values_.assign(values_.begin() + (lo - indices_.begin()),
                     values_.begin() + (hi - indices_.begin()));
}

std::size_t SparseVector::CountInRange(Index begin, Index end) const {
  PSRA_REQUIRE(begin <= end && end <= dim_, "bad count range");
  const auto lo = std::lower_bound(indices_.begin(), indices_.end(), begin);
  const auto hi = std::lower_bound(lo, indices_.end(), end);
  return static_cast<std::size_t>(hi - lo);
}

void SparseVector::AddInPlace(const SparseVector& other, double scale) {
  *this = Sum(*this, [&] {
    SparseVector scaled = other;
    scaled.Scale(scale);
    return scaled;
  }());
}

void SparseVector::Prune(double tol) {
  std::size_t w = 0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    if (std::fabs(values_[k]) > tol) {
      indices_[w] = indices_[k];
      values_[w] = values_[k];
      ++w;
    }
  }
  indices_.resize(w);
  values_.resize(w);
}

void SparseVector::Scale(double alpha) {
  for (double& v : values_) v *= alpha;
}

double SparseVector::Dot(std::span<const double> dense) const {
  PSRA_REQUIRE(dense.size() == dim_, "dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    acc += values_[k] * dense[static_cast<std::size_t>(indices_[k])];
  }
  return acc;
}

double SparseVector::Norm2() const {
  double acc = 0.0;
  for (double v : values_) acc += v * v;
  return std::sqrt(acc);
}

SparseVector SparseVector::Sum(const SparseVector& a, const SparseVector& b) {
  SparseVector out;
  SumInto(a, b, out);
  return out;
}

void SparseVector::SumInto(const SparseVector& a, const SparseVector& b,
                           SparseVector& out) {
  PSRA_REQUIRE(a.dim_ == b.dim_ || a.dim_ == 0 || b.dim_ == 0,
               "sum dimension mismatch");
  PSRA_REQUIRE(&out != &a && &out != &b, "SumInto must not alias its inputs");
  out.dim_ = std::max(a.dim_, b.dim_);
  out.indices_.clear();
  out.values_.clear();
  out.indices_.reserve(a.nnz() + b.nnz());
  out.values_.reserve(a.nnz() + b.nnz());
  std::size_t i = 0, j = 0;
  while (i < a.nnz() || j < b.nnz()) {
    if (j >= b.nnz() || (i < a.nnz() && a.indices_[i] < b.indices_[j])) {
      out.indices_.push_back(a.indices_[i]);
      out.values_.push_back(a.values_[i]);
      ++i;
    } else if (i >= a.nnz() || b.indices_[j] < a.indices_[i]) {
      out.indices_.push_back(b.indices_[j]);
      out.values_.push_back(b.values_[j]);
      ++j;
    } else {
      out.indices_.push_back(a.indices_[i]);
      out.values_.push_back(a.values_[i] + b.values_[j]);
      ++i;
      ++j;
    }
  }
}

SparseVector SparseVector::ConcatDisjoint(std::span<const SparseVector> parts) {
  SparseVector out;
  ConcatDisjointInto(parts, out);
  return out;
}

void SparseVector::ConcatDisjointInto(std::span<const SparseVector> parts,
                                      SparseVector& out) {
  out.dim_ = 0;
  out.indices_.clear();
  out.values_.clear();
  for (const auto& p : parts) {
    PSRA_REQUIRE(&p != &out, "ConcatDisjointInto must not alias a part");
    if (p.dim_ == 0) continue;
    if (out.dim_ == 0) out.dim_ = p.dim_;
    PSRA_REQUIRE(out.dim_ == p.dim_, "concat dimension mismatch");
    if (!p.indices_.empty() && !out.indices_.empty()) {
      PSRA_REQUIRE(out.indices_.back() < p.indices_.front(),
                   "concat parts must be disjoint and ascending");
    }
    out.indices_.insert(out.indices_.end(), p.indices_.begin(),
                        p.indices_.end());
    out.values_.insert(out.values_.end(), p.values_.begin(), p.values_.end());
  }
}

}  // namespace psra::linalg
