#include "linalg/gram.hpp"

#include <cmath>
#include <cstring>

#include "support/status.hpp"

namespace psra::linalg {

void SymmetricGram::Reset(std::size_t dim) {
  dim_ = dim;
  const std::size_t packed = dim * (dim + 1) / 2;
  if (packed_.size() < packed) {
    packed_.resize(packed);
  }
  std::memset(packed_.data(), 0, packed * sizeof(double));
}

double SymmetricGram::At(std::size_t i, std::size_t j) const {
  if (j > i) std::swap(i, j);
  PSRA_REQUIRE(i < dim_, "SymmetricGram::At out of range");
  return packed_[i * (i + 1) / 2 + j];
}

void SymmetricGram::AddScaledOuter(std::span<const std::uint64_t> cols,
                                   std::span<const double> vals, double w) {
  PSRA_REQUIRE(cols.size() == vals.size(),
             "SymmetricGram::AddScaledOuter cols/vals size mismatch");
  const std::size_t nnz = cols.size();
  double* packed = packed_.data();
  for (std::size_t a = 0; a < nnz; ++a) {
    const std::size_t ca = static_cast<std::size_t>(cols[a]);
    const double wa = w * vals[a];
    double* row = packed + ca * (ca + 1) / 2;
    // cols are strictly increasing, so every cols[b] with b <= a lands in
    // row ca of the lower triangle.
    for (std::size_t b = 0; b <= a; ++b) {
      row[cols[b]] += wa * vals[b];
    }
  }
}

void SymmetricGram::AddDiagonal(double v) {
  double* packed = packed_.data();
  for (std::size_t i = 0; i < dim_; ++i) {
    packed[i * (i + 1) / 2 + i] += v;
  }
}

void SymmetricGram::Multiply(std::span<const double> x,
                             std::span<double> out) const {
  PSRA_REQUIRE(x.size() == dim_ && out.size() == dim_,
             "SymmetricGram::Multiply size mismatch");
  const double* packed = packed_.data();
  // Row i both gathers its dot product into out[i] and scatters the mirrored
  // upper-triangle contribution x[i] * G[i][j] into out[j < i]. out[j] is
  // assigned at row j before any row i > j scatters into it, so no pre-zero
  // pass is needed and each stored element is read exactly once.
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* row = packed + i * (i + 1) / 2;
    const double xi = x[i];
    double acc = 0.0;
    for (std::size_t j = 0; j < i; ++j) {
      acc += row[j] * x[j];
      out[j] += row[j] * xi;
    }
    out[i] = acc + row[i] * xi;
  }
}

bool PackedCholesky::Factor(const SymmetricGram& g, double shift) {
  dim_ = g.dim();
  ok_ = false;
  const std::size_t packed = dim_ * (dim_ + 1) / 2;
  if (factor_.size() < packed) {
    factor_.resize(packed);
  }
  std::memcpy(factor_.data(), g.packed().data(), packed * sizeof(double));
  double* f = factor_.data();

  for (std::size_t j = 0; j < dim_; ++j) {
    double* row_j = f + j * (j + 1) / 2;
    double diag = row_j[j] + shift;
    for (std::size_t k = 0; k < j; ++k) {
      diag -= row_j[k] * row_j[k];
    }
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return false;
    }
    const double ljj = std::sqrt(diag);
    row_j[j] = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < dim_; ++i) {
      double* row_i = f + i * (i + 1) / 2;
      double sum = row_i[j];
      // Both rows are contiguous in the packed layout, so this dot product
      // streams two dense prefixes.
      for (std::size_t k = 0; k < j; ++k) {
        sum -= row_i[k] * row_j[k];
      }
      row_i[j] = sum * inv;
    }
  }
  ok_ = true;
  return true;
}

void PackedCholesky::Solve(std::span<const double> b,
                           std::span<double> x) const {
  PSRA_REQUIRE(ok_, "PackedCholesky::Solve without a successful Factor");
  PSRA_REQUIRE(b.size() == dim_ && x.size() == dim_,
             "PackedCholesky::Solve size mismatch");
  const double* f = factor_.data();
  // Forward substitution L y = b (y lives in x).
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* row = f + i * (i + 1) / 2;
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= row[k] * x[k];
    }
    x[i] = acc / row[i];
  }
  // Backward substitution L^T x = y, expressed as a column sweep so every
  // memory access stays on the contiguous packed rows.
  for (std::size_t jj = dim_; jj-- > 0;) {
    const double* row = f + jj * (jj + 1) / 2;
    const double xj = x[jj] / row[jj];
    x[jj] = xj;
    for (std::size_t i = 0; i < jj; ++i) {
      x[i] -= row[i] * xj;
    }
  }
}

}  // namespace psra::linalg
