// Sparse vector in coordinate (index, value) form with sorted unique indices.
//
// This is the representation the PSR-Allreduce cost analysis is written in:
// transmitting one element costs theta_s = (value_bytes + index_bytes) / B.
// The collectives operate on block slices of these vectors, so the type
// supports cheap range extraction and merging.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_ops.hpp"

namespace psra::linalg {

class SparseVector {
 public:
  using Index = std::uint64_t;

  SparseVector() = default;

  /// Constructs from parallel arrays; indices must be strictly increasing and
  /// < dim. Zero values are kept only if `keep_zeros`.
  SparseVector(Index dim, std::vector<Index> indices,
               std::vector<double> values);

  /// Builds from a dense vector, dropping entries with |v| <= tol.
  static SparseVector FromDense(std::span<const double> dense,
                                double tol = 0.0);

  /// In-place FromDense: overwrites this vector with the sparse form of
  /// `dense`, reusing the existing index/value storage. Steady-state
  /// allocation-free once capacity has grown to the working nnz.
  void AssignFromDense(std::span<const double> dense, double tol = 0.0);

  /// Expands to a dense vector of size dim().
  DenseVector ToDense() const;

  /// In-place ToDense: resizes `out` to dim(), zero-fills it and scatters
  /// the stored entries. Allocation-free when out.capacity() >= dim().
  void ToDense(DenseVector& out) const;

  /// Scatter-adds this vector into a dense accumulator (size must be dim()).
  void AddToDense(std::span<double> dense, double scale = 1.0) const;

  Index dim() const { return dim_; }
  std::size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  std::span<const Index> indices() const { return indices_; }
  std::span<const double> values() const { return values_; }

  /// Value at logical position i (O(log nnz)).
  double At(Index i) const;

  /// Extracts the sub-vector with indices in [begin, end); indices in the
  /// result stay in the *original* coordinate system and dim() is preserved,
  /// so slices of different blocks can be merged back together.
  SparseVector Slice(Index begin, Index end) const;

  /// In-place Slice: writes the sub-vector into `out`, reusing its storage.
  /// `out` must not alias this vector.
  void SliceInto(Index begin, Index end, SparseVector& out) const;

  /// Number of stored entries whose index lies in [begin, end).
  std::size_t CountInRange(Index begin, Index end) const;

  /// this += other (indices unioned, values summed). Entries that cancel to
  /// exactly zero are kept; call Prune to drop them.
  void AddInPlace(const SparseVector& other, double scale = 1.0);

  /// Removes entries with |value| <= tol.
  void Prune(double tol = 0.0);

  void Scale(double alpha);

  double Dot(std::span<const double> dense) const;

  double Norm2() const;

  /// Returns a + b.
  static SparseVector Sum(const SparseVector& a, const SparseVector& b);

  /// In-place Sum: out = a + b, reusing out's storage. `out` must not alias
  /// `a` or `b`. Produces exactly the same entries as Sum().
  static void SumInto(const SparseVector& a, const SparseVector& b,
                      SparseVector& out);

  /// Concatenates sparse slices (disjoint, ascending index ranges) into one
  /// vector. Dimensions must agree.
  static SparseVector ConcatDisjoint(std::span<const SparseVector> parts);

  /// In-place ConcatDisjoint, reusing out's storage. `out` must not alias
  /// any part.
  static void ConcatDisjointInto(std::span<const SparseVector> parts,
                                 SparseVector& out);

  bool operator==(const SparseVector& other) const = default;

 private:
  Index dim_ = 0;
  std::vector<Index> indices_;  // strictly increasing
  std::vector<double> values_;  // parallel to indices_
};

}  // namespace psra::linalg
