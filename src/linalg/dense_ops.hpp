// Dense vector kernels.
//
// DenseVector is a plain std::vector<double>; these free functions provide the
// BLAS-1 style operations the solvers and collectives need. All functions
// validate dimensions via PSRA_REQUIRE.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace psra::linalg {

using DenseVector = std::vector<double>;

/// y += alpha * x
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

// Fused BLAS-1 kernels (DESIGN.md §14). Each combines an update with the
// reduction the solver needs next, so the vector is streamed once instead of
// twice. All reductions use the same four-lane accumulator order as Dot, so
// results are deterministic and identical to the unfused
// update-then-reduce pair the TRON inner loop used to hand-roll.

/// y += alpha * x, returning ||y||^2 (four-lane order).
double AxpyNormSq(double alpha, std::span<const double> x,
                  std::span<double> y);

/// y = x + beta * y, returning ||y||^2 (four-lane order). This is the CG
/// direction update p = r + beta p.
double XpayNormSq(double beta, std::span<const double> x, std::span<double> y);

/// dst = src, fused with ||v||^2 over a third vector (four-lane order).
/// TRON's accept-copy: x = x_new while re-measuring the new gradient norm.
double CopyNormSq(std::span<const double> src, std::span<double> dst,
                  std::span<const double> v);

// Register-blocked dense matrix kernels over row-major storage. Four rows
// travel together so the FP adds of independent rows overlap; within each
// row the accumulation order is the canonical four-lane order, making both
// kernels deterministic.

/// y = A x for row-major A (rows x cols).
void Gemv(std::span<const double> a, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<double> y);

/// y = A^T x for row-major A (rows x cols); y has cols entries.
void GemvT(std::span<const double> a, std::size_t rows, std::size_t cols,
           std::span<const double> x, std::span<double> y);

/// x *= alpha
void Scale(double alpha, std::span<double> x);

/// <x, y>
double Dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2
double Norm2(std::span<const double> x);

/// ||x||_1
double Norm1(std::span<const double> x);

/// max_i |x_i|
double NormInf(std::span<const double> x);

/// ||x - y||_2
double DistanceL2(std::span<const double> x, std::span<const double> y);

/// out = x + y (resizes out)
void Add(std::span<const double> x, std::span<const double> y,
         DenseVector& out);

/// out = x - y (resizes out)
void Subtract(std::span<const double> x, std::span<const double> y,
              DenseVector& out);

/// x := 0
void SetZero(std::span<double> x);

/// Elementwise soft-threshold: out_i = sign(x_i) * max(|x_i| - kappa, 0).
/// This is the proximal operator of kappa * ||.||_1.
void SoftThreshold(std::span<const double> x, double kappa,
                   std::span<double> out);

/// Number of entries with |x_i| > tol.
std::size_t CountNonzeros(std::span<const double> x, double tol = 0.0);

/// Rounds every entry through IEEE single precision (mixed-precision
/// communication: values are transmitted as fp32 and widened back).
void RoundToFloat(std::span<double> x);

}  // namespace psra::linalg
