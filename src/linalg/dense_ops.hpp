// Dense vector kernels.
//
// DenseVector is a plain std::vector<double>; these free functions provide the
// BLAS-1 style operations the solvers and collectives need. All functions
// validate dimensions via PSRA_REQUIRE.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace psra::linalg {

using DenseVector = std::vector<double>;

/// y += alpha * x
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void Scale(double alpha, std::span<double> x);

/// <x, y>
double Dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2
double Norm2(std::span<const double> x);

/// ||x||_1
double Norm1(std::span<const double> x);

/// max_i |x_i|
double NormInf(std::span<const double> x);

/// ||x - y||_2
double DistanceL2(std::span<const double> x, std::span<const double> y);

/// out = x + y (resizes out)
void Add(std::span<const double> x, std::span<const double> y,
         DenseVector& out);

/// out = x - y (resizes out)
void Subtract(std::span<const double> x, std::span<const double> y,
              DenseVector& out);

/// x := 0
void SetZero(std::span<double> x);

/// Elementwise soft-threshold: out_i = sign(x_i) * max(|x_i| - kappa, 0).
/// This is the proximal operator of kappa * ||.||_1.
void SoftThreshold(std::span<const double> x, double kappa,
                   std::span<double> out);

/// Number of entries with |x_i| > tol.
std::size_t CountNonzeros(std::span<const double> x, double tol = 0.0);

/// Rounds every entry through IEEE single precision (mixed-precision
/// communication: values are transmitted as fp32 and widened back).
void RoundToFloat(std::span<double> x);

}  // namespace psra::linalg
