#include "linalg/dense_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace psra::linalg {

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double AxpyNormSq(double alpha, std::span<const double> x,
                  std::span<double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "axpy-normsq dimension mismatch");
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double t0 = y[i] + alpha * x[i];
    const double t1 = y[i + 1] + alpha * x[i + 1];
    const double t2 = y[i + 2] + alpha * x[i + 2];
    const double t3 = y[i + 3] + alpha * x[i + 3];
    y[i] = t0;
    y[i + 1] = t1;
    y[i + 2] = t2;
    y[i + 3] = t3;
    a0 += t0 * t0;
    a1 += t1 * t1;
    a2 += t2 * t2;
    a3 += t3 * t3;
  }
  for (; i < n; ++i) {
    const double t = y[i] + alpha * x[i];
    y[i] = t;
    a0 += t * t;
  }
  return (a0 + a1) + (a2 + a3);
}

double XpayNormSq(double beta, std::span<const double> x,
                  std::span<double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "xpay-normsq dimension mismatch");
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double t0 = x[i] + beta * y[i];
    const double t1 = x[i + 1] + beta * y[i + 1];
    const double t2 = x[i + 2] + beta * y[i + 2];
    const double t3 = x[i + 3] + beta * y[i + 3];
    y[i] = t0;
    y[i + 1] = t1;
    y[i + 2] = t2;
    y[i + 3] = t3;
    a0 += t0 * t0;
    a1 += t1 * t1;
    a2 += t2 * t2;
    a3 += t3 * t3;
  }
  for (; i < n; ++i) {
    const double t = x[i] + beta * y[i];
    y[i] = t;
    a0 += t * t;
  }
  return (a0 + a1) + (a2 + a3);
}

double CopyNormSq(std::span<const double> src, std::span<double> dst,
                  std::span<const double> v) {
  PSRA_REQUIRE(src.size() == dst.size() && src.size() == v.size(),
               "copy-normsq dimension mismatch");
  const std::size_t n = src.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = src[i];
    dst[i + 1] = src[i + 1];
    dst[i + 2] = src[i + 2];
    dst[i + 3] = src[i + 3];
    a0 += v[i] * v[i];
    a1 += v[i + 1] * v[i + 1];
    a2 += v[i + 2] * v[i + 2];
    a3 += v[i + 3] * v[i + 3];
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
    a0 += v[i] * v[i];
  }
  return (a0 + a1) + (a2 + a3);
}

void Gemv(std::span<const double> a, std::size_t rows, std::size_t cols,
          std::span<const double> x, std::span<double> y) {
  PSRA_REQUIRE(a.size() == rows * cols, "gemv matrix size mismatch");
  PSRA_REQUIRE(x.size() == cols && y.size() == rows,
               "gemv vector size mismatch");
  std::size_t r = 0;
  // Four rows in lockstep: eight independent accumulator chains (two per
  // row) hide FP-add latency while x is read once per block.
  for (; r + 4 <= rows; r += 4) {
    const double* a0 = a.data() + r * cols;
    const double* a1 = a0 + cols;
    const double* a2 = a1 + cols;
    const double* a3 = a2 + cols;
    double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
    double s20 = 0.0, s21 = 0.0, s30 = 0.0, s31 = 0.0;
    std::size_t j = 0;
    for (; j + 2 <= cols; j += 2) {
      const double x0 = x[j];
      const double x1 = x[j + 1];
      s00 += a0[j] * x0;
      s01 += a0[j + 1] * x1;
      s10 += a1[j] * x0;
      s11 += a1[j + 1] * x1;
      s20 += a2[j] * x0;
      s21 += a2[j + 1] * x1;
      s30 += a3[j] * x0;
      s31 += a3[j + 1] * x1;
    }
    for (; j < cols; ++j) {
      const double xj = x[j];
      s00 += a0[j] * xj;
      s10 += a1[j] * xj;
      s20 += a2[j] * xj;
      s30 += a3[j] * xj;
    }
    y[r] = s00 + s01;
    y[r + 1] = s10 + s11;
    y[r + 2] = s20 + s21;
    y[r + 3] = s30 + s31;
  }
  for (; r < rows; ++r) {
    const double* row = a.data() + r * cols;
    double s0 = 0.0, s1 = 0.0;
    std::size_t j = 0;
    for (; j + 2 <= cols; j += 2) {
      s0 += row[j] * x[j];
      s1 += row[j + 1] * x[j + 1];
    }
    for (; j < cols; ++j) s0 += row[j] * x[j];
    y[r] = s0 + s1;
  }
}

void GemvT(std::span<const double> a, std::size_t rows, std::size_t cols,
           std::span<const double> x, std::span<double> y) {
  PSRA_REQUIRE(a.size() == rows * cols, "gemv-t matrix size mismatch");
  PSRA_REQUIRE(x.size() == rows && y.size() == cols,
               "gemv-t vector size mismatch");
  SetZero(y);
  std::size_t r = 0;
  // Four rows per sweep: each output element receives one pairwise-combined
  // contribution per block, a fixed function of the row index, so the
  // result is deterministic.
  for (; r + 4 <= rows; r += 4) {
    const double* a0 = a.data() + r * cols;
    const double* a1 = a0 + cols;
    const double* a2 = a1 + cols;
    const double* a3 = a2 + cols;
    const double x0 = x[r];
    const double x1 = x[r + 1];
    const double x2 = x[r + 2];
    const double x3 = x[r + 3];
    for (std::size_t j = 0; j < cols; ++j) {
      y[j] += (x0 * a0[j] + x1 * a1[j]) + (x2 * a2[j] + x3 * a3[j]);
    }
  }
  for (; r < rows; ++r) {
    const double* row = a.data() + r * cols;
    const double xr = x[r];
    for (std::size_t j = 0; j < cols; ++j) y[j] += xr * row[j];
  }
}

// Dot/Norm2/DistanceL2 accumulate in four independent lanes: a single
// accumulator serializes on floating-point add latency, which makes these
// reductions ~4x slower than the loads themselves. The lane assignment is a
// fixed function of the element index, so the result is deterministic (it is
// just a different — equally valid — summation order).
double Dot(std::span<const double> x, std::span<const double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "dot dimension mismatch");
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) a0 += x[i] * y[i];
  return (a0 + a1) + (a2 + a3);
}

double Norm2(std::span<const double> x) {
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * x[i];
    a1 += x[i + 1] * x[i + 1];
    a2 += x[i + 2] * x[i + 2];
    a3 += x[i + 3] * x[i + 3];
  }
  for (; i < n; ++i) a0 += x[i] * x[i];
  return std::sqrt((a0 + a1) + (a2 + a3));
}

double Norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::fabs(v);
  return acc;
}

double NormInf(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::fabs(v));
  return acc;
}

double DistanceL2(std::span<const double> x, std::span<const double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "distance dimension mismatch");
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    a0 += d * d;
  }
  return std::sqrt((a0 + a1) + (a2 + a3));
}

void Add(std::span<const double> x, std::span<const double> y,
         DenseVector& out) {
  PSRA_REQUIRE(x.size() == y.size(), "add dimension mismatch");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
}

void Subtract(std::span<const double> x, std::span<const double> y,
              DenseVector& out) {
  PSRA_REQUIRE(x.size() == y.size(), "subtract dimension mismatch");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

void SetZero(std::span<double> x) { std::fill(x.begin(), x.end(), 0.0); }

void SoftThreshold(std::span<const double> x, double kappa,
                   std::span<double> out) {
  PSRA_REQUIRE(x.size() == out.size(), "soft-threshold dimension mismatch");
  PSRA_REQUIRE(kappa >= 0.0, "soft-threshold kappa must be non-negative");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = x[i];
    if (v > kappa) {
      out[i] = v - kappa;
    } else if (v < -kappa) {
      out[i] = v + kappa;
    } else {
      out[i] = 0.0;
    }
  }
}

void RoundToFloat(std::span<double> x) {
  for (double& v : x) v = static_cast<double>(static_cast<float>(v));
}

std::size_t CountNonzeros(std::span<const double> x, double tol) {
  std::size_t n = 0;
  for (double v : x) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

}  // namespace psra::linalg
