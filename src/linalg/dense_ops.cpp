#include "linalg/dense_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace psra::linalg {

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

// Dot/Norm2/DistanceL2 accumulate in four independent lanes: a single
// accumulator serializes on floating-point add latency, which makes these
// reductions ~4x slower than the loads themselves. The lane assignment is a
// fixed function of the element index, so the result is deterministic (it is
// just a different — equally valid — summation order).
double Dot(std::span<const double> x, std::span<const double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "dot dimension mismatch");
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) a0 += x[i] * y[i];
  return (a0 + a1) + (a2 + a3);
}

double Norm2(std::span<const double> x) {
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * x[i];
    a1 += x[i + 1] * x[i + 1];
    a2 += x[i + 2] * x[i + 2];
    a3 += x[i + 3] * x[i + 3];
  }
  for (; i < n; ++i) a0 += x[i] * x[i];
  return std::sqrt((a0 + a1) + (a2 + a3));
}

double Norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::fabs(v);
  return acc;
}

double NormInf(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::fabs(v));
  return acc;
}

double DistanceL2(std::span<const double> x, std::span<const double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "distance dimension mismatch");
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    a0 += d * d;
  }
  return std::sqrt((a0 + a1) + (a2 + a3));
}

void Add(std::span<const double> x, std::span<const double> y,
         DenseVector& out) {
  PSRA_REQUIRE(x.size() == y.size(), "add dimension mismatch");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
}

void Subtract(std::span<const double> x, std::span<const double> y,
              DenseVector& out) {
  PSRA_REQUIRE(x.size() == y.size(), "subtract dimension mismatch");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

void SetZero(std::span<double> x) { std::fill(x.begin(), x.end(), 0.0); }

void SoftThreshold(std::span<const double> x, double kappa,
                   std::span<double> out) {
  PSRA_REQUIRE(x.size() == out.size(), "soft-threshold dimension mismatch");
  PSRA_REQUIRE(kappa >= 0.0, "soft-threshold kappa must be non-negative");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = x[i];
    if (v > kappa) {
      out[i] = v - kappa;
    } else if (v < -kappa) {
      out[i] = v + kappa;
    } else {
      out[i] = 0.0;
    }
  }
}

void RoundToFloat(std::span<double> x) {
  for (double& v : x) v = static_cast<double>(static_cast<float>(v));
}

std::size_t CountNonzeros(std::span<const double> x, double tol) {
  std::size_t n = 0;
  for (double v : x) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

}  // namespace psra::linalg
