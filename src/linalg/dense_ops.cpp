#include "linalg/dense_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace psra::linalg {

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double Dot(std::span<const double> x, std::span<const double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double Norm2(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc);
}

double Norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::fabs(v);
  return acc;
}

double NormInf(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::fabs(v));
  return acc;
}

double DistanceL2(std::span<const double> x, std::span<const double> y) {
  PSRA_REQUIRE(x.size() == y.size(), "distance dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void Add(std::span<const double> x, std::span<const double> y,
         DenseVector& out) {
  PSRA_REQUIRE(x.size() == y.size(), "add dimension mismatch");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
}

void Subtract(std::span<const double> x, std::span<const double> y,
              DenseVector& out) {
  PSRA_REQUIRE(x.size() == y.size(), "subtract dimension mismatch");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

void SetZero(std::span<double> x) { std::fill(x.begin(), x.end(), 0.0); }

void SoftThreshold(std::span<const double> x, double kappa,
                   std::span<double> out) {
  PSRA_REQUIRE(x.size() == out.size(), "soft-threshold dimension mismatch");
  PSRA_REQUIRE(kappa >= 0.0, "soft-threshold kappa must be non-negative");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = x[i];
    if (v > kappa) {
      out[i] = v - kappa;
    } else if (v < -kappa) {
      out[i] = v + kappa;
    } else {
      out[i] = 0.0;
    }
  }
}

void RoundToFloat(std::span<double> x) {
  for (double& v : x) v = static_cast<double>(static_cast<float>(v));
}

std::size_t CountNonzeros(std::span<const double> x, double tol) {
  std::size_t n = 0;
  for (double v : x) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

}  // namespace psra::linalg
