#include "support/config.hpp"

#include <fstream>
#include <sstream>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra {

Config Config::FromString(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    PSRA_REQUIRE(eq != std::string_view::npos,
                 "config line " + std::to_string(lineno) + " lacks '='");
    const std::string key{Trim(trimmed.substr(0, eq))};
    const std::string value{Trim(trimmed.substr(eq + 1))};
    PSRA_REQUIRE(!key.empty(),
                 "config line " + std::to_string(lineno) + " has empty key");
    cfg.entries_[key] = value;
  }
  return cfg;
}

Config Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromString(buf.str());
}

void Config::Set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}
void Config::Set(const std::string& key, std::int64_t value) {
  entries_[key] = std::to_string(value);
}
void Config::Set(const std::string& key, double value) {
  entries_[key] = FormatDouble(value, 17);
}
void Config::Set(const std::string& key, bool value) {
  entries_[key] = value ? "true" : "false";
}

bool Config::Has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::string Config::GetString(const std::string& key) const {
  const auto it = entries_.find(key);
  PSRA_REQUIRE(it != entries_.end(), "missing config key: " + key);
  return it->second;
}
std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

std::int64_t Config::GetInt(const std::string& key) const {
  return ParseInt(GetString(key));
}
std::int64_t Config::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  return Has(key) ? GetInt(key) : fallback;
}

double Config::GetDouble(const std::string& key) const {
  return ParseDouble(GetString(key));
}
double Config::GetDouble(const std::string& key, double fallback) const {
  return Has(key) ? GetDouble(key) : fallback;
}

bool Config::GetBool(const std::string& key) const {
  const std::string lower = ToLower(GetString(key));
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  throw InvalidArgument("config key '" + key + "' is not a boolean: " + lower);
}
bool Config::GetBool(const std::string& key, bool fallback) const {
  return Has(key) ? GetBool(key) : fallback;
}

std::string Config::ToString() const {
  std::ostringstream os;
  for (const auto& [k, v] : entries_) os << k << " = " << v << '\n';
  return os.str();
}

}  // namespace psra
