#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PSRA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  PSRA_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int precision) {
  return FormatDouble(v, precision);
}
std::string Table::Cell(std::int64_t v) { return std::to_string(v); }
std::string Table::Cell(std::size_t v) { return std::to_string(v); }

namespace {
bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = align_right && LooksNumeric(row[c]);
      os << (c == 0 ? "" : "  ");
      if (right) os << std::string(pad, ' ');
      os << row[c];
      if (!right) os << std::string(pad, ' ');
    }
    os << '\n';
  };
  print_row(headers_, false);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row, true);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace psra
