// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (synthetic data, straggler
// injection, leader election tie-breaks) flows through psra::Rng so that a
// single seed reproduces an entire experiment bit-for-bit across hosts.
// The generator is xoshiro256** seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace psra {

/// splitmix64 step; used for seeding and cheap hash-style mixing.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return Next(); }

  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextBelow(std::uint64_t n);

  /// Uniform integer in [lo, hi].
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no <random> state).
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBool(double p);

  /// Exponential with the given rate (> 0).
  double NextExponential(double rate);

  /// Samples `k` distinct indices from [0, n) (k <= n), ascending order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream (for per-worker determinism).
  Rng Fork(std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace psra
