#include "support/artifact_path.hpp"

#include <cstdlib>

namespace psra {

std::string ResolveArtifactPath(const std::string& path) {
  if (path.empty() || path.front() == '/') return path;
  if (const char* dir = std::getenv("PSRA_TRACE_DIR");
      dir != nullptr && *dir != '\0') {
    return std::string(dir) + "/" + path;
  }
  return path;
}

}  // namespace psra
