// Key=value configuration map with typed accessors.
//
// Used where an experiment is described by a flat set of parameters that may
// come from a file or be built programmatically by a harness.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace psra {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines; '#' starts a comment; blank lines ignored.
  static Config FromString(const std::string& text);
  static Config FromFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, std::int64_t value);
  void Set(const std::string& key, double value);
  void Set(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  /// Typed getters with required/default variants. The required variants
  /// throw psra::InvalidArgument when the key is absent or malformed.
  std::string GetString(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;
  std::int64_t GetInt(const std::string& key) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key) const;
  bool GetBool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

  /// Serializes back to "key = value" lines (sorted by key).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace psra
