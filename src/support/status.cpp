#include "support/status.hpp"

#include <sstream>

namespace psra::detail {

namespace {
std::string Format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [check `" << expr << "` failed at " << file
     << ":" << line << "]";
  return os.str();
}
}  // namespace

void ThrowInvalidArgument(const char* expr, const char* file, int line,
                          const std::string& msg) {
  throw InvalidArgument(Format("invalid argument", expr, file, line, msg));
}

void ThrowInternalError(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw InternalError(Format("internal error", expr, file, line, msg));
}

}  // namespace psra::detail
