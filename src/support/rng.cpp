#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace psra {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  PSRA_REQUIRE(lo <= hi, "empty interval");
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  PSRA_REQUIRE(n > 0, "NextBelow(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~std::uint64_t{0} - n + 1) % n;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  PSRA_REQUIRE(lo <= hi, "empty interval");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double rate) {
  PSRA_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // 1 - U in (0,1] avoids log(0).
  return -std::log(1.0 - NextDouble()) / rate;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  PSRA_REQUIRE(k <= n, "sample size exceeds population");
  // Floyd's algorithm produces k distinct values; collect then sort.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::vector<bool> chosen(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(NextBelow(j + 1));
    if (!chosen[t]) {
      chosen[t] = true;
      out.push_back(t);
    } else {
      chosen[j] = true;
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::Fork(std::uint64_t stream_id) {
  std::uint64_t mix = s_[0] ^ Rotl(stream_id * 0xD1342543DE82EF95ULL, 31);
  return Rng(SplitMix64(mix));
}

}  // namespace psra
