#include "support/cli.hpp"

#include <iostream>
#include <sstream>

#include "support/log.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::AddInt(const std::string& name, std::int64_t* target,
                       const std::string& help) {
  PSRA_REQUIRE(target != nullptr, "null target");
  options_.push_back({name, help, std::to_string(*target), false,
                      [target](const std::string& v) { *target = ParseInt(v); }});
}

void CliParser::AddDouble(const std::string& name, double* target,
                          const std::string& help) {
  PSRA_REQUIRE(target != nullptr, "null target");
  options_.push_back({name, help, FormatDouble(*target), false,
                      [target](const std::string& v) { *target = ParseDouble(v); }});
}

void CliParser::AddString(const std::string& name, std::string* target,
                          const std::string& help) {
  PSRA_REQUIRE(target != nullptr, "null target");
  options_.push_back({name, help, *target, false,
                      [target](const std::string& v) { *target = v; }});
}

void CliParser::AddBool(const std::string& name, bool* target,
                        const std::string& help) {
  PSRA_REQUIRE(target != nullptr, "null target");
  options_.push_back({name, help, *target ? "true" : "false", true,
                      [target](const std::string& v) {
                        const std::string lower = ToLower(v);
                        if (lower == "true" || lower == "1" || lower.empty()) {
                          *target = true;
                        } else if (lower == "false" || lower == "0") {
                          *target = false;
                        } else {
                          throw InvalidArgument("bad boolean value: " + v);
                        }
                      }});
}

const CliParser::Option* CliParser::Find(const std::string& name) const {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool CliParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << Usage();
      return false;
    }
    PSRA_REQUIRE(StartsWith(arg, "--"), "unexpected positional argument: " + arg);
    arg = arg.substr(2);

    std::string name, value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }

    const Option* opt = Find(name);
    PSRA_REQUIRE(opt != nullptr, "unknown flag --" + name);

    if (!has_value && !opt->is_flag) {
      PSRA_REQUIRE(i + 1 < argc, "flag --" + name + " requires a value");
      value = argv[++i];
    }
    opt->assign(value);
  }
  return true;
}

std::string CliParser::Usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt.name;
    if (!opt.is_flag) os << " <value>";
    os << "  (default: " << opt.default_repr << ")\n      " << opt.help << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

void AddLogLevelFlag(CliParser& cli, std::string* storage) {
  cli.AddString("log-level", storage,
                "log verbosity: debug, info, warn, error, off");
}

void ApplyLogLevelFlag(const std::string& level) {
  SetLogLevel(ParseLogLevel(level));
}

}  // namespace psra
