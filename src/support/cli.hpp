// Tiny declarative command-line parser for the bench/example binaries.
//
//   CliParser cli("bench_fig5", "Reproduces Figure 5");
//   int workers = 32;
//   cli.AddInt("workers", &workers, "workers per run");
//   cli.Parse(argc, argv);   // accepts --workers=64 and --workers 64
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace psra {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void AddInt(const std::string& name, std::int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws psra::InvalidArgument on unknown flags or malformed values.
  bool Parse(int argc, const char* const* argv);

  std::string Usage() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string default_repr;
    bool is_flag = false;
    std::function<void(const std::string&)> assign;
  };

  const Option* Find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

/// Registers the standard `--log-level` flag (debug|info|warn|error|off).
/// `storage` holds the parsed name and must outlive Parse; pass it to
/// ApplyLogLevelFlag afterwards to install the level process-wide.
void AddLogLevelFlag(CliParser& cli, std::string* storage);
void ApplyLogLevelFlag(const std::string& level);

}  // namespace psra
