#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/status.hpp"

namespace psra {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

double ParseDouble(std::string_view s) {
  s = Trim(s);
  // std::from_chars rejects a leading '+', which LIBSVM labels ("+1") use.
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);
  PSRA_REQUIRE(!s.empty(), "cannot parse empty string as double");
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  PSRA_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
               "malformed double: '" + std::string(s) + "'");
  return value;
}

std::int64_t ParseInt(std::string_view s) {
  s = Trim(s);
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);
  PSRA_REQUIRE(!s.empty(), "cannot parse empty string as integer");
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  PSRA_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
               "malformed integer: '" + std::string(s) + "'");
  return value;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (std::fabs(bytes) >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (std::fabs(seconds) < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (std::fabs(seconds) < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (std::fabs(seconds) < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace psra
