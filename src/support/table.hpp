// Column-aligned plain-text table printer used by the bench harnesses to emit
// paper-style rows/series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psra {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell builders.
  static std::string Cell(double v, int precision = 4);
  static std::string Cell(std::int64_t v);
  static std::string Cell(std::size_t v);

  std::size_t NumRows() const { return rows_.size(); }

  /// Renders with a header rule, right-aligned numeric-looking columns.
  void Print(std::ostream& os) const;

  /// Renders as CSV (for downstream plotting).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psra
