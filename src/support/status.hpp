// Error-handling primitives shared by every psra module.
//
// The library reports unrecoverable misuse (precondition violations, internal
// invariant breaks) via exceptions derived from `psra::Error`, raised through
// the PSRA_CHECK / PSRA_REQUIRE macros so the failing expression and source
// location are captured in the message.
#pragma once

#include <stdexcept>
#include <string>

namespace psra {

/// Base class of all exceptions thrown by the psra libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is broken (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (missing file, parse error, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void ThrowInvalidArgument(const char* expr, const char* file,
                                       int line, const std::string& msg);
[[noreturn]] void ThrowInternalError(const char* expr, const char* file,
                                     int line, const std::string& msg);
}  // namespace detail

}  // namespace psra

/// Validate a caller-supplied precondition; throws psra::InvalidArgument.
#define PSRA_REQUIRE(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::psra::detail::ThrowInvalidArgument(#expr, __FILE__, __LINE__,      \
                                           (msg));                         \
    }                                                                      \
  } while (false)

/// Validate an internal invariant; throws psra::InternalError.
#define PSRA_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::psra::detail::ThrowInternalError(#expr, __FILE__, __LINE__,        \
                                         (msg));                           \
    }                                                                      \
  } while (false)
