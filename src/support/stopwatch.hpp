// Wall-clock stopwatch. Virtual (simulated) time lives in simnet; this is
// only for reporting real harness runtimes.
#pragma once

#include <chrono>

namespace psra {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace psra
