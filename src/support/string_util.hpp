// Small string helpers used by parsers and the CLI layer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace psra {

/// Splits on a single character; empty tokens are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Strips leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict numeric parsing; throws psra::InvalidArgument on garbage.
double ParseDouble(std::string_view s);
std::int64_t ParseInt(std::string_view s);

/// Human-friendly formatting used by the bench tables.
std::string FormatBytes(double bytes);
std::string FormatDuration(double seconds);

/// printf-style double with fixed significant digits.
std::string FormatDouble(double v, int precision = 6);

std::string ToLower(std::string_view s);

}  // namespace psra
