// Artifact path resolution shared by every binary that writes run
// artifacts (trace/metrics/csv/timeline outputs, conformance payloads).
#pragma once

#include <string>

namespace psra {

/// Relative artifact paths land under $PSRA_TRACE_DIR when the launcher
/// exported one (tools/psra_launch --trace-dir), so every rank of a wire
/// run agrees on where artifacts go without per-rank flag plumbing.
/// Absolute and empty paths pass through untouched; so do relative paths
/// when the variable is unset or empty.
std::string ResolveArtifactPath(const std::string& path);

}  // namespace psra
