#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }
void SetLogSink(std::ostream* sink) { g_sink.store(sink); }

LogLevel ParseLogLevel(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  throw InvalidArgument("unknown log level '" + name +
                        "' (want debug|info|warn|error|off)");
}

namespace detail {
void LogMessage(LogLevel level, const char* component, bool has_vt, double vt,
                const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream* sink = g_sink.load();
  std::ostream& os = sink ? *sink : std::cerr;
  os << "[psra " << LevelName(level);
  if (component != nullptr) os << ' ' << component;
  if (has_vt) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", vt);
    os << " @" << buf << 's';
  }
  os << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace psra
