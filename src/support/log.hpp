// Minimal leveled logger.
//
// Thread-safe; writes to stderr. The level is a process-wide setting so the
// benches/examples can silence the library with one call.
#pragma once

#include <sstream>
#include <string>

namespace psra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void LogMessage(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace psra

#define PSRA_LOG(level)                                     \
  if (::psra::GetLogLevel() > ::psra::LogLevel::level) {    \
  } else                                                    \
    ::psra::detail::LogLine(::psra::LogLevel::level)

#define PSRA_LOG_DEBUG PSRA_LOG(kDebug)
#define PSRA_LOG_INFO PSRA_LOG(kInfo)
#define PSRA_LOG_WARN PSRA_LOG(kWarn)
#define PSRA_LOG_ERROR PSRA_LOG(kError)
