// Minimal leveled, structured logger.
//
// Thread-safe; writes to stderr by default (redirectable via SetLogSink for
// tests). The level is a process-wide setting so the benches/examples can
// silence the library with one call.
//
// Two flavours:
//   PSRA_LOG_INFO << "plain message";                 // no tags
//   PSRA_SLOG(kInfo, "wlg").At(vt) << "regrouped";    // component + v-time
//
// Structured lines render as `[psra INFO  wlg @0.001234s] regrouped`, so a
// grep for the component tag pulls one subsystem's activity out of a run,
// and the stamp is the *virtual* simulation time, not wall time.
#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace psra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a --log-level flag value: debug|info|warn|error|off (case
/// insensitive). Throws InvalidArgument on anything else.
LogLevel ParseLogLevel(const std::string& name);

/// Redirects log output (default stderr when null). Intended for tests that
/// assert on the rendered format; not synchronized with concurrent loggers,
/// so install before spawning threads.
void SetLogSink(std::ostream* sink);

namespace detail {
void LogMessage(LogLevel level, const char* component, bool has_vt, double vt,
                const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level, const char* component = nullptr)
      : level_(level), component_(component) {}
  ~LogLine() { LogMessage(level_, component_, has_vt_, vt_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  /// Stamps the line with a virtual-time instant (seconds).
  LogLine& At(double virtual_time_s) {
    vt_ = virtual_time_s;
    has_vt_ = true;
    return *this;
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  double vt_ = 0.0;
  bool has_vt_ = false;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace psra

#define PSRA_LOG(level)                                     \
  if (::psra::GetLogLevel() > ::psra::LogLevel::level) {    \
  } else                                                    \
    ::psra::detail::LogLine(::psra::LogLevel::level)

#define PSRA_LOG_DEBUG PSRA_LOG(kDebug)
#define PSRA_LOG_INFO PSRA_LOG(kInfo)
#define PSRA_LOG_WARN PSRA_LOG(kWarn)
#define PSRA_LOG_ERROR PSRA_LOG(kError)

// Structured variant: component tag plus optional `.At(virtual_time)` stamp.
#define PSRA_SLOG(level, component)                         \
  if (::psra::GetLogLevel() > ::psra::LogLevel::level) {    \
  } else                                                    \
    ::psra::detail::LogLine(::psra::LogLevel::level, component)
