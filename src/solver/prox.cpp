#include "solver/prox.hpp"

#include "linalg/dense_ops.hpp"
#include "support/status.hpp"

namespace psra::solver {

void ZUpdate(const ZUpdateConfig& cfg, std::span<const double> W,
             std::span<double> z, FlopCounter* flops) {
  PSRA_REQUIRE(W.size() == z.size(), "dimension mismatch");
  PSRA_REQUIRE(cfg.rho > 0.0, "rho must be positive");
  PSRA_REQUIRE(cfg.num_workers >= 1, "need at least one worker");
  PSRA_REQUIRE(cfg.lambda >= 0.0, "lambda must be non-negative");

  const double scale = cfg.rho * static_cast<double>(cfg.num_workers);
  switch (cfg.regularizer) {
    case Regularizer::kNone:
      for (std::size_t i = 0; i < z.size(); ++i) z[i] = W[i] / scale;
      break;
    case Regularizer::kL1: {
      const double kappa = cfg.lambda / scale;
      for (std::size_t i = 0; i < z.size(); ++i) {
        const double v = W[i] / scale;
        if (v > kappa) {
          z[i] = v - kappa;
        } else if (v < -kappa) {
          z[i] = v + kappa;
        } else {
          z[i] = 0.0;
        }
      }
      break;
    }
    case Regularizer::kL2:
      // argmin lambda||z||^2 + (scale/2)||z||^2 - z^T W
      for (std::size_t i = 0; i < z.size(); ++i) {
        z[i] = W[i] / (scale + 2.0 * cfg.lambda);
      }
      break;
  }
  if (flops != nullptr) flops->Add(3.0 * static_cast<double>(z.size()));
}

void YUpdate(double rho, std::span<const double> x, std::span<const double> z,
             std::span<double> y, FlopCounter* flops) {
  PSRA_REQUIRE(x.size() == z.size() && x.size() == y.size(),
               "dimension mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += rho * (x[i] - z[i]);
  if (flops != nullptr) flops->Add(3.0 * static_cast<double>(y.size()));
}

void ZYUpdate(const ZUpdateConfig& cfg, std::span<const double> W,
              std::span<const double> x, std::span<double> z,
              std::span<double> y, FlopCounter* flops) {
  PSRA_REQUIRE(W.size() == z.size(), "dimension mismatch");
  PSRA_REQUIRE(x.size() == z.size() && x.size() == y.size(),
               "dimension mismatch");
  PSRA_REQUIRE(cfg.rho > 0.0, "rho must be positive");
  PSRA_REQUIRE(cfg.num_workers >= 1, "need at least one worker");
  PSRA_REQUIRE(cfg.lambda >= 0.0, "lambda must be non-negative");

  const double rho = cfg.rho;
  const double scale = rho * static_cast<double>(cfg.num_workers);
  switch (cfg.regularizer) {
    case Regularizer::kNone:
      for (std::size_t i = 0; i < z.size(); ++i) {
        const double zi = W[i] / scale;
        z[i] = zi;
        y[i] += rho * (x[i] - zi);
      }
      break;
    case Regularizer::kL1: {
      const double kappa = cfg.lambda / scale;
      for (std::size_t i = 0; i < z.size(); ++i) {
        const double v = W[i] / scale;
        double zi;
        if (v > kappa) {
          zi = v - kappa;
        } else if (v < -kappa) {
          zi = v + kappa;
        } else {
          zi = 0.0;
        }
        z[i] = zi;
        y[i] += rho * (x[i] - zi);
      }
      break;
    }
    case Regularizer::kL2: {
      const double denom = scale + 2.0 * cfg.lambda;
      for (std::size_t i = 0; i < z.size(); ++i) {
        const double zi = W[i] / denom;
        z[i] = zi;
        y[i] += rho * (x[i] - zi);
      }
      break;
    }
  }
  if (flops != nullptr) flops->Add(6.0 * static_cast<double>(z.size()));
}

void WLocal(double rho, std::span<const double> x, std::span<const double> y,
            std::span<double> w, FlopCounter* flops) {
  PSRA_REQUIRE(x.size() == y.size() && x.size() == w.size(),
               "dimension mismatch");
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = y[i] + rho * x[i];
  if (flops != nullptr) flops->Add(2.0 * static_cast<double>(w.size()));
}

}  // namespace psra::solver
