// Transpose-reduction direct solver for the least-squares ADMM x-update
// ("Unwrapping ADMM", Goldstein/Taylor, arXiv:1504.02147; DESIGN.md §14).
//
// Minimizes the proximal least-squares subproblem
//
//   x* = argmin 0.5 ||A x - b||^2 + v^T x + (rho/2) ||x - z||^2
//
// whose normal equations are (A^T A + rho I) x = A^T b - v + rho z. The
// Gram matrix A^T A and the moment vector A^T b are accumulated from the
// CSR shard exactly once; after that every solve is a pair of packed
// triangular substitutions and never touches A again. A rho change
// (adaptive-penalty ADMM) re-shifts the cached Gram's diagonal and
// refactors — O(d^3/6) dense work, but no re-stream of the data.
#pragma once

#include <cstdint>
#include <span>

#include "linalg/csr_matrix.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/gram.hpp"
#include "solver/flops.hpp"

namespace psra::solver {

class CachedGramLeastSquares {
 public:
  /// `a` must outlive this object; b has a->rows() entries and is copied
  /// into A^T b immediately. rho > 0 (the shift is what guarantees the
  /// factorization exists for any shard, including rank-deficient ones).
  CachedGramLeastSquares(const linalg::CsrMatrix* a, std::span<const double> b,
                         double rho);

  std::uint64_t dim() const { return a_->cols(); }
  double rho() const { return rho_; }

  /// Adaptive-penalty hook: marks the factor stale. The next Solve
  /// re-shifts the cached Gram and refactors without re-streaming A.
  void SetRho(double rho);

  /// x = argmin of the subproblem above. v and z have dim() entries; either
  /// may be empty (treated as zero). Allocation-free once warm.
  void Solve(std::span<const double> v, std::span<const double> z,
             std::span<double> x, FlopCounter* flops = nullptr);

  /// Number of Cholesky factorizations performed (1 after the first Solve,
  /// +1 per rho change — the refresh contract tests pin this down).
  int factor_count() const { return factor_count_; }
  /// Number of A^T A accumulations (stays 1 for the object's lifetime).
  int gram_builds() const { return gram_builds_; }

 private:
  void EnsureFactored(FlopCounter* flops);

  const linalg::CsrMatrix* a_;
  double rho_;
  bool factored_ = false;
  int factor_count_ = 0;
  int gram_builds_ = 0;
  linalg::SymmetricGram gram_;     // A^T A (unshifted; shift applied at Factor)
  linalg::PackedCholesky chol_;    // L L^T = A^T A + rho I
  linalg::DenseVector atb_;        // A^T b
  linalg::DenseVector rhs_;        // per-solve right-hand side
};

}  // namespace psra::solver
