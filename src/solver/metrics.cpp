#include "solver/metrics.hpp"

#include <cmath>

#include "linalg/dense_ops.hpp"
#include "solver/logistic.hpp"
#include "support/status.hpp"

namespace psra::solver {

double GlobalObjective(const data::Dataset& full_train,
                       std::span<const double> z, double lambda) {
  PSRA_REQUIRE(lambda >= 0.0, "lambda must be non-negative");
  return LogisticValue(full_train, z) + lambda * linalg::Norm1(z);
}

double RelativeError(double f_star, double f) {
  PSRA_REQUIRE(f > 0.0, "reference objective must be positive");
  return std::fabs(f_star - f) / f;
}

double Accuracy(const data::Dataset& test, std::span<const double> z) {
  PSRA_REQUIRE(z.size() == test.num_features(), "dimension mismatch");
  if (test.num_samples() == 0) return 0.0;
  const auto& m = test.features();
  std::uint64_t correct = 0;
  for (std::uint64_t r = 0; r < m.rows(); ++r) {
    const double score = m.RowDot(r, z);
    const double predicted = score >= 0 ? 1.0 : -1.0;
    if (predicted == test.labels()[static_cast<std::size_t>(r)]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(test.num_samples());
}

}  // namespace psra::solver
