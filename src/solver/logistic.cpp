#include "solver/logistic.hpp"

#include <cmath>

#include "support/status.hpp"

namespace psra::solver {

namespace {
/// log(1 + exp(-m)) computed without overflow for large |m|.
inline double LogisticTerm(double margin) {
  if (margin >= 0) return std::log1p(std::exp(-margin));
  return -margin + std::log1p(std::exp(margin));
}
/// sigma(m) = 1 / (1 + exp(-m)), overflow-safe.
inline double Sigmoid(double margin) {
  if (margin >= 0) return 1.0 / (1.0 + std::exp(-margin));
  const double e = std::exp(margin);
  return e / (1.0 + e);
}
}  // namespace

double LogisticValue(const data::Dataset& ds, std::span<const double> x,
                     FlopCounter* flops) {
  PSRA_REQUIRE(x.size() == ds.num_features(), "dimension mismatch");
  const auto& m = ds.features();
  double acc = 0.0;
  for (std::uint64_t r = 0; r < m.rows(); ++r) {
    const double margin =
        ds.labels()[static_cast<std::size_t>(r)] * m.RowDot(r, x);
    acc += LogisticTerm(margin);
  }
  if (flops != nullptr) {
    flops->Add(2.0 * static_cast<double>(ds.nnz()) +
               8.0 * static_cast<double>(ds.num_samples()));
  }
  return acc;
}

ProximalLogistic::ProximalLogistic(const data::Dataset* shard, double rho)
    : shard_(shard), rho_(rho) {
  PSRA_REQUIRE(shard_ != nullptr, "null shard");
  PSRA_REQUIRE(rho_ >= 0.0, "rho must be non-negative");
}

void ProximalLogistic::SetRho(double rho) {
  PSRA_REQUIRE(rho >= 0.0, "rho must be non-negative");
  rho_ = rho;
}

void ProximalLogistic::SetIterationTerms(std::span<const double> v,
                                         std::span<const double> z) {
  PSRA_REQUIRE(v.size() == dim(), "linear term dimension mismatch");
  PSRA_REQUIRE(z.size() == dim(), "proximal center dimension mismatch");
  v_ = v;
  z_ = z;
}

std::uint64_t ProximalLogistic::dim() const { return shard_->num_features(); }
std::uint64_t ProximalLogistic::num_samples() const {
  return shard_->num_samples();
}

double ProximalLogistic::Value(std::span<const double> x,
                               FlopCounter* flops) const {
  PSRA_REQUIRE(x.size() == dim(), "dimension mismatch");
  PSRA_REQUIRE(!v_.empty() && !z_.empty(),
               "SetIterationTerms must be called first");
  double acc = LogisticValue(*shard_, x, flops);
  double prox = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i] * v_[i];
    const double d = x[i] - z_[i];
    prox += d * d;
  }
  acc += 0.5 * rho_ * prox;
  if (flops != nullptr) flops->Add(6.0 * static_cast<double>(x.size()));
  return acc;
}

double ProximalLogistic::ValueAndGradient(std::span<const double> x,
                                          std::span<double> grad,
                                          FlopCounter* flops) const {
  PSRA_REQUIRE(x.size() == dim() && grad.size() == dim(),
               "dimension mismatch");
  PSRA_REQUIRE(!v_.empty() && !z_.empty(),
               "SetIterationTerms must be called first");
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());

  margins_.resize(n);
  m.Multiply(x, margins_);

  // Gradient of the logistic part: sum_s (sigma(m_s) - 1) * y_s * a_s.
  double value = 0.0;
  linalg::DenseVector coeff(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double y = shard_->labels()[s];
    const double margin = y * margins_[s];
    value += LogisticTerm(margin);
    coeff[s] = (Sigmoid(margin) - 1.0) * y;
  }
  linalg::SetZero(grad);
  m.TransposeMultiplyAdd(coeff, grad);

  // Proximal and linear parts.
  double prox = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    value += x[i] * v_[i];
    const double d = x[i] - z_[i];
    prox += d * d;
    grad[i] += v_[i] + rho_ * d;
  }
  value += 0.5 * rho_ * prox;

  if (flops != nullptr) {
    flops->Add(4.0 * static_cast<double>(m.nnz()) +
               12.0 * static_cast<double>(n) +
               8.0 * static_cast<double>(x.size()));
  }
  return value;
}

void ProximalLogistic::PrepareHessian(std::span<const double> x,
                                      FlopCounter* flops) const {
  PSRA_REQUIRE(x.size() == dim(), "dimension mismatch");
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());
  margins_.resize(n);
  m.Multiply(x, margins_);
  hess_weights_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double sig = Sigmoid(shard_->labels()[s] * margins_[s]);
    hess_weights_[s] = sig * (1.0 - sig);
  }
  if (flops != nullptr) {
    flops->Add(2.0 * static_cast<double>(m.nnz()) +
               6.0 * static_cast<double>(n));
  }
}

void ProximalLogistic::HessianVec(std::span<const double> d,
                                  std::span<double> out,
                                  FlopCounter* flops) const {
  PSRA_REQUIRE(d.size() == dim() && out.size() == dim(), "dimension mismatch");
  PSRA_CHECK(hess_weights_.size() == num_samples(),
             "PrepareHessian must be called before HessianVec");
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());

  linalg::DenseVector tmp(n);
  m.Multiply(d, tmp);
  for (std::size_t s = 0; s < n; ++s) tmp[s] *= hess_weights_[s];
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = rho_ * d[i];
  m.TransposeMultiplyAdd(tmp, out);

  if (flops != nullptr) {
    flops->Add(4.0 * static_cast<double>(m.nnz()) +
               static_cast<double>(n) + 2.0 * static_cast<double>(d.size()));
  }
}

}  // namespace psra::solver
