#include "solver/logistic.hpp"

#include <cmath>

#include "support/status.hpp"

namespace psra::solver {

namespace {
/// log(1 + exp(-m)) computed without overflow for large |m|.
inline double LogisticTerm(double margin) {
  if (margin >= 0) return std::log1p(std::exp(-margin));
  return -margin + std::log1p(std::exp(margin));
}
/// sigma(m) = 1 / (1 + exp(-m)), overflow-safe.
inline double Sigmoid(double margin) {
  if (margin >= 0) return 1.0 / (1.0 + std::exp(-margin));
  const double e = std::exp(margin);
  return e / (1.0 + e);
}
}  // namespace

double LogisticValue(const data::Dataset& ds, std::span<const double> x,
                     FlopCounter* flops) {
  PSRA_REQUIRE(x.size() == ds.num_features(), "dimension mismatch");
  const auto& m = ds.features();
  double acc = 0.0;
  for (std::uint64_t r = 0; r < m.rows(); ++r) {
    const double margin =
        ds.labels()[static_cast<std::size_t>(r)] * m.RowDot(r, x);
    acc += LogisticTerm(margin);
  }
  if (flops != nullptr) {
    flops->Add(2.0 * static_cast<double>(ds.nnz()) +
               8.0 * static_cast<double>(ds.num_samples()));
  }
  return acc;
}

ProximalLogistic::ProximalLogistic(const data::Dataset* shard, double rho)
    : shard_(shard), rho_(rho) {
  PSRA_REQUIRE(shard_ != nullptr, "null shard");
  PSRA_REQUIRE(rho_ >= 0.0, "rho must be non-negative");
}

void ProximalLogistic::SetRho(double rho) {
  PSRA_REQUIRE(rho >= 0.0, "rho must be non-negative");
  rho_ = rho;
}

void ProximalLogistic::SetUseGramHessian(bool on) {
  use_gram_ = on;
  if (!on) return;
  const auto d = static_cast<std::size_t>(dim());
  gram_.Reset(d);
  const auto& m = shard_->features();
  // One A^T D A accumulation touches every within-row pair once:
  // sum_r k_r (k_r + 1) / 2 multiply-adds.
  double pairs = 0.0;
  for (std::uint64_t r = 0; r < m.rows(); ++r) {
    const auto k = static_cast<double>(m.RowIndices(r).size());
    pairs += 0.5 * k * (k + 1.0);
  }
  gram_flops_ = 2.0 * pairs;
}

void ProximalLogistic::BuildGramFromWeights(FlopCounter* flops) const {
  const auto& m = shard_->features();
  gram_.Reset(static_cast<std::size_t>(dim()));
  m.GramProduct(hess_weights_, gram_);
  gram_.AddDiagonal(rho_);
  if (flops != nullptr) flops->Add(gram_flops_);
}

void ProximalLogistic::SetIterationTerms(std::span<const double> v,
                                         std::span<const double> z) {
  PSRA_REQUIRE(v.size() == dim(), "linear term dimension mismatch");
  PSRA_REQUIRE(z.size() == dim(), "proximal center dimension mismatch");
  v_ = v;
  z_ = z;
}

std::uint64_t ProximalLogistic::dim() const { return shard_->num_features(); }
std::uint64_t ProximalLogistic::num_samples() const {
  return shard_->num_samples();
}

double ProximalLogistic::Value(std::span<const double> x,
                               FlopCounter* flops) const {
  PSRA_REQUIRE(x.size() == dim(), "dimension mismatch");
  PSRA_REQUIRE(!v_.empty() && !z_.empty(),
               "SetIterationTerms must be called first");
  double acc = LogisticValue(*shard_, x, flops);
  double prox = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i] * v_[i];
    const double d = x[i] - z_[i];
    prox += d * d;
  }
  acc += 0.5 * rho_ * prox;
  if (flops != nullptr) flops->Add(6.0 * static_cast<double>(x.size()));
  return acc;
}

double ProximalLogistic::ValueAndGradient(std::span<const double> x,
                                          std::span<double> grad,
                                          FlopCounter* flops) const {
  PSRA_REQUIRE(x.size() == dim() && grad.size() == dim(),
               "dimension mismatch");
  PSRA_REQUIRE(!v_.empty() && !z_.empty(),
               "SetIterationTerms must be called first");
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());

  margins_.resize(n);
  m.Multiply(x, margins_);

  // Gradient of the logistic part: sum_s (sigma(m_s) - 1) * y_s * a_s.
  // LogisticTerm and Sigmoid share the same exp(+-margin); inlining both
  // here computes it once per sample (identical branches and expressions,
  // so the results match the helper functions bit for bit).
  double value = 0.0;
  coeff_.resize(n);
  sigmas_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double y = shard_->labels()[s];
    const double margin = y * margins_[s];
    double sig;
    if (margin >= 0) {
      const double e = std::exp(-margin);
      value += std::log1p(e);
      sig = 1.0 / (1.0 + e);
    } else {
      const double e = std::exp(margin);
      value += -margin + std::log1p(e);
      sig = e / (1.0 + e);
    }
    coeff_[s] = (sig - 1.0) * y;
    sigmas_[s] = sig;
  }
  // Proximal and linear parts, written directly into grad; the sparse
  // logistic part is accumulated on top, saving a zero-fill pass.
  double prox = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    value += x[i] * v_[i];
    const double d = x[i] - z_[i];
    prox += d * d;
    grad[i] = v_[i] + rho_ * d;
  }
  value += 0.5 * rho_ * prox;
  m.TransposeMultiplyAdd(coeff_, grad);

  if (flops != nullptr) {
    flops->Add(4.0 * static_cast<double>(m.nnz()) +
               12.0 * static_cast<double>(n) +
               8.0 * static_cast<double>(x.size()));
  }
  return value;
}

void ProximalLogistic::PrepareHessian(std::span<const double> x,
                                      FlopCounter* flops) const {
  PSRA_REQUIRE(x.size() == dim(), "dimension mismatch");
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());
  margins_.resize(n);
  m.Multiply(x, margins_);
  hess_weights_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double sig = Sigmoid(shard_->labels()[s] * margins_[s]);
    hess_weights_[s] = sig * (1.0 - sig);
  }
  if (flops != nullptr) {
    flops->Add(2.0 * static_cast<double>(m.nnz()) +
               6.0 * static_cast<double>(n));
  }
  if (use_gram_) BuildGramFromWeights(flops);
}

void ProximalLogistic::PrepareHessianFromLastGradient(
    FlopCounter* flops) const {
  const auto n = static_cast<std::size_t>(num_samples());
  PSRA_CHECK(sigmas_.size() == n,
             "ValueAndGradient must be called before "
             "PrepareHessianFromLastGradient");
  hess_weights_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double sig = sigmas_[s];
    hess_weights_[s] = sig * (1.0 - sig);
  }
  if (flops != nullptr) flops->Add(2.0 * static_cast<double>(n));
  if (use_gram_) BuildGramFromWeights(flops);
}

double ProximalLogistic::HessianVecQuad(std::span<const double> d, double dd,
                                        std::span<double> out,
                                        FlopCounter* flops) const {
  PSRA_REQUIRE(d.size() == dim() && out.size() == dim(), "dimension mismatch");
  PSRA_CHECK(hess_weights_.size() == num_samples(),
             "PrepareHessian must be called before HessianVecQuad");
  if (use_gram_) {
    // Dense symmetric matvec against the cached Gram (rho already on the
    // diagonal); the quadratic falls out as <d, H d>.
    gram_.Multiply(d, out);
    const double quad = linalg::Dot(d, out);
    if (flops != nullptr) {
      const auto dd_cost = static_cast<double>(d.size());
      flops->Add(2.0 * dd_cost * dd_cost + 2.0 * dd_cost);
    }
    return quad;
  }
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());

  hessvec_tmp_.resize(n);
  m.Multiply(d, hessvec_tmp_);
  // d^T (X^T D X) d = sum_s w_s (Xd)_s^2 falls out of the sample loop, so
  // the full quadratic needs no extra pass over the feature dimension.
  double quad = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const double md = hessvec_tmp_[s];
    const double wmd = hess_weights_[s] * md;
    quad += wmd * md;
    hessvec_tmp_[s] = wmd;
  }
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = rho_ * d[i];
  m.TransposeMultiplyAdd(hessvec_tmp_, out);

  if (flops != nullptr) {
    flops->Add(4.0 * static_cast<double>(m.nnz()) +
               3.0 * static_cast<double>(n) + 2.0 * static_cast<double>(d.size()));
  }
  return rho_ * dd + quad;
}

void ProximalLogistic::HessianVec(std::span<const double> d,
                                  std::span<double> out,
                                  FlopCounter* flops) const {
  PSRA_REQUIRE(d.size() == dim() && out.size() == dim(), "dimension mismatch");
  PSRA_CHECK(hess_weights_.size() == num_samples(),
             "PrepareHessian must be called before HessianVec");
  if (use_gram_) {
    gram_.Multiply(d, out);
    if (flops != nullptr) {
      const auto dd_cost = static_cast<double>(d.size());
      flops->Add(2.0 * dd_cost * dd_cost);
    }
    return;
  }
  const auto& m = shard_->features();
  const auto n = static_cast<std::size_t>(num_samples());

  hessvec_tmp_.resize(n);
  m.Multiply(d, hessvec_tmp_);
  for (std::size_t s = 0; s < n; ++s) hessvec_tmp_[s] *= hess_weights_[s];
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = rho_ * d[i];
  m.TransposeMultiplyAdd(hessvec_tmp_, out);

  if (flops != nullptr) {
    flops->Add(4.0 * static_cast<double>(m.nnz()) +
               static_cast<double>(n) + 2.0 * static_cast<double>(d.size()));
  }
}

}  // namespace psra::solver
