// TRON: trust-region Newton method (Lin, Weng, Keerthi 2007 [paper ref 14])
// with a Steihaug-Toint truncated conjugate-gradient inner solver.
//
// This is the sub-problem solver the paper uses for the ADMM x-update
// (eq. 4). It works matrix-free against ProximalLogistic (value, gradient,
// Hessian-vector products) and reports flop counts so the engines can charge
// virtual compute time.
#pragma once

#include <span>

#include "solver/logistic.hpp"

namespace psra::solver {

struct TronOptions {
  int max_iterations = 50;
  int max_cg_iterations = 50;
  /// Stop when ||grad|| <= gradient_tolerance * ||grad_0||.
  double gradient_tolerance = 1e-3;
  /// Additional absolute stop: ||grad|| <= absolute_tolerance. Useful for
  /// warm starts, where ||grad_0|| is already tiny and a purely relative
  /// test could never be met. 0 disables.
  double absolute_tolerance = 0.0;
  /// CG stops when residual <= cg_tolerance * ||grad||.
  double cg_tolerance = 0.1;
  /// Step acceptance / trust-region update constants (Lin-More defaults).
  double eta0 = 1e-4;
  double eta1 = 0.25;
  double eta2 = 0.75;
  double sigma1 = 0.25;
  double sigma2 = 0.5;
  double sigma3 = 4.0;
};

struct TronResult {
  int iterations = 0;
  int cg_iterations = 0;
  double objective = 0.0;
  double gradient_norm = 0.0;
  bool converged = false;
};

/// Preallocated working vectors for TronMinimize. Callers that solve the
/// same-dimension subproblem every iteration (the ADMM x-update) keep one
/// workspace per worker and pass it to every call, making the solve
/// allocation-free in steady state.
struct TronWorkspace {
  linalg::DenseVector grad;
  linalg::DenseVector grad_new;
  linalg::DenseVector x_new;
  linalg::DenseVector step;
  // Truncated-CG state.
  linalg::DenseVector cg_r;
  linalg::DenseVector cg_p;
  linalg::DenseVector cg_hp;

  /// Sizes every vector to `dim` (no-op once warm).
  void Resize(std::size_t dim);
};

/// Minimizes f starting from (and writing back to) x.
TronResult TronMinimize(const ProximalLogistic& f, std::span<double> x,
                        const TronOptions& options = {},
                        FlopCounter* flops = nullptr);

/// Workspace overload: identical results, all temporaries drawn from `ws`.
TronResult TronMinimize(const ProximalLogistic& f, std::span<double> x,
                        const TronOptions& options, FlopCounter* flops,
                        TronWorkspace& ws);

}  // namespace psra::solver
