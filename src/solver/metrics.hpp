// Evaluation metrics from the paper's Section 5:
//   - global objective F(z) = sum_i logistic_i(z) + lambda ||z||_1 (eq. 17)
//   - relative error |f* - f| / f (eq. 18)
//   - test accuracy: fraction of test samples with sign(a^T z) == label
#pragma once

#include <span>

#include "data/dataset.hpp"

namespace psra::solver {

/// F(z) over the full training set with L1 regularization (paper eq. 17).
double GlobalObjective(const data::Dataset& full_train,
                       std::span<const double> z, double lambda);

/// Paper eq. 18: f is the best (smallest) objective value achievable, f_star
/// the current one. Requires f > 0 (true for logistic loss at any finite z).
double RelativeError(double f_star, double f);

/// Classification accuracy of the linear model z on `test`.
double Accuracy(const data::Dataset& test, std::span<const double> z);

}  // namespace psra::solver
