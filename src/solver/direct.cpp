#include "solver/direct.hpp"

#include "support/status.hpp"

namespace psra::solver {

CachedGramLeastSquares::CachedGramLeastSquares(const linalg::CsrMatrix* a,
                                               std::span<const double> b,
                                               double rho)
    : a_(a), rho_(rho) {
  PSRA_REQUIRE(a_ != nullptr, "null matrix");
  PSRA_REQUIRE(rho_ > 0.0, "rho must be positive for the shifted factor");
  PSRA_REQUIRE(b.size() == a_->rows(), "rhs dimension mismatch");
  const auto d = static_cast<std::size_t>(a_->cols());
  gram_.Reset(d);
  a_->GramProduct(gram_);
  ++gram_builds_;
  atb_.assign(d, 0.0);
  a_->TransposeMultiplyAdd(b, atb_);
  rhs_.resize(d);
}

void CachedGramLeastSquares::SetRho(double rho) {
  PSRA_REQUIRE(rho > 0.0, "rho must be positive for the shifted factor");
  if (rho == rho_) return;
  rho_ = rho;
  factored_ = false;  // diagonal re-shift + refactor on next Solve
}

void CachedGramLeastSquares::EnsureFactored(FlopCounter* flops) {
  if (factored_) return;
  PSRA_CHECK(chol_.Factor(gram_, rho_),
             "shifted Gram not positive definite (rho too small?)");
  factored_ = true;
  ++factor_count_;
  if (flops != nullptr) {
    const auto d = static_cast<double>(dim());
    flops->Add(d * d * d / 3.0);
  }
}

void CachedGramLeastSquares::Solve(std::span<const double> v,
                                   std::span<const double> z,
                                   std::span<double> x, FlopCounter* flops) {
  const auto d = static_cast<std::size_t>(dim());
  PSRA_REQUIRE(x.size() == d, "solution dimension mismatch");
  PSRA_REQUIRE(v.empty() || v.size() == d, "linear term dimension mismatch");
  PSRA_REQUIRE(z.empty() || z.size() == d,
               "proximal center dimension mismatch");
  EnsureFactored(flops);
  for (std::size_t i = 0; i < d; ++i) {
    double r = atb_[i];
    if (!v.empty()) r -= v[i];
    if (!z.empty()) r += rho_ * z[i];
    rhs_[i] = r;
  }
  chol_.Solve(rhs_, x);
  if (flops != nullptr) {
    const auto dd = static_cast<double>(d);
    flops->Add(2.0 * dd * dd + 3.0 * dd);
  }
}

}  // namespace psra::solver
