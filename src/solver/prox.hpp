// Global-variable (z) update of the consensus ADMM (paper eq. 5/10).
//
// With W = sum_i (y_i + rho x_i) the z-subproblem is
//   z = argmin_z  g(z) + (rho N / 2) ||z||^2 - z^T W
// which for g = lambda ||.||_1 has the closed form
//   z = SoftThreshold(W / (rho N), lambda / (rho N)).
//
// Note: the paper's eq. (7)/(10) writes the quadratic coefficient as rho/2;
// expanding eq. (5) over N workers gives rho N / 2 — we implement the
// consistent form (equivalent to the paper's with rho absorbed by N).
#pragma once

#include <cstdint>
#include <span>

#include "solver/flops.hpp"

namespace psra::solver {

enum class Regularizer { kNone, kL1, kL2 };

struct ZUpdateConfig {
  Regularizer regularizer = Regularizer::kL1;
  double lambda = 1.0;
  double rho = 1.0;
  std::uint64_t num_workers = 1;
};

/// Computes z from the aggregated W (both of size d).
void ZUpdate(const ZUpdateConfig& cfg, std::span<const double> W,
             std::span<double> z, FlopCounter* flops = nullptr);

/// Dual ascent (paper eq. 6): y_i += rho * (x_i - z).
void YUpdate(double rho, std::span<const double> x, std::span<const double> z,
             std::span<double> y, FlopCounter* flops = nullptr);

/// ZUpdate followed by YUpdate in a single pass over the feature dimension
/// (the per-element arithmetic is identical, so results match the two-call
/// sequence bit for bit). This is the ADMM hot path: every worker runs it
/// every iteration.
void ZYUpdate(const ZUpdateConfig& cfg, std::span<const double> W,
              std::span<const double> x, std::span<double> z,
              std::span<double> y, FlopCounter* flops = nullptr);

/// w_i = y_i + rho * x_i (paper eq. 8).
void WLocal(double rho, std::span<const double> x, std::span<const double> y,
            std::span<double> w, FlopCounter* flops = nullptr);

}  // namespace psra::solver
