#include "solver/tron.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/dense_ops.hpp"
#include "support/status.hpp"

namespace psra::solver {

namespace {

struct CgOutcome {
  int iterations = 0;
  bool hit_boundary = false;
};

/// Steihaug-Toint truncated CG: approximately solves H s = -g subject to
/// ||s|| <= delta. `s` is overwritten with the step.
CgOutcome TruncatedCg(const ProximalLogistic& f, std::span<const double> grad,
                      double delta, const TronOptions& opt,
                      std::span<double> s, FlopCounter* flops) {
  const std::size_t d = grad.size();
  linalg::SetZero(s);

  linalg::DenseVector r(d), p(d), hp(d);
  for (std::size_t i = 0; i < d; ++i) r[i] = -grad[i];
  p = r;

  double rr = linalg::Dot(r, r);
  const double stop = opt.cg_tolerance * std::sqrt(linalg::Dot(grad, grad));

  CgOutcome out;
  for (int j = 0; j < opt.max_cg_iterations; ++j) {
    if (std::sqrt(rr) <= stop) break;
    ++out.iterations;

    f.HessianVec(p, hp, flops);
    const double php = linalg::Dot(p, hp);
    if (flops != nullptr) flops->Add(10.0 * static_cast<double>(d));

    auto to_boundary = [&](double /*unused*/) {
      // Find tau >= 0 with ||s + tau p|| = delta.
      const double ss = linalg::Dot(s, s);
      const double sp = linalg::Dot(s, p);
      const double pp = linalg::Dot(p, p);
      const double disc = sp * sp + pp * (delta * delta - ss);
      const double tau = (-sp + std::sqrt(std::max(0.0, disc))) / pp;
      linalg::Axpy(tau, p, s);
      out.hit_boundary = true;
    };

    if (php <= 0.0) {
      // Negative curvature: follow p to the trust-region boundary.
      to_boundary(0.0);
      break;
    }

    const double alpha = rr / php;
    // Tentative step length check.
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double si = s[i] + alpha * p[i];
      norm_sq += si * si;
    }
    if (norm_sq >= delta * delta) {
      to_boundary(0.0);
      break;
    }

    linalg::Axpy(alpha, p, s);
    linalg::Axpy(-alpha, hp, r);
    const double rr_new = linalg::Dot(r, r);
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < d; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  return out;
}

}  // namespace

TronResult TronMinimize(const ProximalLogistic& f, std::span<double> x,
                        const TronOptions& opt, FlopCounter* flops) {
  PSRA_REQUIRE(x.size() == f.dim(), "initial point dimension mismatch");
  const std::size_t d = x.size();

  linalg::DenseVector grad(d), grad_new(d), x_new(d), step(d), h_step(d);

  TronResult res;
  double value = f.ValueAndGradient(x, grad, flops);
  double gnorm = linalg::Norm2(grad);
  const double gnorm0 = gnorm;
  double delta = gnorm0 > 0 ? gnorm0 : 1.0;

  const auto is_converged = [&](double g) {
    return g <= opt.gradient_tolerance * gnorm0 ||
           (opt.absolute_tolerance > 0 && g <= opt.absolute_tolerance);
  };
  if (is_converged(gnorm) || gnorm0 == 0.0) {
    res.converged = true;
    res.objective = value;
    res.gradient_norm = gnorm;
    return res;
  }

  for (int it = 0; it < opt.max_iterations; ++it) {
    ++res.iterations;
    f.PrepareHessian(x, flops);
    const CgOutcome cg = TruncatedCg(f, grad, delta, opt, step, flops);
    res.cg_iterations += cg.iterations;

    // Predicted reduction from the quadratic model:
    //   -(g^T s + 0.5 s^T H s)
    f.HessianVec(step, h_step, flops);
    const double gs = linalg::Dot(grad, step);
    const double shs = linalg::Dot(step, h_step);
    const double predicted = -(gs + 0.5 * shs);
    if (flops != nullptr) flops->Add(6.0 * static_cast<double>(d));

    for (std::size_t i = 0; i < d; ++i) x_new[i] = x[i] + step[i];
    const double value_new = f.ValueAndGradient(x_new, grad_new, flops);
    const double actual = value - value_new;
    const double snorm = linalg::Norm2(step);

    // Trust-region radius update (Lin-More style).
    const double ratio = predicted > 0 ? actual / predicted : -1.0;
    if (ratio < opt.eta1) {
      delta = std::min(std::max(opt.sigma1 * snorm, opt.sigma1 * delta),
                       opt.sigma2 * delta);
    } else if (ratio >= opt.eta2 && cg.hit_boundary) {
      delta = std::max(delta, opt.sigma3 * snorm);
    }

    if (ratio > opt.eta0 && actual > 0) {
      std::copy(x_new.begin(), x_new.end(), x.begin());
      value = value_new;
      std::copy(grad_new.begin(), grad_new.end(), grad.begin());
      gnorm = linalg::Norm2(grad);
      if (is_converged(gnorm)) {
        res.converged = true;
        break;
      }
    }
    if (delta < 1e-12 || snorm < 1e-14) break;  // stalled
  }

  res.objective = value;
  res.gradient_norm = gnorm;
  return res;
}

}  // namespace psra::solver
