#include "solver/tron.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/dense_ops.hpp"
#include "support/status.hpp"

namespace psra::solver {

namespace {

struct CgOutcome {
  int iterations = 0;
  bool hit_boundary = false;
};

/// Steihaug-Toint truncated CG: approximately solves H s = -g subject to
/// ||s|| <= delta. `s` is overwritten with the step; r/p/hp are caller-owned
/// working vectors of the same dimension. `gg` is the caller's <grad, grad>
/// (r starts as -grad elementwise, so it doubles as the initial <r, r>).
/// On return r holds the final CG residual -g - H s, which the caller uses
/// to price the quadratic model without another Hessian product.
CgOutcome TruncatedCg(const ProximalLogistic& f, std::span<const double> grad,
                      double gg, double delta, const TronOptions& opt,
                      std::span<double> s, FlopCounter* flops,
                      linalg::DenseVector& r, linalg::DenseVector& p,
                      linalg::DenseVector& hp) {
  const std::size_t d = grad.size();
  // s = 0, r = -grad, p = r in a single sweep.
  for (std::size_t i = 0; i < d; ++i) {
    s[i] = 0.0;
    const double ri = -grad[i];
    r[i] = ri;
    p[i] = ri;
  }

  double rr = gg;
  // <p, p>, maintained by the recurrences below so the Hessian quadratic and
  // the boundary solve never need a dedicated pass over p.
  double pp = gg;
  const double stop = opt.cg_tolerance * std::sqrt(gg);

  CgOutcome out;
  for (int j = 0; j < opt.max_cg_iterations; ++j) {
    if (std::sqrt(rr) <= stop) break;
    ++out.iterations;

    const double php = f.HessianVecQuad(p, pp, hp, flops);
    if (flops != nullptr) flops->Add(10.0 * static_cast<double>(d));

    auto to_boundary = [&] {
      // Find tau >= 0 with ||s + tau p|| = delta.
      const double ss = linalg::Dot(s, s);
      const double sp = linalg::Dot(s, p);
      const double disc = sp * sp + pp * (delta * delta - ss);
      const double tau = (-sp + std::sqrt(std::max(0.0, disc))) / pp;
      linalg::Axpy(tau, p, s);
      // Keep r = -g - H s exact so the caller's model pricing stays valid.
      linalg::Axpy(-tau, hp, r);
      out.hit_boundary = true;
    };

    if (php <= 0.0) {
      // Negative curvature: follow p to the trust-region boundary.
      to_boundary();
      break;
    }

    const double alpha = rr / php;
    // Optimistic s += alpha p fused with ||s||^2; stepped back below in the
    // (rare) boundary case instead of paying a read-only probe pass on the
    // common interior path (LIBLINEAR does the same).
    if (linalg::AxpyNormSq(alpha, p, s) >= delta * delta) {
      linalg::Axpy(-alpha, p, s);
      to_boundary();
      break;
    }

    // Fused residual update + <r, r>, then p = r + beta p fused with <p, p>
    // for the next quadratic/boundary use.
    const double rr_new = linalg::AxpyNormSq(-alpha, hp, r);
    const double beta = rr_new / rr;
    pp = linalg::XpayNormSq(beta, r, p);
    rr = rr_new;
  }
  return out;
}

}  // namespace

void TronWorkspace::Resize(std::size_t dim) {
  grad.resize(dim);
  grad_new.resize(dim);
  x_new.resize(dim);
  step.resize(dim);
  cg_r.resize(dim);
  cg_p.resize(dim);
  cg_hp.resize(dim);
}

TronResult TronMinimize(const ProximalLogistic& f, std::span<double> x,
                        const TronOptions& opt, FlopCounter* flops) {
  TronWorkspace ws;
  return TronMinimize(f, x, opt, flops, ws);
}

TronResult TronMinimize(const ProximalLogistic& f, std::span<double> x,
                        const TronOptions& opt, FlopCounter* flops,
                        TronWorkspace& ws) {
  PSRA_REQUIRE(x.size() == f.dim(), "initial point dimension mismatch");
  const std::size_t d = x.size();

  ws.Resize(d);

  TronResult res;
  double value = f.ValueAndGradient(x, ws.grad, flops);
  double gg = linalg::Dot(ws.grad, ws.grad);
  double gnorm = std::sqrt(gg);
  const double gnorm0 = gnorm;
  double delta = gnorm0 > 0 ? gnorm0 : 1.0;

  const auto is_converged = [&](double g) {
    return g <= opt.gradient_tolerance * gnorm0 ||
           (opt.absolute_tolerance > 0 && g <= opt.absolute_tolerance);
  };
  if (is_converged(gnorm) || gnorm0 == 0.0) {
    res.converged = true;
    res.objective = value;
    res.gradient_norm = gnorm;
    return res;
  }

  // The most recent ValueAndGradient call already cached the per-sample
  // sigmas at its evaluation point; while that point is the current x
  // (always, except right after a rejected trial step), the Hessian weights
  // come from the cache instead of a fresh matrix product.
  bool grad_eval_at_x = true;
  for (int it = 0; it < opt.max_iterations; ++it) {
    ++res.iterations;
    if (grad_eval_at_x) {
      f.PrepareHessianFromLastGradient(flops);
    } else {
      f.PrepareHessian(x, flops);
    }
    const CgOutcome cg = TruncatedCg(f, ws.grad, gg, delta, opt, ws.step,
                                     flops, ws.cg_r, ws.cg_p, ws.cg_hp);
    res.cg_iterations += cg.iterations;

    // Predicted reduction from the quadratic model. The CG residual
    // r = -g - H s gives s^T H s = -(g^T s + r^T s), so
    //   -(g^T s + 0.5 s^T H s) = -0.5 (g^T s - r^T s)
    // without another Hessian product (LIBLINEAR's trcg pricing). The dots
    // ride along with the trial-point pass: one sweep over the step instead
    // of four.
    double gs = 0.0, sr = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double si = ws.step[i];
      ws.x_new[i] = x[i] + si;
      gs += ws.grad[i] * si;
      sr += ws.cg_r[i] * si;
      sq += si * si;
    }
    const double predicted = -0.5 * (gs - sr);
    const double snorm = std::sqrt(sq);
    if (flops != nullptr) flops->Add(7.0 * static_cast<double>(d));

    const double value_new = f.ValueAndGradient(ws.x_new, ws.grad_new, flops);
    const double actual = value - value_new;
    grad_eval_at_x = false;  // sigmas now cached at x_new; set true on accept

    // The model's best achievable decrease is below the floating-point
    // resolution of the objective: no acceptance test can measure progress
    // anymore, so the iterate is converged to numerical precision.
    const double value_floor =
        8.0 * std::numeric_limits<double>::epsilon() * std::fabs(value);
    if (predicted > 0 && predicted < value_floor && actual <= 0) {
      res.converged = true;
      break;
    }

    // Trust-region radius update (Lin-More style).
    const double ratio = predicted > 0 ? actual / predicted : -1.0;
    if (ratio < opt.eta1) {
      delta = std::min(std::max(opt.sigma1 * snorm, opt.sigma1 * delta),
                       opt.sigma2 * delta);
    } else if (ratio >= opt.eta2 && cg.hit_boundary) {
      delta = std::max(delta, opt.sigma3 * snorm);
    }

    if (ratio > opt.eta0 && actual > 0) {
      value = value_new;
      grad_eval_at_x = true;  // x becomes x_new below
      std::swap(ws.grad, ws.grad_new);
      // Accept-copy fused with <g, g>; four-lane order matches linalg::Dot.
      gg = linalg::CopyNormSq(ws.x_new, x, ws.grad);
      gnorm = std::sqrt(gg);
      if (is_converged(gnorm)) {
        res.converged = true;
        break;
      }
    }
    if (delta < 1e-12 || snorm < 1e-14) break;  // stalled
  }

  res.objective = value;
  res.gradient_norm = gnorm;
  return res;
}

}  // namespace psra::solver
