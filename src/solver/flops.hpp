// Floating-point operation accounting.
//
// The execution engines charge virtual compute time as flops *
// seconds_per_flop (simnet::CostModel), so every numeric kernel that runs on
// behalf of a simulated worker reports its work through a FlopCounter.
#pragma once

namespace psra::solver {

struct FlopCounter {
  double flops = 0.0;

  void Add(double f) { flops += f; }
  void Reset() { flops = 0.0; }
};

}  // namespace psra::solver
