// L2-proximal logistic loss for the ADMM x-subproblem (paper eq. 4):
//
//   phi(x) = sum_s log(1 + exp(-y_s a_s^T x)) + x^T v + (rho/2) ||x - z||^2
//
// with v the dual term (y_i in the paper) and z the consensus iterate.
// Provides value, gradient and Hessian-vector products (H = A^T D A + rho I)
// so TRON can run matrix-free over the CSR shard.
#pragma once

#include <span>

#include "data/dataset.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/gram.hpp"
#include "solver/flops.hpp"

namespace psra::solver {

/// Plain logistic loss over a dataset (no proximal terms); also used to
/// evaluate the global objective on the full training set.
double LogisticValue(const data::Dataset& ds, std::span<const double> x,
                     FlopCounter* flops = nullptr);

class ProximalLogistic {
 public:
  /// `shard` must outlive this object. rho >= 0; v and z have the feature
  /// dimension (either may be empty spans meaning zero).
  ProximalLogistic(const data::Dataset* shard, double rho);

  /// Sets the proximal center z and linear term v for the current ADMM
  /// iteration. Both must have size dim() (enforced).
  void SetIterationTerms(std::span<const double> v, std::span<const double> z);

  /// Updates the proximal weight (adaptive-penalty ADMM changes rho between
  /// iterations).
  void SetRho(double rho);
  double rho() const { return rho_; }

  /// Enables the Gram-accelerated Hessian path (transpose reduction,
  /// DESIGN.md §14): PrepareHessian* additionally accumulates the packed
  /// weighted Gram G = A^T D A + rho I once per outer TRON iteration, after
  /// which every Hessian-vector product is a dense d x d symmetric matvec
  /// that never re-streams the shard. Pays off on tall shards
  /// (num_samples >> dim). The Gram buffer is preallocated here so the
  /// iteration hot path stays allocation-free.
  void SetUseGramHessian(bool on);
  bool use_gram_hessian() const { return use_gram_; }

  std::uint64_t dim() const;
  std::uint64_t num_samples() const;

  /// phi(x); also caches the per-sample margins for the follow-up gradient.
  double Value(std::span<const double> x, FlopCounter* flops = nullptr) const;

  /// grad = nabla phi(x). Returns phi(x).
  double ValueAndGradient(std::span<const double> x, std::span<double> grad,
                          FlopCounter* flops = nullptr) const;

  /// Prepares Hessian state at x (per-sample sigma weights); must be called
  /// before HessianVec.
  void PrepareHessian(std::span<const double> x,
                      FlopCounter* flops = nullptr) const;

  /// PrepareHessian at the point of the most recent ValueAndGradient call,
  /// reusing its cached per-sample sigmas: no matrix product and no
  /// transcendentals, with weights bit-identical to PrepareHessian at that
  /// point. The caller is responsible for knowing the last gradient
  /// evaluation happened at the intended x (TRON tracks this across
  /// accepted/rejected trial steps).
  void PrepareHessianFromLastGradient(FlopCounter* flops = nullptr) const;

  /// out = (A^T D A + rho I) d, with D from the last PrepareHessian call.
  void HessianVec(std::span<const double> d, std::span<double> out,
                  FlopCounter* flops = nullptr) const;

  /// HessianVec plus the quadratic form: returns d^T H d, with <d, d> = `dd`
  /// supplied by the caller (CG maintains it via a recurrence, so the
  /// quadratic costs no extra pass over the feature dimension).
  double HessianVecQuad(std::span<const double> d, double dd,
                        std::span<double> out,
                        FlopCounter* flops = nullptr) const;

 private:
  const data::Dataset* shard_;
  double rho_;
  std::span<const double> v_;
  std::span<const double> z_;
  // Scratch: per-sample weights sigma*(1-sigma) for Hessian products, margin
  // buffers and per-sample coefficient vectors. Mutable because they are
  // caches, not state; they grow once to num_samples() and are recycled, so
  // repeated evaluations do not allocate.
  mutable linalg::DenseVector hess_weights_;
  mutable linalg::DenseVector margins_;
  mutable linalg::DenseVector coeff_;
  mutable linalg::DenseVector sigmas_;
  mutable linalg::DenseVector hessvec_tmp_;
  // Transpose-reduction state: packed weighted Gram (rho baked into the
  // diagonal at build time) rebuilt by PrepareHessian* while enabled.
  bool use_gram_ = false;
  double gram_flops_ = 0.0;  // cost of one A^T D A accumulation
  mutable linalg::SymmetricGram gram_;

  void BuildGramFromWeights(FlopCounter* flops) const;
};

}  // namespace psra::solver
