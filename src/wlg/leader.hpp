// Leader election for intra-node communication domains (paper Section 4.3:
// "Workers in the same group form a communication domain and elect a worker
// responsible for communication between communication domains, which is
// called the Leader").
#pragma once

#include <cstdint>
#include <span>

#include "simnet/topology.hpp"

namespace psra::wlg {

enum class LeaderPolicy {
  /// Lowest global rank on the node (the MPI-style convention).
  kLowestRank,
  /// Deterministic pseudo-random pick keyed by (seed, node), so tests can
  /// exercise non-rank-0 leaders.
  kSeededRandom,
};

/// Elects the leader among `node_ranks` (must be non-empty, all on one node).
simnet::Rank ElectLeader(const simnet::Topology& topo,
                         std::span<const simnet::Rank> node_ranks,
                         LeaderPolicy policy = LeaderPolicy::kLowestRank,
                         std::uint64_t seed = 0);

}  // namespace psra::wlg
