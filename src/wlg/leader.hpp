// Leader election for intra-node communication domains (paper Section 4.3:
// "Workers in the same group form a communication domain and elect a worker
// responsible for communication between communication domains, which is
// called the Leader").
#pragma once

#include <cstdint>
#include <span>

#include "simnet/topology.hpp"

namespace psra::wlg {

enum class LeaderPolicy {
  /// Lowest global rank on the node (the MPI-style convention).
  kLowestRank,
  /// Deterministic pseudo-random pick keyed by (seed, node), so tests can
  /// exercise non-rank-0 leaders.
  kSeededRandom,
};

/// Elects the leader among `node_ranks` (must be non-empty, all on one node).
simnet::Rank ElectLeader(const simnet::Topology& topo,
                         std::span<const simnet::Rank> node_ranks,
                         LeaderPolicy policy = LeaderPolicy::kLowestRank,
                         std::uint64_t seed = 0);

/// Re-election after a leader death: elects among the SURVIVING workers of
/// the node. `epoch` (e.g. the iteration of the death) salts the seeded
/// policy so successive re-elections on one node can rotate through
/// candidates instead of repeating the original pick.
simnet::Rank ReElectLeader(const simnet::Topology& topo,
                           std::span<const simnet::Rank> alive_ranks,
                           LeaderPolicy policy, std::uint64_t seed,
                           std::uint64_t epoch);

}  // namespace psra::wlg
