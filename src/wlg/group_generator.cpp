#include "wlg/group_generator.hpp"

#include <algorithm>
#include <numeric>

#include "support/status.hpp"

namespace psra::wlg {

GroupGenerator::GroupGenerator(std::uint32_t threshold,
                               std::uint32_t num_leaders)
    : threshold_(threshold), num_leaders_(num_leaders) {
  PSRA_REQUIRE(threshold >= 1, "grouping threshold must be at least 1");
  PSRA_REQUIRE(num_leaders >= 1, "need at least one leader");
  PSRA_REQUIRE(threshold <= num_leaders,
               "threshold larger than the number of leaders");
  reported_.assign(num_leaders, false);
  queue_.reserve(num_leaders);
}

bool GroupGenerator::ReportInto(simnet::NodeId node, simnet::VirtualTime t,
                                GroupBatch& out) {
  PSRA_REQUIRE(node < num_leaders_, "node id out of range");
  PSRA_REQUIRE(!reported_[node], "leader reported twice in one cycle");
  PSRA_REQUIRE(t >= last_report_time_,
               "reports must arrive in non-decreasing time order");
  reported_[node] = true;
  ++reports_this_cycle_;
  last_report_time_ = t;
  queue_.push_back(node);

  if (queue_.size() < threshold_) return false;

  out.PushGroup(queue_, t);
  queue_.clear();  // keeps capacity: the queue never reallocates in steady state

  if (reports_this_cycle_ == num_leaders_) {
    // Cycle complete with an exact fill; start the next cycle.
    reports_this_cycle_ = 0;
    last_report_time_ = 0.0;
    std::fill(reported_.begin(), reported_.end(), false);
  }
  return true;
}

bool GroupGenerator::EndCycleInto(GroupBatch& out) {
  const bool formed = !queue_.empty();
  if (formed) {
    out.PushGroup(queue_, last_report_time_);
    queue_.clear();
  }
  reports_this_cycle_ = 0;
  last_report_time_ = 0.0;
  std::fill(reported_.begin(), reported_.end(), false);
  return formed;
}

namespace {

/// Copies a batch's groups into the vector-of-vectors form the convenience
/// APIs return.
void AppendFormations(const GroupBatch& batch, std::size_t first,
                      std::vector<GroupFormation>& out) {
  for (std::size_t i = first; i < batch.size(); ++i) {
    const GroupView& v = batch.group(i);
    const auto members = batch.members(v);
    GroupFormation g;
    g.members.assign(members.begin(), members.end());
    g.formed_at = v.formed_at;
    out.push_back(std::move(g));
  }
}

}  // namespace

std::optional<GroupFormation> GroupGenerator::Report(simnet::NodeId node,
                                                     simnet::VirtualTime t) {
  GroupBatch batch;
  if (!ReportInto(node, t, batch)) return std::nullopt;
  std::vector<GroupFormation> out;
  AppendFormations(batch, 0, out);
  return std::move(out.front());
}

std::optional<GroupFormation> GroupGenerator::EndCycle() {
  GroupBatch batch;
  if (!EndCycleInto(batch)) return std::nullopt;
  std::vector<GroupFormation> out;
  AppendFormations(batch, 0, out);
  return std::move(out.front());
}

bool GroupGenerator::Withdraw(simnet::NodeId node) {
  PSRA_REQUIRE(node < num_leaders_, "node id out of range");
  const auto it = std::find(queue_.begin(), queue_.end(), node);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void RunGroupingCycle(GroupGenerator& gg, std::span<const LeaderReport> reports,
                      GroupWorkspace& ws) {
  // Replay reports and mid-round deaths in virtual-time order. Each event is
  // (time, kind, node); reports sort before deaths at equal times so a
  // leader that dies exactly when it reports still gets queued (and then
  // withdrawn), matching the "report, then die" narrative of the model.
  ws.groups.Clear();
  ws.events.clear();
  for (const auto& r : reports) {
    ws.events.push_back({r.time, 0, r.node, r.time});
    if (r.dies_at) {
      ws.events.push_back({std::max(*r.dies_at, r.time), 1, r.node, r.time});
    }
  }
  // (time, kind, node) is a total order — node ids are distinct per kind — so
  // plain sort is deterministic and, unlike stable_sort, allocation-free.
  std::sort(ws.events.begin(), ws.events.end(),
            [](const GroupWorkspace::CycleEvent& a,
               const GroupWorkspace::CycleEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.node < b.node;
            });

  for (const GroupWorkspace::CycleEvent& e : ws.events) {
    if (e.kind == 0) {
      (void)gg.ReportInto(e.node, e.report_time, ws.groups);
    } else {
      (void)gg.Withdraw(e.node);
    }
  }
  (void)gg.EndCycleInto(ws.groups);
}

std::vector<GroupFormation> RunGroupingCycle(
    GroupGenerator& gg, std::span<const LeaderReport> reports) {
  GroupWorkspace ws;
  RunGroupingCycle(gg, reports, ws);
  std::vector<GroupFormation> groups;
  AppendFormations(ws.groups, 0, groups);
  return groups;
}

void RunGroupingCycle(GroupGenerator& gg,
                      std::span<const simnet::VirtualTime> report_times,
                      GroupWorkspace& ws) {
  PSRA_REQUIRE(report_times.size() == gg.num_leaders(),
               "one report time per leader required");
  ws.groups.Clear();
  ws.order.resize(report_times.size());
  std::iota(ws.order.begin(), ws.order.end(), 0);
  // (time, node) is a total order over distinct node ids, so plain sort is
  // deterministic and allocation-free (stable_sort buys nothing here).
  std::sort(ws.order.begin(), ws.order.end(),
            [&](simnet::NodeId a, simnet::NodeId b) {
              if (report_times[a] != report_times[b]) {
                return report_times[a] < report_times[b];
              }
              return a < b;
            });

  for (simnet::NodeId n : ws.order) {
    (void)gg.ReportInto(n, report_times[n], ws.groups);
  }
  (void)gg.EndCycleInto(ws.groups);
}

std::vector<GroupFormation> RunGroupingCycle(
    GroupGenerator& gg, const std::vector<simnet::VirtualTime>& report_times) {
  GroupWorkspace ws;
  RunGroupingCycle(gg, std::span<const simnet::VirtualTime>(report_times), ws);
  std::vector<GroupFormation> groups;
  AppendFormations(ws.groups, 0, groups);
  return groups;
}

}  // namespace psra::wlg
