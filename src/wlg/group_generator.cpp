#include "wlg/group_generator.hpp"

#include <algorithm>
#include <numeric>

#include "support/status.hpp"

namespace psra::wlg {

GroupGenerator::GroupGenerator(std::uint32_t threshold,
                               std::uint32_t num_leaders)
    : threshold_(threshold), num_leaders_(num_leaders) {
  PSRA_REQUIRE(threshold >= 1, "grouping threshold must be at least 1");
  PSRA_REQUIRE(num_leaders >= 1, "need at least one leader");
  PSRA_REQUIRE(threshold <= num_leaders,
               "threshold larger than the number of leaders");
  reported_.assign(num_leaders, false);
}

std::optional<GroupFormation> GroupGenerator::Report(simnet::NodeId node,
                                                     simnet::VirtualTime t) {
  PSRA_REQUIRE(node < num_leaders_, "node id out of range");
  PSRA_REQUIRE(!reported_[node], "leader reported twice in one cycle");
  PSRA_REQUIRE(t >= last_report_time_,
               "reports must arrive in non-decreasing time order");
  reported_[node] = true;
  ++reports_this_cycle_;
  last_report_time_ = t;
  queue_.push_back(node);

  if (queue_.size() < threshold_) return std::nullopt;

  GroupFormation g;
  g.members = std::move(queue_);
  g.formed_at = t;
  queue_.clear();

  if (reports_this_cycle_ == num_leaders_) {
    // Cycle complete with an exact fill; start the next cycle.
    reports_this_cycle_ = 0;
    last_report_time_ = 0.0;
    std::fill(reported_.begin(), reported_.end(), false);
  }
  return g;
}

std::optional<GroupFormation> GroupGenerator::EndCycle() {
  std::optional<GroupFormation> out;
  if (!queue_.empty()) {
    GroupFormation g;
    g.members = std::move(queue_);
    g.formed_at = last_report_time_;
    queue_.clear();
    out = g;
  }
  reports_this_cycle_ = 0;
  last_report_time_ = 0.0;
  std::fill(reported_.begin(), reported_.end(), false);
  return out;
}

bool GroupGenerator::Withdraw(simnet::NodeId node) {
  PSRA_REQUIRE(node < num_leaders_, "node id out of range");
  const auto it = std::find(queue_.begin(), queue_.end(), node);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

std::vector<GroupFormation> RunGroupingCycle(
    GroupGenerator& gg, std::span<const LeaderReport> reports) {
  // Replay reports and mid-round deaths in virtual-time order. Each event is
  // (time, kind, node); reports sort before deaths at equal times so a
  // leader that dies exactly when it reports still gets queued (and then
  // withdrawn), matching the "report, then die" narrative of the model.
  struct Event {
    simnet::VirtualTime time;
    int kind;  // 0 = report, 1 = death
    simnet::NodeId node;
    simnet::VirtualTime report_time;
  };
  std::vector<Event> events;
  events.reserve(2 * reports.size());
  for (const auto& r : reports) {
    events.push_back({r.time, 0, r.node, r.time});
    if (r.dies_at) {
      events.push_back({std::max(*r.dies_at, r.time), 1, r.node, r.time});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.node < b.node;
                   });

  std::vector<GroupFormation> groups;
  for (const Event& e : events) {
    if (e.kind == 0) {
      if (auto g = gg.Report(e.node, e.report_time)) {
        groups.push_back(std::move(*g));
      }
    } else {
      (void)gg.Withdraw(e.node);
    }
  }
  if (auto g = gg.EndCycle()) groups.push_back(std::move(*g));
  return groups;
}

std::vector<GroupFormation> RunGroupingCycle(
    GroupGenerator& gg, const std::vector<simnet::VirtualTime>& report_times) {
  PSRA_REQUIRE(report_times.size() == gg.num_leaders(),
               "one report time per leader required");
  std::vector<simnet::NodeId> order(report_times.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](simnet::NodeId a, simnet::NodeId b) {
                     if (report_times[a] != report_times[b]) {
                       return report_times[a] < report_times[b];
                     }
                     return a < b;
                   });

  std::vector<GroupFormation> groups;
  for (simnet::NodeId n : order) {
    if (auto g = gg.Report(n, report_times[n])) {
      groups.push_back(std::move(*g));
    }
  }
  if (auto g = gg.EndCycle()) groups.push_back(std::move(*g));
  return groups;
}

}  // namespace psra::wlg
