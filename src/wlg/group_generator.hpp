// Group Generator (GG) with buffer queue GQ — paper Section 4.3.2.
//
// Leaders report to the GG when their node finishes its local computation;
// the GG pushes each reporter into the queue GQ and, whenever GQ reaches the
// grouping threshold, pops those leaders as one communication group G_inter
// and notifies them to synchronize. A grouping cycle spans one ADMM
// iteration: once every leader has reported, any residual reporters (fewer
// than the threshold, e.g. when the node count is not divisible) form a
// final smaller group and the next cycle begins.
//
// Formation times are virtual: a group forms at the report time of its last
// member, so fast nodes group with fast nodes and never wait for the global
// straggler — the mechanism behind Figure 7.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "simnet/cost_model.hpp"
#include "simnet/topology.hpp"
#include "wlg/group_workspace.hpp"

namespace psra::wlg {

struct GroupFormation {
  std::vector<simnet::NodeId> members;
  /// Virtual time the group was formed (report time of the last member).
  simnet::VirtualTime formed_at = 0.0;
};

class GroupGenerator {
 public:
  /// `threshold` leaders form a group (>= 1); `num_leaders` total leaders in
  /// the cluster (for cycle tracking).
  GroupGenerator(std::uint32_t threshold, std::uint32_t num_leaders);

  std::uint32_t threshold() const { return threshold_; }
  std::uint32_t num_leaders() const { return num_leaders_; }

  /// Leader of `node` reports at virtual time `t`. Reports within one cycle
  /// must be delivered in non-decreasing time order (the engines sort
  /// arrivals). Returns the formed group when this report fills the queue.
  std::optional<GroupFormation> Report(simnet::NodeId node,
                                       simnet::VirtualTime t);

  /// Allocation-free Report: a formed group is appended to `out` instead of
  /// being returned in a fresh vector, and the buffer queue keeps its
  /// capacity. Returns true when this report formed a group.
  bool ReportInto(simnet::NodeId node, simnet::VirtualTime t, GroupBatch& out);

  /// Number of reports received in the current cycle.
  std::uint32_t ReportsThisCycle() const { return reports_this_cycle_; }

  /// Residual queue contents as a final (smaller) group; empty optional if
  /// the queue is empty. Resets the cycle either way.
  std::optional<GroupFormation> EndCycle();

  /// Allocation-free EndCycle: the residual group (if any) is appended to
  /// `out`. Returns true when a group was appended.
  bool EndCycleInto(GroupBatch& out);

  /// Leader of `node` died after reporting but before its group formed: the
  /// GG drops it from the buffer queue, so later reporters take its place
  /// (the regrouping path of the fault model). Returns false when the node
  /// is not queued — its group already formed, and the death must be handled
  /// downstream by the collective layer.
  bool Withdraw(simnet::NodeId node);

  std::size_t QueueDepth() const { return queue_.size(); }

 private:
  std::uint32_t threshold_;
  std::uint32_t num_leaders_;
  std::uint32_t reports_this_cycle_ = 0;
  std::vector<simnet::NodeId> queue_;  // GQ
  simnet::VirtualTime last_report_time_ = 0.0;
  std::vector<bool> reported_;  // per-node guard within a cycle
};

/// Convenience: runs one full grouping cycle given every leader's report
/// time, returning all formed groups (deterministic: ties broken by node id).
std::vector<GroupFormation> RunGroupingCycle(
    GroupGenerator& gg, const std::vector<simnet::VirtualTime>& report_times);

/// Allocation-free cycle used by the engine hot path: the formed groups land
/// in ws.groups (cleared first) and the sort scratch lives in `ws`, so a
/// workspace reused across iterations performs no heap allocations in steady
/// state. Identical formations to the vector-returning overload.
void RunGroupingCycle(GroupGenerator& gg,
                      std::span<const simnet::VirtualTime> report_times,
                      GroupWorkspace& ws);

/// One leader's report in a faulty cycle. `dies_at`, when set, is the
/// virtual time the leader dies mid-round: if it dies while still queued the
/// GG withdraws it (regrouping); if its group already formed the formation
/// is returned as-is and the caller excludes the dead member downstream.
struct LeaderReport {
  simnet::NodeId node = 0;
  simnet::VirtualTime time = 0.0;
  std::optional<simnet::VirtualTime> dies_at;
};

/// Fault-aware grouping cycle over a SUBSET of leaders (dead nodes simply do
/// not report). Report and death events are replayed in virtual-time order
/// (ties: reports first, then by node id), so the regrouped memberships are
/// deterministic.
std::vector<GroupFormation> RunGroupingCycle(
    GroupGenerator& gg, std::span<const LeaderReport> reports);

/// Workspace variant of the fault-aware cycle (same formations; the event
/// scratch and formed groups live in `ws`).
void RunGroupingCycle(GroupGenerator& gg, std::span<const LeaderReport> reports,
                      GroupWorkspace& ws);

}  // namespace psra::wlg
