// Pooled storage for the group lifecycle (paper Section 4.3).
//
// The Group Generator forms a handful of small groups every iteration; done
// naively that is one members-vector allocation per group per iteration plus
// the GG's own event/order scratch. GroupBatch flattens all groups formed in
// one cycle into a single resident buffer (the same recycling pattern as
// TronWorkspace/WorkerSet, see DESIGN.md "Performance"), and GroupWorkspace
// adds the cycle scratch RunGroupingCycle needs, so the steady-state dynamic
// grouping path performs no heap allocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simnet/topology.hpp"

namespace psra::wlg {

/// One formed group inside a GroupBatch: a [offset, offset + size) window of
/// the batch's flat member array plus the formation time.
struct GroupView {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  /// Virtual time the group was formed (report time of the last member).
  simnet::VirtualTime formed_at = 0.0;
};

/// All groups formed in one grouping cycle, stored flat. Clear() keeps the
/// capacity of both arrays, so a batch reused across iterations stops
/// allocating once it has seen the largest cycle.
class GroupBatch {
 public:
  void Clear() {
    members_.clear();
    groups_.clear();
  }
  void Reserve(std::size_t num_leaders) {
    members_.reserve(num_leaders);
    groups_.reserve(num_leaders);
  }

  void PushGroup(std::span<const simnet::NodeId> members,
                 simnet::VirtualTime formed_at) {
    GroupView v;
    v.offset = static_cast<std::uint32_t>(members_.size());
    v.size = static_cast<std::uint32_t>(members.size());
    v.formed_at = formed_at;
    members_.insert(members_.end(), members.begin(), members.end());
    groups_.push_back(v);
  }

  bool empty() const { return groups_.empty(); }
  std::size_t size() const { return groups_.size(); }
  const GroupView& group(std::size_t i) const { return groups_[i]; }
  std::span<const simnet::NodeId> members(const GroupView& v) const {
    return std::span<const simnet::NodeId>(members_).subspan(v.offset, v.size);
  }

 private:
  std::vector<simnet::NodeId> members_;  // all groups' members, concatenated
  std::vector<GroupView> groups_;
};

/// Everything one grouping cycle needs, recycled across iterations: the
/// formed groups plus the replay scratch used by RunGroupingCycle.
struct GroupWorkspace {
  GroupBatch groups;

  /// Report/death event replayed by the fault-aware cycle (public so the
  /// cycle runners can fill it; not meaningful between calls).
  struct CycleEvent {
    simnet::VirtualTime time = 0.0;
    int kind = 0;  // 0 = report, 1 = death
    simnet::NodeId node = 0;
    simnet::VirtualTime report_time = 0.0;
  };
  std::vector<simnet::NodeId> order;
  std::vector<CycleEvent> events;
};

}  // namespace psra::wlg
