#include "wlg/leader.hpp"

#include <algorithm>

#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::wlg {

simnet::Rank ElectLeader(const simnet::Topology& topo,
                         std::span<const simnet::Rank> node_ranks,
                         LeaderPolicy policy, std::uint64_t seed) {
  PSRA_REQUIRE(!node_ranks.empty(), "cannot elect a leader from no workers");
  const simnet::NodeId node = topo.NodeOf(node_ranks[0]);
  for (simnet::Rank r : node_ranks) {
    PSRA_REQUIRE(topo.NodeOf(r) == node,
                 "all candidates must live on the same node");
  }
  switch (policy) {
    case LeaderPolicy::kLowestRank:
      return *std::min_element(node_ranks.begin(), node_ranks.end());
    case LeaderPolicy::kSeededRandom: {
      Rng rng(seed);
      Rng node_rng = rng.Fork(node);
      return node_ranks[static_cast<std::size_t>(
          node_rng.NextBelow(node_ranks.size()))];
    }
  }
  throw InvalidArgument("unknown leader policy");
}

simnet::Rank ReElectLeader(const simnet::Topology& topo,
                           std::span<const simnet::Rank> alive_ranks,
                           LeaderPolicy policy, std::uint64_t seed,
                           std::uint64_t epoch) {
  // Salting the seed (instead of adding a parameter to ElectLeader) keeps
  // the original election — and therefore every existing trace — unchanged.
  return ElectLeader(topo, alive_ranks, policy,
                     seed ^ (0x5EADE1EC7ULL + epoch));
}

}  // namespace psra::wlg
