#include "transport/launch.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace psra::transport {

using comm::Transport;

LaunchResult ForkRanks(Transport::Rank world,
                       const std::function<void(const TcpOptions&)>& body,
                       double timeout_s) {
  PSRA_REQUIRE(world > 0, "need at least one rank");
  std::uint16_t port = 0;  // ephemeral: the kernel picks a free port
  const int listener = BindListener(port, 0);

  std::vector<pid_t> pids(world, -1);
  for (Transport::Rank r = 0; r < world; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      close(listener);
      for (pid_t p : pids) {
        if (p > 0) kill(p, SIGKILL);
      }
      throw comm::TransportError("fork failed");
    }
    if (pid == 0) {
      TcpOptions opt;
      opt.rank = r;
      opt.world = world;
      opt.port = port;
      opt.listen_fd = r == 0 ? listener : -1;
      if (r != 0) close(listener);
      int status = 0;
      try {
        body(opt);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[rank %u] %s\n", r, e.what());
        status = 255;
      }
      std::fflush(nullptr);
      _exit(status);
    }
    pids[r] = pid;
  }
  close(listener);

  // Reap with a deadline; kill stragglers so a hung collective cannot hang
  // the harness.
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  LaunchResult result;
  result.exit_codes.assign(world, -1);
  std::size_t live = world;
  bool killed = false;
  while (live > 0) {
    bool reaped = false;
    for (Transport::Rank r = 0; r < world; ++r) {
      if (result.exit_codes[r] != -1 || pids[r] <= 0) continue;
      int status = 0;
      const pid_t got = waitpid(pids[r], &status, WNOHANG);
      if (got == pids[r]) {
        result.exit_codes[r] = WIFEXITED(status) ? WEXITSTATUS(status)
                               : WIFSIGNALED(status)
                                   ? 128 + WTERMSIG(status)
                                   : 254;
        --live;
        reaped = true;
      }
    }
    if (live == 0) break;
    if (!killed && Clock::now() >= deadline) {
      for (Transport::Rank r = 0; r < world; ++r) {
        if (result.exit_codes[r] == -1 && pids[r] > 0) kill(pids[r], SIGKILL);
      }
      killed = true;
    }
    if (!reaped) usleep(5'000);
  }
  return result;
}

}  // namespace psra::transport
