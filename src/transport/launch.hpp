// Multi-process launch helper for the TCP backend.
//
// The parent binds the rendezvous listener BEFORE forking and passes the
// open fd to the rank-0 child, so there is no window in which another
// process could take the port — rendezvous is race-free by construction.
// tools/psra_launch wraps the same scheme around exec'd worker binaries via
// the PSRA_RANK / PSRA_WORLD / PSRA_PORT / PSRA_LISTEN_FD environment.
#pragma once

#include <functional>
#include <vector>

#include "transport/tcp.hpp"

namespace psra::transport {

struct LaunchResult {
  /// Exit status per rank: 0 on success, the child's exit code otherwise
  /// (128 + signal for abnormal death, 255 when the body threw).
  std::vector<int> exit_codes;

  bool AllZero() const {
    for (int c : exit_codes) {
      if (c != 0) return false;
    }
    return true;
  }
};

/// Forks `world` child processes; child r invokes `body` with TcpOptions
/// ready to construct its TcpTransport (rank 0 inherits the pre-bound
/// listener). The parent blocks until every child exits or `timeout_s`
/// passes, then kills stragglers (their exit code reports the signal).
/// An exception escaping `body` exits that child with status 255.
LaunchResult ForkRanks(comm::Transport::Rank world,
                       const std::function<void(const TcpOptions&)>& body,
                       double timeout_s = 120.0);

}  // namespace psra::transport
