// In-process transport backend: every rank is a thread, delivery through
// shared mailboxes. Semantically identical to the TCP backend (ordered
// per-(src, tag) delivery, fence = flush + barrier, bounded receive wait)
// but with zero setup cost — the unit tests run the cross-backend
// conformance suite on it, and it doubles as the reference implementation
// of the Transport contract.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/transport.hpp"

namespace psra::transport {

/// Creates the `world` endpoints of one in-process mesh. The mesh owns the
/// shared state; endpoints stay valid while the mesh lives. Hand endpoint(r)
/// to thread r.
class InprocMesh {
 public:
  /// `recv_timeout_s`: how long a Recv waits for a matching message before
  /// throwing TransportError (a deadlock guard for tests).
  explicit InprocMesh(comm::Transport::Rank world, double recv_timeout_s = 20);
  ~InprocMesh();

  InprocMesh(const InprocMesh&) = delete;
  InprocMesh& operator=(const InprocMesh&) = delete;

  comm::Transport::Rank world_size() const;
  comm::Transport& endpoint(comm::Transport::Rank r);

 private:
  struct Hub;
  class Endpoint;
  std::shared_ptr<Hub> hub_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace psra::transport
