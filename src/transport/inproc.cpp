#include "transport/inproc.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/wire.hpp"

namespace psra::transport {

using comm::Transport;
using comm::TransportError;

namespace {
struct Frame {
  Transport::Rank src;
  Transport::Tag tag;
  std::vector<std::byte> payload;
};
}  // namespace

struct InprocMesh::Hub {
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Frame> frames;
  };

  explicit Hub(Transport::Rank n, double timeout_s)
      : world(n), timeout(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::duration<double>(timeout_s))) {
    boxes = std::vector<Mailbox>(n);
  }

  const Transport::Rank world;
  const std::chrono::milliseconds timeout;
  std::vector<Mailbox> boxes;

  // Generation-counting barrier.
  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  Transport::Rank barrier_count = 0;
  std::uint64_t barrier_generation = 0;
};

class InprocMesh::Endpoint final : public comm::Transport {
 public:
  Endpoint(std::shared_ptr<Hub> hub, Rank rank)
      : hub_(std::move(hub)), rank_(rank) {}

  Rank rank() const override { return rank_; }
  Rank world_size() const override { return hub_->world; }
  std::string Name() const override { return "inproc"; }

  void Post(Rank dst, Tag tag, std::span<const std::byte> payload) override {
    CheckPeer(dst);
    CheckUserTag(tag);
    // Test-only path: per-call histogram lookups are acceptable, so there is
    // no hoisted-pointer machinery like the TCP backend's.
    if (obs::WireObs* o = attached_obs(); o != nullptr) {
      const double now = o->Now();
      o->tracer().Add(o->track(), "wire_post", now, now, o->iteration, 0.0,
                      static_cast<std::int64_t>(dst), tag);
    }
    auto& box = hub_->boxes[dst];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.frames.push_back(
          Frame{rank_, tag, {payload.begin(), payload.end()}});
    }
    box.cv.notify_all();
    CountPost(payload.size());
  }

  void Recv(Rank src, Tag tag, std::vector<std::byte>& out) override {
    CheckPeer(src);
    CheckUserTag(tag);
    obs::WireObs* o = attached_obs();
    const double begin = o != nullptr ? o->Now() : 0.0;
    auto& box = hub_->boxes[rank_];
    std::unique_lock<std::mutex> lock(box.mu);
    auto match = [&]() {
      return std::find_if(box.frames.begin(), box.frames.end(),
                          [&](const Frame& f) {
                            return f.src == src && f.tag == tag;
                          });
    };
    auto it = match();
    if (it == box.frames.end()) {
      const bool ok = box.cv.wait_for(lock, hub_->timeout, [&] {
        return (it = match()) != box.frames.end();
      });
      if (!ok) {
        throw TransportError("inproc recv timeout waiting for rank " +
                             std::to_string(src) + " tag " +
                             std::to_string(tag));
      }
    }
    out = std::move(it->payload);
    box.frames.erase(it);
    lock.unlock();
    if (o != nullptr) {
      const double end = o->Now();
      o->tracer().Add(o->track(), "wire_recv", begin, end, o->iteration,
                      end - begin, static_cast<std::int64_t>(src), tag);
      o->metrics()
          .Histo("wire.frame.wait_s", obs::WireLatencyBounds())
          .Observe(end - begin);
    }
    CountRecv(out.size());
  }

  void Fence() override {
    obs::WireObs* o = attached_obs();
    const double begin = o != nullptr ? o->Now() : 0.0;
    // Posts deliver synchronously, so Waitall is a no-op; only the barrier
    // remains.
    std::unique_lock<std::mutex> lock(hub_->barrier_mu);
    const std::uint64_t gen = hub_->barrier_generation;
    if (++hub_->barrier_count == hub_->world) {
      hub_->barrier_count = 0;
      ++hub_->barrier_generation;
      hub_->barrier_cv.notify_all();
    } else {
      const bool ok = hub_->barrier_cv.wait_for(
          lock, hub_->timeout,
          [&] { return hub_->barrier_generation != gen; });
      if (!ok) {
        throw TransportError("inproc fence timeout: a rank never arrived");
      }
    }
    lock.unlock();
    if (o != nullptr) {
      const double end = o->Now();
      o->tracer().Add(o->track(), "wire_fence", begin, end, o->iteration,
                      end - begin);
      o->metrics()
          .Histo("wire.fence.wait_s", obs::WireLatencyBounds())
          .Observe(end - begin);
    }
    CountFence();
  }

 private:
  std::shared_ptr<Hub> hub_;
  Rank rank_;
};

InprocMesh::InprocMesh(Transport::Rank world, double recv_timeout_s) {
  PSRA_REQUIRE(world > 0, "inproc mesh needs at least one rank");
  hub_ = std::make_shared<Hub>(world, recv_timeout_s);
  endpoints_.reserve(world);
  for (Transport::Rank r = 0; r < world; ++r) {
    endpoints_.push_back(std::make_unique<Endpoint>(hub_, r));
  }
}

InprocMesh::~InprocMesh() = default;

Transport::Rank InprocMesh::world_size() const { return hub_->world; }

comm::Transport& InprocMesh::endpoint(Transport::Rank r) {
  PSRA_REQUIRE(r < endpoints_.size(), "endpoint rank out of range");
  return *endpoints_[r];
}

}  // namespace psra::transport
