// Multi-process TCP transport backend: every rank is an OS process, the
// ranks form a full mesh of nonblocking TCP sockets driven by a poll loop
// (the classic Isend/Irecv/Waitall structure: Post enqueues frames on
// per-peer send queues, the pump flushes them opportunistically and parses
// incoming frames, Recv blocks pumping until the matched frame arrives,
// Fence drains every queue then runs a centralized barrier through rank 0).
//
// Rendezvous: rank 0 listens on a known port (either an inherited pre-bound
// listener fd from the launcher — race-free — or a port it binds itself,
// retrying upward on EADDRINUSE). Every other rank opens its own ephemeral
// listener, connects to rank 0 and sends hello{rank, my_listener_port};
// once all hellos are in, rank 0 broadcasts the port map and each pair
// (i, j) with 0 < i < j completes the mesh by j connecting to i's listener.
//
// Failure semantics: a peer closing its socket mid-collective (rank death)
// or a receive deadline expiring raises TransportError — collectives fail
// fast instead of hanging.
#pragma once

#include <cstdint>
#include <memory>

#include "comm/transport.hpp"

namespace psra::transport {

struct TcpOptions {
  comm::Transport::Rank rank = 0;
  comm::Transport::Rank world = 1;
  /// Rank 0's rendezvous port. For rank 0 with no listen_fd: the port to
  /// bind (0 = ephemeral, only meaningful with a single process or tests
  /// probing listen_port()). For rank > 0: the port to connect to.
  std::uint16_t port = 0;
  /// Pre-bound listening socket inherited from the launcher (rank 0 only);
  /// -1 to bind from `port`. Ownership transfers to the transport.
  int listen_fd = -1;
  /// When rank 0 binds `port` itself and it is taken, try successive ports
  /// (port+1, ...) up to this many times before giving up.
  int port_retries = 16;
  /// Rendezvous connect budget (covers peers starting at different times).
  double connect_timeout_s = 20.0;
  /// How long Recv/Fence wait before declaring a peer lost.
  double recv_timeout_s = 20.0;
  /// When nonzero, shrinks SO_SNDBUF/SO_RCVBUF on every mesh socket —
  /// forces partial reads/writes even for small payloads (test knob).
  int sock_buf_bytes = 0;

  /// Reads PSRA_RANK, PSRA_WORLD, PSRA_PORT and PSRA_LISTEN_FD, as exported
  /// by tools/psra_launch. Throws InvalidArgument when absent/malformed.
  static TcpOptions FromEnv();
};

class TcpTransport final : public comm::Transport {
 public:
  /// Performs the full rendezvous; returns once the mesh is connected.
  explicit TcpTransport(const TcpOptions& options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Rank rank() const override;
  Rank world_size() const override;
  std::string Name() const override { return "tcp"; }

  void Post(Rank dst, Tag tag, std::span<const std::byte> payload) override;
  void Recv(Rank src, Tag tag, std::vector<std::byte>& out) override;
  void Fence() override;

  /// While attached: Post/Recv/Fence record wire_post/wire_recv/wire_fence
  /// spans (peer + tag annotated) and frame/fence wait histograms, the pump
  /// times its poll() waits and counts partial writes, and Enqueue tracks
  /// per-peer send-queue high-water marks. Detached costs one branch per
  /// call on each of those paths.
  void AttachObs(obs::WireObs* obs) override;
  void FlushWireMetrics() override;

  /// The port this rank's listener actually bound (after any collision
  /// retries). Rank 0's value is the rendezvous port.
  std::uint16_t listen_port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Binds a listening TCP socket on 127.0.0.1:`port`, retrying `port+1` ...
/// up to `retries` more ports on EADDRINUSE (port 0 binds ephemerally and
/// never retries). On return `port` holds the bound port. Throws
/// TransportError when every candidate is taken.
int BindListener(std::uint16_t& port, int retries);

}  // namespace psra::transport
